package virtuoso_test

import (
	"testing"

	virtuoso "repro"
	"repro/internal/registry"
)

// TestBuiltinNamesMatchCore pins internal/registry's duplicated
// built-in name sets to the core constants: the registry rejects
// registrations colliding with a built-in, so the two lists must never
// drift (registry cannot import core — core consults registry).
func TestBuiltinNamesMatchCore(t *testing.T) {
	designs := []virtuoso.DesignName{
		virtuoso.DesignRadix, virtuoso.DesignECH, virtuoso.DesignHDC,
		virtuoso.DesignHT, virtuoso.DesignUtopia, virtuoso.DesignRMM,
		virtuoso.DesignMidgard, virtuoso.DesignDirectSeg,
	}
	for _, d := range designs {
		if !registry.BuiltinDesign(string(d)) {
			t.Errorf("registry does not reserve built-in design %q", d)
		}
	}
	policies := []virtuoso.PolicyName{
		virtuoso.PolicyBuddy, virtuoso.PolicyTHP, virtuoso.PolicyCRTHP,
		virtuoso.PolicyARTHP, virtuoso.PolicyUtopia, virtuoso.PolicyEager,
	}
	for _, p := range policies {
		if !registry.BuiltinPolicy(string(p)) {
			t.Errorf("registry does not reserve built-in policy %q", p)
		}
	}
	tierPolicies := []string{virtuoso.TierPolicyHotCold, virtuoso.TierPolicyClock}
	for _, tp := range tierPolicies {
		if !registry.BuiltinTierPolicy(tp) {
			t.Errorf("registry does not reserve built-in tier policy %q", tp)
		}
	}
	// And nothing beyond the real built-ins is reserved.
	for _, name := range []string{"", "bogus", "BFS"} {
		if registry.BuiltinDesign(name) || registry.BuiltinPolicy(name) || registry.BuiltinTierPolicy(name) {
			t.Errorf("registry reserves non-built-in %q", name)
		}
	}
}
