package virtuoso

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// Point is one cell of a sweep's (workloads × designs × policies ×
// seeds) grid. Index is the cell's position in Points() order and is
// stable across runs of the same grid, so per-point seeds and results
// are deterministic regardless of worker scheduling.
type Point struct {
	Index    int
	Workload string
	Design   DesignName
	Policy   PolicyName
	Seed     uint64
	// Mix lists the process workloads of a multiprogrammed point
	// (Sweep.Mixes); Workload is then the "+"-joined mix name. Nil for
	// single-workload points.
	Mix []string
}

// SweepEvent reports one finished point to a progress callback.
type SweepEvent struct {
	Point Point
	// Done counts finished points so far (including this one); Total is
	// the grid size.
	Done, Total int
	// Metrics is nil when the point failed or was cancelled, in which
	// case Err says why.
	Metrics *Metrics
	Err     error
}

// Sweep expands a design-space grid into run points and executes them
// on a bounded worker pool. Every point runs in a fully isolated system
// (own MimicOS, own workload instance), so a parallel sweep produces
// bit-identical per-point metrics to a sequential run of the same grid.
//
// The zero value is not runnable: set Base (usually DefaultConfig or
// ScaledConfig) and at least one workload name. Empty Designs,
// Policies, or Seeds axes default to the corresponding Base field, so
// the grid size is max(1,len(Workloads)) × max(1,len(Designs)) ×
// max(1,len(Policies)) × max(1,len(Seeds)).
type Sweep struct {
	// Base is the configuration every point starts from.
	Base Config

	// Grid axes. Workloads (or Mixes) is required; the others default
	// to Base's design, policy, and seed.
	Workloads []string
	Designs   []DesignName
	Policies  []PolicyName
	Seeds     []uint64

	// Mixes is the multiprogrammed workload axis: each entry is one
	// process list, run through the MimicOS scheduler (RunMulti) with
	// Base's quantum/ASID-retention settings. Mixes entries join the
	// Workloads entries on the same axis, so a sweep can compare
	// single-process and multiprogrammed points in one grid.
	Mixes [][]string

	// Params configures catalog workload construction (footprint scale,
	// long-running iteration count) for every point. It is threaded
	// through the per-worker workload lookups, so two sweeps with
	// different Params can run concurrently — unlike the deprecated
	// SetWorkloadScale global. Zero-valued fields keep the defaults.
	Params WorkloadParams

	// Parallel bounds the worker pool (<= 0 means GOMAXPROCS).
	Parallel int

	// Configure, if non-nil, mutates each point's config after the grid
	// fields are applied — the hook for per-point state the axes cannot
	// express (Utopia RestSeg geometry, fragmentation levels, ...).
	Configure func(cfg *Config, p Point) error

	// WorkloadFactory, if non-nil, builds each point's workload instead
	// of the named-catalog lookup — the hook for custom workloads. It
	// must return a fresh instance per call: workload state is mutated
	// during a run and must not be shared between concurrent points.
	WorkloadFactory func(p Point) (*Workload, error)

	// Progress, if non-nil, is called once per finished point. Calls
	// are serialised; the callback needs no locking.
	Progress func(SweepEvent)

	// Observe, if non-nil, builds a streaming Observer for each point
	// (nil return = that point runs unobserved). Unlike Progress, which
	// fires once per *finished* point, an Observer streams interval
	// Snapshots *during* the point's run — the hook for live progress
	// displays over long simulations. Points run concurrently, so an
	// observer shared across points must synchronise itself; observers
	// never perturb results (an observed sweep is byte-identical to an
	// unobserved one).
	Observe func(p Point) Observer
}

// Points expands the grid in deterministic order: workloads (then
// mixes) outermost, then designs, policies, and seeds.
func (s *Sweep) Points() []Point {
	designs := s.Designs
	if len(designs) == 0 {
		designs = []DesignName{s.Base.Design}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []PolicyName{s.Base.Policy}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{s.Base.Seed}
	}
	type wl struct {
		name string
		mix  []string
	}
	axis := make([]wl, 0, len(s.Workloads)+len(s.Mixes))
	for _, w := range s.Workloads {
		axis = append(axis, wl{name: w})
	}
	for _, mix := range s.Mixes {
		axis = append(axis, wl{name: core.MixName(mix), mix: mix})
	}
	pts := make([]Point, 0, len(axis)*len(designs)*len(policies)*len(seeds))
	for _, w := range axis {
		for _, d := range designs {
			for _, p := range policies {
				for _, seed := range seeds {
					pts = append(pts, Point{
						Index: len(pts), Workload: w.name, Mix: w.mix,
						Design: d, Policy: p, Seed: seed,
					})
				}
			}
		}
	}
	return pts
}

// Run executes the grid and returns a Report with one Result per
// completed point, in Points() order. The first point failure — or a
// ctx cancellation, which interrupts in-flight simulations within a few
// thousand simulated instructions — stops the sweep; Run then returns
// the partial report alongside the error.
func (s *Sweep) Run(ctx context.Context) (*Report, error) {
	pts := s.Points()
	if len(pts) == 0 {
		return nil, fmt.Errorf("virtuoso: empty sweep (set Sweep.Workloads or Sweep.Mixes)")
	}
	if err := validateParams(s.Params); err != nil {
		return nil, err
	}

	jobs := make([]runner.Job, len(pts))
	for i, p := range pts {
		cfg := s.Base
		cfg.Design = p.Design
		cfg.Policy = p.Policy
		cfg.Seed = p.Seed
		if s.Configure != nil {
			if err := s.Configure(&cfg, p); err != nil {
				return nil, fmt.Errorf("virtuoso: point %d (%s/%s/%s): %w", p.Index, p.Workload, p.Design, p.Policy, err)
			}
		}
		if p.Mix != nil {
			jobs[i] = runner.Job{Cfg: cfg, Mix: s.mixFactory(p)}
		} else {
			jobs[i] = runner.Job{Cfg: cfg, Workload: s.workloadFactory(p)}
		}
		if s.Observe != nil {
			if obs := s.Observe(p); obs != nil {
				jobs[i].Observer = obs.Observe
			}
		}
	}

	var progress func(done, total int, out runner.Outcome)
	if s.Progress != nil {
		progress = func(done, total int, out runner.Outcome) {
			ev := SweepEvent{Point: pts[out.Index], Done: done, Total: total, Err: out.Err}
			if out.Err == nil {
				m := out.Metrics
				ev.Metrics = &m
			}
			s.Progress(ev)
		}
	}

	start := time.Now()
	outs, err := runner.Run(ctx, jobs, s.Parallel, progress)
	rep := &Report{Points: len(pts), Wall: time.Since(start)}
	for i, out := range outs {
		if out.Err != nil {
			continue
		}
		// Echo the executed config, not the grid point: the Configure
		// hook may have overridden design, policy, or seed.
		rep.Results = append(rep.Results, Result{
			Index:    pts[i].Index,
			Workload: pts[i].Workload,
			Design:   jobs[i].Cfg.Design,
			Policy:   jobs[i].Cfg.Policy,
			Mode:     jobs[i].Cfg.Mode.String(),
			Seed:     jobs[i].Cfg.Seed,
			Metrics:  out.Metrics,
			Multi:    out.Multi,
		})
	}
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// workloadFactory returns the per-point workload constructor, deferring
// catalog lookups to run time so each point gets a fresh instance.
func (s *Sweep) workloadFactory(p Point) func() (*Workload, error) {
	if s.WorkloadFactory != nil {
		return func() (*Workload, error) { return s.WorkloadFactory(p) }
	}
	name, params := p.Workload, s.Params
	return func() (*Workload, error) { return NamedWorkloadWith(name, params) }
}

// mixFactory returns the per-point process-list constructor for a
// multiprogrammed point. Each call builds fresh workload instances, so
// concurrent points never share mutable workload state.
func (s *Sweep) mixFactory(p Point) func() ([]*workloads.Workload, error) {
	names, params := p.Mix, s.Params
	return func() ([]*workloads.Workload, error) { return NamedMixWith(names, params) }
}
