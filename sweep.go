package virtuoso

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sweepjob"
	"repro/internal/workloads"
)

// Point is one cell of a sweep's (workloads × designs × policies ×
// seeds) grid. Index is the cell's position in Points() order and is
// stable across runs of the same grid, so per-point seeds and results
// are deterministic regardless of worker scheduling.
type Point struct {
	Index    int
	Workload string
	Design   DesignName
	Policy   PolicyName
	Seed     uint64
	// Mix lists the process workloads of a multiprogrammed point
	// (Sweep.Mixes); Workload is then the "+"-joined mix name. Nil for
	// single-workload points.
	Mix []string
	// Tiers / TierPolicy are the point's tiered-memory cell
	// (Sweep.TierSpecs / Sweep.TierPolicies). Nil/empty means the base
	// configuration's values.
	Tiers      []TierSpec
	TierPolicy string
}

// SweepEvent reports one finished point to a progress callback.
type SweepEvent struct {
	Point Point
	// Done counts points complete so far in this run's slice of the
	// grid — including points restored from the checkpoint, which are
	// complete before the first worker starts. Total is the number of
	// points this run covers: the grid size, or the shard's share when
	// Sweep.Shard is set.
	Done, Total int
	// Metrics is nil when the point failed or was cancelled, in which
	// case Err says why.
	Metrics *Metrics
	// Result is the point's full outcome — the configuration echo plus
	// Metrics and, for mix points, the per-process breakdown — exactly
	// what the final Report will contain for this point. Nil when Err
	// is set. Streaming consumers (`virtuoso sweep serve`) forward it
	// verbatim so clients never wait for the sweep to finish.
	Result *Result
	// FromCache marks a point answered by the content-addressed result
	// cache (Sweep.Cache) instead of being simulated. Cache-hit events
	// fire in point order before the first worker starts.
	FromCache bool
	Err       error
}

// Sweep expands a design-space grid into run points and executes them
// on a bounded worker pool. Every point runs in a fully isolated system
// (own MimicOS, own workload instance), so a parallel sweep produces
// bit-identical per-point metrics to a sequential run of the same grid.
//
// The zero value is not runnable: set Base (usually DefaultConfig or
// ScaledConfig) and at least one workload name. Empty Designs,
// Policies, or Seeds axes default to the corresponding Base field, so
// the grid size is max(1,len(Workloads)) × max(1,len(Designs)) ×
// max(1,len(Policies)) × max(1,len(Seeds)).
type Sweep struct {
	// Base is the configuration every point starts from.
	Base Config

	// Grid axes. Workloads (or Mixes) is required; the others default
	// to Base's design, policy, and seed.
	Workloads []string
	Designs   []DesignName
	Policies  []PolicyName
	Seeds     []uint64

	// Mixes is the multiprogrammed workload axis: each entry is one
	// process list, run through the MimicOS scheduler (RunMulti) with
	// Base's quantum/ASID-retention settings. Mixes entries join the
	// Workloads entries on the same axis, so a sweep can compare
	// single-process and multiprogrammed points in one grid.
	Mixes [][]string

	// TierSpecs is the tiered-memory configuration axis: each entry is
	// one slow-tier list (nil = flat DRAM + swap), applied to the
	// point's Config.OSCfg.Tiers. TierPolicies is the migration-policy
	// axis over built-in and ext-registered names. Empty axes default
	// to the base configuration's values, like Designs/Policies. Flat
	// entries ignore the policy axis (a migration policy is meaningless
	// without tiers), so a grid mixing flat and tiered cells with N
	// policies runs the flat cell N identical times.
	TierSpecs    [][]TierSpec
	TierPolicies []string

	// Params configures catalog workload construction (footprint scale,
	// long-running iteration count) for every point. It is threaded
	// through the per-worker workload lookups, so two sweeps with
	// different Params can run concurrently — unlike the deprecated
	// SetWorkloadScale global. Zero-valued fields keep the defaults.
	Params WorkloadParams

	// Parallel bounds the worker pool (<= 0 means GOMAXPROCS).
	Parallel int

	// Configure, if non-nil, mutates each point's config after the grid
	// fields are applied — the hook for per-point state the axes cannot
	// express (Utopia RestSeg geometry, fragmentation levels, ...).
	Configure func(cfg *Config, p Point) error

	// WorkloadFactory, if non-nil, builds each point's workload instead
	// of the named-catalog lookup — the hook for custom workloads. It
	// must return a fresh instance per call: workload state is mutated
	// during a run and must not be shared between concurrent points.
	WorkloadFactory func(p Point) (*Workload, error)

	// Progress, if non-nil, is called once per finished point. Calls
	// are serialised; the callback needs no locking.
	Progress func(SweepEvent)

	// Observe, if non-nil, builds a streaming Observer for each point
	// (nil return = that point runs unobserved). Unlike Progress, which
	// fires once per *finished* point, an Observer streams interval
	// Snapshots *during* the point's run — the hook for live progress
	// displays over long simulations. Points run concurrently, so an
	// observer shared across points must synchronise itself; observers
	// never perturb results (an observed sweep is byte-identical to an
	// unobserved one).
	Observe func(p Point) Observer

	// Shard restricts the run to one deterministic slice of the grid
	// (the zero value runs everything). Point enumeration and per-point
	// results are unaffected — shard i of N simply executes the points
	// with Index ≡ i (mod N) — so N shard runs on N machines partition
	// the grid disjointly and exhaustively, and their checkpoint files
	// merge (MergeCheckpoints, `virtuoso sweep merge`) into the exact
	// Report an unsharded run would have produced.
	Shard Shard

	// Checkpoint, when non-empty, persists every completed point's
	// Result to this JSONL file as it lands (fsync-batched) and, when
	// the file already exists, resumes: completed points are restored
	// from disk instead of re-simulated, so an interrupted sweep —
	// context cancel, SIGINT, or crash — loses at most the points that
	// were in flight. The file is stamped with SpecHash(); resuming
	// with a changed grid, params, or base config fails loudly. A tail
	// record torn by a crash is dropped and that point re-runs.
	//
	// Configure and WorkloadFactory hooks are not hashable — when they
	// affect results, set Label so incompatible runs cannot resume each
	// other's checkpoints.
	Checkpoint string

	// Cache, when non-empty, names a directory used as a
	// content-addressed point-result cache. Before a point is
	// scheduled, its key — a hash of the fully resolved per-point
	// Config (after the grid axes and Configure are applied), the
	// workload or mix, Params, Label, and the spec version — is looked
	// up; a hit restores the Result without simulating, a fresh result
	// is written back after the point completes. Keys are independent
	// of grid position, Shard, and Parallel, so repeated, overlapping,
	// and served sweeps share entries. Unlike Checkpoint, which is
	// stamped with this sweep's SpecHash, the cache is shared across
	// sweeps — and, like SpecHash, the key cannot see into a
	// WorkloadFactory hook: set Label when such hooks change results.
	// See docs/sweep-service.md for key semantics and invalidation.
	Cache string

	// Traces, when non-nil, serves every trace-replay point
	// (Configure hooks setting Config.TracePath) from a shared
	// decoded-trace store: each distinct trace content is decoded once
	// for the whole grid and every other point replays the in-memory
	// copy. Purely an execution detail — results, SpecHash, and cache
	// keys are unaffected — so sweeps may add, drop, or resize the
	// store freely between runs. See NewTraceStore.
	Traces *TraceStore

	// NoReuse disables per-worker System pooling, forcing fresh
	// construction for every point. Pooling changes only memory
	// provenance, never results (TestSweepReuseEquivalence); the knob
	// exists for that harness and for memory profiling.
	NoReuse bool

	// Label is an opaque salt mixed into SpecHash — the escape hatch
	// for sweeps whose Configure/WorkloadFactory hooks change results
	// in ways the declarative fields cannot express.
	Label string
}

// Points expands the grid in deterministic order: workloads (then
// mixes) outermost, then designs, policies, and seeds.
func (s *Sweep) Points() []Point {
	designs := s.Designs
	if len(designs) == 0 {
		designs = []DesignName{s.Base.Design}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []PolicyName{s.Base.Policy}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{s.Base.Seed}
	}
	tierSpecs := s.TierSpecs
	if len(tierSpecs) == 0 {
		tierSpecs = [][]TierSpec{s.Base.OSCfg.Tiers}
	}
	tierPolicies := s.TierPolicies
	if len(tierPolicies) == 0 {
		tierPolicies = []string{s.Base.OSCfg.TierPolicy}
	}
	type wl struct {
		name string
		mix  []string
	}
	axis := make([]wl, 0, len(s.Workloads)+len(s.Mixes))
	for _, w := range s.Workloads {
		axis = append(axis, wl{name: w})
	}
	for _, mix := range s.Mixes {
		axis = append(axis, wl{name: core.MixName(mix), mix: mix})
	}
	pts := make([]Point, 0, len(axis)*len(designs)*len(policies)*len(tierSpecs)*len(tierPolicies)*len(seeds))
	for _, w := range axis {
		for _, d := range designs {
			for _, p := range policies {
				for _, ts := range tierSpecs {
					for _, tp := range tierPolicies {
						for _, seed := range seeds {
							pts = append(pts, Point{
								Index: len(pts), Workload: w.name, Mix: w.mix,
								Design: d, Policy: p, Tiers: ts, TierPolicy: tp, Seed: seed,
							})
						}
					}
				}
			}
		}
	}
	return pts
}

// Run executes the grid — or, with Shard set, this shard's slice of it
// — and returns a Report with one Result per completed point, in
// Points() order.
//
// Cancellation semantics: the first point failure — or a ctx
// cancellation, which interrupts in-flight simulations within a few
// thousand simulated instructions — stops the sweep, and Run returns
// the partial report alongside the error. Every point that completed
// before the stop is in the report (and, with Checkpoint set, already
// durable on disk); only in-flight and never-started points are
// missing, because a truncated simulation's metrics are meaningless
// and are discarded rather than reported.
func (s *Sweep) Run(ctx context.Context) (*Report, error) {
	pts := s.Points()
	if len(pts) == 0 {
		return nil, fmt.Errorf("virtuoso: empty sweep (set Sweep.Workloads or Sweep.Mixes)")
	}
	if err := validateParams(s.Params); err != nil {
		return nil, err
	}
	if err := s.Shard.Validate(); err != nil {
		return nil, err
	}
	hash := s.SpecHash()
	sel := s.Shard.Select(len(pts))

	// Open the checkpoint (creating or resuming) and restore completed
	// points. The header carries the spec hash, so resuming a changed
	// sweep fails here rather than mixing grids.
	var ckpt *sweepjob.Writer
	completed := map[int]Result{}
	if s.Checkpoint != "" {
		w, raw, err := sweepjob.OpenWriter(s.Checkpoint, sweepjob.Header{
			SpecHash: hash, Points: len(pts), Shard: s.Shard.String(),
		}, 0)
		if err != nil {
			return nil, err
		}
		ckpt = w
		defer func() {
			if ckpt != nil {
				ckpt.Close()
			}
		}()
		for idx, rawRes := range raw {
			if !s.Shard.Assign(idx) {
				return nil, fmt.Errorf("virtuoso: checkpoint %s holds point %d, which is outside shard %s", s.Checkpoint, idx, s.Shard)
			}
			var r Result
			if err := json.Unmarshal(rawRes, &r); err != nil {
				return nil, fmt.Errorf("virtuoso: checkpoint %s: point %d: %w", s.Checkpoint, idx, err)
			}
			completed[idx] = r
		}
	}

	// Open the content-addressed result cache, if configured. Lookups
	// need each point's fully resolved config, so the job-build loop
	// below resolves configs first and consults the cache before
	// scheduling anything.
	var cache *sweepjob.Cache
	if s.Cache != "" {
		c, err := sweepjob.OpenCache(s.Cache)
		if err != nil {
			return nil, err
		}
		cache = c
	}
	fromCheckpoint := len(completed)

	// Build jobs for the points still pending in this shard, answering
	// from the cache where possible. pending maps job position back to
	// point index; keys holds each scheduled point's cache key.
	pending := make([]int, 0, len(sel))
	keys := make([]string, 0, len(sel))
	jobs := make([]runner.Job, 0, len(sel))
	var cacheHits []int
	for _, idx := range sel {
		if _, done := completed[idx]; done {
			continue
		}
		p := pts[idx]
		cfg := s.Base
		cfg.Design = p.Design
		cfg.Policy = p.Policy
		cfg.Seed = p.Seed
		cfg.OSCfg.Tiers = p.Tiers
		cfg.OSCfg.TierPolicy = p.TierPolicy
		if len(cfg.OSCfg.Tiers) == 0 {
			// A flat cell of the tier axis ignores the policy axis: a
			// migration policy is meaningless without tiers, and leaving
			// it set would fail engine validation.
			cfg.OSCfg.TierPolicy = ""
		}
		if s.Configure != nil {
			if err := s.Configure(&cfg, p); err != nil {
				return nil, fmt.Errorf("virtuoso: point %d (%s/%s/%s): %w", p.Index, p.Workload, p.Design, p.Policy, err)
			}
		}
		var key string
		if cache != nil {
			key = pointKey(cfg, p, s.Params, s.Label)
			if raw, ok := cache.Get(key); ok {
				var r Result
				if err := json.Unmarshal(raw, &r); err == nil {
					// Cache entries are shared across grids, so the
					// stored index is whatever grid wrote the entry;
					// restore this grid's position.
					r.Index = idx
					if ckpt != nil {
						rr, err := json.Marshal(r)
						if err == nil {
							err = ckpt.Append(idx, rr)
						}
						if err != nil {
							return nil, fmt.Errorf("virtuoso: sweep checkpoint %s: %w", s.Checkpoint, err)
						}
					}
					completed[idx] = r
					cacheHits = append(cacheHits, idx)
					continue
				}
				// An entry that does not decode is a miss: simulate,
				// and the Put below rewrites it.
			}
		}
		job := runner.Job{Cfg: cfg}
		if p.Mix != nil {
			job.Mix = s.mixFactory(p)
		} else {
			job.Workload = s.workloadFactory(p)
		}
		if s.Observe != nil {
			if obs := s.Observe(p); obs != nil {
				job.Observer = obs.Observe
			}
		}
		pending = append(pending, idx)
		keys = append(keys, key)
		jobs = append(jobs, job)
	}

	// Cache hits are complete before the first worker starts; report
	// them in point order so streaming consumers see a monotonic Done.
	if s.Progress != nil {
		hitDone := fromCheckpoint
		for _, idx := range cacheHits {
			r := completed[idx]
			hitDone++
			s.Progress(SweepEvent{
				Point: pts[idx], Done: hitDone, Total: len(sel),
				Metrics: &r.Metrics, Result: &r, FromCache: true,
			})
		}
	}

	// A checkpoint write failure (disk full, volume gone) must stop the
	// sweep: silently continuing would report results the resume file
	// never saw. The runner serialises progress calls, so ckptErr needs
	// no lock — it is written under the runner's mutex and read only
	// after Run returns.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var ckptErr, cacheErr error

	baseDone := len(completed)
	var progress func(done, total int, out runner.Outcome)
	if s.Progress != nil || ckpt != nil || cache != nil {
		progress = func(done, total int, out runner.Outcome) {
			idx := pending[out.Index]
			var res Result
			if out.Err == nil {
				res = buildResult(pts[idx], jobs[out.Index].Cfg, out)
				var raw json.RawMessage
				var marshalErr error
				if ckpt != nil || cache != nil {
					raw, marshalErr = json.Marshal(res)
				}
				if ckpt != nil && ckptErr == nil {
					err := marshalErr
					if err == nil {
						err = ckpt.Append(idx, raw)
					}
					if err != nil {
						ckptErr = err
						cancelRun()
					}
				}
				// A cache write failure stops the sweep just like a
				// checkpoint failure: a run told to warm a cache must
				// not silently leave it cold.
				if cache != nil && cacheErr == nil {
					err := marshalErr
					if err == nil {
						err = cache.Put(keys[out.Index], raw)
					}
					if err != nil {
						cacheErr = err
						cancelRun()
					}
				}
			}
			if s.Progress != nil {
				ev := SweepEvent{Point: pts[idx], Done: baseDone + done, Total: len(sel), Err: out.Err}
				if out.Err == nil {
					ev.Metrics = &res.Metrics
					ev.Result = &res
				}
				s.Progress(ev)
			}
		}
	}

	start := time.Now()
	ropts := runner.Options{
		Parallel: s.Parallel, NoReuse: s.NoReuse, Progress: progress,
	}
	if s.Traces != nil {
		ropts.Traces = s.Traces.shared
	}
	outs, err := runner.RunOpts(runCtx, jobs, ropts)

	// Assemble the report in point order: checkpointed results where
	// the point was restored, fresh outcomes where it ran.
	rep := &Report{
		Points: len(pts), SpecHash: hash, Shard: s.Shard.String(), Wall: time.Since(start),
		FromCheckpoint: fromCheckpoint, FromCache: len(cacheHits),
	}
	fresh := make(map[int]Result, len(outs))
	for ji, out := range outs {
		if out.Err != nil {
			continue
		}
		fresh[pending[ji]] = buildResult(pts[pending[ji]], jobs[ji].Cfg, out)
	}
	rep.Executed = len(fresh)
	for _, idx := range sel {
		if r, ok := completed[idx]; ok {
			rep.Results = append(rep.Results, r)
		} else if r, ok := fresh[idx]; ok {
			rep.Results = append(rep.Results, r)
		}
	}

	// Make the checkpoint durable before reporting success or failure.
	if ckpt != nil {
		cerr := ckpt.Close()
		ckpt = nil
		if ckptErr == nil {
			ckptErr = cerr
		}
	}
	if ckptErr != nil {
		return rep, fmt.Errorf("virtuoso: sweep checkpoint %s: %w", s.Checkpoint, ckptErr)
	}
	if cacheErr != nil {
		return rep, fmt.Errorf("virtuoso: sweep cache %s: %w", s.Cache, cacheErr)
	}
	return rep, err
}

// buildResult echoes the executed config, not the grid point: the
// Configure hook may have overridden design, policy, or seed.
func buildResult(p Point, cfg Config, out runner.Outcome) Result {
	return Result{
		Index:      p.Index,
		Workload:   p.Workload,
		Design:     cfg.Design,
		Policy:     cfg.Policy,
		TierPolicy: tierPolicyEcho(cfg),
		Mode:       cfg.Mode.String(),
		Seed:       cfg.Seed,
		Metrics:    out.Metrics,
		Multi:      out.Multi,
	}
}

// tierPolicyEcho names the migration policy a config would run with —
// empty for flat configs, the default name when tiers are set without
// an explicit policy.
func tierPolicyEcho(cfg Config) string {
	if len(cfg.OSCfg.Tiers) == 0 {
		return ""
	}
	if cfg.OSCfg.TierPolicy == "" {
		return TierPolicyHotCold
	}
	return cfg.OSCfg.TierPolicy
}

// workloadFactory returns the per-point workload constructor, deferring
// catalog lookups to run time so each point gets a fresh instance.
func (s *Sweep) workloadFactory(p Point) func() (*Workload, error) {
	if s.WorkloadFactory != nil {
		return func() (*Workload, error) { return s.WorkloadFactory(p) }
	}
	name, params := p.Workload, s.Params
	return func() (*Workload, error) { return NamedWorkloadWith(name, params) }
}

// mixFactory returns the per-point process-list constructor for a
// multiprogrammed point. Each call builds fresh workload instances, so
// concurrent points never share mutable workload state.
func (s *Sweep) mixFactory(p Point) func() ([]*workloads.Workload, error) {
	names, params := p.Mix, s.Params
	return func() ([]*workloads.Workload, error) { return NamedMixWith(names, params) }
}
