package virtuoso_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	virtuoso "repro"
)

// testSweep is a 4-point grid (2 workloads × 2 seeds) small enough to
// finish in a couple of seconds.
func testSweep(parallel int) *virtuoso.Sweep {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 120_000
	return &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"JSON", "2D-Sum"},
		Designs:   []virtuoso.DesignName{virtuoso.DesignRadix},
		Policies:  []virtuoso.PolicyName{virtuoso.PolicyTHP},
		Seeds:     []uint64{1, 2},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:  parallel,
	}
}

func TestSweepPointsExpansion(t *testing.T) {
	s := testSweep(1)
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	// Workloads outermost, seeds innermost, indices sequential.
	want := []struct {
		w    string
		seed uint64
	}{
		{"JSON", 1}, {"JSON", 2}, {"2D-Sum", 1}, {"2D-Sum", 2},
	}
	for i, p := range pts {
		if p.Index != i || p.Workload != want[i].w || p.Seed != want[i].seed {
			t.Errorf("point %d = %+v, want %+v", i, p, want[i])
		}
	}

	// Empty axes default to the base config's values.
	s2 := &virtuoso.Sweep{Base: virtuoso.DefaultConfig(), Workloads: []string{"BFS"}}
	pts2 := s2.Points()
	if len(pts2) != 1 || pts2[0].Design != s2.Base.Design || pts2[0].Seed != s2.Base.Seed {
		t.Errorf("default axes: %+v", pts2)
	}
}

// canonical strips the host-dependent fields (wall time, host heap) and
// returns the result's JSON; everything else must be bit-identical
// between runs of the same point.
func canonical(t *testing.T, r virtuoso.Result) string {
	t.Helper()
	r.Metrics.WallTime = 0
	r.Metrics.SimHeapBytes = 0
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSweepParallelMatchesSequential is the acceptance criterion for
// the sweep runner: >= 4 points executed with Parallel >= 4 must yield
// byte-identical per-point metrics to a sequential run of the same grid.
func TestSweepParallelMatchesSequential(t *testing.T) {
	seq, err := testSweep(1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	par, err := testSweep(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Results) != 4 || len(par.Results) != 4 {
		t.Fatalf("got %d sequential / %d parallel results, want 4/4", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		s, p := canonical(t, seq.Results[i]), canonical(t, par.Results[i])
		if s != p {
			t.Errorf("point %d differs between sequential and parallel runs:\nseq: %.200s\npar: %.200s", i, s, p)
		}
	}

	// And a second parallel run must reproduce the first exactly.
	par2, err := testSweep(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Results {
		if canonical(t, par.Results[i]) != canonical(t, par2.Results[i]) {
			t.Errorf("point %d differs between two parallel runs", i)
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 400_000
	sweep := &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"JSON", "2D-Sum", "Hadamard"},
		Seeds:     []uint64{1, 2, 3, 4},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:  2,
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sweep.Progress = func(ev virtuoso.SweepEvent) {
		cancel() // cancel as soon as the first point finishes
	}

	report, err := sweep.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if report == nil {
		t.Fatal("cancelled sweep should still return the partial report")
	}
	if len(report.Results) >= report.Points {
		t.Errorf("all %d points completed despite cancellation", report.Points)
	}
	for _, r := range report.Results {
		if r.Metrics.AppInsts == 0 {
			t.Errorf("point %d reported empty metrics; truncated runs must be dropped", r.Index)
		}
	}
}

func TestSweepResultEchoesConfiguredPoint(t *testing.T) {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 50_000
	sweep := &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"JSON"},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Configure: func(cfg *virtuoso.Config, p virtuoso.Point) error {
			cfg.Policy = virtuoso.PolicyBuddy // override the grid's policy
			return nil
		},
	}
	rep, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Results[0].Policy; got != virtuoso.PolicyBuddy {
		t.Errorf("Result.Policy = %q; must echo the Configure-mutated config, not the grid point", got)
	}
}

func TestSweepUnknownWorkloadFails(t *testing.T) {
	sweep := &virtuoso.Sweep{
		Base:      virtuoso.ScaledConfig(),
		Workloads: []string{"definitely-not-a-workload"},
	}
	if _, err := sweep.Run(context.Background()); err == nil {
		t.Fatal("sweep over an unknown workload should fail")
	}
}

func TestReportHelpers(t *testing.T) {
	rep, err := testSweep(2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	groups := rep.GroupBy(virtuoso.ByWorkload)
	if len(groups) != 2 || len(groups["JSON"]) != 2 || len(groups["2D-Sum"]) != 2 {
		t.Errorf("GroupBy(ByWorkload) = %d groups", len(groups))
	}
	if keys := rep.Keys(virtuoso.ByWorkload); len(keys) != 2 || keys[0] != "2D-Sum" {
		t.Errorf("Keys = %v", keys)
	}

	ipc := func(r virtuoso.Result) float64 { return r.Metrics.IPC }
	if g := rep.Geomean(ipc); g <= 0 {
		t.Errorf("Geomean(IPC) = %v", g)
	}
	by := rep.GeomeanBy(virtuoso.ByWorkload, ipc)
	if len(by) != 2 || by["JSON"] <= 0 {
		t.Errorf("GeomeanBy = %v", by)
	}

	only := rep.Filter(func(r virtuoso.Result) bool { return r.Workload == "JSON" })
	if len(only.Results) != 2 {
		t.Errorf("Filter kept %d results, want 2", len(only.Results))
	}

	// Report JSON round trip.
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := virtuoso.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) || back.Points != rep.Points {
		t.Errorf("decoded report: %d results / %d points", len(back.Results), back.Points)
	}
}
