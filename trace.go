package virtuoso

import (
	"fmt"
	"os"

	"repro/internal/trace"
)

// TraceInfo summarises a recorded trace file: the metadata stored in
// its header plus whole-file instruction counts gathered by streaming
// the record section once.
type TraceInfo struct {
	// Path is the file the info was read from.
	Path string `json:"path"`
	// Workload is the recorded workload's name.
	Workload string `json:"workload"`
	// Class is the recorded workload's class ("long" or "short").
	Class string `json:"class"`
	// FootprintBytes is the recorded workload's primary data footprint.
	FootprintBytes uint64 `json:"footprint_bytes"`
	// Seed is the simulation seed of the recording run; replaying with
	// the same seed and configuration reproduces it exactly.
	Seed uint64 `json:"seed"`
	// Segments is the number of recorded address-space segments replay
	// re-creates.
	Segments int `json:"segments"`
	// Records is the number of instruction records in the file.
	Records uint64 `json:"records"`
	// Instructions is the dynamic instruction count (batched ops at
	// their batch size).
	Instructions uint64 `json:"instructions"`
	// MemOps is the dynamic count of memory-operand instructions.
	MemOps uint64 `json:"mem_ops"`
	// Compressed reports whether the file uses the gzip envelope (a
	// ".gz" extension).
	Compressed bool `json:"compressed"`
}

// ReadTraceInfo opens, validates, and summarises a trace file,
// decoding every record to count instructions. It streams: arbitrarily
// large traces are summarised in constant memory. When only the header
// metadata is needed, ReadTraceHeader is much cheaper.
func ReadTraceInfo(path string) (TraceInfo, error) {
	info, err := trace.ReadInfo(path)
	if err != nil {
		return TraceInfo{}, err
	}
	ti := headerInfo(path, info.Header)
	ti.Records, ti.Instructions, ti.MemOps = info.Records, info.Insts, info.MemOps
	return ti, nil
}

// ReadTraceHeader validates a trace file and returns its header
// metadata without decoding the record section: Records, Instructions,
// and MemOps are left zero. Use it when the workload identity or seed
// is needed but a full-file scan (ReadTraceInfo) would be wasteful.
func ReadTraceHeader(path string) (TraceInfo, error) {
	hdr, err := trace.ReadHeader(path)
	if err != nil {
		return TraceInfo{}, err
	}
	return headerInfo(path, hdr), nil
}

func headerInfo(path string, hdr trace.Header) TraceInfo {
	return TraceInfo{
		Path:           path,
		Workload:       hdr.Workload,
		Class:          hdr.Class.String(),
		FootprintBytes: hdr.Footprint,
		Seed:           hdr.Seed,
		Segments:       len(hdr.Layout),
		Compressed:     trace.Compressed(path),
	}
}

// Record simulates the session's workload exactly like Run while
// streaming every application instruction to a trace file at path (a
// ".gz" extension selects gzip compression). The returned metrics are
// those of the recording run, and the returned TraceInfo summarises
// the written file from the writer's own counters — no re-read of the
// file. Replaying the file with WithTrace under the same configuration
// and seed reproduces the metrics deterministically.
//
// Like Run, Record consumes the session. A partially written file is
// removed on error.
func (s *Session) Record(path string) (Metrics, TraceInfo, error) {
	if len(s.mix) > 0 {
		return Metrics{}, TraceInfo{}, fmt.Errorf("virtuoso: multiprogrammed sessions cannot be recorded (a trace captures one address space)")
	}
	if s.ran {
		return Metrics{}, TraceInfo{}, fmt.Errorf("virtuoso: session already run (sessions are single-use; Open a new one)")
	}
	s.ran = true
	tw, err := trace.Create(path)
	if err != nil {
		return Metrics{}, TraceInfo{}, err
	}
	m, err := s.sys.RunRecording(s.w, tw)
	if cerr := tw.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return Metrics{}, TraceInfo{}, err
	}
	info := TraceInfo{
		Path:           path,
		Workload:       s.w.Name(),
		Class:          s.w.Class().String(),
		FootprintBytes: s.w.FootprintBytes(),
		Seed:           s.cfg.Seed,
		Segments:       tw.Segments(),
		Records:        tw.Records(),
		Instructions:   tw.Insts(),
		MemOps:         tw.MemOps(),
		Compressed:     trace.Compressed(path),
	}
	return m, info, nil
}
