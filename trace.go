package virtuoso

import (
	"fmt"
	"os"

	"repro/internal/trace"
)

// TraceInfo summarises a recorded trace file: the metadata stored in
// its header plus whole-file instruction counts. For a v2 file the
// counts come from the CRC-checked block index — constant work
// regardless of trace length; a v1 file is counted by streaming its
// record section once.
type TraceInfo struct {
	// Path is the file the info was read from.
	Path string `json:"path"`
	// Workload is the recorded workload's name.
	Workload string `json:"workload"`
	// Class is the recorded workload's class ("long" or "short").
	Class string `json:"class"`
	// FootprintBytes is the recorded workload's primary data footprint.
	FootprintBytes uint64 `json:"footprint_bytes"`
	// Seed is the simulation seed of the recording run; replaying with
	// the same seed and configuration reproduces it exactly.
	Seed uint64 `json:"seed"`
	// Segments is the number of recorded address-space segments replay
	// re-creates.
	Segments int `json:"segments"`
	// Records is the number of instruction records in the file.
	Records uint64 `json:"records"`
	// Instructions is the dynamic instruction count (batched ops at
	// their batch size).
	Instructions uint64 `json:"instructions"`
	// MemOps is the dynamic count of memory-operand instructions.
	MemOps uint64 `json:"mem_ops"`
	// Compressed reports whether the record section is compressed: a
	// v1 gzip envelope (detected by magic bytes, never by extension) or
	// the always-block-compressed v2 container.
	Compressed bool `json:"compressed"`
	// Version is the file's major format version (1 or 2).
	Version int `json:"version"`
	// Blocks is the number of independently decodable record blocks
	// (v2 only).
	Blocks int `json:"blocks,omitempty"`
	// IndexBytes is the serialised block-index size (v2 only).
	IndexBytes int `json:"index_bytes,omitempty"`
	// RawBytes and CompBytes are the uncompressed and compressed block
	// payload totals (v2 only); CompBytes/RawBytes is the record
	// compression ratio.
	RawBytes  uint64 `json:"raw_bytes,omitempty"`
	CompBytes uint64 `json:"comp_bytes,omitempty"`
}

// ReadTraceInfo opens, validates, and summarises a trace file. A v2
// file answers from its block index without touching the record
// blocks; a v1 file streams every record in constant memory. When only
// the header metadata is needed, ReadTraceHeader is cheaper still.
func ReadTraceInfo(path string) (TraceInfo, error) {
	info, err := trace.ReadInfo(path)
	if err != nil {
		return TraceInfo{}, err
	}
	ti := headerInfo(path, info.Header)
	ti.Records, ti.Instructions, ti.MemOps = info.Records, info.Insts, info.MemOps
	ti.Compressed = info.Compressed
	ti.Version = info.Version
	ti.Blocks = info.Blocks
	ti.IndexBytes = info.IndexBytes
	ti.RawBytes, ti.CompBytes = info.RawBytes, info.CompBytes
	return ti, nil
}

// ReadTraceHeader validates a trace file and returns its header
// metadata without decoding the record section: Records, Instructions,
// MemOps, and the v2 block fields are left zero. Use it when the
// workload identity or seed is needed but the per-record summary
// (ReadTraceInfo) would be wasteful.
func ReadTraceHeader(path string) (TraceInfo, error) {
	r, err := trace.Open(path)
	if err != nil {
		return TraceInfo{}, err
	}
	defer r.Close()
	ti := headerInfo(path, r.Header())
	ti.Compressed = r.Compressed()
	ti.Version = r.Version()
	return ti, nil
}

// ConvertTrace rewrites the trace at src into the current (v2,
// seekable block-compressed) format at dst, streaming — the whole
// trace is never held in memory — and atomically: dst appears complete
// or not at all. The decoded record stream is preserved exactly, so
// replays of src and dst are byte-identical. Converting a v2 file
// re-blocks it losslessly. The summarised result describes the written
// file.
func ConvertTrace(src, dst string) (TraceInfo, error) {
	info, err := trace.Convert(src, dst)
	if err != nil {
		return TraceInfo{}, err
	}
	ti := headerInfo(dst, info.Header)
	ti.Records, ti.Instructions, ti.MemOps = info.Records, info.Insts, info.MemOps
	ti.Compressed = info.Compressed
	ti.Version = info.Version
	ti.Blocks = info.Blocks
	ti.IndexBytes = info.IndexBytes
	ti.RawBytes, ti.CompBytes = info.RawBytes, info.CompBytes
	return ti, nil
}

func headerInfo(path string, hdr trace.Header) TraceInfo {
	return TraceInfo{
		Path:           path,
		Workload:       hdr.Workload,
		Class:          hdr.Class.String(),
		FootprintBytes: hdr.Footprint,
		Seed:           hdr.Seed,
		Segments:       len(hdr.Layout),
	}
}

// TraceWorkload builds a trace-backed workload from a recorded file:
// its Setup re-creates the recorded address-space layout, and running
// it with Config.TracePath set to the same file (and FrontendTrace)
// replays the recorded stream. WithTrace does all of this for a single
// session; TraceWorkload is the building block for sweeps — a
// WorkloadFactory returns one per point while Configure sets
// TracePath, typically together with Sweep.Traces so the grid decodes
// the file once.
func TraceWorkload(path string) (*Workload, error) {
	return trace.NewWorkload(path)
}

// RecordOption adjusts how Session.Record writes its trace file.
type RecordOption func(*recordOptions)

type recordOptions struct {
	v1 bool
}

// RecordFormatV1 makes Record write the legacy v1 streaming format (a
// ".gz" extension then selects the gzip envelope) instead of the
// default seekable block-compressed v2 container — for feeding tools
// that predate v2. v1 files replay forever; ConvertTrace upgrades
// them.
func RecordFormatV1() RecordOption {
	return func(o *recordOptions) { o.v1 = true }
}

// Record simulates the session's workload exactly like Run while
// streaming every application instruction to a trace file at path. By
// default the file is written in the seekable block-compressed v2
// format (whatever the extension); RecordFormatV1 selects the legacy
// format. The returned metrics are those of the recording run, and the
// returned TraceInfo summarises the written file from the writer's own
// counters — no re-read of the file. Replaying the file with WithTrace
// under the same configuration and seed reproduces the metrics
// deterministically.
//
// Like Run, Record consumes the session. A partially written file is
// removed on error.
func (s *Session) Record(path string, ropts ...RecordOption) (Metrics, TraceInfo, error) {
	var o recordOptions
	for _, opt := range ropts {
		opt(&o)
	}
	if len(s.mix) > 0 {
		return Metrics{}, TraceInfo{}, fmt.Errorf("virtuoso: multiprogrammed sessions cannot be recorded (a trace captures one address space)")
	}
	if s.ran {
		return Metrics{}, TraceInfo{}, fmt.Errorf("virtuoso: session already run (sessions are single-use; Open a new one)")
	}
	s.ran = true
	create := trace.Create
	if o.v1 {
		create = trace.CreateV1
	}
	tw, err := create(path)
	if err != nil {
		return Metrics{}, TraceInfo{}, err
	}
	m, err := s.sys.RunRecording(s.w, tw)
	s.sys.ReleaseTransients()
	if cerr := tw.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return Metrics{}, TraceInfo{}, err
	}
	info := TraceInfo{
		Path:           path,
		Workload:       s.w.Name(),
		Class:          s.w.Class().String(),
		FootprintBytes: s.w.FootprintBytes(),
		Seed:           s.cfg.Seed,
		Segments:       tw.Segments(),
		Records:        tw.Records(),
		Instructions:   tw.Insts(),
		MemOps:         tw.MemOps(),
		Compressed:     tw.Version() == trace.Version2 || trace.Compressed(path),
		Version:        tw.Version(),
		Blocks:         tw.Blocks(),
		IndexBytes:     tw.IndexBytes(),
		RawBytes:       tw.RawBytes(),
		CompBytes:      tw.CompBytes(),
	}
	return m, info, nil
}
