// Benchmarks regenerating every table and figure of the paper's
// evaluation at reduced scale (one benchmark per experiment; the full
// versions run via cmd/figures). Reported custom metrics carry each
// experiment's headline numbers so `go test -bench` output documents the
// reproduced shapes. An ablation section exercises the design choices
// DESIGN.md calls out.
package virtuoso_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	virtuoso "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func benchOpts(b *testing.B) experiments.Opts {
	b.Helper()
	return experiments.Opts{Quick: true, Seed: 17}
}

// runExperiment runs one harness per benchmark iteration and reports the
// selected cells as benchmark metrics.
func runExperiment(b *testing.B, id string, report func(*experiments.Table, *testing.B)) {
	b.Helper()
	f, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = f(benchOpts(b))
	}
	if tb != nil && report != nil {
		report(tb, b)
	}
}

func cellOf(tb *experiments.Table, label string, col int) float64 {
	for _, r := range tb.Rows {
		if r.Label == label && col < len(r.Cells) {
			return r.Cells[col]
		}
	}
	return 0
}

func BenchmarkFig01TimeBreakdown(b *testing.B) {
	runExperiment(b, "fig01", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "MEAN-long", 0), "long-trans-%")
		b.ReportMetric(cellOf(tb, "MEAN-long", 1), "long-alloc-%")
		b.ReportMetric(cellOf(tb, "MEAN-short", 1), "short-alloc-%")
	})
}

func BenchmarkFig02MPFDistribution(b *testing.B) {
	runExperiment(b, "fig02", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "THP-enabled", 5), "thp-outlier-%")
		b.ReportMetric(cellOf(tb, "THP-disabled", 5), "bd-outlier-%")
	})
}

func BenchmarkFig03PTWSweep(b *testing.B) {
	runExperiment(b, "fig03", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(tb.Rows[0].Cells[0], "ptw-low")
		b.ReportMetric(tb.Rows[len(tb.Rows)-1].Cells[0], "ptw-sssp")
	})
}

func BenchmarkFig08IPCAccuracy(b *testing.B) {
	runExperiment(b, "fig08", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "MEAN", 3), "acc-virtuoso-%")
		b.ReportMetric(cellOf(tb, "MEAN", 4), "acc-baseline-%")
	})
}

func BenchmarkFig09PFCosine(b *testing.B) {
	runExperiment(b, "fig09", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "MEAN", 0), "cosine")
	})
}

func BenchmarkFig10MMUAccuracy(b *testing.B) {
	runExperiment(b, "fig10", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "MEAN", 2), "mpki-acc-%")
		b.ReportMetric(cellOf(tb, "MEAN", 5), "ptw-acc-%")
	})
}

func BenchmarkFig11Overheads(b *testing.B) {
	runExperiment(b, "fig11", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "AVG(MimicOS)", 0), "avg-slowdown-%")
		b.ReportMetric(cellOf(tb, "gem5-FS vs gem5-SE", 0), "fs-slowdown-%")
	})
}

func BenchmarkFig12KernelFraction(b *testing.B) {
	runExperiment(b, "fig12", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(tb.Rows[0].Cells[1], "norm-time-densest")
	})
}

func BenchmarkFig13PTWReduction(b *testing.B) {
	runExperiment(b, "fig13", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "hdc", 0), "hdc-red-%")
		b.ReportMetric(cellOf(tb, "ht", len(tb.Columns)-1), "ht-red-%")
	})
}

func BenchmarkFig14RowConflicts(b *testing.B) {
	runExperiment(b, "fig14", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "GMEAN", 0), "ech-x")
		b.ReportMetric(cellOf(tb, "GMEAN", 1), "hdc-x")
	})
}

func BenchmarkFig15MPFReduction(b *testing.B) {
	runExperiment(b, "fig15", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "MEAN", 1), "hdc-red-%")
	})
}

func BenchmarkFig16LLMPolicies(b *testing.B) {
	runExperiment(b, "fig16", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "Bagel-2.8B BD", 3), "bd-max-ns")
		b.ReportMetric(cellOf(tb, "Bagel-2.8B AR-THP", 3), "arthp-max-ns")
	})
}

func BenchmarkFig17MidgardBreakdown(b *testing.B) {
	runExperiment(b, "fig17", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "BC", 0), "bc-frontend-%")
	})
}

func BenchmarkFig18VMACensus(b *testing.B) {
	runExperiment(b, "fig18", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "total VMAs", 0), "vmas")
	})
}

func BenchmarkFig19RestSegSize(b *testing.B) {
	runExperiment(b, "fig19", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "GMEAN", len(tb.Columns)-1), "largest-inc-%")
	})
}

func BenchmarkFig20SwapActivity(b *testing.B) {
	runExperiment(b, "fig20", func(tb *experiments.Table, b *testing.B) {
		if n := len(tb.Rows); n > 0 {
			b.ReportMetric(tb.Rows[n-1].Cells[0], "swap-x-at-max-coverage")
		}
	})
}

func BenchmarkFig21RMMConflicts(b *testing.B) {
	runExperiment(b, "fig21", func(tb *experiments.Table, b *testing.B) {
		b.ReportMetric(cellOf(tb, "GMEAN", 0), "red-at-94-%")
	})
}

func BenchmarkTable3IntegrationLoC(b *testing.B) {
	runExperiment(b, "table3", nil)
}

// benchRun builds a system for cfg and runs one catalog workload at the
// given footprint scale, panicking on configuration errors (benchmark
// configurations are programmatic).
func benchRun(b *testing.B, cfg virtuoso.Config, name string, scale float64) virtuoso.Metrics {
	b.Helper()
	w, ok := workloads.ByNameWith(name, workloads.Params{Scale: scale})
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys.Run(w)
}

// --- Ablations (DESIGN.md) --------------------------------------------

// BenchmarkAblationImitationVsEmulation quantifies the methodology axis
// itself: the same workload under injected kernel streams vs fixed
// first-order latencies.
func BenchmarkAblationImitationVsEmulation(b *testing.B) {
	for _, mode := range []core.Mode{core.Imitation, core.Emulation} {
		name := "imitation"
		if mode == core.Emulation {
			name = "emulation"
		}
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := virtuoso.ScaledConfig()
				cfg.Mode = mode
				cfg.MaxAppInsts = 300_000
				m := benchRun(b, cfg, "JSON", 0.05)
				ipc = m.IPC
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationZeroPool measures the zero-page-pool design choice:
// with a pool, THP faults dodge synchronous zeroing (Fig. 6's "is there
// zero 2MB page?"); without, they pay the Fig. 2 tail.
func BenchmarkAblationZeroPool(b *testing.B) {
	for _, pool := range []int{0, 16} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				cfg := virtuoso.ScaledConfig()
				cfg.OSCfg.ZeroPoolCap = pool
				cfg.OSCfg.ZeroPoolRefill = 2
				cfg.MaxAppInsts = 0
				m := benchRun(b, cfg, "JSON", 0.05)
				if m.PFLatNs != nil {
					p99 = m.PFLatNs.Percentile(99)
				}
			}
			b.ReportMetric(p99, "pf-p99-ns")
		})
	}
}

// BenchmarkAblationPrefetchers measures the Table 4 prefetchers' effect.
func BenchmarkAblationPrefetchers(b *testing.B) {
	for _, pf := range []bool{true, false} {
		b.Run(fmt.Sprintf("prefetch=%v", pf), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := virtuoso.ScaledConfig()
				cfg.CacheCfg.EnablePrefetch = pf
				cfg.MaxAppInsts = 300_000
				m := benchRun(b, cfg, "Hadamard", 0.05)
				ipc = m.IPC
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkMultiProcess tracks the multiprogrammed scheduler's overhead
// from day one: 2- and 4-process mixes through the round-robin
// engine, reporting simulation speed and scheduler activity.
func BenchmarkMultiProcess(b *testing.B) {
	mixes := map[string][]string{
		"2proc": {"RND", "SEQ"},
		"4proc": {"RND", "SEQ", "BFS", "XS"},
	}
	for _, label := range []string{"2proc", "4proc"} {
		names := mixes[label]
		b.Run(label, func(b *testing.B) {
			var mm virtuoso.MultiMetrics
			for i := 0; i < b.N; i++ {
				ws := make([]*virtuoso.Workload, len(names))
				for j, n := range names {
					w, ok := workloads.ByNameWith(n, workloads.Params{Scale: 0.05})
					if !ok {
						b.Fatalf("unknown workload %s", n)
					}
					ws[j] = w
				}
				cfg := virtuoso.ScaledConfig()
				cfg.MaxAppInsts = 150_000
				cfg.QuantumCycles = 25_000
				sys, err := core.NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				mm, err = sys.RunMulti(ws)
				if err != nil {
					b.Fatal(err)
				}
			}
			total := mm.Aggregate.AppInsts + mm.Aggregate.KernelInsts
			b.ReportMetric(float64(total)/mm.Aggregate.WallTime.Seconds(), "sim-inst/s")
			b.ReportMetric(float64(mm.ContextSwitches), "ctx-switches")
			b.ReportMetric(float64(mm.Aggregate.CtxSwitchCycles), "ctx-switch-cycles")
		})
	}
}

// BenchmarkSweepThroughput measures sweep-scale wall time on a grid of
// many short points, where per-point fixed costs — System construction,
// the free-extent maps, the kernel tracer's stream buffer — are a large
// share of the total: the shape the pooled-reuse path (worker-local
// recycle.Pool, Sweep.NoReuse=false) exists to accelerate. Emulation
// mode with few instructions over a large, pre-fragmented memory is
// that shape distilled — construction and Fragment() dominate, the way
// short design-space screening points are dominated by setup. The
// pooled and fresh sub-benchmarks run the identical grid — results
// are byte-identical (TestSweepReuseEquivalence) — so their delta is
// pure reuse.
func BenchmarkSweepThroughput(b *testing.B) {
	grid := func(noReuse bool) *virtuoso.Sweep {
		base := virtuoso.ScaledConfig()
		base.Mode = core.Emulation
		base.MaxAppInsts = 5_000
		base.OSCfg.PhysBytes = 4 << 30
		base.FragFree2M = 0.5
		return &virtuoso.Sweep{
			Base:      base,
			Workloads: []string{"XS", "RND"},
			Seeds:     []uint64{1, 2, 3, 4},
			Params:    virtuoso.WorkloadParams{Scale: 0.05},
			Parallel:  1,
			NoReuse:   noReuse,
		}
	}
	for _, mode := range []string{"pooled", "fresh"} {
		b.Run(mode, func(b *testing.B) {
			var pts int
			for i := 0; i < b.N; i++ {
				rep, err := grid(mode == "fresh").Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				pts = len(rep.Results)
			}
			b.ReportMetric(float64(pts)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkSimulatorThroughput reports raw simulation speed (host
// instructions per second) of the execution-driven assembly.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := virtuoso.ScaledConfig()
		cfg.MaxAppInsts = 500_000
		m := benchRun(b, cfg, "XS", 0.1)
		b.ReportMetric(float64(m.AppInsts+m.KernelInsts)/m.WallTime.Seconds(), "sim-inst/s")
	}
}

// BenchmarkTieredMemory measures the tiered-memory subsystem against
// the flat-DRAM baseline under identical pressure: the same workload on
// the same undersized DRAM, with the overflow absorbed by swap (flat)
// or by a CXL+NVM hierarchy with hot/cold migration (2tier). The
// demotion/promotion metrics double as a drift alarm for the migration
// machinery; sim-inst/s tracks what the extra bookkeeping costs the
// simulator itself.
func BenchmarkTieredMemory(b *testing.B) {
	tiered := []virtuoso.TierSpec{
		{Name: "cxl", Bytes: 64 << 20, ReadLat: 600, WriteLat: 900, BytesPerCycle: 8},
		{Name: "nvm", Bytes: 128 << 20, ReadLat: 2500, WriteLat: 8000, BytesPerCycle: 2},
	}
	for _, tc := range []struct {
		name  string
		specs []virtuoso.TierSpec
	}{{"flat", nil}, {"2tier", tiered}} {
		b.Run(tc.name, func(b *testing.B) {
			var m virtuoso.Metrics
			for i := 0; i < b.N; i++ {
				cfg := virtuoso.ScaledConfig()
				cfg.MaxAppInsts = 400_000
				// Buddy keeps pages 4K (and so migratable); 12MB of DRAM
				// puts the 0.05-scale footprint well past the watermark.
				cfg.Policy = virtuoso.PolicyBuddy
				cfg.OSCfg.PhysBytes = 12 << 20
				cfg.OSCfg.SwapBytes = 512 << 20
				cfg.OSCfg.SwapThreshold = 0.5
				cfg.OSCfg.Tiers = tc.specs
				m = benchRun(b, cfg, "RND", 0.05)
			}
			b.ReportMetric(float64(m.AppInsts+m.KernelInsts)/m.WallTime.Seconds(), "sim-inst/s")
			b.ReportMetric(float64(m.OS.Demotions), "demotions")
			b.ReportMetric(float64(m.OS.Promotions), "promotions")
			b.ReportMetric(float64(m.OS.SwapOuts), "swap-outs")
		})
	}
}

// benchTraceReplay is the shared harness of the trace-replay
// benchmarks: one recorded trace (made outside the timed loop, in the
// format ropts selects) replayed per iteration with the given extra
// session options. Replay skips workload instruction generation, so
// this isolates the decode + simulate path that ChampSim-style studies
// pay per run.
func benchTraceReplay(b *testing.B, name string, ropts []virtuoso.RecordOption, extra ...virtuoso.Option) {
	path := filepath.Join(b.TempDir(), name)
	opts := []virtuoso.Option{
		virtuoso.WithScaledConfig(),
		virtuoso.WithDesign(virtuoso.DesignRadix),
		virtuoso.WithPolicy(virtuoso.PolicyTHP),
		virtuoso.WithMaxInstructions(250_000),
		virtuoso.WithSeed(17),
	}
	rec, err := virtuoso.Open(append(opts,
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("XS"),
	)...)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := rec.Record(path, ropts...); err != nil {
		b.Fatal(err)
	}
	opts = append(opts, extra...)
	replay := func() virtuoso.Metrics {
		sess, err := virtuoso.Open(append(opts, virtuoso.WithTrace(path))...)
		if err != nil {
			b.Fatal(err)
		}
		m, err := sess.Run()
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	// One untimed replay first: the timed iterations then measure the
	// steady state — for the shared-store variant, the marginal cost of
	// a repeat replay (the one-time decode into the store is excluded,
	// exactly as for the second and later points of a sweep).
	replay()
	b.ResetTimer()
	var m virtuoso.Metrics
	for i := 0; i < b.N; i++ {
		m = replay()
	}
	b.ReportMetric(float64(m.AppInsts+m.KernelInsts)/m.WallTime.Seconds(), "sim-inst/s")
}

// BenchmarkTraceReplay measures the default replay path: a v2
// (seekable block-compressed) trace through OpenReplaySource — the
// parallel block decoder on multi-core hosts, inline block decode on a
// single core.
func BenchmarkTraceReplay(b *testing.B) {
	benchTraceReplay(b, "bench.trc", nil)
}

// BenchmarkTraceReplayV1 measures the legacy v1 gzip-enveloped format
// through its streaming decoder — the before side of the v2 migration.
func BenchmarkTraceReplayV1(b *testing.B) {
	benchTraceReplay(b, "bench.trc.gz", []virtuoso.RecordOption{virtuoso.RecordFormatV1()})
}

// BenchmarkTraceReplayShared measures warm replays through the shared
// decoded-trace store: the trace is decoded once (first iteration, or
// a prior point in a sweep) and every timed replay streams the
// in-memory records — the per-point cost the sweep path pays.
func BenchmarkTraceReplayShared(b *testing.B) {
	store := virtuoso.NewTraceStore(0)
	benchTraceReplay(b, "bench.trc", nil, virtuoso.WithTraceStore(store))
}
