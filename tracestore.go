package virtuoso

import "repro/internal/trace"

// TraceStore is a process-wide, content-keyed store of decoded traces
// for sweep-scale replay. The first point replaying a trace file
// decodes it once into memory; every later point replaying the same
// content — across workers, across sweeps, regardless of path — streams
// from the same decoded copy through a refcounted zero-copy cursor,
// doing no file I/O and no decompression.
//
// Attach a store to a single session with WithTraceStore or to a whole
// grid with Sweep.Traces. The store never changes results: a replay
// through the store is byte-identical to one decoded from the file
// (TestReplayDeterminism asserts it). All methods are safe for
// concurrent use.
type TraceStore struct {
	shared *trace.Shared
}

// NewTraceStore returns a store that retains up to budgetBytes of
// decoded records (<= 0 selects the ~1 GiB default). Idle traces are
// evicted least-recently-used first when the budget is exceeded; a
// trace too large for the whole budget is still served, just never
// retained.
func NewTraceStore(budgetBytes int64) *TraceStore {
	return &TraceStore{shared: trace.NewShared(budgetBytes)}
}

// TraceStoreStats is a point-in-time snapshot of a store's activity.
type TraceStoreStats struct {
	// Decodes is the number of full trace decodes performed; Hits is
	// the number of replays answered from an existing decoded entry. A
	// sweep replaying T traces over P points reports T decodes and
	// P - T hits when the budget holds every trace.
	Decodes uint64 `json:"decodes"`
	Hits    uint64 `json:"hits"`
	// Entries and UsedBytes describe the currently retained traces.
	Entries   int   `json:"entries"`
	UsedBytes int64 `json:"used_bytes"`
	// BudgetBytes is the configured retention budget.
	BudgetBytes int64 `json:"budget_bytes"`
}

// Stats returns a snapshot of the store's counters.
func (t *TraceStore) Stats() TraceStoreStats {
	s := t.shared.Stats()
	return TraceStoreStats{
		Decodes:     s.Decodes,
		Hits:        s.Hits,
		Entries:     s.Entries,
		UsedBytes:   s.UsedBytes,
		BudgetBytes: s.BudgetBytes,
	}
}
