package virtuoso_test

// Determinism and surface tests for the tiered-memory subsystem: the
// tier axes sweep like any other axis, tiered points are byte-identical
// across fresh, pooled, and parallel execution, and the per-tier /
// swap-device counters reach the public Result.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	virtuoso "repro"
)

// tierSweepSpecs is the 2-tier hierarchy the determinism grid sweeps:
// a CXL-like near tier over an NVM-like far tier.
func tierSweepSpecs() [][]virtuoso.TierSpec {
	cxl := virtuoso.TierSpec{Name: "cxl", Bytes: 64 << 20, ReadLat: 600, WriteLat: 900, BytesPerCycle: 8}
	nvm := virtuoso.TierSpec{Name: "nvm", Bytes: 128 << 20, ReadLat: 2500, WriteLat: 8000, BytesPerCycle: 2}
	return [][]virtuoso.TierSpec{
		{cxl},
		{cxl, nvm},
	}
}

// tierSweep is the determinism grid: 2 workloads × {1-tier, 2-tier} ×
// {hotcold, clock} = 8 points, under enough DRAM pressure that pages
// actually migrate.
func tierSweep() *virtuoso.Sweep {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 400_000
	// Buddy keeps the pages 4K (and so migratable); 12MB of DRAM puts
	// the 0.05-scale footprints well past the 50% watermark.
	base.Policy = virtuoso.PolicyBuddy
	base.OSCfg.PhysBytes = 12 << 20
	base.OSCfg.SwapBytes = 512 << 20
	base.OSCfg.SwapThreshold = 0.5
	return &virtuoso.Sweep{
		Base:         base,
		Workloads:    []string{"BFS", "RND"},
		TierSpecs:    tierSweepSpecs(),
		TierPolicies: []string{virtuoso.TierPolicyHotCold, virtuoso.TierPolicyClock},
		Seeds:        []uint64{1},
		Params:       virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:     4,
	}
}

// TestTierDeterminism proves the tiered-memory paths hold the repo's
// determinism contract: the same tier grid run fresh-sequential,
// pooled-sequential, and pooled-parallel yields byte-identical
// CanonicalJSON reports.
func TestTierDeterminism(t *testing.T) {
	const points = 8

	fresh := tierSweep()
	fresh.NoReuse = true
	fresh.Parallel = 1
	freshRep, err := fresh.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(freshRep.Results) != points {
		t.Fatalf("fresh run: %d results, want %d", len(freshRep.Results), points)
	}

	pooled := tierSweep()
	pooled.Parallel = 1
	pooledRep, err := pooled.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	par := tierSweep()
	parRep, err := par.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	freshJSON := canonicalReport(t, freshRep)
	pooledJSON := canonicalReport(t, pooledRep)
	parJSON := canonicalReport(t, parRep)
	if !bytes.Equal(pooledJSON, freshJSON) {
		diffReports(t, pooledJSON, freshJSON)
	}
	if !bytes.Equal(parJSON, freshJSON) {
		diffReports(t, parJSON, freshJSON)
	}

	// The grid must actually exercise migration, or the equivalence is
	// vacuous — and the tier counters must surface in the public Result.
	var demotions, promotions uint64
	for _, r := range freshRep.Results {
		if r.TierPolicy != virtuoso.TierPolicyHotCold && r.TierPolicy != virtuoso.TierPolicyClock {
			t.Fatalf("point %d echoes tier policy %q", r.Index, r.TierPolicy)
		}
		if len(r.Metrics.Tiers) == 0 {
			t.Fatalf("point %d has no per-tier counters", r.Index)
		}
		for _, ts := range r.Metrics.Tiers {
			if ts.Name != "cxl" && ts.Name != "nvm" {
				t.Fatalf("point %d reports unknown tier %q", r.Index, ts.Name)
			}
		}
		demotions += r.Metrics.OS.Demotions
		promotions += r.Metrics.OS.Promotions
	}
	if demotions == 0 || promotions == 0 {
		t.Fatalf("grid exercised no migration: demotions=%d promotions=%d", demotions, promotions)
	}
}

// TestTierSweepSpecRoundTrip drives the same tier grid through the
// declarative JSON spec path (`virtuoso sweep run -spec`) and checks
// validation rejects bad hierarchies and unknown policies loudly.
func TestTierSweepSpecRoundTrip(t *testing.T) {
	spec := []byte(`{
		"workloads": ["RND"],
		"tier_specs": [[{"name": "cxl", "bytes": 67108864, "read_lat": 600, "write_lat": 900}]],
		"tier_policies": ["clock"],
		"scale": 0.05
	}`)
	sp, err := virtuoso.ParseSweepSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sp.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	pts := sw.Points()
	if len(pts) != 1 || len(pts[0].Tiers) != 1 || pts[0].TierPolicy != "clock" {
		t.Fatalf("spec expanded to %+v", pts)
	}

	bad := []struct {
		name, body, want string
	}{
		{"zero capacity", `{"workloads":["RND"],"tier_specs":[[{"name":"cxl","read_lat":1,"write_lat":1}]]}`, "zero capacity"},
		{"zero latency", `{"workloads":["RND"],"tier_specs":[[{"name":"cxl","bytes":4096,"write_lat":1}]]}`, "zero read latency"},
		{"duplicate name", `{"workloads":["RND"],"tier_specs":[[{"name":"cxl","bytes":4096,"read_lat":1,"write_lat":1},{"name":"cxl","bytes":4096,"read_lat":1,"write_lat":1}]]}`, "duplicate"},
		{"reserved swap", `{"workloads":["RND"],"tier_specs":[[{"name":"swap","bytes":4096,"read_lat":1,"write_lat":1}]]}`, "reserved"},
		{"unknown policy", `{"workloads":["RND"],"tier_specs":[[{"name":"cxl","bytes":4096,"read_lat":1,"write_lat":1}]],"tier_policies":["lru-misspelt"]}`, "unknown tier policy"},
		{"policy without tiers", `{"workloads":["RND"],"tier_policies":["clock"]}`, "without tier_specs"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := virtuoso.ParseSweepSpec([]byte(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sp.Sweep(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestTierOpenValidation pins the Open-time loud-failure contract for
// tier misconfiguration.
func TestTierOpenValidation(t *testing.T) {
	good := virtuoso.TierSpec{Name: "cxl", Bytes: 64 << 20, ReadLat: 600, WriteLat: 900}
	if _, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkload("RND"),
		virtuoso.WithTiers(good),
		virtuoso.WithTierPolicy(virtuoso.TierPolicyClock),
	); err != nil {
		t.Fatalf("valid tier config rejected: %v", err)
	}

	if _, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkload("RND"),
		virtuoso.WithTiers(virtuoso.TierSpec{Name: "cxl", ReadLat: 1, WriteLat: 1}),
	); err == nil || !strings.Contains(err.Error(), "zero capacity") {
		t.Fatalf("zero-capacity tier: %v", err)
	}
	if _, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkload("RND"),
		virtuoso.WithTierPolicy("nope"),
	); err == nil || !strings.Contains(err.Error(), "unknown tier policy") {
		t.Fatalf("unknown policy: %v", err)
	}
	// A policy on a flat config is rejected by the engine, not silently
	// ignored.
	if _, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkload("RND"),
		virtuoso.WithTierPolicy(virtuoso.TierPolicyClock),
	); err == nil || !strings.Contains(err.Error(), "without any tiers") {
		t.Fatalf("policy without tiers: %v", err)
	}
}

// TestTierFastPathEquivalence runs a tier configuration under real DRAM
// pressure on both the batched fast lane and the per-instruction
// reference loop: the migration paths (demote, cascade, promote,
// sampling scans) must be byte-identical across the two. This is the
// pressured complement of the tiered TestFastPathEquivalence matrix
// row, which runs without memory pressure.
func TestTierFastPathEquivalence(t *testing.T) {
	run := func(ref bool) []byte {
		cfg := virtuoso.ScaledConfig()
		cfg.MaxAppInsts = 400_000
		cfg.Policy = virtuoso.PolicyBuddy
		cfg.ReferencePath = ref
		cfg.OSCfg.PhysBytes = 12 << 20
		cfg.OSCfg.SwapBytes = 512 << 20
		cfg.OSCfg.SwapThreshold = 0.5
		cfg.OSCfg.Tiers = tierSweepSpecs()[1]
		sess, err := virtuoso.Open(
			virtuoso.WithConfig(cfg),
			virtuoso.WithWorkload("RND"),
			virtuoso.WithWorkloadScale(0.05),
		)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if m.OS.Demotions == 0 {
			t.Fatal("equivalence run exercised no migration; test is vacuous")
		}
		rep := &virtuoso.Report{Results: []virtuoso.Result{sess.Result(m)}, Points: 1}
		data, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	diffReports(t, run(false), run(true))
}

// TestTierSessionSurface checks a tiered single session end to end:
// migrations happen, the tier and swap-device counters surface in
// Metrics, and the Result echoes the policy.
func TestTierSessionSurface(t *testing.T) {
	cfg := virtuoso.ScaledConfig()
	cfg.MaxAppInsts = 400_000
	cfg.Policy = virtuoso.PolicyBuddy
	cfg.OSCfg.PhysBytes = 12 << 20
	cfg.OSCfg.SwapBytes = 512 << 20
	cfg.OSCfg.SwapThreshold = 0.5
	cfg.OSCfg.Tiers = tierSweepSpecs()[0]
	sess, err := virtuoso.Open(
		virtuoso.WithConfig(cfg),
		virtuoso.WithWorkload("RND"),
		virtuoso.WithWorkloadScale(0.05),
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.OS.Demotions == 0 {
		t.Fatal("no demotions under pressure")
	}
	if len(m.Tiers) != 1 || m.Tiers[0].Name != "cxl" || m.Tiers[0].PagesIn == 0 {
		t.Fatalf("tier counters: %+v", m.Tiers)
	}
	res := sess.Result(m)
	if res.TierPolicy != virtuoso.TierPolicyHotCold {
		t.Fatalf("result echoes tier policy %q, want default %q", res.TierPolicy, virtuoso.TierPolicyHotCold)
	}
}
