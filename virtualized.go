package virtuoso

import "repro/internal/core"

// Virtualized simulation (§6.1): Virtuoso spawns two MimicOS instances
// — a guest kernel and a hypervisor — with two-dimensional nested
// address translation between them. Exposed here so studies of
// virtualised translation (examples/virtualized) build against the
// public API alone.
type (
	// VirtualizedConfig configures the two-kernel system.
	VirtualizedConfig = core.VirtualizedConfig
	// VirtualizedSystem couples guest and hypervisor kernels over a
	// nested MMU design; both kernels' instruction streams are injected
	// into the shared core model.
	VirtualizedSystem = core.VirtualizedSystem
)

// DefaultVirtualizedConfig returns a small two-level system.
func DefaultVirtualizedConfig() VirtualizedConfig {
	return core.DefaultVirtualizedConfig()
}

// NewVirtualizedSystem wires guest and hypervisor kernels over a nested
// MMU design per cfg.
func NewVirtualizedSystem(cfg VirtualizedConfig) *VirtualizedSystem {
	return core.NewVirtualizedSystem(cfg)
}
