#!/usr/bin/env bash
# CI drill for the tiered-memory subsystem from the built CLI: a
# pressured flat-vs-tiered × policy grid through the declarative spec
# path, run twice (byte-identical canonical reports, with real
# migration traffic), the -tiers/-tier-policy flag path, and the
# loud-validation contract for bad hierarchies and unknown policies.
#
# Usage: bash scripts/tiering_ci.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
echo "tiering drill in $work"

go build -o "$work/virtuoso" ./cmd/virtuoso
v="$work/virtuoso"

# A consolidation scenario: DRAM sized at 12MB against a ~13MB
# footprint (buddy allocation, watermark 0.5), so the flat cell spills
# to swap and the tiered cells demote into the CXL/NVM hierarchy.
cat > "$work/spec.json" <<'EOF'
{
  "workloads": ["RND"],
  "policies": ["bd"],
  "seeds": [1],
  "scale": 0.05,
  "max_app_insts": 400000,
  "phys_bytes": 12582912,
  "swap_bytes": 536870912,
  "swap_threshold": 0.5,
  "tier_specs": [
    [],
    [{"name": "cxl", "bytes": 67108864, "read_lat": 600, "write_lat": 900, "bytes_per_cycle": 8},
     {"name": "nvm", "bytes": 134217728, "read_lat": 2500, "write_lat": 8000, "bytes_per_cycle": 2}]
  ],
  "tier_policies": ["hotcold", "clock"]
}
EOF

# The tier grid must be deterministic end to end: the same spec run
# twice yields byte-identical canonical reports.
"$v" sweep run -spec "$work/spec.json" -canonical -o "$work/run1.json"
"$v" sweep run -spec "$work/spec.json" -canonical -o "$work/run2.json"
if ! cmp "$work/run1.json" "$work/run2.json"; then
  echo "ERROR: tier sweep is not deterministic across runs" >&2
  exit 1
fi

# The tiered cells must have migrated for real (the drill is vacuous
# otherwise), and the results must echo both policies and carry
# per-tier counters.
grep -qE '"tier_policy": ?"hotcold"' "$work/run1.json" || { echo "ERROR: no hotcold point in report" >&2; exit 1; }
grep -qE '"tier_policy": ?"clock"' "$work/run1.json" || { echo "ERROR: no clock point in report" >&2; exit 1; }
grep -qE '"name": ?"cxl"' "$work/run1.json" || { echo "ERROR: no per-tier counters in report" >&2; exit 1; }
if ! grep -oE '"Demotions": ?[0-9]+' "$work/run1.json" | grep -qvE '"Demotions": ?0$'; then
  echo "ERROR: tier grid exercised no demotions" >&2
  exit 1
fi

# The flag path: -tiers/-tier-policy sweep the same hierarchy from the
# command line, one row per migration policy.
"$v" -workload RND -policy bd -scale 0.05 -insts 200000 \
  -tiers cxl:64M:600:900:8,nvm:128M:2500:8000:2 -tier-policy hotcold,clock \
  > "$work/cli.txt" 2>/dev/null
grep -q 'tierpol' "$work/cli.txt" || { echo "ERROR: CLI grid lacks the tier-policy column" >&2; cat "$work/cli.txt" >&2; exit 1; }
[ "$(grep -c '^RND ' "$work/cli.txt")" = 2 ] || { echo "ERROR: CLI tier-policy axis did not expand to 2 points" >&2; cat "$work/cli.txt" >&2; exit 1; }

# Misconfiguration fails loudly, at parse time, with a named cause.
if "$v" -workload RND -tiers cxl:0:1:1 2> "$work/err1.log"; then
  echo "ERROR: zero-capacity tier accepted" >&2
  exit 1
fi
grep -q 'zero capacity' "$work/err1.log" || { echo "ERROR: zero-capacity rejection lacks cause" >&2; cat "$work/err1.log" >&2; exit 1; }
if "$v" -workload RND -tier-policy clock 2> "$work/err2.log"; then
  echo "ERROR: -tier-policy without -tiers accepted" >&2
  exit 1
fi
sed -i 's/"tier_policies": \["hotcold", "clock"\]/"tier_policies": ["lru-misspelt"]/' "$work/spec.json"
if "$v" sweep run -spec "$work/spec.json" -o /dev/null 2> "$work/err3.log"; then
  echo "ERROR: unknown tier policy accepted in spec" >&2
  exit 1
fi
grep -q 'unknown tier policy' "$work/err3.log" || { echo "ERROR: unknown-policy rejection lacks cause" >&2; cat "$work/err3.log" >&2; exit 1; }

echo "OK: deterministic tier grid with real migration; CLI axis and loud validation verified"
