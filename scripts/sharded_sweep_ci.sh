#!/usr/bin/env bash
# CI drill for the sharded, resumable sweep service: run a small grid
# as 3 shards, kill one mid-run, resume it from its checkpoint, merge
# the shard files, and require the merged report to be byte-identical
# (canonical form) to an unsharded run of the same spec.
#
# Usage: bash scripts/sharded_sweep_ci.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
echo "sharded-sweep drill in $work"

go build -o "$work/virtuoso" ./cmd/virtuoso
v="$work/virtuoso"

# 6 points (2 workloads x 3 seeds), sized so each point simulates for
# about a second: the kill below lands after shard 1's first point
# completes but while its second is still running.
cat > "$work/spec.json" <<'EOF'
{"workloads": ["JSON", "2D-Sum"], "seeds": [1, 2, 3], "scale": 1.0, "max_app_insts": 8000000}
EOF

# Golden: the unsharded run, canonical form (host times stripped).
"$v" sweep run -spec "$work/spec.json" -canonical -o "$work/golden.json"

# Shards 0 and 2 run to completion.
"$v" sweep run -spec "$work/spec.json" -shard 0/3 -checkpoint "$work/s0.jsonl" -o /dev/null
"$v" sweep run -spec "$work/spec.json" -shard 2/3 -checkpoint "$work/s2.jsonl" -o /dev/null

# Shard 1 is killed mid-run (SIGTERM, what operators and schedulers
# send). The graceful path flushes every completed point to the
# checkpoint before exiting; the in-flight point is discarded.
"$v" sweep run -spec "$work/spec.json" -shard 1/3 -checkpoint "$work/s1.jsonl" -parallel 1 -o /dev/null &
pid=$!
sleep 1.3
if kill -TERM "$pid" 2>/dev/null; then
  echo "killed shard 1 (pid $pid) mid-run"
  wait "$pid" && { echo "ERROR: killed shard exited 0" >&2; exit 1; } || true
else
  # The shard finished before the kill landed; the drill still
  # validates resume (as a no-op) and the merge identity.
  echo "WARN: shard 1 finished before the kill; resume will be a no-op"
  wait "$pid" || true
fi

# Points already durable in shard 1's checkpoint (lines minus header).
pre=$(($(wc -l < "$work/s1.jsonl") - 1))
echo "shard 1 checkpoint holds $pre/2 points after the kill"

# Resume: the same command again. Completed points must restore from
# the checkpoint, only the remainder may simulate (-progress lines
# count exactly the freshly simulated points).
"$v" sweep run -spec "$work/spec.json" -shard 1/3 -checkpoint "$work/s1.jsonl" -progress -o /dev/null 2> "$work/resume.log"
fresh=$(grep -c '^\[' "$work/resume.log" || true)
echo "resume simulated $fresh points"
if [ "$((pre + fresh))" -ne 2 ]; then
  echo "ERROR: checkpointed ($pre) + resumed ($fresh) != 2 — resume re-simulated or lost points" >&2
  cat "$work/resume.log" >&2
  exit 1
fi

# Merge the three shard files and compare against the unsharded golden.
"$v" sweep merge -canonical -o "$work/merged.json" "$work/s0.jsonl" "$work/s1.jsonl" "$work/s2.jsonl"
if ! cmp "$work/merged.json" "$work/golden.json"; then
  echo "ERROR: merged shard report differs from the unsharded run" >&2
  exit 1
fi
echo "OK: kill/resume preserved completed points; merged == unsharded (byte-identical canonical reports)"
