#!/usr/bin/env bash
# CI smoke for the VTRC v2 container: record a v1 trace, convert it to
# v2, and prove the format change is invisible — v1 replay, v2 replay
# (parallel block decode), and a shared-store multi-seed replay must
# all be deterministic, and the second shared-store round must decode
# zero blocks (every replay served from the warm store).
#
# Usage: bash scripts/trace_v2_ci.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
echo "trace-v2 smoke in $work"

go build -o "$work/virtuoso" ./cmd/virtuoso
v="$work/virtuoso"

sim=(-workload BFS -scale 0.05 -insts 200000 -seed 7)

# Record in the legacy v1 format (gzip envelope via the extension).
"$v" trace record "${sim[@]}" -format v1 -o "$work/rec.trc.gz" > "$work/record.log"

# Convert to v2; the summary must report the block-compressed format.
"$v" trace convert -json "$work/rec.trc.gz" "$work/rec.trc" > "$work/convert.json"
grep -q '"version": 2' "$work/convert.json" || {
  echo "ERROR: convert did not produce a v2 file" >&2
  cat "$work/convert.json" >&2
  exit 1
}

# The O(1) index summary of the v2 file must agree with the v1 file's
# streamed record counts.
"$v" trace info -json "$work/rec.trc.gz" | grep -Eo '"(records|instructions|mem_ops)": [0-9]+' > "$work/counts.v1"
"$v" trace info -json "$work/rec.trc"    | grep -Eo '"(records|instructions|mem_ops)": [0-9]+' > "$work/counts.v2"
if ! cmp -s "$work/counts.v1" "$work/counts.v2"; then
  echo "ERROR: v1 and v2 record counts disagree" >&2
  diff "$work/counts.v1" "$work/counts.v2" >&2 || true
  exit 1
fi

# Replaying the v1 file and its v2 conversion must produce
# byte-identical canonical reports.
"$v" trace replay -canonical -o "$work/v1.json" "$work/rec.trc.gz"
"$v" trace replay -canonical -o "$work/v2.json" "$work/rec.trc"
if ! cmp "$work/v1.json" "$work/v2.json"; then
  echo "ERROR: v2 replay diverged from v1 replay" >&2
  exit 1
fi

# Shared decoded-trace store: two rounds over two seeds. Round 2 must
# decode nothing (the store already holds the decoded trace) and —
# enforced by the CLI itself — reproduce round 1 byte-identically.
"$v" trace replay -seeds 0,11 -rounds 2 -canonical -o "$work/shared.json" \
  "$work/rec.trc" 2> "$work/shared.log"
grep -Eq '^round 2: 2 points, 0 decoded' "$work/shared.log" || {
  echo "ERROR: second shared-store round re-decoded the trace" >&2
  cat "$work/shared.log" >&2
  exit 1
}

# The recorded-seed replay inside the shared run must match the plain
# v2 replay: the store is invisible in the results.
python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
single = json.load(open(f"{work}/v2.json"))["results"][0]
shared = json.load(open(f"{work}/shared.json"))["results"]
rec = next(r for r in shared if r["seed"] == single["seed"])
for r in (single, rec):
    r.pop("index", None)  # position in its own report, not a result
if rec != single:
    sys.exit("ERROR: shared-store result differs from plain v2 replay")
EOF
echo "OK: v1 == v2 replay (byte-identical); shared round 2 decoded 0 blocks and matched round 1"
