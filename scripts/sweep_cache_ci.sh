#!/usr/bin/env bash
# CI smoke for the content-addressed point cache: run the same small
# grid twice against one -cache directory. The first run simulates
# every point and warms the cache; the second must simulate nothing —
# every point answered from cache — and still produce a byte-identical
# canonical report.
#
# Usage: bash scripts/sweep_cache_ci.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
echo "sweep-cache smoke in $work"

go build -o "$work/virtuoso" ./cmd/virtuoso
v="$work/virtuoso"

cat > "$work/spec.json" <<'EOF'
{"workloads": ["JSON", "2D-Sum"], "seeds": [1, 2], "scale": 0.25, "max_app_insts": 2000000}
EOF

# Cold run: everything simulates, the cache warms.
"$v" sweep run -spec "$work/spec.json" -cache "$work/cache" -canonical -o "$work/cold.json" 2> "$work/cold.log"
grep -E ', 4 simulated$' "$work/cold.log" || {
  echo "ERROR: cold run did not simulate all 4 points" >&2
  cat "$work/cold.log" >&2
  exit 1
}

# Warm run: the identical grid must be answered entirely from cache.
"$v" sweep run -spec "$work/spec.json" -cache "$work/cache" -canonical -o "$work/warm.json" 2> "$work/warm.log"
grep -E '4 from cache, 0 simulated$' "$work/warm.log" || {
  echo "ERROR: warm run re-simulated cached points" >&2
  cat "$work/warm.log" >&2
  exit 1
}

# The cache must be invisible in the results.
if ! cmp "$work/cold.json" "$work/warm.json"; then
  echo "ERROR: cache-answered report differs from the simulated run" >&2
  exit 1
fi
echo "OK: warm run simulated 0 points; cached == simulated (byte-identical canonical reports)"
