package virtuoso_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	virtuoso "repro"
)

// tinyScale shrinks workload footprints for one session.
func tinyScale() virtuoso.Option { return virtuoso.WithWorkloadScale(0.05) }

func TestOpenErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []virtuoso.Option
		want string
	}{
		{"no workload", nil, "no workload"},
		{"unknown workload", []virtuoso.Option{virtuoso.WithWorkload("nope")}, `unknown workload "nope"`},
		{"unknown design", []virtuoso.Option{virtuoso.WithWorkload("BFS"), virtuoso.WithDesign("bogus")}, `unknown design "bogus"`},
		{"unknown policy", []virtuoso.Option{virtuoso.WithWorkload("BFS"), virtuoso.WithPolicy("wat")}, `unknown policy "wat"`},
		{"fragmentation range", []virtuoso.Option{virtuoso.WithWorkload("BFS"), virtuoso.WithFragmentation(1.5)}, "out of range"},
		{"bad scale", []virtuoso.Option{virtuoso.WithWorkload("BFS"), virtuoso.WithWorkloadScale(-1)}, "must be positive"},
		{"nil custom workload", []virtuoso.Option{virtuoso.WithCustomWorkload(nil)}, "nil workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := virtuoso.Open(tc.opts...)
			if err == nil {
				t.Fatalf("Open succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestOpenFailurePaths(t *testing.T) {
	if _, err := virtuoso.Open(virtuoso.WithWorkloadScale(0.9)); err == nil {
		t.Fatal("Open without a workload should fail")
	}
	bad := virtuoso.DefaultConfig()
	bad.Policy = "no-such-policy"
	if _, err := virtuoso.Open(
		virtuoso.WithConfig(bad),
		virtuoso.WithWorkloadScale(0.9),
		virtuoso.WithWorkload("BFS"),
	); err == nil {
		t.Fatal("Open with an invalid config should fail")
	}
	// Explicit construction parameters are per-session: a session at a
	// custom scale never affects a later default-parameter lookup.
	w, err := virtuoso.NamedWorkload("BFS")
	if err != nil {
		t.Fatal(err)
	}
	if w.FootprintBytes() < 64<<20 {
		t.Errorf("default BFS footprint %d MB implausibly small", w.FootprintBytes()>>20)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := virtuoso.ParseMode("emulatoin"); err == nil {
		t.Error("ParseMode accepted a typo")
	}
	m, err := virtuoso.ParseMode("emulation")
	if err != nil || m != virtuoso.Emulation {
		t.Errorf("ParseMode(emulation) = %v, %v", m, err)
	}
	for _, d := range virtuoso.KnownDesigns() {
		if _, err := virtuoso.ParseDesign(string(d)); err != nil {
			t.Errorf("ParseDesign rejected known design %q: %v", d, err)
		}
	}
	for _, p := range virtuoso.KnownPolicies() {
		if _, err := virtuoso.ParsePolicy(string(p)); err != nil {
			t.Errorf("ParsePolicy rejected known policy %q: %v", p, err)
		}
	}
}

func TestOpenRunAndSessionSingleUse(t *testing.T) {
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		tinyScale(),
		virtuoso.WithWorkload("JSON"),
		virtuoso.WithDesign(virtuoso.DesignRadix),
		virtuoso.WithPolicy(virtuoso.PolicyTHP),
		virtuoso.WithSeed(7),
		virtuoso.WithMaxInstructions(100_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Config().Seed; got != 7 {
		t.Errorf("Config().Seed = %d, want 7", got)
	}
	m, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.AppInsts == 0 || m.Cycles == 0 {
		t.Errorf("empty metrics: app=%d cycles=%d", m.AppInsts, m.Cycles)
	}
	if _, err := sess.Run(); err == nil {
		t.Error("second Run on the same session should fail")
	}
}

func TestSessionRunContextCancelled(t *testing.T) {
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		tinyScale(),
		virtuoso.WithWorkload("JSON"),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.RunContext(ctx); err != context.Canceled {
		t.Errorf("RunContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		tinyScale(),
		virtuoso.WithWorkload("JSON"),
		virtuoso.WithMaxInstructions(100_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := sess.Result(m)

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back virtuoso.Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workload != r.Workload || back.Design != r.Design || back.Policy != r.Policy ||
		back.Mode != r.Mode || back.Seed != r.Seed {
		t.Errorf("config echo changed: %+v vs %+v", back, r)
	}
	if back.Metrics.Cycles != m.Cycles || back.Metrics.IPC != m.IPC || back.Metrics.MinorFaults != m.MinorFaults {
		t.Errorf("metrics changed across round trip")
	}
	if m.PFLatNs != nil {
		if back.Metrics.PFLatNs == nil {
			t.Fatal("fault latency series lost in round trip")
		}
		if got, want := back.Metrics.PFLatNs.Len(), m.PFLatNs.Len(); got != want {
			t.Errorf("series length %d, want %d", got, want)
		}
		if got, want := back.Metrics.PFLatNs.Sum(), m.PFLatNs.Sum(); got != want {
			t.Errorf("series sum %v, want %v", got, want)
		}
	}

	// Re-marshalling the decoded result must reproduce the bytes.
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("round-tripped result marshals differently")
	}
}
