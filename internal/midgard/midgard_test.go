package midgard

import (
	"testing"

	"repro/internal/mem"
)

type nop struct{}

func (nop) Load(mem.PAddr)  {}
func (nop) Store(mem.PAddr) {}
func (nop) ALU(uint32)      {}

func TestSpaceMapsVMAsToDisjointMA(t *testing.T) {
	s := NewSpace(0x100000)
	k := nop{}
	a := s.AddVMA(0x10000, 0x20000, k)
	b := s.AddVMA(0x40000, 0x60000, k)
	if a.MBase == b.MBase {
		t.Fatal("VMAs share an MA base")
	}
	aEnd := a.MBase + MAddr(0x10000)
	if b.MBase < aEnd {
		t.Fatalf("MA ranges overlap: a=[%x,%x) b starts %x", a.MBase, aEnd, b.MBase)
	}
}

func TestSpaceFindChargesWalk(t *testing.T) {
	s := NewSpace(0x100000)
	k := nop{}
	s.AddVMA(0x10000, 0x20000, k)
	var steps []mem.PAddr
	v, ok := s.Find(0x15000, &steps)
	if !ok {
		t.Fatal("find missed")
	}
	if len(steps) == 0 {
		t.Fatal("frontend walk accessed no tree nodes")
	}
	if ma := v.Translate(0x15000); ma != v.MBase+0x5000 {
		t.Fatalf("translate = %x", ma)
	}
	if _, ok := s.Find(0x30000, nil); ok {
		t.Fatal("found VMA in a hole")
	}
}

func TestSpaceRemove(t *testing.T) {
	s := NewSpace(0x100000)
	k := nop{}
	s.AddVMA(0x10000, 0x20000, k)
	s.AddVMA(0x30000, 0x40000, k)
	if n := s.RemoveVMA(0x10000, 0x20000, k); n != 1 {
		t.Fatalf("removed %d", n)
	}
	if s.VMACount() != 1 {
		t.Fatalf("count = %d", s.VMACount())
	}
}

func TestManySmallVMAs(t *testing.T) {
	// The Fig. 18 regime: one big VMA plus many small ones.
	s := NewSpace(0x100000)
	k := nop{}
	s.AddVMA(0x1_0000_0000, 0x11_0000_0000, k)
	for i := 0; i < 147; i++ {
		base := mem.VAddr(0x20_0000_0000 + i*0x10000)
		s.AddVMA(base, base+0x1000, k)
	}
	if s.VMACount() != 148 {
		t.Fatalf("count = %d", s.VMACount())
	}
	if _, ok := s.Find(0x2_0000_0000, nil); !ok {
		t.Fatal("big VMA lookup failed")
	}
}
