// Package midgard implements the Midgard intermediate address space
// (Gupta et al., ISCA'21), Use Case 3 (§7.6.1, Figs. 17, 18): the
// frontend translates virtual addresses to *Midgard addresses* at VMA
// granularity (cached in VMA lookaside buffers, missing into a B-tree of
// VMAs), deferring the Midgard→physical translation (backend, a deep
// radix table) until a memory access actually leaves the cache hierarchy.
package midgard

import (
	"sort"

	"repro/internal/mem"
)

// MAddr is a Midgard (intermediate) address.
type MAddr uint64

// VMA is one virtual memory area mapped into the Midgard space: VA range
// [VStart, VEnd) maps linearly to MA range starting at MBase.
type VMA struct {
	VStart mem.VAddr
	VEnd   mem.VAddr
	MBase  MAddr
}

// Translate maps va into the Midgard space.
func (v VMA) Translate(va mem.VAddr) MAddr { return v.MBase + MAddr(va-v.VStart) }

// Contains reports whether va is inside the VMA.
func (v VMA) Contains(va mem.VAddr) bool { return va >= v.VStart && va < v.VEnd }

// KernelMem mirrors the instrumentation interface for kernel-side updates.
type KernelMem interface {
	Load(pa mem.PAddr)
	Store(pa mem.PAddr)
	ALU(n uint32)
}

// Space is the per-process Midgard state: the VMA tree (frontend) and
// the allocation cursor of the MA space. The backend Midgard→physical
// page table is owned by the MMU design (it is hardware-walked).
type Space struct {
	vmas     []VMA
	nextMA   MAddr
	nodeBase mem.PAddr // kernel B-tree nodes for the frontend walk
	fanout   int

	FrontendWalks uint64
	WalkSteps     uint64
}

// NewSpace builds an empty Midgard space with frontend tree nodes at
// nodeBase.
func NewSpace(nodeBase mem.PAddr) *Space {
	return &Space{nextMA: 1 << 30, nodeBase: nodeBase, fanout: 8}
}

// AddVMA maps [start, end) into a fresh MA range and returns the VMA.
func (s *Space) AddVMA(start, end mem.VAddr, k KernelMem) VMA {
	v := VMA{VStart: start, VEnd: end, MBase: s.nextMA}
	s.nextMA += MAddr(mem.AlignUp(uint64(end-start), 2*mem.MB)) + 2*mem.MB
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].VStart >= start })
	s.vmas = append(s.vmas, VMA{})
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
	for _, pa := range s.pathTo(i) {
		k.Load(pa)
	}
	k.Store(s.nodeBase + mem.PAddr(i*64))
	k.ALU(48)
	return v
}

// RemoveVMA unmaps VMAs overlapping [start, end).
func (s *Space) RemoveVMA(start, end mem.VAddr, k KernelMem) int {
	kept := s.vmas[:0]
	removed := 0
	for _, v := range s.vmas {
		if v.VStart < end && start < v.VEnd {
			removed++
			continue
		}
		kept = append(kept, v)
	}
	s.vmas = kept
	if removed > 0 {
		k.Store(s.nodeBase)
		k.ALU(uint32(16 * removed))
	}
	return removed
}

// Find locates the VMA containing va; steps receives the frontend
// B-tree node addresses the hardware VMA walker touches on a VLB miss.
func (s *Space) Find(va mem.VAddr, steps *[]mem.PAddr) (VMA, bool) {
	s.FrontendWalks++
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].VEnd > va })
	for _, pa := range s.pathTo(i) {
		if steps != nil {
			*steps = append(*steps, pa)
		}
		s.WalkSteps++
	}
	if i < len(s.vmas) && s.vmas[i].Contains(va) {
		return s.vmas[i], true
	}
	return VMA{}, false
}

func (s *Space) pathTo(i int) []mem.PAddr {
	depth := 1
	for n := s.fanout; n < len(s.vmas)+1; n *= s.fanout {
		depth++
	}
	path := make([]mem.PAddr, 0, depth)
	stride := 1
	for d := 0; d < depth; d++ {
		node := i / (stride * s.fanout)
		path = append(path, s.nodeBase+mem.PAddr(d)<<16+mem.PAddr(node*64))
		stride *= s.fanout
	}
	return path
}

// VMACount returns the number of live VMAs (Fig. 18's census).
func (s *Space) VMACount() int { return len(s.vmas) }

// VMAs returns the VMAs sorted by start (not to be modified).
func (s *Space) VMAs() []VMA { return s.vmas }
