package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/tier"
)

// Tiering is the consolidation-ready scenario family for the tiered
// memory subsystem: the same memory-hungry workloads on flat DRAM, a
// DRAM+CXL hierarchy, and a DRAM+CXL+NVM hierarchy, crossed with the
// built-in migration policies. DRAM is sized well below the footprint,
// so the flat rows pay swap I/O for every overflow page while the
// tiered rows absorb it in the slow tiers — the capacity-expansion
// story tiering is deployed for — and the policy rows show how victim
// selection shifts traffic between the tiers and the swap terminal.
func Tiering(o Opts) *Table {
	t := &Table{
		ID:    "tiering",
		Title: "Tiered memory: flat DRAM vs CXL/NVM hierarchies under migration policies",
		Columns: []string{
			"IPC", "demotions", "promotions", "swap-outs", "major-faults",
			"migration-Mcycles", "tier-resident-MB",
		},
	}

	// DRAM holds roughly half the footprint; the slow tiers are sized to
	// absorb the spill (near tier ~the DRAM deficit, far tier ample).
	// Buddy allocation keeps pages 4K and therefore migratable — the THP
	// interaction (huge pages swap directly rather than demote) is its
	// own row below.
	dram, cxlBytes, nvmBytes := 96*mem.MB, 128*mem.MB, 256*mem.MB
	if o.Quick {
		dram, cxlBytes, nvmBytes = 16*mem.MB, 32*mem.MB, 64*mem.MB
	}
	cxl := tier.Spec{Name: "cxl", Bytes: uint64(cxlBytes), ReadLat: 600, WriteLat: 900, BytesPerCycle: 8}
	nvm := tier.Spec{Name: "nvm", Bytes: uint64(nvmBytes), ReadLat: 2500, WriteLat: 8000, BytesPerCycle: 2}

	hierarchies := []struct {
		label string
		specs []tier.Spec
	}{
		{"flat", nil},
		{"cxl", []tier.Spec{cxl}},
		{"cxl+nvm", []tier.Spec{cxl, nvm}},
	}
	policies := []string{tier.PolicyHotCold, tier.PolicyClock}
	workloadNames := []string{"RND", "BFS"}
	if o.Quick {
		workloadNames = workloadNames[:1]
	}

	pressured := func(specs []tier.Spec, policy string) core.Config {
		cfg := BaseConfig(o)
		cfg.Policy = core.PolicyBuddy
		cfg.OSCfg.PhysBytes = uint64(dram)
		cfg.OSCfg.SwapBytes = 4 * mem.GB
		cfg.OSCfg.SwapThreshold = 0.5
		cfg.OSCfg.Tiers = specs
		cfg.OSCfg.TierPolicy = policy
		return cfg
	}

	type point struct{ label string }
	var labels []point
	var jobs []job
	for _, wname := range workloadNames {
		for _, h := range hierarchies {
			pols := policies
			if h.specs == nil {
				pols = []string{""} // a migration policy is meaningless without tiers
			}
			for _, pol := range pols {
				label := fmt.Sprintf("%s %s", wname, h.label)
				if pol != "" {
					label += "/" + pol
				}
				labels = append(labels, point{label})
				jobs = append(jobs, job{cfg: pressured(h.specs, pol), w: named(o, byName(o, wname))})
			}
		}
		// The THP interaction row: huge pages are not demoted — they swap
		// out whole on the desperate reclaim pass — so a THP-backed
		// footprint leans on the swap terminal even with tiers configured.
		thp := pressured([]tier.Spec{cxl, nvm}, tier.PolicyHotCold)
		thp.Policy = core.PolicyTHP
		labels = append(labels, point{fmt.Sprintf("%s cxl+nvm/hotcold (THP)", wname)})
		jobs = append(jobs, job{cfg: thp, w: named(o, byName(o, wname))})
	}

	for i, m := range runAll(o, jobs) {
		var farMB float64
		for _, ts := range m.Tiers {
			farMB += float64(ts.UsedBytes) / float64(mem.MB)
		}
		t.Add(labels[i].label,
			m.IPC,
			float64(m.OS.Demotions),
			float64(m.OS.Promotions),
			float64(m.OS.SwapOuts),
			float64(m.MajorFaults),
			float64(m.OS.MigrationCycles)/1e6,
			farMB,
		)
	}
	t.Note("DRAM sized ~half the footprint (buddy allocation, swap watermark 0.5); CXL-like near tier 600/900-cycle access at 8 B/cycle, NVM-like far tier 2500/8000 cycles at 2 B/cycle. Flat rows overflow straight to swap; tiered rows demote cold pages down the hierarchy and promote them back on the fault that touches them (hint-fault promotion). THP rows: huge pages bypass demotion (they swap out whole on the desperate reclaim pass), and under this much DRAM pressure the THP policy mostly falls back to 4K mappings, converging on the buddy numbers.")
	return t
}
