package experiments

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// llmPolicies returns the seven physical-memory allocation policies of
// Use Case 2 (§7.5, Fig. 16): buddy-only, conservative and aggressive
// reservation-based THP, and four Utopia configurations with different
// RestSeg sizes and associativities.
type llmPolicy struct {
	label string
	mut   func(*core.Config)
}

func llmPolicies() []llmPolicy {
	ut := func(size uint64, ways int) func(*core.Config) {
		return func(c *core.Config) {
			c.Design = core.DesignUtopia
			c.Policy = core.PolicyUtopia
			c.UtopiaSegs = []core.UtopiaSegSpec{
				{SizeBytes: size, Ways: ways, PageSize: mem.Page4K},
			}
		}
	}
	return []llmPolicy{
		{"BD", func(c *core.Config) { c.Policy = core.PolicyBuddy }},
		{"CR-THP", func(c *core.Config) { c.Policy = core.PolicyCRTHP }},
		{"AR-THP", func(c *core.Config) { c.Policy = core.PolicyARTHP }},
		{"UT-4MB/8w", ut(4*mem.MB, 8)},
		{"UT-32MB/8w", ut(32*mem.MB, 8)},
		{"UT-32MB/16w", ut(32*mem.MB, 16)},
		{"UT-512MB/16w", ut(512*mem.MB, 16)},
	}
}

// Fig16 reproduces Figure 16: the page-fault latency distribution of the
// seven allocation policies across the three LLM inference workloads.
// Paper shape: the THP reservation allocators match BD's median but grow
// >1000× tails; UT-32MB/16w achieves the lowest total PF latency; the
// 512MB RestSeg regresses (tag locality).
func Fig16(o Opts) *Table {

	t := &Table{
		ID:      "fig16",
		Title:   "Page fault latency distribution per allocation policy (ns)",
		Columns: []string{"median", "p90", "p99", "max", "total(µs)"},
	}

	lws := []*workloads.Workload{byName(o, "Bagel-2.8B"), byName(o, "Llama-2-7B"), byName(o, "Mistral-7B")}
	if o.Quick {
		lws = lws[:1]
	}
	pols := llmPolicies()
	var jobs []job
	for _, w := range lws {
		for _, pol := range pols {
			cfg := BaseConfig(o)
			cfg.MaxAppInsts = 0 // run inference to completion
			pol.mut(&cfg)
			jobs = append(jobs, job{cfg, named(o, w)})
		}
	}
	ms := runAll(o, jobs)
	for i, w := range lws {
		for pi, pol := range pols {
			s := ms[i*len(pols)+pi].PFLatNs
			if s == nil || s.Len() == 0 {
				t.Add(w.Name()+" "+pol.label, 0, 0, 0, 0, 0)
				continue
			}
			t.Add(w.Name()+" "+pol.label,
				s.Median(), s.Percentile(90), s.Percentile(99), s.Max(), s.Sum()/1e3)
		}
	}
	t.Note("Paper: reservation THP has BD-like medians with >1000x tail latency; UT-32MB/16w has the lowest page fault latency; UT-512MB/16w regresses due to tag-array locality.")
	return t
}
