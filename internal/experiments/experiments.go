// Package experiments contains one harness per table and figure of the
// paper's evaluation (§7). Each harness builds the systems, runs the
// workloads, and returns a Table whose rows reproduce the series the
// paper reports. Benchmarks in the repository root run scaled-down
// versions; cmd/figures runs the full versions and renders EXPERIMENTS.md.
//
// Scaling methodology: the paper's workloads use 50–100 GB footprints
// against a 2048-entry L2 STLB. We shrink footprints ~100× and the TLB
// hierarchy proportionally (ScaledMMU) so that the footprint-to-TLB-reach
// and footprint-to-cache ratios that drive every result are preserved.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// Opts sizes an experiment.
type Opts struct {
	// Quick runs a reduced configuration (benchmark mode): fewer
	// workloads, smaller footprints, tighter instruction caps.
	Quick bool
	Seed  uint64
	// Parallel bounds the worker pool the harnesses run their
	// simulation points on (<= 0 means GOMAXPROCS). Every point is an
	// isolated system, so results are identical at any parallelism.
	Parallel int
}

// Table is a reproduced result: rows of labelled numeric cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one table row.
type Row struct {
	Label string
	Cells []float64
}

// Add appends a row.
func (t *Table) Add(label string, cells ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Note appends a free-form note rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "| %s |", "series")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r.Label)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %s |", fmtCell(c))
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

func fmtCell(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// ScaledMMU returns the TLB hierarchy scaled to the shrunken footprints:
// the paper's 2048-entry STLB covers 4% of a 100 GB footprint with 2 MB
// pages; a 128-entry STLB covers a similar share of our ~300 MB ones.
func ScaledMMU() mmu.Config {
	return mmu.Config{
		ITLBEntries: 32, ITLBWays: 4, ITLBLat: 1,
		DTLB4KEntries: 16, DTLB4KWays: 4,
		DTLB2MEntries: 8, DTLB2MWays: 4,
		DTLBLat:     1,
		STLBEntries: 128, STLBWays: 8, STLBLat: 12,
		// Preserve the huge-page footprint-to-reach ratio at scale: the
		// paper's 50-100GB footprints dwarf a 2048x2MB STLB; our ~100s-MB
		// footprints must likewise dwarf the huge-page reach.
		STLB4KOnly: true,
		// Four-entry PWCs: the paper's 32 entries cover a sliver of a
		// 100GB footprint; 4 entries cover a similar sliver of ours.
		PWCEntries: 4, PWCWays: 2,
	}
}

// ScaledCaches shrinks the cache hierarchy alongside the footprints so
// page-table state competes with data for capacity, as it does when a
// multi-GB page table meets an MB-scale LLC.
func ScaledCaches() cache.HierarchyConfig {
	c := cache.DefaultHierarchyConfig()
	c.L1ISize = 8 * mem.KB
	c.L1DSize = 8 * mem.KB
	c.L2Size = 128 * mem.KB
	c.L3Size = 256 * mem.KB
	return c
}

// BaseConfig returns the scaled Virtuoso+Sniper system all experiments
// start from.
func BaseConfig(o Opts) core.Config {
	cfg := core.DefaultConfig()
	cfg.MMUCfg = ScaledMMU()
	cfg.CacheCfg = ScaledCaches()
	cfg.OSCfg.PhysBytes = 2 * mem.GB
	cfg.Seed = o.Seed + 1
	if o.Quick {
		cfg.MaxAppInsts = 400_000
	} else {
		cfg.MaxAppInsts = 4_000_000
	}
	return cfg
}

// paramsFor returns the workload construction parameters of the
// experiment size — threaded explicitly through every construction, so
// experiments never touch shared catalog state.
func paramsFor(o Opts) workloads.Params {
	if o.Quick {
		return workloads.Params{Scale: 0.08, LongIters: 4}
	}
	return workloads.Params{Scale: 0.5, LongIters: 10}
}

// byName builds one catalog workload at the experiment parameters;
// harness workload sets are programmatic, so unknown names panic.
func byName(o Opts, name string) *workloads.Workload {
	w, ok := workloads.ByNameWith(name, paramsFor(o))
	if !ok {
		panic(fmt.Sprintf("experiments: unknown workload %q", name))
	}
	return w
}

// longSubset returns the long-running workloads used by an experiment.
func longSubset(o Opts) []*workloads.Workload {
	if o.Quick {
		return []*workloads.Workload{byName(o, "BFS"), byName(o, "RND"), byName(o, "XS")}
	}
	return workloads.LongSuiteWith(paramsFor(o))
}

// shortSubset returns the short-running workloads used by an experiment.
func shortSubset(o Opts) []*workloads.Workload {
	if o.Quick {
		return []*workloads.Workload{byName(o, "JSON"), byName(o, "Llama-2-7B"), byName(o, "2D-Sum")}
	}
	return workloads.ShortSuiteWith(paramsFor(o))
}

// runOne builds a system and runs w under it. Harness configurations
// are programmatic, so configuration errors panic.
func runOne(cfg core.Config, w *workloads.Workload) core.Metrics {
	s, err := core.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s.Run(w)
}

// job is one simulation point of an experiment harness: a system
// configuration plus a factory yielding a fresh workload instance.
type job struct {
	cfg core.Config
	w   func() *workloads.Workload
}

// named returns a factory that rebuilds w's catalog entry per call at
// the experiment parameters, so concurrent jobs never share a (mutable)
// *Workload. Workloads not in the catalog are returned as-is and must
// appear in exactly one job.
func named(o Opts, w *workloads.Workload) func() *workloads.Workload {
	name, params := w.Name(), paramsFor(o)
	return func() *workloads.Workload {
		nw, ok := workloads.ByNameWith(name, params)
		if !ok {
			return w
		}
		return nw
	}
}

// runAll executes the jobs on a bounded worker pool (Opts.Parallel) and
// returns their metrics in job order. Harness configurations are
// programmatic, so configuration errors panic as MustNewSystem did when
// the loops were sequential.
func runAll(o Opts, jobs []job) []core.Metrics {
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		w := j.w
		rjobs[i] = runner.Job{
			Cfg:      j.cfg,
			Workload: func() (*workloads.Workload, error) { return w(), nil },
		}
	}
	outs, err := runner.Run(context.Background(), rjobs, o.Parallel, nil)
	if err != nil {
		panic(err)
	}
	ms := make([]core.Metrics, len(jobs))
	for i, out := range outs {
		ms[i] = out.Metrics
	}
	return ms
}

// Registry maps experiment IDs to their harnesses, for cmd/figures.
var Registry = map[string]func(Opts) *Table{
	"fig01":     Fig01,
	"fig02":     Fig02,
	"fig03":     Fig03,
	"fig08":     Fig08,
	"fig09":     Fig09,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"fig13":     Fig13,
	"fig14":     Fig14,
	"fig15":     Fig15,
	"fig16":     Fig16,
	"fig17":     Fig17,
	"fig18":     Fig18,
	"fig19":     Fig19,
	"fig20":     Fig20,
	"fig21":     Fig21,
	"table2":    func(Opts) *Table { return Table2() },
	"table3":    func(Opts) *Table { return Table3() },
	"multiprog": Multiprog,
	"tiering":   Tiering,
}

// IDs returns the experiment identifiers in presentation order.
func IDs() []string {
	return []string{
		"fig01", "fig02", "fig03", "table2", "table3",
		"fig08", "fig09", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "multiprog", "tiering",
	}
}
