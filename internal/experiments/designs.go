package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/workloads"
)

// Fig17 reproduces Figure 17: the breakdown of Midgard address
// translation latency between frontend (VA→MA through the VLBs and VMA
// tree) and backend (MA→PA). Paper: most workloads spend <20% in the
// frontend; BC — with its 147 small VMAs — spends >50%.
func Fig17(o Opts) *Table {

	t := &Table{
		ID:      "fig17",
		Title:   "Midgard translation latency breakdown (% frontend vs backend)",
		Columns: []string{"frontend %", "backend %"},
	}
	ws := longSubset(o)
	if !o.Quick {
		// BC is the interesting outlier; make sure it is present.
		ws = workloads.LongSuiteWith(paramsFor(o))
	} else {
		ws = append([]*workloads.Workload{byName(o, "BC")}, ws...)
	}
	jobs := make([]job, 0, len(ws))
	for _, w := range ws {
		cfg := BaseConfig(o)
		cfg.Design = core.DesignMidgard
		jobs = append(jobs, job{cfg, named(o, w)})
	}
	ms := runAll(o, jobs)
	for i, w := range ws {
		m := ms[i]
		total := float64(m.FrontendCycles + m.BackendCycles)
		if total == 0 {
			t.Add(w.Name(), 0, 0)
			continue
		}
		fe := 100 * float64(m.FrontendCycles) / total
		t.Add(w.Name(), fe, 100-fe)
	}
	t.Note("Paper: frontend <20%% of translation latency for most workloads; >50%% for BC (147 small VMAs thrash the 16-entry L2 VLB).")
	return t
}

// Fig18 reproduces Figure 18: the census of VMA sizes in BC — one huge
// VMA plus ~147 small ones.
func Fig18(o Opts) *Table {

	t := &Table{
		ID:      "fig18",
		Title:   "Number of VMAs per size bucket in BC",
		Columns: []string{"count"},
	}
	k := mimicos.New(mimicos.DefaultConfig(), nil)
	k.CreateProcess(1)
	w := byName(o, "BC")
	w.Setup(k, 1)

	buckets := []struct {
		label string
		limit uint64
	}{
		{"=4KB", 4 * mem.KB},
		{"<128KB", 128 * mem.KB},
		{"<256KB", 256 * mem.KB},
		{"<512KB", 512 * mem.KB},
		{"<1MB", mem.MB},
		{"<8MB", 8 * mem.MB},
		{"<16MB", 16 * mem.MB},
		{"<32MB", 32 * mem.MB},
		{"<1GB", mem.GB},
		{">=1GB", ^uint64(0)},
	}
	counts := make([]int, len(buckets))
	var largest uint64
	total := 0
	for _, v := range k.Process(1).VMAs {
		size := v.Len()
		total++
		if size > largest {
			largest = size
		}
		for i, b := range buckets {
			if size <= b.limit {
				counts[i]++
				break
			}
		}
	}
	for i, b := range buckets {
		t.Add(b.label, float64(counts[i]))
	}
	t.Add("total VMAs", float64(total))
	t.Add("largest VMA (MB)", float64(largest)/float64(mem.MB))
	t.Note("Paper: BC uses one 77GB VMA plus 147 smaller VMAs from 4KB to 1GB (footprints scaled here).")
	return t
}

// Fig19 reproduces Figure 19: increase in address translation latency as
// the Utopia RestSeg grows (paper: 8→64 GB raises translation latency by
// up to 10% because the virtual tag array loses cache locality).
// RestSeg sizes are scaled with the rest of the system (8 GB → 128 MB).
func Fig19(o Opts) *Table {

	sizes := []uint64{128 * mem.MB, 256 * mem.MB, 512 * mem.MB, 1024 * mem.MB}
	labels := []string{"16GB-equiv", "32GB-equiv", "64GB-equiv"}
	if o.Quick {
		sizes = sizes[:3]
		labels = labels[:2]
	}

	t := &Table{
		ID:      "fig19",
		Title:   "Increase in translation latency vs 8GB-equivalent RestSeg (%)",
		Columns: labels,
	}

	ws := longSubset(o)
	var jobs []job
	for _, w := range ws {
		for _, sz := range sizes {
			cfg := BaseConfig(o)
			cfg.Design = core.DesignUtopia
			cfg.Policy = core.PolicyUtopia
			cfg.OSCfg = mimicos.DefaultConfig()
			cfg.OSCfg.PhysBytes = 4 * mem.GB
			cfg.UtopiaSegs = []core.UtopiaSegSpec{{SizeBytes: sz, Ways: 16, PageSize: mem.Page4K}}
			jobs = append(jobs, job{cfg, named(o, w)})
		}
	}
	ms := runAll(o, jobs)

	var sums []float64
	for wi, w := range ws {
		trans := make([]float64, 0, len(sizes))
		for si := range sizes {
			trans = append(trans, float64(ms[wi*len(sizes)+si].TranslationCycles))
		}
		cells := make([]float64, 0, len(sizes)-1)
		for i := 1; i < len(trans); i++ {
			var inc float64
			if trans[0] > 0 {
				inc = 100 * (trans[i] - trans[0]) / trans[0]
			}
			cells = append(cells, inc)
		}
		t.Add(w.Name(), cells...)
		if sums == nil {
			sums = make([]float64, len(cells))
		}
		for i, c := range cells {
			sums[i] += c
		}
	}
	for i := range sums {
		sums[i] /= float64(len(longSubset(o)))
	}
	t.Add("GMEAN", sums...)
	t.Note("Paper: translation latency rises with RestSeg size, up to ~10%% for the largest segment.")
	return t
}

// Fig20 reproduces Figure 20: cycles spent swapping as the restrictive
// segment covers a growing fraction of main memory, normalized to Radix
// (paper: up to 203× at full coverage — set-conflict evictions swap even
// though free memory exists).
func Fig20(o Opts) *Table {

	coverages := []float64{0.50, 0.60, 0.70, 0.80, 0.90, 1.0}
	if o.Quick {
		coverages = []float64{0.50, 0.90}
	}
	t := &Table{
		ID:      "fig20",
		Title:   "Normalized cycles spent swapping vs RestSeg coverage of main memory",
		Columns: []string{"swap cycles vs Radix"},
	}

	physBytes := uint64(1 * mem.GB)
	// The workload fills ~85% of physical memory, so Radix barely swaps
	// while constrained RestSeg sets must evict.
	w := func() *workloads.Workload { return swapPressure(physBytes * 85 / 100) }

	base := BaseConfig(o)
	base.OSCfg.PhysBytes = physBytes
	base.Policy = core.PolicyBuddy
	base.MaxAppInsts = 0
	jobs := []job{{base, w}}
	for _, cov := range coverages {
		cfg := BaseConfig(o)
		cfg.OSCfg.PhysBytes = physBytes
		cfg.Design = core.DesignUtopia
		cfg.Policy = core.PolicyUtopia
		cfg.UtopiaSwapOnFull = true
		cfg.MaxAppInsts = 0
		cfg.UtopiaSegs = []core.UtopiaSegSpec{
			{SizeBytes: mem.AlignUp(uint64(float64(physBytes)*cov*0.9), 2*mem.MB), Ways: 16, PageSize: mem.Page4K},
		}
		jobs = append(jobs, job{cfg, w})
	}
	ms := runAll(o, jobs)

	baseSwap := float64(ms[0].OS.SwapCycles)
	if baseSwap == 0 {
		baseSwap = 1 // Radix stays under the watermark: normalize to 1 cycle
	}
	for ci, cov := range coverages {
		t.Add(fmt.Sprintf("%.0f%%", 100*cov), float64(ms[ci+1].OS.SwapCycles)/baseSwap)
	}
	t.Note("Paper: swapping grows with restrictive coverage, up to 203x vs Radix at 100%%.")
	return t
}

// swapPressure builds a workload whose anonymous footprint approaches
// the physical memory size.
func swapPressure(foot uint64) *workloads.Workload {
	return workloads.Custom("swap-pressure", workloads.LongRunning, foot,
		func(w *workloads.Workload, k *mimicos.Kernel, pid int) {
			w.SetBase("data", k.Mmap(pid, foot, mimicos.MmapFlags{Anon: true}))
		},
		func(w *workloads.Workload) []workloads.Step {
			return []workloads.Step{
				{Kind: workloads.StepTouch, Base: w.Base("data"), Size: foot, Stride: 4 * mem.KB, PC: 0xB00100},
				{Kind: workloads.StepRand, Base: w.Base("data"), Size: foot, Count: foot / (16 * mem.KB), ALUPer: 4, PC: 0xB00200},
			}
		})
}

// Fig21 reproduces Figure 21: reduction in DRAM row-buffer conflicts
// caused by address-translation metadata, RMM over Radix, across
// fragmentation levels (paper: ~90% even at 94% fragmentation).
func Fig21(o Opts) *Table {

	frags := []float64{0.94, 0.92, 0.90, 0.80, 0.70, 0.60, 0.50, 0.40}
	if o.Quick {
		frags = []float64{0.94, 0.70, 0.40}
	}
	t := &Table{
		ID:      "fig21",
		Title:   "Reduction in translation-metadata DRAM row conflicts, RMM over Radix (%)",
		Columns: fragCols(frags),
	}

	ws := longSubset(o)
	var jobs []job
	for _, w := range ws {
		for _, f := range frags {
			rad := BaseConfig(o)
			rad.Design = core.DesignRadix
			rad.Policy = core.PolicyBuddy // RMM's comparison point maps 4K pages
			rad.FragFree2M = 1 - f
			jobs = append(jobs, job{rad, named(o, w)})

			rmm := BaseConfig(o)
			rmm.Design = core.DesignRMM
			rmm.Policy = core.PolicyEager
			rmm.FragFree2M = 1 - f
			jobs = append(jobs, job{rmm, named(o, w)})
		}
	}
	ms := runAll(o, jobs)

	var avg []float64
	k := 0
	for _, w := range ws {
		cells := make([]float64, 0, len(frags))
		for range frags {
			rm, mm := ms[k], ms[k+1]
			k += 2

			radC := float64(rm.Dram.TranslationConflicts())
			rmmC := float64(mm.Dram.TranslationConflicts())
			var red float64
			if radC > 0 {
				red = 100 * (radC - rmmC) / radC
			}
			cells = append(cells, red)
		}
		t.Add(w.Name(), cells...)
		if avg == nil {
			avg = make([]float64, len(cells))
		}
		for i, c := range cells {
			avg[i] += c
		}
	}
	n := float64(len(longSubset(o)))
	for i := range avg {
		avg[i] /= n
	}
	t.Add("GMEAN", avg...)
	t.Note("Paper: RMM cuts translation-metadata row conflicts by ~90%% on average even at 94%% fragmentation.")
	return t
}
