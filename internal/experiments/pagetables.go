package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ptDesigns lists Use Case 1's page-table designs in paper order.
func ptDesigns() []core.DesignName {
	return []core.DesignName{core.DesignRadix, core.DesignECH, core.DesignHDC, core.DesignHT}
}

// ptCfg configures one (design, fragmentation) cell with the Linux-like
// THP policy Use Case 1 uses.
func ptCfg(o Opts, d core.DesignName, frag float64) core.Config {
	cfg := BaseConfig(o)
	cfg.Design = d
	cfg.Policy = core.PolicyTHP
	cfg.FragFree2M = 1 - frag
	cfg.MaxAppInsts = 0 // total PTW latency covers the whole benchmark
	return cfg
}

// Fig13 reproduces Figure 13: reduction in total PTW latency of the
// hash-based designs over Radix across memory fragmentation levels
// (fraction of free 2MB blocks, 100%→90%). Paper: all hash designs
// reduce PTW latency, and the reduction grows as fragmentation worsens.
func Fig13(o Opts) *Table {

	// Paper fragmentation levels (fraction of 2MB blocks *unavailable*).
	frags := []float64{1.0, 0.98, 0.96, 0.94, 0.92, 0.90}
	if o.Quick {
		frags = []float64{1.0, 0.94, 0.90}
	}
	ws := longSubset(o)
	if !o.Quick && len(ws) > 5 {
		ws = ws[:5] // keep the full sweep tractable
	}

	t := &Table{
		ID:      "fig13",
		Title:   "Reduction in total PTW latency over Radix (%), by fragmentation level",
		Columns: fragCols(frags),
	}

	var jobs []job
	for _, w := range ws {
		for _, f := range frags {
			for _, d := range ptDesigns() {
				jobs = append(jobs, job{ptCfg(o, d, f), named(o, w)})
			}
		}
	}
	ms := runAll(o, jobs)

	// walkCycles[design][fragIdx] summed over workloads.
	sums := map[core.DesignName][]float64{}
	for _, d := range ptDesigns() {
		sums[d] = make([]float64, len(frags))
	}
	k := 0
	for range ws {
		for fi := range frags {
			for _, d := range ptDesigns() {
				sums[d][fi] += float64(ms[k].WalkCycles)
				k++
			}
		}
	}
	for _, d := range ptDesigns()[1:] {
		cells := make([]float64, len(frags))
		for fi := range frags {
			radix := sums[core.DesignRadix][fi]
			if radix > 0 {
				cells[fi] = 100 * (radix - sums[d][fi]) / radix
			}
		}
		t.Add(string(d), cells...)
	}
	t.Note("Paper: ECH/HDC/HT consistently reduce total PTW latency vs Radix; the reduction grows as free-2MB fraction drops 100%%→90%%.")
	return t
}

func fragCols(frags []float64) []string {
	cols := make([]string, len(frags))
	for i, f := range frags {
		cols[i] = fmt.Sprintf("%.0f%%", 100*f)
	}
	return cols
}

// Fig14 reproduces Figure 14: total DRAM row-buffer conflicts of the
// hash designs normalized to Radix (paper: ECH 1.52x, HDC 0.95x, HT
// 0.93x on average — ECH's parallel nest probes interfere).
func Fig14(o Opts) *Table {

	t := &Table{
		ID:      "fig14",
		Title:   "DRAM row buffer conflicts normalized to Radix",
		Columns: []string{"ECH", "HDC", "HT"},
	}
	ws := longSubset(o)
	ms := runAll(o, allDesignJobs(o, ws, 0.80)) // baseline fragmentation (Table 4)

	gm := map[core.DesignName][]float64{}
	n := len(ptDesigns())
	for i, w := range ws {
		base := ms[i*n]
		cells := make([]float64, 0, 3)
		for di := range ptDesigns()[1:] {
			m := ms[i*n+1+di]
			r := ratio(float64(m.Dram.TotalConflicts()), float64(base.Dram.TotalConflicts()))
			cells = append(cells, r)
			gm[ptDesigns()[1+di]] = append(gm[ptDesigns()[1+di]], r)
		}
		t.Add(w.Name(), cells...)
	}
	t.Add("GMEAN", gmeanOf(gm[core.DesignECH]), gmeanOf(gm[core.DesignHDC]), gmeanOf(gm[core.DesignHT]))
	t.Note("Paper: ECH increases total row-buffer conflicts by 52%% over Radix; HDC and HT reduce them by 5%% and 7%%.")
	return t
}

// Fig15 reproduces Figure 15: reduction in total minor-page-fault
// latency over Radix (paper: ECH 9%, HDC 18%, HT 19% on average; ECH
// regresses on RND due to hash-collision relocations).
func Fig15(o Opts) *Table {

	t := &Table{
		ID:      "fig15",
		Title:   "Reduction in total minor page fault latency over Radix (%)",
		Columns: []string{"ECH", "HDC", "HT"},
	}
	ws := longSubset(o)
	ms := runAll(o, allDesignJobs(o, ws, 0.80)) // baseline fragmentation (Table 4)

	var avg = map[core.DesignName][]float64{}
	n := len(ptDesigns())
	for i, w := range ws {
		baseTotal := pfTotal(ms[i*n])
		cells := make([]float64, 0, 3)
		for di, d := range ptDesigns()[1:] {
			var red float64
			if baseTotal > 0 {
				red = 100 * (baseTotal - pfTotal(ms[i*n+1+di])) / baseTotal
			}
			cells = append(cells, red)
			avg[d] = append(avg[d], red)
		}
		t.Add(w.Name(), cells...)
	}
	t.Add("MEAN", meanOf(avg[core.DesignECH]), meanOf(avg[core.DesignHDC]), meanOf(avg[core.DesignHT]))
	t.Note("Paper: ECH -9%%, HDC -18%%, HT -19%% total MPF latency vs Radix on average; ECH increases it on RND.")
	return t
}

// allDesignJobs builds one job per (workload, page-table design) pair
// at the given fragmentation, in ptDesigns() order per workload.
func allDesignJobs(o Opts, ws []*workloads.Workload, frag float64) []job {
	jobs := make([]job, 0, len(ws)*len(ptDesigns()))
	for _, w := range ws {
		for _, d := range ptDesigns() {
			jobs = append(jobs, job{ptCfg(o, d, frag), named(o, w)})
		}
	}
	return jobs
}

func pfTotal(m core.Metrics) float64 {
	if m.PFLatNs == nil {
		return 0
	}
	return m.PFLatNs.Sum()
}

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return a
	}
	return a / b
}

func gmeanOf(vs []float64) float64 { return stats.GeoMean(vs) }
