package experiments

import (
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// refConfig builds the reference ("real system") configuration used as
// ground truth in the §7.2 validation: the most detailed simulation plus
// (i) the OS-noise components MimicOS deliberately omits and (ii) a
// microarchitectural perturbation standing in for the silicon/model gap
// (the real Xeon's exact TLB/PWC organisation is not public).
func refConfig(o Opts) core.Config {
	cfg := BaseConfig(o)
	cfg.RefNoise = true
	cfg.Seed = o.Seed + 7777
	m := ScaledMMU()
	m.STLBEntries = 96 // silicon differs from the model's round numbers
	m.STLBWays = 12
	m.DTLB4KEntries = 20
	cfg.MMUCfg = m
	cc := ScaledCaches()
	cc.L3Size = 1536 * 1024
	cc.L3Ways = 12
	cfg.CacheCfg = cc
	return cfg
}

// Fig08 reproduces Figure 8: IPC estimation accuracy of Virtuoso+Sniper
// and baseline Sniper (fixed PTW latency) against the reference system.
// Paper: Virtuoso 80% vs baseline 66% average accuracy.
func Fig08(o Opts) *Table {

	t := &Table{
		ID:      "fig08",
		Title:   "IPC estimation accuracy vs reference system",
		Columns: []string{"IPC ref", "IPC virtuoso", "IPC baseline", "acc virtuoso %", "acc baseline %"},
	}

	ws := longSubset(o)
	var jobs []job
	for _, w := range ws {
		refCfg := refConfig(o)
		refCfg.MaxAppInsts = 0
		jobs = append(jobs, job{refCfg, named(o, w)})

		vCfg := BaseConfig(o)
		vCfg.MaxAppInsts = 0
		jobs = append(jobs, job{vCfg, named(o, w)})

		base := BaseConfig(o)
		base.MaxAppInsts = 0
		base.Mode = core.Emulation
		// Baseline Sniper's fixed PTW latency is the *average* latency
		// measured on the real system (§7.2) — one number for all
		// workloads, which is exactly why it mistracks.
		base.FixedPTWLat = 60
		base.FixedFaultLat = 5800
		jobs = append(jobs, job{base, named(o, w)})
	}
	ms := runAll(o, jobs)

	var accV, accB []float64
	for i, w := range ws {
		ref, virt, bm := ms[3*i], ms[3*i+1], ms[3*i+2]
		av := 100 * stats.Accuracy(virt.IPC, ref.IPC)
		ab := 100 * stats.Accuracy(bm.IPC, ref.IPC)
		accV = append(accV, av)
		accB = append(accB, ab)
		t.Add(w.Name(), ref.IPC, virt.IPC, bm.IPC, av, ab)
	}
	t.Add("MEAN", 0, 0, 0, meanOf(accV), meanOf(accB))
	t.Note("Paper: Virtuoso 80%% vs baseline Sniper 66%% mean IPC accuracy (+21%%).")
	return t
}

// Fig09 reproduces Figure 9: cosine similarity between the page-fault
// latency series of Virtuoso and the reference system across the
// short-running suite (paper: 0.60–0.79, mean 0.66).
func Fig09(o Opts) *Table {

	t := &Table{
		ID:      "fig09",
		Title:   "Cosine similarity of page fault latency series vs reference",
		Columns: []string{"cosine similarity", "faults"},
	}
	ws := shortSubset(o)
	ms := runAll(o, refAndVirtJobs(o, ws))

	var sims []float64
	for i, w := range ws {
		ref, virt := ms[2*i], ms[2*i+1]
		var sim float64
		if ref.PFLatNs != nil && virt.PFLatNs != nil {
			sim = stats.CosineSimilarity(virt.PFLatNs.Values(), ref.PFLatNs.Values())
		}
		sims = append(sims, sim)
		t.Add(w.Name(), sim, float64(virt.MinorFaults))
	}
	t.Add("MEAN", meanOf(sims), 0)
	t.Note("Paper: cosine similarity 0.60–0.79 across workloads, mean 0.66.")
	return t
}

// Fig10 reproduces Figure 10: L2 TLB MPKI and PTW latency of
// Virtuoso+Sniper against the reference system (paper: 82% and 85%
// accuracy respectively).
func Fig10(o Opts) *Table {

	t := &Table{
		ID:      "fig10",
		Title:   "L2 TLB MPKI and PTW latency vs reference system",
		Columns: []string{"MPKI ref", "MPKI virtuoso", "MPKI acc %", "PTW ref", "PTW virtuoso", "PTW acc %"},
	}
	ws := longSubset(o)
	ms := runAll(o, refAndVirtJobs(o, ws))

	var accM, accP []float64
	for i, w := range ws {
		ref, virt := ms[2*i], ms[2*i+1]
		am := 100 * stats.Accuracy(virt.L2TLBMPKI, ref.L2TLBMPKI)
		ap := 100 * stats.Accuracy(virt.AvgPTWLat, ref.AvgPTWLat)
		accM = append(accM, am)
		accP = append(accP, ap)
		t.Add(w.Name(), ref.L2TLBMPKI, virt.L2TLBMPKI, am, ref.AvgPTWLat, virt.AvgPTWLat, ap)
	}
	t.Add("MEAN", 0, 0, meanOf(accM), 0, 0, meanOf(accP))
	t.Note("Paper: 82%% MPKI accuracy, 85%% PTW latency accuracy on average.")
	return t
}

// refAndVirtJobs pairs each workload with a reference-system run and a
// Virtuoso run (the §7.2 validation pattern shared by Figs. 9 and 10).
func refAndVirtJobs(o Opts, ws []*workloads.Workload) []job {
	jobs := make([]job, 0, 2*len(ws))
	for _, w := range ws {
		refCfg := refConfig(o)
		refCfg.MaxAppInsts = 0
		jobs = append(jobs, job{refCfg, named(o, w)})

		vCfg := BaseConfig(o)
		vCfg.MaxAppInsts = 0
		jobs = append(jobs, job{vCfg, named(o, w)})
	}
	return jobs
}

var _ = mmu.DefaultConfig
