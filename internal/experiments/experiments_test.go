package experiments

import (
	"testing"

	"repro/internal/core"
)

func quick() Opts { return Opts{Quick: true, Seed: 3} }

// skipIfShort gates the full-sweep harnesses (tens of seconds each on
// one core) so `go test -short ./...` stays fast.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-sweep harness; skipped with -short")
	}
}

func TestFig01Shape(t *testing.T) {
	tb := Fig01(quick())
	var longTr, longAl, shortTr, shortAl float64
	for _, r := range tb.Rows {
		switch r.Label {
		case "MEAN-long":
			longTr, longAl = r.Cells[0], r.Cells[1]
		case "MEAN-short":
			shortTr, shortAl = r.Cells[0], r.Cells[1]
		}
	}
	t.Logf("long: trans=%.1f%% alloc=%.1f%% | short: trans=%.1f%% alloc=%.1f%%", longTr, longAl, shortTr, shortAl)
	if !(longTr > shortTr) {
		t.Errorf("long-running should be translation-dominated: long %.2f%% vs short %.2f%%", longTr, shortTr)
	}
	if !(shortAl > longAl) {
		t.Errorf("short-running should be allocation-dominated: short %.2f%% vs long %.2f%%", shortAl, longAl)
	}
}

func TestFig02Shape(t *testing.T) {
	tb := Fig02(quick())
	if len(tb.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tb.Rows))
	}
	on, off := tb.Rows[0], tb.Rows[1]
	t.Logf("THP-on: median=%.0fns outliers=%.1f%% | THP-off: median=%.0fns outliers=%.1f%%",
		on.Cells[1], on.Cells[5], off.Cells[1], off.Cells[5])
	if !(on.Cells[5] > off.Cells[5]) {
		t.Errorf("THP-enabled outlier contribution (%.1f%%) should exceed disabled (%.1f%%)", on.Cells[5], off.Cells[5])
	}
}

func TestFig08Shape(t *testing.T) {
	skipIfShort(t)
	tb := Fig08(quick())
	last := tb.Rows[len(tb.Rows)-1]
	accV, accB := last.Cells[3], last.Cells[4]
	t.Logf("IPC accuracy: virtuoso=%.1f%% baseline=%.1f%%", accV, accB)
	if !(accV > accB) {
		t.Errorf("Virtuoso IPC accuracy (%.1f%%) should beat fixed-latency baseline (%.1f%%)", accV, accB)
	}
}

func TestFig13Shape(t *testing.T) {
	skipIfShort(t)
	tb := Fig13(quick())
	for _, r := range tb.Rows {
		t.Logf("%s: %v", r.Label, r.Cells)
		last := r.Cells[len(r.Cells)-1]
		// HDC and HT reproduce the paper's reduction at every scale; the
		// ECH crossover requires page tables larger than the LLC (the
		// 100GB regime), which the scaled quick configuration cannot
		// reach — see EXPERIMENTS.md.
		if r.Label != "ech" && last <= 0 {
			t.Errorf("%s: hash PT should reduce PTW latency, got %.2f%%", r.Label, last)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	tb := Fig16(quick())
	byLabel := map[string]Row{}
	for _, r := range tb.Rows {
		byLabel[r.Label] = r
		t.Logf("%s: median=%.0f p99=%.0f max=%.0f total=%.0fµs", r.Label, r.Cells[0], r.Cells[2], r.Cells[3], r.Cells[4])
	}
	bd := byLabel["Bagel-2.8B BD"]
	ar := byLabel["Bagel-2.8B AR-THP"]
	if len(bd.Cells) > 3 && len(ar.Cells) > 3 {
		if !(ar.Cells[3] > 10*bd.Cells[0]) {
			t.Errorf("AR-THP max (%.0fns) should dwarf BD median (%.0fns)", ar.Cells[3], bd.Cells[0])
		}
	}
}

func TestFig21Shape(t *testing.T) {
	tb := Fig21(quick())
	last := tb.Rows[len(tb.Rows)-1]
	t.Logf("GMEAN reductions: %v", last.Cells)
	for i, v := range last.Cells {
		if v < 30 {
			t.Errorf("RMM reduction at frag point %d too small: %.1f%%", i, v)
		}
	}
}

// TestMultiprogShape is the multiprogramming acceptance criterion:
// ASID retention must be measurably distinct from flush-on-switch, with
// strictly fewer L2 TLB misses on at least one mix.
func TestMultiprogShape(t *testing.T) {
	tb := Multiprog(quick())
	if len(tb.Rows) == 0 {
		t.Fatal("no multiprogramming rows")
	}
	strict := false
	for _, r := range tb.Rows {
		flush, retain := r.Cells[0], r.Cells[1]
		t.Logf("%s: L2 misses flush=%.0f retain=%.0f (%.1f%% fewer), IPC %.3f vs %.3f, %.0f switches",
			r.Label, flush, retain, r.Cells[2], r.Cells[3], r.Cells[4], r.Cells[5])
		if retain > flush {
			t.Errorf("%s: retention increased TLB misses (%.0f > %.0f)", r.Label, retain, flush)
		}
		if retain < flush {
			strict = true
		}
		if r.Cells[5] == 0 {
			t.Errorf("%s: no context switches recorded", r.Label)
		}
	}
	if !strict {
		t.Error("retention mode never showed strictly fewer TLB misses than flush mode")
	}
}

var _ = core.DefaultConfig
