package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Table2 reports the VM schemes implemented in this repository's VirTool
// equivalent (paper Table 2's Virtuoso row). Each cell is 1 (implemented)
// and the feature list mirrors the paper's columns.
func Table2() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "VM schemes included (1 = implemented)",
		Columns: []string{"implemented"},
	}
	features := []string{
		"Configurable TLB hierarchy (multi-page-size L1s + unified L2)",
		"Page walk caches (3-level, Table 4)",
		"Radix x86-64 4-level page table",
		"Elastic cuckoo hash page table (ECH)",
		"Open-addressing hashed page table (HDC)",
		"Chained hash page table (HT)",
		"Linux-like THP",
		"Reservation-based THP (CR/AR)",
		"hugetlbfs reservations",
		"1GB pages (DAX/file-backed)",
		"Utopia RestSeg/FlexSeg hybrid mapping",
		"RMM range translation + eager paging",
		"Midgard intermediate address space",
		"Direct segments",
		"Nested (2D) translation for virtualization",
		"Software-managed TLB",
		"Part-of-memory TLB (POM-TLB)",
		"TLB prefetching (distance/agile-style)",
		"Page-size prediction",
		"TLB entries in data caches (Victima-style)",
		"Memory tagging / Mondrian-style protection domains (PLB + permission trie)",
		"Expressive Memory (XMem) attribute table",
		"Virtual Block Interface (VBI) block translation",
		"Swap + swap cache + kswapd-style reclaim",
		"Page cache with prepopulation",
		"khugepaged collapse daemon",
		"MQSim-style SSD backing store",
	}
	for _, f := range features {
		t.Add(f, 1)
	}
	return t
}

// Table3 reports the integration cost of each simulator adapter in
// source lines, the analogue of the paper's Table 3 (additional LoC to
// integrate Virtuoso into each simulator). It counts the adapter package
// plus the per-frontend hooks in the engine.
func Table3() *Table {
	t := &Table{
		ID:      "table3",
		Title:   "Integration cost (source lines)",
		Columns: []string{"lines"},
	}
	_, here, _, ok := runtime.Caller(0)
	if !ok {
		t.Note("source unavailable at runtime")
		return t
	}
	root := filepath.Dir(filepath.Dir(here)) // internal/
	count := func(rel string) float64 {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return 0
		}
		n := 0
		for _, line := range strings.Split(string(data), "\n") {
			s := strings.TrimSpace(line)
			if s == "" || strings.HasPrefix(s, "//") {
				continue
			}
			n++
		}
		return float64(n)
	}
	t.Add("simulator adapters (all five)", count("simulators/simulators.go"))
	t.Add("functional+stream channels", count("core/channel.go"))
	t.Add("MimicOS fault flow", count("mimicos/fault.go"))
	t.Note("Paper Table 3: 56-221 core-model lines and 6-12 files per simulator; here each personality is a thin assembly over shared substrates.")
	return t
}
