package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig01 reproduces Figure 1: the fraction of total execution time spent
// on address translation and on physical memory allocation (page-fault
// handling), for the long-running and short-running suites. The paper's
// shape: long-running ≈ 25% translation / ~5% allocation; short-running
// < 1% translation / ~32% allocation.
func Fig01(o Opts) *Table {
	restore := scaleFor(o)
	defer restore()

	t := &Table{
		ID:      "fig01",
		Title:   "Fraction of execution time in address translation vs physical memory allocation",
		Columns: []string{"translation %", "allocation %", "class"},
	}

	run := func(w *workloads.Workload, class float64) (float64, float64) {
		cfg := BaseConfig(o)
		// Run every workload to completion: the long programs' iterate
		// phases amortise their allocation cost exactly as real
		// long-running executions do.
		cfg.MaxAppInsts = 0
		m := runOne(cfg, w)
		tr, al := 100*m.TranslationFraction(), 100*m.AllocationFraction()
		t.Add(w.Name(), tr, al, class)
		return tr, al
	}

	var ltr, lal, str, sal []float64
	for _, w := range longSubset(o) {
		a, b := run(w, 0)
		ltr, lal = append(ltr, a), append(lal, b)
	}
	for _, w := range shortSubset(o) {
		a, b := run(w, 1)
		str, sal = append(str, a), append(sal, b)
	}
	t.Add("MEAN-long", meanOf(ltr), meanOf(lal), 0)
	t.Add("MEAN-short", meanOf(str), meanOf(sal), 1)
	t.Note("Paper: long-running 25%% translation / 4.9%% allocation; short-running <1%% translation / 32%% allocation.")
	return t
}

func meanOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Fig02 reproduces Figure 2: the minor-page-fault latency distribution
// with THP enabled vs disabled, including the outlier (>10 µs)
// contribution to total MPF latency (paper: 67% THP-on, 25.5% THP-off).
func Fig02(o Opts) *Table {
	restore := scaleFor(o)
	defer restore()

	t := &Table{
		ID:      "fig02",
		Title:   "Minor page fault latency distribution, THP enabled vs disabled (ns)",
		Columns: []string{"p25", "median", "p75", "mean", "stddev", "outlier-contrib %"},
	}

	for _, pol := range []core.PolicyName{core.PolicyTHP, core.PolicyBuddy} {
		label := "THP-enabled"
		if pol == core.PolicyBuddy {
			label = "THP-disabled"
		}
		pooled := newPooledSeries()
		suite := append(longSubset(o), shortSubset(o)...)
		for _, w := range suite {
			cfg := BaseConfig(o)
			cfg.Policy = pol
			m := runOne(cfg, w)
			if m.PFLatNs != nil {
				pooled.extend(m.PFLatNs.Values())
			}
		}
		s := pooled.series()
		t.Add(label,
			s.Percentile(25), s.Median(), s.Percentile(75),
			s.Mean(), s.StdDev(),
			100*s.OutlierContribution(10_000)) // 10 µs
	}
	t.Note("Paper: THP-enabled mean 2.2 µs with stddev >50 µs; outliers contribute 67%% (enabled) vs 25.5%% (disabled).")
	return t
}

// Fig03 reproduces Figure 3: average page-table-walk latency across a
// sweep of applications with increasing memory intensity (the paper
// spans ~39 cycles for an I/O stressor to >180 for SSSP).
func Fig03(o Opts) *Table {
	restore := scaleFor(o)
	defer restore()

	levels := 53
	if o.Quick {
		levels = 6
	}
	t := &Table{
		ID:      "fig03",
		Title:   "Average PTW latency (cycles) across memory-intensity levels",
		Columns: []string{"avg PTW latency (cycles)", "L2 TLB MPKI"},
	}
	for lvl := 0; lvl < levels; lvl++ {
		w := workloads.Stress(lvl, levels)
		cfg := BaseConfig(o)
		m := runOne(cfg, w)
		t.Add(w.Name(), m.AvgPTWLat, m.L2TLBMPKI)
	}
	// The paper's outlier: SSSP.
	cfg := BaseConfig(o)
	m := runOne(cfg, workloads.SP())
	t.Add("SSSP", m.AvgPTWLat, m.L2TLBMPKI)
	t.Note("Paper: PTW latency varies ~39 cycles (I/O stressor) to >180 cycles (SSSP).")
	return t
}

// pooledSeries collects values across runs.
type pooledSeries struct{ vals []float64 }

func newPooledSeries() *pooledSeries { return &pooledSeries{} }

func (p *pooledSeries) extend(vs []float64) { p.vals = append(p.vals, vs...) }

func (p *pooledSeries) series() *stats.Series {
	s := stats.NewSeries(len(p.vals))
	for _, v := range p.vals {
		s.Add(v)
	}
	return s
}
