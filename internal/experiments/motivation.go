package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig01 reproduces Figure 1: the fraction of total execution time spent
// on address translation and on physical memory allocation (page-fault
// handling), for the long-running and short-running suites. The paper's
// shape: long-running ≈ 25% translation / ~5% allocation; short-running
// < 1% translation / ~32% allocation.
func Fig01(o Opts) *Table {

	t := &Table{
		ID:      "fig01",
		Title:   "Fraction of execution time in address translation vs physical memory allocation",
		Columns: []string{"translation %", "allocation %", "class"},
	}

	long, short := longSubset(o), shortSubset(o)
	var jobs []job
	for _, w := range append(append([]*workloads.Workload{}, long...), short...) {
		cfg := BaseConfig(o)
		// Run every workload to completion: the long programs' iterate
		// phases amortise their allocation cost exactly as real
		// long-running executions do.
		cfg.MaxAppInsts = 0
		jobs = append(jobs, job{cfg, named(o, w)})
	}
	ms := runAll(o, jobs)

	add := func(w *workloads.Workload, m core.Metrics, class float64) (float64, float64) {
		tr, al := 100*m.TranslationFraction(), 100*m.AllocationFraction()
		t.Add(w.Name(), tr, al, class)
		return tr, al
	}
	var ltr, lal, str, sal []float64
	for i, w := range long {
		a, b := add(w, ms[i], 0)
		ltr, lal = append(ltr, a), append(lal, b)
	}
	for i, w := range short {
		a, b := add(w, ms[len(long)+i], 1)
		str, sal = append(str, a), append(sal, b)
	}
	t.Add("MEAN-long", meanOf(ltr), meanOf(lal), 0)
	t.Add("MEAN-short", meanOf(str), meanOf(sal), 1)
	t.Note("Paper: long-running 25%% translation / 4.9%% allocation; short-running <1%% translation / 32%% allocation.")
	return t
}

func meanOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Fig02 reproduces Figure 2: the minor-page-fault latency distribution
// with THP enabled vs disabled, including the outlier (>10 µs)
// contribution to total MPF latency (paper: 67% THP-on, 25.5% THP-off).
func Fig02(o Opts) *Table {

	t := &Table{
		ID:      "fig02",
		Title:   "Minor page fault latency distribution, THP enabled vs disabled (ns)",
		Columns: []string{"p25", "median", "p75", "mean", "stddev", "outlier-contrib %"},
	}

	suite := append(longSubset(o), shortSubset(o)...)
	policies := []core.PolicyName{core.PolicyTHP, core.PolicyBuddy}
	var jobs []job
	for _, pol := range policies {
		for _, w := range suite {
			cfg := BaseConfig(o)
			cfg.Policy = pol
			jobs = append(jobs, job{cfg, named(o, w)})
		}
	}
	ms := runAll(o, jobs)

	for pi, pol := range policies {
		label := "THP-enabled"
		if pol == core.PolicyBuddy {
			label = "THP-disabled"
		}
		pooled := newPooledSeries()
		for wi := range suite {
			if pf := ms[pi*len(suite)+wi].PFLatNs; pf != nil {
				pooled.extend(pf.Values())
			}
		}
		s := pooled.series()
		t.Add(label,
			s.Percentile(25), s.Median(), s.Percentile(75),
			s.Mean(), s.StdDev(),
			100*s.OutlierContribution(10_000)) // 10 µs
	}
	t.Note("Paper: THP-enabled mean 2.2 µs with stddev >50 µs; outliers contribute 67%% (enabled) vs 25.5%% (disabled).")
	return t
}

// Fig03 reproduces Figure 3: average page-table-walk latency across a
// sweep of applications with increasing memory intensity (the paper
// spans ~39 cycles for an I/O stressor to >180 for SSSP).
func Fig03(o Opts) *Table {

	levels := 53
	if o.Quick {
		levels = 6
	}
	t := &Table{
		ID:      "fig03",
		Title:   "Average PTW latency (cycles) across memory-intensity levels",
		Columns: []string{"avg PTW latency (cycles)", "L2 TLB MPKI"},
	}
	var jobs []job
	for lvl := 0; lvl < levels; lvl++ {
		lvl := lvl
		jobs = append(jobs, job{BaseConfig(o), func() *workloads.Workload {
			return workloads.StressWith(lvl, levels, paramsFor(o))
		}})
	}
	// The paper's outlier: SSSP.
	jobs = append(jobs, job{BaseConfig(o), named(o, byName(o, "SSSP"))})
	ms := runAll(o, jobs)
	for lvl := 0; lvl < levels; lvl++ {
		t.Add(fmt.Sprintf("stress-%02d", lvl), ms[lvl].AvgPTWLat, ms[lvl].L2TLBMPKI)
	}
	t.Add("SSSP", ms[levels].AvgPTWLat, ms[levels].L2TLBMPKI)
	t.Note("Paper: PTW latency varies ~39 cycles (I/O stressor) to >180 cycles (SSSP).")
	return t
}

// pooledSeries collects values across runs.
type pooledSeries struct{ vals []float64 }

func newPooledSeries() *pooledSeries { return &pooledSeries{} }

func (p *pooledSeries) extend(vs []float64) { p.vals = append(p.vals, vs...) }

func (p *pooledSeries) series() *stats.Series {
	s := stats.NewSeries(len(p.vals))
	for _, v := range p.vals {
		s.Add(v)
	}
	return s
}
