package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// Multiprog reproduces the multiprogramming study the single-process
// engine could not run: heterogeneous mixes scheduled round-robin on
// one core (mix × quantum × TLB-retention grid), reporting how context
// switches inflate translation overhead and how ASID-tagged retention
// recovers it. Every point shares one physical memory between its
// processes, so swap and khugepaged activity reflect the combined
// footprint.
func Multiprog(o Opts) *Table {
	t := &Table{
		ID:    "multiprog",
		Title: "Multiprogrammed mixes: translation overhead under context switching (flush vs ASID retention)",
		Columns: []string{
			"L2-TLB-misses(flush)", "L2-TLB-misses(retain)", "miss-reduction-%",
			"IPC(flush)", "IPC(retain)", "ctx-switches", "swap-outs",
		},
	}

	mixes := [][]string{
		{"RND", "SEQ"},
		{"BFS", "XS"},
		{"RND", "SEQ", "BFS", "XS"},
	}
	quanta := []uint64{25_000, 100_000}
	if o.Quick {
		mixes = mixes[:2]
	}

	// Every process runs to completion (no instruction bound): the mixes
	// must get past their build phases into the iterate phases where
	// access patterns — and therefore scheduling effects — differ, and
	// completion exercises the exit/reap/ASID-recycle path. Footprints
	// are scaled down accordingly.
	params := workloads.Params{Scale: 0.04, LongIters: 3}
	if o.Quick {
		params = workloads.Params{Scale: 0.02, LongIters: 2}
	}

	type variant struct{ retain bool }
	variants := []variant{{false}, {true}}

	var jobs []runner.Job
	for _, mix := range mixes {
		for _, q := range quanta {
			for _, v := range variants {
				cfg := BaseConfig(o)
				cfg.MaxAppInsts = 0
				cfg.QuantumCycles = q
				cfg.ASIDRetention = v.retain
				names := append([]string(nil), mix...)
				jobs = append(jobs, runner.Job{
					Cfg: cfg,
					Mix: func() ([]*workloads.Workload, error) { return workloads.MixWith(names, params) },
				})
			}
		}
	}

	outs, err := runner.Run(nil, jobs, o.Parallel, nil)
	if err != nil {
		panic(err)
	}

	i := 0
	for _, mix := range mixes {
		for _, q := range quanta {
			flush, retain := outs[i].Multi, outs[i+1].Multi
			i += 2
			red := 0.0
			if flush.Aggregate.L2TLBMisses > 0 {
				red = 100 * (1 - float64(retain.Aggregate.L2TLBMisses)/float64(flush.Aggregate.L2TLBMisses))
			}
			t.Add(fmt.Sprintf("%s q=%d", core.MixName(mix), q),
				float64(flush.Aggregate.L2TLBMisses),
				float64(retain.Aggregate.L2TLBMisses),
				red,
				flush.Aggregate.IPC,
				retain.Aggregate.IPC,
				float64(flush.ContextSwitches),
				float64(flush.Aggregate.OS.SwapOuts),
			)
		}
	}
	t.Note("Round-robin MimicOS scheduler, per-process address spaces sharing one physical memory; 'retain' keeps TLB entries across switches isolated by ASID tags, 'flush' models untagged TLBs. Every process runs to completion (no instruction bound), exercising the exit/reap/ASID-recycle path.")
	return t
}
