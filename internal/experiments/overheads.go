package experiments

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/simulators"
	"repro/internal/workloads"
)

// Fig11 reproduces Figure 11: the simulation-time slowdown and host
// memory overhead of integrating MimicOS into the four simulators
// (ChampSim, Sniper, Ramulator, gem5-SE), plus gem5-FS (full-blown
// kernel) over gem5-SE. The workload is randacc (RND), the paper's
// worst case (highest page faults per kilo-instruction).
func Fig11(o Opts) *Table {

	t := &Table{
		ID:      "fig11",
		Title:   "Simulation time slowdown and memory overhead of MimicOS integration (worst case: randacc)",
		Columns: []string{"slowdown %", "memory ratio", "kernel-inst share %"},
	}

	maxInsts := uint64(2_000_000)
	if o.Quick {
		maxInsts = 300_000
	}

	// This harness measures host wall time and heap per point, so it
	// stays sequential: concurrent points would contend for the host
	// CPU and allocator and distort both quantities.
	measure := func(k simulators.Kind, withOS bool) (secs float64, heap uint64, kshare float64) {
		runtime.GC()
		s := simulators.MustBuild(k, simulators.Options{
			WithMimicOS: withOS,
			MaxAppInsts: maxInsts,
			PhysBytes:   1 * mem.GB,
			Seed:        o.Seed + 11,
		})
		m := s.Run(byName(o, "RND"))
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return m.WallTime.Seconds(), ms.HeapInuse, 100 * m.KernelInstFraction()
	}

	var slowdowns []float64
	var memRatios []float64
	for _, k := range simulators.Kinds() {
		base, bheap, _ := measure(k, false)
		with, wheap, kshare := measure(k, true)
		slow := 100 * (with - base) / base
		if slow < 0 {
			slow = 0
		}
		mr := float64(wheap) / float64(bheap)
		slowdowns = append(slowdowns, slow)
		memRatios = append(memRatios, mr)
		t.Add(string(k), slow, mr, kshare)
	}
	t.Add("AVG(MimicOS)", meanOf(slowdowns), meanOf(memRatios), 0)

	// gem5-FS (full-blown kernel) vs gem5-SE.
	seTime, seHeap, _ := measure(simulators.Gem5SE, true)
	fsTime, fsHeap, fsShare := measure(simulators.Gem5FS, true)
	t.Add("gem5-FS vs gem5-SE", 100*(fsTime-seTime)/seTime, float64(fsHeap)/float64(seHeap), fsShare)
	t.Note("Paper: MimicOS slowdown 13/35/2/28%% (avg 20%%), memory 1.45x avg; gem5-FS +77%% time over gem5-SE.")
	return t
}

// Fig12 reproduces Figure 12: normalized simulation time as a function
// of the fraction of simulated instructions executed by MimicOS, using a
// microbenchmark that holds total instructions constant while varying
// the kernel share (paper: slope ≈ 1.5×).
func Fig12(o Opts) *Table {

	t := &Table{
		ID:      "fig12",
		Title:   "Normalized simulation time vs fraction of MimicOS instructions",
		Columns: []string{"kernel-inst fraction %", "normalized sim time"},
	}

	total := uint64(1_500_000)
	if o.Quick {
		total = 250_000
	}

	// Vary the fault rate: each point touches fresh pages with a
	// different amount of interleaved compute. Like Fig11, this harness
	// measures host wall time per point, so it must stay sequential —
	// concurrent simulations would contend for the host CPU and distort
	// the very quantity being reported.
	points := []uint32{0, 4, 16, 64, 160, 400, 1200}
	var baseline float64
	for i, aluPer := range points {
		w := faultMicro(aluPer)
		cfg := BaseConfig(o)
		cfg.Policy = core.PolicyBuddy
		cfg.MaxAppInsts = total
		m := runOne(cfg, w)
		secsPerInst := m.WallTime.Seconds() / float64(m.AppInsts)
		if i == 0 {
			// The most kernel-heavy point is measured first? No: index 0
			// is the densest fault rate; normalise to the compute-only
			// extreme instead (last point).
			_ = secsPerInst
		}
		frac := 100 * m.KernelInstFraction()
		t.Add(w.Name(), frac, secsPerInst)
		if i == len(points)-1 {
			baseline = secsPerInst
		}
	}
	// Normalise against the lowest-kernel-share point.
	if baseline > 0 {
		for i := range t.Rows {
			t.Rows[i].Cells[1] /= baseline
		}
	}
	t.Note("Paper: simulation time grows ~1.5x as MimicOS instruction share reaches ~50%%.")
	return t
}

// faultMicro builds the Fig. 12 microbenchmark: first-touch stores with
// aluPer compute instructions between faults.
func faultMicro(aluPer uint32) *workloads.Workload {
	foot := uint64(48 * mem.MB)
	return workloads.Custom(
		"kfrac-alu"+itoa(int(aluPer)),
		workloads.LongRunning,
		foot,
		func(w *workloads.Workload, k *mimicos.Kernel, pid int) {
			w.SetBase("data", k.Mmap(pid, foot, mimicos.MmapFlags{Anon: true}))
		},
		func(w *workloads.Workload) []workloads.Step {
			return []workloads.Step{
				{Kind: workloads.StepTouch, Base: w.Base("data"), Size: foot,
					Stride: 4 * mem.KB, ALUPer: aluPer, PC: 0xA00100},
			}
		},
	)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
