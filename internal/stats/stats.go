// Package stats provides the measurement toolkit used across the
// simulator: streaming summaries, latency histograms with percentile
// queries, the cosine-similarity metric the paper uses to validate page
// fault latency series (§7.2), and accuracy metrics for the validation
// experiments.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and reports simple
// moments without retaining the samples.
type Summary struct {
	N    uint64
	Sum  float64
	Sum2 float64
	Min  float64
	Max  float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.N++
	s.Sum += v
	s.Sum2 += v * v
}

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Variance returns the population variance, or 0 if empty.
func (s *Summary) Variance() float64 {
	if s.N == 0 {
		return 0
	}
	m := s.Mean()
	v := s.Sum2/float64(s.N) - m*m
	if v < 0 {
		return 0 // numerical noise
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds other into s.
func (s *Summary) Merge(other *Summary) {
	if other.N == 0 {
		return
	}
	if s.N == 0 {
		*s = *other
		return
	}
	if other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.N += other.N
	s.Sum += other.Sum
	s.Sum2 += other.Sum2
}

// Series retains every observation, supporting exact percentile queries,
// distribution summaries, and similarity metrics. Use for bounded sample
// counts (e.g., per-fault latencies).
type Series struct {
	vals   []float64
	sorted bool
}

// NewSeries returns a Series with capacity hint n.
func NewSeries(n int) *Series { return &Series{vals: make([]float64, 0, n)} }

// Add appends one observation.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.vals) }

// Values returns the raw observations in insertion order.
// The returned slice must not be modified.
func (s *Series) Values() []float64 { return s.vals }

// Sum returns the total of all observations.
func (s *Series) Sum() float64 {
	t := 0.0
	for _, v := range s.vals {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.vals))
}

// StdDev returns the population standard deviation.
func (s *Series) StdDev() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s.vals)))
}

// MarshalJSON encodes the series as a plain JSON array of observations.
// Beware that percentile queries sort the values in place, so the
// encoded order is insertion order only before the first such query.
func (s *Series) MarshalJSON() ([]byte, error) {
	if s.vals == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(s.vals)
}

// UnmarshalJSON decodes a JSON array of observations.
func (s *Series) UnmarshalJSON(b []byte) error {
	s.sorted = false
	s.vals = s.vals[:0]
	return json.Unmarshal(b, &s.vals)
}

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. Returns 0 for an empty series.
//
// Note: sorting reorders the underlying values; call Values before the
// first Percentile call if insertion order matters.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if n == 1 {
		return s.vals[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Series) Median() float64 { return s.Percentile(50) }

// Max returns the largest observation, or 0 if empty.
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// Min returns the smallest observation, or 0 if empty.
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// OutlierContribution returns the fraction of the series total contributed
// by observations strictly greater than threshold — the metric Fig. 2 uses
// to quantify minor-page-fault tail latency ("contribution of outliers").
func (s *Series) OutlierContribution(threshold float64) float64 {
	total := 0.0
	outlier := 0.0
	for _, v := range s.vals {
		total += v
		if v > threshold {
			outlier += v
		}
	}
	if total == 0 {
		return 0
	}
	return outlier / total
}

// CosineSimilarity returns the cosine of the angle between vectors a and b,
// truncated to the shorter length; this is the validation metric of §7.2
// ("we use the cosine similarity instead of the mean absolute error to
// account for the variance and the fluctuations in the PF latency").
// Returns 0 if either (truncated) vector is all-zero or empty.
func CosineSimilarity(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	// Scale by the largest magnitude to avoid overflow on extreme inputs.
	var scale float64
	for i := 0; i < n; i++ {
		if v := math.Abs(a[i]); v > scale {
			scale = v
		}
		if v := math.Abs(b[i]); v > scale {
			scale = v
		}
	}
	if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		return 0
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		x, y := a[i]/scale, b[i]/scale
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Accuracy returns the estimation accuracy of estimate against reference:
// 1 - |estimate-reference|/reference, clamped to [0,1]. This is the IPC /
// MPKI / PTW-latency accuracy metric of §7.2. Returns 0 when reference
// is 0 and the estimate is not, and 1 when both are 0.
func Accuracy(estimate, reference float64) float64 {
	if reference == 0 {
		if estimate == 0 {
			return 1
		}
		return 0
	}
	acc := 1 - math.Abs(estimate-reference)/math.Abs(reference)
	if acc < 0 {
		return 0
	}
	return acc
}

// GeoMean returns the geometric mean of vs, ignoring non-positive entries.
// Returns 0 if no positive entries exist.
func GeoMean(vs []float64) float64 {
	var acc float64
	var n int
	for _, v := range vs {
		if v > 0 {
			acc += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(acc / float64(n))
}

// Mean returns the arithmetic mean of vs, or 0 if empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range vs {
		t += v
	}
	return t / float64(len(vs))
}

// LogHistogram buckets positive observations into powers-of-two bins,
// suitable for heavy-tailed latency distributions (Figs. 2, 16).
type LogHistogram struct {
	Counts [64]uint64
	N      uint64
}

// Add records v (values < 1 land in bucket 0).
func (h *LogHistogram) Add(v float64) {
	b := 0
	if v >= 1 {
		b = int(math.Log2(v))
		if b > 63 {
			b = 63
		}
	}
	h.Counts[b]++
	h.N++
}

// Bucket returns the count of bucket i (values in [2^i, 2^(i+1))).
func (h *LogHistogram) Bucket(i int) uint64 { return h.Counts[i] }

// String renders the non-empty buckets.
func (h *LogHistogram) String() string {
	out := ""
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		out += fmt.Sprintf("[2^%d,2^%d): %d\n", i, i+1, c)
	}
	return out
}
