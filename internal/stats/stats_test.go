package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %f", s.Mean())
	}
	if s.StdDev() != 2 {
		t.Fatalf("stddev = %f", s.StdDev())
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %f/%f", s.Min, s.Max)
	}
}

func TestSeriesPercentiles(t *testing.T) {
	s := NewSeries(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if m := s.Median(); math.Abs(m-50.5) > 0.01 {
		t.Fatalf("median = %f", m)
	}
	if p := s.Percentile(99); p < 99 || p > 100 {
		t.Fatalf("p99 = %f", p)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
}

func TestOutlierContribution(t *testing.T) {
	s := NewSeries(0)
	for i := 0; i < 99; i++ {
		s.Add(1)
	}
	s.Add(901) // 901 / 1000 of the total
	if got := s.OutlierContribution(10); math.Abs(got-0.901) > 1e-9 {
		t.Fatalf("outlier contribution = %f", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self-similarity = %f", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal = %f", got)
	}
	if got := CosineSimilarity(nil, a); got != 0 {
		t.Fatalf("empty = %f", got)
	}
}

func TestAccuracy(t *testing.T) {
	cases := []struct{ est, ref, want float64 }{
		{1, 1, 1},
		{0.8, 1, 0.8},
		{1.2, 1, 0.8},
		{3, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	}
	for _, c := range cases {
		if got := Accuracy(c.est, c.ref); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Accuracy(%f,%f) = %f, want %f", c.est, c.ref, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %f", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Fatalf("geomean of non-positives = %f", got)
	}
}

func TestQuickCosineBounds(t *testing.T) {
	f := func(a, b []float64) bool {
		c := CosineSimilarity(a, b)
		return c >= -1.0000001 && c <= 1.0000001 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewSeries(len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if s.Len() > 0 && v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogram(t *testing.T) {
	var h LogHistogram
	h.Add(0.5)
	h.Add(3)
	h.Add(1000)
	if h.N != 3 || h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(9) != 1 {
		t.Fatalf("histogram: %+v", h.Counts[:12])
	}
}
