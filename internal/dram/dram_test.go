package dram

import (
	"testing"

	"repro/internal/mem"
)

func TestRowHitFasterThanConflict(t *testing.T) {
	c := NewController(Config{})
	cfg := c.Config()
	rowBytes := cfg.RowBytes
	nb := uint64(cfg.Channels * cfg.BanksPerCh)

	a := mem.PAddr(0)
	sameRow := a + 64
	conflictRow := a + mem.PAddr(rowBytes*nb) // same bank, next row

	first := c.Access(a, false, mem.ATData, 0)
	hit := c.Access(sameRow, false, mem.ATData, first+1000)
	conflict := c.Access(conflictRow, false, mem.ATData, first+10000)

	if hit >= conflict {
		t.Fatalf("row hit (%d) should be faster than conflict (%d)", hit, conflict)
	}
	s := c.Stats()
	if s.RowHits[mem.ATData] != 1 || s.RowConflicts[mem.ATData] != 1 || s.RowMisses[mem.ATData] != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConflictAttribution(t *testing.T) {
	c := NewController(Config{})
	nb := uint64(c.Config().Channels * c.Config().BanksPerCh)
	a := mem.PAddr(0)
	b := a + mem.PAddr(c.Config().RowBytes*nb)
	c.Access(a, false, mem.ATData, 0)
	c.Access(b, false, mem.ATPTE, 100000) // PTE access conflicts with data row
	s := c.Stats()
	if s.RowConflicts[mem.ATPTE] != 1 {
		t.Fatalf("PTE conflict not counted: %+v", s.RowConflicts)
	}
	if s.ConflictsCausedTo[mem.ATData] != 1 {
		t.Fatalf("victim attribution missing: %+v", s.ConflictsCausedTo)
	}
	if s.TranslationConflicts() != 1 {
		t.Fatalf("TranslationConflicts = %d", s.TranslationConflicts())
	}
}

func TestBankQueueing(t *testing.T) {
	c := NewController(Config{})
	a := mem.PAddr(0)
	// Two back-to-back accesses to the same bank at the same instant:
	// the second must queue.
	c.Access(a, false, mem.ATData, 0)
	lat := c.Access(a+64, false, mem.ATData, 0)
	if c.Stats().QueueCycles == 0 {
		t.Fatal("no queueing recorded for same-cycle same-bank accesses")
	}
	if lat <= c.Config().TCAS {
		t.Fatalf("queued access latency %d too small", lat)
	}
}

func TestChannelsSpreadBanks(t *testing.T) {
	c := NewController(Config{})
	seen := map[int]bool{}
	for i := uint64(0); i < 64; i++ {
		bank, _ := c.bankAndRow(mem.PAddr(i * c.Config().RowBytes))
		seen[bank] = true
	}
	if len(seen) != c.Config().Channels*c.Config().BanksPerCh {
		t.Fatalf("rows mapped to %d banks, want %d", len(seen), c.Config().Channels*c.Config().BanksPerCh)
	}
}

func TestRowHitRate(t *testing.T) {
	c := NewController(Config{})
	for i := 0; i < 10; i++ {
		c.Access(mem.PAddr(i*64), false, mem.ATData, uint64(i*1000))
	}
	if r := c.Stats().RowHitRate(); r < 0.8 {
		t.Fatalf("sequential row hit rate = %f", r)
	}
}
