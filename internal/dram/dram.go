// Package dram models a DDR4 main-memory subsystem at the granularity the
// paper's evaluation requires: banked row buffers with per-access-type
// hit/conflict attribution (so experiments can report row-buffer conflicts
// caused by page-table and translation-metadata traffic separately from
// application data — Figs. 14 and 21), realistic activate/precharge/CAS
// timing, and approximate bank-level queueing contention.
//
// The model is a heavily refactored Ramulator-inspired controller, as the
// paper describes for its Sniper baseline ("we heavily refactored and
// enhanced the baseline DRAM model inspired from Ramulator").
package dram

import (
	"fmt"

	"repro/internal/mem"
)

// Config describes the memory geometry and timing in CPU cycles.
type Config struct {
	Channels    int    // independent channels
	BanksPerCh  int    // banks per channel
	RowBytes    uint64 // row-buffer size per bank
	TCAS        uint64 // CAS latency (cycles)
	TRCD        uint64 // RAS-to-CAS delay (cycles)
	TRP         uint64 // precharge (cycles)
	TBurst      uint64 // data burst (cycles)
	CtrlLatency uint64 // fixed controller/on-chip-network overhead (cycles)
	MaxQueue    uint64 // cap on modeled per-bank queueing delay (cycles)
}

// DDR4_2400 returns the paper's Table 4 configuration (DDR4-2400,
// tRCD = tCL = 12.5 ns, tRP = 2.5 ns) converted to cycles of the 2.9 GHz
// core: 12.5 ns ≈ 36 cycles, 2.5 ns ≈ 7 cycles.
func DDR4_2400() Config {
	return Config{
		Channels:    2,
		BanksPerCh:  16,
		RowBytes:    8 * mem.KB,
		TCAS:        36,
		TRCD:        36,
		TRP:         7,
		TBurst:      4,
		CtrlLatency: 18,
		MaxQueue:    400,
	}
}

type bank struct {
	openRow   int64 // -1 when precharged
	busyUntil uint64
	openedBy  mem.AccessType // type of the access that opened the current row
}

// Stats aggregates controller activity, attributed per access type.
type Stats struct {
	Accesses     [mem.NumAccessTypes]uint64
	RowHits      [mem.NumAccessTypes]uint64
	RowConflicts [mem.NumAccessTypes]uint64 // access found a different row open
	RowMisses    [mem.NumAccessTypes]uint64 // access found the bank precharged
	Reads        uint64
	Writes       uint64
	QueueCycles  uint64 // total modeled queueing delay
	// ConflictsCausedTo[x] counts conflicts where the *displaced* row had
	// been opened by type x — i.e., traffic of type x was the victim.
	ConflictsCausedTo [mem.NumAccessTypes]uint64
}

// TotalAccesses returns the access count across all types.
func (s *Stats) TotalAccesses() uint64 {
	var n uint64
	for _, v := range s.Accesses {
		n += v
	}
	return n
}

// TotalConflicts returns row-buffer conflicts across all types.
func (s *Stats) TotalConflicts() uint64 {
	var n uint64
	for _, v := range s.RowConflicts {
		n += v
	}
	return n
}

// TranslationConflicts returns row-buffer conflicts caused by page-table
// plus translation-metadata accesses — the quantity plotted in Fig. 21.
func (s *Stats) TranslationConflicts() uint64 {
	return s.RowConflicts[mem.ATPTE] + s.RowConflicts[mem.ATTransMeta]
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s *Stats) RowHitRate() float64 {
	t := s.TotalAccesses()
	if t == 0 {
		return 0
	}
	var h uint64
	for _, v := range s.RowHits {
		h += v
	}
	return float64(h) / float64(t)
}

// Controller is a multi-channel, multi-bank DRAM controller with open-page
// policy and per-bank busy tracking.
type Controller struct {
	cfg   Config
	banks []bank
	stats Stats
}

// NewController builds a controller for cfg. Zero-valued fields are
// replaced by DDR4_2400 defaults.
func NewController(cfg Config) *Controller {
	def := DDR4_2400()
	if cfg.Channels == 0 {
		cfg.Channels = def.Channels
	}
	if cfg.BanksPerCh == 0 {
		cfg.BanksPerCh = def.BanksPerCh
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = def.RowBytes
	}
	if cfg.TCAS == 0 {
		cfg.TCAS = def.TCAS
	}
	if cfg.TRCD == 0 {
		cfg.TRCD = def.TRCD
	}
	if cfg.TRP == 0 {
		cfg.TRP = def.TRP
	}
	if cfg.TBurst == 0 {
		cfg.TBurst = def.TBurst
	}
	if cfg.CtrlLatency == 0 {
		cfg.CtrlLatency = def.CtrlLatency
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = def.MaxQueue
	}
	n := cfg.Channels * cfg.BanksPerCh
	c := &Controller{cfg: cfg, banks: make([]bank, n)}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	return c
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// bankAndRow maps a physical address to (global bank index, row id).
// Consecutive rows interleave across channels then banks, the usual
// XOR-free row-interleaved mapping.
func (c *Controller) bankAndRow(pa mem.PAddr) (int, int64) {
	rowID := uint64(pa) / c.cfg.RowBytes
	nb := uint64(len(c.banks))
	return int(rowID % nb), int64(rowID / nb)
}

// Access performs one memory transaction of type t at current time now and
// returns the access latency in cycles (including modeled queueing).
func (c *Controller) Access(pa mem.PAddr, write bool, t mem.AccessType, now uint64) uint64 {
	bi, row := c.bankAndRow(pa)
	b := &c.banks[bi]

	c.stats.Accesses[t]++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}

	// Queueing: if the bank is still busy with earlier transactions,
	// the request waits (bounded, to keep the accumulation model stable).
	var queue uint64
	if b.busyUntil > now {
		queue = b.busyUntil - now
		if queue > c.cfg.MaxQueue {
			queue = c.cfg.MaxQueue
		}
		c.stats.QueueCycles += queue
	}

	var svc uint64
	switch {
	case b.openRow == row:
		c.stats.RowHits[t]++
		svc = c.cfg.TCAS + c.cfg.TBurst
	case b.openRow == -1:
		c.stats.RowMisses[t]++
		svc = c.cfg.TRCD + c.cfg.TCAS + c.cfg.TBurst
	default:
		c.stats.RowConflicts[t]++
		c.stats.ConflictsCausedTo[b.openedBy]++
		svc = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS + c.cfg.TBurst
	}
	b.openRow = row
	b.openedBy = t
	start := now + queue
	b.busyUntil = start + svc

	return c.cfg.CtrlLatency + queue + svc
}

// Stats returns a snapshot pointer of the controller statistics.
func (c *Controller) Stats() *Stats { return &c.stats }

// ResetStats zeroes accumulated statistics without disturbing bank state.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// String summarises the controller state.
func (c *Controller) String() string {
	return fmt.Sprintf("dram{ch=%d banks=%d rowKB=%d hits=%.1f%%}",
		c.cfg.Channels, c.cfg.BanksPerCh, c.cfg.RowBytes/mem.KB, 100*c.stats.RowHitRate())
}
