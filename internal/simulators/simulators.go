// Package simulators provides the five simulator integrations of §5.2 /
// Table 3: Sniper-style execution-driven simulation, ChampSim-style
// trace-driven simulation, Ramulator-style memory-trace simulation,
// gem5-SE-style emulation-driven simulation (plus a gem5-FS-style
// full-system mode), and the MQSim SSD coupling. Each adapter is a thin
// assembly over the shared substrates, mirroring the paper's claim that
// integrating Virtuoso needs only small frontend/core/MMU hooks; the
// per-adapter source line counts stand in for Table 3's integration LoC.
package simulators

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/mimicos"
)

// Kind names one of the five integrated simulators.
type Kind string

// The five simulator integrations.
const (
	Sniper    Kind = "sniper"
	ChampSim  Kind = "champsim"
	Ramulator Kind = "ramulator"
	Gem5SE    Kind = "gem5-se"
	Gem5FS    Kind = "gem5-fs" // gem5 full-system comparison mode (§7.3)
	MQSim     Kind = "mqsim"
)

// Kinds lists the four MimicOS-hosting simulators of Fig. 11 (MQSim is a
// device simulator attached to the others).
func Kinds() []Kind { return []Kind{ChampSim, Sniper, Ramulator, Gem5SE} }

// Options tune an assembly beyond its simulator personality.
type Options struct {
	WithMimicOS bool // false = the simulator's native OS emulation
	MaxAppInsts uint64
	PhysBytes   uint64
	Seed        uint64
}

// Build assembles a system with the given simulator personality.
//
// The personalities differ exactly where the real simulators differ:
//   - frontend style (execution / trace / memory-trace / emulation),
//   - how MimicOS streams are captured (online instrumentation retains
//     translated-code buffers in Sniper/ChampSim; Ramulator replays an
//     offline stripped trace; gem5 reuses its emulation frontend), and
//   - the detail of the core model.
func Build(k Kind, opt Options) (*core.System, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	if opt.PhysBytes != 0 {
		cfg.OSCfg.PhysBytes = opt.PhysBytes
	}
	cfg.MaxAppInsts = opt.MaxAppInsts
	if !opt.WithMimicOS {
		cfg.Mode = core.Emulation
	}

	switch k {
	case Sniper:
		cfg.Frontend = core.FrontendExec
		cfg.RetainKernelStreams = 256 // online Pin-style instrumentation
	case ChampSim:
		cfg.Frontend = core.FrontendTrace
		cfg.RetainKernelStreams = 256
		// ChampSim's simpler memory path: no L3 prefetcher differences
		// modeled; keep the shared hierarchy.
	case Ramulator:
		cfg.Frontend = core.FrontendMemTrace
		cfg.RetainKernelStreams = 0 // offline instrumentation: stream not retained
		// Ramulator has no core model: widen the "core" so non-memory
		// work is nearly free, leaving DRAM as the bottleneck.
		cfg.CoreCfg.Width = 16
	case Gem5SE:
		cfg.Frontend = core.FrontendEmu
		cfg.RetainKernelStreams = 0 // reuses the emulation frontend
	case Gem5FS:
		cfg.Frontend = core.FrontendEmu
		cfg.RetainKernelStreams = 0
		cfg.Mode = core.Imitation
		cfg.OSCfg.FullKernel = true // simulate the full-blown kernel
	case MQSim:
		// MQSim alone: an SSD-centric assembly (swap experiments attach
		// it to another personality; standalone it is Sniper+disk).
		cfg.Frontend = core.FrontendExec
	default:
		return Build(Sniper, opt)
	}
	return core.NewSystem(cfg)
}

// MustBuild is Build, panicking on error.
func MustBuild(k Kind, opt Options) *core.System {
	s, err := Build(k, opt)
	if err != nil {
		panic(err)
	}
	return s
}

// Interface checks that the shared substrates satisfy what each adapter
// needs (the Table 3 integration points).
var (
	_ = cache.DefaultHierarchyConfig
	_ = dram.DDR4_2400
	_ = mimicos.DefaultConfig
	_ mem.PAddr
)
