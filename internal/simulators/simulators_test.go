package simulators

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// tinyWorkload builds a catalog workload at test scale.
func tinyWorkload(name string) *workloads.Workload {
	w, ok := workloads.ByNameWith(name, workloads.Params{Scale: 0.02})
	if !ok {
		panic(name)
	}
	return w
}

func TestAllPersonalitiesRun(t *testing.T) {
	for _, k := range append(Kinds(), Gem5FS) {
		k := k
		t.Run(string(k), func(t *testing.T) {
			s := MustBuild(k, Options{
				WithMimicOS: true,
				MaxAppInsts: 60_000,
				PhysBytes:   512 * mem.MB,
				Seed:        5,
			})
			m := s.Run(tinyWorkload("Hadamard"))
			if m.Segvs != 0 {
				t.Fatalf("%s: segvs %d", k, m.Segvs)
			}
			if m.MinorFaults == 0 {
				t.Fatalf("%s: no faults", k)
			}
			if m.Cycles == 0 {
				t.Fatalf("%s: no cycles", k)
			}
			if m.KernelInsts == 0 {
				t.Fatalf("%s: MimicOS injected nothing", k)
			}
		})
	}
}

func TestWithoutMimicOSIsEmulation(t *testing.T) {
	s := MustBuild(Sniper, Options{WithMimicOS: false, MaxAppInsts: 60_000, PhysBytes: 512 * mem.MB})
	if s.Cfg.Mode != core.Emulation {
		t.Fatal("baseline build not in emulation mode")
	}
	m := s.Run(tinyWorkload("Hadamard"))
	if m.KernelInsts != 0 {
		t.Fatalf("baseline injected %d kernel instructions", m.KernelInsts)
	}
}

func TestGem5FSRunsFullKernel(t *testing.T) {
	se := MustBuild(Gem5SE, Options{WithMimicOS: true, MaxAppInsts: 50_000, PhysBytes: 512 * mem.MB})
	fs := MustBuild(Gem5FS, Options{WithMimicOS: true, MaxAppInsts: 50_000, PhysBytes: 512 * mem.MB})
	mse := se.Run(tinyWorkload("2D-Sum"))
	mfs := fs.Run(tinyWorkload("2D-Sum"))
	if mfs.KernelInsts <= mse.KernelInsts {
		t.Fatalf("full-system kernel instructions (%d) not above syscall-emulation (%d)",
			mfs.KernelInsts, mse.KernelInsts)
	}
}
