package cache

import (
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/recycle"
)

// HierarchyConfig sizes the three cache levels (Table 4 defaults via
// DefaultHierarchyConfig).
type HierarchyConfig struct {
	L1ISize, L1DSize uint64
	L1Ways           int
	L1Latency        uint64
	L2Size           uint64
	L2Ways           int
	L2Latency        uint64
	L3Size           uint64
	L3Ways           int
	L3Latency        uint64
	EnablePrefetch   bool
}

// DefaultHierarchyConfig returns the paper's Table 4 cache configuration:
// 32 KB 8-way L1 I/D (4-cycle, LRU, IP-stride at L1D), 2 MB 16-way L2
// (16-cycle, SRRIP, stream prefetcher), 2 MB/core 16-way L3 (35-cycle).
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1ISize: 32 * mem.KB, L1DSize: 32 * mem.KB, L1Ways: 8, L1Latency: 4,
		L2Size: 2 * mem.MB, L2Ways: 16, L2Latency: 16,
		L3Size: 2 * mem.MB, L3Ways: 16, L3Latency: 35,
		EnablePrefetch: true,
	}
}

// Hierarchy composes L1I/L1D, a unified L2, a unified L3 and a DRAM
// controller. It is shared by application accesses, injected kernel
// streams, and hardware page-table-walker accesses, so all three classes
// of traffic contend for the same capacity and bandwidth.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Cache
	Dram             *dram.Controller
	ipStride         *IPStridePrefetcher
	stream           *StreamPrefetcher
	cfg              HierarchyConfig
}

// NewHierarchy builds the hierarchy over the given DRAM controller.
func NewHierarchy(cfg HierarchyConfig, d *dram.Controller) *Hierarchy {
	return NewHierarchyWith(cfg, d, nil)
}

// NewHierarchyWith is NewHierarchy drawing each level's line arrays
// from pool (nil pool = plain NewHierarchy).
func NewHierarchyWith(cfg HierarchyConfig, d *dram.Controller, pool *recycle.Pool) *Hierarchy {
	h := &Hierarchy{
		L1I:  NewWith(pool, "L1I", cfg.L1ISize, cfg.L1Ways, cfg.L1Latency, LRU),
		L1D:  NewWith(pool, "L1D", cfg.L1DSize, cfg.L1Ways, cfg.L1Latency, LRU),
		L2:   NewWith(pool, "L2", cfg.L2Size, cfg.L2Ways, cfg.L2Latency, SRRIP),
		L3:   NewWith(pool, "L3", cfg.L3Size, cfg.L3Ways, cfg.L3Latency, SRRIP),
		Dram: d,
		cfg:  cfg,
	}
	if cfg.EnablePrefetch {
		h.ipStride = NewIPStride(256, 2)
		h.stream = NewStream(16, 4)
	}
	return h
}

// Recycle hands every level's line arrays back to pool; the hierarchy
// must not be used afterwards.
func (h *Hierarchy) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	h.L1I.Recycle(pool)
	h.L1D.Recycle(pool)
	h.L2.Recycle(pool)
	h.L3.Recycle(pool)
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Access performs a data access at physical address pa and returns the
// latency in cycles. pc drives the IP-stride prefetcher (pass 0 for
// non-application traffic). The access-type tag t flows down to DRAM for
// attribution.
func (h *Hierarchy) Access(pa mem.PAddr, write bool, t mem.AccessType, pc uint64, now uint64) uint64 {
	la := mem.Line(pa)
	lat := h.L1D.Latency()
	hitL1 := h.L1D.Access(la, write, t)
	if h.ipStride != nil && t == mem.ATData {
		for _, ppa := range h.ipStride.Observe(pc, la) {
			h.prefetchFill(mem.Line(ppa), t, now)
		}
	}
	if hitL1 {
		return lat
	}
	lat += h.L2.Latency()
	if h.L2.Access(la, write, t) {
		h.L1D.Fill(la, write, t, false)
		return lat
	}
	if h.stream != nil && (t == mem.ATData || t == mem.ATKernel) {
		for _, ppa := range h.stream.Observe(la) {
			h.prefetchFillL2(ppa, t, now)
		}
	}
	lat += h.L3.Latency()
	if h.L3.Access(la, write, t) {
		h.fillUp(la, write, t)
		return lat
	}
	lat += h.Dram.Access(la, false, t, now+lat)
	h.fillAll(la, write, t, now+lat)
	return lat
}

// FetchInstr performs an instruction-fetch access (L1I path).
func (h *Hierarchy) FetchInstr(pa mem.PAddr, now uint64) uint64 {
	la := mem.Line(pa)
	lat := h.L1I.Latency()
	if h.L1I.Access(la, false, mem.ATInstr) {
		return lat
	}
	lat += h.L2.Latency()
	if h.L2.Access(la, false, mem.ATInstr) {
		h.L1I.Fill(la, false, mem.ATInstr, false)
		return lat
	}
	lat += h.L3.Latency()
	if h.L3.Access(la, false, mem.ATInstr) {
		h.L2.Fill(la, false, mem.ATInstr, false)
		h.L1I.Fill(la, false, mem.ATInstr, false)
		return lat
	}
	lat += h.Dram.Access(la, false, mem.ATInstr, now+lat)
	h.L3.Fill(la, false, mem.ATInstr, false)
	h.L2.Fill(la, false, mem.ATInstr, false)
	h.L1I.Fill(la, false, mem.ATInstr, false)
	return lat
}

// fillUp inserts into L2 and L1D after an L3 hit, handling writebacks.
func (h *Hierarchy) fillUp(la mem.PAddr, write bool, t mem.AccessType) {
	if wb, dirty := h.L2.Fill(la, write, t, false); dirty {
		h.L3.Fill(wb, true, t, false)
	}
	if wb, dirty := h.L1D.Fill(la, write, t, false); dirty {
		h.L2.Fill(wb, true, t, false)
	}
}

// fillAll inserts into every level after a DRAM fill.
func (h *Hierarchy) fillAll(la mem.PAddr, write bool, t mem.AccessType, now uint64) {
	if wb, dirty := h.L3.Fill(la, write, t, false); dirty {
		h.Dram.Access(wb, true, t, now)
	}
	h.fillUp(la, write, t)
}

// prefetchFill services an L1D prefetch: it pulls the line to L1D,
// fetching from lower levels as needed (latency hidden, bandwidth and
// occupancy modeled). Each level is probed and filled in one scan via
// FillIfAbsent; every level sees the same per-cache operation sequence
// as the historical probe-then-fill form, so simulated state is
// identical — the fused form just avoids rescanning each set.
func (h *Hierarchy) prefetchFill(la mem.PAddr, t mem.AccessType, now uint64) {
	if h.L1D.FillIfAbsent(la, t) {
		return
	}
	// L2 and L3 are filled only when the line was in neither (an
	// L3-only hit leaves L2 untouched), so L2 needs a separate probe.
	if !h.L2.Lookup(la) {
		if !h.L3.FillIfAbsent(la, t) {
			h.Dram.Access(la, false, t, now)
			h.L2.Fill(la, false, t, true)
		}
	}
}

// prefetchFillL2 services an L2 stream prefetch.
func (h *Hierarchy) prefetchFillL2(la mem.PAddr, t mem.AccessType, now uint64) {
	if h.L2.FillIfAbsent(la, t) {
		return
	}
	if !h.L3.FillIfAbsent(la, t) {
		h.Dram.Access(la, false, t, now)
	}
}

// AccessPTE performs a page-table access on behalf of the hardware walker.
// PTEs are cacheable in the data caches (Table 2's "TLB entries stored in
// data caches" schemes extend this path).
func (h *Hierarchy) AccessPTE(pa mem.PAddr, write bool, now uint64) uint64 {
	return h.Access(pa, write, mem.ATPTE, 0, now)
}

// AccessMeta performs a translation-metadata access (range tables, RestSeg
// tags, VMA trees).
func (h *Hierarchy) AccessMeta(pa mem.PAddr, write bool, now uint64) uint64 {
	return h.Access(pa, write, mem.ATTransMeta, 0, now)
}
