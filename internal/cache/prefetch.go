package cache

import "repro/internal/mem"

// IPStridePrefetcher is the L1D prefetcher of Table 4: it tracks per-PC
// strides and, after the stride is confirmed, prefetches ahead.
type IPStridePrefetcher struct {
	entries []ipEntry
	mask    uint64
	degree  int
	buf     []mem.PAddr // reused across Observe calls; valid until the next call
	Issued  uint64
	Useful  uint64 // approximated by the fill layer
}

type ipEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     uint8
	valid    bool
}

// NewIPStride builds a prefetcher with a power-of-two table size.
func NewIPStride(tableSize, degree int) *IPStridePrefetcher {
	if tableSize&(tableSize-1) != 0 {
		panic("cache: ip-stride table size must be a power of two")
	}
	return &IPStridePrefetcher{
		entries: make([]ipEntry, tableSize),
		mask:    uint64(tableSize - 1),
		degree:  degree,
		buf:     make([]mem.PAddr, 0, degree),
	}
}

// Observe records a demand access and returns addresses to prefetch
// (possibly none). The returned slice is reused by the next Observe
// call — consume it before observing again.
func (p *IPStridePrefetcher) Observe(pc uint64, pa mem.PAddr) []mem.PAddr {
	e := &p.entries[(pc>>2)&p.mask]
	if !e.valid || e.pc != pc {
		*e = ipEntry{pc: pc, lastAddr: uint64(pa), valid: true}
		return nil
	}
	stride := int64(uint64(pa)) - int64(e.lastAddr)
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.lastAddr = uint64(pa)
	if e.conf < 2 {
		return nil
	}
	out := p.buf[:0]
	next := int64(uint64(pa))
	for i := 0; i < p.degree; i++ {
		next += e.stride
		if next <= 0 {
			break
		}
		out = append(out, mem.PAddr(next))
	}
	p.Issued += uint64(len(out))
	return out
}

// StreamPrefetcher is the L2 prefetcher of Table 4: it detects sequential
// miss streams within a page-sized window and runs ahead of them.
type StreamPrefetcher struct {
	streams []streamEntry
	next    int
	degree  int
	buf     []mem.PAddr // reused across Observe calls; valid until the next call
	Issued  uint64
}

type streamEntry struct {
	base  uint64 // 4KB-region base
	last  uint64
	dir   int64
	conf  uint8
	valid bool
}

// NewStream builds a stream prefetcher with n stream trackers.
func NewStream(nStreams, degree int) *StreamPrefetcher {
	return &StreamPrefetcher{
		streams: make([]streamEntry, nStreams),
		degree:  degree,
		buf:     make([]mem.PAddr, 0, degree),
	}
}

// Observe records an L2 demand miss and returns prefetch candidates.
// The returned slice is reused by the next Observe call — consume it
// before observing again.
func (p *StreamPrefetcher) Observe(pa mem.PAddr) []mem.PAddr {
	region := uint64(pa) >> 12
	lineA := uint64(mem.Line(pa))
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid || s.base != region {
			continue
		}
		dir := int64(1)
		if lineA < s.last {
			dir = -1
		}
		if dir == s.dir {
			if s.conf < 3 {
				s.conf++
			}
		} else {
			s.dir = dir
			s.conf = 1
		}
		s.last = lineA
		if s.conf < 2 {
			return nil
		}
		out := p.buf[:0]
		a := int64(lineA)
		for j := 0; j < p.degree; j++ {
			a += s.dir * mem.CacheLineBytes
			if a <= 0 {
				break
			}
			// Stay within the 4KB region to avoid crossing page frames.
			if uint64(a)>>12 != region {
				break
			}
			out = append(out, mem.PAddr(a))
		}
		p.Issued += uint64(len(out))
		return out
	}
	// Allocate a new tracker round-robin.
	p.streams[p.next] = streamEntry{base: region, last: lineA, dir: 1, conf: 1, valid: true}
	p.next = (p.next + 1) % len(p.streams)
	return nil
}
