// Package cache implements the on-chip cache hierarchy of the simulated
// system: set-associative caches with LRU and SRRIP replacement, an
// IP-stride prefetcher at L1D and a stream prefetcher at L2 (Table 4), and
// a Hierarchy type that composes the levels on top of a DRAM controller.
//
// Accesses are tagged with a mem.AccessType so the hierarchy can report
// how much page-table state lives in each cache level and how injected
// kernel streams pollute the caches — the interference effects Virtuoso's
// imitation methodology makes visible.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/recycle"
)

// ReplPolicy selects the replacement policy of one cache.
type ReplPolicy uint8

const (
	// LRU evicts the least-recently-used way.
	LRU ReplPolicy = iota
	// SRRIP is static re-reference interval prediction (Jaleel et al.),
	// used by the paper's L2 configuration.
	SRRIP
)

func (p ReplPolicy) String() string {
	if p == SRRIP {
		return "srrip"
	}
	return "lru"
}

const srripMax = 3 // 2-bit RRPV

// Lines are stored structure-of-arrays so the way scans in Access/Fill
// touch one densely packed uint64 per way instead of a 32-byte struct:
//
//	tags[i] = (tag << 1) | 1 for a valid line, 0 for an invalid one
//	lru[i]  = last-use stamp (LRU replacement)
//	meta[i] = dirty (bit 0) | rrpv (bits 1-2) | atype (bits 3-7)
const (
	metaDirty     = 1 << 0
	metaRrpvShift = 1
	metaRrpvMask  = 0b11 << metaRrpvShift
	metaTypeShift = 3
)

// Stats counts per-type cache activity.
type Stats struct {
	Hits          [mem.NumAccessTypes]uint64
	Misses        [mem.NumAccessTypes]uint64
	Evictions     uint64
	Writebacks    uint64
	PrefetchFills uint64
}

// HitRate returns the overall hit fraction.
func (s *Stats) HitRate() float64 {
	var h, m uint64
	for i := 0; i < mem.NumAccessTypes; i++ {
		h += s.Hits[i]
		m += s.Misses[i]
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// MissesOf returns the miss count for one access type.
func (s *Stats) MissesOf(t mem.AccessType) uint64 { return s.Misses[t] }

// Cache is one set-associative cache level.
type Cache struct {
	name      string
	sets      int
	ways      int
	latency   uint64
	policy    ReplPolicy
	tags      []uint64 // sets*ways, row-major; (tag<<1)|valid
	lru       []uint64
	meta      []uint8
	rrpv      []uint64 // packed SRRIP only: one word per set, 2 bits per way
	tick      uint64
	stats     Stats
	setShift  uint
	setMask   uint64
	setsShift uint // log2(sets): tag extraction shifts instead of dividing
	packed    bool // SRRIP with ways <= 32: RRPVs live in rrpv, not meta
	rrpvLo    uint64
	rrpvHi    uint64
}

// New builds a cache with the given geometry. sizeBytes/64 must be
// divisible by ways.
func New(name string, sizeBytes uint64, ways int, latency uint64, policy ReplPolicy) *Cache {
	return NewWith(nil, name, sizeBytes, ways, latency, policy)
}

// NewWith is New drawing the SoA line arrays from pool (nil pool =
// plain New).
func NewWith(pool *recycle.Pool, name string, sizeBytes uint64, ways int, latency uint64, policy ReplPolicy) *Cache {
	linesTotal := sizeBytes / mem.CacheLineBytes
	sets := int(linesTotal) / ways
	if sets == 0 || int(linesTotal)%ways != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, sizeBytes, ways))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets %d not a power of two", name, sets))
	}
	if mem.NumAccessTypes > 32 {
		panic("cache: access types no longer fit the packed meta byte")
	}
	c := &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		latency:   latency,
		policy:    policy,
		tags:      pool.Uint64s(sets * ways),
		meta:      pool.Uint8s(sets * ways),
		setMask:   uint64(sets - 1),
		setsShift: uint(bits.TrailingZeros(uint(sets))),
	}
	// LRU stamps are replacement state only under LRU; SRRIP caches
	// never read them, so the largest levels skip the allocation.
	if policy == LRU {
		c.lru = pool.Uint64s(sets * ways)
	}
	// Up to 32 ways the per-way 2-bit RRPVs of an SRRIP set fit one
	// uint64, so victim selection and aging become a handful of bit
	// operations instead of a byte loop (wider SRRIP caches keep the
	// per-way meta loop). Behavior is identical either way.
	if policy == SRRIP && ways <= 32 {
		c.packed = true
		c.rrpv = pool.Uint64s(sets)
		c.rrpvLo = 0x5555555555555555
		if ways < 32 {
			c.rrpvLo &= 1<<(2*uint(ways)) - 1
		}
		c.rrpvHi = c.rrpvLo << 1
	}
	return c
}

// Recycle hands the line arrays back to pool; the cache must not be
// used afterwards.
func (c *Cache) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	pool.PutUint64s(c.tags)
	if c.policy == LRU {
		pool.PutUint64s(c.lru)
	}
	pool.PutUint8s(c.meta)
	if c.packed {
		pool.PutUint64s(c.rrpv)
	}
	c.tags, c.lru, c.meta, c.rrpv = nil, nil, nil, nil
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Latency returns the access latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// Stats returns the cache statistics.
func (c *Cache) Stats() *Stats { return &c.stats }

// SizeBytes returns the capacity.
func (c *Cache) SizeBytes() uint64 {
	return uint64(c.sets*c.ways) * mem.CacheLineBytes
}

func (c *Cache) setOf(pa mem.PAddr) int {
	return int((uint64(pa) >> mem.CacheLineShift) & c.setMask)
}

func (c *Cache) tagOf(pa mem.PAddr) uint64 {
	return uint64(pa) >> mem.CacheLineShift >> c.setsShift
}

// Lookup probes the cache without recording a hit/miss stat; it returns
// whether the line is present. Used by the hierarchy for inclusive checks.
func (c *Cache) Lookup(pa mem.PAddr) bool {
	set, tag := c.setOf(pa), c.tagOf(pa)
	enc := tag<<1 | 1
	base := set * c.ways
	row := c.tags[base : base+c.ways]
	for w := range row {
		if row[w] == enc {
			return true
		}
	}
	return false
}

// Access performs a demand access, updating replacement state and stats.
// It reports whether the access hit.
func (c *Cache) Access(pa mem.PAddr, write bool, t mem.AccessType) bool {
	c.tick++
	set, tag := c.setOf(pa), c.tagOf(pa)
	enc := tag<<1 | 1
	base := set * c.ways
	row := c.tags[base : base+c.ways : base+c.ways]
	for w := range row {
		if row[w] == enc {
			c.stats.Hits[t]++
			i := base + w
			switch {
			case c.policy == LRU:
				c.lru[i] = c.tick
				c.meta[i] &^= metaRrpvMask
			case c.packed:
				c.rrpv[set] &^= 3 << (uint(w) * 2)
			default:
				c.meta[i] &^= metaRrpvMask
			}
			if write {
				c.meta[i] |= metaDirty
			}
			return true
		}
	}
	c.stats.Misses[t]++
	return false
}

// Fill inserts the line for pa after a miss and returns the physical
// address of an evicted dirty line (writeback needed) and whether a dirty
// eviction occurred. prefetch marks fills triggered by a prefetcher, which
// insert at distant re-reference (SRRIP) / colder LRU position.
func (c *Cache) Fill(pa mem.PAddr, write bool, t mem.AccessType, prefetch bool) (mem.PAddr, bool) {
	wbAddr, wb, _ := c.fill(pa, write, t, prefetch, false)
	return wbAddr, wb
}

// FillIfAbsent is a fused Lookup+Fill for the prefetch paths: when the
// line is absent it inserts it exactly like Fill(pa, false, t, true);
// when present it changes nothing at all (a pure probe, like Lookup).
// It reports whether the line was already present. Writebacks of
// evicted dirty lines are not returned — the prefetch fills drop them.
func (c *Cache) FillIfAbsent(pa mem.PAddr, t mem.AccessType) bool {
	_, _, present := c.fill(pa, false, t, true, true)
	return present
}

// fill implements Fill and FillIfAbsent. probe defers the replacement
// tick until the line is known absent, so a probe that finds the line
// leaves the cache untouched; a non-probe fill ticks up front exactly
// like the historical Fill (the advance on a present line keeps LRU
// stamp values bit for bit compatible).
func (c *Cache) fill(pa mem.PAddr, write bool, t mem.AccessType, prefetch, probe bool) (wbAddr mem.PAddr, wb, present bool) {
	if !probe {
		c.tick++
	}
	set, tag := c.setOf(pa), c.tagOf(pa)
	enc := tag<<1 | 1
	base := set * c.ways
	row := c.tags[base : base+c.ways : base+c.ways]
	metaRow := c.meta[base : base+c.ways : base+c.ways]

	// One pass over the set resolves presence, the first invalid way, and
	// the policy's victim-selection input together: the LRU stamp of the
	// oldest way, or (unpacked SRRIP) the maximum RRPV of the set. Packed
	// SRRIP scans tags alone — its RRPVs live in one word per set.
	invalid := -1
	lruVictim := 0
	oldest := ^uint64(0)
	maxR := uint8(0)
	switch {
	case c.policy == LRU:
		lruRow := c.lru[base : base+c.ways : base+c.ways]
		for w := range row {
			e := row[w]
			if e == enc {
				// Already present (e.g., race between prefetch and demand).
				if write {
					metaRow[w] |= metaDirty
				}
				return 0, false, true
			}
			if e == 0 {
				if invalid < 0 {
					invalid = w
				}
				continue
			}
			if invalid >= 0 {
				continue
			}
			if s := lruRow[w]; s < oldest {
				oldest = s
				lruVictim = w
			}
		}
	case c.packed:
		for w := range row {
			e := row[w]
			if e == enc {
				if write {
					metaRow[w] |= metaDirty
				}
				return 0, false, true
			}
			if e == 0 && invalid < 0 {
				invalid = w
			}
		}
	default:
		for w := range row {
			e := row[w]
			if e == enc {
				if write {
					metaRow[w] |= metaDirty
				}
				return 0, false, true
			}
			if e == 0 {
				if invalid < 0 {
					invalid = w
				}
				continue
			}
			if r := metaRow[w] & metaRrpvMask >> metaRrpvShift; r > maxR {
				maxR = r
			}
		}
	}
	if probe {
		c.tick++
	}

	victim := -1
	switch {
	case invalid >= 0:
		victim = base + invalid
	case c.policy == LRU:
		victim = base + lruVictim
	case c.packed:
		// Bit-parallel form of the textbook "age all until some way
		// reaches srripMax" loop over the packed 2-bit fields: classify
		// the maximum RRPV from the field bit planes, take the first way
		// holding it, and age every field by the same deficit (no field
		// can carry: all end at most at srripMax).
		r := c.rrpv[set]
		var age uint64
		if f3 := r >> 1 & r & c.rrpvLo; f3 != 0 {
			victim = base + bits.TrailingZeros64(f3)>>1
		} else if hi := r & c.rrpvHi; hi != 0 {
			victim = base + bits.TrailingZeros64(hi)>>1
			age = 1
		} else if r != 0 {
			victim = base + bits.TrailingZeros64(r)>>1
			age = 2
		} else {
			victim = base
			age = 3
		}
		if age != 0 {
			c.rrpv[set] = r + age*c.rrpvLo
		}
	default:
		// Equivalent to the textbook "age all until some way reaches
		// srripMax" loop: every way ages by the same deficit, and the
		// victim is the first way that started at the maximum RRPV.
		age := uint8(srripMax) - maxR
		for w := range metaRow {
			r := metaRow[w] & metaRrpvMask >> metaRrpvShift
			if victim < 0 && r == maxR {
				victim = base + w
			}
			if age > 0 {
				metaRow[w] += age << metaRrpvShift
			}
		}
	}

	if c.tags[victim] != 0 {
		c.stats.Evictions++
		if c.meta[victim]&metaDirty != 0 {
			c.stats.Writebacks++
			wb = true
			wbAddr = c.reconstruct(c.tags[victim]>>1, set)
		}
	}
	c.tags[victim] = enc
	m := uint8(t) << metaTypeShift
	if !c.packed {
		m |= uint8(srripMax-1) << metaRrpvShift
	}
	if write {
		m |= metaDirty
	}
	c.meta[victim] = m
	if c.packed {
		sh := uint(victim-base) * 2
		c.rrpv[set] = c.rrpv[set]&^(3<<sh) | uint64(srripMax-1)<<sh
	}
	if prefetch {
		c.stats.PrefetchFills++
	}
	// LRU stamps are replacement state only for LRU caches; skipping the
	// write for SRRIP saves a line touch in a never-read array.
	if c.policy == LRU {
		c.lru[victim] = c.tick
		if prefetch && c.tick > uint64(c.ways) {
			c.lru[victim] = c.tick - uint64(c.ways) // colder LRU position
		}
	}
	return wbAddr, wb, false
}

func (c *Cache) reconstruct(tag uint64, set int) mem.PAddr {
	return mem.PAddr((tag<<c.setsShift + uint64(set)) << mem.CacheLineShift)
}

// Invalidate drops the line holding pa if present, returning whether it
// was dirty.
func (c *Cache) Invalidate(pa mem.PAddr) bool {
	set, tag := c.setOf(pa), c.tagOf(pa)
	enc := tag<<1 | 1
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == enc {
			d := c.meta[base+w]&metaDirty != 0
			c.tags[base+w] = 0
			if c.policy == LRU {
				c.lru[base+w] = 0
			}
			c.meta[base+w] = 0
			if c.packed {
				c.rrpv[set] &^= 3 << (uint(w) * 2)
			}
			return d
		}
	}
	return false
}

// OccupancyOf returns the number of valid lines whose last fill was of
// type t — used to report how much page-table state resides in a level.
func (c *Cache) OccupancyOf(t mem.AccessType) int {
	n := 0
	for i := range c.tags {
		if c.tags[i] != 0 && mem.AccessType(c.meta[i]>>metaTypeShift) == t {
			n++
		}
	}
	return n
}

// ResetStats zeroes the cache statistics without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }
