// Package cache implements the on-chip cache hierarchy of the simulated
// system: set-associative caches with LRU and SRRIP replacement, an
// IP-stride prefetcher at L1D and a stream prefetcher at L2 (Table 4), and
// a Hierarchy type that composes the levels on top of a DRAM controller.
//
// Accesses are tagged with a mem.AccessType so the hierarchy can report
// how much page-table state lives in each cache level and how injected
// kernel streams pollute the caches — the interference effects Virtuoso's
// imitation methodology makes visible.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/recycle"
)

// ReplPolicy selects the replacement policy of one cache.
type ReplPolicy uint8

const (
	// LRU evicts the least-recently-used way.
	LRU ReplPolicy = iota
	// SRRIP is static re-reference interval prediction (Jaleel et al.),
	// used by the paper's L2 configuration.
	SRRIP
)

func (p ReplPolicy) String() string {
	if p == SRRIP {
		return "srrip"
	}
	return "lru"
}

const srripMax = 3 // 2-bit RRPV

// Lines are stored structure-of-arrays so the way scans in Access/Fill
// touch one densely packed uint64 per way instead of a 32-byte struct:
//
//	tags[i] = (tag << 1) | 1 for a valid line, 0 for an invalid one
//	lru[i]  = last-use stamp (LRU replacement)
//	meta[i] = dirty (bit 0) | rrpv (bits 1-2) | atype (bits 3-7)
const (
	metaDirty     = 1 << 0
	metaRrpvShift = 1
	metaRrpvMask  = 0b11 << metaRrpvShift
	metaTypeShift = 3
)

// Stats counts per-type cache activity.
type Stats struct {
	Hits          [mem.NumAccessTypes]uint64
	Misses        [mem.NumAccessTypes]uint64
	Evictions     uint64
	Writebacks    uint64
	PrefetchFills uint64
}

// HitRate returns the overall hit fraction.
func (s *Stats) HitRate() float64 {
	var h, m uint64
	for i := 0; i < mem.NumAccessTypes; i++ {
		h += s.Hits[i]
		m += s.Misses[i]
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// MissesOf returns the miss count for one access type.
func (s *Stats) MissesOf(t mem.AccessType) uint64 { return s.Misses[t] }

// Cache is one set-associative cache level.
type Cache struct {
	name      string
	sets      int
	ways      int
	latency   uint64
	policy    ReplPolicy
	tags      []uint64 // sets*ways, row-major; (tag<<1)|valid
	lru       []uint64
	meta      []uint8
	tick      uint64
	stats     Stats
	setShift  uint
	setMask   uint64
	setsShift uint // log2(sets): tag extraction shifts instead of dividing
}

// New builds a cache with the given geometry. sizeBytes/64 must be
// divisible by ways.
func New(name string, sizeBytes uint64, ways int, latency uint64, policy ReplPolicy) *Cache {
	return NewWith(nil, name, sizeBytes, ways, latency, policy)
}

// NewWith is New drawing the SoA line arrays from pool (nil pool =
// plain New).
func NewWith(pool *recycle.Pool, name string, sizeBytes uint64, ways int, latency uint64, policy ReplPolicy) *Cache {
	linesTotal := sizeBytes / mem.CacheLineBytes
	sets := int(linesTotal) / ways
	if sets == 0 || int(linesTotal)%ways != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, sizeBytes, ways))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets %d not a power of two", name, sets))
	}
	if mem.NumAccessTypes > 32 {
		panic("cache: access types no longer fit the packed meta byte")
	}
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		latency:   latency,
		policy:    policy,
		tags:      pool.Uint64s(sets * ways),
		lru:       pool.Uint64s(sets * ways),
		meta:      pool.Uint8s(sets * ways),
		setMask:   uint64(sets - 1),
		setsShift: uint(bits.TrailingZeros(uint(sets))),
	}
}

// Recycle hands the line arrays back to pool; the cache must not be
// used afterwards.
func (c *Cache) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	pool.PutUint64s(c.tags)
	pool.PutUint64s(c.lru)
	pool.PutUint8s(c.meta)
	c.tags, c.lru, c.meta = nil, nil, nil
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Latency returns the access latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// Stats returns the cache statistics.
func (c *Cache) Stats() *Stats { return &c.stats }

// SizeBytes returns the capacity.
func (c *Cache) SizeBytes() uint64 {
	return uint64(c.sets*c.ways) * mem.CacheLineBytes
}

func (c *Cache) setOf(pa mem.PAddr) int {
	return int((uint64(pa) >> mem.CacheLineShift) & c.setMask)
}

func (c *Cache) tagOf(pa mem.PAddr) uint64 {
	return uint64(pa) >> mem.CacheLineShift >> c.setsShift
}

// Lookup probes the cache without recording a hit/miss stat; it returns
// whether the line is present. Used by the hierarchy for inclusive checks.
func (c *Cache) Lookup(pa mem.PAddr) bool {
	set, tag := c.setOf(pa), c.tagOf(pa)
	enc := tag<<1 | 1
	base := set * c.ways
	row := c.tags[base : base+c.ways]
	for w := range row {
		if row[w] == enc {
			return true
		}
	}
	return false
}

// Access performs a demand access, updating replacement state and stats.
// It reports whether the access hit.
func (c *Cache) Access(pa mem.PAddr, write bool, t mem.AccessType) bool {
	c.tick++
	set, tag := c.setOf(pa), c.tagOf(pa)
	enc := tag<<1 | 1
	base := set * c.ways
	row := c.tags[base : base+c.ways : base+c.ways]
	for w := range row {
		if row[w] == enc {
			c.stats.Hits[t]++
			i := base + w
			if c.policy == LRU {
				c.lru[i] = c.tick
			}
			c.meta[i] &^= metaRrpvMask
			if write {
				c.meta[i] |= metaDirty
			}
			return true
		}
	}
	c.stats.Misses[t]++
	return false
}

// Fill inserts the line for pa after a miss and returns the physical
// address of an evicted dirty line (writeback needed) and whether a dirty
// eviction occurred. prefetch marks fills triggered by a prefetcher, which
// insert at distant re-reference (SRRIP) / colder LRU position.
func (c *Cache) Fill(pa mem.PAddr, write bool, t mem.AccessType, prefetch bool) (mem.PAddr, bool) {
	c.tick++
	set, tag := c.setOf(pa), c.tagOf(pa)
	enc := tag<<1 | 1
	base := set * c.ways
	row := c.tags[base : base+c.ways : base+c.ways]
	metaRow := c.meta[base : base+c.ways : base+c.ways]

	// One pass over the set resolves presence, the first invalid way, and
	// the policy's victim-selection input together: the LRU stamp of the
	// oldest way, or the maximum RRPV of the set (SRRIP caches never read
	// the stamps — see the policy guards below). Once an invalid way is
	// known the victim is decided, so only presence still needs scanning.
	invalid := -1
	lruVictim := 0
	oldest := ^uint64(0)
	maxR := uint8(0)
	if c.policy == LRU {
		lruRow := c.lru[base : base+c.ways : base+c.ways]
		for w := range row {
			e := row[w]
			if e == enc {
				// Already present (e.g., race between prefetch and demand).
				if write {
					metaRow[w] |= metaDirty
				}
				return 0, false
			}
			if e == 0 {
				if invalid < 0 {
					invalid = w
				}
				continue
			}
			if invalid >= 0 {
				continue
			}
			if s := lruRow[w]; s < oldest {
				oldest = s
				lruVictim = w
			}
		}
	} else {
		for w := range row {
			e := row[w]
			if e == enc {
				if write {
					metaRow[w] |= metaDirty
				}
				return 0, false
			}
			if e == 0 {
				if invalid < 0 {
					invalid = w
				}
				continue
			}
			if r := metaRow[w] & metaRrpvMask >> metaRrpvShift; r > maxR {
				maxR = r
			}
		}
	}

	victim := -1
	if invalid >= 0 {
		victim = base + invalid
	} else {
		switch c.policy {
		case LRU:
			victim = base + lruVictim
		case SRRIP:
			// Equivalent to the textbook "age all until some way reaches
			// srripMax" loop: every way ages by the same deficit, and the
			// victim is the first way that started at the maximum RRPV.
			age := uint8(srripMax) - maxR
			for w := range metaRow {
				r := metaRow[w] & metaRrpvMask >> metaRrpvShift
				if victim < 0 && r == maxR {
					victim = base + w
				}
				if age > 0 {
					metaRow[w] += age << metaRrpvShift
				}
			}
		}
	}

	var wbAddr mem.PAddr
	var wb bool
	if c.tags[victim] != 0 {
		c.stats.Evictions++
		if c.meta[victim]&metaDirty != 0 {
			c.stats.Writebacks++
			wb = true
			wbAddr = c.reconstruct(c.tags[victim]>>1, set)
		}
	}
	c.tags[victim] = enc
	m := uint8(srripMax-1)<<metaRrpvShift | uint8(t)<<metaTypeShift
	if write {
		m |= metaDirty
	}
	c.meta[victim] = m
	if prefetch {
		c.stats.PrefetchFills++
	}
	// LRU stamps are replacement state only for LRU caches; skipping the
	// write for SRRIP saves a line touch in a never-read array.
	if c.policy == LRU {
		c.lru[victim] = c.tick
		if prefetch && c.tick > uint64(c.ways) {
			c.lru[victim] = c.tick - uint64(c.ways) // colder LRU position
		}
	}
	return wbAddr, wb
}

func (c *Cache) reconstruct(tag uint64, set int) mem.PAddr {
	return mem.PAddr((tag<<c.setsShift + uint64(set)) << mem.CacheLineShift)
}

// Invalidate drops the line holding pa if present, returning whether it
// was dirty.
func (c *Cache) Invalidate(pa mem.PAddr) bool {
	set, tag := c.setOf(pa), c.tagOf(pa)
	enc := tag<<1 | 1
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == enc {
			d := c.meta[base+w]&metaDirty != 0
			c.tags[base+w] = 0
			c.lru[base+w] = 0
			c.meta[base+w] = 0
			return d
		}
	}
	return false
}

// OccupancyOf returns the number of valid lines whose last fill was of
// type t — used to report how much page-table state resides in a level.
func (c *Cache) OccupancyOf(t mem.AccessType) int {
	n := 0
	for i := range c.tags {
		if c.tags[i] != 0 && mem.AccessType(c.meta[i]>>metaTypeShift) == t {
			n++
		}
	}
	return n
}

// ResetStats zeroes the cache statistics without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }
