// Package cache implements the on-chip cache hierarchy of the simulated
// system: set-associative caches with LRU and SRRIP replacement, an
// IP-stride prefetcher at L1D and a stream prefetcher at L2 (Table 4), and
// a Hierarchy type that composes the levels on top of a DRAM controller.
//
// Accesses are tagged with a mem.AccessType so the hierarchy can report
// how much page-table state lives in each cache level and how injected
// kernel streams pollute the caches — the interference effects Virtuoso's
// imitation methodology makes visible.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// ReplPolicy selects the replacement policy of one cache.
type ReplPolicy uint8

const (
	// LRU evicts the least-recently-used way.
	LRU ReplPolicy = iota
	// SRRIP is static re-reference interval prediction (Jaleel et al.),
	// used by the paper's L2 configuration.
	SRRIP
)

func (p ReplPolicy) String() string {
	if p == SRRIP {
		return "srrip"
	}
	return "lru"
}

const srripMax = 3 // 2-bit RRPV

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-use stamp (LRU)
	rrpv  uint8  // re-reference prediction value (SRRIP)
	atype mem.AccessType
}

// Stats counts per-type cache activity.
type Stats struct {
	Hits          [mem.NumAccessTypes]uint64
	Misses        [mem.NumAccessTypes]uint64
	Evictions     uint64
	Writebacks    uint64
	PrefetchFills uint64
}

// HitRate returns the overall hit fraction.
func (s *Stats) HitRate() float64 {
	var h, m uint64
	for i := 0; i < mem.NumAccessTypes; i++ {
		h += s.Hits[i]
		m += s.Misses[i]
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// MissesOf returns the miss count for one access type.
func (s *Stats) MissesOf(t mem.AccessType) uint64 { return s.Misses[t] }

// Cache is one set-associative cache level.
type Cache struct {
	name     string
	sets     int
	ways     int
	latency  uint64
	policy   ReplPolicy
	lines    []line // sets*ways, row-major
	tick     uint64
	stats    Stats
	setShift uint
	setMask  uint64
}

// New builds a cache with the given geometry. sizeBytes/64 must be
// divisible by ways.
func New(name string, sizeBytes uint64, ways int, latency uint64, policy ReplPolicy) *Cache {
	linesTotal := sizeBytes / mem.CacheLineBytes
	sets := int(linesTotal) / ways
	if sets == 0 || int(linesTotal)%ways != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, sizeBytes, ways))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets %d not a power of two", name, sets))
	}
	return &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		latency: latency,
		policy:  policy,
		lines:   make([]line, sets*ways),
		setMask: uint64(sets - 1),
	}
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Latency returns the access latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// Stats returns the cache statistics.
func (c *Cache) Stats() *Stats { return &c.stats }

// SizeBytes returns the capacity.
func (c *Cache) SizeBytes() uint64 {
	return uint64(c.sets*c.ways) * mem.CacheLineBytes
}

func (c *Cache) setOf(pa mem.PAddr) int {
	return int((uint64(pa) >> mem.CacheLineShift) & c.setMask)
}

func (c *Cache) tagOf(pa mem.PAddr) uint64 {
	return uint64(pa) >> mem.CacheLineShift / uint64(c.sets)
}

// Lookup probes the cache without recording a hit/miss stat; it returns
// whether the line is present. Used by the hierarchy for inclusive checks.
func (c *Cache) Lookup(pa mem.PAddr) bool {
	set, tag := c.setOf(pa), c.tagOf(pa)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access, updating replacement state and stats.
// It reports whether the access hit.
func (c *Cache) Access(pa mem.PAddr, write bool, t mem.AccessType) bool {
	c.tick++
	set, tag := c.setOf(pa), c.tagOf(pa)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			c.stats.Hits[t]++
			ln.lru = c.tick
			ln.rrpv = 0
			if write {
				ln.dirty = true
			}
			return true
		}
	}
	c.stats.Misses[t]++
	return false
}

// Fill inserts the line for pa after a miss and returns the physical
// address of an evicted dirty line (writeback needed) and whether a dirty
// eviction occurred. prefetch marks fills triggered by a prefetcher, which
// insert at distant re-reference (SRRIP) / colder LRU position.
func (c *Cache) Fill(pa mem.PAddr, write bool, t mem.AccessType, prefetch bool) (mem.PAddr, bool) {
	c.tick++
	set, tag := c.setOf(pa), c.tagOf(pa)
	base := set * c.ways

	// Already present (e.g., race between prefetch and demand): refresh.
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			if write {
				ln.dirty = true
			}
			return 0, false
		}
	}

	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.lines[base+w].valid {
			victim = base + w
			break
		}
	}
	if victim < 0 {
		switch c.policy {
		case LRU:
			oldest := c.lines[base].lru
			victim = base
			for w := 1; w < c.ways; w++ {
				if c.lines[base+w].lru < oldest {
					oldest = c.lines[base+w].lru
					victim = base + w
				}
			}
		case SRRIP:
			for {
				for w := 0; w < c.ways; w++ {
					if c.lines[base+w].rrpv >= srripMax {
						victim = base + w
						break
					}
				}
				if victim >= 0 {
					break
				}
				for w := 0; w < c.ways; w++ {
					c.lines[base+w].rrpv++
				}
			}
		}
	}

	ln := &c.lines[victim]
	var wbAddr mem.PAddr
	var wb bool
	if ln.valid {
		c.stats.Evictions++
		if ln.dirty {
			c.stats.Writebacks++
			wb = true
			wbAddr = c.reconstruct(ln.tag, set)
		}
	}
	*ln = line{tag: tag, valid: true, dirty: write, lru: c.tick, atype: t}
	if prefetch {
		c.stats.PrefetchFills++
		ln.rrpv = srripMax - 1
		if c.tick > uint64(c.ways) {
			ln.lru = c.tick - uint64(c.ways) // colder LRU position
		}
	} else {
		ln.rrpv = srripMax - 1
		if c.policy == SRRIP {
			ln.rrpv = srripMax - 1
		}
	}
	return wbAddr, wb
}

func (c *Cache) reconstruct(tag uint64, set int) mem.PAddr {
	return mem.PAddr((tag*uint64(c.sets) + uint64(set)) << mem.CacheLineShift)
}

// Invalidate drops the line holding pa if present, returning whether it
// was dirty.
func (c *Cache) Invalidate(pa mem.PAddr) bool {
	set, tag := c.setOf(pa), c.tagOf(pa)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			d := ln.dirty
			*ln = line{}
			return d
		}
	}
	return false
}

// OccupancyOf returns the number of valid lines whose last fill was of
// type t — used to report how much page-table state resides in a level.
func (c *Cache) OccupancyOf(t mem.AccessType) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].atype == t {
			n++
		}
	}
	return n
}

// ResetStats zeroes the cache statistics without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }
