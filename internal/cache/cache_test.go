package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/mem"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := New("t", 4*mem.KB, 4, 4, LRU)
	pa := mem.PAddr(0x1000)
	if c.Access(pa, false, mem.ATData) {
		t.Fatal("hit on empty cache")
	}
	c.Fill(pa, false, mem.ATData, false)
	if !c.Access(pa, false, mem.ATData) {
		t.Fatal("miss after fill")
	}
	// Same line, different word.
	if !c.Access(pa+32, false, mem.ATData) {
		t.Fatal("miss within line")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := New("t", 256, 1, 1, LRU) // 4 sets, direct-mapped
	a := mem.PAddr(0x0)
	b := a + 256 // same set (4 sets * 64B stride)
	c.Fill(a, true, mem.ATData, false)
	wb, dirty := c.Fill(b, false, mem.ATData, false)
	if !dirty {
		t.Fatal("dirty eviction not reported")
	}
	if wb != a {
		t.Fatalf("writeback address = %x, want %x", wb, a)
	}
}

func TestSRRIPVictimSelection(t *testing.T) {
	c := New("t", 512, 2, 1, SRRIP) // 4 sets, 2 ways
	a, b := mem.PAddr(0), mem.PAddr(512)
	c.Fill(a, false, mem.ATData, false)
	c.Fill(b, false, mem.ATData, false)
	c.Access(a, false, mem.ATData) // promote a (rrpv=0)
	cA := mem.PAddr(1024)
	c.Fill(cA, false, mem.ATData, false) // must evict b, not a
	if !c.Lookup(a) {
		t.Fatal("recently re-referenced line evicted under SRRIP")
	}
	if c.Lookup(b) {
		t.Fatal("distant line not evicted")
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(), dram.NewController(dram.Config{}))
	pa := mem.PAddr(0x123400)
	l1 := h.L1D.Latency()
	cold := h.Access(pa, false, mem.ATData, 0, 0)
	warm := h.Access(pa, false, mem.ATData, 0, cold)
	if warm != l1 {
		t.Fatalf("warm access latency = %d, want L1 %d", warm, l1)
	}
	if cold <= h.L3.Latency() {
		t.Fatalf("cold access latency %d should include DRAM", cold)
	}
}

func TestHierarchyPTEAttribution(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(), dram.NewController(dram.Config{}))
	h.AccessPTE(0x5000, false, 0)
	if h.L1D.Stats().Misses[mem.ATPTE] != 1 {
		t.Fatal("PTE access not attributed")
	}
	if got := h.Dram.Stats().Accesses[mem.ATPTE]; got != 1 {
		t.Fatalf("DRAM PTE accesses = %d", got)
	}
}

func TestIPStridePrefetcher(t *testing.T) {
	p := NewIPStride(64, 2)
	pc := uint64(0x400100)
	var got []mem.PAddr
	for i := 0; i < 6; i++ {
		got = p.Observe(pc, mem.PAddr(0x1000+i*256))
	}
	if len(got) == 0 {
		t.Fatal("confirmed stride issued no prefetches")
	}
	if got[0] != mem.PAddr(0x1000+5*256+256) {
		t.Fatalf("prefetch addr = %x", got[0])
	}
}

func TestStreamPrefetcherStaysInPage(t *testing.T) {
	p := NewStream(4, 8)
	var all []mem.PAddr
	for i := 0; i < 8; i++ {
		all = p.Observe(mem.PAddr(0x2000 + i*64))
	}
	for _, a := range all {
		if uint64(a)>>12 != 0x2 {
			t.Fatalf("prefetch crossed page: %x", a)
		}
	}
}

// TestQuickCacheCoherentWithSet property-tests that a cache never
// reports a hit for a line that was never filled.
func TestQuickCacheCoherentWithSet(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New("q", 4*mem.KB, 4, 1, LRU)
		present := map[mem.PAddr]bool{}
		for _, op := range ops {
			pa := mem.Line(mem.PAddr(op) << 6)
			if op%2 == 0 {
				c.Fill(pa, false, mem.ATData, false)
				present[pa] = true
			} else if c.Access(pa, false, mem.ATData) && !present[pa] {
				return false // phantom hit
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
