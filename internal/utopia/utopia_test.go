package utopia

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/phys"
)

func seg(t *testing.T, size uint64, ways int) *RestSeg {
	t.Helper()
	pm := phys.New(512 * mem.MB)
	s, err := NewRestSeg("t", size, ways, mem.Page4K, pm)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRestSegAllocLookupRelease(t *testing.T) {
	s := seg(t, 4*mem.MB, 8)
	vpn := uint64(0x1234)
	way, ok := s.Alloc(vpn)
	if !ok {
		t.Fatal("alloc failed")
	}
	w2, ok := s.Lookup(vpn)
	if !ok || w2 != way {
		t.Fatalf("lookup = %d %v, want %d", w2, ok, way)
	}
	pa := s.FramePA(s.SetOf(vpn), way)
	if uint64(pa)%4096 != 0 {
		t.Fatalf("frame %x unaligned", pa)
	}
	if !s.Release(vpn) {
		t.Fatal("release failed")
	}
	if _, ok := s.Lookup(vpn); ok {
		t.Fatal("lookup after release")
	}
}

func TestRestSegSetFull(t *testing.T) {
	s := seg(t, 4*mem.MB, 8)
	// Fill one set with 8 colliding VPNs.
	target := s.SetOf(1)
	var placed []uint64
	for vpn := uint64(2); len(placed) < s.Ways; vpn++ {
		if s.SetOf(vpn) == target {
			if _, ok := s.Alloc(vpn); ok {
				placed = append(placed, vpn)
			}
		}
	}
	if _, ok := s.Alloc(1); ok {
		t.Fatal("allocation into a full set succeeded")
	}
	if s.AllocFails != 1 {
		t.Fatalf("alloc fails = %d", s.AllocFails)
	}
	// Evict a victim and retry.
	way, victim := s.VictimOf(1)
	ev, ok := s.Evict(target, way)
	if !ok || ev != victim {
		t.Fatalf("evict = %d %v, want %d", ev, ok, victim)
	}
	if _, ok := s.Alloc(1); !ok {
		t.Fatal("allocation after eviction failed")
	}
}

func TestRestSegDistinctFrames(t *testing.T) {
	s := seg(t, 4*mem.MB, 8)
	seen := map[mem.PAddr]bool{}
	for vpn := uint64(0); vpn < 256; vpn++ {
		if way, ok := s.Alloc(vpn); ok {
			pa := s.FramePA(s.SetOf(vpn), way)
			if seen[pa] {
				t.Fatalf("frame %x double-assigned", pa)
			}
			seen[pa] = true
		}
	}
}

func TestSystemSegFor(t *testing.T) {
	pm := phys.New(512 * mem.MB)
	s4, _ := NewRestSeg("4k", 4*mem.MB, 8, mem.Page4K, pm)
	s2, _ := NewRestSeg("2m", 32*mem.MB, 8, mem.Page2M, pm)
	sys := &System{Segs: []*RestSeg{s2, s4}}
	if sys.SegFor(mem.Page4K) != s4 || sys.SegFor(mem.Page2M) != s2 {
		t.Fatal("SegFor routing broken")
	}
	if sys.SegFor(mem.Page1G) != nil {
		t.Fatal("SegFor invented a segment")
	}
}
