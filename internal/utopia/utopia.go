// Package utopia implements the Utopia hybrid restrictive/flexible
// virtual-to-physical mapping (Kanellopoulos et al., MICRO'23), evaluated
// in Use Cases 2–4 (§7.5, §7.6.1, Figs. 16, 19, 20).
//
// A RestSeg is a set-associative physical memory segment: a virtual page
// hashes to a set and may live in any of its ways. Address translation
// inside a RestSeg needs only the set function plus a tag match (served
// by the TAR/SF caches or one memory access to the virtual tag array),
// and page allocation is a cheap hash placement — but a full set forces
// either a fallback to the flexible segment (radix-mapped) or an
// eviction, which is the swapping pathology of Fig. 20.
package utopia

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/xrand"
)

// RestSeg is one restrictive segment.
type RestSeg struct {
	Name      string
	PageSize  mem.PageSize
	SizeBytes uint64
	Ways      int
	Sets      uint64
	Base      mem.PAddr // data frames
	TagBase   mem.PAddr // virtual tag array (RSW metadata)
	seed      uint64

	owner []uint64 // sets*ways; owner VPN+1, 0 = free
	used  uint64

	// Stats
	Allocs     uint64
	AllocFails uint64 // set full
	Evictions  uint64
}

// ContigAllocator provides physically contiguous carve-outs (implemented
// by phys.Mem).
type ContigAllocator interface {
	AllocContig(pages, alignPages uint64) (mem.PAddr, bool)
}

// NewRestSeg carves a restrictive segment of sizeBytes with the given
// associativity and page size out of physical memory, plus its virtual
// tag array (8 B of metadata per frame).
func NewRestSeg(name string, sizeBytes uint64, ways int, ps mem.PageSize, alloc ContigAllocator) (*RestSeg, error) {
	frames := sizeBytes / ps.Bytes()
	if frames == 0 || frames%uint64(ways) != 0 {
		return nil, fmt.Errorf("utopia: segment %s: %d frames not divisible by %d ways", name, frames, ways)
	}
	pages := sizeBytes / (4 * mem.KB)
	base, ok := alloc.AllocContig(pages, 512)
	if !ok {
		return nil, fmt.Errorf("utopia: cannot carve %d-byte RestSeg", sizeBytes)
	}
	tagBytes := mem.AlignUp(frames*8, 4*mem.KB)
	tagBase, ok := alloc.AllocContig(tagBytes/(4*mem.KB), 1)
	if !ok {
		return nil, fmt.Errorf("utopia: cannot carve tag array")
	}
	return &RestSeg{
		Name:      name,
		PageSize:  ps,
		SizeBytes: sizeBytes,
		Ways:      ways,
		Sets:      frames / uint64(ways),
		Base:      base,
		TagBase:   tagBase,
		seed:      0x07091A ^ uint64(ps),
		owner:     make([]uint64, frames),
	}, nil
}

// SetOf returns the set index of vpn.
func (s *RestSeg) SetOf(vpn uint64) uint64 { return xrand.Hash64(vpn, s.seed) % s.Sets }

// FramePA returns the physical address of (set, way).
func (s *RestSeg) FramePA(set uint64, way int) mem.PAddr {
	return s.Base + mem.PAddr((set*uint64(s.Ways)+uint64(way))*s.PageSize.Bytes())
}

// TagPA returns the address of the virtual tag entry for (set, way);
// tags for one set share cache lines, giving the RSW its locality — and
// losing it when segments grow (the §7.5 observation about very large
// RestSegs).
func (s *RestSeg) TagPA(set uint64, way int) mem.PAddr {
	return s.TagBase + mem.PAddr((set*uint64(s.Ways)+uint64(way))*8)
}

// Lookup returns the way holding vpn.
func (s *RestSeg) Lookup(vpn uint64) (int, bool) {
	set := s.SetOf(vpn)
	base := set * uint64(s.Ways)
	for w := 0; w < s.Ways; w++ {
		if s.owner[base+uint64(w)] == vpn+1 {
			return w, true
		}
	}
	return 0, false
}

// Alloc places vpn into its set, returning the chosen way; fails when
// the set is full.
func (s *RestSeg) Alloc(vpn uint64) (int, bool) {
	set := s.SetOf(vpn)
	base := set * uint64(s.Ways)
	for w := 0; w < s.Ways; w++ {
		if s.owner[base+uint64(w)] == 0 {
			s.owner[base+uint64(w)] = vpn + 1
			s.used++
			s.Allocs++
			return w, true
		}
	}
	s.AllocFails++
	return 0, false
}

// VictimOf returns the (way, owner VPN) to evict from vpn's set — the
// SRRIP-approximating policy degenerates to round-robin here since the
// segment has no reuse counters in this model.
func (s *RestSeg) VictimOf(vpn uint64) (int, uint64) {
	set := s.SetOf(vpn)
	base := set * uint64(s.Ways)
	w := int(xrand.Hash64(vpn, s.Evictions) % uint64(s.Ways))
	return w, s.owner[base+uint64(w)] - 1
}

// Release frees the frame owned by vpn.
func (s *RestSeg) Release(vpn uint64) bool {
	set := s.SetOf(vpn)
	base := set * uint64(s.Ways)
	for w := 0; w < s.Ways; w++ {
		if s.owner[base+uint64(w)] == vpn+1 {
			s.owner[base+uint64(w)] = 0
			s.used--
			return true
		}
	}
	return false
}

// Evict force-frees (set, way) and returns the displaced VPN.
func (s *RestSeg) Evict(set uint64, way int) (uint64, bool) {
	idx := set*uint64(s.Ways) + uint64(way)
	if s.owner[idx] == 0 {
		return 0, false
	}
	vpn := s.owner[idx] - 1
	s.owner[idx] = 0
	s.used--
	s.Evictions++
	return vpn, true
}

// Utilization returns the fraction of frames in use.
func (s *RestSeg) Utilization() float64 {
	return float64(s.used) / float64(uint64(len(s.owner)))
}

// Frames returns the total frame count.
func (s *RestSeg) Frames() uint64 { return uint64(len(s.owner)) }

// System is the full Utopia configuration: one or more RestSegs (probed
// in order) backed by a flexible segment managed by the conventional
// allocator and radix page table.
type System struct {
	Segs []*RestSeg
	// SwapOnFull forces eviction+swap instead of FlexSeg fallback when a
	// set is full (the Fig. 20 configuration).
	SwapOnFull bool
}

// SegFor returns the first segment matching the page size.
func (u *System) SegFor(ps mem.PageSize) *RestSeg {
	for _, s := range u.Segs {
		if s.PageSize == ps {
			return s
		}
	}
	return nil
}
