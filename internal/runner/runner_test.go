package runner

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func tinyJob(seed uint64) Job {
	cfg := core.DefaultConfig()
	cfg.MaxAppInsts = 50_000
	cfg.Seed = seed
	return Job{
		Cfg: cfg,
		Workload: func() (*workloads.Workload, error) {
			w, _ := workloads.ByNameWith("2D-Sum", workloads.Params{Scale: 0.05})
			return w, nil
		},
	}
}

func TestRunEmpty(t *testing.T) {
	outs, err := Run(context.Background(), nil, 4, nil)
	if err != nil || len(outs) != 0 {
		t.Fatalf("Run(empty) = %v, %v", outs, err)
	}
}

func TestRunOrderAndProgress(t *testing.T) {
	jobs := []Job{tinyJob(1), tinyJob(2), tinyJob(3)}
	var events int
	outs, err := Run(context.Background(), jobs, 3, func(done, total int, out Outcome) {
		events++
		if total != 3 || done < 1 || done > 3 {
			t.Errorf("progress done=%d total=%d", done, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if events != 3 {
		t.Errorf("got %d progress events, want 3", events)
	}
	for i, out := range outs {
		if out.Index != i {
			t.Errorf("outcome %d has index %d", i, out.Index)
		}
		if out.Err != nil || out.Metrics.AppInsts == 0 {
			t.Errorf("outcome %d: err=%v insts=%d", i, out.Err, out.Metrics.AppInsts)
		}
	}
}

func TestRunBadConfigStopsBatch(t *testing.T) {
	bad := tinyJob(1)
	bad.Cfg.Policy = "no-such-policy"
	jobs := []Job{bad, tinyJob(2)}
	outs, err := Run(context.Background(), jobs, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Fatalf("Run = %v, want unknown-policy error", err)
	}
	if outs[0].Err == nil {
		t.Error("bad job should carry its error")
	}
}
