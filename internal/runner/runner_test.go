package runner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func tinyJob(seed uint64) Job {
	cfg := core.DefaultConfig()
	cfg.MaxAppInsts = 50_000
	cfg.Seed = seed
	return Job{
		Cfg: cfg,
		Workload: func() (*workloads.Workload, error) {
			w, _ := workloads.ByNameWith("2D-Sum", workloads.Params{Scale: 0.05})
			return w, nil
		},
	}
}

func tinyMixJob(seed uint64) Job {
	j := tinyJob(seed)
	j.Workload = nil
	j.Mix = func() ([]*workloads.Workload, error) {
		a, _ := workloads.ByNameWith("2D-Sum", workloads.Params{Scale: 0.05})
		b, _ := workloads.ByNameWith("RND", workloads.Params{Scale: 0.05})
		return []*workloads.Workload{a, b}, nil
	}
	return j
}

func TestRunEmpty(t *testing.T) {
	outs, err := Run(context.Background(), nil, 4, nil)
	if err != nil || len(outs) != 0 {
		t.Fatalf("Run(empty) = %v, %v", outs, err)
	}
}

func TestRunOrderAndProgress(t *testing.T) {
	jobs := []Job{tinyJob(1), tinyJob(2), tinyJob(3)}
	var events int
	outs, err := Run(context.Background(), jobs, 3, func(done, total int, out Outcome) {
		events++
		if total != 3 || done < 1 || done > 3 {
			t.Errorf("progress done=%d total=%d", done, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if events != 3 {
		t.Errorf("got %d progress events, want 3", events)
	}
	for i, out := range outs {
		if out.Index != i {
			t.Errorf("outcome %d has index %d", i, out.Index)
		}
		if out.Err != nil || out.Metrics.AppInsts == 0 {
			t.Errorf("outcome %d: err=%v insts=%d", i, out.Err, out.Metrics.AppInsts)
		}
	}
}

// TestRunCancelMidMulti interrupts a multiprogrammed point from inside
// its own run: the job's Observer cancels the batch context at the
// first interval snapshot, and the in-flight RunMulti must stop at the
// next cancellation poll rather than complete the truncated point.
func TestRunCancelMidMulti(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	j := tinyMixJob(1)
	j.Cfg.MaxAppInsts = 2_000_000
	j.ObserveEvery = 5_000
	j.Observer = func(core.Snapshot) { cancel() }

	outs, err := RunOpts(ctx, []Job{j, tinyMixJob(2)}, Options{Parallel: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunOpts = %v, want context.Canceled", err)
	}
	if !errors.Is(outs[0].Err, context.Canceled) {
		t.Errorf("interrupted mix job err = %v, want context.Canceled", outs[0].Err)
	}
	if outs[0].Multi != nil {
		t.Error("interrupted mix job must not report a per-process breakdown")
	}
	if outs[1].Err == nil {
		t.Error("job behind the cancellation should carry the cancel error")
	}
}

// TestRunObserverThroughPooledWorkers pins that the streaming Observer
// and the per-worker System pooling compose: every job run on a pooled
// worker still streams its own snapshots, and the metrics match a
// NoReuse batch of the same jobs exactly.
func TestRunObserverThroughPooledWorkers(t *testing.T) {
	const n = 4
	makeJobs := func(counts []int) []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			i := i
			jobs[i] = tinyJob(uint64(i + 1))
			jobs[i].ObserveEvery = 10_000
			jobs[i].Observer = func(core.Snapshot) { counts[i]++ }
		}
		return jobs
	}

	// Parallel 1 forces all four jobs through one worker's pool, the
	// shape where stale recycled state would leak between points.
	pooledCounts := make([]int, n)
	pooled, err := RunOpts(context.Background(), makeJobs(pooledCounts), Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	freshCounts := make([]int, n)
	fresh, err := RunOpts(context.Background(), makeJobs(freshCounts), Options{Parallel: 1, NoReuse: true})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if pooledCounts[i] == 0 {
			t.Errorf("job %d on a pooled worker streamed no snapshots", i)
		}
		if pooledCounts[i] != freshCounts[i] {
			t.Errorf("job %d: %d snapshots pooled vs %d fresh", i, pooledCounts[i], freshCounts[i])
		}
		// WallTime and SimHeapBytes measure the host, not the simulated
		// machine (Report.CanonicalJSON zeroes them for the same reason).
		p, f := pooled[i].Metrics, fresh[i].Metrics
		p.WallTime, f.WallTime = 0, 0
		p.SimHeapBytes, f.SimHeapBytes = 0, 0
		if !reflect.DeepEqual(p, f) {
			t.Errorf("job %d: pooled metrics differ from fresh", i)
		}
	}
}

// TestRunMixFactoryError pins the Mix-factory failure path: the error is
// attributed to the job, wrapped with its index, and stops the batch.
func TestRunMixFactoryError(t *testing.T) {
	boom := errors.New("boom")
	bad := tinyMixJob(1)
	bad.Mix = func() ([]*workloads.Workload, error) { return nil, boom }

	outs, err := RunOpts(context.Background(), []Job{bad, tinyJob(2)}, Options{Parallel: 1})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "job 0 mix") {
		t.Fatalf("RunOpts = %v, want wrapped mix factory error", err)
	}
	if !errors.Is(outs[0].Err, boom) {
		t.Errorf("bad job err = %v, want boom", outs[0].Err)
	}
	if outs[1].Err == nil {
		t.Error("job behind the mix failure should carry the stop error")
	}
}

func TestRunBadConfigStopsBatch(t *testing.T) {
	bad := tinyJob(1)
	bad.Cfg.Policy = "no-such-policy"
	jobs := []Job{bad, tinyJob(2)}
	outs, err := Run(context.Background(), jobs, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Fatalf("Run = %v, want unknown-policy error", err)
	}
	if outs[0].Err == nil {
		t.Error("bad job should carry its error")
	}
}
