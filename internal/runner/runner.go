// Package runner executes batches of independent simulation points on a
// bounded worker pool. It is the shared engine beneath the public Sweep
// API and the experiment harnesses: callers describe each point as a
// (core.Config, workload factory) pair and get metrics back in job
// order, regardless of the order in which workers finish.
//
// Every job builds its own core.System and workload instance, so jobs
// share no mutable state and a parallel run produces bit-identical
// metrics to a sequential run of the same jobs. Cancellation is
// cooperative and two-level: a cancelled context stops unstarted jobs
// before they build a system, and an in-flight simulation polls the
// context every few thousand instructions via core.SetCancelCheck.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/recycle"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Job is one simulation point: a full system configuration plus a
// factory producing a fresh workload instance — or, for multiprogrammed
// points, a Mix factory producing the whole process list. The factory
// is invoked inside the worker, once, so a single *Workload is never
// shared between concurrently running systems (Workload.Setup mutates
// it). Exactly one of Workload and Mix must be set.
type Job struct {
	Cfg      core.Config
	Workload func() (*workloads.Workload, error)
	// Mix, when set, runs the point through core.System.RunMulti: each
	// returned workload becomes one scheduled process. Outcome.Metrics
	// then carries the aggregate and Outcome.Multi the full breakdown.
	Mix func() ([]*workloads.Workload, error)
	// Observer, when set, receives streaming interval snapshots from
	// this job's run (core.System.SetObserver). It is invoked from the
	// worker goroutine running the job — jobs run concurrently, so an
	// observer shared between jobs must synchronise itself.
	Observer func(core.Snapshot)
	// ObserveEvery is the snapshot interval in application instructions
	// (0 = the core default). Only meaningful with Observer set.
	ObserveEvery uint64
}

// Outcome is the result of one job.
type Outcome struct {
	// Index is the job's position in the input slice.
	Index   int
	Metrics core.Metrics
	// Multi holds the per-process breakdown of a Mix job (nil for
	// single-workload jobs); Metrics is then Multi.Aggregate.
	Multi *core.MultiMetrics
	// Err is non-nil if the job's system could not be built, its
	// workload factory failed, or the run was cancelled.
	Err error
}

// Options tunes a batch run beyond the job list itself.
type Options struct {
	// Parallel bounds concurrent workers (<= 0 means GOMAXPROCS).
	Parallel int
	// NoReuse disables per-worker System pooling: every job then
	// constructs a fully fresh system, as Run always did before pooling
	// existed. Pooling is deterministic by construction (pooled systems
	// produce byte-identical results — see core.NewSystemPooled and
	// TestSweepReuseEquivalence), so this knob exists for the
	// equivalence harness itself and for memory-profiling runs, not for
	// correctness.
	NoReuse bool
	// Progress, if non-nil, is invoked once per finished job from
	// worker goroutines; calls are serialised, so the callback needs no
	// locking of its own.
	Progress func(done, total int, out Outcome)
	// Traces, when non-nil, serves trace-replay jobs (Cfg.TracePath
	// set) from a shared decoded-trace store: each distinct trace
	// content is decoded once per batch instead of once per job. A job
	// whose Cfg already carries its own store keeps it. Results are
	// byte-identical with or without the store.
	Traces *trace.Shared
}

// Run executes jobs on at most parallel concurrent workers (<= 0 means
// runtime.GOMAXPROCS(0)) and returns one Outcome per job, in job order.
//
// The first job error — or a context cancellation — stops the batch:
// running simulations are interrupted at the next cancellation poll and
// pending jobs are marked with the error context. The returned error is
// that first failure; it is nil iff every job completed.
//
// Each worker keeps a recycle.Pool and reuses the previous system's
// large allocations for the next point (see Options.NoReuse to opt
// out); results are byte-identical either way.
func Run(ctx context.Context, jobs []Job, parallel int, progress func(done, total int, out Outcome)) ([]Outcome, error) {
	return RunOpts(ctx, jobs, Options{Parallel: parallel, Progress: progress})
}

// RunOpts is Run with the full option set.
func RunOpts(ctx context.Context, jobs []Job, opts Options) ([]Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	progress := opts.Progress
	outs := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return outs, ctx.Err()
	}
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := ctx.Done()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	var (
		mu       sync.Mutex // guards firstErr and nDone, serialises progress
		firstErr error
		nDone    int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	finish := func(out Outcome) {
		mu.Lock()
		nDone++
		d := nDone
		if progress != nil {
			progress(d, len(jobs), out)
		}
		mu.Unlock()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pool per worker goroutine: recycled allocations never
			// cross workers, so pooling adds no synchronisation and no
			// cross-job ordering sensitivity.
			var pool *recycle.Pool
			if !opts.NoReuse {
				pool = recycle.New()
			}
			for i := range idx {
				job := jobs[i]
				if opts.Traces != nil && job.Cfg.TracePath != "" && job.Cfg.TraceShared == nil {
					job.Cfg.TraceShared = opts.Traces
				}
				out := runJob(job, i, cancelled, pool)
				outs[i] = out
				if out.Err != nil {
					fail(out.Err)
				}
				finish(out)
			}
		}()
	}

feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-done:
			// Mark jobs that never reached a worker.
			for j := i; j < len(jobs); j++ {
				select {
				case idx <- j: // a worker was already waiting; let it observe ctx
				default:
					outs[j] = Outcome{Index: j, Err: ctx.Err()}
				}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	return outs, err
}

// runJob builds and runs one point. With a non-nil pool the system is
// built from recycled allocations and harvested back into the pool when
// the point finishes — Outcomes never reference pooled memory (Metrics
// are value copies), so the harvest is safe on every path, including
// interrupted runs.
func runJob(j Job, i int, cancelled func() bool, pool *recycle.Pool) Outcome {
	if cancelled() {
		return Outcome{Index: i, Err: context.Canceled}
	}
	if j.Workload == nil && j.Mix == nil {
		return Outcome{Index: i, Err: fmt.Errorf("runner: job %d has no workload", i)}
	}
	if j.Workload != nil && j.Mix != nil {
		return Outcome{Index: i, Err: fmt.Errorf("runner: job %d sets both Workload and Mix", i)}
	}
	sys, err := core.NewSystemPooled(j.Cfg, pool)
	if err != nil {
		return Outcome{Index: i, Err: fmt.Errorf("runner: job %d config: %w", i, err)}
	}
	defer sys.Recycle(pool)
	sys.SetCancelCheck(cancelled)
	if j.Observer != nil {
		sys.SetObserver(j.Observer, j.ObserveEvery)
	}

	if j.Mix != nil {
		ws, err := j.Mix()
		if err != nil {
			return Outcome{Index: i, Err: fmt.Errorf("runner: job %d mix: %w", i, err)}
		}
		mm, err := sys.RunMulti(ws)
		if err != nil {
			return Outcome{Index: i, Err: fmt.Errorf("runner: job %d: %w", i, err)}
		}
		if sys.Interrupted() {
			return Outcome{Index: i, Err: context.Canceled}
		}
		return Outcome{Index: i, Metrics: mm.Aggregate, Multi: &mm}
	}

	w, err := j.Workload()
	if err != nil {
		return Outcome{Index: i, Err: fmt.Errorf("runner: job %d workload: %w", i, err)}
	}
	m := sys.Run(w)
	if sys.Interrupted() {
		// The run itself was stopped early; its metrics cover a
		// truncated window and must not be mistaken for a completed
		// point. A cancellation that lands only after the simulation
		// finished does NOT discard the point: the metrics are whole.
		return Outcome{Index: i, Err: context.Canceled}
	}
	return Outcome{Index: i, Metrics: m}
}
