// Package registry holds the process-wide component registries behind
// the public extension API (repro/ext): named constructors for custom
// allocation policies, translation designs, and workloads. Registered
// components are addressable by name everywhere a built-in is — Open
// options, sweep grid axes, the CLI flags, and trace recording — because
// the name-resolution points (internal/core for policies and designs,
// the root package for workloads) fall back to these tables after the
// built-in switch misses.
//
// The registries follow the modular interface/implementation style of
// Ramulator 2.0: implementations self-register under a string key and
// the frontends construct them by name. Registration is expected at
// program init time; lookups happen on every system construction, from
// many sweep workers at once, so the tables take a read lock only.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mimicos"
	"repro/internal/mmu"
	"repro/internal/pagetable"
	"repro/internal/tier"
	"repro/internal/workloads"
)

// Built-in component names. These must mirror internal/core's DesignName
// and PolicyName constants — registry cannot import core (core consults
// registry), so the sets are duplicated here and pinned to core's by
// TestBuiltinNamesMatchCore in the root package.
var (
	builtinDesigns = map[string]bool{
		"radix": true, "ech": true, "hdc": true, "ht": true,
		"utopia": true, "rmm": true, "midgard": true, "directseg": true,
	}
	builtinPolicies = map[string]bool{
		"bd": true, "thp": true, "cr-thp": true, "ar-thp": true,
		"utopia": true, "eager": true,
	}
	builtinTierPolicies = map[string]bool{
		"hotcold": true, "clock": true,
	}
)

// BuiltinDesign reports whether name is a built-in translation design.
func BuiltinDesign(name string) bool { return builtinDesigns[name] }

// BuiltinPolicy reports whether name is a built-in allocation policy.
func BuiltinPolicy(name string) bool { return builtinPolicies[name] }

// BuiltinTierPolicy reports whether name is a built-in tier migration
// policy.
func BuiltinTierPolicy(name string) bool { return builtinTierPolicies[name] }

// DesignEnv is what a registered translation-design constructor gets to
// work with: one process's page table (custom designs usually resolve
// translations functionally through it), the cache hierarchy walks
// charge their memory accesses to, and a pre-built baseline radix walker
// over the same page table for designs that delegate or fall back.
// Designs are per-process — the constructor runs once per process, and
// multiprogrammed runs switch between the instances on dispatch.
type DesignEnv struct {
	PT    pagetable.PageTable
	Mem   mmu.Memory
	Radix *mmu.RadixWalker
	ASID  uint16
}

var (
	mu           sync.RWMutex
	policies     = map[string]func() mimicos.AllocPolicy{}
	tierPolicies = map[string]func() tier.Policy{}
	designs      = map[string]func(DesignEnv) mmu.Design{}
	loads        = map[string]func(workloads.Params) (*workloads.Workload, error){}
)

// validate applies the shared hygiene rules: a non-empty name, a
// non-nil constructor, no collision with a built-in, no duplicate.
func validate[T any](kind, name string, ctor T, isNil bool, builtin func(string) bool, table map[string]T) error {
	if name == "" {
		return fmt.Errorf("registry: empty %s name", kind)
	}
	if isNil {
		return fmt.Errorf("registry: %s %q: nil constructor", kind, name)
	}
	if builtin != nil && builtin(name) {
		return fmt.Errorf("registry: %s %q collides with a built-in (pick a new name)", kind, name)
	}
	if _, dup := table[name]; dup {
		return fmt.Errorf("registry: %s %q already registered", kind, name)
	}
	return nil
}

// RegisterPolicy registers an allocation-policy constructor under name.
// The constructor runs once per simulated system, so stateful policies
// never share state between concurrent sweep points. It rejects empty
// or duplicate names and names colliding with a built-in policy.
func RegisterPolicy(name string, ctor func() mimicos.AllocPolicy) error {
	mu.Lock()
	defer mu.Unlock()
	if err := validate("policy", name, ctor, ctor == nil, BuiltinPolicy, policies); err != nil {
		return err
	}
	policies[name] = ctor
	return nil
}

// NewPolicy constructs a fresh instance of the registered policy, or
// reports false for an unknown name.
func NewPolicy(name string) (mimicos.AllocPolicy, bool) {
	mu.RLock()
	ctor, ok := policies[name]
	mu.RUnlock()
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// PolicyNames returns the registered (non-built-in) policy names, sorted.
func PolicyNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(policies)
}

// RegisterTierPolicy registers a tier-migration-policy constructor
// under name. The constructor runs once per simulated system (tier
// policies can be stateful); the usual hygiene rules apply.
func RegisterTierPolicy(name string, ctor func() tier.Policy) error {
	mu.Lock()
	defer mu.Unlock()
	if err := validate("tier policy", name, ctor, ctor == nil, BuiltinTierPolicy, tierPolicies); err != nil {
		return err
	}
	tierPolicies[name] = ctor
	return nil
}

// NewTierPolicy constructs a fresh instance of the registered tier
// policy, or reports false for an unknown name.
func NewTierPolicy(name string) (tier.Policy, bool) {
	mu.RLock()
	ctor, ok := tierPolicies[name]
	mu.RUnlock()
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// TierPolicyNames returns the registered (non-built-in) tier policy
// names, sorted.
func TierPolicyNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(tierPolicies)
}

// RegisterDesign registers a translation-design constructor under name.
// The constructor runs once per process (every process owns its design
// instance, the state a CR3 write switches). Same hygiene rules as
// RegisterPolicy.
func RegisterDesign(name string, ctor func(DesignEnv) mmu.Design) error {
	mu.Lock()
	defer mu.Unlock()
	if err := validate("design", name, ctor, ctor == nil, BuiltinDesign, designs); err != nil {
		return err
	}
	designs[name] = ctor
	return nil
}

// NewDesign constructs the registered design over env, or reports false
// for an unknown name.
func NewDesign(name string, env DesignEnv) (mmu.Design, bool) {
	mu.RLock()
	ctor, ok := designs[name]
	mu.RUnlock()
	if !ok {
		return nil, false
	}
	return ctor(env), true
}

// DesignNames returns the registered (non-built-in) design names, sorted.
func DesignNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(designs)
}

// RegisterWorkload registers a workload constructor under name. The
// constructor is invoked with the session's (or sweep point's) explicit
// construction parameters and must return a fresh *Workload each call —
// workload state is mutated during a run and is never shared between
// concurrent points. The name must not shadow a catalog workload (the
// Table 5 suites or the mix extras, under any of their accepted
// spellings).
func RegisterWorkload(name string, ctor func(workloads.Params) (*workloads.Workload, error)) error {
	mu.Lock()
	defer mu.Unlock()
	catalog := func(n string) bool { _, ok := workloads.ByName(n); return ok }
	if err := validate("workload", name, ctor, ctor == nil, catalog, loads); err != nil {
		return err
	}
	loads[name] = ctor
	return nil
}

// NewWorkload builds the registered workload with the given parameters.
// ok reports whether the name is registered at all; err is the
// constructor's failure when it is.
func NewWorkload(name string, p workloads.Params) (w *workloads.Workload, ok bool, err error) {
	mu.RLock()
	ctor, ok := loads[name]
	mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	w, err = ctor(p)
	return w, true, err
}

// WorkloadNames returns the registered workload names, sorted.
func WorkloadNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(loads)
}

func sortedKeys[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// reset clears every table — test hook only (see export_test.go).
func reset() {
	mu.Lock()
	defer mu.Unlock()
	policies = map[string]func() mimicos.AllocPolicy{}
	tierPolicies = map[string]func() tier.Policy{}
	designs = map[string]func(DesignEnv) mmu.Design{}
	loads = map[string]func(workloads.Params) (*workloads.Workload, error){}
}
