package registry

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/mimicos"
	"repro/internal/mmu"
	"repro/internal/workloads"
)

func policyCtor() mimicos.AllocPolicy { return &mimicos.BuddyPolicy{} }

func designCtor(env DesignEnv) mmu.Design { return env.Radix }

func workloadCtor(p workloads.Params) (*workloads.Workload, error) {
	return workloads.Stress(0, 8), nil
}

func TestRegisterRejectsBadNames(t *testing.T) {
	defer Reset()

	if err := RegisterPolicy("", policyCtor); err == nil {
		t.Error("empty policy name accepted")
	}
	if err := RegisterPolicy("x", nil); err == nil {
		t.Error("nil policy constructor accepted")
	}
	if err := RegisterPolicy("thp", policyCtor); err == nil || !strings.Contains(err.Error(), "built-in") {
		t.Errorf("built-in policy collision not rejected: %v", err)
	}
	if err := RegisterDesign("radix", designCtor); err == nil || !strings.Contains(err.Error(), "built-in") {
		t.Errorf("built-in design collision not rejected: %v", err)
	}
	// Catalog collisions under any accepted spelling are rejected too.
	for _, name := range []string{"BFS", "bfs", "graphbig-bfs", "SEQ"} {
		if err := RegisterWorkload(name, workloadCtor); err == nil {
			t.Errorf("catalog workload collision %q not rejected", name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer Reset()

	if err := RegisterPolicy("dup-p", policyCtor); err != nil {
		t.Fatal(err)
	}
	if err := RegisterPolicy("dup-p", policyCtor); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate policy not rejected: %v", err)
	}
	if err := RegisterDesign("dup-d", designCtor); err != nil {
		t.Fatal(err)
	}
	if err := RegisterDesign("dup-d", designCtor); err == nil {
		t.Error("duplicate design not rejected")
	}
	if err := RegisterWorkload("dup-w", workloadCtor); err != nil {
		t.Fatal(err)
	}
	if err := RegisterWorkload("dup-w", workloadCtor); err == nil {
		t.Error("duplicate workload not rejected")
	}
}

func TestNamesSortedAndLookup(t *testing.T) {
	defer Reset()

	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := RegisterPolicy(n, policyCtor); err != nil {
			t.Fatal(err)
		}
	}
	names := PolicyNames()
	want := []string{"alpha", "mid", "zeta"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("PolicyNames() = %v, want %v", names, want)
	}
	if _, ok := NewPolicy("alpha"); !ok {
		t.Error("registered policy not found")
	}
	if _, ok := NewPolicy("nope"); ok {
		t.Error("unknown policy found")
	}
}

// TestConcurrentReadsDuringRegistration is the -race guard for parallel
// sweeps: workers resolve names while another goroutine registers.
func TestConcurrentReadsDuringRegistration(t *testing.T) {
	defer Reset()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				NewPolicy("conc-0")
				NewDesign("conc-0", DesignEnv{})
				NewWorkload("conc-0", workloads.Params{})
				PolicyNames()
				DesignNames()
				WorkloadNames()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("conc-%d", i)
		if err := RegisterPolicy(name, policyCtor); err != nil {
			t.Error(err)
		}
		if err := RegisterDesign(name, designCtor); err != nil {
			t.Error(err)
		}
		if err := RegisterWorkload(name, workloadCtor); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}
