package registry

// Reset clears every registry table between tests. The public API has
// no unregister on purpose — components register at init and live for
// the process — so only tests may wipe the tables.
func Reset() { reset() }
