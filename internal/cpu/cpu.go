// Package cpu implements the processor performance model: a 4-wide
// out-of-order core in the interval-simulation tradition of Sniper
// (Carlson et al., SC'11) — instructions dispatch at pipeline width,
// long-latency events (TLB misses, walks, LLC misses, page faults)
// insert intervals whose penalty depends on exploitable memory-level
// parallelism. The same pipeline executes application instructions and
// injected MimicOS streams, so kernel code is charged real cycles and
// pollutes the same caches.
package cpu

import (
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// FaultHandler is invoked when a translation faults; it must resolve the
// fault (the Virtuoso engine routes it to MimicOS) and return false only
// if the fault is unresolvable (SIGSEGV).
type FaultHandler func(va mem.VAddr, write bool) bool

// Config describes the core (Table 4: 4-way OoO x86 at 2.9 GHz).
type Config struct {
	Width         float64 // dispatch width
	FreqGHz       float64
	LoadMLP       float64 // overlap factor for load misses beyond L2
	StoreBufMLP   float64 // overlap factor for store misses
	FetchBytes    uint64  // bytes fetched per I-cache access
	BranchMiss    float64 // misprediction rate applied to branch ops
	BranchPenalty uint64
}

// DefaultConfig returns the Table 4 core.
func DefaultConfig() Config {
	return Config{
		Width:         4,
		FreqGHz:       2.9,
		LoadMLP:       4,
		StoreBufMLP:   8,
		FetchBytes:    64,
		BranchMiss:    0.03,
		BranchPenalty: 14,
	}
}

// Stats aggregates core activity.
type Stats struct {
	AppInsts    uint64
	KernelInsts uint64
	Cycles      uint64

	TranslationCycles uint64 // stall cycles attributable to translation
	MemoryCycles      uint64 // stall cycles on data accesses
	FaultCycles       uint64 // cycles spent executing injected OS streams
	DelayCycles       uint64 // device delays inside kernel streams
	FetchCycles       uint64
	CtxSwitchCycles   uint64 // scheduler context-switch cost (multi-process)

	Loads, Stores uint64
	SegvFaults    uint64
}

// IPC returns application instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.AppInsts) / float64(s.Cycles)
}

// Core is one simulated core.
type Core struct {
	cfg   Config
	hier  *cache.Hierarchy
	mmu   *mmu.MMU
	fault FaultHandler

	cycles     float64
	fetchAccum uint64 // bytes of instructions since last fetch
	branchSeed uint64
	kernelMode bool
	stats      Stats

	// KernelCodeBase is the physical region kernel code fetches hit.
	KernelCodeBase mem.PAddr
}

// New builds a core over the given cache hierarchy and MMU.
func New(cfg Config, h *cache.Hierarchy, m *mmu.MMU) *Core {
	if cfg.Width == 0 {
		cfg = DefaultConfig()
	}
	return &Core{cfg: cfg, hier: h, mmu: m, KernelCodeBase: 0x1000_0000}
}

// SetFaultHandler installs the engine's page-fault callback.
func (c *Core) SetFaultHandler(f FaultHandler) { c.fault = f }

// Stats returns the core statistics (Cycles synced from the internal
// accumulator).
func (c *Core) Stats() *Stats {
	c.stats.Cycles = uint64(c.cycles)
	return &c.stats
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return uint64(c.cycles) }

// NsPerCycle returns nanoseconds per cycle at the configured frequency.
func (c *Core) NsPerCycle() float64 { return 1.0 / c.cfg.FreqGHz }

// CyclesToNs converts cycles to nanoseconds.
func (c *Core) CyclesToNs(cy uint64) float64 { return float64(cy) / c.cfg.FreqGHz }

// MMU returns the core's MMU.
func (c *Core) MMU() *mmu.MMU { return c.mmu }

// Hierarchy returns the core's cache hierarchy.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// EnterKernel switches the pipeline to kernel-stream execution and
// returns a function restoring the previous mode.
func (c *Core) EnterKernel() func() {
	prev := c.kernelMode
	c.kernelMode = true
	return func() { c.kernelMode = prev }
}

// Run executes one instruction (or batch) through the pipeline.
func (c *Core) Run(in isa.Inst) {
	n := in.N()
	if in.Op == isa.OpDelay {
		c.cycles += float64(n)
		c.stats.DelayCycles += n
		return
	}
	if c.kernelMode {
		c.stats.KernelInsts += n
	} else {
		c.stats.AppInsts += n
	}

	// Frontend: one I-fetch per fetch-group of instructions.
	c.fetchAccum += 4 * n
	if c.fetchAccum >= c.cfg.FetchBytes {
		c.fetchAccum = 0
		c.instrFetch(in)
	}

	// Dispatch occupancy.
	c.cycles += float64(n) / c.cfg.Width

	switch in.Op {
	case isa.OpALU:
		// fully pipelined
	case isa.OpFP:
		c.cycles += float64(n) * 0.25 // longer latency, partially hidden
	case isa.OpBranch:
		// Deterministic misprediction sampling.
		c.branchSeed = c.branchSeed*6364136223846793005 + 1442695040888963407
		miss := float64(c.branchSeed>>11) / (1 << 53)
		if miss < c.cfg.BranchMiss {
			c.cycles += float64(c.cfg.BranchPenalty)
		}
	case isa.OpLoad, isa.OpStore, isa.OpAtomic:
		c.memOp(in)
	case isa.OpMagic:
		c.cycles++
	}
}

// RunStream executes a full instruction stream (injected kernel code),
// returning the cycles it consumed.
func (c *Core) RunStream(s isa.Stream) uint64 {
	start := uint64(c.cycles)
	restore := c.EnterKernel()
	for _, in := range s {
		c.Run(in)
	}
	restore()
	spent := uint64(c.cycles) - start
	c.stats.FaultCycles += spent
	return spent
}

func (c *Core) instrFetch(in isa.Inst) {
	now := uint64(c.cycles)
	var lat uint64
	if in.Phys || c.kernelMode {
		// Kernel code fetch: direct-mapped region, no translation.
		pa := c.KernelCodeBase + mem.PAddr(in.PC&0x3f_ffff)
		lat = c.hier.FetchInstr(pa, now)
	} else {
		res := c.mmu.TranslateInstr(mem.VAddr(in.PC), now)
		if res.Fault {
			if !c.resolveFault(mem.VAddr(in.PC), false) {
				return
			}
			res = c.mmu.TranslateInstr(mem.VAddr(in.PC), uint64(c.cycles))
			if res.Fault {
				c.stats.SegvFaults++
				return
			}
		}
		lat = res.Lat + c.hier.FetchInstr(res.PA, uint64(c.cycles))
	}
	// Frontend latency is mostly hidden by the fetch queue; charge the
	// portion beyond the L1I hit latency at a discount.
	hide := c.hier.L1I.Latency()
	if lat > hide {
		extra := float64(lat-hide) / 2
		c.cycles += extra
		c.stats.FetchCycles += uint64(extra)
	}
}

func (c *Core) memOp(in isa.Inst) {
	write := in.Op.IsWrite()
	if write {
		c.stats.Stores++
	} else {
		c.stats.Loads++
	}
	now := uint64(c.cycles)

	var pa mem.PAddr
	var transLat uint64
	atype := mem.ATData
	if in.Phys {
		// Kernel direct map: no translation.
		pa = mem.PAddr(in.Addr)
		atype = mem.ATKernel
	} else {
		res := c.mmu.Translate(mem.VAddr(in.Addr), write, now)
		if res.Fault {
			if !c.resolveFault(mem.VAddr(in.Addr), write) {
				c.stats.SegvFaults++
				return
			}
			res = c.mmu.Translate(mem.VAddr(in.Addr), write, uint64(c.cycles))
			if res.Fault {
				c.stats.SegvFaults++
				return
			}
		}
		pa = res.PA
		transLat = res.Lat
	}

	memLat := c.hier.Access(pa, write, atype, in.PC, uint64(c.cycles))

	// Interval model: translation beyond the L1 TLB hit serialises with
	// the access; data latency beyond L2 overlaps with the configured MLP.
	l1tlb := uint64(1)
	if transLat > l1tlb {
		stall := float64(transLat - l1tlb)
		c.cycles += stall
		c.stats.TranslationCycles += uint64(stall)
	}
	serial := c.hier.L1D.Latency() + c.hier.L2.Latency()
	var stall float64
	switch {
	case in.Op == isa.OpAtomic:
		stall = float64(memLat) // atomics serialise
	case write:
		stall = float64(memLat) / c.cfg.StoreBufMLP
	case memLat <= serial:
		stall = float64(memLat) / 2 // mostly hidden by OoO window
	default:
		stall = float64(serial)/2 + float64(memLat-serial)/c.cfg.LoadMLP
	}
	c.cycles += stall
	c.stats.MemoryCycles += uint64(stall)
}

// StallFault advances the pipeline by the given cycles, attributing them
// to OS fault handling (fixed-latency emulation mode, reference noise).
func (c *Core) StallFault(cycles uint64) {
	c.cycles += float64(cycles)
	c.stats.FaultCycles += cycles
}

// ContextSwitch advances the pipeline by the scheduler's switch cost
// (state save/restore, run-queue work, pipeline drain), attributed to
// its own counter so multiprogrammed runs can report scheduling
// overhead separately from OS fault work.
func (c *Core) ContextSwitch(cycles uint64) {
	c.cycles += float64(cycles)
	c.stats.CtxSwitchCycles += cycles
}

// resolveFault invokes the engine's fault handler.
func (c *Core) resolveFault(va mem.VAddr, write bool) bool {
	if c.fault == nil {
		return false
	}
	return c.fault(va, write)
}

// ResetStats zeroes the accumulated statistics (cycle accumulator keeps
// advancing) so steady-state windows can be measured after warm-up.
func (c *Core) ResetStats() { c.stats = Stats{} }
