package cpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pagetable"
	"repro/internal/phys"
)

func testCore(t testing.TB) (*Core, pagetable.PageTable) {
	t.Helper()
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig(), dram.NewController(dram.Config{}))
	pt := pagetable.NewRadix(phys.NewSlab(phys.New(256 * mem.MB)))
	m := mmu.New(mmu.DefaultConfig(), mmu.NewRadixWalker(pt, h), 1)
	return New(DefaultConfig(), h, m), pt
}

func mapPage(pt pagetable.PageTable, va mem.VAddr, pa mem.PAddr) {
	pt.Insert(va, pagetable.Entry{Frame: pa, Size: mem.Page4K, Present: true, Writable: true}, instrument.NopMem{})
}

func TestALUThroughput(t *testing.T) {
	c, _ := testCore(t)
	c.Run(isa.ALU(4000))
	st := c.Stats()
	if st.AppInsts != 4000 {
		t.Fatalf("insts = %d", st.AppInsts)
	}
	// 4-wide: ~1000 cycles plus fetch effects.
	if st.Cycles < 1000 || st.Cycles > 2000 {
		t.Fatalf("cycles = %d for 4000 ALU at width 4", st.Cycles)
	}
}

func TestLoadChargesTranslationAndMemory(t *testing.T) {
	c, pt := testCore(t)
	mapPage(pt, 0x10000, 0x20000)
	c.Run(isa.Load(0x400000, 0x10008))
	st := c.Stats()
	if st.Loads != 1 {
		t.Fatalf("loads = %d", st.Loads)
	}
	if st.TranslationCycles == 0 {
		t.Fatal("cold translation charged nothing")
	}
	if st.MemoryCycles == 0 {
		t.Fatal("memory access charged nothing")
	}
}

func TestFaultHandlerInvokedAndRetried(t *testing.T) {
	c, pt := testCore(t)
	called := 0
	c.SetFaultHandler(func(va mem.VAddr, write bool) bool {
		called++
		mapPage(pt, mem.Page4K.PageBase(va), 0x30000)
		return true
	})
	c.Run(isa.Store(0x400000, 0x50000))
	if called != 1 {
		t.Fatalf("fault handler called %d times", called)
	}
	if c.Stats().SegvFaults != 0 {
		t.Fatal("retry after resolution still faulted")
	}
}

func TestUnresolvedFaultCountsSegv(t *testing.T) {
	c, _ := testCore(t)
	c.SetFaultHandler(func(mem.VAddr, bool) bool { return false })
	c.Run(isa.Load(0x400000, 0x60000))
	if c.Stats().SegvFaults == 0 {
		t.Fatal("segv not counted")
	}
}

func TestKernelStreamBypassesTranslation(t *testing.T) {
	c, _ := testCore(t)
	s := isa.Stream{
		{Op: isa.OpLoad, Count: 1, Addr: 0x123400, Phys: true, PC: 0xffff_8000_0000_0100},
		{Op: isa.OpALU, Count: 100, Phys: true},
	}
	spent := c.RunStream(s)
	if spent == 0 {
		t.Fatal("stream cost nothing")
	}
	st := c.Stats()
	if st.KernelInsts != 101 {
		t.Fatalf("kernel insts = %d", st.KernelInsts)
	}
	if st.AppInsts != 0 {
		t.Fatalf("app insts = %d", st.AppInsts)
	}
	if c.MMU().Stats().DataTranslations != 0 {
		t.Fatal("kernel load was translated")
	}
}

func TestDelayChargesExactCycles(t *testing.T) {
	c, _ := testCore(t)
	before := c.Now()
	c.Run(isa.Inst{Op: isa.OpDelay, Count: 12345})
	if got := c.Now() - before; got != 12345 {
		t.Fatalf("delay advanced %d cycles", got)
	}
	if c.Stats().DelayCycles != 12345 {
		t.Fatalf("delay cycles = %d", c.Stats().DelayCycles)
	}
}

func TestAtomicsSerialise(t *testing.T) {
	c, pt := testCore(t)
	mapPage(pt, 0x10000, 0x20000)
	// Warm the line and TLB.
	c.Run(isa.Load(0x400000, 0x10000))
	base := c.Now()
	c.Run(isa.Load(0x400004, 0x10000))
	loadCost := c.Now() - base
	base = c.Now()
	c.Run(isa.Inst{Op: isa.OpAtomic, Count: 1, PC: 0x400008, Addr: 0x10000})
	atomicCost := c.Now() - base
	if atomicCost <= loadCost {
		t.Fatalf("atomic (%d) should cost more than warm load (%d)", atomicCost, loadCost)
	}
}
