package rmm

import (
	"testing"

	"repro/internal/mem"
)

type nop struct{}

func (nop) Load(mem.PAddr)  {}
func (nop) Store(mem.PAddr) {}
func (nop) ALU(uint32)      {}

func TestTableFindAndTranslate(t *testing.T) {
	tb := NewTable(0x100000)
	k := nop{}
	tb.Insert(Range{VStart: 0x10000, VEnd: 0x30000, PBase: 0x500000}, k)
	tb.Insert(Range{VStart: 0x40000, VEnd: 0x50000, PBase: 0x900000}, k)

	var steps []mem.PAddr
	r, ok := tb.Find(0x20000, &steps)
	if !ok || r.PBase != 0x500000 {
		t.Fatalf("find = %+v %v", r, ok)
	}
	if len(steps) == 0 {
		t.Fatal("range walk reported no metadata accesses")
	}
	if pa := r.Translate(0x20080); pa != 0x500000+(0x20080-0x10000) {
		t.Fatalf("translate = %x", pa)
	}
	if _, ok := tb.Find(0x38000, nil); ok {
		t.Fatal("found a range in a hole")
	}
}

func TestTableRemoveOverlap(t *testing.T) {
	tb := NewTable(0x100000)
	k := nop{}
	tb.Insert(Range{VStart: 0x1000, VEnd: 0x2000, PBase: 0xA000}, k)
	tb.Insert(Range{VStart: 0x3000, VEnd: 0x4000, PBase: 0xB000}, k)
	if n := tb.Remove(0x1800, 0x1900, k); n != 1 {
		t.Fatalf("removed %d", n)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	if got := tb.TotalCoveredBytes(); got != 0x1000 {
		t.Fatalf("covered = %x", got)
	}
}

func TestTableSortedInsert(t *testing.T) {
	tb := NewTable(0x100000)
	k := nop{}
	tb.Insert(Range{VStart: 0x9000, VEnd: 0xA000}, k)
	tb.Insert(Range{VStart: 0x1000, VEnd: 0x2000}, k)
	tb.Insert(Range{VStart: 0x5000, VEnd: 0x6000}, k)
	rs := tb.Ranges()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].VStart >= rs[i].VStart {
			t.Fatal("ranges not sorted")
		}
	}
}
