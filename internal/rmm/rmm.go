// Package rmm implements Redundant Memory Mappings (Karakostas et al.,
// ISCA'15), the contiguity-aware translation scheme of Use Case 5
// (§7.6.3, Fig. 21): the OS eagerly allocates large contiguous physical
// ranges for growing VMAs, and a per-process range table — walked by a
// hardware range walker and cached in the range lookaside buffer (RLB) —
// translates any address inside a range with a single base+offset
// computation, redundant with the conventional page table.
package rmm

import (
	"sort"

	"repro/internal/mem"
)

// Range is one contiguous virtual-to-physical mapping.
type Range struct {
	VStart mem.VAddr
	VEnd   mem.VAddr
	PBase  mem.PAddr
}

// Translate applies the range to va.
func (r Range) Translate(va mem.VAddr) mem.PAddr { return r.PBase + mem.PAddr(va-r.VStart) }

// Contains reports whether va is inside the range.
func (r Range) Contains(va mem.VAddr) bool { return va >= r.VStart && va < r.VEnd }

// Pages returns the 4 KB page count of the range.
func (r Range) Pages() uint64 { return uint64(r.VEnd-r.VStart) / (4 * mem.KB) }

// KernelMem is the subset of the instrumentation interface the range
// table needs to report its kernel-side accesses.
type KernelMem interface {
	Load(pa mem.PAddr)
	Store(pa mem.PAddr)
	ALU(n uint32)
}

// Table is a per-process range table, stored as a B-tree in kernel
// memory (Table 4: "B+ Tree to store ranges"). The Go-side representation
// is a sorted slice; node addresses are synthesised so that walks charge
// log-many translation-metadata accesses.
type Table struct {
	ranges []Range
	// nodeBase is the kernel region holding the B-tree nodes.
	nodeBase mem.PAddr
	fanout   int

	Walks     uint64
	WalkSteps uint64
}

// NewTable builds an empty range table whose nodes live at nodeBase.
func NewTable(nodeBase mem.PAddr) *Table {
	return &Table{nodeBase: nodeBase, fanout: 8}
}

// Len returns the number of ranges.
func (t *Table) Len() int { return len(t.ranges) }

// Ranges returns the ranges sorted by start address (not to be modified).
func (t *Table) Ranges() []Range { return t.ranges }

// Insert adds a range, keeping the table sorted; k records the B-tree
// update accesses.
func (t *Table) Insert(r Range, k KernelMem) {
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].VStart >= r.VStart })
	t.ranges = append(t.ranges, Range{})
	copy(t.ranges[i+1:], t.ranges[i:])
	t.ranges[i] = r
	// B-tree insert: descend + split bookkeeping.
	for _, pa := range t.pathTo(i) {
		k.Load(pa)
	}
	k.Store(t.leafPA(i))
	k.ALU(32)
}

// Remove deletes ranges overlapping [start, end).
func (t *Table) Remove(start, end mem.VAddr, k KernelMem) int {
	kept := t.ranges[:0]
	removed := 0
	for _, r := range t.ranges {
		if r.VStart < end && start < r.VEnd {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.ranges = kept
	if removed > 0 {
		k.Store(t.nodeBase)
		k.ALU(uint32(16 * removed))
	}
	return removed
}

// Find locates the range containing va. steps receives the physical
// addresses of the B-tree nodes a hardware range walker touches
// (translation metadata; attributed as mem.ATTransMeta by the MMU).
func (t *Table) Find(va mem.VAddr, steps *[]mem.PAddr) (Range, bool) {
	t.Walks++
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].VEnd > va })
	for _, pa := range t.pathTo(i) {
		if steps != nil {
			*steps = append(*steps, pa)
		}
		t.WalkSteps++
	}
	if i < len(t.ranges) && t.ranges[i].Contains(va) {
		return t.ranges[i], true
	}
	return Range{}, false
}

// pathTo returns the node addresses on the root-to-leaf path for the
// leaf holding index i.
func (t *Table) pathTo(i int) []mem.PAddr {
	depth := 1
	for n := t.fanout; n < len(t.ranges)+1; n *= t.fanout {
		depth++
	}
	path := make([]mem.PAddr, 0, depth)
	stride := 1
	for d := 0; d < depth; d++ {
		node := i / (stride * t.fanout)
		path = append(path, t.nodeBase+mem.PAddr(d)<<16+mem.PAddr(node*64))
		stride *= t.fanout
	}
	return path
}

func (t *Table) leafPA(i int) mem.PAddr {
	return t.nodeBase + mem.PAddr(i/t.fanout*64)
}

// TotalCoveredBytes returns the bytes covered by all ranges.
func (t *Table) TotalCoveredBytes() uint64 {
	var b uint64
	for _, r := range t.ranges {
		b += uint64(r.VEnd - r.VStart)
	}
	return b
}
