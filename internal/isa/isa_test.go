package isa

import (
	"testing"

	"repro/internal/mem"
)

func TestStreamCounts(t *testing.T) {
	s := Stream{
		ALU(100),
		Load(0x400000, 0x1000),
		Store(0x400004, 0x2000),
		{Op: OpDelay, Count: 5000},
		{Op: OpAtomic, Count: 1, Addr: 0x3000},
	}
	if got := s.Instructions(); got != 103 {
		t.Fatalf("instructions = %d (delays must not count)", got)
	}
	if got := s.MemOps(); got != 3 {
		t.Fatalf("mem ops = %d", got)
	}
}

func TestOpClassification(t *testing.T) {
	if !OpLoad.HasMemOperand() || !OpStore.HasMemOperand() || !OpAtomic.HasMemOperand() {
		t.Fatal("memory ops misclassified")
	}
	if OpALU.HasMemOperand() || OpDelay.HasMemOperand() || OpMagic.HasMemOperand() {
		t.Fatal("non-memory ops misclassified")
	}
	if OpLoad.IsWrite() || !OpStore.IsWrite() || !OpAtomic.IsWrite() {
		t.Fatal("write classification wrong")
	}
}

func TestSliceSource(t *testing.T) {
	s := Stream{ALU(1), ALU(2), ALU(3)}
	src := &SliceSource{S: s}
	var in Inst
	n := 0
	for src.Next(&in) {
		n++
	}
	if n != 3 {
		t.Fatalf("drained %d", n)
	}
	src.Reset()
	if !src.Next(&in) || in.Count != 1 {
		t.Fatal("reset failed")
	}
}

func TestBatchCount(t *testing.T) {
	if (Inst{Op: OpALU}).N() != 1 {
		t.Fatal("zero count should mean 1")
	}
	if (Inst{Op: OpALU, Count: 7}).N() != 7 {
		t.Fatal("batch count lost")
	}
}

func TestConstructors(t *testing.T) {
	l := Load(0x400100, mem.VAddr(0x1234))
	if l.Op != OpLoad || l.Addr != 0x1234 || l.PC != 0x400100 || l.Phys {
		t.Fatalf("Load = %+v", l)
	}
	st := Store(0x400104, mem.VAddr(0x5678))
	if st.Op != OpStore || !st.Op.IsWrite() {
		t.Fatalf("Store = %+v", st)
	}
}
