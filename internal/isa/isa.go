// Package isa defines the synthetic instruction format shared by the
// application frontends and the kernel instrumentation layer. It plays the
// role of the instruction stream that, in the paper, a binary
// instrumentation tool (Intel Pin / DynamoRIO) produces for both the
// simulated application and MimicOS routines, and that the simulator's
// core model consumes.
package isa

import (
	"fmt"

	"repro/internal/mem"
)

// Op is a synthetic instruction class. The core model only needs
// instruction classes, not full semantics: it charges pipeline occupancy
// per class and routes memory operands through the MMU and cache models.
type Op uint8

const (
	// OpALU is a register-only integer operation. Count may batch several.
	OpALU Op = iota
	// OpFP is a floating-point operation (longer issue latency).
	OpFP
	// OpBranch is a conditional branch.
	OpBranch
	// OpLoad reads Addr.
	OpLoad
	// OpStore writes Addr.
	OpStore
	// OpAtomic is a locked read-modify-write on Addr (kernel
	// synchronisation; models the §4.3 multithreaded-kernel overheads).
	OpAtomic
	// OpDelay stalls the pipeline for Count cycles. Used to represent
	// device time (e.g., SSD access latency returned by MQSim) inside an
	// injected kernel stream.
	OpDelay
	// OpMagic is a magic instruction (xchg rN,rN / m5op imitation): a
	// doorbell marking functional-channel synchronisation points. The
	// core model executes it in one cycle; the Virtuoso engine intercepts
	// it to switch between application and kernel instruction streams.
	OpMagic
	numOps
)

// NumOps is the number of instruction classes.
const NumOps = int(numOps)

func (o Op) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpFP:
		return "fp"
	case OpBranch:
		return "branch"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomic:
		return "atomic"
	case OpDelay:
		return "delay"
	case OpMagic:
		return "magic"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// HasMemOperand reports whether the op carries a memory address.
func (o Op) HasMemOperand() bool {
	return o == OpLoad || o == OpStore || o == OpAtomic
}

// IsWrite reports whether the op writes memory.
func (o Op) IsWrite() bool { return o == OpStore || o == OpAtomic }

// Inst is one synthetic instruction.
//
// Application streams carry virtual addresses (Phys=false) that the core
// model translates through the MMU. Kernel streams produced by the
// instrumentation layer carry physical addresses in the kernel direct map
// (Phys=true), bypassing translation but still traversing the cache
// hierarchy and DRAM — this is how injected OS routines pollute caches and
// contend for memory bandwidth, the effect emulation-based simulators miss.
type Inst struct {
	Op    Op
	Phys  bool
	Count uint32 // batch size for OpALU/OpFP/OpBranch; delay cycles for OpDelay; else 1
	PC    uint64 // synthetic program counter (drives the IP-stride prefetcher)
	Addr  uint64 // memory operand if Op.HasMemOperand()
}

// N returns the effective batch count (at least 1).
func (i Inst) N() uint64 {
	if i.Count == 0 {
		return 1
	}
	return uint64(i.Count)
}

// Stream is a materialised instruction sequence (e.g., one kernel routine's
// dynamically generated instructions).
type Stream []Inst

// Instructions returns the total dynamic instruction count of the stream,
// counting batched ops at their batch size and excluding pure delays.
func (s Stream) Instructions() uint64 {
	var n uint64
	for _, in := range s {
		if in.Op == OpDelay {
			continue
		}
		n += in.N()
	}
	return n
}

// MemOps returns the number of memory-operand instructions in the stream.
func (s Stream) MemOps() uint64 {
	var n uint64
	for _, in := range s {
		if in.Op.HasMemOperand() {
			n += in.N()
		}
	}
	return n
}

// Source produces an instruction stream one instruction at a time; it is
// the frontend-facing abstraction (trace-driven, execution-driven, or
// emulation-driven frontends all implement it).
type Source interface {
	// Next stores the next instruction into out and reports whether one
	// was produced. After Next returns false the source is exhausted.
	Next(out *Inst) bool
}

// BatchSource is implemented by sources that can hand out many
// instructions per call, letting the engine's fast lane amortize the
// per-instruction interface dispatch of Next. Sources without a
// natural batch form are adapted by FillBatch.
type BatchSource interface {
	Source
	// NextBatch fills out with up to len(out) instructions and returns
	// how many were produced. Zero means the source is exhausted.
	// Interleaving NextBatch and Next is allowed; both consume the same
	// underlying stream.
	NextBatch(out []Inst) int
}

// FillBatch fills out from src — natively when src implements
// BatchSource, otherwise by repeated Next calls — and returns the
// number of instructions produced. Zero means src is exhausted.
func FillBatch(src Source, out []Inst) int {
	if bs, ok := src.(BatchSource); ok {
		return bs.NextBatch(out)
	}
	n := 0
	for n < len(out) && src.Next(&out[n]) {
		n++
	}
	return n
}

// SliceSource adapts a Stream into a Source.
type SliceSource struct {
	S   Stream
	pos int
}

// Next implements Source.
func (ss *SliceSource) Next(out *Inst) bool {
	if ss.pos >= len(ss.S) {
		return false
	}
	*out = ss.S[ss.pos]
	ss.pos++
	return true
}

// NextBatch implements BatchSource.
func (ss *SliceSource) NextBatch(out []Inst) int {
	n := copy(out, ss.S[ss.pos:])
	ss.pos += n
	return n
}

// Reset rewinds the source to the beginning.
func (ss *SliceSource) Reset() { ss.pos = 0 }

// Load constructs a load instruction at a virtual address.
func Load(pc uint64, va mem.VAddr) Inst { return Inst{Op: OpLoad, PC: pc, Addr: uint64(va)} }

// Store constructs a store instruction at a virtual address.
func Store(pc uint64, va mem.VAddr) Inst { return Inst{Op: OpStore, PC: pc, Addr: uint64(va)} }

// ALU constructs a batch of n register-only operations.
func ALU(n uint32) Inst { return Inst{Op: OpALU, Count: n} }
