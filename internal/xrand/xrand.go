// Package xrand provides a small, fast, deterministic PRNG (SplitMix64)
// used across the simulator. Determinism across Go releases matters here:
// every experiment must be exactly reproducible from its seed, so we avoid
// math/rand's unspecified algorithm.
package xrand

// Rand is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64n returns a pseudo-random value in [0, n). n must be > 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n(0)")
	}
	return r.Uint64() % n
}

// Intn returns a pseudo-random int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int { return int(r.Uint64n(uint64(n))) }

// Float64 returns a pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Hash64 deterministically mixes v with seed; useful for stateless
// per-index decisions (e.g., which 2 MB blocks to break when initialising
// fragmentation).
func Hash64(v, seed uint64) uint64 {
	z := v + seed*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HashFloat returns Hash64 scaled into [0,1).
func HashFloat(v, seed uint64) float64 {
	return float64(Hash64(v, seed)>>11) / (1 << 53)
}
