package xrand

import "testing"

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverge")
		}
	}
}

func TestKnownVector(t *testing.T) {
	// SplitMix64 reference: seed 0 first output.
	if got := New(0).Uint64(); got != 0xE220A8397B1DCDAF {
		t.Fatalf("splitmix64(0) = %x", got)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(13); v >= 13 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestHashStateless(t *testing.T) {
	if Hash64(5, 7) != Hash64(5, 7) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(5, 7) == Hash64(5, 8) {
		t.Fatal("seed has no effect")
	}
}

func TestRoughUniformity(t *testing.T) {
	r := New(3)
	buckets := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Uint64n(8)]++
	}
	for i, c := range buckets {
		if c < n/8-n/40 || c > n/8+n/40 {
			t.Fatalf("bucket %d skewed: %d", i, c)
		}
	}
}
