// Package mimicos implements MimicOS (§5): a lightweight userspace kernel
// that imitates the memory-management subsystem of Linux for x86-64 —
// virtual memory areas, the full §5.1 page-fault flow (hugetlbfs, radix
// or hashed page tables, 1 GB / 2 MB / 4 KB allocation decisions, page
// cache, swap cache, disk), the slab and buddy allocators, khugepaged,
// and direct reclaim — while recording every routine's instruction
// stream through the instrumentation layer so the coupled architectural
// simulator can charge OS work its true latency and memory interference.
//
// MimicOS deliberately imitates only the VM-relevant kernel; a
// "full kernel" mode adds the unrelated routine streams a full-system
// simulator would execute, for the §7.3 overhead comparison.
package mimicos

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/midgard"
	"repro/internal/pagetable"
	"repro/internal/phys"
	"repro/internal/recycle"
	"repro/internal/rmm"
	"repro/internal/ssd"
	"repro/internal/tier"
	"repro/internal/utopia"
	"repro/internal/xrand"
)

// PTKind selects the page-table design of the simulated kernel.
type PTKind string

// Page-table design names (Use Case 1, §7.4).
const (
	PTRadix PTKind = "radix"
	PTECH   PTKind = "ech"
	PTHDC   PTKind = "hdc"
	PTHT    PTKind = "ht"
)

// tracerStreamKey recycles the Tracer's kernel-event stream buffer —
// megabytes once a 2 MB ZeroRange has been recorded — across pooled
// kernels.
const tracerStreamKey = "mimicos.tracer.stream"

// streamPool is the process-global fallback for kernels built without
// a recycle.Pool (single-use sessions): the tracer's event buffer is
// by far the largest repeat allocation of a simulation (it regrows to
// the largest kernel event every run), so finished kernels donate it
// here and fresh ones adopt it. Buffer contents never carry between
// owners — Adopt truncates, and every record below len is rewritten
// before a reader sees it — so reuse cannot affect simulated results.
var streamPool sync.Pool

// Config configures a MimicOS instance.
type Config struct {
	PhysBytes uint64 // physical memory size (Table 4: 256 GB)
	PTKind    PTKind

	// THP / allocation policy is set via Kernel.SetPolicy.

	ZeroPoolCap    int // pre-zeroed 2MB pages kept ready (0 disables)
	ZeroPoolRefill int // pages zeroed per background tick

	Enable1G         bool
	HugeTLB2MReserve int // hugetlbfs reserved 2MB pages

	SwapBytes     uint64  // swap space (Table 4: 4 GB)
	SwapThreshold float64 // reclaim watermark (Table 4: 90%)

	// Tiers configures slow memory tiers between DRAM and swap
	// (empty = classic flat DRAM + swap, byte-identical to the
	// pre-tiering model). TierPolicy selects the built-in migration
	// policy ("" = hotcold); out-of-module policies are installed by
	// the engine via SetTierPolicy after construction.
	// TierScanEveryNFaults is the access-bit sampling period on the
	// fault clock (0 with tiers configured = default 256).
	Tiers                []tier.Spec `json:"tiers,omitempty"`
	TierPolicy           string      `json:"tier_policy,omitempty"`
	TierScanEveryNFaults uint64      `json:"tier_scan_every_n_faults,omitempty"`

	KhugeEveryNFaults uint64 // khugepaged scan period (0 disables)
	KhugeScanRegions  int    // regions examined per scan

	PrepopulatePageCache bool // Fig. 1 methodology: no major faults at start

	FullKernel bool // imitate a full-blown kernel (gem5-FS comparison, §7.3)

	Seed uint64
}

// DefaultConfig returns the Table 4 MimicOS configuration.
func DefaultConfig() Config {
	return Config{
		PhysBytes: 4 * mem.GB,
		PTKind:    PTRadix,
		// Linux zeroes huge pages synchronously at fault time; the
		// optional zero pool (Fig. 6's "is there zero 2MB page?") is off
		// by default so THP faults show their real tail (Fig. 2).
		ZeroPoolCap:          0,
		ZeroPoolRefill:       0,
		Enable1G:             false,
		SwapBytes:            4 * mem.GB,
		SwapThreshold:        0.90,
		KhugeEveryNFaults:    512,
		KhugeScanRegions:     4,
		PrepopulatePageCache: true,
		Seed:                 1,
	}
}

// residentPage tracks one resident mapping for reclaim.
type residentPage struct {
	VA      mem.VAddr
	Size    mem.PageSize
	Frame   mem.PAddr
	RestSeg bool // frame belongs to a Utopia RestSeg (not buddy-owned)
	Dead    bool
	// Heat is the migration policy's hot/cold estimate, updated on the
	// faults that map the page and decayed by the access-bit sampling
	// scans. Unused (zero) when no slow tiers are configured.
	Heat uint32
}

// VMA is a virtual memory area (§5.1's find_vma target).
type VMA struct {
	Start, End mem.VAddr
	Anon       bool
	File       bool
	DAX        bool
	HugeTLB    bool
	Huge1G     bool // 1GB allocation flags set
	FileID     uint64
	KAddr      mem.PAddr // kernel object address (vm_area_struct)

	// region4K counts resident 4KB pages per 2MB-aligned region —
	// the state THP promotion decisions read.
	region4K map[uint64]int
	// reservations holds per-region reservation state (CR-THP/AR-THP).
	reservations map[uint64]*reservation
}

// Len returns the VMA length in bytes.
func (v *VMA) Len() uint64 { return uint64(v.End - v.Start) }

// Contains reports whether va is inside the VMA.
func (v *VMA) Contains(va mem.VAddr) bool { return va >= v.Start && va < v.End }

// coversRegion reports whether the whole 2MB region of va fits in the VMA.
func (v *VMA) coversRegion(va mem.VAddr) bool {
	base := mem.Page2M.PageBase(va)
	return base >= v.Start && base+mem.VAddr(2*mem.MB) <= v.End
}

type reservation struct {
	base     mem.PAddr
	touched  [8]uint64 // 512-bit map of allocated 4K offsets
	count    int
	upgraded bool
}

func (r *reservation) touch(idx int) bool {
	w, b := idx/64, uint(idx%64)
	if r.touched[w]&(1<<b) != 0 {
		return false
	}
	r.touched[w] |= 1 << b
	r.count++
	return true
}

// Process is one simulated address space.
type Process struct {
	PID  int
	ASID uint16
	VMAs []*VMA // sorted by Start
	PT   pagetable.PageTable

	// Design-specific auxiliary translation state.
	RMM     *rmm.Table     // eager-paging range table (RMM design)
	Midgard *midgard.Space // intermediate address space (Midgard design)

	// Stat accumulates this process's share of the kernel event counts.
	// Daemon work done on another process's fault clock (a khugepaged
	// collapse, a reclaim pass) is attributed to the process that owns
	// the affected pages, which is what makes per-process accounting in
	// multiprogrammed runs meaningful.
	Stat Stats

	RSS         uint64 // resident bytes
	resident    []residentPage
	residentIdx map[mem.VAddr]int
	clockHand   int
	sampleHand  int // access-bit sampling clock (tiered memory)
	nextMmap    mem.VAddr
	// swapSlots tracks the swap slots currently holding this process's
	// swapped-out pages, so exit can return them to the shared swap
	// file (they are otherwise only freed on swap-in).
	swapSlots map[uint64]struct{}
}

func (p *Process) noteSwapSlot(slot uint64) {
	if p.swapSlots == nil {
		p.swapSlots = make(map[uint64]struct{})
	}
	p.swapSlots[slot] = struct{}{}
}

func (p *Process) dropSwapSlot(slot uint64) { delete(p.swapSlots, slot) }

// locks holds the kernel lock addresses touched by instrumented atomics.
type locks struct {
	mmap  mem.PAddr
	pt    mem.PAddr
	buddy mem.PAddr
	lru   mem.PAddr
	swap  mem.PAddr
}

// Stats aggregates kernel-side event counts.
type Stats struct {
	MinorFaults  uint64
	MajorFaults  uint64
	SegvFaults   uint64
	FaultsBySize [mem.NumPageSizes]uint64

	THPPoolHits    uint64
	THPDirectZero  uint64
	THPFallback4K  uint64
	Reservations   uint64
	Upgrades       uint64
	Collapses      uint64
	CollapseAborts uint64

	HugeTLBFaults uint64
	OneGigFaults  uint64

	PageCacheHits   uint64
	PageCacheMisses uint64

	SwapIns     uint64
	SwapOuts    uint64
	SwapCycles  uint64 // device cycles spent on swap I/O
	ReclaimRuns uint64

	// Tiered-memory migration counts: promotions (slow tier → DRAM),
	// demotions (DRAM → slow tier; inter-tier cascades count against
	// the per-tier counters instead), and the device cycles charged for
	// tier migrations (the tier analogue of SwapCycles).
	Promotions      uint64
	Demotions       uint64
	MigrationCycles uint64

	MmapCalls   uint64
	MunmapCalls uint64
	Exits       uint64
}

// Kernel is one MimicOS instance.
type Kernel struct {
	Cfg    Config
	Phys   *phys.Mem
	Slab   *phys.Slab
	Disk   *ssd.Device
	Tracer *instrument.Tracer

	procs     map[int]*Process
	nextASID  uint16
	freeASIDs []uint16 // released by exited processes, recycled LIFO

	policy AllocPolicy

	zeroPool    []mem.PAddr
	hugetlbPool []mem.PAddr
	pageCache   map[pcKey]mem.PAddr
	swap        *swapState
	khuge       *khugepaged
	tiers       *tier.Manager
	tierKaddr   []mem.PAddr // per-tier kernel bounce buffers (migration copies)
	lk          locks
	rng         *xrand.Rand
	stats       Stats
	faultCount  uint64
	noiseTicks  uint64
	noiseObjs   []mem.PAddr
	unmapNotify func(pid int, va mem.VAddr, size mem.PageSize)
	exitNotify  func(pid int, asid uint16)

	// pool, when non-nil, recycles page-table arena chunks across
	// pooled kernel lifetimes (NewWith); construction-only, never
	// consulted on simulation paths.
	pool *recycle.Pool

	// Utopia is set when the utopia design is active; allocation and
	// eviction consult the RestSegs.
	Utopia *utopia.System

	mu sync.Mutex
}

type pcKey struct {
	file uint64
	page uint64
}

// New constructs a kernel with its own physical memory, slab, and swap
// state. disk may be nil (swap and page-cache misses then cost a fixed
// stand-in latency).
func New(cfg Config, disk *ssd.Device) *Kernel { return NewWith(cfg, disk, nil) }

// NewWith is New drawing the kernel's large allocations — the physical
// memory map and every page table built over the kernel's lifetime —
// from pool (nil pool = plain New).
func NewWith(cfg Config, disk *ssd.Device, pool *recycle.Pool) *Kernel {
	if cfg.PhysBytes == 0 {
		cfg.PhysBytes = DefaultConfig().PhysBytes
	}
	if cfg.SwapThreshold == 0 {
		cfg.SwapThreshold = 0.9
	}
	if cfg.PTKind == "" {
		cfg.PTKind = PTRadix
	}
	pm := phys.NewWith(cfg.PhysBytes, pool)
	k := &Kernel{
		Cfg:       cfg,
		Phys:      pm,
		Slab:      phys.NewSlab(pm),
		Disk:      disk,
		Tracer:    instrument.NewTracer(),
		procs:     make(map[int]*Process),
		pageCache: make(map[pcKey]mem.PAddr),
		rng:       xrand.New(cfg.Seed ^ 0x5eed),
		pool:      pool,
	}
	if pool != nil {
		if b, ok := pool.Take(tracerStreamKey); ok {
			k.Tracer.Adopt(b.(isa.Stream))
		}
	} else if b := streamPool.Get(); b != nil {
		k.Tracer.Adopt(b.(isa.Stream))
	}
	k.swap = newSwapState(k, cfg.SwapBytes)
	k.khuge = newKhugepaged(k)
	k.lk = locks{
		mmap:  k.kalloc(64),
		pt:    k.kalloc(64),
		buddy: k.kalloc(64),
		lru:   k.kalloc(64),
		swap:  k.kalloc(64),
	}
	// Slow tiers thread between DRAM and swap. The flat configuration
	// takes none of these allocations, so tier-less kernels keep the
	// exact slab layout (and therefore byte-identical traces) of the
	// pre-tiering model.
	if len(cfg.Tiers) > 0 {
		pol, _ := tier.NewBuiltin(cfg.TierPolicy) // nil for registry names; engine installs
		k.tiers = tier.NewManager(cfg.Tiers, pol)
		k.tierKaddr = make([]mem.PAddr, len(cfg.Tiers))
		for i := range cfg.Tiers {
			k.tierKaddr[i] = k.kalloc(4 * mem.KB)
		}
		if k.Cfg.TierScanEveryNFaults == 0 {
			k.Cfg.TierScanEveryNFaults = 256
		}
	}
	k.policy = &BuddyPolicy{}
	return k
}

// Recycle harvests the kernel's large allocations — the phys map and
// the page tables of still-live processes — into pool. The kernel must
// not be used afterwards.
func (k *Kernel) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	for _, p := range k.procs {
		if r, ok := p.PT.(recycle.Recycler); ok {
			r.Recycle(pool)
		}
	}
	k.procs = nil
	if buf := k.Tracer.Release(); buf != nil {
		pool.Give(tracerStreamKey, buf)
	}
	k.Phys.Recycle(pool)
}

// ReleaseStream donates the tracer's grown event buffer to the
// process-global pool for the next unpooled kernel. Statistics are
// untouched, and the kernel remains usable — a later event simply
// regrows a buffer. Pooled kernels recycle through Recycle instead.
func (k *Kernel) ReleaseStream() {
	if buf := k.Tracer.Release(); buf != nil {
		streamPool.Put(buf)
	}
}

// kalloc allocates a kernel object, panicking on OOM (init-time only).
func (k *Kernel) kalloc(size uint64) mem.PAddr {
	pa, ok := k.Slab.AllocObject(size)
	if !ok {
		panic("mimicos: kernel heap exhausted")
	}
	return pa
}

// SetPolicy installs the physical memory allocation policy.
func (k *Kernel) SetPolicy(p AllocPolicy) { k.policy = p }

// Policy returns the active allocation policy.
func (k *Kernel) Policy() AllocPolicy { return k.policy }

// SetUnmapNotifier installs the engine callback used to shoot down TLB
// entries when the kernel unmaps or remaps pages.
func (k *Kernel) SetUnmapNotifier(f func(pid int, va mem.VAddr, size mem.PageSize)) {
	k.unmapNotify = f
}

// SetExitNotifier installs the engine callback invoked after a process
// exits, before its ASID becomes recyclable — the hook the engine uses
// to issue the ASID-wide TLB flush.
func (k *Kernel) SetExitNotifier(f func(pid int, asid uint16)) {
	k.exitNotify = f
}

func (k *Kernel) notifyUnmap(pid int, va mem.VAddr, size mem.PageSize) {
	if k.unmapNotify != nil {
		k.unmapNotify(pid, va, size)
	}
}

// Stats returns the kernel statistics.
func (k *Kernel) Stats() *Stats { return &k.stats }

// Process returns the process with the given PID, or nil.
func (k *Kernel) Process(pid int) *Process { return k.procs[pid] }

// newPageTable builds the configured page-table design.
func (k *Kernel) newPageTable() pagetable.PageTable {
	switch k.Cfg.PTKind {
	case PTRadix:
		return pagetable.NewRadixWith(k.Slab, k.pool)
	case PTECH:
		return pagetable.NewECH(k.Slab)
	case PTHDC:
		return pagetable.NewHDC(k.Slab, tableBytesFor(k.Cfg.PhysBytes))
	case PTHT:
		return pagetable.NewHT(k.Slab, tableBytesFor(k.Cfg.PhysBytes))
	default:
		panic(fmt.Sprintf("mimicos: unknown page table kind %q", k.Cfg.PTKind))
	}
}

// tableBytesFor scales the global hash-table size with physical memory
// (the paper's 4 GB table serves 256 GB of DRAM; smaller simulated
// memories get proportionally smaller tables, with a floor).
func tableBytesFor(physBytes uint64) uint64 {
	t := physBytes / 64
	if t < 16*mem.MB {
		t = 16 * mem.MB
	}
	if t > 4*mem.GB {
		t = 4 * mem.GB
	}
	return t
}

// CreateProcess registers a new address space. ASIDs released by exited
// processes are recycled before the counter grows — real kernels do the
// same (the ASID space is 12-16 bits), which is why exit must flush the
// TLB hierarchy ASID-wide (see ExitProcess).
func (k *Kernel) CreateProcess(pid int) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.procs[pid]; dup {
		panic(fmt.Sprintf("mimicos: duplicate pid %d", pid))
	}
	var asid uint16
	if n := len(k.freeASIDs); n > 0 {
		asid = k.freeASIDs[n-1]
		k.freeASIDs = k.freeASIDs[:n-1]
	} else {
		k.nextASID++
		asid = k.nextASID
	}
	p := &Process{
		PID:         pid,
		ASID:        asid,
		PT:          k.newPageTable(),
		residentIdx: make(map[mem.VAddr]int),
		nextMmap:    0x0000_1000_0000_0000,
	}
	k.procs[pid] = p
	return p
}

// ExitProcess tears down a process: every resident page is unmapped
// (releasing frames and notifying per-page shootdowns), swap slots
// still holding its swapped-out pages are returned to the shared swap
// file, the process is reaped from the table, and its ASID is released
// for recycling. The exit notifier fires before the ASID becomes
// reusable so the engine can flush the TLB hierarchy ASID-wide —
// without that flush a recycled ASID would hit the dead process's
// stale translations.
func (k *Kernel) ExitProcess(pid int) {
	k.mu.Lock()
	p := k.procs[pid]
	if p == nil {
		k.mu.Unlock()
		return
	}
	tr := k.Tracer
	exit := tr.Enter("do_exit")
	tr.Atomic(k.lk.mmap)
	tr.ALU(420) // exit_mm, mm counter teardown, task reaping
	// One pass over the resident list: at exit every VMA dies, so the
	// per-VMA filtering Munmap's teardownVMA does would rescan the list
	// once per VMA for nothing. No per-page unmap notifications either:
	// the exit notifier's ASID-wide flush covers the TLBs in one sweep,
	// and the per-process design state dies with the process.
	for i := range p.resident {
		rp := &p.resident[i]
		if rp.Dead {
			continue
		}
		if e, ok := p.PT.Remove(k.keyForNoCharge(p, rp.VA), tr); ok && e.Present {
			k.releaseFrame(rp, tr)
			p.RSS -= rp.Size.Bytes()
		}
		delete(p.residentIdx, rp.VA)
		rp.Dead = true
	}
	p.VMAs = nil
	// Free the swap slots of pages that stayed swapped out (sorted so
	// the shared free list — and therefore later slot reuse — is
	// deterministic regardless of map iteration order).
	if len(p.swapSlots) > 0 {
		slots := make([]uint64, 0, len(p.swapSlots))
		for slot := range p.swapSlots {
			slots = append(slots, slot)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		for _, slot := range slots {
			k.swap.freeSlot(slot)
		}
		p.swapSlots = nil
		tr.Atomic(k.lk.swap)
		tr.ALU(uint32(40 * len(slots))) // swap_entry_free per slot
	}
	// Drop the slow-tier records of pages that died unmapped in a tier
	// (exit's analogue of freeing swap slots).
	if k.tiersEnabled() {
		if n := k.tiers.RemovePID(pid); n > 0 {
			tr.Atomic(k.lk.lru)
			tr.ALU(uint32(30 * n)) // tier descriptor free per page
		}
	}
	k.khuge.dropPID(pid)
	// Pooled kernels harvest the dead process's page-table arenas now
	// (scrubbed in Recycle), so its chunks seed the next process's
	// table instead of becoming garbage.
	if k.pool != nil {
		if r, ok := p.PT.(recycle.Recycler); ok {
			r.Recycle(k.pool)
		}
		p.PT = nil
	}
	delete(k.procs, pid)
	k.freeASIDs = append(k.freeASIDs, p.ASID)
	k.stats.Exits++
	p.Stat.Exits++
	exit()
	notify := k.exitNotify
	k.mu.Unlock()
	if notify != nil {
		notify(pid, p.ASID)
	}
}

// EnableRMM attaches an eager-paging range table to the process.
func (k *Kernel) EnableRMM(p *Process) {
	p.RMM = rmm.NewTable(k.kalloc(64 * mem.KB))
}

// EnableMidgard attaches a Midgard intermediate address space.
func (k *Kernel) EnableMidgard(p *Process) {
	p.Midgard = midgard.NewSpace(k.kalloc(64 * mem.KB))
}

// MmapFlags selects the VMA type for Mmap.
type MmapFlags struct {
	Anon    bool
	File    bool
	DAX     bool
	HugeTLB bool
	Huge1G  bool
	FileID  uint64
	// FixedAddr, when non-zero, places the VMA at the given address.
	FixedAddr mem.VAddr
}

// Mmap creates a VMA of the given length and returns its base address.
// The mmap syscall's kernel work is recorded into the tracer (callers
// obtain the stream via TakeStream when charging syscall overhead).
func (k *Kernel) Mmap(pid int, length uint64, flags MmapFlags) mem.VAddr {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := k.procs[pid]
	tr := k.Tracer
	exit := tr.Enter("sys_mmap")
	tr.Atomic(k.lk.mmap)
	tr.ALU(260)

	length = mem.AlignUp(length, 4*mem.KB)
	base := flags.FixedAddr
	if base == 0 {
		base = p.nextMmap
		p.nextMmap += mem.VAddr(mem.AlignUp(length, 2*mem.MB)) + 2*mem.MB // guard gap
	}
	v := &VMA{
		Start: base, End: base + mem.VAddr(length),
		Anon: flags.Anon, File: flags.File, DAX: flags.DAX,
		HugeTLB: flags.HugeTLB, Huge1G: flags.Huge1G,
		FileID:       flags.FileID,
		KAddr:        k.kalloc(256),
		region4K:     make(map[uint64]int),
		reservations: make(map[uint64]*reservation),
	}
	i := sort.Search(len(p.VMAs), func(i int) bool { return p.VMAs[i].Start >= v.Start })
	p.VMAs = append(p.VMAs, nil)
	copy(p.VMAs[i+1:], p.VMAs[i:])
	p.VMAs[i] = v
	tr.TouchObject(v.KAddr, 1, 2)
	k.stats.MmapCalls++
	p.Stat.MmapCalls++

	if p.Midgard != nil {
		p.Midgard.AddVMA(v.Start, v.End, tr)
	}
	if ep, ok := k.policy.(*EagerPolicy); ok && flags.Anon {
		ep.reserveRanges(k, p, v, tr)
	}
	tr.ALU(90)
	exit()
	return base
}

// Munmap removes all VMAs overlapping [va, va+length), freeing frames.
func (k *Kernel) Munmap(pid int, va mem.VAddr, length uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := k.procs[pid]
	tr := k.Tracer
	exit := tr.Enter("sys_munmap")
	tr.Atomic(k.lk.mmap)
	tr.ALU(220)
	end := va + mem.VAddr(mem.AlignUp(length, 4*mem.KB))

	kept := p.VMAs[:0]
	for _, v := range p.VMAs {
		if v.Start < end && va < v.End {
			k.teardownVMA(p, v, tr)
			continue
		}
		kept = append(kept, v)
	}
	p.VMAs = kept
	if p.Midgard != nil {
		p.Midgard.RemoveVMA(va, end, tr)
	}
	if p.RMM != nil {
		p.RMM.Remove(va, end, tr)
	}
	k.stats.MunmapCalls++
	p.Stat.MunmapCalls++
	exit()
}

// teardownVMA unmaps every resident page of v. The page table is keyed
// by the translation key (the Midgard intermediate address when an
// intermediate address space is active), not the virtual address.
func (k *Kernel) teardownVMA(p *Process, v *VMA, tr *instrument.Tracer) {
	for i := range p.resident {
		rp := &p.resident[i]
		if rp.Dead || !v.Contains(rp.VA) {
			continue
		}
		if e, ok := p.PT.Remove(k.keyForNoCharge(p, rp.VA), tr); ok && e.Present {
			k.releaseFrame(rp, tr)
			p.RSS -= rp.Size.Bytes()
			k.notifyUnmap(p.PID, rp.VA, rp.Size)
		}
		delete(p.residentIdx, rp.VA)
		rp.Dead = true
	}
	if k.tiersEnabled() {
		if n := k.tiers.RemoveRange(p.PID, v.Start, v.End); n > 0 {
			tr.Atomic(k.lk.lru)
			tr.ALU(uint32(30 * n)) // tier descriptor free per page
		}
	}
}

// releaseFrame returns a frame to its owner (buddy or RestSeg).
func (k *Kernel) releaseFrame(rp *residentPage, tr *instrument.Tracer) {
	if rp.RestSeg {
		if seg := k.Utopia.SegFor(rp.Size); seg != nil {
			vpn := rp.Size.VPN(rp.VA)
			seg.Release(vpn)
			tr.Store(seg.TagPA(seg.SetOf(vpn), 0))
		}
		return
	}
	k.Phys.Free(rp.Frame, rp.Size.Bytes()/(4*mem.KB))
	tr.ALU(30)
}

// findVMA walks the process VMA tree, charging one kernel load per
// visited node (the maple-tree descent of find_vma).
func (k *Kernel) findVMA(p *Process, va mem.VAddr, tr *instrument.Tracer) *VMA {
	exit := tr.Enter("find_vma")
	defer exit()
	lo, hi := 0, len(p.VMAs)
	for lo < hi {
		mid := (lo + hi) / 2
		tr.Load(p.VMAs[mid].KAddr)
		tr.ALU(6)
		if p.VMAs[mid].End <= va {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.VMAs) && p.VMAs[lo].Contains(va) {
		tr.Load(p.VMAs[lo].KAddr)
		return p.VMAs[lo]
	}
	return nil
}

// VMAOf returns the VMA containing va without charging kernel work.
func (k *Kernel) VMAOf(pid int, va mem.VAddr) *VMA {
	p := k.procs[pid]
	if p == nil {
		return nil
	}
	i := sort.Search(len(p.VMAs), func(i int) bool { return p.VMAs[i].End > va })
	if i < len(p.VMAs) && p.VMAs[i].Contains(va) {
		return p.VMAs[i]
	}
	return nil
}

// addResident records a resident mapping for reclaim bookkeeping.
func (p *Process) addResident(rp residentPage) {
	if idx, ok := p.residentIdx[rp.VA]; ok {
		p.resident[idx] = rp
		return
	}
	p.residentIdx[rp.VA] = len(p.resident)
	p.resident = append(p.resident, rp)
}

func (p *Process) dropResident(va mem.VAddr) {
	if idx, ok := p.residentIdx[va]; ok {
		p.resident[idx].Dead = true
		delete(p.residentIdx, va)
	}
}

// TakeStream returns the instruction stream recorded by the last kernel
// operation (valid until the next operation).
func (k *Kernel) TakeStream() isa.Stream { return k.Tracer.Take() }

// ResetStats zeroes the kernel statistics — global and per-process —
// so steady-state windows can be measured after warm-up (functional
// state persists).
func (k *Kernel) ResetStats() {
	k.stats = Stats{}
	for _, p := range k.procs {
		p.Stat = Stats{}
	}
	if k.tiersEnabled() {
		k.tiers.ResetStats()
	}
}
