package mimicos

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/rmm"
	"repro/internal/utopia"
)

// AllocPolicy is a physical memory allocation policy for anonymous
// memory — the variable of Use Case 2 (§7.5, Fig. 16). AllocAnon returns
// the frame backing the page containing va, the page size chosen, whether
// the frame is already zeroed, and whether it belongs to a Utopia RestSeg.
type AllocPolicy interface {
	Name() string
	AllocAnon(k *Kernel, p *Process, vma *VMA, va mem.VAddr, tr *instrument.Tracer, now uint64) (frame mem.PAddr, size mem.PageSize, prezeroed, restseg, ok bool)
}

// BuddyPolicy ("BD") provides only 4 KB pages from the buddy allocator.
type BuddyPolicy struct{}

// Name implements AllocPolicy.
func (*BuddyPolicy) Name() string { return "BD" }

// AllocAnon implements AllocPolicy.
func (*BuddyPolicy) AllocAnon(k *Kernel, p *Process, vma *VMA, va mem.VAddr, tr *instrument.Tracer, now uint64) (mem.PAddr, mem.PageSize, bool, bool, bool) {
	frame, ok := k.allocBuddy4K(tr)
	return frame, mem.Page4K, false, false, ok
}

// LinuxTHPPolicy imitates Linux transparent huge pages (§5.1 steps 4-5):
// an anonymous fault on an empty 2MB region tries a huge page — from the
// pre-zeroed pool when available, else allocated and zeroed synchronously
// (the >10 µs outliers of Fig. 2) — and falls back to 4 KB plus a
// khugepaged collapse candidate when no 2MB block is free.
type LinuxTHPPolicy struct{}

// Name implements AllocPolicy.
func (*LinuxTHPPolicy) Name() string { return "THP" }

// AllocAnon implements AllocPolicy.
func (*LinuxTHPPolicy) AllocAnon(k *Kernel, p *Process, vma *VMA, va mem.VAddr, tr *instrument.Tracer, now uint64) (mem.PAddr, mem.PageSize, bool, bool, bool) {
	region := uint64(mem.Page2M.PageBase(va))
	if vma.coversRegion(va) && vma.region4K[region] == 0 {
		exit := tr.Enter("do_huge_pmd_anonymous_page")
		tr.ALU(160) // THP eligibility: vma flags, alignment, khugepaged hints
		if frame, ok := k.popZeroPool(); ok {
			tr.ALU(40)
			exit()
			k.stats.THPPoolHits++
			p.Stat.THPPoolHits++
			return frame, mem.Page2M, true, false, true
		}
		tr.Atomic(k.lk.buddy)
		tr.TouchObject(k.lk.buddy, 3, 1) // compound-page freelist scan
		if frame, ok := k.Phys.Alloc2M(); ok {
			exit()
			k.stats.THPDirectZero++
			p.Stat.THPDirectZero++
			return frame, mem.Page2M, false, false, true
		}
		tr.ALU(220) // failed compaction probe
		exit()
		k.stats.THPFallback4K++
		p.Stat.THPFallback4K++
		k.khuge.noteCandidate(p.PID, vma, va)
	}
	frame, ok := k.allocBuddy4K(tr)
	return frame, mem.Page4K, false, false, ok
}

// ReservationTHPPolicy is reservation-based THP (Navarro et al., OSDI'02;
// the CR-THP/AR-THP allocators of §7.5): the first 4 KB fault in a region
// reserves a whole 2MB block; subsequent faults fill frames inside it; once
// the occupancy fraction passes UpgradeFrac the region is promoted in
// place to a 2MB mapping (zeroing the untouched remainder — the >1000×
// tail of Fig. 16).
type ReservationTHPPolicy struct {
	// UpgradeFrac is the promotion threshold (CR-THP: 0.5; AR-THP: 0.1).
	UpgradeFrac float64
	// PolicyName distinguishes CR-THP from AR-THP in reports.
	PolicyName string
}

// Name implements AllocPolicy.
func (rp *ReservationTHPPolicy) Name() string {
	if rp.PolicyName != "" {
		return rp.PolicyName
	}
	return "R-THP"
}

// AllocAnon implements AllocPolicy.
func (rp *ReservationTHPPolicy) AllocAnon(k *Kernel, p *Process, vma *VMA, va mem.VAddr, tr *instrument.Tracer, now uint64) (mem.PAddr, mem.PageSize, bool, bool, bool) {
	region := uint64(mem.Page2M.PageBase(va))
	res := vma.reservations[region]
	if res == nil && vma.coversRegion(va) {
		exit := tr.Enter("thp_reserve_region")
		tr.Atomic(k.lk.buddy)
		tr.ALU(120)
		if base, ok := k.Phys.Alloc2M(); ok {
			res = &reservation{base: base}
			vma.reservations[region] = res
			k.stats.Reservations++
			p.Stat.Reservations++
		}
		exit()
	}
	if res == nil || res.upgraded {
		frame, ok := k.allocBuddy4K(tr)
		return frame, mem.Page4K, false, false, ok
	}

	idx := int(mem.Page2M.Offset(va) >> 12)
	res.touch(idx)
	frame := res.base + mem.PAddr(uint64(idx)*4*mem.KB)

	if float64(res.count) >= rp.UpgradeFrac*512 {
		// Promote: zero the 4 KB page being faulted plus every untouched
		// frame, tear down the region's 4 KB PTEs, install one 2MB PTE.
		rp.upgrade(k, p, vma, mem.VAddr(region), res, tr)
		return res.base, mem.Page2M, true, false, true
	}
	return frame, mem.Page4K, false, false, true
}

// upgrade promotes a reservation to a 2MB mapping in place.
func (rp *ReservationTHPPolicy) upgrade(k *Kernel, p *Process, vma *VMA, regionBase mem.VAddr, res *reservation, tr *instrument.Tracer) {
	exit := tr.Enter("thp_upgrade_reservation")
	defer exit()
	tr.Atomic(k.lk.pt)
	tr.ALU(300)

	// Zero every frame not yet faulted in (they become visible through
	// the huge mapping).
	for w := 0; w < 8; w++ {
		for b := 0; b < 64; b++ {
			idx := w*64 + b
			if res.touched[w]&(1<<uint(b)) != 0 {
				continue
			}
			tr.ZeroRange(res.base+mem.PAddr(idx*4096), 4*mem.KB)
		}
	}
	// Remove the individual PTEs that were installed for touched pages.
	for w := 0; w < 8; w++ {
		for b := 0; b < 64; b++ {
			idx := w*64 + b
			if res.touched[w]&(1<<uint(b)) == 0 {
				continue
			}
			va := regionBase + mem.VAddr(idx*4096)
			key := k.keyForNoCharge(p, va)
			if _, ok := p.PT.Remove(key, tr); ok {
				p.dropResident(va)
				p.RSS -= 4 * mem.KB
				k.notifyUnmap(p.PID, va, mem.Page4K)
			}
		}
	}
	vma.region4K[uint64(regionBase)] = 0
	res.upgraded = true
	res.count = 512
	k.stats.Upgrades++
	p.Stat.Upgrades++
	// The caller installs the 2MB PTE and resident entry.
}

// keyForNoCharge computes the translation key without charging kernel
// work (internal bookkeeping around an already-charged operation).
func (k *Kernel) keyForNoCharge(p *Process, va mem.VAddr) mem.VAddr {
	if p.Midgard == nil {
		return va
	}
	if mv, ok := p.Midgard.Find(va, nil); ok {
		return mem.VAddr(mv.Translate(va))
	}
	return va
}

// UtopiaPolicy allocates into Utopia RestSegs with hash placement
// (§7.5's "UT" allocators): the set index is a hash of the VPN, so
// allocation is a near-constant-time tag write — unless the set is full,
// which either falls back to the flexible segment or, in the Fig. 20
// configuration, evicts (swaps out) a resident page of the same set.
type UtopiaPolicy struct {
	Prefer2M bool
	// Label distinguishes configurations (e.g. "UT-32MB/16w").
	Label string
}

// Name implements AllocPolicy.
func (up *UtopiaPolicy) Name() string {
	if up.Label != "" {
		return up.Label
	}
	return "UT"
}

// AllocAnon implements AllocPolicy.
func (up *UtopiaPolicy) AllocAnon(k *Kernel, p *Process, vma *VMA, va mem.VAddr, tr *instrument.Tracer, now uint64) (mem.PAddr, mem.PageSize, bool, bool, bool) {
	if k.Utopia == nil {
		frame, ok := k.allocBuddy4K(tr)
		return frame, mem.Page4K, false, false, ok
	}
	if up.Prefer2M && vma.coversRegion(va) && vma.region4K[uint64(mem.Page2M.PageBase(va))] == 0 {
		if seg := k.Utopia.SegFor(mem.Page2M); seg != nil {
			if frame, ok := up.allocInSeg(k, p, seg, mem.Page2M.VPN(va), tr, now); ok {
				return frame, mem.Page2M, false, true, true
			}
		}
	}
	if seg := k.Utopia.SegFor(mem.Page4K); seg != nil {
		if frame, ok := up.allocInSeg(k, p, seg, mem.Page4K.VPN(va), tr, now); ok {
			return frame, mem.Page4K, false, true, true
		}
	}
	// FlexSeg fallback: conventional buddy + radix mapping.
	frame, ok := k.allocBuddy4K(tr)
	return frame, mem.Page4K, false, false, ok
}

func (up *UtopiaPolicy) allocInSeg(k *Kernel, p *Process, seg *utopia.RestSeg, vpn uint64, tr *instrument.Tracer, now uint64) (mem.PAddr, bool) {
	exit := tr.Enter("utopia_alloc")
	defer exit()
	set := seg.SetOf(vpn)
	// Read the set's tag lines (SF membership + free-way scan).
	tr.ALU(45)
	for w := 0; w < seg.Ways; w += 8 {
		tr.Load(seg.TagPA(set, w))
	}
	if way, ok := seg.Alloc(vpn); ok {
		tr.Store(seg.TagPA(set, way))
		return seg.FramePA(set, way), true
	}
	if !k.Utopia.SwapOnFull {
		tr.ALU(30)
		return 0, false
	}
	// Fig. 20 configuration: the set is full — evict a victim to swap
	// even though other physical memory may be free.
	way, victimVPN := seg.VictimOf(vpn)
	if evicted, ok := seg.Evict(set, way); ok {
		victimVA := mem.VAddr(evicted << seg.PageSize.Shift())
		_ = victimVPN
		k.swapOutPage(p, victimVA, seg.PageSize, tr, now, true)
	}
	if way, ok := seg.Alloc(vpn); ok {
		tr.Store(seg.TagPA(set, way))
		return seg.FramePA(set, way), true
	}
	return 0, false
}

// EagerPolicy is RMM's eager paging (§7.6.3): contiguous physical ranges
// are reserved when a VMA is created, so faults inside a range resolve to
// base+offset; the range table feeds the hardware range walker.
type EagerPolicy struct {
	// MaxOrderPages caps a single range (Table 4: max order 21 → 2^21
	// pages = 8 GB).
	MaxOrderPages uint64
}

// Name implements AllocPolicy.
func (*EagerPolicy) Name() string { return "RMM-Eager" }

// reserveRanges eagerly covers a new VMA with the largest contiguous
// ranges available.
func (ep *EagerPolicy) reserveRanges(k *Kernel, p *Process, v *VMA, tr *instrument.Tracer) {
	if p.RMM == nil {
		return
	}
	exit := tr.Enter("eager_reserve")
	defer exit()
	maxPages := ep.MaxOrderPages
	if maxPages == 0 {
		maxPages = 1 << 21
	}
	need := v.Len() / (4 * mem.KB)
	cursor := v.Start
	for need > 0 {
		want := need
		if want > maxPages {
			want = maxPages
		}
		base, got, ok := k.Phys.AllocLargestRange(1, want)
		if !ok {
			break
		}
		tr.ALU(180)
		tr.TouchObject(k.lk.buddy, 3, 1)
		r := rmm.Range{VStart: cursor, VEnd: cursor + mem.VAddr(got*4*mem.KB), PBase: base}
		p.RMM.Insert(r, tr)
		cursor = r.VEnd
		need -= got
	}
}

// AllocAnon implements AllocPolicy.
func (ep *EagerPolicy) AllocAnon(k *Kernel, p *Process, vma *VMA, va mem.VAddr, tr *instrument.Tracer, now uint64) (mem.PAddr, mem.PageSize, bool, bool, bool) {
	if p.RMM != nil {
		exit := tr.Enter("eager_fault")
		r, ok := p.RMM.Find(mem.Page4K.PageBase(va), nil)
		tr.ALU(50)
		exit()
		if ok {
			return r.Translate(mem.Page4K.PageBase(va)), mem.Page4K, false, false, true
		}
	}
	frame, okb := k.allocBuddy4K(tr)
	return frame, mem.Page4K, false, false, okb
}

// Compile-time interface checks.
var (
	_ AllocPolicy = (*BuddyPolicy)(nil)
	_ AllocPolicy = (*LinuxTHPPolicy)(nil)
	_ AllocPolicy = (*ReservationTHPPolicy)(nil)
	_ AllocPolicy = (*UtopiaPolicy)(nil)
	_ AllocPolicy = (*EagerPolicy)(nil)
	_             = pagetable.Entry{}
)
