package mimicos

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/pagetable"
)

func testKernel(t testing.TB, mut func(*Config)) *Kernel {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PhysBytes = 256 * mem.MB
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg, nil)
}

func TestMmapAndFault(t *testing.T) {
	k := testKernel(t, nil)
	k.CreateProcess(1)
	base := k.Mmap(1, 1*mem.MB, MmapFlags{Anon: true})
	if base == 0 {
		t.Fatal("mmap returned 0")
	}
	out := k.HandlePageFault(1, base+0x123, true, 0)
	if !out.OK {
		t.Fatal("fault failed")
	}
	stream := k.TakeStream()
	if stream.Instructions() == 0 {
		t.Fatal("fault produced no kernel instructions")
	}
	e, ok := k.Process(1).PT.Lookup(base)
	if !ok || !e.Present {
		t.Fatalf("PTE missing after fault: %+v %v", e, ok)
	}
	if k.Stats().MinorFaults != 1 {
		t.Fatalf("minor faults = %d", k.Stats().MinorFaults)
	}
}

func TestFaultOutsideVMAIsSegv(t *testing.T) {
	k := testKernel(t, nil)
	k.CreateProcess(1)
	out := k.HandlePageFault(1, 0xdead0000, false, 0)
	if out.OK {
		t.Fatal("fault outside any VMA succeeded")
	}
	if k.Stats().SegvFaults != 1 {
		t.Fatalf("segv count = %d", k.Stats().SegvFaults)
	}
}

func TestTHPAllocates2M(t *testing.T) {
	k := testKernel(t, nil)
	k.SetPolicy(&LinuxTHPPolicy{})
	k.CreateProcess(1)
	base := k.Mmap(1, 8*mem.MB, MmapFlags{Anon: true})
	out := k.HandlePageFault(1, base, true, 0)
	if !out.OK || out.Size != mem.Page2M {
		t.Fatalf("THP fault: %+v", out)
	}
	// The synchronous 2MB zeroing must appear in the stream.
	if n := k.TakeStream().Instructions(); n < 32768 {
		t.Fatalf("THP fault stream too short for 2MB zeroing: %d", n)
	}
	// No further faults inside the region.
	if e, ok := k.Process(1).PT.Lookup(base + 1*mem.MB); !ok || !e.Present {
		t.Fatalf("2M mapping does not cover region: %+v %v", e, ok)
	}
}

func TestTHPFallbackWhenFragmented(t *testing.T) {
	k := testKernel(t, nil)
	k.SetPolicy(&LinuxTHPPolicy{})
	k.Phys.Fragment(0, 1) // no free 2MB blocks
	k.CreateProcess(1)
	base := k.Mmap(1, 8*mem.MB, MmapFlags{Anon: true})
	out := k.HandlePageFault(1, base, true, 0)
	if !out.OK || out.Size != mem.Page4K {
		t.Fatalf("fallback fault: %+v", out)
	}
	if k.Stats().THPFallback4K == 0 {
		t.Fatal("fallback not counted")
	}
}

func TestReservationUpgrade(t *testing.T) {
	k := testKernel(t, nil)
	k.SetPolicy(&ReservationTHPPolicy{UpgradeFrac: 0.02, PolicyName: "test-thp"})
	k.CreateProcess(1)
	base := k.Mmap(1, 4*mem.MB, MmapFlags{Anon: true})
	// 0.02*512 ≈ 11 faults to trigger the upgrade.
	var upgraded bool
	for i := 0; i < 16; i++ {
		out := k.HandlePageFault(1, base+mem.VAddr(i*4096), true, 0)
		if !out.OK {
			t.Fatalf("fault %d failed", i)
		}
		if out.Size == mem.Page2M {
			upgraded = true
			break
		}
	}
	if !upgraded {
		t.Fatal("reservation never upgraded")
	}
	if k.Stats().Upgrades != 1 {
		t.Fatalf("upgrades = %d", k.Stats().Upgrades)
	}
	e, ok := k.Process(1).PT.Lookup(base)
	if !ok || e.Size != mem.Page2M {
		t.Fatalf("post-upgrade mapping: %+v %v", e, ok)
	}
}

func TestFileBackedUsesPageCache(t *testing.T) {
	k := testKernel(t, func(c *Config) { c.PrepopulatePageCache = true })
	k.CreateProcess(1)
	base := k.Mmap(1, 1*mem.MB, MmapFlags{File: true, FileID: 5})
	out := k.HandlePageFault(1, base, false, 0)
	if !out.OK || out.Major {
		t.Fatalf("prepopulated file fault should be minor: %+v", out)
	}
	if k.Stats().PageCacheHits != 1 {
		t.Fatalf("page cache hits = %d", k.Stats().PageCacheHits)
	}
}

func TestFileBackedMissReadsDisk(t *testing.T) {
	k := testKernel(t, func(c *Config) { c.PrepopulatePageCache = false })
	k.CreateProcess(1)
	base := k.Mmap(1, 1*mem.MB, MmapFlags{File: true, FileID: 5})
	out := k.HandlePageFault(1, base, false, 0)
	if !out.OK || !out.Major || out.DeviceCycles == 0 {
		t.Fatalf("cold file fault should be major: %+v", out)
	}
	// Second access to the same page hits the cache.
	k.Munmap(1, base, 4096)
	base2 := k.Mmap(1, 1*mem.MB, MmapFlags{File: true, FileID: 5, FixedAddr: base})
	out2 := k.HandlePageFault(1, base2, false, 0)
	if out2.Major {
		t.Fatalf("second fault should hit page cache: %+v", out2)
	}
}

func TestHugeTLBFault(t *testing.T) {
	k := testKernel(t, nil)
	if got := k.ReserveHugeTLB(4); got != 4 {
		t.Fatalf("reserved %d", got)
	}
	k.CreateProcess(1)
	base := k.Mmap(1, 4*mem.MB, MmapFlags{HugeTLB: true})
	out := k.HandlePageFault(1, base, true, 0)
	if !out.OK || out.Size != mem.Page2M {
		t.Fatalf("hugetlb fault: %+v", out)
	}
	if k.Stats().HugeTLBFaults != 1 {
		t.Fatal("hugetlb fault not counted")
	}
}

func TestOneGigFault(t *testing.T) {
	k := New(Config{PhysBytes: 3 * mem.GB, PTKind: PTRadix, Enable1G: true, SwapThreshold: 0.99}, nil)
	k.CreateProcess(1)
	base := k.Mmap(1, 2*mem.GB, MmapFlags{File: true, DAX: true, Huge1G: true, FileID: 9})
	out := k.HandlePageFault(1, base, true, 0)
	if !out.OK || out.Size != mem.Page1G {
		t.Fatalf("1G fault: %+v", out)
	}
	if k.Stats().OneGigFaults != 1 {
		t.Fatal("1G fault not counted")
	}
}

func TestSwapOutInRoundTrip(t *testing.T) {
	k := testKernel(t, nil)
	p := k.CreateProcess(1)
	base := k.Mmap(1, 64*mem.KB, MmapFlags{Anon: true})
	k.HandlePageFault(1, base, true, 0)
	k.Tracer.Begin()
	if !k.swapOutPage(p, base, mem.Page4K, k.Tracer, 0, false) {
		t.Fatal("swap out failed")
	}
	e, ok := p.PT.Lookup(base)
	if !ok || !e.Swapped {
		t.Fatalf("PTE not marked swapped: %+v %v", e, ok)
	}
	out := k.HandlePageFault(1, base, false, 0)
	if !out.OK || !out.Major {
		t.Fatalf("swap-in fault: %+v", out)
	}
	if k.Stats().SwapIns != 1 || k.Stats().SwapOuts != 1 {
		t.Fatalf("swap stats: %+v", k.Stats())
	}
}

func TestDirectReclaimUnderPressure(t *testing.T) {
	k := New(Config{PhysBytes: 32 * mem.MB, PTKind: PTRadix, SwapBytes: 64 * mem.MB, SwapThreshold: 0.5}, nil)
	k.CreateProcess(1)
	base := k.Mmap(1, 28*mem.MB, MmapFlags{Anon: true})
	for i := uint64(0); i < 28*mem.MB/4096; i++ {
		out := k.HandlePageFault(1, base+mem.VAddr(i*4096), true, 0)
		if !out.OK {
			t.Fatalf("fault %d failed (free=%d)", i, k.Phys.FreePages())
		}
	}
	if k.Stats().SwapOuts == 0 {
		t.Fatal("no reclaim happened above the watermark")
	}
}

func TestKhugepagedCollapse(t *testing.T) {
	k := testKernel(t, func(c *Config) {
		c.KhugeEveryNFaults = 256
		c.KhugeScanRegions = 8
		// Keep reclaim out of the picture: held blocks push usage high.
		c.SwapThreshold = 0.995
	})
	k.SetPolicy(&LinuxTHPPolicy{})
	// Hold every free 2MB block so THP falls back and enqueues
	// candidates, then hand back scattered 4 KB pages (odd pages of a few
	// blocks) so the fallback path has frames without 2MB contiguity.
	var held []mem.PAddr
	for {
		pa, ok := k.Phys.Alloc2M()
		if !ok {
			break
		}
		held = append(held, pa)
	}
	for b := 0; b < 16; b++ {
		blk := held[len(held)-1]
		held = held[:len(held)-1]
		for pg := 1; pg < 512; pg += 2 {
			k.Phys.Free(blk+mem.PAddr(pg*4096), 1)
		}
	}
	k.CreateProcess(1)
	base := k.Mmap(1, 2*mem.MB, MmapFlags{Anon: true})
	for i := 0; i < 512; i++ {
		k.HandlePageFault(1, base+mem.VAddr(i*4096), true, 0)
	}
	// ...then release contiguity and generate further faults elsewhere
	// so the periodic scan finds the fully populated region collapsible.
	for _, pa := range held {
		k.Phys.Free(pa, 512)
	}
	aux := k.Mmap(1, 4*mem.MB, MmapFlags{Anon: true})
	for i := 0; i < 600; i++ {
		k.HandlePageFault(1, aux+mem.VAddr(i*4096), true, 0)
	}
	if k.Stats().Collapses == 0 {
		t.Fatal("khugepaged never collapsed an eligible region")
	}
	e, ok := k.Process(1).PT.Lookup(base)
	if !ok || e.Size != mem.Page2M {
		t.Fatalf("collapsed region not 2M-mapped: %+v %v", e, ok)
	}
}

func TestMunmapFreesMemory(t *testing.T) {
	k := testKernel(t, nil)
	k.CreateProcess(1)
	base := k.Mmap(1, 1*mem.MB, MmapFlags{Anon: true})
	for i := 0; i < 16; i++ {
		k.HandlePageFault(1, base+mem.VAddr(i*4096), true, 0)
	}
	free := k.Phys.FreePages()
	k.Munmap(1, base, 1*mem.MB)
	if k.Phys.FreePages() <= free {
		t.Fatal("munmap freed nothing")
	}
	if k.VMAOf(1, base) != nil {
		t.Fatal("VMA survived munmap")
	}
	if out := k.HandlePageFault(1, base, false, 0); out.OK {
		t.Fatal("fault on unmapped region succeeded")
	}
}

func TestMultithreadedKernelFaults(t *testing.T) {
	// §4.3: concurrent requests from multiple processes must be safe.
	k := testKernel(t, nil)
	const workers = 8
	bases := make([]mem.VAddr, workers)
	for w := 0; w < workers; w++ {
		k.CreateProcess(w + 1)
		bases[w] = k.Mmap(w+1, 2*mem.MB, MmapFlags{Anon: true})
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				out := k.HandlePageFault(w+1, bases[w]+mem.VAddr(i*4096), true, 0)
				if !out.OK {
					t.Errorf("worker %d fault %d failed", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := 0; i < 64; i++ {
			if _, ok := k.Process(w + 1).PT.Lookup(bases[w] + mem.VAddr(i*4096)); !ok {
				t.Fatalf("worker %d page %d unmapped", w, i)
			}
		}
	}
}

func TestFullKernelModeEmitsMore(t *testing.T) {
	lean := testKernel(t, nil)
	full := testKernel(t, func(c *Config) { c.FullKernel = true })
	for _, k := range []*Kernel{lean, full} {
		k.CreateProcess(1)
		base := k.Mmap(1, 64*mem.KB, MmapFlags{Anon: true})
		k.HandlePageFault(1, base, true, 0)
	}
	ln := lean.TakeStream().Instructions()
	fn := full.TakeStream().Instructions()
	if fn <= ln {
		t.Fatalf("full-kernel stream (%d) not larger than lean (%d)", fn, ln)
	}
}

var _ = pagetable.Entry{}
