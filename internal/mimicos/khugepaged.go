package mimicos

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// khugepaged imitates Linux's huge-page collapse daemon (Fig. 6's
// "KHugePage Scanning" box): regions that fell back to 4 KB pages are
// queued; periodic scans re-check the Fig. 6 eligibility conditions
// (swapped-out pages? write-protected? shared? young entries?) and
// collapse eligible regions by copying all 4 KB pages into a fresh 2MB
// frame — a ~100K-instruction stream that produces the THP-enabled
// outliers of Fig. 2.
type khugepaged struct {
	k      *Kernel
	queue  []khugeCand
	queued map[khugeKey]bool
	kaddr  mem.PAddr
}

type khugeKey struct {
	pid    int
	region uint64
}

type khugeCand struct {
	key      khugeKey
	vma      *VMA
	attempts int
}

// maxCollapseAttempts bounds rescans of a region that stays ineligible.
const maxCollapseAttempts = 64

func newKhugepaged(k *Kernel) *khugepaged {
	return &khugepaged{k: k, queued: make(map[khugeKey]bool), kaddr: k.kalloc(512)}
}

// noteCandidate registers a 2MB region whose huge allocation fell back.
func (kh *khugepaged) noteCandidate(pid int, vma *VMA, va mem.VAddr) {
	key := khugeKey{pid: pid, region: uint64(mem.Page2M.PageBase(va))}
	if kh.queued[key] {
		return
	}
	kh.queued[key] = true
	kh.queue = append(kh.queue, khugeCand{key: key, vma: vma})
}

// scan examines up to Cfg.KhugeScanRegions queued candidates and
// collapses the eligible ones. Work is charged to the current injected
// stream (the daemon contends with the faulting core), but — like the
// real khugepaged, which walks every mm on its scan list — candidates
// of *any* live process are examined, so one process's pages can be
// promoted while another is the one faulting. Collapse statistics are
// attributed to the process that owns the region, not the one whose
// fault drove the scan clock.
func (kh *khugepaged) scan(tr *instrument.Tracer, now uint64) {
	k := kh.k
	n := k.Cfg.KhugeScanRegions
	if n == 0 || len(kh.queue) == 0 {
		return
	}
	exit := tr.Enter("khugepaged_scan")
	defer exit()
	tr.ALU(200)

	// Examine at most the candidates present when the scan starts, so a
	// re-enqueued region is not rescanned within the same pass.
	avail := len(kh.queue)
	if n > avail {
		n = avail
	}
	for i := 0; i < n && len(kh.queue) > 0; i++ {
		cand := kh.queue[0]
		kh.queue = kh.queue[1:]
		delete(kh.queued, cand.key)
		owner := k.procs[cand.key.pid]
		if owner == nil {
			continue // process exited; drop its candidate
		}
		if kh.tryCollapse(owner, cand, tr, now) {
			continue
		}
		// Transient failure (few pages yet, no 2MB block free): keep the
		// region on the scan list, as khugepaged does.
		cand.attempts++
		if cand.attempts < maxCollapseAttempts && !kh.queued[cand.key] {
			kh.queued[cand.key] = true
			kh.queue = append(kh.queue, cand)
		}
	}
}

// dropPID discards queued candidates of an exiting process.
func (kh *khugepaged) dropPID(pid int) {
	kept := kh.queue[:0]
	for _, cand := range kh.queue {
		if cand.key.pid == pid {
			delete(kh.queued, cand.key)
			continue
		}
		kept = append(kept, cand)
	}
	kh.queue = kept
}

// tryCollapse performs the Fig. 6 checks and the collapse copy; it
// reports whether the candidate is finished (collapsed or permanently
// ineligible).
func (kh *khugepaged) tryCollapse(p *Process, cand khugeCand, tr *instrument.Tracer, now uint64) bool {
	k := kh.k
	regionBase := mem.VAddr(cand.key.region)
	vma := cand.vma

	exit := tr.Enter("collapse_huge_page")
	defer exit()

	// Scan the 512 PTEs of the region (Fig. 6: swapped-out pages?
	// write-protected? non-zero PTEs? shared? young?).
	present := 0
	var frames [512]mem.PAddr
	var mapped [512]bool
	for i := 0; i < 512; i++ {
		va := regionBase + mem.VAddr(i*4096)
		key := k.keyForNoCharge(p, va)
		if i%8 == 0 {
			tr.Load(k.lk.pt) // PTE cache line per 8 entries
			tr.ALU(12)
		}
		e, ok := p.PT.Lookup(key)
		if !ok {
			// A hole that is actually a demoted slow-tier page makes the
			// region ineligible: collapsing would zero-fill the hole and
			// leave the tier copy to be promoted over the huge mapping.
			if k.tiersEnabled() && k.tiers.Contains(p.PID, va) {
				k.stats.CollapseAborts++
				p.Stat.CollapseAborts++
				return true
			}
			continue
		}
		if e.Swapped || e.Size != mem.Page4K {
			k.stats.CollapseAborts++
			p.Stat.CollapseAborts++
			return true // permanently ineligible in this state
		}
		if e.Present {
			present++
			frames[i] = e.Frame
			mapped[i] = true
		}
	}
	// Linux collapses when holes are few (max_ptes_none default 511 is
	// permissive; we require at least 64 present pages to make the copy
	// worthwhile, mirroring common tuning).
	if present < 64 {
		k.stats.CollapseAborts++
		p.Stat.CollapseAborts++
		return false // too sparse for now; rescan later
	}

	tr.Atomic(k.lk.buddy)
	huge, ok := k.Phys.Alloc2M()
	if !ok {
		k.stats.CollapseAborts++
		p.Stat.CollapseAborts++
		return false // retry once contiguity reappears
	}

	// Copy present pages, zero the holes.
	for i := 0; i < 512; i++ {
		dst := huge + mem.PAddr(i*4096)
		if mapped[i] {
			tr.CopyRange(dst, frames[i], 4*mem.KB)
		} else {
			tr.ZeroRange(dst, 4*mem.KB)
		}
	}

	// Tear down the 4 KB PTEs and install the huge mapping.
	tr.Atomic(k.lk.pt)
	for i := 0; i < 512; i++ {
		if !mapped[i] {
			continue
		}
		va := regionBase + mem.VAddr(i*4096)
		key := k.keyForNoCharge(p, va)
		if _, ok := p.PT.Remove(key, tr); ok {
			k.Phys.Free(frames[i], 1)
			p.dropResident(va)
			p.RSS -= 4 * mem.KB
			k.notifyUnmap(p.PID, va, mem.Page4K)
		}
	}
	keyBase := k.keyForNoCharge(p, regionBase)
	if err := p.PT.Insert(keyBase, pagetable.Entry{
		Frame: huge, Size: mem.Page2M, Present: true, Writable: true, Accessed: true,
	}, tr); err != nil {
		k.Phys.Free(huge, 512)
		return true
	}
	vma.region4K[cand.key.region] = 0
	p.RSS += 2 * mem.MB
	p.addResident(residentPage{VA: regionBase, Size: mem.Page2M, Frame: huge, Heat: k.touchHeat(0)})
	tr.ALU(160) // mmu_notifier, deferred split queue, stats
	k.stats.Collapses++
	p.Stat.Collapses++
	_ = now
	return true
}
