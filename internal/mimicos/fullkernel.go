package mimicos

import (
	"repro/internal/instrument"
	"repro/internal/mem"
)

type pAddrAlias = mem.PAddr

// Full-kernel mode imitates what a full-system simulator executes on
// every kernel entry beyond the memory-management subsystem: scheduler
// accounting, RCU, timers, cgroup charging, auditing, vmstat — the
// routines MimicOS deliberately omits. The §7.3 comparison (Fig. 11)
// enables this mode to reproduce gem5-FS's simulation-time and memory
// overheads against gem5-SE.

type noisePhase int

const (
	noiseFaultEntry noisePhase = iota
	noiseFaultExit
)

// fullKernelNoise injects the non-VM kernel work a full-blown kernel
// performs around the event. The instruction mix is deterministic and
// sized from published Linux fault-path profiles (~3-4x the MM-only
// instruction count).
func (k *Kernel) fullKernelNoise(tr *instrument.Tracer, phase noisePhase) {
	switch phase {
	case noiseFaultEntry:
		exit := tr.Enter("context_tracking_enter")
		tr.ALU(180)
		tr.Load(k.lk.mmap + 0x40)
		exit()

		exit = tr.Enter("rcu_note_context_switch")
		tr.ALU(260)
		tr.TouchObject(k.fullKernelObj(0), 2, 1)
		exit()

		exit = tr.Enter("sched_clock_tick")
		tr.ALU(340)
		tr.TouchObject(k.fullKernelObj(1), 3, 2)
		exit()

		exit = tr.Enter("cgroup_charge")
		tr.ALU(300)
		tr.Atomic(k.fullKernelObj(2))
		tr.TouchObject(k.fullKernelObj(2), 2, 1)
		exit()

	case noiseFaultExit:
		exit := tr.Enter("vmstat_update")
		tr.ALU(220)
		tr.TouchObject(k.fullKernelObj(3), 2, 2)
		exit()

		exit = tr.Enter("audit_syscall_exit")
		tr.ALU(280)
		tr.Load(k.fullKernelObj(4))
		exit()

		exit = tr.Enter("hrtimer_run_queues")
		tr.ALU(380)
		tr.TouchObject(k.fullKernelObj(5), 4, 1)
		exit()

		// Periodic tick: every 64th event also runs the scheduler's
		// load-balancing pass.
		k.noiseTicks++
		if k.noiseTicks%64 == 0 {
			exit = tr.Enter("scheduler_tick")
			tr.ALU(2400)
			tr.TouchObject(k.fullKernelObj(6), 12, 6)
			tr.Atomic(k.fullKernelObj(6))
			exit()
		}
	}
}

// fullKernelObj lazily allocates the kernel objects the noise routines
// touch. Full kernels also hold far more resident state; the adapter
// layer additionally reserves a boot footprint when FullKernel is set.
func (k *Kernel) fullKernelObj(i int) (pa pAddrAlias) {
	for len(k.noiseObjs) <= i {
		k.noiseObjs = append(k.noiseObjs, k.kalloc(4096))
	}
	return k.noiseObjs[i]
}
