package mimicos

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/tier"
)

// Tiered memory (ROADMAP item 4): when Config.Tiers lists slow tiers,
// MimicOS threads them between DRAM and swap. Slow-tier pages are
// unmapped — demotion removes the PTE, so the next access faults and the
// fault handler consults the tier manager before the anonymous/file
// paths. That fault is the promotion path (Linux's NUMA-hint-fault
// promotion, imitated on the fault clock); reclaim under DRAM pressure
// becomes tier-aware demotion with evictions cascading down the
// hierarchy until the terminal swap tier absorbs them. All migration
// time is charged to the simulated clock through the tracer: device
// latency/bandwidth via Delay (so it shows up like swap I/O does) and
// the kernel-side copy via CopyRange through a per-tier bounce buffer.

// tiersEnabled reports whether slow tiers are configured.
func (k *Kernel) tiersEnabled() bool { return k.tiers.Enabled() }

// SetTierPolicy installs an out-of-module migration policy (engine hook
// for registry-registered policies). Must precede the first fault.
func (k *Kernel) SetTierPolicy(p tier.Policy) {
	if k.tiers != nil {
		k.tiers.SetPolicy(p)
	}
}

// TierPolicy returns the active migration policy (nil without tiers).
func (k *Kernel) TierPolicy() tier.Policy {
	if k.tiers == nil {
		return nil
	}
	return k.tiers.Policy()
}

// TierStats returns the per-tier counter snapshot (nil without tiers).
func (k *Kernel) TierStats() []tier.Stats {
	if !k.tiersEnabled() {
		return nil
	}
	return k.tiers.Stats()
}

// TierPageCount returns the number of pages resident in slow tiers.
func (k *Kernel) TierPageCount() int {
	if !k.tiersEnabled() {
		return 0
	}
	return k.tiers.PageCount()
}

// touchHeat is the policy Touch applied at fault-time mapping sites;
// it returns zero heat when tiers are off so the flat configuration
// stays byte-identical.
func (k *Kernel) touchHeat(heat uint32) uint32 {
	if !k.tiersEnabled() {
		return 0
	}
	return k.tiers.Policy().Touch(heat)
}

// tierLookup finds the slow-tier record covering va, if any.
func (k *Kernel) tierLookup(p *Process, va mem.VAddr) (tier.Page, int, bool) {
	if !k.tiersEnabled() {
		return tier.Page{}, 0, false
	}
	return k.tiers.Lookup(p.PID, va)
}

// reclaim frees DRAM above the watermark: tier-aware demotion when slow
// tiers are configured, the classic direct-to-swap path otherwise.
func (k *Kernel) reclaim(p *Process, tr *instrument.Tracer, now uint64) {
	if k.tiersEnabled() {
		k.tierReclaim(p, tr, now)
		return
	}
	k.directReclaim(p, tr, now)
}

// tierPromoteFault services a fault on a slow-tier page: allocate a DRAM
// frame, charge the tier read, copy the page up, and map it. This is the
// hint-fault promotion path — the access itself is the hotness signal.
func (k *Kernel) tierPromoteFault(p *Process, va mem.VAddr, key mem.VAddr, pg tier.Page, t int, tr *instrument.Tracer, now uint64) FaultOutcome {
	exit := tr.Enter("tier_promote")
	defer exit()
	tr.Atomic(k.lk.lru)
	tr.ALU(220) // hint-fault bookkeeping, migration target setup
	tr.TouchObject(k.tierKaddr[t], 2, 0)

	frame, ok := k.Phys.Alloc4K()
	if !ok {
		// DRAM full: demote something, then retry once.
		k.tierReclaim(p, tr, now)
		frame, ok = k.Phys.Alloc4K()
		if !ok {
			k.stats.SegvFaults++
			p.Stat.SegvFaults++
			return FaultOutcome{OK: false}
		}
	}

	spec := k.tiers.Spec(t)
	cost := spec.ReadCost(pg.Size.Bytes())
	tr.Delay(cost)
	k.tiers.AddReadCycles(t, cost)
	k.stats.MigrationCycles += cost
	p.Stat.MigrationCycles += cost
	// Fill the frame through the tier bounce buffer.
	tr.CopyRange(frame, k.tierKaddr[t], pg.Size.Bytes())

	keyBase := key - (va - pg.VA)
	tr.Atomic(k.lk.pt)
	if err := p.PT.Insert(keyBase, pagetable.Entry{
		Frame: frame, Size: pg.Size, Present: true, Writable: true, Accessed: true,
	}, tr); err != nil {
		k.Phys.Free(frame, pg.Size.Bytes()/(4*mem.KB))
		k.stats.SegvFaults++
		p.Stat.SegvFaults++
		return FaultOutcome{OK: false}
	}
	k.tiers.Promote(p.PID, pg.VA)
	p.RSS += pg.Size.Bytes()
	p.addResident(residentPage{
		VA: pg.VA, Size: pg.Size, Frame: frame,
		Heat: k.tiers.Policy().Touch(pg.Heat),
	})
	k.stats.Promotions++
	p.Stat.Promotions++
	k.stats.MinorFaults++
	p.Stat.MinorFaults++
	k.stats.FaultsBySize[pg.Size]++
	p.Stat.FaultsBySize[pg.Size]++
	return FaultOutcome{OK: true, Frame: frame, Size: pg.Size}
}

// tierReclaim is the tier-aware replacement for directReclaim: cold 4K
// pages demote into slow tiers (the policy picks how deep); huge pages
// are not migrated — they keep the legacy direct swap-out, and only on
// the desperate pass, since splitting is not modeled.
func (k *Kernel) tierReclaim(p *Process, tr *instrument.Tracer, now uint64) {
	if len(p.resident) == 0 {
		return
	}
	exit := tr.Enter("tier_reclaim")
	defer exit()
	tr.Atomic(k.lk.lru)
	tr.ALU(420) // shrink_lruvec scan setup
	k.stats.ReclaimRuns++
	p.Stat.ReclaimRuns++

	pol := k.tiers.Policy()
	const batch = 16
	evicted := 0
	for pass := 0; pass < 2 && evicted < batch; pass++ {
		scanned := 0
		for evicted < batch && scanned < 2*len(p.resident) {
			if p.clockHand >= len(p.resident) {
				p.clockHand = 0
			}
			idx := p.clockHand
			p.clockHand++
			scanned++
			rp := p.resident[idx]
			if rp.Dead || rp.RestSeg {
				continue
			}
			tr.Load(k.lk.lru)
			tr.ALU(18)
			if rp.Size != mem.Page4K {
				if pass > 0 && k.swapOutPage(p, rp.VA, rp.Size, tr, now, false) {
					evicted++
				}
			} else if pass == 0 && !pol.Victim(rp.Heat, 0) {
				// Spared: second chance, decay in place.
				p.resident[idx].Heat = pol.Decay(rp.Heat)
				continue
			} else if k.demotePage(p, rp, tr, now) {
				evicted++
			}
			if k.Phys.UsedFraction() < k.Cfg.SwapThreshold-0.02 {
				return
			}
		}
	}
}

// demotePage migrates one resident 4K page from DRAM into the slow tier
// the policy selects, unmapping it so the next access promotes it back.
func (k *Kernel) demotePage(p *Process, rp residentPage, tr *instrument.Tracer, now uint64) bool {
	pol := k.tiers.Policy()
	t := pol.DemoteTo(k.tiers.SlowTiers(), rp.Heat)
	if t < 0 {
		t = 0
	}
	if t >= k.tiers.SlowTiers() {
		t = k.tiers.SlowTiers() - 1
	}
	if !k.tierMakeRoom(t, rp.Size.Bytes(), tr, now) {
		// Hierarchy wedged (tiers and swap full): legacy direct swap-out.
		return k.swapOutPage(p, rp.VA, rp.Size, tr, now, false)
	}

	exit := tr.Enter("tier_demote")
	defer exit()
	tr.Atomic(k.lk.lru)
	tr.ALU(240) // try_to_unmap, migration descriptor setup
	tr.TouchObject(k.tierKaddr[t], 1, 2)

	key := k.keyForNoCharge(p, rp.VA)
	if e, ok := p.PT.Lookup(key); !ok || !e.Present {
		return false
	}
	spec := k.tiers.Spec(t)
	cost := spec.WriteCost(rp.Size.Bytes())
	tr.Delay(cost)
	k.tiers.AddWriteCycles(t, cost)
	k.stats.MigrationCycles += cost
	p.Stat.MigrationCycles += cost
	// Copy down through the tier bounce buffer.
	tr.CopyRange(k.tierKaddr[t], rp.Frame, rp.Size.Bytes())

	p.PT.Remove(key, tr)
	k.notifyUnmap(p.PID, rp.VA, rp.Size)
	tr.ALU(60) // TLB shootdown IPI bookkeeping
	k.Phys.Free(rp.Frame, rp.Size.Bytes()/(4*mem.KB))
	p.dropResident(rp.VA)
	p.RSS -= rp.Size.Bytes()
	k.tiers.Insert(t, tier.Page{
		PID: p.PID, VA: rp.VA, Size: rp.Size, Heat: pol.Decay(rp.Heat),
	})
	k.stats.Demotions++
	p.Stat.Demotions++
	return true
}

// tierMakeRoom frees capacity in tier t for n more bytes, cascading
// victims down the hierarchy (t+1, then t+2, ...) and into swap at the
// terminal level. It returns false only when the whole hierarchy below
// t is wedged (every deeper tier and the swap file full).
func (k *Kernel) tierMakeRoom(t int, n uint64, tr *instrument.Tracer, now uint64) bool {
	for !k.tiers.HasRoom(t, n) {
		pg, ok := k.tiers.PickVictim(t)
		if !ok {
			return false
		}
		vp := k.procs[pg.PID]
		if vp == nil {
			// Orphan record (its process raced an exit); just drop it.
			k.tiers.Evict(pg.PID, pg.VA)
			continue
		}
		if t+1 < k.tiers.SlowTiers() {
			if !k.tierMakeRoom(t+1, pg.Size.Bytes(), tr, now) {
				// Deeper levels wedged: push this victim to swap instead.
				if !k.swapOutTierPage(vp, pg, tr, now) {
					return false
				}
				continue
			}
			exit := tr.Enter("tier_cascade")
			tr.Atomic(k.lk.lru)
			tr.ALU(160) // migration descriptor move between tier lists
			src, dst := k.tiers.Spec(t), k.tiers.Spec(t+1)
			rc := src.ReadCost(pg.Size.Bytes())
			wc := dst.WriteCost(pg.Size.Bytes())
			tr.Delay(rc + wc)
			k.tiers.AddReadCycles(t, rc)
			k.tiers.AddWriteCycles(t+1, wc)
			k.stats.MigrationCycles += rc + wc
			vp.Stat.MigrationCycles += rc + wc
			tr.CopyRange(k.tierKaddr[t+1], k.tierKaddr[t], pg.Size.Bytes())
			k.tiers.Evict(pg.PID, pg.VA)
			k.tiers.Insert(t+1, pg)
			exit()
		} else if !k.swapOutTierPage(vp, pg, tr, now) {
			return false
		}
	}
	return true
}

// swapOutTierPage evicts a slow-tier page into the swap file — the
// terminal step of the cascade. Unlike swapOutPage the page is already
// unmapped (frame and RSS were released at demotion), so this installs a
// fresh swap PTE rather than converting a present one.
func (k *Kernel) swapOutTierPage(vp *Process, pg tier.Page, tr *instrument.Tracer, now uint64) bool {
	exit := tr.Enter("swap_out")
	defer exit()
	tr.Atomic(k.lk.swap)
	tr.ALU(240) // swap cache insert, writeback setup
	tr.TouchObject(k.swap.kaddr, 2, 1)

	slot, ok := k.swap.allocSlot()
	if !ok {
		return false
	}
	var dev uint64 = 1_015_000 // stand-in program latency (~350 µs)
	if k.Disk != nil {
		dev = k.Disk.Write(slot*4096, pg.Size.Bytes(), now)
	}
	tr.Delay(dev)
	k.stats.SwapCycles += dev
	vp.Stat.SwapCycles += dev
	k.stats.SwapOuts++
	vp.Stat.SwapOuts++

	tr.Atomic(k.lk.pt)
	if err := vp.PT.Insert(k.keyForNoCharge(vp, pg.VA), pagetable.Entry{
		Size: pg.Size, Swapped: true, SwapSlot: slot,
	}, tr); err != nil {
		k.swap.freeSlot(slot)
		return false
	}
	vp.noteSwapSlot(slot)
	k.tiers.Evict(pg.PID, pg.VA)
	return true
}

// tierSample imitates the access-bit sampling scan on the fault clock:
// every TierScanEveryNFaults faults a window of the faulting process's
// resident list is scanned and each page's heat decays (pages kept hot
// by faults — mappings and promotions — out-earn the decay).
func (k *Kernel) tierSample(p *Process, tr *instrument.Tracer) {
	if len(p.resident) == 0 {
		return
	}
	exit := tr.Enter("tier_scan")
	defer exit()
	tr.ALU(180) // scan control block, rmap locks
	pol := k.tiers.Policy()
	const window = 64
	limit := window
	if limit > len(p.resident) {
		limit = len(p.resident)
	}
	for i := 0; i < limit; i++ {
		if p.sampleHand >= len(p.resident) {
			p.sampleHand = 0
		}
		rp := &p.resident[p.sampleHand]
		p.sampleHand++
		if i%8 == 0 {
			tr.Load(k.lk.pt)
			tr.ALU(12) // batched PTE access-bit read+clear
		}
		if rp.Dead {
			continue
		}
		rp.Heat = pol.Decay(rp.Heat)
	}
}
