package mimicos

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// FaultOutcome is the functional result of a page fault, returned to the
// simulator over the functional channel; the corresponding instruction
// stream is retrieved via TakeStream and injected through the
// instruction-stream channel.
type FaultOutcome struct {
	OK    bool // false = SIGSEGV
	Frame mem.PAddr
	Size  mem.PageSize
	Major bool // required device I/O
	// DeviceCycles is the SSD time embedded in the stream (swap and
	// page-cache misses); exposed for swap-activity accounting (Fig. 20).
	DeviceCycles uint64
}

// HandlePageFault runs the §5.1 / Fig. 6 page-fault flow for (pid, va)
// at simulated time now (used for device queueing).
func (k *Kernel) HandlePageFault(pid int, va mem.VAddr, write bool, now uint64) FaultOutcome {
	k.mu.Lock()
	defer k.mu.Unlock()

	p := k.procs[pid]
	tr := k.Tracer
	tr.Begin()
	exit := tr.Enter("__do_page_fault")
	tr.ALU(140) // exception entry, error-code decode, per-CPU state
	tr.Atomic(k.lk.mmap)
	k.faultCount++

	if k.Cfg.FullKernel {
		k.fullKernelNoise(tr, noiseFaultEntry)
	}

	// 1: find the virtual memory area.
	vma := k.findVMA(p, va, tr)
	if vma == nil {
		tr.ALU(120) // bad-area path, signal delivery setup
		k.stats.SegvFaults++
		p.Stat.SegvFaults++
		exit()
		return FaultOutcome{OK: false}
	}

	// Page in hugetlbfs? (explicit huge-page VMAs bypass the normal path).
	if vma.HugeTLB {
		out := k.hugetlbFault(p, vma, va, tr)
		k.postFault(p, tr, now)
		exit()
		return out
	}

	key := k.translationKey(p, va, tr)

	// Did a concurrent fault already resolve this page? (Also catches
	// retried faults after reservation upgrades.) Periodic daemon work
	// (khugepaged, reclaim, zero-pool) still runs: it is driven by the
	// fault clock, not the fault outcome.
	if e, ok := p.PT.Lookup(key); ok && e.Present {
		tr.ALU(60)
		k.postFault(p, tr, now)
		exit()
		return FaultOutcome{OK: true, Frame: e.Frame, Size: e.Size}
	}
	// RestSeg mappings live outside the page table entirely.
	if k.Utopia != nil {
		for _, seg := range k.Utopia.Segs {
			vpn := seg.PageSize.VPN(va)
			if way, ok := seg.Lookup(vpn); ok {
				tr.ALU(40)
				exit()
				return FaultOutcome{OK: true, Frame: seg.FramePA(seg.SetOf(vpn), way), Size: seg.PageSize}
			}
		}
	}

	var out FaultOutcome
	if e, ok := p.PT.Lookup(key); ok && e.Swapped {
		// 6: swapped-out anonymous page: consult the swap cache and
		// read the slot back from disk.
		out = k.swapInFault(p, vma, va, key, e, tr, now)
	} else if pg, t, ok := k.tierLookup(p, va); ok {
		// Slow-tier page (unmapped): this access is the promotion hint
		// fault — migrate it back to DRAM.
		out = k.tierPromoteFault(p, va, key, pg, t, tr, now)
	} else if vma.File || vma.DAX {
		// 7-9: file-backed: try a 1GB mapping, then the page cache.
		out = k.fileFault(p, vma, va, key, tr, now)
	} else {
		// Anonymous memory: the physical allocation policy decides
		// (buddy 4K, THP variants, Utopia, eager paging).
		out = k.anonFault(p, vma, va, key, write, tr, now)
	}

	if out.OK {
		k.postFault(p, tr, now)
	}
	tr.ALU(80) // PTE flags, mm counters, return path
	exit()
	return out
}

// translationKey maps va into the key space the page table is indexed
// by: the virtual address itself, or the Midgard intermediate address
// when an intermediate address space is active.
func (k *Kernel) translationKey(p *Process, va mem.VAddr, tr *instrument.Tracer) mem.VAddr {
	if p.Midgard == nil {
		return va
	}
	mv, ok := p.Midgard.Find(va, nil)
	tr.ALU(20)
	if !ok {
		return va
	}
	return mem.VAddr(mv.Translate(va))
}

// anonFault services an anonymous-memory fault through the active
// allocation policy, zeroes the page if required, and installs the PTE.
func (k *Kernel) anonFault(p *Process, vma *VMA, va mem.VAddr, key mem.VAddr, write bool, tr *instrument.Tracer, now uint64) FaultOutcome {
	exit := tr.Enter("do_anonymous_page")
	defer exit()
	tr.ALU(90)

	frame, size, prezeroed, restseg, ok := k.policy.AllocAnon(k, p, vma, va, tr, now)
	if !ok {
		// Out of physical memory: reclaim (demotion or swap), retry once.
		k.reclaim(p, tr, now)
		frame, size, prezeroed, restseg, ok = k.policy.AllocAnon(k, p, vma, va, tr, now)
		if !ok {
			k.stats.SegvFaults++
			p.Stat.SegvFaults++
			return FaultOutcome{OK: false}
		}
	}

	if !prezeroed {
		zexit := tr.Enter("clear_page")
		tr.ZeroRange(frame, size.Bytes())
		zexit()
	}

	base := size.PageBase(va)
	keyBase := key - (va - base)
	if restseg {
		// Utopia RestSeg mappings bypass the page table: translation is
		// set-index plus tag match, which is the whole point (§7.5).
		// Invalidate any negative SF/TAR state cached by the MMU.
		tr.ALU(20)
		k.notifyUnmap(p.PID, base, size)
	} else {
		tr.Atomic(k.lk.pt)
		if err := p.PT.Insert(keyBase, pagetable.Entry{
			Frame: frame, Size: size, Present: true, Writable: true, Dirty: write, Accessed: true,
		}, tr); err != nil {
			k.stats.SegvFaults++
			p.Stat.SegvFaults++
			return FaultOutcome{OK: false}
		}
	}
	if size == mem.Page4K {
		vma.region4K[uint64(mem.Page2M.PageBase(va))]++
	}
	p.RSS += size.Bytes()
	p.addResident(residentPage{VA: base, Size: size, Frame: frame, RestSeg: restseg, Heat: k.touchHeat(0)})
	k.stats.MinorFaults++
	p.Stat.MinorFaults++
	k.stats.FaultsBySize[size]++
	p.Stat.FaultsBySize[size]++
	return FaultOutcome{OK: true, Frame: frame, Size: size}
}

// fileFault services a file-backed (or DAX) fault: 1 GB mapping when the
// Fig. 6 conditions hold, else page-cache lookup with disk fallback.
func (k *Kernel) fileFault(p *Process, vma *VMA, va mem.VAddr, key mem.VAddr, tr *instrument.Tracer, now uint64) FaultOutcome {
	exit := tr.Enter("do_fault_file")
	defer exit()
	tr.ALU(110)

	// 3: 1GB page: VMA is DAX or file-backed, flags set, and a 1GB
	// contiguous region exists in the buddy free lists.
	if vma.Huge1G && k.Cfg.Enable1G && k.Cfg.PTKind == PTRadix {
		gexit := tr.Enter("alloc_1g_page")
		tr.Atomic(k.lk.buddy)
		tr.ALU(320) // free-list scan across orders
		tr.TouchObject(k.lk.buddy, 6, 0)
		frame, ok := k.Phys.Alloc1G()
		gexit()
		if ok {
			dev := k.fetchFromPageCache(p, vma, va, frame, mem.Page1G, tr, now)
			base := mem.Page1G.PageBase(va)
			keyBase := key - (va - base)
			tr.Atomic(k.lk.pt)
			if err := p.PT.Insert(keyBase, pagetable.Entry{
				Frame: frame, Size: mem.Page1G, Present: true, Writable: true, Accessed: true,
			}, tr); err == nil {
				p.RSS += mem.Page1G.Bytes()
				p.addResident(residentPage{VA: base, Size: mem.Page1G, Frame: frame, Heat: k.touchHeat(0)})
				k.stats.MinorFaults++
				p.Stat.MinorFaults++
				k.stats.OneGigFaults++
				p.Stat.OneGigFaults++
				k.stats.FaultsBySize[mem.Page1G]++
				p.Stat.FaultsBySize[mem.Page1G]++
				return FaultOutcome{OK: true, Frame: frame, Size: mem.Page1G, Major: dev > 0, DeviceCycles: dev}
			}
			k.Phys.Free(frame, mem.Page1G.Bytes()/(4*mem.KB))
		}
		// Conditions not met: fall through to smaller pages.
	}

	frame, ok := k.allocBuddy4K(tr)
	if !ok {
		k.reclaim(p, tr, now)
		frame, ok = k.allocBuddy4K(tr)
		if !ok {
			k.stats.SegvFaults++
			p.Stat.SegvFaults++
			return FaultOutcome{OK: false}
		}
	}
	dev := k.fetchFromPageCache(p, vma, va, frame, mem.Page4K, tr, now)

	base := mem.Page4K.PageBase(va)
	keyBase := key - (va - base)
	tr.Atomic(k.lk.pt)
	if err := p.PT.Insert(keyBase, pagetable.Entry{
		Frame: frame, Size: mem.Page4K, Present: true, Writable: true, Accessed: true,
	}, tr); err != nil {
		k.stats.SegvFaults++
		p.Stat.SegvFaults++
		return FaultOutcome{OK: false}
	}
	vma.region4K[uint64(mem.Page2M.PageBase(va))]++
	p.RSS += 4 * mem.KB
	p.addResident(residentPage{VA: base, Size: mem.Page4K, Frame: frame, Heat: k.touchHeat(0)})
	if dev > 0 {
		k.stats.MajorFaults++
		p.Stat.MajorFaults++
	} else {
		k.stats.MinorFaults++
		p.Stat.MinorFaults++
	}
	k.stats.FaultsBySize[mem.Page4K]++
	p.Stat.FaultsBySize[mem.Page4K]++
	return FaultOutcome{OK: true, Frame: frame, Size: mem.Page4K, Major: dev > 0, DeviceCycles: dev}
}

// fetchFromPageCache resolves file data for [va, va+size): a page-cache
// hit costs an index lookup; a miss reads the disk (MQSim latency) and
// inserts the page. Returns the device cycles charged.
func (k *Kernel) fetchFromPageCache(p *Process, vma *VMA, va mem.VAddr, frame mem.PAddr, size mem.PageSize, tr *instrument.Tracer, now uint64) uint64 {
	exit := tr.Enter("page_cache_lookup")
	defer exit()
	filePage := uint64(va-vma.Start) >> 12
	keyObj := pcKey{file: vma.FileID, page: filePage}
	tr.ALU(70) // xarray descent
	tr.Load(k.lk.lru)

	if _, hit := k.pageCache[keyObj]; hit || k.Cfg.PrepopulatePageCache {
		k.stats.PageCacheHits++
		p.Stat.PageCacheHits++
		k.pageCache[keyObj] = frame
		// Mapping a cached page: no copy for DAX; copy a page otherwise
		// is avoided by mapping the cache page itself (we model the
		// common shared-mapping path).
		tr.ALU(40)
		return 0
	}
	k.stats.PageCacheMisses++
	p.Stat.PageCacheMisses++
	var dev uint64 = 174_000 // stand-in when no disk is attached (~60µs)
	if k.Disk != nil {
		dev = k.Disk.Read(uint64(vma.FileID)<<32+filePage*4096, size.Bytes(), now)
	}
	dexit := tr.Enter("submit_bio_read")
	tr.ALU(420) // block layer, request setup, completion
	tr.Delay(dev)
	dexit()
	k.pageCache[keyObj] = frame
	return dev
}

// hugetlbFault serves a fault in a hugetlbfs VMA from the reserved pool.
func (k *Kernel) hugetlbFault(p *Process, vma *VMA, va mem.VAddr, tr *instrument.Tracer) FaultOutcome {
	exit := tr.Enter("hugetlb_fault")
	defer exit()
	tr.ALU(150)
	frame, ok := k.hugetlbPop()
	if !ok {
		k.stats.SegvFaults++
		p.Stat.SegvFaults++
		return FaultOutcome{OK: false}
	}
	zexit := tr.Enter("clear_huge_page")
	tr.ZeroRange(frame, mem.Page2M.Bytes())
	zexit()
	base := mem.Page2M.PageBase(va)
	tr.Atomic(k.lk.pt)
	if err := p.PT.Insert(base, pagetable.Entry{
		Frame: frame, Size: mem.Page2M, Present: true, Writable: true, Accessed: true,
	}, tr); err != nil {
		k.stats.SegvFaults++
		p.Stat.SegvFaults++
		return FaultOutcome{OK: false}
	}
	p.RSS += mem.Page2M.Bytes()
	p.addResident(residentPage{VA: base, Size: mem.Page2M, Frame: frame, Heat: k.touchHeat(0)})
	k.stats.MinorFaults++
	p.Stat.MinorFaults++
	k.stats.HugeTLBFaults++
	p.Stat.HugeTLBFaults++
	k.stats.FaultsBySize[mem.Page2M]++
	p.Stat.FaultsBySize[mem.Page2M]++
	return FaultOutcome{OK: true, Frame: frame, Size: mem.Page2M}
}

// postFault runs the deferred work attached to fault handling: reclaim
// when above the watermark, khugepaged scan ticks, zero-pool refill.
func (k *Kernel) postFault(p *Process, tr *instrument.Tracer, now uint64) {
	if k.tiersEnabled() {
		if k.Phys.UsedFraction() > k.Cfg.SwapThreshold {
			k.tierReclaim(p, tr, now)
		}
		if n := k.Cfg.TierScanEveryNFaults; n > 0 && k.faultCount%n == 0 {
			k.tierSample(p, tr)
		}
	} else if k.Cfg.SwapBytes > 0 && k.Phys.UsedFraction() > k.Cfg.SwapThreshold {
		k.directReclaim(p, tr, now)
	}
	if n := k.Cfg.KhugeEveryNFaults; n > 0 && k.faultCount%n == 0 {
		k.khuge.scan(tr, now)
	}
	k.refillZeroPool(tr)
	if k.Cfg.FullKernel {
		k.fullKernelNoise(tr, noiseFaultExit)
	}
}

// refillZeroPool zeroes up to the configured number of 2MB pages into
// the pool (background work charged to the current event, as the paper's
// single-channel injection does).
func (k *Kernel) refillZeroPool(tr *instrument.Tracer) {
	if k.Cfg.ZeroPoolCap == 0 {
		return
	}
	for i := 0; i < k.Cfg.ZeroPoolRefill && len(k.zeroPool) < k.Cfg.ZeroPoolCap; i++ {
		frame, ok := k.Phys.Alloc2M()
		if !ok {
			return
		}
		exit := tr.Enter("zero_pool_refill")
		tr.ZeroRange(frame, 2*mem.MB)
		exit()
		k.zeroPool = append(k.zeroPool, frame)
	}
}

// popZeroPool returns a pre-zeroed 2MB frame if one is ready.
func (k *Kernel) popZeroPool() (mem.PAddr, bool) {
	if n := len(k.zeroPool); n > 0 {
		f := k.zeroPool[n-1]
		k.zeroPool = k.zeroPool[:n-1]
		return f, true
	}
	return 0, false
}

// hugetlb pool -------------------------------------------------------------

func (k *Kernel) hugetlbPop() (mem.PAddr, bool) {
	if len(k.hugetlbPool) == 0 {
		return 0, false
	}
	f := k.hugetlbPool[len(k.hugetlbPool)-1]
	k.hugetlbPool = k.hugetlbPool[:len(k.hugetlbPool)-1]
	return f, true
}

// ReserveHugeTLB fills the hugetlbfs pool with n 2MB pages (done at boot,
// like hugetlbfs reservation).
func (k *Kernel) ReserveHugeTLB(n int) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	got := 0
	for i := 0; i < n; i++ {
		f, ok := k.Phys.Alloc2M()
		if !ok {
			break
		}
		k.hugetlbPool = append(k.hugetlbPool, f)
		got++
	}
	return got
}

// allocBuddy4K is the instrumented buddy fast path for a single frame.
func (k *Kernel) allocBuddy4K(tr *instrument.Tracer) (mem.PAddr, bool) {
	exit := tr.Enter("alloc_pages")
	defer exit()
	tr.Atomic(k.lk.buddy)
	tr.ALU(85) // gfp checks, zone selection, freelist pop
	tr.TouchObject(k.lk.buddy, 2, 1)
	return k.Phys.Alloc4K()
}
