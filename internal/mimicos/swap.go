package mimicos

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// swapState models the swap file (Table 4: 4 GB) and the swap cache
// (§5.1 step 6): the kernel-resident index from swapped pages to their
// slots in the swap file.
type swapState struct {
	k        *Kernel
	slots    uint64
	used     uint64
	nextSlot uint64
	freed    []uint64
	kaddr    mem.PAddr
}

func newSwapState(k *Kernel, bytes uint64) *swapState {
	return &swapState{k: k, slots: bytes / (4 * mem.KB), kaddr: k.kalloc(4 * mem.KB)}
}

func (s *swapState) allocSlot() (uint64, bool) {
	if n := len(s.freed); n > 0 {
		slot := s.freed[n-1]
		s.freed = s.freed[:n-1]
		s.used++
		return slot, true
	}
	if s.nextSlot >= s.slots {
		return 0, false
	}
	slot := s.nextSlot
	s.nextSlot++
	s.used++
	return slot, true
}

func (s *swapState) freeSlot(slot uint64) {
	s.freed = append(s.freed, slot)
	s.used--
}

// swapOutPage writes the page at va to swap, updates its PTE to a
// swap entry, and releases the frame. fromRestSeg marks Utopia evictions
// (the frame returns to the RestSeg, not the buddy allocator).
func (k *Kernel) swapOutPage(p *Process, va mem.VAddr, size mem.PageSize, tr *instrument.Tracer, now uint64, fromRestSeg bool) bool {
	exit := tr.Enter("swap_out")
	defer exit()
	tr.Atomic(k.lk.swap)
	tr.ALU(240) // try_to_unmap, swap cache insert, writeback setup
	tr.TouchObject(k.swap.kaddr, 2, 1)

	key := k.keyForNoCharge(p, va)
	e, ok := p.PT.Lookup(key)
	if (!ok || !e.Present) && !fromRestSeg {
		return false
	}
	slot, sok := k.swap.allocSlot()
	if !sok {
		return false
	}

	var dev uint64 = 1_015_000 // stand-in program latency (~350 µs)
	if k.Disk != nil {
		dev = k.Disk.Write(slot*4096, size.Bytes(), now)
	}
	tr.Delay(dev)
	k.stats.SwapCycles += dev
	p.Stat.SwapCycles += dev
	k.stats.SwapOuts++
	p.Stat.SwapOuts++

	if ok {
		p.PT.Update(key, pagetable.Entry{
			Size: size, Swapped: true, SwapSlot: slot,
		}, tr)
	} else {
		// RestSeg pages have no PTE; install a swap entry so the next
		// fault finds the slot.
		if err := p.PT.Insert(key, pagetable.Entry{
			Size: size, Swapped: true, SwapSlot: slot,
		}, tr); err != nil {
			k.swap.freeSlot(slot)
			return false
		}
	}
	p.noteSwapSlot(slot)
	k.notifyUnmap(p.PID, va, size)
	tr.ALU(60) // TLB shootdown IPI bookkeeping

	if idx, ok := p.residentIdx[va]; ok {
		rp := p.resident[idx]
		if !fromRestSeg && !rp.RestSeg {
			k.Phys.Free(rp.Frame, size.Bytes()/(4*mem.KB))
		}
		p.dropResident(va)
	}
	p.RSS -= size.Bytes()
	return true
}

// swapInFault services a fault on a swapped PTE: read the slot from disk
// into a fresh frame and restore the mapping (§5.1 step 6).
func (k *Kernel) swapInFault(p *Process, vma *VMA, va mem.VAddr, key mem.VAddr, e pagetable.Entry, tr *instrument.Tracer, now uint64) FaultOutcome {
	exit := tr.Enter("swap_in")
	defer exit()
	tr.Atomic(k.lk.swap)
	tr.ALU(260) // swap cache lookup, readahead setup
	tr.TouchObject(k.swap.kaddr, 2, 0)

	size := e.Size
	var frame mem.PAddr
	var ok, restseg bool
	if k.Utopia != nil {
		if seg := k.Utopia.SegFor(size); seg != nil {
			vpn := size.VPN(va)
			if way, aok := seg.Alloc(vpn); aok {
				frame, ok, restseg = seg.FramePA(seg.SetOf(vpn), way), true, true
			}
		}
	}
	if !ok {
		if size == mem.Page2M {
			frame, ok = k.Phys.Alloc2M()
		}
		if !ok {
			frame, ok = k.Phys.Alloc4K()
			size = mem.Page4K
		}
	}
	if !ok {
		k.stats.SegvFaults++
		p.Stat.SegvFaults++
		return FaultOutcome{OK: false}
	}

	var dev uint64 = 174_000
	if k.Disk != nil {
		dev = k.Disk.Read(e.SwapSlot*4096, size.Bytes(), now)
	}
	tr.Delay(dev)
	k.stats.SwapCycles += dev
	p.Stat.SwapCycles += dev
	// Fill the frame from the bounce buffer.
	tr.CopyRange(frame, k.swap.kaddr, size.Bytes())

	base := size.PageBase(va)
	keyBase := key - (va - base)
	tr.Atomic(k.lk.pt)
	if restseg {
		// The mapping returns to the RestSeg; drop the swap PTE and any
		// negative SF/TAR state cached by the MMU.
		p.PT.Remove(keyBase, tr)
		k.notifyUnmap(p.PID, base, size)
	} else {
		p.PT.Update(keyBase, pagetable.Entry{
			Frame: frame, Size: size, Present: true, Writable: true, Accessed: true,
		}, tr)
	}
	k.swap.freeSlot(e.SwapSlot)
	p.dropSwapSlot(e.SwapSlot)
	p.RSS += size.Bytes()
	p.addResident(residentPage{VA: base, Size: size, Frame: frame, RestSeg: restseg, Heat: k.touchHeat(0)})
	k.stats.MajorFaults++
	p.Stat.MajorFaults++
	k.stats.SwapIns++
	p.Stat.SwapIns++
	k.stats.FaultsBySize[size]++
	p.Stat.FaultsBySize[size]++
	return FaultOutcome{OK: true, Frame: frame, Size: size, Major: true, DeviceCycles: dev}
}

// directReclaim evicts a batch of resident pages when memory is above the
// watermark (Table 4: 90%), clock-scanning the resident list.
func (k *Kernel) directReclaim(p *Process, tr *instrument.Tracer, now uint64) {
	if k.Cfg.SwapBytes == 0 || len(p.resident) == 0 {
		return
	}
	exit := tr.Enter("direct_reclaim")
	defer exit()
	tr.Atomic(k.lk.lru)
	tr.ALU(420) // shrink_lruvec scan setup
	k.stats.ReclaimRuns++
	p.Stat.ReclaimRuns++

	const batch = 16
	evicted := 0
	scanned := 0
	for evicted < batch && scanned < 4*len(p.resident) {
		if p.clockHand >= len(p.resident) {
			p.clockHand = 0
		}
		rp := p.resident[p.clockHand]
		p.clockHand++
		scanned++
		if rp.Dead {
			continue
		}
		tr.Load(k.lk.lru)
		tr.ALU(18)
		if rp.RestSeg {
			// RestSeg residents are only displaced by set pressure.
			continue
		}
		if k.swapOutPage(p, rp.VA, rp.Size, tr, now, false) {
			evicted++
		}
		if k.Phys.UsedFraction() < k.Cfg.SwapThreshold-0.02 {
			break
		}
	}
}
