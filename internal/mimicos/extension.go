package mimicos

import (
	"repro/internal/instrument"
	"repro/internal/mem"
)

// Exported kernel hooks for the public extension API (repro/ext).
// Custom allocation policies run inside the fault path like the
// built-ins, so they need the same instrumented helpers the built-ins
// use — exposed here with stable names instead of leaking the kernel's
// unexported internals.

// AllocBuddy4K is the instrumented buddy fast path for a single 4 KB
// frame: the allocation work (lock, freelist pop, gfp checks) is
// recorded into tr exactly as the built-in policies charge it.
func (k *Kernel) AllocBuddy4K(tr *instrument.Tracer) (mem.PAddr, bool) {
	return k.allocBuddy4K(tr)
}

// ZeroPoolPop returns a pre-zeroed 2 MB frame if one is ready (the
// "is there a zero 2MB page?" step of the THP fault flow).
func (k *Kernel) ZeroPoolPop() (mem.PAddr, bool) { return k.popZeroPool() }

// NoteTHPCandidate registers the 2 MB region containing va as a
// khugepaged collapse candidate — what the built-in THP policy does
// when a huge allocation falls back to 4 KB.
func (k *Kernel) NoteTHPCandidate(pid int, vma *VMA, va mem.VAddr) {
	k.khuge.noteCandidate(pid, vma, va)
}

// BuddyLockPA returns the kernel address of the buddy-allocator lock,
// for policies that charge their own Atomic acquisitions.
func (k *Kernel) BuddyLockPA() mem.PAddr { return k.lk.buddy }

// PTLockPA returns the kernel address of the page-table lock.
func (k *Kernel) PTLockPA() mem.PAddr { return k.lk.pt }

// CoversRegion reports whether the whole 2 MB region containing va fits
// inside the VMA — the THP eligibility check.
func (v *VMA) CoversRegion(va mem.VAddr) bool { return v.coversRegion(va) }

// Mapped4KInRegion returns the number of resident 4 KB pages in the
// 2 MB region containing va — the occupancy state promotion decisions
// read.
func (v *VMA) Mapped4KInRegion(va mem.VAddr) int {
	return v.region4K[uint64(mem.Page2M.PageBase(va))]
}
