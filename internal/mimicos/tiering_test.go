package mimicos

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/tier"
)

// tierTestKernel builds a kernel under enough DRAM pressure to exercise
// the tier hierarchy: 32MB DRAM with a 0.5 watermark, the given slow
// tiers, and a swap file as the terminal tier.
func tierTestKernel(t *testing.T, specs []tier.Spec) *Kernel {
	t.Helper()
	return New(Config{
		PhysBytes:     32 * mem.MB,
		PTKind:        PTRadix,
		SwapBytes:     64 * mem.MB,
		SwapThreshold: 0.5,
		Tiers:         specs,
	}, nil)
}

func oneTier(bytes uint64) []tier.Spec {
	return []tier.Spec{{Name: "cxl", Bytes: bytes, ReadLat: 600, WriteLat: 900, BytesPerCycle: 8}}
}

// faultRegion maps foot bytes anonymously and touches every 4K page.
func faultRegion(t *testing.T, k *Kernel, pid int, foot uint64) mem.VAddr {
	t.Helper()
	if k.Process(pid) == nil {
		k.CreateProcess(pid)
	}
	base := k.Mmap(pid, foot, MmapFlags{Anon: true})
	for off := uint64(0); off < foot; off += 4096 {
		if out := k.HandlePageFault(pid, base+mem.VAddr(off), true, 0); !out.OK {
			t.Fatalf("fault at %#x failed (free=%d)", off, k.Phys.FreePages())
		}
	}
	return base
}

// TestTierDemotionAndPromotion drives a footprint past DRAM into one
// slow tier and then re-touches a demoted page: pressure must demote
// (not swap — the tier has room), and the re-touch must hint-fault the
// page back to DRAM with the migration charged to simulated time.
func TestTierDemotionAndPromotion(t *testing.T) {
	k := tierTestKernel(t, oneTier(64*mem.MB))
	base := faultRegion(t, k, 1, 28*mem.MB)

	st := k.Stats()
	if st.Demotions == 0 {
		t.Fatal("no demotions above the watermark")
	}
	if st.SwapOuts != 0 {
		t.Fatalf("swapped %d pages while the slow tier had room", st.SwapOuts)
	}
	if st.MigrationCycles == 0 {
		t.Fatal("demotions charged no migration cycles")
	}
	ts := k.TierStats()
	if len(ts) != 1 || ts[0].Name != "cxl" {
		t.Fatalf("tier stats: %+v", ts)
	}
	if ts[0].PagesIn == 0 || ts[0].UsedBytes == 0 || ts[0].WriteCycles == 0 {
		t.Fatalf("tier saw no inbound traffic: %+v", ts[0])
	}

	// Find a demoted page and touch it: promotion, not a fresh fault.
	p := k.Process(1)
	var victim mem.VAddr
	for off := uint64(0); off < 28*mem.MB; off += 4096 {
		if _, _, ok := k.tiers.Lookup(1, base+mem.VAddr(off)); ok {
			victim = base + mem.VAddr(off)
			break
		}
	}
	if victim == 0 {
		t.Fatal("no page resident in the slow tier after pressure")
	}
	out := k.HandlePageFault(1, victim, false, 0)
	if !out.OK || out.Major {
		t.Fatalf("promotion fault: %+v", out)
	}
	if k.Stats().Promotions == 0 || p.Stat.Promotions == 0 {
		t.Fatalf("promotion not counted: %+v", k.Stats())
	}
	if _, _, ok := k.tiers.Lookup(1, victim); ok {
		t.Fatal("page still tier-resident after promotion")
	}
	if e, ok := p.PT.Lookup(victim); !ok || !e.Present {
		t.Fatalf("promoted page not mapped: %+v %v", e, ok)
	}
	if ts := k.TierStats(); ts[0].Promotions == 0 || ts[0].ReadCycles == 0 {
		t.Fatalf("tier read side not charged on promotion: %+v", ts[0])
	}
}

// TestTierCascadeToSwap squeezes a footprint through a slow tier too
// small to hold the cold set: the cascade must spill the overflow into
// the terminal swap tier instead of wedging or dropping pages.
func TestTierCascadeToSwap(t *testing.T) {
	k := tierTestKernel(t, oneTier(4*mem.MB))
	faultRegion(t, k, 1, 28*mem.MB)
	st := k.Stats()
	if st.Demotions == 0 {
		t.Fatal("no demotions")
	}
	if st.SwapOuts == 0 {
		t.Fatal("tier overflow never reached swap")
	}
	if used := k.tiers.UsedBytes(0); used > 4*mem.MB {
		t.Fatalf("tier over capacity: %d bytes", used)
	}
}

// TestTierAccountingNoLoss checks the core residency invariant under
// pressure with two tiers: every faulted 4K page is in exactly one
// place — mapped in DRAM, resident in a slow tier, or swapped — and the
// migration cycle counters reconcile with the per-tier device counters.
func TestTierAccountingNoLoss(t *testing.T) {
	specs := []tier.Spec{
		{Name: "cxl", Bytes: 8 * mem.MB, ReadLat: 600, WriteLat: 900, BytesPerCycle: 8},
		{Name: "nvm", Bytes: 8 * mem.MB, ReadLat: 2500, WriteLat: 8000, BytesPerCycle: 2},
	}
	k := tierTestKernel(t, specs)
	const foot = 30 * mem.MB
	base := faultRegion(t, k, 1, foot)
	p := k.Process(1)

	var mapped, tiered, swapped uint64
	for off := uint64(0); off < foot; off += 4096 {
		va := base + mem.VAddr(off)
		_, _, inTier := k.tiers.Lookup(1, va)
		e, ok := p.PT.Lookup(va)
		switch {
		case inTier && ok && e.Present:
			t.Fatalf("page %#x duplicated: mapped AND tier-resident", va)
		case inTier && ok && e.Swapped:
			t.Fatalf("page %#x duplicated: swapped AND tier-resident", va)
		case inTier:
			tiered++
		case ok && e.Present:
			mapped++
		case ok && e.Swapped:
			swapped++
		default:
			t.Fatalf("page %#x lost: no mapping, no tier record, no swap slot", va)
		}
	}
	if total := mapped + tiered + swapped; total != foot/4096 {
		t.Fatalf("accounted %d pages of %d", total, foot/4096)
	}
	if tiered == 0 || swapped == 0 {
		t.Fatalf("pressure did not exercise both levels: tiered=%d swapped=%d", tiered, swapped)
	}
	if got := uint64(k.TierPageCount()); got != tiered {
		t.Fatalf("manager counts %d resident pages, walk found %d", got, tiered)
	}

	var dev uint64
	for _, ts := range k.TierStats() {
		dev += ts.ReadCycles + ts.WriteCycles
	}
	if dev != k.Stats().MigrationCycles {
		t.Fatalf("migration cycles %d != per-tier device cycles %d", k.Stats().MigrationCycles, dev)
	}
}

// TestTierExitReleasesPages makes sure a process exiting with pages in
// slow tiers takes its records with it — in a multiprogrammed system
// leaked records would hold tier capacity forever.
func TestTierExitReleasesPages(t *testing.T) {
	k := tierTestKernel(t, oneTier(64*mem.MB))
	faultRegion(t, k, 1, 20*mem.MB)
	faultRegion(t, k, 2, 20*mem.MB)
	if k.TierPageCount() == 0 {
		t.Fatal("no tier residency after two-process pressure")
	}
	k.ExitProcess(1)
	if n := k.tiers.RemovePID(1); n != 0 {
		t.Fatalf("%d tier records leaked past process exit", n)
	}
	k.ExitProcess(2)
	if k.TierPageCount() != 0 {
		t.Fatalf("%d tier records survive all exits", k.TierPageCount())
	}
	if k.tiers.UsedBytes(0) != 0 {
		t.Fatalf("tier occupancy %d bytes after all exits", k.tiers.UsedBytes(0))
	}
}

// TestFlatConfigHasNoTierSideEffects pins the flat-memory contract:
// without Tiers configured, the tier hooks are inert — no stats, no
// policy, zero heat — so pre-tiering behaviour is bit-for-bit intact.
func TestFlatConfigHasNoTierSideEffects(t *testing.T) {
	k := testKernel(t, nil)
	if k.tiersEnabled() {
		t.Fatal("tiers enabled on a flat config")
	}
	if k.TierStats() != nil || k.TierPageCount() != 0 || k.TierPolicy() != nil {
		t.Fatal("flat config leaks tier state")
	}
	if h := k.touchHeat(7); h != 0 {
		t.Fatalf("flat config assigns heat %d", h)
	}
}
