package mimicos

import (
	"testing"

	"repro/internal/mem"
)

// TestKhugepagedCrossProcessAttribution drives the collapse daemon on
// one process's fault clock against a candidate region owned by another
// process: the promotion must happen (khugepaged walks every mm, not
// just the faulting one) and must be attributed to the owning PID.
func TestKhugepagedCrossProcessAttribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhysBytes = 512 * mem.MB
	k := New(cfg, nil)
	k.SetPolicy(&BuddyPolicy{})
	p1 := k.CreateProcess(1)
	p2 := k.CreateProcess(2)

	// Fill one whole 2MB region of process 2 with 4K pages (buddy policy
	// never allocates huge pages, so every PTE is collapse-eligible).
	base := k.Mmap(2, 4*mem.MB, MmapFlags{Anon: true})
	for i := 0; i < 512; i++ {
		if out := k.HandlePageFault(2, base+mem.VAddr(i*4096), true, 0); !out.OK {
			t.Fatalf("fault %d failed", i)
		}
	}
	vma := k.VMAOf(2, base)
	if vma == nil {
		t.Fatal("no VMA for the faulted region")
	}
	k.khuge.noteCandidate(2, vma, base)

	// Scan on process 1's clock (tryCollapse charges work to the current
	// stream, exactly as a fault-driven scan would).
	k.Tracer.Begin()
	k.khuge.scan(k.Tracer, 0)

	if k.Stats().Collapses != 1 {
		t.Fatalf("global collapses = %d, want 1", k.Stats().Collapses)
	}
	if p2.Stat.Collapses != 1 {
		t.Errorf("owner (pid 2) credited %d collapses, want 1", p2.Stat.Collapses)
	}
	if p1.Stat.Collapses != 0 {
		t.Errorf("scanning process (pid 1) wrongly credited %d collapses", p1.Stat.Collapses)
	}
	// The region is now a single huge mapping of process 2.
	e, ok := p2.PT.Lookup(base)
	if !ok || !e.Present || e.Size != mem.Page2M {
		t.Fatalf("region not promoted: ok=%v entry=%+v", ok, e)
	}
}

// TestExitDropsKhugeCandidates ensures an exiting process's queued
// collapse candidates disappear with it instead of being scanned
// against a reaped mm.
func TestExitDropsKhugeCandidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhysBytes = 256 * mem.MB
	k := New(cfg, nil)
	k.SetPolicy(&BuddyPolicy{})
	k.CreateProcess(1)
	base := k.Mmap(1, 4*mem.MB, MmapFlags{Anon: true})
	if out := k.HandlePageFault(1, base, true, 0); !out.OK {
		t.Fatal("fault failed")
	}
	k.khuge.noteCandidate(1, k.VMAOf(1, base), base)
	k.ExitProcess(1)
	if n := len(k.khuge.queue); n != 0 {
		t.Fatalf("%d khugepaged candidates survive process exit", n)
	}
	k.Tracer.Begin()
	k.khuge.scan(k.Tracer, 0) // must not panic on the reaped process
}

// TestExitFreesSwapSlots ensures a process exiting with pages still
// swapped out returns their slots to the shared swap file: in a
// multiprogrammed system leaked slots would starve the survivors.
func TestExitFreesSwapSlots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhysBytes = 64 * mem.MB
	cfg.SwapBytes = 64 * mem.MB
	cfg.KhugeEveryNFaults = 0
	k := New(cfg, nil)
	k.SetPolicy(&BuddyPolicy{})
	p := k.CreateProcess(1)

	// Touch more pages than physical memory holds so reclaim swaps.
	foot := uint64(70 * mem.MB)
	base := k.Mmap(1, foot, MmapFlags{Anon: true})
	for off := uint64(0); off < foot; off += 4096 {
		if out := k.HandlePageFault(1, base+mem.VAddr(off), true, 0); !out.OK {
			t.Fatalf("fault at %#x failed", off)
		}
	}
	if k.Stats().SwapOuts == 0 {
		t.Fatal("pressure produced no swap-outs; test setup broken")
	}
	if len(p.swapSlots) == 0 {
		t.Fatal("no tracked swap slots despite swap-outs")
	}
	k.ExitProcess(1)
	if k.swap.used != 0 {
		t.Fatalf("%d swap slots leaked after exit", k.swap.used)
	}
}

// TestASIDRecycling checks the create→exit→create cycle reuses ASIDs.
func TestASIDRecycling(t *testing.T) {
	k := New(DefaultConfig(), nil)
	a := k.CreateProcess(1).ASID
	b := k.CreateProcess(2).ASID
	if a == b {
		t.Fatalf("duplicate live ASIDs %d", a)
	}
	var notified []uint16
	k.SetExitNotifier(func(pid int, asid uint16) { notified = append(notified, asid) })
	k.ExitProcess(1)
	if len(notified) != 1 || notified[0] != a {
		t.Fatalf("exit notifier saw %v, want [%d]", notified, a)
	}
	if got := k.CreateProcess(3).ASID; got != a {
		t.Fatalf("ASID %d not recycled (got %d)", a, got)
	}
	if k.Stats().Exits != 1 {
		t.Fatalf("exit count %d, want 1", k.Stats().Exits)
	}
}
