package workloads

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mimicos"
)

func testKernel() *mimicos.Kernel {
	cfg := mimicos.DefaultConfig()
	cfg.PhysBytes = 2 * mem.GB
	return mimicos.New(cfg, nil)
}

func TestSuitesEnumerate(t *testing.T) {
	if len(LongSuite()) != 10 {
		t.Fatalf("long suite = %d workloads", len(LongSuite()))
	}
	if len(ShortSuite()) != 11 {
		t.Fatalf("short suite = %d workloads", len(ShortSuite()))
	}
	for _, w := range append(LongSuite(), ShortSuite()...) {
		if _, ok := ByName(w.Name()); !ok {
			t.Fatalf("ByName(%q) failed", w.Name())
		}
	}
}

func TestAddressesStayInsideVMAs(t *testing.T) {
	tiny := Params{Scale: 0.02}

	k := testKernel()
	k.CreateProcess(1)
	for _, w := range []*Workload{bfs(tiny.resolve()), jsonW(tiny.resolve()), llama(tiny.resolve()), sum2D(tiny.resolve()), sp(tiny.resolve())} {
		w.Setup(k, 1)
		src := w.Source(7)
		var in isa.Inst
		n := 0
		for src.Next(&in) && n < 50000 {
			n++
			if !in.Op.HasMemOperand() {
				continue
			}
			if k.VMAOf(1, mem.VAddr(in.Addr)) == nil {
				t.Fatalf("%s: address %x outside every VMA", w.Name(), in.Addr)
			}
		}
		if n == 0 {
			t.Fatalf("%s produced no instructions", w.Name())
		}
	}
}

func TestSourceDeterministic(t *testing.T) {
	k := testKernel()
	k.CreateProcess(1)
	w := Custom("det", LongRunning, 1*mem.MB,
		func(w *Workload, k *mimicos.Kernel, pid int) {
			w.SetBase("d", k.Mmap(pid, 1*mem.MB, mimicos.MmapFlags{Anon: true}))
		},
		func(w *Workload) []Step {
			return []Step{{Kind: StepRand, Base: w.Base("d"), Size: 1 * mem.MB, Count: 2000, PC: 1}}
		})
	w.Setup(k, 1)
	collect := func(seed uint64) []isa.Inst {
		src := w.Source(seed)
		out := make([]isa.Inst, 0, 1000)
		var in isa.Inst
		for i := 0; i < 1000 && src.Next(&in); i++ {
			out = append(out, in)
		}
		return out
	}
	a, b := collect(3), collect(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs across identical seeds", i)
		}
	}
	c := collect(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical random streams")
	}
}

func TestShortWorkloadsTerminate(t *testing.T) {
	tiny := Params{Scale: 0.02}

	k := testKernel()
	k.CreateProcess(1)
	w := jsonW(tiny.resolve())
	w.Setup(k, 1)
	src := w.Source(1)
	var in isa.Inst
	n := uint64(0)
	for src.Next(&in) {
		n += in.N()
		if n > 100_000_000 {
			t.Fatal("short workload did not terminate")
		}
	}
	if n == 0 {
		t.Fatal("no instructions")
	}
}

func TestBCVMACensus(t *testing.T) {
	tiny := Params{Scale: 0.02}

	k := testKernel()
	k.CreateProcess(1)
	w := bc(tiny.resolve())
	w.Setup(k, 1)
	n := len(k.Process(1).VMAs)
	if n != 148 { // 1 data + 147 auxiliary (Fig. 18)
		t.Fatalf("BC VMAs = %d, want 148", n)
	}
}

func TestCustomWorkload(t *testing.T) {
	k := testKernel()
	k.CreateProcess(1)
	w := Custom("c", ShortRunning, 4*mem.KB,
		func(w *Workload, k *mimicos.Kernel, pid int) {
			w.SetBase("x", k.Mmap(pid, 64*mem.KB, mimicos.MmapFlags{Anon: true}))
		},
		func(w *Workload) []Step {
			return []Step{{Kind: StepSeq, Base: w.Base("x"), Size: 64 * mem.KB, Stride: 64, Count: 10, PC: 1}}
		})
	w.Setup(k, 1)
	src := w.Source(1)
	var in isa.Inst
	count := 0
	for src.Next(&in) {
		count++
	}
	if count != 10 {
		t.Fatalf("custom workload emitted %d instructions", count)
	}
}
