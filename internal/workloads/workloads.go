// Package workloads provides synthetic generators reproducing the
// VM-relevant memory behaviour of the paper's Table 5 benchmark suites:
// GraphBIG graph analytics and HPC kernels (long-running, large
// footprints, irregular access, high L2 TLB MPKI), Function-as-a-Service
// and image-processing workloads (short-running, allocation-dominated),
// and LLM inference (file-backed weights plus a growing KV cache). A
// parametric stress sweep reproduces the §2 memory-intensity study
// (Fig. 3).
//
// Each workload describes (i) its address-space layout, created through
// MimicOS mmap calls, and (ii) a deterministic instruction stream over
// that layout, expressed as a small phase program.
package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/xrand"
)

// Class separates the paper's two workload categories (§1).
type Class int

const (
	// LongRunning workloads (>100 s real time) amortise allocation and
	// are dominated by address translation.
	LongRunning Class = iota
	// ShortRunning workloads (<1 s) are dominated by physical memory
	// allocation.
	ShortRunning
)

func (c Class) String() string {
	if c == ShortRunning {
		return "short"
	}
	return "long"
}

// StepKind enumerates program phases.
type StepKind uint8

const (
	// StepTouch walks [Base, Base+Size) at Stride with stores
	// (first-touch allocation).
	StepTouch StepKind = iota
	// StepSeq streams over the region with loads at Stride, Count ops.
	StepSeq
	// StepRand performs Count accesses at pseudo-random page-grained
	// offsets in the region.
	StepRand
	// StepChase performs Count dependent pointer-chase hops across the
	// region (page-granular, deterministic chain).
	StepChase
	// StepALU burns Count register-only instructions.
	StepALU
)

// Step is one program phase.
type Step struct {
	Kind   StepKind
	Base   mem.VAddr
	Size   uint64
	Stride uint64
	Count  uint64
	ALUPer uint32 // ALU instructions interleaved per memory access
	Store  bool   // use stores instead of loads (StepRand/StepSeq)
	PC     uint64
}

// Workload is one benchmark.
type Workload struct {
	name      string
	class     Class
	footprint uint64
	setup     func(w *Workload, k *mimicos.Kernel, pid int)
	program   func(w *Workload) []Step
	// source, when non-nil, overrides the step-program source — the hook
	// trace-backed workloads use to stream instructions from a file.
	source func(w *Workload, seed uint64) isa.Source

	bases map[string]mem.VAddr
}

// Name returns the benchmark name.
func (w *Workload) Name() string { return w.name }

// Class returns the workload class.
func (w *Workload) Class() Class { return w.class }

// FootprintBytes returns the primary data footprint.
func (w *Workload) FootprintBytes() uint64 { return w.footprint }

// Setup creates the workload's VMAs in the kernel for process pid.
func (w *Workload) Setup(k *mimicos.Kernel, pid int) {
	w.bases = make(map[string]mem.VAddr)
	w.setup(w, k, pid)
}

// Base returns the named VMA base established during Setup.
func (w *Workload) Base(name string) mem.VAddr {
	va, ok := w.bases[name]
	if !ok {
		panic(fmt.Sprintf("workloads: %s: unknown base %q (Setup not run?)", w.name, name))
	}
	return va
}

// Source returns the instruction stream for one run. Each call yields
// an independent stream positioned at the beginning, so concurrent runs
// of the same workload definition never share a cursor.
func (w *Workload) Source(seed uint64) isa.Source {
	if w.source != nil {
		return w.source(w, seed)
	}
	return newProgramSource(w.program(w), seed)
}

// programSource executes a step program.
type programSource struct {
	steps []Step
	rng   *xrand.Rand
	si    int    // current step
	done  uint64 // ops completed in current step
	alu   uint32 // pending ALU filler for current op
	chase uint64 // pointer-chase cursor
}

func newProgramSource(steps []Step, seed uint64) *programSource {
	return &programSource{steps: steps, rng: xrand.New(seed)}
}

// Next implements isa.Source.
func (s *programSource) Next(out *isa.Inst) bool {
	for s.si < len(s.steps) {
		st := &s.steps[s.si]
		if s.alu > 0 {
			*out = isa.Inst{Op: isa.OpALU, Count: s.alu, PC: st.PC + 4}
			s.alu = 0
			return true
		}
		var total uint64
		switch st.Kind {
		case StepTouch:
			total = st.Size / st.Stride
		default:
			total = st.Count
		}
		if s.done >= total {
			s.si++
			s.done = 0
			s.chase = 0
			continue
		}
		switch st.Kind {
		case StepTouch:
			addr := st.Base + mem.VAddr(s.done*st.Stride)
			*out = isa.Store(st.PC, addr)
		case StepSeq:
			off := (s.done * st.Stride) % st.Size
			addr := st.Base + mem.VAddr(off)
			if st.Store {
				*out = isa.Store(st.PC, addr)
			} else {
				*out = isa.Load(st.PC, addr)
			}
		case StepRand:
			pageOff := s.rng.Uint64n(st.Size / 64)
			addr := st.Base + mem.VAddr(pageOff*64)
			if st.Store {
				*out = isa.Store(st.PC+s.done%7*4, addr)
			} else {
				*out = isa.Load(st.PC+s.done%7*4, addr)
			}
		case StepChase:
			pages := st.Size / (4 * mem.KB)
			s.chase = xrand.Hash64(s.chase+s.done, uint64(st.Base)) % pages
			addr := st.Base + mem.VAddr(s.chase*4*mem.KB+(s.done%64)*64)
			*out = isa.Load(st.PC, addr)
		case StepALU:
			c := total - s.done
			if c > 1<<20 {
				c = 1 << 20
			}
			*out = isa.Inst{Op: isa.OpALU, Count: uint32(c), PC: st.PC}
			s.done += c
			return true
		}
		s.done++
		s.alu = st.ALUPer
		return true
	}
	return false
}

// NextBatch implements isa.BatchSource: the engine's fast lane pulls a
// block of instructions with one call, and the inner Next calls here
// dispatch on the concrete receiver.
func (s *programSource) NextBatch(out []isa.Inst) int {
	n := 0
	for n < len(out) && s.Next(&out[n]) {
		n++
	}
	return n
}

// SetBase records a named VMA base during Setup (custom workloads).
func (w *Workload) SetBase(name string, va mem.VAddr) { w.bases[name] = va }

// Custom builds a workload from explicit setup and program functions —
// the extension point for user-defined studies and microbenchmarks.
func Custom(name string, class Class, footprint uint64,
	setup func(w *Workload, k *mimicos.Kernel, pid int),
	program func(w *Workload) []Step) *Workload {
	return &Workload{name: name, class: class, footprint: footprint, setup: setup, program: program}
}

// CustomSource builds a workload whose instruction stream comes from an
// arbitrary source factory instead of a step program — the extension
// point trace replay uses. The factory is invoked once per run and must
// return a fresh, independently positioned source each time.
func CustomSource(name string, class Class, footprint uint64,
	setup func(w *Workload, k *mimicos.Kernel, pid int),
	source func(w *Workload, seed uint64) isa.Source) *Workload {
	return &Workload{name: name, class: class, footprint: footprint, setup: setup, source: source}
}
