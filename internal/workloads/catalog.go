package workloads

import (
	"fmt"
	"strings"

	"repro/internal/mem"
	"repro/internal/mimicos"
)

// Params configures workload construction. The zero value resolves to
// the library defaults (DefaultScale, DefaultLongIters), so Params{}
// built workloads behave exactly like the reference catalog.
//
// Construction reads no mutable package state — the deprecated
// Scale/LongIters globals are gone — so concurrent constructions with
// different parameters (e.g. two parallel sweeps at different scales)
// are race-free by design.
type Params struct {
	// Scale shrinks the paper's footprints (50–100 GB) to
	// simulator-friendly sizes while preserving the
	// footprint-to-TLB-reach ratios that drive MPKI. All catalog sizes
	// are expressed at Scale=1. 0 means DefaultScale.
	Scale float64

	// LongIters is the number of iterate passes long-running workloads
	// make over their data. Real long-running executions amortise their
	// build phase over hours; raising this approaches that regime.
	// 0 means DefaultLongIters.
	LongIters int
}

// Library default construction parameters (the values behind
// zero-valued Params fields).
const (
	DefaultScale     = 1.0
	DefaultLongIters = 4
)

// resolve fills zero fields with the library defaults. Constructors
// call it once, up front, so a workload captures its parameters at
// construction time.
func (p Params) resolve() Params {
	if p.Scale == 0 {
		p.Scale = DefaultScale
	}
	if p.LongIters == 0 {
		p.LongIters = DefaultLongIters
	}
	return p
}

func (p Params) sz(bytes uint64) uint64 {
	v := uint64(float64(bytes) * p.Scale)
	if v < 2*mem.MB {
		v = 2 * mem.MB
	}
	return mem.AlignUp(v, 2*mem.MB)
}

// graph builds a GraphBIG-style workload: a large anonymous region
// (vertex+edge arrays) walked with a mix of sequential and irregular
// accesses after a first-touch build phase.
func graph(p Params, name string, footprint uint64, randFrac float64, aluPer uint32, chase bool, smallVMAs int) *Workload {
	w := &Workload{name: name, class: LongRunning, footprint: footprint}
	w.setup = func(w *Workload, k *mimicos.Kernel, pid int) {
		w.bases["data"] = k.Mmap(pid, footprint, mimicos.MmapFlags{Anon: true})
		// Auxiliary allocations (runtime, buffers). BC's census (Fig. 18)
		// is modelled by its large smallVMAs count.
		for i := 0; i < smallVMAs; i++ {
			n := fmt.Sprintf("aux%d", i)
			w.bases[n] = k.Mmap(pid, smallVMASize(p, i), mimicos.MmapFlags{Anon: true})
		}
	}
	w.program = func(w *Workload) []Step {
		data := w.Base("data")
		randOps := uint64(float64(footprint/64) / 2)
		steps := []Step{
			// Build: construct the graph, writing every line (faults on
			// first touch of each page, app-side initialisation after).
			{Kind: StepTouch, Base: data, Size: footprint, Stride: 64, ALUPer: 2, PC: 0x400100},
			// Iterate: sequential frontier scans + irregular neighbour
			// accesses, repeated.
		}
		kind := StepRand
		if chase {
			kind = StepChase
		}
		for it := 0; it < p.LongIters; it++ {
			steps = append(steps,
				Step{Kind: StepSeq, Base: data, Size: footprint / 4, Stride: 64,
					Count: uint64(float64(randOps) * (1 - randFrac)), ALUPer: aluPer, PC: 0x400200},
				Step{Kind: kind, Base: data, Size: footprint,
					Count: uint64(float64(randOps) * randFrac), ALUPer: aluPer, PC: 0x400300},
			)
			// Touch a few auxiliary VMAs each iteration so small-VMA
			// workloads exercise the frontend (Fig. 17's BC effect).
			for i := 0; i < 8 && i < len(w.bases)-1; i++ {
				aux := w.Base(fmt.Sprintf("aux%d", (it*8+i)%max(1, len(w.bases)-1)))
				steps = append(steps, Step{Kind: StepRand, Base: aux, Size: smallVMASize(p, it*8+i),
					Count: randOps / 64, ALUPer: aluPer, PC: 0x400400})
			}
		}
		return steps
	}
	return w
}

// smallVMASize reproduces Fig. 18's BC size distribution: most auxiliary
// VMAs are 4 KB, with a tail up to ~1 GB (scaled).
func smallVMASize(p Params, i int) uint64 {
	switch {
	case i%3 != 0: // ~2/3 of them tiny
		return 4 * mem.KB
	case i%9 == 0:
		return p.sz(8 * mem.MB)
	case i%6 == 0:
		return p.sz(2 * mem.MB)
	default:
		return 256 * mem.KB
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// hpc builds an XSBench/GUPS-style workload: random lookups over big
// tables with little locality.
func hpc(p Params, name string, footprint uint64, aluPer uint32, rmw bool) *Workload {
	w := &Workload{name: name, class: LongRunning, footprint: footprint}
	w.setup = func(w *Workload, k *mimicos.Kernel, pid int) {
		w.bases["data"] = k.Mmap(pid, footprint, mimicos.MmapFlags{Anon: true})
	}
	w.program = func(w *Workload) []Step {
		data := w.Base("data")
		ops := footprint / 64 / 2
		steps := []Step{
			{Kind: StepTouch, Base: data, Size: footprint, Stride: 64, ALUPer: 2, PC: 0x500100},
		}
		for it := 0; it < p.LongIters; it++ {
			steps = append(steps, Step{Kind: StepRand, Base: data, Size: footprint,
				Count: ops, ALUPer: aluPer, Store: rmw, PC: 0x500200})
		}
		return steps
	}
	return w
}

// faas builds a short-running Function-as-a-Service workload: allocate
// working buffers (first touch), a short compute burst, done. Allocation
// dominates (Fig. 1's short-running profile).
func faas(name string, footprint uint64, aluPerTouch uint32, computeOps uint64) *Workload {
	w := &Workload{name: name, class: ShortRunning, footprint: footprint}
	w.setup = func(w *Workload, k *mimicos.Kernel, pid int) {
		w.bases["in"] = k.Mmap(pid, footprint/2, mimicos.MmapFlags{File: true, FileID: 7})
		w.bases["work"] = k.Mmap(pid, footprint, mimicos.MmapFlags{Anon: true})
	}
	w.program = func(w *Workload) []Step {
		in, work := w.Base("in"), w.Base("work")
		return []Step{
			// Read the (page-cached) input.
			{Kind: StepSeq, Base: in, Size: footprint / 2, Stride: 64, Count: footprint / 2 / 64, ALUPer: 2, PC: 0x600100},
			// Allocate and fill the working set: the dominant phase.
			{Kind: StepTouch, Base: work, Size: footprint, Stride: 64, ALUPer: aluPerTouch / 4, PC: 0x600200},
			// Brief compute over the warm data.
			{Kind: StepSeq, Base: work, Size: footprint, Stride: 64, Count: computeOps, ALUPer: 6, PC: 0x600300},
		}
	}
	return w
}

// llm builds an LLM-inference workload (short-input/short-output per
// Table 5): file-backed weights streamed per token plus an anonymous KV
// cache that grows with every generated token — the §7.5 allocation
// stressor.
func llm(name string, weights, kv uint64, tokens int) *Workload {
	w := &Workload{name: name, class: ShortRunning, footprint: weights + kv}
	w.setup = func(w *Workload, k *mimicos.Kernel, pid int) {
		w.bases["weights"] = k.Mmap(pid, weights, mimicos.MmapFlags{File: true, FileID: 11})
		w.bases["kv"] = k.Mmap(pid, kv, mimicos.MmapFlags{Anon: true})
		w.bases["scratch"] = k.Mmap(pid, kv/2, mimicos.MmapFlags{Anon: true})
	}
	w.program = func(w *Workload) []Step {
		wts, kvb, scr := w.Base("weights"), w.Base("kv"), w.Base("scratch")
		perTok := kv / uint64(tokens)
		steps := []Step{
			{Kind: StepTouch, Base: scr, Size: kv / 2, Stride: 64, ALUPer: 2, PC: 0x700050},
		}
		for t := 0; t < tokens; t++ {
			steps = append(steps,
				// Stream a slice of the weights (page-cache backed).
				Step{Kind: StepSeq, Base: wts, Size: weights, Stride: 4 * mem.KB,
					Count: weights / (4 * mem.KB) / uint64(tokens), ALUPer: 24, PC: 0x700100},
				// Extend the KV cache: fresh pages → faults mid-run.
				Step{Kind: StepTouch, Base: kvb + mem.VAddr(uint64(t)*perTok), Size: perTok,
					Stride: 64, ALUPer: 3, PC: 0x700200},
				// Attention over the KV cache so far.
				Step{Kind: StepRand, Base: kvb, Size: perTok * uint64(t+1),
					Count: 256, ALUPer: 16, PC: 0x700300},
			)
		}
		return steps
	}
	return w
}

// image builds a short-running image/array kernel with strided traversal.
func image(name string, footprint uint64, stride uint64, passes int) *Workload {
	w := &Workload{name: name, class: ShortRunning, footprint: footprint}
	w.setup = func(w *Workload, k *mimicos.Kernel, pid int) {
		w.bases["src"] = k.Mmap(pid, footprint, mimicos.MmapFlags{Anon: true})
		w.bases["dst"] = k.Mmap(pid, footprint, mimicos.MmapFlags{Anon: true})
	}
	w.program = func(w *Workload) []Step {
		src, dst := w.Base("src"), w.Base("dst")
		steps := []Step{
			{Kind: StepTouch, Base: src, Size: footprint, Stride: 64, ALUPer: 2, PC: 0x800100},
			{Kind: StepTouch, Base: dst, Size: footprint, Stride: 64, ALUPer: 2, PC: 0x800200},
		}
		for p := 0; p < passes; p++ {
			steps = append(steps,
				Step{Kind: StepSeq, Base: src, Size: footprint, Stride: stride,
					Count: footprint / stride, ALUPer: 4, PC: 0x800300},
				Step{Kind: StepSeq, Base: dst, Size: footprint, Stride: 64,
					Count: footprint / stride, ALUPer: 2, Store: true, PC: 0x800400},
			)
		}
		return steps
	}
	return w
}

// StressWith builds one point of the §2 memory-intensity sweep (Fig. 3)
// with explicit construction parameters: intensity ∈ [0,1] scales both
// footprint and the memory-op share.
func StressWith(level int, maxLevels int, p Params) *Workload {
	p = p.resolve()
	frac := float64(level+1) / float64(maxLevels)
	footprint := p.sz(uint64(4*mem.MB + frac*float64(248*mem.MB)))
	aluPer := uint32(1 + (1-frac)*40)
	w := &Workload{name: fmt.Sprintf("stress-%02d", level), class: LongRunning, footprint: footprint}
	w.setup = func(w *Workload, k *mimicos.Kernel, pid int) {
		w.bases["data"] = k.Mmap(pid, footprint, mimicos.MmapFlags{Anon: true})
	}
	w.program = func(w *Workload) []Step {
		data := w.Base("data")
		return []Step{
			{Kind: StepTouch, Base: data, Size: footprint, Stride: 64, ALUPer: 2, PC: 0x900100},
			{Kind: StepRand, Base: data, Size: footprint, Count: footprint / 256, ALUPer: aluPer, PC: 0x900200},
		}
	}
	return w
}

// Stress is StressWith at the library defaults.
func Stress(level int, maxLevels int) *Workload {
	return StressWith(level, maxLevels, Params{})
}

// Graph suite (GraphBIG, Table 5) -------------------------------------------

// LongSuiteWith returns the long-running suite of Table 5 — the GraphBIG
// benchmarks, XSBench, and GUPS randacc — built with explicit parameters.
func LongSuiteWith(p Params) []*Workload {
	p = p.resolve()
	return []*Workload{
		bc(p), bfs(p), cc(p), gc(p), kc(p), pr(p), rnd(p), sp(p), tc(p), xs(p),
	}
}

// LongSuite is LongSuiteWith at the library defaults.
func LongSuite() []*Workload { return LongSuiteWith(Params{}) }

func bc(p Params) *Workload  { return graph(p, "BC", p.sz(384*mem.MB), 0.75, 4, false, 147) }
func bfs(p Params) *Workload { return graph(p, "BFS", p.sz(320*mem.MB), 0.65, 3, false, 6) }
func cc(p Params) *Workload  { return graph(p, "CC", p.sz(320*mem.MB), 0.6, 4, false, 6) }
func gc(p Params) *Workload  { return graph(p, "GC", p.sz(256*mem.MB), 0.6, 5, false, 6) }
func kc(p Params) *Workload  { return graph(p, "KC", p.sz(256*mem.MB), 0.7, 4, false, 6) }
func pr(p Params) *Workload  { return graph(p, "PR", p.sz(384*mem.MB), 0.55, 6, false, 6) }
func sp(p Params) *Workload  { return graph(p, "SSSP", p.sz(320*mem.MB), 0.8, 3, true, 6) }
func tc(p Params) *Workload  { return graph(p, "TC", p.sz(256*mem.MB), 0.7, 5, false, 6) }
func xs(p Params) *Workload  { return hpc(p, "XS", p.sz(320*mem.MB), 8, false) }
func rnd(p Params) *Workload { return hpc(p, "RND", p.sz(256*mem.MB), 1, true) }

// BC is GraphBIG betweenness centrality: one huge VMA plus ~147 small
// auxiliary VMAs (Fig. 18), highly irregular.
func BC() *Workload { return bc(Params{}.resolve()) }

// BFS is breadth-first search: frontier-driven, moderately irregular.
func BFS() *Workload { return bfs(Params{}.resolve()) }

// CC is connected components.
func CC() *Workload { return cc(Params{}.resolve()) }

// GC is graph coloring.
func GC() *Workload { return gc(Params{}.resolve()) }

// KC is k-core decomposition.
func KC() *Workload { return kc(Params{}.resolve()) }

// PR is PageRank: alternating sequential and random phases.
func PR() *Workload { return pr(Params{}.resolve()) }

// SP is single-source shortest path: pointer-chase heavy (the Fig. 3
// outlier).
func SP() *Workload { return sp(Params{}.resolve()) }

// TC is triangle counting.
func TC() *Workload { return tc(Params{}.resolve()) }

// XS is XSBench, the Monte Carlo neutron-transport kernel.
func XS() *Workload { return xs(Params{}.resolve()) }

// RND is GUPS randacc: random read-modify-writes, the worst-case fault
// and TLB stressor (used for Fig. 11's worst-case overheads).
func RND() *Workload { return rnd(Params{}.resolve()) }

// Mix extras ----------------------------------------------------------------
//
// Extras are workloads outside the Table 5 suites, reachable through
// ByNameWith (and therefore usable in multiprogrammed mixes and on the
// CLI) without changing the suites the paper-reproduction experiments
// iterate over.

func extrasWith(p Params) []*Workload {
	return []*Workload{seqW(p)}
}

// seqW builds "SEQ": a purely sequential streaming scan with high
// spatial locality — the TLB-friendly counterpoint to RND in
// multiprogrammed mixes, where the contrast makes ASID-retention and
// scheduling effects easy to read.
func seqW(p Params) *Workload {
	foot := p.sz(256 * mem.MB)
	w := &Workload{name: "SEQ", class: LongRunning, footprint: foot}
	w.setup = func(w *Workload, k *mimicos.Kernel, pid int) {
		w.bases["data"] = k.Mmap(pid, foot, mimicos.MmapFlags{Anon: true})
	}
	w.program = func(w *Workload) []Step {
		data := w.Base("data")
		steps := []Step{
			{Kind: StepTouch, Base: data, Size: foot, Stride: 64, ALUPer: 2, PC: 0xA00100},
		}
		for it := 0; it < p.LongIters; it++ {
			steps = append(steps, Step{Kind: StepSeq, Base: data, Size: foot, Stride: 64,
				Count: foot / 64 / 2, ALUPer: 4, PC: 0xA00200})
		}
		return steps
	}
	return w
}

// SEQ is the sequential-streaming extra at the library defaults.
func SEQ() *Workload { return seqW(Params{}.resolve()) }

// ExtraSuite returns the mix-extra workloads at the library defaults.
func ExtraSuite() []*Workload { return extrasWith(Params{}.resolve()) }

// MixWith builds one fresh workload per name (suites or extras, same
// forgiving matching as ByNameWith) — the construction path every
// multiprogrammed mix goes through.
func MixWith(names []string, p Params) ([]*Workload, error) {
	ws := make([]*Workload, len(names))
	for i, n := range names {
		w, ok := ByNameWith(n, p)
		if !ok {
			return nil, fmt.Errorf("workloads: unknown workload %q", n)
		}
		ws[i] = w
	}
	return ws, nil
}

// Short-running suite --------------------------------------------------------

// ShortSuiteWith returns the short-running suite of Table 5, built with
// explicit parameters.
func ShortSuiteWith(p Params) []*Workload {
	p = p.resolve()
	return []*Workload{
		jsonW(p), aes(p), imgres(p), wcnt(p), db(p),
		llama(p), bagel(p), mistral(p),
		transp3D(p), hadamard(p), sum2D(p),
	}
}

// ShortSuite is ShortSuiteWith at the library defaults.
func ShortSuite() []*Workload { return ShortSuiteWith(Params{}) }

func jsonW(p Params) *Workload   { return faas("JSON", p.sz(24*mem.MB), 10, 64*1024) }
func aes(p Params) *Workload     { return faas("AES", p.sz(16*mem.MB), 18, 96*1024) }
func imgres(p Params) *Workload  { return faas("IMG-RES", p.sz(32*mem.MB), 8, 128*1024) }
func wcnt(p Params) *Workload    { return faas("WCNT", p.sz(24*mem.MB), 6, 96*1024) }
func db(p Params) *Workload      { return faas("DB", p.sz(32*mem.MB), 7, 128*1024) }
func llama(p Params) *Workload   { return llm("Llama-2-7B", p.sz(96*mem.MB), p.sz(48*mem.MB), 12) }
func bagel(p Params) *Workload   { return llm("Bagel-2.8B", p.sz(48*mem.MB), p.sz(32*mem.MB), 12) }
func mistral(p Params) *Workload { return llm("Mistral-7B", p.sz(96*mem.MB), p.sz(48*mem.MB), 12) }
func transp3D(p Params) *Workload {
	return image("3D-Transp", p.sz(24*mem.MB), 4*mem.KB+64, 2)
}
func hadamard(p Params) *Workload { return image("Hadamard", p.sz(24*mem.MB), 64, 2) }
func sum2D(p Params) *Workload    { return image("2D-Sum", p.sz(16*mem.MB), 64, 2) }

// JSON is FaaS JSON deserialisation.
func JSON() *Workload { return jsonW(Params{}.resolve()) }

// AES is FaaS AES encryption.
func AES() *Workload { return aes(Params{}.resolve()) }

// IMGRES is FaaS image resizing.
func IMGRES() *Workload { return imgres(Params{}.resolve()) }

// WCNT is FaaS word count.
func WCNT() *Workload { return wcnt(Params{}.resolve()) }

// DB is a FaaS database filter query.
func DB() *Workload { return db(Params{}.resolve()) }

// Llama models Llama-2-7B short-prompt inference (llama.cpp).
func Llama() *Workload { return llama(Params{}.resolve()) }

// Bagel models Bagel-2.8B inference.
func Bagel() *Workload { return bagel(Params{}.resolve()) }

// Mistral models Mistral-7B inference.
func Mistral() *Workload { return mistral(Params{}.resolve()) }

// Transp3D is the 3D matrix transposition kernel.
func Transp3D() *Workload { return transp3D(Params{}.resolve()) }

// Hadamard is the 3D Hadamard product.
func Hadamard() *Workload { return hadamard(Params{}.resolve()) }

// Sum2D is the 2D matrix sum.
func Sum2D() *Workload { return sum2D(Params{}.resolve()) }

// ByNameWith returns the named workload from either suite (or the mix
// extras), built with explicit parameters — the race-free lookup
// parallel sweeps use. Lookup is forgiving: it accepts the canonical
// Table 5 name ("BFS"), any case variant ("bfs"), and suite-prefixed
// spellings ("graphbig-bfs").
func ByNameWith(name string, p Params) (*Workload, bool) {
	for _, w := range LongSuiteWith(p) {
		if matchName(w.Name(), name) {
			return w, true
		}
	}
	for _, w := range ShortSuiteWith(p) {
		if matchName(w.Name(), name) {
			return w, true
		}
	}
	for _, w := range extrasWith(p) {
		if matchName(w.Name(), name) {
			return w, true
		}
	}
	return nil, false
}

// suitePrefix maps each canonical workload name (lowercased) to the
// suite-prefixed spelling it may also be requested under.
var suitePrefix = map[string]string{
	"bc": "graphbig-", "bfs": "graphbig-", "cc": "graphbig-",
	"gc": "graphbig-", "kc": "graphbig-", "pr": "graphbig-",
	"sssp": "graphbig-", "tc": "graphbig-",
	"xs": "hpc-", "rnd": "hpc-",
	"json": "faas-", "aes": "faas-", "img-res": "faas-",
	"wcnt": "faas-", "db": "faas-",
	"llama-2-7b": "llm-", "bagel-2.8b": "llm-", "mistral-7b": "llm-",
}

// matchName compares a requested workload name against a canonical one,
// ignoring case and accepting the workload's own suite prefix (so
// "BFS", "bfs", "graphbig-bfs", and "GraphBIG-BFS" all resolve — but a
// wrong-suite spelling like "faas-bfs" stays an error).
func matchName(canonical, requested string) bool {
	can, req := strings.ToLower(canonical), strings.ToLower(requested)
	if can == req {
		return true
	}
	return suitePrefix[can]+can == req
}

// ByName returns the named workload from either suite (or the mix
// extras), built at the library defaults.
func ByName(name string) (*Workload, bool) { return ByNameWith(name, Params{}) }
