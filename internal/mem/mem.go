// Package mem provides the address-space primitives shared by every
// simulator substrate: virtual and physical addresses, page sizes, and
// the access-type tags used to attribute memory traffic (data vs. page
// table vs. translation metadata vs. kernel) throughout the memory
// hierarchy.
package mem

import "fmt"

// VAddr is a virtual address in the simulated application's (or guest's)
// address space.
type VAddr uint64

// PAddr is a physical address in the simulated machine's memory.
type PAddr uint64

// Sizes of common units, in bytes.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30

	CacheLineBytes = 64
	CacheLineShift = 6
)

// PageSize enumerates the x86-64 translation granules MimicOS manages.
type PageSize uint8

const (
	Page4K PageSize = iota
	Page2M
	Page1G
	numPageSizes
)

// NumPageSizes is the number of distinct page sizes.
const NumPageSizes = int(numPageSizes)

// Shift returns log2 of the page size in bytes.
func (s PageSize) Shift() uint {
	switch s {
	case Page4K:
		return 12
	case Page2M:
		return 21
	case Page1G:
		return 30
	}
	panic(fmt.Sprintf("mem: invalid page size %d", s))
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return 1 << s.Shift() }

// Mask returns the offset mask within a page of this size.
func (s PageSize) Mask() uint64 { return s.Bytes() - 1 }

func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return fmt.Sprintf("PageSize(%d)", uint8(s))
}

// VPN returns the virtual page number of va at page size s.
func (s PageSize) VPN(va VAddr) uint64 { return uint64(va) >> s.Shift() }

// PFN returns the physical frame number of pa at page size s.
func (s PageSize) PFN(pa PAddr) uint64 { return uint64(pa) >> s.Shift() }

// PageBase returns the base virtual address of the page containing va.
func (s PageSize) PageBase(va VAddr) VAddr { return va &^ VAddr(s.Mask()) }

// FrameBase returns the base physical address of the frame containing pa.
func (s PageSize) FrameBase(pa PAddr) PAddr { return pa &^ PAddr(s.Mask()) }

// Offset returns the offset of va within its page.
func (s PageSize) Offset(va VAddr) uint64 { return uint64(va) & s.Mask() }

// Translate combines a frame base with the page offset of va.
func (s PageSize) Translate(frame PAddr, va VAddr) PAddr {
	return s.FrameBase(frame) | PAddr(s.Offset(va))
}

// AccessType attributes a memory access to its architectural origin so the
// DRAM model can report, e.g., row-buffer conflicts caused by page-table
// accesses separately from those caused by application data (Figs. 14, 21).
type AccessType uint8

const (
	// ATData is an application data access.
	ATData AccessType = iota
	// ATPTE is a page-table (or hash-table translation structure) access
	// performed by a hardware walker.
	ATPTE
	// ATTransMeta is an access to auxiliary translation metadata: range
	// tables (RMM), RestSeg virtual tags (Utopia), VMA trees (Midgard).
	ATTransMeta
	// ATKernel is an access performed by injected MimicOS instructions.
	ATKernel
	// ATInstr is an instruction fetch.
	ATInstr
	numAccessTypes
)

// NumAccessTypes is the number of distinct access-type tags.
const NumAccessTypes = int(numAccessTypes)

func (t AccessType) String() string {
	switch t {
	case ATData:
		return "data"
	case ATPTE:
		return "pte"
	case ATTransMeta:
		return "transmeta"
	case ATKernel:
		return "kernel"
	case ATInstr:
		return "instr"
	}
	return fmt.Sprintf("AccessType(%d)", uint8(t))
}

// Line returns the cache-line-aligned address of a.
func Line(a PAddr) PAddr { return a &^ (CacheLineBytes - 1) }

// AlignUp rounds v up to the next multiple of align (a power of two).
func AlignUp(v, align uint64) uint64 { return (v + align - 1) &^ (align - 1) }

// AlignDown rounds v down to a multiple of align (a power of two).
func AlignDown(v, align uint64) uint64 { return v &^ (align - 1) }
