package tlb

import "repro/internal/mem"

// RangeEntry caches one contiguous virtual-to-physical range translation
// (RMM's redundant memory mappings / Midgard's VMA translations): any VA
// in [VStart, VEnd) maps to PBase + (va - VStart).
type RangeEntry struct {
	VStart mem.VAddr
	VEnd   mem.VAddr
	PBase  mem.PAddr
	ASID   uint16
}

// Translate applies the range mapping to va.
func (e RangeEntry) Translate(va mem.VAddr) mem.PAddr {
	return e.PBase + mem.PAddr(va-e.VStart)
}

// Contains reports whether va falls in the range.
func (e RangeEntry) Contains(va mem.VAddr) bool { return va >= e.VStart && va < e.VEnd }

// RangeTLB is a fully associative cache of range translations: the
// 64-entry range lookaside buffer (RLB) of RMM (Table 4: 9-cycle, probed
// in parallel with the L2 TLB) and the VMA lookaside buffers (VLBs) of
// Midgard reuse this structure.
type RangeTLB struct {
	name    string
	entries int
	latency uint64
	lines   []rangeLine
	tick    uint64
	stats   Stats
}

type rangeLine struct {
	e     RangeEntry
	valid bool
	lru   uint64
}

// NewRangeTLB builds a fully associative range TLB.
func NewRangeTLB(name string, entries int, latency uint64) *RangeTLB {
	return &RangeTLB{name: name, entries: entries, latency: latency, lines: make([]rangeLine, entries)}
}

// Name returns the structure's name.
func (t *RangeTLB) Name() string { return t.name }

// Latency returns the lookup latency in cycles.
func (t *RangeTLB) Latency() uint64 { return t.latency }

// Stats returns accumulated statistics.
func (t *RangeTLB) Stats() *Stats { return &t.stats }

// Lookup returns the range covering va.
func (t *RangeTLB) Lookup(va mem.VAddr, asid uint16) (RangeEntry, bool) {
	t.tick++
	for i := range t.lines {
		ln := &t.lines[i]
		if ln.valid && ln.e.ASID == asid && ln.e.Contains(va) {
			ln.lru = t.tick
			t.stats.Hits++
			return ln.e, true
		}
	}
	t.stats.Misses++
	return RangeEntry{}, false
}

// Insert fills a range entry (LRU replacement).
func (t *RangeTLB) Insert(e RangeEntry) {
	t.tick++
	t.stats.Fills++
	victim := 0
	oldest := ^uint64(0)
	for i := range t.lines {
		ln := &t.lines[i]
		if ln.valid && ln.e.ASID == e.ASID && ln.e.VStart == e.VStart && ln.e.VEnd == e.VEnd {
			ln.e = e
			ln.lru = t.tick
			return
		}
		if !ln.valid {
			victim = i
			oldest = 0
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victim = i
		}
	}
	t.lines[victim] = rangeLine{e: e, valid: true, lru: t.tick}
}

// InvalidateOverlap drops ranges overlapping [start, end).
func (t *RangeTLB) InvalidateOverlap(start, end mem.VAddr, asid uint16) {
	for i := range t.lines {
		ln := &t.lines[i]
		if ln.valid && ln.e.ASID == asid && ln.e.VStart < end && start < ln.e.VEnd {
			ln.valid = false
			t.stats.Shootdowns++
		}
	}
}

// InvalidateAll flushes the structure.
func (t *RangeTLB) InvalidateAll() {
	for i := range t.lines {
		t.lines[i].valid = false
	}
}

// MetaCache is a small fully associative presence cache over opaque
// 64-bit keys; Utopia's TAR and SF caches and ECH's cuckoo-walk caches
// are instances.
type MetaCache struct {
	name    string
	entries int
	latency uint64
	keys    []metaLine
	tick    uint64
	stats   Stats
}

type metaLine struct {
	key   uint64
	val   uint64
	valid bool
	lru   uint64
}

// NewMetaCache builds a metadata cache with the given entry count.
func NewMetaCache(name string, entries int, latency uint64) *MetaCache {
	return &MetaCache{name: name, entries: entries, latency: latency, keys: make([]metaLine, entries)}
}

// Latency returns the lookup latency.
func (c *MetaCache) Latency() uint64 { return c.latency }

// Stats returns accumulated statistics.
func (c *MetaCache) Stats() *Stats { return &c.stats }

// Lookup returns the cached value for key.
func (c *MetaCache) Lookup(key uint64) (uint64, bool) {
	c.tick++
	for i := range c.keys {
		ln := &c.keys[i]
		if ln.valid && ln.key == key {
			ln.lru = c.tick
			c.stats.Hits++
			return ln.val, true
		}
	}
	c.stats.Misses++
	return 0, false
}

// Insert caches key → val.
func (c *MetaCache) Insert(key, val uint64) {
	c.tick++
	c.stats.Fills++
	victim := 0
	oldest := ^uint64(0)
	for i := range c.keys {
		ln := &c.keys[i]
		if ln.valid && ln.key == key {
			ln.val = val
			ln.lru = c.tick
			return
		}
		if !ln.valid {
			victim = i
			oldest = 0
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victim = i
		}
	}
	c.keys[victim] = metaLine{key: key, val: val, valid: true, lru: c.tick}
}

// Invalidate drops key if present.
func (c *MetaCache) Invalidate(key uint64) {
	for i := range c.keys {
		if c.keys[i].valid && c.keys[i].key == key {
			c.keys[i].valid = false
		}
	}
}
