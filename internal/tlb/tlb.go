// Package tlb implements the translation-caching hardware structures of
// the MMU designs in Table 2/Table 4: multi-page-size set-associative
// TLBs, page-walk caches, the range lookaside buffer of RMM, the VMA
// lookaside buffers of Midgard, and small generic metadata caches (used
// for Utopia's TAR/SF caches and ECH's cuckoo-walk caches).
package tlb

import (
	"repro/internal/mem"
)

// Entry is one cached translation.
type Entry struct {
	VPN   uint64
	Size  mem.PageSize
	Frame mem.PAddr
	ASID  uint16
}

// Stats counts TLB activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Shootdowns uint64
}

// HitRate returns the hit fraction.
func (s *Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type tlbLine struct {
	e     Entry
	valid bool
	lru   uint64
}

// TLB is a set-associative translation lookaside buffer. It may hold a
// single page size (L1 DTLBs in Table 4 are split per size) or multiple
// (the unified 2048-entry L2 STLB); lookups probe each supported size.
type TLB struct {
	name    string
	sets    int
	ways    int
	latency uint64
	sizes   []mem.PageSize
	lines   []tlbLine
	tick    uint64
	stats   Stats
}

// New builds a TLB with the given total entries and associativity
// supporting the listed page sizes.
func New(name string, entries, ways int, latency uint64, sizes ...mem.PageSize) *TLB {
	if len(sizes) == 0 {
		sizes = []mem.PageSize{mem.Page4K}
	}
	sets := entries / ways
	if sets == 0 || entries%ways != 0 {
		panic("tlb: bad geometry " + name)
	}
	return &TLB{
		name:    name,
		sets:    sets,
		ways:    ways,
		latency: latency,
		sizes:   sizes,
		lines:   make([]tlbLine, entries),
	}
}

// Name returns the TLB's name.
func (t *TLB) Name() string { return t.name }

// Latency returns the lookup latency in cycles.
func (t *TLB) Latency() uint64 { return t.latency }

// Stats returns the accumulated statistics.
func (t *TLB) Stats() *Stats { return &t.stats }

// Entries returns the capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

func (t *TLB) setOf(vpn uint64) int { return int(vpn % uint64(t.sets)) }

// Lookup probes the TLB for va and returns the matching entry.
func (t *TLB) Lookup(va mem.VAddr, asid uint16) (Entry, bool) {
	t.tick++
	for _, ps := range t.sizes {
		vpn := ps.VPN(va)
		base := t.setOf(vpn) * t.ways
		for w := 0; w < t.ways; w++ {
			ln := &t.lines[base+w]
			if ln.valid && ln.e.VPN == vpn && ln.e.Size == ps && ln.e.ASID == asid {
				ln.lru = t.tick
				t.stats.Hits++
				return ln.e, true
			}
		}
	}
	t.stats.Misses++
	return Entry{}, false
}

// Probe checks presence without updating stats or recency.
func (t *TLB) Probe(va mem.VAddr, asid uint16) bool {
	for _, ps := range t.sizes {
		vpn := ps.VPN(va)
		base := t.setOf(vpn) * t.ways
		for w := 0; w < t.ways; w++ {
			ln := &t.lines[base+w]
			if ln.valid && ln.e.VPN == vpn && ln.e.Size == ps && ln.e.ASID == asid {
				return true
			}
		}
	}
	return false
}

// Supports reports whether the TLB can hold entries of page size ps.
func (t *TLB) Supports(ps mem.PageSize) bool {
	for _, s := range t.sizes {
		if s == ps {
			return true
		}
	}
	return false
}

// Insert fills an entry (LRU replacement within the set).
func (t *TLB) Insert(e Entry) {
	if !t.Supports(e.Size) {
		return
	}
	t.tick++
	t.stats.Fills++
	base := t.setOf(e.VPN) * t.ways
	victim := base
	oldest := ^uint64(0)
	for w := 0; w < t.ways; w++ {
		ln := &t.lines[base+w]
		if ln.valid && ln.e.VPN == e.VPN && ln.e.Size == e.Size && ln.e.ASID == e.ASID {
			ln.e = e
			ln.lru = t.tick
			return
		}
		if !ln.valid {
			victim = base + w
			oldest = 0
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victim = base + w
		}
	}
	t.lines[victim] = tlbLine{e: e, valid: true, lru: t.tick}
}

// InvalidateVA drops any entry translating va (TLB shootdown).
func (t *TLB) InvalidateVA(va mem.VAddr, asid uint16) {
	for _, ps := range t.sizes {
		vpn := ps.VPN(va)
		base := t.setOf(vpn) * t.ways
		for w := 0; w < t.ways; w++ {
			ln := &t.lines[base+w]
			if ln.valid && ln.e.VPN == vpn && ln.e.Size == ps && ln.e.ASID == asid {
				ln.valid = false
				t.stats.Shootdowns++
			}
		}
	}
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.lines {
		t.lines[i].valid = false
	}
	t.stats.Shootdowns++
}

// InvalidateASID drops every entry tagged with asid — the ASID-wide
// shootdown issued when a process exits (or its ASID is about to be
// recycled). Entries of other address spaces are retained.
func (t *TLB) InvalidateASID(asid uint16) {
	dropped := false
	for i := range t.lines {
		ln := &t.lines[i]
		if ln.valid && ln.e.ASID == asid {
			ln.valid = false
			dropped = true
		}
	}
	if dropped {
		t.stats.Shootdowns++
	}
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for i := range t.lines {
		if t.lines[i].valid {
			n++
		}
	}
	return n
}

// OccupancyASID returns the number of valid entries tagged with asid.
func (t *TLB) OccupancyASID(asid uint16) int {
	n := 0
	for i := range t.lines {
		if t.lines[i].valid && t.lines[i].e.ASID == asid {
			n++
		}
	}
	return n
}
