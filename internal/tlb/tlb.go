// Package tlb implements the translation-caching hardware structures of
// the MMU designs in Table 2/Table 4: multi-page-size set-associative
// TLBs, page-walk caches, the range lookaside buffer of RMM, the VMA
// lookaside buffers of Midgard, and small generic metadata caches (used
// for Utopia's TAR/SF caches and ECH's cuckoo-walk caches).
package tlb

import (
	"repro/internal/mem"
	"repro/internal/recycle"
)

// Entry is one cached translation.
type Entry struct {
	VPN   uint64
	Size  mem.PageSize
	Frame mem.PAddr
	ASID  uint16
}

// Stats counts TLB activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Shootdowns uint64
}

// HitRate returns the hit fraction.
func (s *Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// TLB is a set-associative translation lookaside buffer. It may hold a
// single page size (L1 DTLBs in Table 4 are split per size) or multiple
// (the unified 2048-entry L2 STLB); lookups probe each supported size.
//
// Entries are stored structure-of-arrays so the way scan in Lookup —
// the hottest loop in the simulator after the cache scans — walks
// densely packed words: vpns holds the virtual page number, metas packs
// valid | size | ASID into one comparable uint32, and frames/lru hold
// the translation and recency state touched only on a hit.
type TLB struct {
	name    string
	sets    int
	ways    int
	latency uint64
	sizes   []mem.PageSize
	vpns    []uint64
	metas   []uint32 // asid<<8 | size<<1 | valid
	frames  []mem.PAddr
	lru     []uint64
	tick    uint64
	stats   Stats
}

func packMeta(asid uint16, ps mem.PageSize) uint32 {
	return uint32(asid)<<8 | uint32(ps)<<1 | 1
}

// New builds a TLB with the given total entries and associativity
// supporting the listed page sizes.
func New(name string, entries, ways int, latency uint64, sizes ...mem.PageSize) *TLB {
	return NewWith(nil, name, entries, ways, latency, sizes...)
}

// NewWith is New drawing the SoA entry arrays from pool (nil pool =
// plain New).
func NewWith(pool *recycle.Pool, name string, entries, ways int, latency uint64, sizes ...mem.PageSize) *TLB {
	if len(sizes) == 0 {
		sizes = []mem.PageSize{mem.Page4K}
	}
	sets := entries / ways
	if sets == 0 || entries%ways != 0 {
		panic("tlb: bad geometry " + name)
	}
	return &TLB{
		name:    name,
		sets:    sets,
		ways:    ways,
		latency: latency,
		sizes:   sizes,
		vpns:    pool.Uint64s(entries),
		metas:   pool.Uint32s(entries),
		frames:  pool.PAddrs(entries),
		lru:     pool.Uint64s(entries),
	}
}

// Recycle hands the entry arrays back to pool; the TLB must not be
// used afterwards.
func (t *TLB) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	pool.PutUint64s(t.vpns)
	pool.PutUint32s(t.metas)
	pool.PutPAddrs(t.frames)
	pool.PutUint64s(t.lru)
	t.vpns, t.metas, t.frames, t.lru = nil, nil, nil, nil
}

// Name returns the TLB's name.
func (t *TLB) Name() string { return t.name }

// Latency returns the lookup latency in cycles.
func (t *TLB) Latency() uint64 { return t.latency }

// Stats returns the accumulated statistics.
func (t *TLB) Stats() *Stats { return &t.stats }

// Entries returns the capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

func (t *TLB) setOf(vpn uint64) int { return int(vpn % uint64(t.sets)) }

// Lookup probes the TLB for va and returns the matching entry.
func (t *TLB) Lookup(va mem.VAddr, asid uint16) (Entry, bool) {
	t.tick++
	for _, ps := range t.sizes {
		vpn := ps.VPN(va)
		base := t.setOf(vpn) * t.ways
		want := packMeta(asid, ps)
		for w := base; w < base+t.ways; w++ {
			if t.vpns[w] == vpn && t.metas[w] == want {
				t.lru[w] = t.tick
				t.stats.Hits++
				return Entry{VPN: vpn, Size: ps, Frame: t.frames[w], ASID: asid}, true
			}
		}
	}
	t.stats.Misses++
	return Entry{}, false
}

// Probe checks presence without updating stats or recency.
func (t *TLB) Probe(va mem.VAddr, asid uint16) bool {
	for _, ps := range t.sizes {
		vpn := ps.VPN(va)
		base := t.setOf(vpn) * t.ways
		want := packMeta(asid, ps)
		for w := base; w < base+t.ways; w++ {
			if t.vpns[w] == vpn && t.metas[w] == want {
				return true
			}
		}
	}
	return false
}

// Supports reports whether the TLB can hold entries of page size ps.
func (t *TLB) Supports(ps mem.PageSize) bool {
	for _, s := range t.sizes {
		if s == ps {
			return true
		}
	}
	return false
}

// Insert fills an entry (LRU replacement within the set).
func (t *TLB) Insert(e Entry) {
	if !t.Supports(e.Size) {
		return
	}
	t.tick++
	t.stats.Fills++
	base := t.setOf(e.VPN) * t.ways
	want := packMeta(e.ASID, e.Size)
	victim := base
	oldest := ^uint64(0)
	for w := base; w < base+t.ways; w++ {
		if t.metas[w]&1 == 0 {
			victim = w
			break
		}
		if t.vpns[w] == e.VPN && t.metas[w] == want {
			t.frames[w] = e.Frame
			t.lru[w] = t.tick
			return
		}
		if t.lru[w] < oldest {
			oldest = t.lru[w]
			victim = w
		}
	}
	t.vpns[victim] = e.VPN
	t.metas[victim] = want
	t.frames[victim] = e.Frame
	t.lru[victim] = t.tick
}

// InvalidateVA drops any entry translating va (TLB shootdown).
func (t *TLB) InvalidateVA(va mem.VAddr, asid uint16) {
	for _, ps := range t.sizes {
		vpn := ps.VPN(va)
		base := t.setOf(vpn) * t.ways
		want := packMeta(asid, ps)
		for w := base; w < base+t.ways; w++ {
			if t.vpns[w] == vpn && t.metas[w] == want {
				t.metas[w] = 0
				t.stats.Shootdowns++
			}
		}
	}
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.metas {
		t.metas[i] = 0
	}
	t.stats.Shootdowns++
}

// InvalidateASID drops every entry tagged with asid — the ASID-wide
// shootdown issued when a process exits (or its ASID is about to be
// recycled). Entries of other address spaces are retained.
func (t *TLB) InvalidateASID(asid uint16) {
	dropped := false
	for i := range t.metas {
		if t.metas[i]&1 == 1 && t.metas[i]>>8 == uint32(asid) {
			t.metas[i] = 0
			dropped = true
		}
	}
	if dropped {
		t.stats.Shootdowns++
	}
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for i := range t.metas {
		if t.metas[i]&1 == 1 {
			n++
		}
	}
	return n
}

// OccupancyASID returns the number of valid entries tagged with asid.
func (t *TLB) OccupancyASID(asid uint16) int {
	n := 0
	for i := range t.metas {
		if t.metas[i]&1 == 1 && t.metas[i]>>8 == uint32(asid) {
			n++
		}
	}
	return n
}
