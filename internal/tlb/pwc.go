package tlb

import "repro/internal/mem"

// PWC is a page-walk cache for one radix level (Table 4: three 32-entry
// 4-way PWCs): it maps the upper VA bits consumed up to a level to the
// physical address of the next-level node, letting the walker skip the
// upper accesses of a walk (Barr et al., "Translation Caching").
type PWC struct {
	level   int // the radix level whose *node pointer* this caches (3, 2, 1)
	sets    int
	ways    int
	latency uint64
	lines   []pwcLine
	tick    uint64
	stats   Stats
}

type pwcLine struct {
	tag   uint64
	node  mem.PAddr
	valid bool
	lru   uint64
}

// NewPWC builds a PWC caching pointers to nodes at the given depth below
// the root (1 = PDPT pointers, 2 = PD pointers, 3 = PT pointers).
func NewPWC(level, entries, ways int, latency uint64) *PWC {
	return &PWC{
		level:   level,
		sets:    entries / ways,
		ways:    ways,
		latency: latency,
		lines:   make([]pwcLine, entries),
	}
}

// Latency returns the PWC access latency.
func (p *PWC) Latency() uint64 { return p.latency }

// Stats returns the accumulated statistics.
func (p *PWC) Stats() *Stats { return &p.stats }

// tagOf extracts the VA bits that identify a node at this PWC's depth:
// depth 1 uses VA[47:39], depth 2 VA[47:30], depth 3 VA[47:21].
func (p *PWC) tagOf(va mem.VAddr) uint64 {
	shift := uint(39 - 9*(p.level-1))
	return uint64(va) >> shift
}

// Lookup returns the cached node pointer for va's path at this depth.
func (p *PWC) Lookup(va mem.VAddr) (mem.PAddr, bool) {
	p.tick++
	tag := p.tagOf(va)
	base := int(tag%uint64(p.sets)) * p.ways
	for w := 0; w < p.ways; w++ {
		ln := &p.lines[base+w]
		if ln.valid && ln.tag == tag {
			ln.lru = p.tick
			p.stats.Hits++
			return ln.node, true
		}
	}
	p.stats.Misses++
	return 0, false
}

// Insert caches the node pointer for va's path.
func (p *PWC) Insert(va mem.VAddr, node mem.PAddr) {
	p.tick++
	p.stats.Fills++
	tag := p.tagOf(va)
	base := int(tag%uint64(p.sets)) * p.ways
	victim := base
	oldest := ^uint64(0)
	for w := 0; w < p.ways; w++ {
		ln := &p.lines[base+w]
		if ln.valid && ln.tag == tag {
			ln.node = node
			ln.lru = p.tick
			return
		}
		if !ln.valid {
			victim = base + w
			oldest = 0
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victim = base + w
		}
	}
	p.lines[victim] = pwcLine{tag: tag, node: node, valid: true, lru: p.tick}
}

// InvalidateAll flushes the PWC.
func (p *PWC) InvalidateAll() {
	for i := range p.lines {
		p.lines[i].valid = false
	}
}
