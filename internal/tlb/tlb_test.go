package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestTLBHitMiss(t *testing.T) {
	tl := New("t", 16, 4, 1, mem.Page4K)
	va := mem.VAddr(0x1000)
	if _, ok := tl.Lookup(va, 1); ok {
		t.Fatal("hit on empty TLB")
	}
	tl.Insert(Entry{VPN: mem.Page4K.VPN(va), Size: mem.Page4K, Frame: 0x9000, ASID: 1})
	e, ok := tl.Lookup(va, 1)
	if !ok || e.Frame != 0x9000 {
		t.Fatalf("lookup = %+v %v", e, ok)
	}
	// Different ASID must miss (no global pages here).
	if _, ok := tl.Lookup(va, 2); ok {
		t.Fatal("cross-ASID hit")
	}
	if tl.Stats().Hits != 1 || tl.Stats().Misses != 2 {
		t.Fatalf("stats = %+v", tl.Stats())
	}
}

func TestTLBMultiPageSize(t *testing.T) {
	tl := New("t", 32, 4, 12, mem.Page4K, mem.Page2M)
	base := mem.VAddr(0x40000000)
	tl.Insert(Entry{VPN: mem.Page2M.VPN(base), Size: mem.Page2M, Frame: 0x8000000, ASID: 1})
	e, ok := tl.Lookup(base+0x123456, 1)
	if !ok || e.Size != mem.Page2M {
		t.Fatalf("2M lookup inside page failed: %+v %v", e, ok)
	}
	// A 1G insert must be rejected (unsupported size).
	tl.Insert(Entry{VPN: 1, Size: mem.Page1G, Frame: 0, ASID: 1})
	if tl.Occupancy() != 1 {
		t.Fatalf("unsupported size was inserted: occ=%d", tl.Occupancy())
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	// Direct-mapped-by-set with 2 ways: fill a set with 3 entries
	// mapping to it; the least recently used must be evicted.
	tl := New("t", 8, 2, 1, mem.Page4K) // 4 sets
	mk := func(i uint64) Entry {
		return Entry{VPN: i * 4, Size: mem.Page4K, ASID: 1} // all map to set 0
	}
	tl.Insert(mk(1))
	tl.Insert(mk(2))
	tl.Lookup(mem.VAddr(1*4)<<12, 1) // touch 1 → 2 becomes LRU
	tl.Insert(mk(3))                 // evicts 2
	if _, ok := tl.Lookup(mem.VAddr(2*4)<<12, 1); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := tl.Lookup(mem.VAddr(1*4)<<12, 1); !ok {
		t.Fatal("MRU entry evicted")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tl := New("t", 16, 4, 1, mem.Page4K)
	va := mem.VAddr(0x2000)
	tl.Insert(Entry{VPN: mem.Page4K.VPN(va), Size: mem.Page4K, ASID: 3})
	tl.InvalidateVA(va, 3)
	if _, ok := tl.Lookup(va, 3); ok {
		t.Fatal("entry survived shootdown")
	}
}

func TestPWC(t *testing.T) {
	p := NewPWC(1, 8, 2, 2)
	va := mem.VAddr(0x7f12_3456_7000)
	if _, ok := p.Lookup(va); ok {
		t.Fatal("hit on empty PWC")
	}
	p.Insert(va, 0xAAA000)
	node, ok := p.Lookup(va)
	if !ok || node != 0xAAA000 {
		t.Fatalf("pwc lookup = %x %v", node, ok)
	}
	// Depth-1 tags cover 512GB regions: a nearby address shares the tag.
	if _, ok := p.Lookup(va + 0x1000_0000); !ok {
		t.Fatal("same-region lookup missed")
	}
}

func TestRangeTLB(t *testing.T) {
	r := NewRangeTLB("rlb", 4, 9)
	e := RangeEntry{VStart: 0x10000, VEnd: 0x50000, PBase: 0x900000, ASID: 1}
	r.Insert(e)
	got, ok := r.Lookup(0x23456, 1)
	if !ok {
		t.Fatal("range lookup missed")
	}
	if pa := got.Translate(0x23456); pa != 0x900000+(0x23456-0x10000) {
		t.Fatalf("translate = %x", pa)
	}
	if _, ok := r.Lookup(0x50000, 1); ok {
		t.Fatal("end of range is exclusive")
	}
	r.InvalidateOverlap(0x20000, 0x21000, 1)
	if _, ok := r.Lookup(0x23456, 1); ok {
		t.Fatal("overlap invalidation failed")
	}
}

func TestRangeTLBReplacement(t *testing.T) {
	r := NewRangeTLB("rlb", 2, 9)
	for i := 0; i < 3; i++ {
		base := mem.VAddr(i) * 0x100000
		r.Insert(RangeEntry{VStart: base, VEnd: base + 0x1000, ASID: 1})
	}
	// Entry 0 is the oldest; must be gone.
	if _, ok := r.Lookup(0x0, 1); ok {
		t.Fatal("LRU range not evicted")
	}
	if _, ok := r.Lookup(0x200000, 1); !ok {
		t.Fatal("newest range missing")
	}
}

func TestMetaCache(t *testing.T) {
	c := NewMetaCache("tar", 4, 2)
	c.Insert(42, 7)
	v, ok := c.Lookup(42)
	if !ok || v != 7 {
		t.Fatalf("lookup = %d %v", v, ok)
	}
	c.Invalidate(42)
	if _, ok := c.Lookup(42); ok {
		t.Fatal("invalidate failed")
	}
}

// TestQuickTLBNeverWrongTranslation: whatever the insert sequence, a hit
// must return exactly the last entry inserted for that (VPN, size, ASID).
func TestQuickTLBNeverWrongTranslation(t *testing.T) {
	f := func(pages []uint8) bool {
		tl := New("q", 16, 4, 1, mem.Page4K)
		last := map[uint64]mem.PAddr{}
		for i, p := range pages {
			vpn := uint64(p % 64)
			frame := mem.PAddr(i+1) << 12
			tl.Insert(Entry{VPN: vpn, Size: mem.Page4K, Frame: frame, ASID: 1})
			last[vpn] = frame
		}
		for vpn, want := range last {
			if e, ok := tl.Lookup(mem.VAddr(vpn<<12), 1); ok && e.Frame != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
