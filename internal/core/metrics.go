package core

import (
	"runtime"
	"time"

	"repro/internal/dram"
	"repro/internal/mimicos"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/tier"
)

// Metrics is the result of one simulation run — the raw material of
// every figure in the evaluation.
type Metrics struct {
	Workload string
	Design   string
	Policy   string
	Mode     Mode

	AppInsts    uint64
	KernelInsts uint64
	Cycles      uint64
	IPC         float64

	TranslationCycles uint64
	MemoryCycles      uint64
	FaultCycles       uint64
	DelayCycles       uint64
	CtxSwitchCycles   uint64 // scheduler switch cost (multiprogrammed runs)

	L2TLBMisses uint64
	L2TLBMPKI   float64
	Walks       uint64
	AvgPTWLat   float64
	WalkCycles  uint64

	FrontendCycles uint64 // Midgard frontend share (Fig. 17)
	BackendCycles  uint64

	MinorFaults uint64
	MajorFaults uint64
	Segvs       uint64

	// PFLatNs is the per-minor-fault latency series in nanoseconds (nil
	// unless tracked); MajorPFLatNs covers device-backed faults.
	PFLatNs      *stats.Series
	MajorPFLatNs *stats.Series

	SwapDeviceCycles uint64 // engine-observed fault device time
	OS               mimicos.Stats
	Dram             dram.Stats
	// Tiers holds the per-tier migration counters (nil without slow
	// tiers configured); SwapDev is the swap device's own view of its
	// traffic (reads/writes, queueing, busy time) when a disk is attached.
	Tiers   []tier.Stats `json:",omitempty"`
	SwapDev ssd.Stats

	StreamedKernelInsts uint64
	FunctionalMessages  uint64

	WallTime     time.Duration
	SimHeapBytes uint64
}

// TranslationFraction returns translation cycles / total cycles (Fig. 1).
func (m *Metrics) TranslationFraction() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.TranslationCycles) / float64(m.Cycles)
}

// AllocationFraction returns page-fault-handler cycles / total cycles
// (Fig. 1's "physical memory allocation").
func (m *Metrics) AllocationFraction() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.FaultCycles) / float64(m.Cycles)
}

// KernelInstFraction returns the share of simulated instructions executed
// by MimicOS (Fig. 12's x-axis).
func (m *Metrics) KernelInstFraction() float64 {
	t := m.AppInsts + m.KernelInsts
	if t == 0 {
		return 0
	}
	return float64(m.KernelInsts) / float64(t)
}

func (s *System) collect(name string, wall time.Duration, before, after runtime.MemStats) Metrics {
	cs := s.Core.Stats()
	ms := s.MMU.Stats()
	os := *s.OS.Stats()
	ds := *s.Dram.Stats()

	m := Metrics{
		Workload: name,
		Design:   string(s.Cfg.Design),
		Policy:   s.OS.Policy().Name(),
		Mode:     s.Cfg.Mode,

		AppInsts:    cs.AppInsts,
		KernelInsts: cs.KernelInsts,
		Cycles:      cs.Cycles,
		IPC:         cs.IPC(),

		TranslationCycles: cs.TranslationCycles,
		MemoryCycles:      cs.MemoryCycles,
		FaultCycles:       cs.FaultCycles,
		DelayCycles:       cs.DelayCycles,
		CtxSwitchCycles:   cs.CtxSwitchCycles,

		L2TLBMisses: ms.L2TLBMisses,
		Walks:       ms.Walks,
		AvgPTWLat:   ms.AvgWalkLatency(),
		WalkCycles:  ms.WalkCycles,

		FrontendCycles: ms.FrontendCycles,
		BackendCycles:  ms.BackendCycles,

		MinorFaults: os.MinorFaults,
		MajorFaults: os.MajorFaults,
		Segvs:       s.segvs + cs.SegvFaults,

		PFLatNs:      s.PFLatNs,
		MajorPFLatNs: s.MajorPFLatNs,

		SwapDeviceCycles: s.swapDeviceCycles,
		OS:               os,
		Dram:             ds,
		Tiers:            s.OS.TierStats(),

		StreamedKernelInsts: s.StreamChan.Insts,
		FunctionalMessages:  s.FuncChan.Messages,

		WallTime: wall,
	}
	if s.Disk != nil {
		m.SwapDev = *s.Disk.Stats()
	}
	if cs.AppInsts > 0 {
		m.L2TLBMPKI = float64(ms.L2TLBMisses) / float64(cs.AppInsts) * 1000
	}
	if after.HeapAlloc > before.HeapAlloc {
		m.SimHeapBytes = after.HeapAlloc - before.HeapAlloc
	}
	return m
}
