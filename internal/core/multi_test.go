package core

import (
	"encoding/json"
	"testing"

	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/workloads"
)

// mixFor builds the catalog workloads of a mix with explicit params.
func mixFor(t testing.TB, p workloads.Params, names ...string) []*workloads.Workload {
	t.Helper()
	ws := make([]*workloads.Workload, len(names))
	for i, n := range names {
		ws[i] = byName(t, n, p)
	}
	return ws
}

func TestRunMultiCompletesMix(t *testing.T) {
	tiny := workloads.Params{Scale: 0.05}
	s := smallSystem(t, func(c *Config) { c.MaxAppInsts = 150_000 })
	mm, err := s.RunMulti(mixFor(t, tiny, "RND", "SEQ"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(mm.Procs); got != 2 {
		t.Fatalf("got %d process results, want 2", got)
	}
	if mm.Aggregate.Workload != "RND+SEQ" {
		t.Errorf("aggregate workload = %q, want RND+SEQ", mm.Aggregate.Workload)
	}
	if mm.ContextSwitches == 0 {
		t.Error("no context switches in a 2-process run")
	}
	if mm.Aggregate.CtxSwitchCycles == 0 {
		t.Error("context switches charged no cycles")
	}
	var appSum uint64
	for _, pm := range mm.Procs {
		if !pm.Finished {
			t.Errorf("process %d (%s) did not finish", pm.PID, pm.Workload)
		}
		if pm.AppInsts == 0 || pm.Cycles == 0 || pm.Slices == 0 {
			t.Errorf("process %d: empty accounting %+v", pm.PID, pm)
		}
		if pm.OS.MinorFaults == 0 {
			t.Errorf("process %d: no attributed minor faults", pm.PID)
		}
		if pm.OS.SegvFaults != 0 {
			t.Errorf("process %d: %d segvs", pm.PID, pm.OS.SegvFaults)
		}
		appSum += pm.AppInsts
	}
	if appSum != mm.Aggregate.AppInsts {
		t.Errorf("per-process AppInsts sum %d != aggregate %d", appSum, mm.Aggregate.AppInsts)
	}
	// Both processes exited: their ASIDs were recycled into the free
	// list and the kernel reaped them.
	if s.OS.Process(1) != nil || s.OS.Process(2) != nil {
		t.Error("exited processes not reaped")
	}
	if mm.Aggregate.OS.Exits != 2 {
		t.Errorf("kernel counted %d exits, want 2", mm.Aggregate.OS.Exits)
	}
}

// normaliseMulti zeroes the host-side fields before byte comparison.
func normaliseMulti(mm MultiMetrics) MultiMetrics {
	mm.Aggregate.WallTime = 0
	mm.Aggregate.SimHeapBytes = 0
	return mm
}

func TestRunMultiDeterminism(t *testing.T) {
	tiny := workloads.Params{Scale: 0.05}
	run := func() string {
		s := smallSystem(t, func(c *Config) {
			c.MaxAppInsts = 120_000
			c.QuantumCycles = 30_000
		})
		mm, err := s.RunMulti(mixFor(t, tiny, "RND", "SEQ"))
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(normaliseMulti(mm))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical multi-process runs diverged:\n a: %s\n b: %s", a, b)
	}
}

// TestRunMultiMemoryPressure drives two processes whose combined
// footprint exceeds physical memory: both must experience swap-outs in
// their own per-process metrics, and per-process attribution must
// account for every global swap event.
func TestRunMultiMemoryPressure(t *testing.T) {
	hog := func(name string, foot uint64) *workloads.Workload {
		return workloads.Custom(name, workloads.LongRunning, foot,
			func(w *workloads.Workload, k *mimicos.Kernel, pid int) {
				w.SetBase("d", k.Mmap(pid, foot, mimicos.MmapFlags{Anon: true}))
			},
			func(w *workloads.Workload) []workloads.Step {
				return []workloads.Step{
					{Kind: workloads.StepTouch, Base: w.Base("d"), Size: foot, Stride: 4096, ALUPer: 2, PC: 0xC00100},
				}
			})
	}
	s := smallSystem(t, func(c *Config) {
		c.OSCfg.PhysBytes = 128 * mem.MB
		c.Policy = PolicyBuddy
		c.FragFree2M = -1 // no artificial fragmentation
		c.MaxAppInsts = 0 // run both touch phases to completion
	})
	mm, err := s.RunMulti([]*workloads.Workload{
		hog("hogA", 100*mem.MB), hog("hogB", 100*mem.MB),
	})
	if err != nil {
		t.Fatal(err)
	}
	var outSum, inSum uint64
	for _, pm := range mm.Procs {
		if pm.OS.SwapOuts == 0 {
			t.Errorf("process %d (%s): no swap-outs under combined pressure", pm.PID, pm.Workload)
		}
		outSum += pm.OS.SwapOuts
		inSum += pm.OS.SwapIns
	}
	if outSum != mm.Aggregate.OS.SwapOuts {
		t.Errorf("per-process swap-outs %d != aggregate %d", outSum, mm.Aggregate.OS.SwapOuts)
	}
	if inSum != mm.Aggregate.OS.SwapIns {
		t.Errorf("per-process swap-ins %d != aggregate %d", inSum, mm.Aggregate.OS.SwapIns)
	}
	if mm.Aggregate.OS.ReclaimRuns == 0 {
		t.Error("no reclaim runs despite over-capacity footprint")
	}
}

// TestRunMultiASIDRetention compares flush-on-switch against
// ASID-tagged retention on the same mix: retention must lose strictly
// fewer translations to context switches.
func TestRunMultiASIDRetention(t *testing.T) {
	tiny := workloads.Params{Scale: 0.05}
	run := func(retain bool) MultiMetrics {
		s := smallSystem(t, func(c *Config) {
			c.MaxAppInsts = 150_000
			c.QuantumCycles = 25_000
			c.ASIDRetention = retain
		})
		mm, err := s.RunMulti(mixFor(t, tiny, "RND", "SEQ"))
		if err != nil {
			t.Fatal(err)
		}
		return mm
	}
	flush, retain := run(false), run(true)
	if flush.TLBFlushes == 0 {
		t.Error("flush mode recorded no TLB flushes")
	}
	if retain.TLBFlushes != 0 {
		t.Errorf("retention mode flushed %d times", retain.TLBFlushes)
	}
	if retain.Aggregate.L2TLBMisses >= flush.Aggregate.L2TLBMisses {
		t.Errorf("ASID retention did not reduce L2 TLB misses: retain=%d flush=%d",
			retain.Aggregate.L2TLBMisses, flush.Aggregate.L2TLBMisses)
	}
	t.Logf("L2 TLB misses: flush=%d retain=%d (%d switches)",
		flush.Aggregate.L2TLBMisses, retain.Aggregate.L2TLBMisses, flush.ContextSwitches)
}

// TestASIDRecycleNoStaleTLB is the process-exit regression test: after
// an exit the whole hierarchy must hold zero entries for the dead ASID,
// and a new process recycling that ASID must not hit them.
func TestASIDRecycleNoStaleTLB(t *testing.T) {
	tiny := workloads.Params{Scale: 0.05}
	s := smallSystem(t, nil)
	src := s.Prepare(byName(t, "2D-Sum", tiny))
	s.RunSteps(src, 50_000)

	asid := s.Proc.ASID
	if n := s.MMU.STLB().OccupancyASID(asid); n == 0 {
		t.Fatal("run populated no STLB entries for the process ASID")
	}
	s.OS.ExitProcess(1)
	if n := s.MMU.STLB().OccupancyASID(asid); n != 0 {
		t.Fatalf("%d stale STLB entries survive process exit", n)
	}
	p2 := s.OS.CreateProcess(2)
	if p2.ASID != asid {
		t.Fatalf("ASID not recycled: got %d, want %d", p2.ASID, asid)
	}
	// A fresh lookup under the recycled ASID must miss, not hit the dead
	// process's translation.
	if _, hit := s.MMU.STLB().Lookup(TextSegBase, p2.ASID); hit {
		t.Fatal("recycled ASID hit a stale translation")
	}
}

// TestRunMultiMidgardExitReleasesFrames guards the exit path for
// designs whose page table is keyed by a translation key rather than
// the virtual address: teardown must remove entries by that key, or
// every frame of an exiting process leaks into the shared allocator.
func TestRunMultiMidgardExitReleasesFrames(t *testing.T) {
	tiny := workloads.Params{Scale: 0.05}
	s := smallSystem(t, func(c *Config) {
		c.Design = DesignMidgard
		c.MaxAppInsts = 80_000
	})
	mm, err := s.RunMulti(mixFor(t, tiny, "RND", "SEQ"))
	if err != nil {
		t.Fatal(err)
	}
	if mm.Aggregate.MinorFaults == 0 {
		t.Fatal("no faults; nothing was resident")
	}
	for _, p := range s.Processes() {
		if !p.Finished() {
			t.Errorf("process %d did not finish", p.PID)
		}
		if p.OS.RSS != 0 {
			t.Errorf("process %d leaked %d resident bytes at exit", p.PID, p.OS.RSS)
		}
	}
}

func TestRunMultiRejectsUtopia(t *testing.T) {
	tiny := workloads.Params{Scale: 0.05}
	s := smallSystem(t, func(c *Config) {
		c.Design = DesignUtopia
		c.Policy = PolicyUtopia
	})
	if _, err := s.RunMulti(mixFor(t, tiny, "RND", "SEQ")); err == nil {
		t.Fatal("RunMulti accepted the utopia design")
	}
}
