package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mimicos"
)

// TestSteadyStateZeroAllocs locks in the fast lane's allocation-free
// steady state: once a region is mapped and warmed, driving the core
// over it — TLB lookups, page walks, cache and DRAM accesses, the
// prefetchers — must not allocate at all. Page-table nodes and entries
// come from arenas, prefetcher candidate buffers are reused, and the
// run loop buffers live on the stack, so per-instruction allocations
// are a regression this test catches.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OSCfg.PhysBytes = 1 * mem.GB
	s := MustNewSystem(cfg)

	// Address-space setup by hand (what Run's loader phase does): the
	// text segment backs instruction fetches, the data region the loads.
	s.OS.Mmap(1, TextSegBytes, mimicos.MmapFlags{
		File: true, FileID: TextSegFileID, FixedAddr: TextSegBase,
	})
	const dataBytes = 8 * mem.MB
	base := s.OS.Mmap(1, dataBytes, mimicos.MmapFlags{Anon: true})
	s.OS.Tracer.Begin()

	// Warm-up: first-touch every page (faults, kernel streams, page-table
	// growth — allocations allowed here), then touch again so the TLBs
	// and caches settle.
	var warm isa.Stream
	for off := uint64(0); off < dataBytes; off += 4 * mem.KB {
		warm = append(warm, isa.Store(uint64(TextSegBase)+64, base+mem.VAddr(off)))
	}
	warmSrc := &isa.SliceSource{S: warm}
	s.RunSteps(warmSrc, 0)
	warmSrc.Reset()
	s.RunSteps(warmSrc, 0)

	// Steady state: loads over the mapped, warmed region. Every access
	// translates and hits memory, no faults, no kernel entry.
	var loads isa.Stream
	for off := uint64(0); off < dataBytes; off += 4 * mem.KB {
		loads = append(loads, isa.Load(uint64(TextSegBase)+128, base+mem.VAddr(off)))
	}
	src := &isa.SliceSource{S: loads}
	faults0 := s.OS.Stats().MinorFaults

	avg := testing.AllocsPerRun(10, func() {
		src.Reset()
		s.RunSteps(src, 0)
	})
	if avg != 0 {
		t.Fatalf("steady-state step loop allocates %.1f times per %d instructions (want 0)", avg, len(loads))
	}
	if f := s.OS.Stats().MinorFaults; f != faults0 {
		t.Fatalf("steady state was not steady: %d faults during measurement", f-faults0)
	}
}

// TestRunLoopBatchZeroAllocs verifies the batched fast lane itself adds
// no per-batch allocations: FillBatch into the stack buffer plus the
// per-instruction dispatch sequence is allocation-free end to end.
func TestRunLoopBatchZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OSCfg.PhysBytes = 1 * mem.GB
	s := MustNewSystem(cfg)
	s.OS.Mmap(1, TextSegBytes, mimicos.MmapFlags{
		File: true, FileID: TextSegFileID, FixedAddr: TextSegBase,
	})
	const dataBytes = 4 * mem.MB
	base := s.OS.Mmap(1, dataBytes, mimicos.MmapFlags{Anon: true})
	s.OS.Tracer.Begin()

	var stream isa.Stream
	for off := uint64(0); off < dataBytes; off += 4 * mem.KB {
		stream = append(stream, isa.Store(uint64(TextSegBase)+64, base+mem.VAddr(off)))
	}
	warmSrc := &isa.SliceSource{S: stream}
	s.RunSteps(warmSrc, 0)

	src := &isa.SliceSource{S: stream}
	avg := testing.AllocsPerRun(10, func() {
		src.Reset()
		s.runFast(src, 0)
	})
	if avg != 0 {
		t.Fatalf("batched run loop allocates %.1f times per pass (want 0)", avg)
	}
}
