package core

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/mmu"
	"repro/internal/recycle"
	"repro/internal/registry"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/tier"
	"repro/internal/trace"
	"repro/internal/utopia"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// Mode selects the OS-simulation methodology (§2.1 / Table 1).
type Mode uint8

const (
	// Imitation is Virtuoso's methodology: kernel routines execute in
	// MimicOS and their instruction streams are injected into the core.
	Imitation Mode = iota
	// Emulation is the baseline-simulator methodology: functional OS
	// effects with fixed first-order latencies (no injected streams, no
	// walk memory traffic).
	Emulation
)

// String returns the mode's canonical CLI name.
func (m Mode) String() string {
	if m == Emulation {
		return "emulation"
	}
	return "imitation"
}

// Frontend selects how application instructions reach the core model
// (§6.2's three integration styles).
type Frontend uint8

const (
	// FrontendExec is execution-driven (Sniper-style): instructions are
	// generated and simulated on the fly.
	FrontendExec Frontend = iota
	// FrontendTrace is trace-driven (ChampSim-style): the application
	// trace is materialised first, then replayed.
	FrontendTrace
	// FrontendMemTrace is memory-trace-driven (Ramulator-style): only
	// memory operations are simulated.
	FrontendMemTrace
	// FrontendEmu is emulation-driven (gem5-SE-style): a functional
	// emulation step precedes timing for each instruction.
	FrontendEmu
)

// DesignName selects the MMU/translation design under study.
type DesignName string

// Supported translation designs.
const (
	DesignRadix     DesignName = "radix"
	DesignECH       DesignName = "ech"
	DesignHDC       DesignName = "hdc"
	DesignHT        DesignName = "ht"
	DesignUtopia    DesignName = "utopia"
	DesignRMM       DesignName = "rmm"
	DesignMidgard   DesignName = "midgard"
	DesignDirectSeg DesignName = "directseg"
)

// PolicyName selects the physical memory allocation policy (§7.5).
type PolicyName string

// Supported allocation policies.
const (
	PolicyBuddy  PolicyName = "bd"
	PolicyTHP    PolicyName = "thp"
	PolicyCRTHP  PolicyName = "cr-thp"
	PolicyARTHP  PolicyName = "ar-thp"
	PolicyUtopia PolicyName = "utopia"
	PolicyEager  PolicyName = "eager"
)

// UtopiaSegSpec configures one RestSeg.
type UtopiaSegSpec struct {
	SizeBytes uint64
	Ways      int
	PageSize  mem.PageSize
}

// Config assembles a full simulated system.
type Config struct {
	Mode     Mode
	Frontend Frontend

	// Emulation-mode first-order latencies (baseline Sniper uses a fixed
	// PTW latency; ChampSim a fixed page-fault latency — §2.1).
	FixedPTWLat   uint64
	FixedFaultLat uint64

	Design DesignName
	Policy PolicyName

	UtopiaSegs       []UtopiaSegSpec
	UtopiaSwapOnFull bool

	CoreCfg  cpu.Config
	CacheCfg cache.HierarchyConfig
	MMUCfg   mmu.Config
	DramCfg  dram.Config
	OSCfg    mimicos.Config
	WithDisk bool

	// FragFree2M initialises physical-memory fragmentation as the
	// fraction of 2MB blocks left *free*. The paper states fragmentation
	// as the unavailable fraction: its "baseline fragmentation 80%"
	// (Table 4) is FragFree2M = 0.20.
	FragFree2M float64

	// MaxAppInsts bounds the run (0 = run the workload to completion).
	MaxAppInsts uint64

	// TracePath, with Frontend set to FrontendTrace or FrontendMemTrace,
	// streams the application instruction stream from the given trace
	// file (see internal/trace) instead of generating it from the
	// workload — the §6.2 ChampSim/Ramulator integration styles made
	// concrete. The file is validated when the system is built; each run
	// opens its own reader, so concurrent systems may replay one file.
	TracePath string

	// TraceShared, when non-nil, serves TracePath replays from a shared
	// decoded-trace store: each distinct trace content is decoded once
	// per process and every replay streams from the in-memory copy.
	// Sweeps replaying a few traces across many configurations set this;
	// single runs leave it nil and decode on the fly. Excluded from JSON
	// (like ReferencePath) so sweep-spec hashes do not depend on how the
	// trace bytes reach the engine.
	TraceShared *trace.Shared `json:"-"`

	// RefNoise adds the OS-noise components of the reference ("real")
	// system that MimicOS deliberately omits — used as ground truth in
	// the §7.2 validation experiments.
	RefNoise bool

	// TrackPFLatencies records a per-fault latency series (Figs. 2, 9, 16).
	TrackPFLatencies bool

	// RetainKernelStreams keeps injected streams in a ring buffer,
	// modelling online binary instrumentation's memory cost (Fig. 11:
	// Sniper/ChampSim vs Ramulator/gem5).
	RetainKernelStreams int

	// Multiprogramming (RunMulti). QuantumCycles is the round-robin
	// scheduler's time slice in simulated cycles (0 = DefaultQuantum);
	// CtxSwitchCycles is the cost charged per context switch
	// (0 = DefaultCtxSwitchCost). With ASIDRetention the TLB hierarchy
	// keeps entries across switches, isolated by ASID tags; without it
	// every switch flushes the TLBs (untagged-TLB behaviour), so the
	// retention benefit is directly measurable.
	QuantumCycles   uint64
	CtxSwitchCycles uint64
	ASIDRetention   bool

	// ReferencePath forces Run and RunMulti onto the unbatched
	// per-instruction reference loops instead of the batched fast lane.
	// Both paths produce byte-identical Results (the differential suite
	// asserts it); the knob exists so the equivalence is testable and so
	// a fast-lane regression can be bisected against the reference.
	// Excluded from JSON so sweep-spec hashes are loop-implementation
	// agnostic.
	ReferencePath bool `json:"-"`

	Seed uint64
}

// Multiprogramming defaults: a ~34 µs time slice at the Table 4 clock —
// short relative to real CFS slices, proportional to the experiments'
// ~100× scaled-down footprints — and a ~1.5 µs switch cost
// (state save/restore plus scheduler work).
const (
	DefaultQuantum       = 100_000
	DefaultCtxSwitchCost = 4_350
)

// DefaultConfig returns the Table 4 baseline Virtuoso+Sniper system.
func DefaultConfig() Config {
	return Config{
		Mode:             Imitation,
		Frontend:         FrontendExec,
		Design:           DesignRadix,
		Policy:           PolicyTHP,
		CoreCfg:          cpu.DefaultConfig(),
		CacheCfg:         cache.DefaultHierarchyConfig(),
		MMUCfg:           mmu.DefaultConfig(),
		DramCfg:          dram.DDR4_2400(),
		OSCfg:            mimicos.DefaultConfig(),
		WithDisk:         true,
		FragFree2M:       0.20,
		TrackPFLatencies: true,
		Seed:             1,
	}
}

// System is one assembled simulator + MimicOS instance.
type System struct {
	Cfg  Config
	Dram *dram.Controller
	Hier *cache.Hierarchy
	MMU  *mmu.MMU
	Core *cpu.Core
	OS   *mimicos.Kernel
	Disk *ssd.Device
	// Proc is the mm state of the process currently installed on the
	// core: the only process in single-workload runs, the scheduled one
	// during RunMulti.
	Proc *mimicos.Process

	FuncChan   *FunctionalChannel
	StreamChan *StreamChannel

	// design is PID 1's translation design (the one the MMU starts on);
	// procs/cur track the multiprogrammed process table during RunMulti
	// (nil/idle in single-workload runs).
	design mmu.Design
	procs  []*Process
	cur    *Process

	PFLatNs      *stats.Series // minor (non-device) fault latencies, ns
	MajorPFLatNs *stats.Series // major (device-backed) fault latencies, ns
	pfIdx        uint64
	noise        *xrand.Rand
	streamRing   []isa.Stream
	ringPos      int

	swapDeviceCycles uint64
	segvs            uint64

	cancelCheck func() bool
	frontendTap func(isa.Inst)
	interrupted bool

	// stepIn and batch are reusable decode destinations for the run
	// loops. Filling an instruction through the isa.Source interface
	// makes the destination escape, so a per-call local would cost one
	// heap allocation per RunSteps/runFast invocation; parking the
	// scratch space on the (heap-resident) System keeps the steady
	// state allocation-free (locked in by alloc_test.go).
	stepIn isa.Inst
	batch  []isa.Inst

	// Streaming observation (see observe.go). obsCtxSwitches mirrors the
	// multiprogrammed scheduler's dispatch count so snapshots can report
	// it without reaching into RunMulti's locals.
	observer       func(Snapshot)
	observeEvery   uint64
	nextObserve    uint64
	obsSeq         int
	obsCtxSwitches uint64
}

// Text-segment constants: every run maps the workload binary's code at
// the same fixed base so instruction fetches at the catalog's synthetic
// PCs resolve. Trace recording skips this VMA (replay re-creates it).
const (
	TextSegBase   mem.VAddr = 0x400000
	TextSegBytes            = 32 * mem.MB
	TextSegFileID           = 0xC0DE
)

// cancelStride is how many frontend instructions Run retires between
// cancellation polls: rare enough to stay off the hot path, frequent
// enough that a cancelled context stops a simulation within microseconds
// of simulated work.
const cancelStride = 1 << 13

// batchSize is the fast lane's frontend read-ahead: large enough to
// amortize the per-batch isa.Source dispatch to noise, small enough
// that the buffer lives on the run loop's stack.
const batchSize = 256

// SetCancelCheck installs a cooperative cancellation poll: Run and
// RunSteps call f periodically and stop early when it returns true.
// Used by the sweep runner to honour context.Context cancellation
// mid-simulation. Pass nil to remove the check.
func (s *System) SetCancelCheck(f func() bool) { s.cancelCheck = f }

// SetFrontendTap installs an observer invoked for every application
// instruction the frontend feeds the core, before it is simulated —
// the hook trace recording uses (see internal/trace.Recorder). Kernel
// streams injected by MimicOS do not pass the tap: a trace captures
// the application, and replaying it regenerates the kernel work under
// whatever OS configuration the replay run uses. Pass nil to remove.
func (s *System) SetFrontendTap(f func(isa.Inst)) { s.frontendTap = f }

// Cancelled reports whether the installed cancellation check fired.
func (s *System) Cancelled() bool {
	return s.cancelCheck != nil && s.cancelCheck()
}

// Interrupted reports whether a run on this system was actually stopped
// early by the cancellation check — as opposed to the check's context
// being cancelled after the simulation already completed. Callers use
// it to tell truncated metrics from valid ones under a racing cancel.
func (s *System) Interrupted() bool { return s.interrupted }

// NewSystem wires a complete system per cfg. The kernel, one process,
// the translation design, and the channels are all constructed; call Run
// with a workload to simulate.
func NewSystem(cfg Config) (*System, error) { return NewSystemPooled(cfg, nil) }

// batchKey pools the fast lane's frontend read-ahead buffer.
const batchKey = "core.batch"

// NewSystemPooled is NewSystem drawing the system's large allocations —
// cache and TLB SoA arrays, the free-page bitmap, page-table arena
// chunks, the batch buffer — from pool. Construction logic is shared
// with NewSystem (only memory provenance differs, and pooled slices are
// scrubbed to fresh-make state), so a pooled system is deterministic
// and byte-identical in its results to a fresh one; the sweep runner
// relies on this and TestSweepReuseEquivalence locks it in. A nil pool
// is exactly NewSystem.
func NewSystemPooled(cfg Config, pool *recycle.Pool) (*System, error) {
	if cfg.CoreCfg.Width == 0 {
		cfg.CoreCfg = cpu.DefaultConfig()
	}
	s := &System{Cfg: cfg, noise: xrand.New(cfg.Seed ^ 0x0A15E)}
	if b, ok := pool.Take(batchKey); ok {
		s.batch = b.([]isa.Inst)
	}
	if cfg.WithDisk {
		s.Disk = ssd.New(ssd.Config{})
	}

	// OS first: it owns physical memory.
	oscfg := cfg.OSCfg
	if oscfg.PhysBytes == 0 {
		oscfg = mimicos.DefaultConfig()
	}
	// Tier configs fail loudly here, not mid-run: a sweep point or CLI
	// flag with a bad tier spec errors before any simulation starts.
	if err := tier.ValidateSpecs(oscfg.Tiers); err != nil {
		return nil, fmt.Errorf("core: invalid tier config: %w", err)
	}
	var tierPol tier.Policy
	if len(oscfg.Tiers) > 0 {
		if _, builtin := tier.NewBuiltin(oscfg.TierPolicy); !builtin {
			// Not a built-in: a tier policy registered through the public
			// extension API (repro/ext), constructed fresh per system.
			p, ok := registry.NewTierPolicy(oscfg.TierPolicy)
			if !ok {
				return nil, fmt.Errorf("core: unknown tier policy %q (registered: %v)", oscfg.TierPolicy, registry.TierPolicyNames())
			}
			tierPol = p
		}
	} else if oscfg.TierPolicy != "" {
		return nil, fmt.Errorf("core: tier policy %q set without any tiers configured", oscfg.TierPolicy)
	}
	switch cfg.Design {
	case DesignECH:
		oscfg.PTKind = mimicos.PTECH
	case DesignHDC:
		oscfg.PTKind = mimicos.PTHDC
	case DesignHT:
		oscfg.PTKind = mimicos.PTHT
	default:
		oscfg.PTKind = mimicos.PTRadix
	}
	s.OS = mimicos.NewWith(oscfg, s.Disk, pool)
	if tierPol != nil {
		s.OS.SetTierPolicy(tierPol)
	}
	s.Proc = s.OS.CreateProcess(1)

	// Design-specific OS state.
	switch cfg.Design {
	case DesignUtopia:
		segs := cfg.UtopiaSegs
		if len(segs) == 0 {
			segs = []UtopiaSegSpec{
				{SizeBytes: 512 * mem.MB, Ways: 16, PageSize: mem.Page4K},
			}
		}
		sys := &utopia.System{SwapOnFull: cfg.UtopiaSwapOnFull}
		for i, sp := range segs {
			seg, err := utopia.NewRestSeg(fmt.Sprintf("restseg%d", i), sp.SizeBytes, sp.Ways, sp.PageSize, s.OS.Phys)
			if err != nil {
				return nil, err
			}
			sys.Segs = append(sys.Segs, seg)
		}
		s.OS.Utopia = sys
	case DesignRMM:
		s.OS.EnableRMM(s.Proc)
	case DesignMidgard:
		s.OS.EnableMidgard(s.Proc)
	}

	// Allocation policy.
	switch cfg.Policy {
	case PolicyBuddy, "":
		s.OS.SetPolicy(&mimicos.BuddyPolicy{})
	case PolicyTHP:
		s.OS.SetPolicy(&mimicos.LinuxTHPPolicy{})
	case PolicyCRTHP:
		s.OS.SetPolicy(&mimicos.ReservationTHPPolicy{UpgradeFrac: 0.5, PolicyName: "CR-THP"})
	case PolicyARTHP:
		s.OS.SetPolicy(&mimicos.ReservationTHPPolicy{UpgradeFrac: 0.1, PolicyName: "AR-THP"})
	case PolicyUtopia:
		s.OS.SetPolicy(&mimicos.UtopiaPolicy{Prefer2M: false})
	case PolicyEager:
		s.OS.SetPolicy(&mimicos.EagerPolicy{})
	default:
		// Not a built-in: a policy registered through the public
		// extension API (repro/ext). The constructor yields a fresh
		// instance per system, so concurrent sweep points never share
		// policy state.
		p, ok := registry.NewPolicy(string(cfg.Policy))
		if !ok {
			return nil, fmt.Errorf("core: unknown policy %q (registered: %v)", cfg.Policy, registry.PolicyNames())
		}
		s.OS.SetPolicy(p)
	}

	// Fragment physical memory after carve-outs so RestSegs and hash
	// tables stay contiguous. FragFree2M = 0 is meaningful (the paper's
	// "100% fragmentation": no free 2MB blocks); negative disables.
	if cfg.FragFree2M >= 0 && cfg.FragFree2M < 1 {
		s.OS.Phys.Fragment(cfg.FragFree2M, cfg.Seed^0xF4A6)
	}

	// Memory side.
	s.Dram = dram.NewController(cfg.DramCfg)
	s.Hier = cache.NewHierarchyWith(cfg.CacheCfg, s.Dram, pool)

	// Translation design.
	design, err := s.buildDesignFor(s.Proc)
	if err != nil {
		return nil, err
	}
	s.design = design
	s.MMU = mmu.NewWith(cfg.MMUCfg, design, s.Proc.ASID, pool)
	s.Core = cpu.New(cfg.CoreCfg, s.Hier, s.MMU)

	// Channels and callbacks.
	s.FuncChan = NewFunctionalChannel(s.serveRequest)
	s.StreamChan = &StreamChannel{}
	s.Core.SetFaultHandler(s.handleFault)
	s.OS.SetUnmapNotifier(func(pid int, va mem.VAddr, size mem.PageSize) {
		// A kernel daemon may unmap pages of a process other than the
		// one on the core (khugepaged collapse, reclaim of a descheduled
		// process): the shootdown must then target that process's ASID
		// and its own design, not the current context's.
		if p := s.procByPID(pid); p != nil && p != s.cur {
			s.MMU.InvalidateASIDVA(p.ASID, va, size)
			p.Design.Invalidate(va, size)
			return
		}
		s.MMU.Invalidate(va, size)
	})
	s.OS.SetExitNotifier(func(pid int, asid uint16) {
		// ASID-wide shootdown on exit: the ASID is about to be recycled
		// and must not hit the dead process's stale translations.
		s.MMU.FlushASID(asid)
	})
	if cfg.RetainKernelStreams > 0 {
		s.streamRing = make([]isa.Stream, cfg.RetainKernelStreams)
	}

	// Fail fast on a missing or malformed trace file: the run itself
	// cannot report errors, so the build step validates the header.
	if cfg.TracePath != "" {
		if cfg.Frontend != FrontendTrace && cfg.Frontend != FrontendMemTrace {
			return nil, fmt.Errorf("core: TracePath set but frontend is not trace-driven (use FrontendTrace or FrontendMemTrace)")
		}
		if _, err := trace.ReadHeader(cfg.TracePath); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNewSystem is NewSystem, panicking on configuration errors. It is
// kept for internal tests only; production callers use NewSystem.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Recycle harvests a retired system's large allocations into pool for
// the next NewSystemPooled call: cache and TLB arrays, the free-page
// bitmap and extent maps, surviving page-table arenas, and the batch
// buffer. Call it only after Run/RunMulti returned and the Metrics have
// been extracted — the system is unusable afterwards. A nil pool is a
// no-op.
func (s *System) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	s.Hier.Recycle(pool)
	s.MMU.Recycle(pool)
	s.OS.Recycle(pool)
	if s.batch != nil {
		clear(s.batch)
		pool.Give(batchKey, s.batch)
		s.batch = nil
	}
}

// ReleaseTransients donates process-global reusable buffers — today
// the kernel tracer's event stream, a simulation's largest repeat
// allocation — for adoption by future unpooled systems. Single-use
// sessions call it once their run has finished; the system stays
// usable (a later kernel event just regrows a buffer). Pooled systems
// use Recycle, which harvests into the worker's pool instead.
func (s *System) ReleaseTransients() { s.OS.ReleaseStream() }

// buildDesignFor constructs the configured translation design bound to
// one process's page table and design state. Every process owns its own
// design instance (its page-table root, walk caches, range/VMA tables),
// which is what a CR3 write switches between in RunMulti.
func (s *System) buildDesignFor(proc *mimicos.Process) (mmu.Design, error) {
	cfg := s.Cfg
	pwcE, pwcW := cfg.MMUCfg.PWCEntries, cfg.MMUCfg.PWCWays
	if pwcE == 0 {
		pwcE, pwcW = 32, 4
	}
	newRadix := func() *mmu.RadixWalker {
		return mmu.NewRadixWalkerSized(proc.PT, s.Hier, pwcE, pwcW)
	}
	if cfg.Mode == Emulation {
		lat := cfg.FixedPTWLat
		if lat == 0 {
			lat = 60 // the average real-system PTW latency baseline Sniper uses
		}
		return &mmu.FixedWalker{PT: proc.PT, Lat: lat}, nil
	}
	switch cfg.Design {
	case DesignRadix, "":
		return newRadix(), nil
	case DesignECH, DesignHDC, DesignHT:
		return mmu.NewHashWalker(proc.PT, s.Hier), nil
	case DesignUtopia:
		return mmu.NewUtopiaDesign(s.OS.Utopia, newRadix(), s.Hier), nil
	case DesignRMM:
		return mmu.NewRMMDesign(proc.RMM, newRadix(), s.Hier, proc.ASID), nil
	case DesignMidgard:
		return mmu.NewMidgardDesign(proc.Midgard, newRadix(), s.Hier, proc.ASID), nil
	case DesignDirectSeg:
		return &mmu.DirectSegDesign{Radix: newRadix()}, nil
	default:
		// Not a built-in: a design registered through the public
		// extension API (repro/ext). Each process gets its own instance
		// over its own page table, like the built-in designs.
		d, ok := registry.NewDesign(string(cfg.Design), registry.DesignEnv{
			PT:    proc.PT,
			Mem:   s.Hier,
			Radix: newRadix(),
			ASID:  proc.ASID,
		})
		if !ok {
			return nil, fmt.Errorf("core: unknown design %q (registered: %v)", cfg.Design, registry.DesignNames())
		}
		return d, nil
	}
}

// serveRequest is the kernel-side functional-channel handler.
func (s *System) serveRequest(req Request) Response {
	switch req.Kind {
	case EvPageFault:
		return Response{Fault: s.OS.HandlePageFault(req.PID, req.VA, req.Write, req.Now)}
	case EvMmap:
		return Response{MmapBase: s.OS.Mmap(req.PID, req.Length, req.Flags)}
	case EvMunmap:
		s.OS.Munmap(req.PID, req.VA, req.Length)
		return Response{}
	}
	panic("core: unknown request kind")
}

// handleFault is the core's page-fault callback: the §4.4 round trip.
func (s *System) handleFault(va mem.VAddr, write bool) bool {
	resp := s.FuncChan.Call(Request{
		Kind: EvPageFault, PID: s.Proc.PID, VA: va, Write: write, Now: s.Core.Now(),
	})
	out := resp.Fault
	if !out.OK {
		s.segvs++
		return false
	}
	s.swapDeviceCycles += out.DeviceCycles

	switch s.Cfg.Mode {
	case Emulation:
		lat := s.Cfg.FixedFaultLat
		if lat == 0 {
			lat = 5800 // ~2 µs fixed fault cost (ChampSim-style)
		}
		s.Core.StallFault(lat)
		if s.PFLatNs != nil {
			s.PFLatNs.Add(s.Core.CyclesToNs(lat))
		}
	case Imitation:
		stream := s.StreamChan.Deliver(s.OS.TakeStream())
		if s.streamRing != nil {
			// Online instrumentation retains translated code buffers.
			cp := make(isa.Stream, len(stream))
			copy(cp, stream)
			s.streamRing[s.ringPos%len(s.streamRing)] = cp
			s.ringPos++
		}
		spent := s.Core.RunStream(stream)
		if s.Cfg.RefNoise {
			spent += s.referenceNoise()
		}
		if out.Major {
			if s.MajorPFLatNs != nil {
				s.MajorPFLatNs.Add(s.Core.CyclesToNs(spent))
			}
		} else if s.PFLatNs != nil {
			s.PFLatNs.Add(s.Core.CyclesToNs(spent))
		}
	}
	s.pfIdx++
	return true
}

// referenceNoise models the kernel activity a real machine interleaves
// with fault handling that MimicOS does not imitate: scheduler/IRQ jitter
// on every fault, and occasional reclaim/compaction interference.
func (s *System) referenceNoise() uint64 {
	var extra uint64
	r := s.noise.Float64()
	switch {
	case r < 0.015: // LRU/compaction scan interferes (~20 µs)
		extra = 58_000
	case r < 0.10: // timer/IRQ on this CPU (~1.5 µs)
		extra = 4_350
	default: // per-fault jitter up to ~0.4 µs
		extra = uint64(s.noise.Float64() * 1160)
	}
	s.Core.StallFault(extra)
	return extra
}

// Mmap issues an mmap syscall through the functional channel, injecting
// the kernel stream in imitation mode.
func (s *System) Mmap(length uint64, flags mimicos.MmapFlags) mem.VAddr {
	resp := s.FuncChan.Call(Request{Kind: EvMmap, PID: s.Proc.PID, Length: length, Flags: flags})
	if s.Cfg.Mode == Imitation {
		s.Core.RunStream(s.StreamChan.Deliver(s.OS.TakeStream()))
	}
	return resp.MmapBase
}

// Run simulates the workload and returns the collected metrics.
func (s *System) Run(w *workloads.Workload) Metrics {
	if s.Cfg.TrackPFLatencies {
		s.PFLatNs = stats.NewSeries(4096)
		s.MajorPFLatNs = stats.NewSeries(256)
	}

	// Address-space setup (the exec/loader phase): functional only.
	// The text segment backs instruction fetches at the workloads' PCs.
	s.OS.Mmap(s.Proc.PID, TextSegBytes, mimicos.MmapFlags{
		File: true, FileID: TextSegFileID, FixedAddr: TextSegBase,
	})
	w.Setup(s.OS, s.Proc.PID)
	s.OS.Tracer.Begin() // drop setup streams

	src := s.makeFrontend(w)
	// Run owns the frontend it built: release sources backed by a file
	// even when the instruction bound stops the run before EOF.
	defer closeSource(src)

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	wallStart := time.Now()

	s.runLoop(src, s.Cfg.MaxAppInsts)
	if !s.interrupted {
		// The closing snapshot reads the same counter state collect is
		// about to package, so Final snapshot == Metrics exactly.
		s.finishObserve()
	}

	wall := time.Since(wallStart)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	return s.collect(w.Name(), wall, msBefore, msAfter)
}

// runLoop drives the core over src until exhaustion, the optional
// instruction bound, or cancellation. It dispatches between the batched
// fast lane and the per-instruction reference loop; both retire the
// same instructions in the same order with identical per-instruction
// bookkeeping, so Results are byte-identical (the differential suite
// asserts it).
func (s *System) runLoop(src isa.Source, max uint64) {
	if s.Cfg.ReferencePath {
		s.runReference(src, max)
		return
	}
	s.runFast(src, max)
}

// runReference is the unbatched loop: one interface dispatch per
// instruction. Kept verbatim as the semantic baseline the fast lane is
// diffed against.
func (s *System) runReference(src isa.Source, max uint64) {
	var in isa.Inst
	var polled uint64
	for src.Next(&in) {
		if s.frontendTap != nil {
			s.frontendTap(in)
		}
		s.Core.Run(in)
		if s.observer != nil {
			s.maybeObserve()
		}
		if max > 0 && s.Core.Stats().AppInsts >= max {
			break
		}
		if polled++; polled%cancelStride == 0 && s.Cancelled() {
			s.interrupted = true
			break
		}
	}
}

// runFast is the batched loop: instructions are pulled from the source
// in blocks (one FillBatch call per batchSize instructions) into a
// stack buffer, then retired with the exact per-instruction sequence of
// runReference — tap, core, observe, bound check, cancellation poll.
// When the bound or a cancel stops the run mid-batch, the remaining
// read-ahead is discarded, matching the reference loop leaving the same
// instructions unread in the source.
func (s *System) runFast(src isa.Source, max uint64) {
	if s.batch == nil {
		s.batch = make([]isa.Inst, batchSize)
	}
	buf := s.batch
	var polled uint64
	for {
		n := isa.FillBatch(src, buf)
		if n == 0 {
			return
		}
		for i := 0; i < n; i++ {
			if s.frontendTap != nil {
				s.frontendTap(buf[i])
			}
			s.Core.Run(buf[i])
			if s.observer != nil {
				s.maybeObserve()
			}
			if max > 0 && s.Core.Stats().AppInsts >= max {
				return
			}
			if polled++; polled%cancelStride == 0 && s.Cancelled() {
				s.interrupted = true
				return
			}
		}
	}
}

// makeFrontend adapts the workload source per the configured frontend.
//
// With TracePath set, the trace-driven frontends stream records from
// the file instead of deriving anything from the workload: this is the
// real ChampSim/Ramulator integration style, where the trace IS the
// application. Without TracePath, FrontendTrace falls back to
// materialising the synthetic stream in memory first (the historical
// behaviour), and FrontendMemTrace filters the synthetic stream on the
// fly.
func (s *System) makeFrontend(w *workloads.Workload) isa.Source {
	return s.makeFrontendSeeded(w, 0)
}

// makeFrontendSeeded is makeFrontend with a per-process seed salt:
// multiprogrammed runs salt each process's source with its PID so two
// instances of the same workload do not execute identical streams. The
// zero salt preserves the historical single-process stream bit-for-bit
// (recorded traces replay unchanged).
func (s *System) makeFrontendSeeded(w *workloads.Workload, salt uint64) isa.Source {
	if s.Cfg.TracePath != "" {
		// The fast lane picks the quickest decode strategy for the file
		// and machine (parallel block decode for v2, decode-ahead ring
		// for v1, inline on one CPU) — or streams from the shared
		// decoded-trace store when the caller provides one. The
		// reference path keeps the plain inline-decode source, so
		// TestFastPathEquivalenceReplay also proves every variant
		// stream-identical.
		open := trace.MustOpenReplaySource
		switch {
		case s.Cfg.ReferencePath:
			open = trace.MustOpenSource
		case s.Cfg.TraceShared != nil:
			open = s.Cfg.TraceShared.MustOpen
		}
		switch s.Cfg.Frontend {
		case FrontendTrace:
			// NewSystem validated the file; a failure here means it
			// changed since, which the source reports by panicking.
			return open(s.Cfg.TracePath)
		case FrontendMemTrace:
			return &memTraceSource{inner: open(s.Cfg.TracePath)}
		}
	}
	base := w.Source(s.Cfg.Seed ^ 0xF00D ^ salt)
	switch s.Cfg.Frontend {
	case FrontendTrace:
		// Materialise the trace first (ChampSim-style trace file in
		// memory), then replay.
		var tr isa.Stream
		var in isa.Inst
		limit := s.Cfg.MaxAppInsts
		var n uint64
		for base.Next(&in) {
			tr = append(tr, in)
			n += in.N()
			if limit > 0 && n >= limit+limit/8 {
				break
			}
		}
		return &isa.SliceSource{S: tr}
	case FrontendMemTrace:
		return &memTraceSource{inner: base}
	case FrontendEmu:
		return &emuSource{inner: base}
	default:
		return base
	}
}

// memTraceSource strips non-memory instructions (Ramulator-style
// memory-trace frontend): ALU batches collapse into token costs.
type memTraceSource struct {
	inner isa.Source
}

// Close forwards to the wrapped source so a file-backed inner stream
// is released when a bounded run stops early.
func (m *memTraceSource) Close() error {
	if c, ok := m.inner.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Next implements isa.Source.
func (m *memTraceSource) Next(out *isa.Inst) bool {
	for {
		if !m.inner.Next(out) {
			return false
		}
		if out.Op.HasMemOperand() || out.Op == isa.OpDelay {
			return true
		}
		// Non-memory work becomes a 1-cycle-per-4-inst bubble to keep
		// timestamps meaningful.
		if n := out.N(); n >= 16 {
			*out = isa.Inst{Op: isa.OpDelay, Count: uint32(n / 4)}
			return true
		}
	}
}

// emuSource models gem5-SE's functional-first execution: each
// instruction is first emulated (host-side work), then timed.
type emuSource struct {
	inner isa.Source
	sink  uint64
}

// Next implements isa.Source.
func (e *emuSource) Next(out *isa.Inst) bool {
	if !e.inner.Next(out) {
		return false
	}
	// Functional emulation pass (hash the operands, as a stand-in for
	// interpreting the instruction).
	e.sink = e.sink*6364136223846793005 + out.Addr + uint64(out.Op)
	return true
}

// closeSource releases a frontend source that holds resources (an open
// trace file). Sources built purely in memory implement no Closer and
// cost nothing.
func closeSource(src isa.Source) {
	if c, ok := src.(io.Closer); ok {
		c.Close()
	}
}

// ResetStats zeroes every statistics counter in the system (functional
// and microarchitectural state persists), establishing a steady-state
// measurement window after warm-up.
func (s *System) ResetStats() {
	s.Core.ResetStats()
	s.MMU.ResetStats()
	s.Dram.ResetStats()
	s.Hier.L1I.ResetStats()
	s.Hier.L1D.ResetStats()
	s.Hier.L2.ResetStats()
	s.Hier.L3.ResetStats()
	s.OS.ResetStats()
	if s.Cfg.TrackPFLatencies {
		s.PFLatNs = stats.NewSeries(4096)
		s.MajorPFLatNs = stats.NewSeries(256)
	}
	s.swapDeviceCycles = 0
}

// RunSteps drives the system over src until it is exhausted or the core
// has retired maxApp further application instructions (0 = no bound).
// Used by experiments that interleave warm-up and measurement windows.
func (s *System) RunSteps(src isa.Source, maxApp uint64) {
	start := s.Core.Stats().AppInsts
	in := &s.stepIn
	var polled uint64
	for src.Next(in) {
		if s.frontendTap != nil {
			s.frontendTap(*in)
		}
		s.Core.Run(*in)
		if maxApp > 0 && s.Core.Stats().AppInsts-start >= maxApp {
			return
		}
		if polled++; polled%cancelStride == 0 && s.Cancelled() {
			s.interrupted = true
			return
		}
	}
}

// Prepare performs the address-space setup for w without running it,
// returning the instruction source. Callers then drive RunSteps and
// Collect explicitly (warm-up/steady-state experiments).
func (s *System) Prepare(w *workloads.Workload) isa.Source {
	s.OS.Mmap(s.Proc.PID, TextSegBytes, mimicos.MmapFlags{
		File: true, FileID: TextSegFileID, FixedAddr: TextSegBase,
	})
	w.Setup(s.OS, s.Proc.PID)
	s.OS.Tracer.Begin()
	if s.Cfg.TrackPFLatencies && s.PFLatNs == nil {
		s.PFLatNs = stats.NewSeries(4096)
		s.MajorPFLatNs = stats.NewSeries(256)
	}
	return s.makeFrontend(w)
}

// Collect gathers metrics after explicit RunSteps driving.
func (s *System) Collect(w *workloads.Workload) Metrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return s.collect(w.Name(), 0, ms, ms)
}
