// Package core implements the Virtuoso engine — the paper's primary
// contribution (§3, §4): the coupling of an architectural simulator with
// the MimicOS userspace kernel through two communication channels. The
// functional channel carries event requests (page faults, system calls)
// and their functional results; the instruction-stream channel carries
// the dynamically instrumented instructions of the kernel routine that
// served the event, which the engine injects into the simulator's core
// model. Magic (doorbell) operations bracket the hand-off, imitating the
// xchg/m5op synchronisation of §4.2.
package core

import (
	"sync"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mimicos"
)

// EventKind enumerates functional-channel request types.
type EventKind uint8

const (
	// EvPageFault asks the kernel to service a page fault.
	EvPageFault EventKind = iota
	// EvMmap asks the kernel to create a mapping (syscall).
	EvMmap
	// EvMunmap asks the kernel to destroy mappings (syscall).
	EvMunmap
)

// Request is one message written by the simulator into the functional
// channel's shared-memory mailbox.
type Request struct {
	Kind   EventKind
	PID    int
	VA     mem.VAddr
	Write  bool
	Now    uint64
	Length uint64
	Flags  mimicos.MmapFlags
}

// Response is the kernel's functional result.
type Response struct {
	Fault    mimicos.FaultOutcome
	MmapBase mem.VAddr
}

// FunctionalChannel is the shared-memory mailbox plus doorbell. The
// synchronous Call path models the common single-outstanding-event case;
// Serve/Submit provide the multithreaded-kernel path of §4.3.
type FunctionalChannel struct {
	mu       sync.Mutex
	handler  func(Request) Response
	Messages uint64
	Doorbell uint64 // magic-instruction count
}

// NewFunctionalChannel binds the channel to a kernel-side handler.
func NewFunctionalChannel(handler func(Request) Response) *FunctionalChannel {
	return &FunctionalChannel{handler: handler}
}

// Call performs one request/response round trip: write parameters, ring
// the doorbell, wait for the kernel's completion doorbell, read results.
func (c *FunctionalChannel) Call(req Request) Response {
	c.mu.Lock()
	c.Messages++
	c.Doorbell += 2 // simulator->kernel and kernel->simulator magic ops
	h := c.handler
	c.mu.Unlock()
	return h(req)
}

// Submit dispatches a request asynchronously; the kernel handles it on
// its own goroutine (a MimicOS worker thread) and delivers the response
// on the returned channel.
func (c *FunctionalChannel) Submit(req Request) <-chan Response {
	out := make(chan Response, 1)
	go func() {
		out <- c.Call(req)
	}()
	return out
}

// StreamChannel is the instruction-stream channel: the kernel's
// instrumented instructions flow through it to the simulator's core
// model. It tracks volume for the §7.3 correlation analysis.
type StreamChannel struct {
	Streams    uint64
	Insts      uint64
	MemOps     uint64
	PeakStream uint64
}

// Deliver accounts one kernel stream passing through the channel and
// returns it for injection.
func (c *StreamChannel) Deliver(s isa.Stream) isa.Stream {
	c.Streams++
	n := s.Instructions()
	c.Insts += n
	c.MemOps += s.MemOps()
	if n > c.PeakStream {
		c.PeakStream = n
	}
	return s
}
