package core

import (
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// This file holds the engine's profile targets: the throughput probe
// plus core-level benchmarks for the three run shapes the fast lane
// covers (single-process, multiprogrammed, trace replay). Profiling any
// of them is one invocation, e.g.:
//
//	go test -run '^$' -bench BenchmarkCoreRunMulti -benchtime 5x \
//	    -cpuprofile cpu.out ./internal/core
//
// The root-package benchmarks (bench_test.go) gate CI via benchdiff;
// these sit below the public API so a profile shows engine frames
// without Session/Option noise on top.

// TestThroughputProbe reports simulation speed at experiment scale; it
// guards against pathological slowdowns in the hot path.
func TestThroughputProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput probe")
	}
	cfg := DefaultConfig()
	cfg.OSCfg.PhysBytes = 2 * mem.GB
	cfg.MaxAppInsts = 2_000_000
	s := MustNewSystem(cfg)
	m := s.Run(byName(t, "BFS", workloads.Params{Scale: 0.25}))

	total := m.AppInsts + m.KernelInsts
	ips := float64(total) / m.WallTime.Seconds()
	t.Logf("app=%d kernel=%d wall=%v => %.1f Minst/s, faults=%d mpki=%.2f ptw=%.1f ipc=%.3f trans=%.1f%% alloc=%.1f%%",
		m.AppInsts, m.KernelInsts, m.WallTime, ips/1e6, m.MinorFaults, m.L2TLBMPKI, m.AvgPTWLat, m.IPC,
		100*m.TranslationFraction(), 100*m.AllocationFraction())
	if ips < 100_000 {
		t.Fatalf("simulation too slow: %.0f inst/s", ips)
	}
}

// BenchmarkCoreSingle is the single-process engine under the default
// (batched) run loop — the baseline profile target.
func BenchmarkCoreSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.OSCfg.PhysBytes = 2 * mem.GB
		cfg.MaxAppInsts = 1_000_000
		s := MustNewSystem(cfg)
		m := s.Run(byName(b, "BFS", workloads.Params{Scale: 0.1}))
		b.ReportMetric(float64(m.AppInsts+m.KernelInsts)/m.WallTime.Seconds(), "sim-inst/s")
	}
}

// BenchmarkCoreRunMulti profiles the multiprogrammed engine: the
// round-robin scheduler, per-process batch buffers, context switches,
// and TLB flush/retention policy all show up here and nowhere else.
func BenchmarkCoreRunMulti(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.OSCfg.PhysBytes = 2 * mem.GB
		cfg.MaxAppInsts = 1_000_000
		s := MustNewSystem(cfg)
		mm, err := s.RunMulti(mixFor(b, workloads.Params{Scale: 0.1}, "BFS", "RND"))
		if err != nil {
			b.Fatal(err)
		}
		agg := mm.Aggregate
		b.ReportMetric(float64(agg.AppInsts+agg.KernelInsts)/agg.WallTime.Seconds(), "sim-inst/s")
		b.ReportMetric(float64(mm.ContextSwitches), "ctx-switches")
	}
}

// BenchmarkCoreTraceReplay profiles the trace-driven frontend at the
// engine level: record decode (the Reader's Peek fast path) feeding the
// batched run loop, with no workload generation in the measured region.
func BenchmarkCoreTraceReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "perf.trc")
	rcfg := DefaultConfig()
	rcfg.OSCfg.PhysBytes = 2 * mem.GB
	rcfg.MaxAppInsts = 1_000_000
	rec := MustNewSystem(rcfg)
	tw, err := trace.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rec.RunRecording(byName(b, "BFS", workloads.Params{Scale: 0.1}), tw); err != nil {
		b.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	w, err := trace.NewWorkload(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rcfg
		cfg.TracePath = path
		cfg.Frontend = FrontendTrace
		s := MustNewSystem(cfg)
		m := s.Run(w)
		b.ReportMetric(float64(m.AppInsts+m.KernelInsts)/m.WallTime.Seconds(), "sim-inst/s")
	}
}
