package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/workloads"
)

// TestThroughputProbe reports simulation speed at experiment scale; it
// guards against pathological slowdowns in the hot path.
func TestThroughputProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput probe")
	}
	cfg := DefaultConfig()
	cfg.OSCfg.PhysBytes = 2 * mem.GB
	cfg.MaxAppInsts = 2_000_000
	s := MustNewSystem(cfg)
	m := s.Run(byName(t, "BFS", workloads.Params{Scale: 0.25}))

	total := m.AppInsts + m.KernelInsts
	ips := float64(total) / m.WallTime.Seconds()
	t.Logf("app=%d kernel=%d wall=%v => %.1f Minst/s, faults=%d mpki=%.2f ptw=%.1f ipc=%.3f trans=%.1f%% alloc=%.1f%%",
		m.AppInsts, m.KernelInsts, m.WallTime, ips/1e6, m.MinorFaults, m.L2TLBMPKI, m.AvgPTWLat, m.IPC,
		100*m.TranslationFraction(), 100*m.AllocationFraction())
	if ips < 100_000 {
		t.Fatalf("simulation too slow: %.0f inst/s", ips)
	}
}
