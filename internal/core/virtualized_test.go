package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/workloads"
)

func TestVirtualizedSystemRuns(t *testing.T) {
	tiny := workloads.Params{Scale: 0.02}

	cfg := DefaultVirtualizedConfig()
	cfg.GuestPhysBytes = 256 * mem.MB
	cfg.HostPhysBytes = 512 * mem.MB
	v := NewVirtualizedSystem(cfg)

	gf, hf, kinsts, ipc := v.Run(byName(t, "2D-Sum", tiny), 150_000)
	if gf == 0 {
		t.Fatal("no guest faults")
	}
	if hf == 0 {
		t.Fatal("no hypervisor (EPT) faults — the nested hand-off never happened")
	}
	if kinsts == 0 {
		t.Fatal("no kernel instructions injected")
	}
	if ipc <= 0 {
		t.Fatal("no progress")
	}
	if v.segvs != 0 {
		t.Fatalf("segvs: %d", v.segvs)
	}
	// Both kernels must have produced streams over the channel.
	if v.StreamChan.Streams < gf+hf {
		t.Fatalf("streams %d < faults %d", v.StreamChan.Streams, gf+hf)
	}
	t.Logf("guest faults=%d host faults=%d kernel insts=%d ipc=%.3f", gf, hf, kinsts, ipc)
}

func TestVirtualizedNestedTLBEffect(t *testing.T) {
	tiny := workloads.Params{Scale: 0.02}

	cfg := DefaultVirtualizedConfig()
	cfg.GuestPhysBytes = 256 * mem.MB
	cfg.HostPhysBytes = 512 * mem.MB
	v := NewVirtualizedSystem(cfg)
	v.Run(byName(t, "2D-Sum", tiny), 150_000)
	// Nested 2D walks must cost more than native ones: with 4K pages a
	// radix-radix walk touches up to 4 guest steps × host translations.
	if avg := v.MMU.Stats().AvgWalkLatency(); avg < 10 {
		t.Fatalf("nested walks implausibly cheap: %.1f cycles", avg)
	}
}
