package core

import (
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/mmu"
	"repro/internal/pagetable"
	"repro/internal/workloads"
)

// VirtualizedSystem implements §6.1: Virtuoso spawns *two* MimicOS
// instances — one imitating the guest OS and one imitating the
// hypervisor (KVM-like). Guest page faults run the guest kernel; when
// the guest's "physical" memory needs backing, the request nests into
// the hypervisor kernel, and the simulator captures the instruction
// streams of both. Address translation uses the two-dimensional nested
// walker (guest PT over the host/extended PT) with a nested TLB.
type VirtualizedSystem struct {
	Guest *mimicos.Kernel // imitates the guest Linux
	Host  *mimicos.Kernel // imitates the hypervisor
	Proc  *mimicos.Process
	hproc *mimicos.Process

	Dram *dram.Controller
	Hier *cache.Hierarchy
	MMU  *mmu.MMU
	Core *cpu.Core

	FuncChan   *FunctionalChannel
	StreamChan *StreamChannel

	// GuestFaults / HostFaults count the nested round trips.
	GuestFaults uint64
	HostFaults  uint64
	segvs       uint64
	hostVABase  mem.VAddr
	refPath     bool
}

// VirtualizedConfig configures the two-kernel system.
type VirtualizedConfig struct {
	GuestPhysBytes uint64 // guest "physical" memory (hypervisor-backed)
	HostPhysBytes  uint64 // machine memory
	CoreCfg        cpu.Config
	CacheCfg       cache.HierarchyConfig
	MMUCfg         mmu.Config
	DramCfg        dram.Config
	Seed           uint64

	// ReferencePath forces Run onto the unbatched per-instruction loop,
	// mirroring Config.ReferencePath for the two-kernel system.
	ReferencePath bool `json:"-"`
}

// DefaultVirtualizedConfig returns a small two-level system.
func DefaultVirtualizedConfig() VirtualizedConfig {
	return VirtualizedConfig{
		GuestPhysBytes: 1 * mem.GB,
		HostPhysBytes:  2 * mem.GB,
		CoreCfg:        cpu.DefaultConfig(),
		CacheCfg:       cache.DefaultHierarchyConfig(),
		MMUCfg:         mmu.DefaultConfig(),
		DramCfg:        dram.DDR4_2400(),
		Seed:           1,
	}
}

// NewVirtualizedSystem wires guest and hypervisor kernels over a nested
// MMU design.
func NewVirtualizedSystem(cfg VirtualizedConfig) *VirtualizedSystem {
	if cfg.GuestPhysBytes == 0 {
		cfg = DefaultVirtualizedConfig()
	}
	v := &VirtualizedSystem{hostVABase: 0x2000_0000_0000, refPath: cfg.ReferencePath}

	gcfg := mimicos.DefaultConfig()
	gcfg.PhysBytes = cfg.GuestPhysBytes
	gcfg.Seed = cfg.Seed
	v.Guest = mimicos.New(gcfg, nil)
	v.Proc = v.Guest.CreateProcess(1)

	hcfg := mimicos.DefaultConfig()
	hcfg.PhysBytes = cfg.HostPhysBytes
	hcfg.Seed = cfg.Seed ^ 0x505
	v.Host = mimicos.New(hcfg, nil)
	v.hproc = v.Host.CreateProcess(1)
	// The hypervisor maps the guest's whole physical address space as one
	// anonymous VMA in its own space (gPA + hostVABase), demand-backed:
	// every first touch of a guest frame is a host-level fault (EPT
	// violation), handled by the hypervisor kernel.
	v.Host.Mmap(1, cfg.GuestPhysBytes, mimicos.MmapFlags{Anon: true, FixedAddr: v.hostVABase})
	v.Host.Tracer.Begin()

	v.Dram = dram.NewController(cfg.DramCfg)
	v.Hier = cache.NewHierarchy(cfg.CacheCfg, v.Dram)

	design := mmu.NewNestedDesign(v.Proc.PT, &hostPT{v: v}, v.Hier)
	v.MMU = mmu.New(cfg.MMUCfg, design, v.Proc.ASID)
	v.Core = cpu.New(cfg.CoreCfg, v.Hier, v.MMU)
	v.FuncChan = NewFunctionalChannel(func(req Request) Response {
		return Response{Fault: v.Guest.HandlePageFault(req.PID, req.VA, req.Write, req.Now)}
	})
	v.StreamChan = &StreamChannel{}
	v.Core.SetFaultHandler(v.handleFault)
	v.Guest.SetUnmapNotifier(func(pid int, va mem.VAddr, size mem.PageSize) {
		v.MMU.Invalidate(va, size)
	})
	return v
}

// hostPT adapts the hypervisor's view (gPA -> hPA, demand-faulted) to
// the nested walker's host dimension: walks consult the hypervisor
// process's page table at the gPA's host virtual address, and a miss is
// an EPT violation handled by the hypervisor kernel.
type hostPT struct {
	v *VirtualizedSystem
}

// Kind implements pagetable.PageTable.
func (h *hostPT) Kind() string { return "ept" }

// Walk implements pagetable.PageTable: it translates a guest-physical
// address through the hypervisor PT, faulting into the hypervisor kernel
// on first touch (EPT violation) — the §6.1 nested hand-off.
func (h *hostPT) Walk(gpa mem.VAddr) pagetable.WalkResult {
	hva := h.v.hostVABase + gpa
	w := h.v.hproc.PT.Walk(hva)
	if !w.Found || !w.Entry.Present {
		out := h.v.Host.HandlePageFault(1, hva, true, h.v.Core.Now())
		h.v.HostFaults++
		if out.OK {
			stream := h.v.StreamChan.Deliver(h.v.Host.TakeStream())
			h.v.Core.RunStream(stream)
			w = h.v.hproc.PT.Walk(hva)
		}
	}
	return w
}

// Lookup implements pagetable.PageTable.
func (h *hostPT) Lookup(gpa mem.VAddr) (pagetable.Entry, bool) {
	return h.v.hproc.PT.Lookup(h.v.hostVABase + gpa)
}

// Insert implements pagetable.PageTable (the hypervisor kernel owns its
// page table; the walker never inserts).
func (h *hostPT) Insert(va mem.VAddr, e pagetable.Entry, k instrument.KernelMem) error {
	return h.v.hproc.PT.Insert(h.v.hostVABase+va, e, k)
}

// Update implements pagetable.PageTable.
func (h *hostPT) Update(va mem.VAddr, e pagetable.Entry, k instrument.KernelMem) bool {
	return h.v.hproc.PT.Update(h.v.hostVABase+va, e, k)
}

// Remove implements pagetable.PageTable.
func (h *hostPT) Remove(va mem.VAddr, k instrument.KernelMem) (pagetable.Entry, bool) {
	return h.v.hproc.PT.Remove(h.v.hostVABase+va, k)
}

// MappedPages implements pagetable.PageTable.
func (h *hostPT) MappedPages() uint64 { return h.v.hproc.PT.MappedPages() }

// MemFootprintBytes implements pagetable.PageTable.
func (h *hostPT) MemFootprintBytes() uint64 { return h.v.hproc.PT.MemFootprintBytes() }

var _ pagetable.PageTable = (*hostPT)(nil)

// handleFault routes guest faults through the functional channel.
func (v *VirtualizedSystem) handleFault(va mem.VAddr, write bool) bool {
	resp := v.FuncChan.Call(Request{Kind: EvPageFault, PID: 1, VA: va, Write: write, Now: v.Core.Now()})
	if !resp.Fault.OK {
		v.segvs++
		return false
	}
	v.GuestFaults++
	v.Core.RunStream(v.StreamChan.Deliver(v.Guest.TakeStream()))
	return true
}

// Run simulates the workload inside the guest.
func (v *VirtualizedSystem) Run(w *workloads.Workload, maxApp uint64) (guestFaults, hostFaults, kernelInsts uint64, ipc float64) {
	v.Guest.Mmap(1, 32*mem.MB, mimicos.MmapFlags{File: true, FileID: 0xC0DE, FixedAddr: 0x400000})
	w.Setup(v.Guest, 1)
	v.Guest.Tracer.Begin()
	src := w.Source(11)
	if v.refPath {
		var in isa.Inst
		for src.Next(&in) {
			v.Core.Run(in)
			if maxApp > 0 && v.Core.Stats().AppInsts >= maxApp {
				break
			}
		}
	} else {
		// Batched fast lane, per-instruction semantics identical to the
		// reference loop above (see System.runFast).
		var buf [batchSize]isa.Inst
	fill:
		for {
			n := isa.FillBatch(src, buf[:])
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				v.Core.Run(buf[i])
				if maxApp > 0 && v.Core.Stats().AppInsts >= maxApp {
					break fill
				}
			}
		}
	}
	st := v.Core.Stats()
	return v.GuestFaults, v.HostFaults, st.KernelInsts, st.IPC()
}
