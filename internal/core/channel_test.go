package core

import (
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mimicos"
)

func TestFunctionalChannelRoundTrip(t *testing.T) {
	ch := NewFunctionalChannel(func(req Request) Response {
		if req.Kind != EvPageFault || req.VA != 0x1234 {
			t.Errorf("request corrupted: %+v", req)
		}
		return Response{Fault: mimicos.FaultOutcome{OK: true, Frame: 0xABC000}}
	})
	resp := ch.Call(Request{Kind: EvPageFault, VA: 0x1234})
	if !resp.Fault.OK || resp.Fault.Frame != 0xABC000 {
		t.Fatalf("response = %+v", resp)
	}
	if ch.Messages != 1 || ch.Doorbell != 2 {
		t.Fatalf("channel accounting: messages=%d doorbells=%d", ch.Messages, ch.Doorbell)
	}
}

func TestFunctionalChannelConcurrentSubmit(t *testing.T) {
	// §4.3: multiple outstanding requests served by kernel workers. The
	// kernel's own locking keeps it correct; the channel must deliver
	// every response.
	cfg := mimicos.DefaultConfig()
	cfg.PhysBytes = 256 * mem.MB
	k := mimicos.New(cfg, nil)
	const procs = 6
	bases := make([]mem.VAddr, procs)
	for i := 0; i < procs; i++ {
		k.CreateProcess(i + 1)
		bases[i] = k.Mmap(i+1, 1*mem.MB, mimicos.MmapFlags{Anon: true})
	}
	ch := NewFunctionalChannel(func(req Request) Response {
		return Response{Fault: k.HandlePageFault(req.PID, req.VA, req.Write, req.Now)}
	})
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				resp := <-ch.Submit(Request{
					Kind: EvPageFault, PID: p + 1,
					VA: bases[p] + mem.VAddr(i*4096), Write: true,
				})
				if !resp.Fault.OK {
					t.Errorf("proc %d fault %d failed", p, i)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if ch.Messages != procs*32 {
		t.Fatalf("messages = %d", ch.Messages)
	}
}

func TestStreamChannelAccounting(t *testing.T) {
	var ch StreamChannel
	s := isa.Stream{isa.ALU(50), isa.Load(1, 0x1000), isa.Store(2, 0x2000)}
	got := ch.Deliver(s)
	if len(got) != len(s) {
		t.Fatal("stream not passed through")
	}
	if ch.Streams != 1 || ch.Insts != 52 || ch.MemOps != 2 {
		t.Fatalf("accounting: %+v", ch)
	}
	ch.Deliver(isa.Stream{isa.ALU(10)})
	if ch.PeakStream != 52 {
		t.Fatalf("peak = %d", ch.PeakStream)
	}
}
