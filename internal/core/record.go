package core

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// RunRecording simulates w exactly like Run while teeing every frontend
// instruction into tw: the address space is set up first, the layout is
// snapshotted into the trace header (minus the text segment, which
// every run maps itself), and then the timed simulation proceeds with a
// trace.Recorder installed as the frontend tap. The returned metrics
// are those of the recording run, and replaying the written trace under
// the same configuration reproduces them deterministically — that
// equivalence is what makes recorded traces a drop-in substitute for
// the live workload.
//
// Like Run, RunRecording consumes the system: build a fresh one per
// recording. The caller owns tw and must Close it (closing also flushes
// the tail of the stream).
func (s *System) RunRecording(w *workloads.Workload, tw *trace.Writer) (Metrics, error) {
	src := s.Prepare(w)
	// Like Run, this owns the frontend it had built: a re-recording of a
	// trace-backed session must release the input file even when the
	// instruction bound stops before its EOF.
	defer closeSource(src)

	hdr := trace.Header{
		Workload:  w.Name(),
		Class:     w.Class(),
		Footprint: w.FootprintBytes(),
		Seed:      s.Cfg.Seed,
	}
	for _, v := range s.Proc.VMAs {
		if v.Start == TextSegBase && v.FileID == TextSegFileID {
			continue
		}
		hdr.Layout = append(hdr.Layout, trace.SegmentOf(v))
	}
	if err := tw.WriteHeader(hdr); err != nil {
		return Metrics{}, err
	}

	rec := trace.NewRecorder(tw)
	s.SetFrontendTap(rec.OnInst)
	defer s.SetFrontendTap(nil)
	s.RunSteps(src, s.Cfg.MaxAppInsts)
	if err := rec.Err(); err != nil {
		return Metrics{}, fmt.Errorf("core: recording: %w", err)
	}
	return s.Collect(w), nil
}
