package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/workloads"
)

func smallSystem(t testing.TB, mut func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.OSCfg.PhysBytes = 1 * mem.GB
	cfg.MaxAppInsts = 200_000
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

// byName builds a catalog workload with explicit parameters.
func byName(t testing.TB, name string, p workloads.Params) *workloads.Workload {
	t.Helper()
	w, ok := workloads.ByNameWith(name, p)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return w
}

func TestRunQuickstartWorkload(t *testing.T) {
	tiny := workloads.Params{Scale: 0.05}

	s := smallSystem(t, nil)
	m := s.Run(byName(t, "2D-Sum", tiny))

	if m.AppInsts == 0 {
		t.Fatal("no application instructions executed")
	}
	if m.Cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	if m.MinorFaults == 0 {
		t.Fatal("expected first-touch minor faults")
	}
	if m.KernelInsts == 0 {
		t.Fatal("imitation mode must inject kernel instructions")
	}
	if m.Segvs != 0 {
		t.Fatalf("unexpected segvs: %d", m.Segvs)
	}
	if m.IPC <= 0 || m.IPC > 4 {
		t.Fatalf("implausible IPC %f", m.IPC)
	}
	t.Logf("insts=%d kinsts=%d cycles=%d ipc=%.3f faults=%d mpki=%.2f ptw=%.1f",
		m.AppInsts, m.KernelInsts, m.Cycles, m.IPC, m.MinorFaults, m.L2TLBMPKI, m.AvgPTWLat)
}

func TestEmulationModeInjectsNothing(t *testing.T) {
	tiny := workloads.Params{Scale: 0.05}

	s := smallSystem(t, func(c *Config) {
		c.Mode = Emulation
		c.FixedPTWLat = 60
		c.FixedFaultLat = 5800
	})
	m := s.Run(byName(t, "2D-Sum", tiny))
	if m.KernelInsts != 0 {
		t.Fatalf("emulation mode injected %d kernel instructions", m.KernelInsts)
	}
	if m.MinorFaults == 0 {
		t.Fatal("functional faults must still happen")
	}
	if m.Dram.Accesses[mem.ATPTE] != 0 {
		t.Fatalf("fixed walker must not touch DRAM for PTEs, saw %d", m.Dram.Accesses[mem.ATPTE])
	}
}

func TestAllDesignsRun(t *testing.T) {
	tiny := workloads.Params{Scale: 0.03}

	designs := []DesignName{DesignRadix, DesignECH, DesignHDC, DesignHT, DesignUtopia, DesignRMM, DesignMidgard}
	for _, d := range designs {
		d := d
		t.Run(string(d), func(t *testing.T) {
			s := smallSystem(t, func(c *Config) {
				c.Design = d
				c.MaxAppInsts = 100_000
				switch d {
				case DesignUtopia:
					c.Policy = PolicyUtopia
					c.UtopiaSegs = []UtopiaSegSpec{{SizeBytes: 128 * mem.MB, Ways: 16, PageSize: mem.Page4K}}
				case DesignRMM:
					c.Policy = PolicyEager
				case DesignECH, DesignHDC, DesignHT:
					c.Policy = PolicyBuddy
				}
			})
			m := s.Run(byName(t, "Hadamard", tiny))
			if m.Segvs != 0 {
				t.Fatalf("%s: %d segvs", d, m.Segvs)
			}
			if m.MinorFaults == 0 {
				t.Fatalf("%s: no faults", d)
			}
			if m.IPC <= 0 {
				t.Fatalf("%s: zero IPC", d)
			}
			t.Logf("%s: ipc=%.3f faults=%d ptw=%.1f walks=%d", d, m.IPC, m.MinorFaults, m.AvgPTWLat, m.Walks)
		})
	}
}

func TestAllPoliciesRun(t *testing.T) {
	tiny := workloads.Params{Scale: 0.03}

	pols := []PolicyName{PolicyBuddy, PolicyTHP, PolicyCRTHP, PolicyARTHP}
	for _, p := range pols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			s := smallSystem(t, func(c *Config) {
				c.Policy = p
				c.MaxAppInsts = 100_000
			})
			m := s.Run(byName(t, "JSON", tiny))
			if m.Segvs != 0 {
				t.Fatalf("%s: %d segvs", p, m.Segvs)
			}
			if m.MinorFaults == 0 {
				t.Fatalf("%s: no faults", p)
			}
		})
	}
}

func TestMmapSyscallThroughChannel(t *testing.T) {
	s := smallSystem(t, nil)
	base := s.Mmap(8*mem.MB, mimicos.MmapFlags{Anon: true})
	if base == 0 {
		t.Fatal("mmap returned zero base")
	}
	if s.FuncChan.Messages == 0 {
		t.Fatal("functional channel saw no messages")
	}
	if s.OS.VMAOf(1, base) == nil {
		t.Fatal("VMA not created")
	}
}
