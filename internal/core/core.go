package core
