package core

// Streaming observation: a run can emit periodic Snapshots of its
// counters to an installed observer — the hook behind the public
// virtuoso.WithObserver API. Observation is strictly read-only: the
// observer receives copies of cumulative counters and cannot perturb
// the simulation, so an observed run is byte-identical to an unobserved
// one (guarded by TestObserverDeterminism at the root).

// DefaultObserveEvery is the snapshot interval in application
// instructions when the observer is installed without an explicit one.
const DefaultObserveEvery = 250_000

// Snapshot is one interval observation of a running simulation. All
// counters are cumulative since the start of the run; per-interval
// rates are the differences between consecutive snapshots. The final
// snapshot of a completed run (Final == true) is taken at the same
// instant the run's Metrics are collected, so its counters equal the
// corresponding Metrics fields exactly.
type Snapshot struct {
	// Seq numbers snapshots from 0 in emission order.
	Seq int
	// Final marks the closing snapshot of a completed run.
	Final bool

	AppInsts    uint64
	KernelInsts uint64
	Cycles      uint64

	L2TLBMisses uint64
	Walks       uint64
	WalkCycles  uint64

	MinorFaults uint64
	MajorFaults uint64
	SwapIns     uint64
	SwapOuts    uint64
	Collapses   uint64

	// Promotions / Demotions count tiered-memory migrations so far
	// (always zero without slow tiers configured).
	Promotions uint64
	Demotions  uint64

	// ContextSwitches counts scheduler dispatches so far (always zero
	// in single-workload runs).
	ContextSwitches uint64
}

// IPC returns the snapshot's cumulative instructions per cycle.
func (s Snapshot) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.AppInsts) / float64(s.Cycles)
}

// SetObserver installs a streaming observer: Run and RunMulti call f
// with a Snapshot roughly every `every` application instructions (0 =
// DefaultObserveEvery) and once more, with Final set, when the run
// completes. Pass nil to remove. The callback runs on the simulation
// goroutine — keep it cheap, and do not touch the System from inside
// it.
func (s *System) SetObserver(f func(Snapshot), every uint64) {
	s.observer = f
	if every == 0 {
		every = DefaultObserveEvery
	}
	s.observeEvery = every
	s.nextObserve = every
	s.obsSeq = 0
}

// maybeObserve emits a snapshot when the run has crossed the next
// observation threshold. Called from the run loops only when an
// observer is installed.
func (s *System) maybeObserve() {
	if s.Core.Stats().AppInsts < s.nextObserve {
		return
	}
	s.emitSnapshot(false)
	// Advance past the counter (instructions retire in batches, so one
	// step can cross several intervals).
	for s.nextObserve <= s.Core.Stats().AppInsts {
		s.nextObserve += s.observeEvery
	}
}

// finishObserve emits the closing snapshot of a completed run, taken at
// the same counter state Metrics collection reads.
func (s *System) finishObserve() {
	if s.observer == nil {
		return
	}
	s.emitSnapshot(true)
}

func (s *System) emitSnapshot(final bool) {
	cs := s.Core.Stats()
	ms := s.MMU.Stats()
	os := s.OS.Stats()
	snap := Snapshot{
		Seq:   s.obsSeq,
		Final: final,

		AppInsts:    cs.AppInsts,
		KernelInsts: cs.KernelInsts,
		Cycles:      cs.Cycles,

		L2TLBMisses: ms.L2TLBMisses,
		Walks:       ms.Walks,
		WalkCycles:  ms.WalkCycles,

		MinorFaults: os.MinorFaults,
		MajorFaults: os.MajorFaults,
		SwapIns:     os.SwapIns,
		SwapOuts:    os.SwapOuts,
		Collapses:   os.Collapses,

		Promotions: os.Promotions,
		Demotions:  os.Demotions,

		ContextSwitches: s.obsCtxSwitches,
	}
	s.obsSeq++
	s.observer(snap)
}
