// Multiprogrammed simulation: a MimicOS scheduler interleaves N
// processes — each with its own PID, ASID, page table, translation
// design, and frontend instruction source — on the single simulated
// core, in round-robin time slices of a configurable quantum. All
// processes share one physical memory, so the aggregate footprint
// drives real pressure into the swap and khugepaged paths, and the TLB
// hierarchy either flushes on every switch or retains entries by ASID
// (Config.ASIDRetention), making the retention benefit measurable.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mimicos"
	"repro/internal/mmu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Process is one schedulable simulated process: a workload bound to its
// own address space (MimicOS mm state + ASID), its own translation
// design instance (page-table root, walk caches, design tables — the
// state a CR3 write switches), and per-process accounting.
type Process struct {
	PID    int
	ASID   uint16
	W      *workloads.Workload
	OS     *mimicos.Process
	Design mmu.Design

	src      isa.Source
	finished bool
	acc      procAccum

	// Fast-lane read-ahead: instructions batched out of src, persisted
	// across scheduling slices so a quantum boundary mid-batch loses
	// nothing. Unused (nil) on the reference path.
	buf    []isa.Inst
	bufPos int
	bufN   int
}

// next produces the process's next instruction, refilling the batch
// buffer when drained. With a nil buffer (reference path) it is a plain
// per-instruction source read.
func (p *Process) next(in *isa.Inst) bool {
	if p.buf == nil {
		return p.src.Next(in)
	}
	if p.bufPos == p.bufN {
		p.bufN = isa.FillBatch(p.src, p.buf)
		p.bufPos = 0
		if p.bufN == 0 {
			return false
		}
	}
	*in = p.buf[p.bufPos]
	p.bufPos++
	return true
}

// procAccum collects per-process deltas of the shared core/MMU counters
// across the process's scheduling slices.
type procAccum struct {
	slices            uint64
	appInsts          uint64
	kernelInsts       uint64
	cycles            uint64
	translationCycles uint64
	memoryCycles      uint64
	faultCycles       uint64
	l2TLBMisses       uint64
	walks             uint64
	walkCycles        uint64
}

// addSlice accumulates the counter deltas of one scheduling slice.
func (p *Process) addSlice(c0, c1 cpu.Stats, m0, m1 mmu.Stats) {
	p.acc.appInsts += c1.AppInsts - c0.AppInsts
	p.acc.kernelInsts += c1.KernelInsts - c0.KernelInsts
	p.acc.cycles += c1.Cycles - c0.Cycles
	p.acc.translationCycles += c1.TranslationCycles - c0.TranslationCycles
	p.acc.memoryCycles += c1.MemoryCycles - c0.MemoryCycles
	p.acc.faultCycles += c1.FaultCycles - c0.FaultCycles
	p.acc.l2TLBMisses += m1.L2TLBMisses - m0.L2TLBMisses
	p.acc.walks += m1.Walks - m0.Walks
	p.acc.walkCycles += m1.WalkCycles - m0.WalkCycles
	p.acc.slices++
}

// ProcessMetrics is one process's share of a multiprogrammed run: the
// core/MMU counters accumulated over its scheduling slices plus the
// kernel events attributed to it (including daemon work — a khugepaged
// collapse of its regions counts here even if another process's fault
// drove the scan).
type ProcessMetrics struct {
	PID      int    `json:"pid"`
	ASID     uint16 `json:"asid"`
	Workload string `json:"workload"`

	Slices      uint64 `json:"slices"`
	AppInsts    uint64 `json:"app_insts"`
	KernelInsts uint64 `json:"kernel_insts"`
	Cycles      uint64 `json:"cycles"`

	IPC               float64 `json:"ipc"`
	TranslationCycles uint64  `json:"translation_cycles"`
	MemoryCycles      uint64  `json:"memory_cycles"`
	FaultCycles       uint64  `json:"fault_cycles"`
	L2TLBMisses       uint64  `json:"l2_tlb_misses"`
	L2TLBMPKI         float64 `json:"l2_tlb_mpki"`
	Walks             uint64  `json:"walks"`
	AvgPTWLat         float64 `json:"avg_ptw_lat"`

	// Finished reports whether the process ran to completion (false only
	// when the run was interrupted).
	Finished bool `json:"finished"`

	// OS is the kernel event share attributed to this PID (faults, swap
	// in/out, collapses, reclaim, ...).
	OS mimicos.Stats `json:"os"`
}

// MultiMetrics is the result of one multiprogrammed run: aggregate
// whole-system metrics plus the per-process breakdown and scheduler
// accounting.
type MultiMetrics struct {
	// Mix lists the workload names in process (PID) order.
	Mix []string `json:"mix"`
	// Quantum and ASIDRetention echo the scheduler configuration.
	Quantum       uint64 `json:"quantum"`
	ASIDRetention bool   `json:"asid_retention"`

	// ContextSwitches counts dispatches of a different process; the
	// cycles they cost are in Aggregate.CtxSwitchCycles. TLBFlushes
	// counts whole-hierarchy flushes issued by dispatches (zero in
	// retention mode).
	ContextSwitches uint64 `json:"context_switches"`
	TLBFlushes      uint64 `json:"tlb_flushes"`

	Aggregate Metrics          `json:"aggregate"`
	Procs     []ProcessMetrics `json:"procs"`
}

// MixName joins the mix's workload names into the run's display name.
func MixName(names []string) string { return strings.Join(names, "+") }

// procByPID returns the multiprogrammed process with the given PID, or
// nil (always nil in single-workload runs).
func (s *System) procByPID(pid int) *Process {
	for _, p := range s.procs {
		if p.PID == pid {
			return p
		}
	}
	return nil
}

// Processes exposes the multiprogrammed process table (nil before
// RunMulti) for tests and advanced drivers.
func (s *System) Processes() []*Process { return s.procs }

// Finished reports whether the process ran its source to completion
// (or its instruction bound) and was reaped.
func (p *Process) Finished() bool { return p.finished }

// attachProcess binds workload w to a process: PID 1 reuses the address
// space NewSystem created; later PIDs get a fresh MimicOS process with
// their own design state.
func (s *System) attachProcess(pid int, w *workloads.Workload) (*Process, error) {
	op := s.Proc
	design := s.design
	if pid != 1 {
		op = s.OS.CreateProcess(pid)
		switch s.Cfg.Design {
		case DesignRMM:
			s.OS.EnableRMM(op)
		case DesignMidgard:
			s.OS.EnableMidgard(op)
		}
		var err error
		design, err = s.buildDesignFor(op)
		if err != nil {
			return nil, err
		}
	}
	return &Process{PID: pid, ASID: op.ASID, W: w, OS: op, Design: design}, nil
}

// dispatch installs p's address-space context on the core: kernel-side
// mm state for fault handling, and the MMU's ASID + design. Without
// ASID retention the dispatch flushes the TLB hierarchy, as an
// untagged-TLB context switch must.
func (s *System) dispatch(p *Process) {
	s.Proc = p.OS
	s.cur = p
	s.MMU.SwitchContext(p.ASID, p.Design, !s.Cfg.ASIDRetention)
}

// frontendSalt decorrelates per-process instruction streams so two
// instances of one workload in a mix do not execute identical accesses.
func frontendSalt(pid int) uint64 {
	if pid == 1 {
		return 0
	}
	return uint64(pid) * 0x9E37_79B9_7F4A_7C15
}

// RunMulti simulates the given workloads as concurrent processes under
// the MimicOS round-robin scheduler and returns aggregate plus
// per-process metrics. Config.MaxAppInsts bounds each process
// individually (0 = run every workload to completion). The run is fully
// deterministic: the schedule advances on simulated cycles only, so the
// same configuration yields byte-identical results on every execution,
// sequential or inside a parallel sweep.
//
// The utopia design/policy is not supported (RestSeg tags are not
// ASID-scoped), nor are trace-driven frontends (a trace captures one
// address space). Like Run, RunMulti consumes the system.
func (s *System) RunMulti(ws []*workloads.Workload) (MultiMetrics, error) {
	if len(ws) == 0 {
		return MultiMetrics{}, fmt.Errorf("core: RunMulti needs at least one workload")
	}
	if s.Cfg.Design == DesignUtopia || s.Cfg.Policy == PolicyUtopia {
		return MultiMetrics{}, fmt.Errorf("core: multiprogramming does not support the utopia design/policy (RestSeg tags are not ASID-scoped)")
	}
	if s.Cfg.TracePath != "" {
		return MultiMetrics{}, fmt.Errorf("core: multiprogramming does not support trace-driven frontends")
	}
	if s.procs != nil {
		return MultiMetrics{}, fmt.Errorf("core: RunMulti already called on this system")
	}
	quantum := s.Cfg.QuantumCycles
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	csCost := s.Cfg.CtxSwitchCycles
	if csCost == 0 {
		csCost = DefaultCtxSwitchCost
	}
	if s.Cfg.TrackPFLatencies {
		s.PFLatNs = stats.NewSeries(4096)
		s.MajorPFLatNs = stats.NewSeries(256)
	}

	mix := make([]string, len(ws))
	for i, w := range ws {
		p, err := s.attachProcess(i+1, w)
		if err != nil {
			return MultiMetrics{}, err
		}
		s.procs = append(s.procs, p)
		mix[i] = w.Name()
	}

	// Address-space setup (exec/loader phase) for every process —
	// functional only, setup streams dropped — then the per-process
	// frontends.
	for _, p := range s.procs {
		s.OS.Mmap(p.PID, TextSegBytes, mimicos.MmapFlags{
			File: true, FileID: TextSegFileID, FixedAddr: TextSegBase,
		})
		p.W.Setup(s.OS, p.PID)
	}
	s.OS.Tracer.Begin()
	// Finished processes close their sources (and nil them) at exit;
	// this releases the rest when cancellation stops the schedule early
	// or a frontend fails to open partway through the loop below
	// (file-backed sources hold descriptors and decode goroutines).
	defer func() {
		for _, p := range s.procs {
			if p.src != nil {
				closeSource(p.src)
			}
		}
	}()
	for _, p := range s.procs {
		p.src = s.makeFrontendSeeded(p.W, frontendSalt(p.PID))
		if !s.Cfg.ReferencePath {
			p.buf = make([]isa.Inst, batchSize)
		}
	}

	mm := MultiMetrics{Mix: mix, Quantum: quantum, ASIDRetention: s.Cfg.ASIDRetention}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	wallStart := time.Now()

	maxPer := s.Cfg.MaxAppInsts
	runnable := len(s.procs)
	cur := -1
	var polled uint64
	var in isa.Inst
sched:
	for runnable > 0 {
		// Round-robin: the next runnable process after the current one.
		next := cur
		for off := 1; off <= len(s.procs); off++ {
			c := (cur + len(s.procs) + off) % len(s.procs)
			if !s.procs[c].finished {
				next = c
				break
			}
		}
		p := s.procs[next]
		if next != cur {
			if cur != -1 {
				s.Core.ContextSwitch(csCost)
				mm.ContextSwitches++
				s.obsCtxSwitches = mm.ContextSwitches
			}
			s.dispatch(p)
			if !s.Cfg.ASIDRetention {
				mm.TLBFlushes++
			}
		}
		cur = next

		sliceEnd := s.Core.Now() + quantum
		snapCore := *s.Core.Stats()
		snapMMU := *s.MMU.Stats()
		for {
			if !p.next(&in) {
				p.finished = true
				break
			}
			s.Core.Run(in)
			if s.observer != nil {
				s.maybeObserve()
			}
			if maxPer > 0 && p.acc.appInsts+(s.Core.Stats().AppInsts-snapCore.AppInsts) >= maxPer {
				p.finished = true
				break
			}
			if s.Core.Now() >= sliceEnd {
				break
			}
			if polled++; polled%cancelStride == 0 && s.Cancelled() {
				s.interrupted = true
				p.addSlice(snapCore, *s.Core.Stats(), snapMMU, *s.MMU.Stats())
				break sched
			}
		}
		p.addSlice(snapCore, *s.Core.Stats(), snapMMU, *s.MMU.Stats())
		if p.finished {
			closeSource(p.src)
			p.src = nil
			// Exit and reap: VMAs torn down, frames freed, the ASID
			// flushed hierarchy-wide (exit notifier) and recycled. In
			// imitation mode the traced do_exit/teardown stream is
			// injected like any other kernel work, so reaping a large
			// address space costs real cycles (charged to the system,
			// not the dead process's slices).
			s.OS.ExitProcess(p.PID)
			if s.Cfg.Mode == Imitation {
				s.Core.RunStream(s.StreamChan.Deliver(s.OS.TakeStream()))
			}
			runnable--
		}
	}

	if !s.interrupted {
		s.finishObserve()
	}

	wall := time.Since(wallStart)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	mm.Aggregate = s.collect(MixName(mix), wall, msBefore, msAfter)
	for _, p := range s.procs {
		mm.Procs = append(mm.Procs, p.metrics())
	}
	return mm, nil
}

// metrics packages the process's accumulated counters.
func (p *Process) metrics() ProcessMetrics {
	pm := ProcessMetrics{
		PID:      p.PID,
		ASID:     p.ASID,
		Workload: p.W.Name(),

		Slices:      p.acc.slices,
		AppInsts:    p.acc.appInsts,
		KernelInsts: p.acc.kernelInsts,
		Cycles:      p.acc.cycles,

		TranslationCycles: p.acc.translationCycles,
		MemoryCycles:      p.acc.memoryCycles,
		FaultCycles:       p.acc.faultCycles,
		L2TLBMisses:       p.acc.l2TLBMisses,
		Walks:             p.acc.walks,

		Finished: p.finished,
		OS:       p.OS.Stat,
	}
	if pm.Cycles > 0 {
		pm.IPC = float64(pm.AppInsts) / float64(pm.Cycles)
	}
	if pm.AppInsts > 0 {
		pm.L2TLBMPKI = float64(pm.L2TLBMisses) / float64(pm.AppInsts) * 1000
	}
	if pm.Walks > 0 {
		pm.AvgPTWLat = float64(p.acc.walkCycles) / float64(pm.Walks)
	}
	return pm
}
