package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"

	"repro/internal/isa"
)

// Writer streams a trace to an underlying writer: a fixed header first
// (WriteHeader), then one record per instruction (WriteInst). It
// buffers at most one record block and never holds more; Close flushes
// (and, for v2, writes the block index and trailer) and closes whatever
// Create opened.
//
// A Writer emits either format version:
//
//   - v2 (Create, NewWriterV2): records are gathered into fixed-size
//     blocks, each compressed as an independent flate frame with its
//     own delta-decode state, and Close appends the block index and
//     trailer that make the file seekable.
//   - v1 (CreateV1, NewWriter): the legacy single sequential record
//     stream, optionally inside a whole-file gzip envelope.
type Writer struct {
	file *os.File
	gz   *gzip.Writer
	bw   *bufio.Writer
	cw   *countWriter // v2: beneath bw, tracks flushed file offsets

	version    int
	headerDone bool
	closed     bool
	prevPC     uint64
	prevAddr   uint64

	records  uint64
	insts    uint64
	memOps   uint64
	segments int

	// v2 block state: the current block's encoded records and counts,
	// the reusable compressor, and the accumulated index.
	blkRaw     []byte
	blkRecords uint64
	blkInsts   uint64
	blkMemOps  uint64
	comp       bytes.Buffer
	fw         *flate.Writer
	index      []blockInfo
	rawBytes   uint64
	compBytes  uint64
	indexBytes int
	v2err      error

	buf [binary.MaxVarintLen64]byte
}

// Create opens path for writing and returns a v2 Writer over it. The
// v2 container is block-compressed regardless of the file extension.
// Call WriteHeader before the first WriteInst, and Close when done.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	w := NewWriterV2(f)
	w.file = f
	return w, nil
}

// CreateV1 opens path for writing in the legacy v1 format. A ".gz"
// extension selects the whole-file gzip envelope; any other extension
// writes the raw v1 stream. Readers accept both versions forever.
func CreateV1(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	w := NewWriter(f, Compressed(path))
	w.file = f
	return w, nil
}

// Compressed reports whether path selects the gzip envelope for a v1
// writer (a ".gz" extension). Readers do not consult the extension:
// they sniff the file's leading magic bytes.
func Compressed(path string) bool { return strings.HasSuffix(path, ".gz") }

// NewWriter returns a v1 Writer over an arbitrary io.Writer, with or
// without the gzip envelope. The caller owns the underlying writer;
// Close flushes the envelope but does not close it.
func NewWriter(out io.Writer, compress bool) *Writer {
	w := &Writer{version: Version1}
	if compress {
		w.gz = gzip.NewWriter(out)
		w.bw = bufio.NewWriterSize(w.gz, 1<<16)
	} else {
		w.bw = bufio.NewWriterSize(out, 1<<16)
	}
	return w
}

// NewWriterV2 returns a v2 Writer over an arbitrary io.Writer. The
// caller owns the underlying writer; Close appends the index and
// trailer and flushes, but does not close it.
func NewWriterV2(out io.Writer) *Writer {
	cw := &countWriter{w: out}
	return &Writer{version: Version2, cw: cw, bw: bufio.NewWriterSize(cw, 1<<16)}
}

// WriteHeader writes the magic, version, and metadata. It must be
// called exactly once, before any WriteInst.
func (w *Writer) WriteHeader(h Header) error {
	if w.headerDone {
		return fmt.Errorf("trace: header already written")
	}
	if len(h.Workload) > maxNameLen {
		return fmt.Errorf("trace: workload name %d bytes exceeds %d", len(h.Workload), maxNameLen)
	}
	if len(h.Layout) > maxSegments {
		return fmt.Errorf("trace: layout %d segments exceeds %d", len(h.Layout), maxSegments)
	}
	if _, err := w.bw.WriteString(Magic); err != nil {
		return err
	}
	if err := w.bw.WriteByte(byte(w.version)); err != nil {
		return err
	}
	if err := w.bw.WriteByte(VersionMinor); err != nil {
		return err
	}
	// Flags: reserved, zero in both versions.
	if _, err := w.bw.Write([]byte{0, 0}); err != nil {
		return err
	}
	w.uvarint(uint64(len(h.Workload)))
	w.bw.WriteString(h.Workload)
	w.uvarint(uint64(h.Class))
	w.uvarint(h.Footprint)
	w.uvarint(h.Seed)
	w.uvarint(uint64(len(h.Layout)))
	for _, seg := range h.Layout {
		w.uvarint(uint64(seg.Start))
		w.uvarint(seg.Length)
		w.bw.WriteByte(seg.flagBits())
		w.uvarint(seg.FileID)
	}
	w.headerDone = true
	w.segments = len(h.Layout)
	return w.err()
}

// WriteInst appends one instruction record. Records are canonicalised:
// a zero Count is stored as 1 (the two are semantically identical, see
// isa.Inst.N) and the address field is stored only for ops that carry a
// memory operand.
func (w *Writer) WriteInst(in isa.Inst) error {
	if !w.headerDone {
		return fmt.Errorf("trace: WriteInst before WriteHeader")
	}
	if w.version == Version2 {
		return w.writeInst2(in)
	}
	ctrl := uint8(in.Op) & ctrlOpMask
	if in.Phys {
		ctrl |= ctrlPhys
	}
	count := in.N()
	if count > 1 {
		ctrl |= ctrlHasCount
	}
	if in.PC != w.prevPC {
		ctrl |= ctrlHasPC
	}
	hasAddr := in.Op.HasMemOperand()
	if hasAddr {
		ctrl |= ctrlHasAddr
	}
	if err := w.bw.WriteByte(ctrl); err != nil {
		return err
	}
	if ctrl&ctrlHasPC != 0 {
		w.varint(int64(in.PC - w.prevPC))
		w.prevPC = in.PC
	}
	if ctrl&ctrlHasCount != 0 {
		w.uvarint(count)
	}
	if hasAddr {
		w.varint(int64(in.Addr - w.prevAddr))
		w.prevAddr = in.Addr
	}
	w.records++
	if in.Op != isa.OpDelay {
		w.insts += count
	}
	if hasAddr {
		w.memOps += count
	}
	return w.err()
}

// writeInst2 encodes one record into the current block's raw buffer
// and seals the block when it reaches blockRecords records. The record
// encoding is byte-identical to v1; only the framing differs.
func (w *Writer) writeInst2(in isa.Inst) error {
	if w.v2err != nil {
		return w.v2err
	}
	ctrl := uint8(in.Op) & ctrlOpMask
	if in.Phys {
		ctrl |= ctrlPhys
	}
	count := in.N()
	if count > 1 {
		ctrl |= ctrlHasCount
	}
	if in.PC != w.prevPC {
		ctrl |= ctrlHasPC
	}
	hasAddr := in.Op.HasMemOperand()
	if hasAddr {
		ctrl |= ctrlHasAddr
	}
	w.blkRaw = append(w.blkRaw, ctrl)
	if ctrl&ctrlHasPC != 0 {
		w.blkRaw = binary.AppendVarint(w.blkRaw, int64(in.PC-w.prevPC))
		w.prevPC = in.PC
	}
	if ctrl&ctrlHasCount != 0 {
		w.blkRaw = binary.AppendUvarint(w.blkRaw, count)
	}
	if hasAddr {
		w.blkRaw = binary.AppendVarint(w.blkRaw, int64(in.Addr-w.prevAddr))
		w.prevAddr = in.Addr
	}
	w.blkRecords++
	w.records++
	if in.Op != isa.OpDelay {
		w.blkInsts += count
		w.insts += count
	}
	if hasAddr {
		w.blkMemOps += count
		w.memOps += count
	}
	if w.blkRecords >= blockRecords {
		return w.flushBlock()
	}
	return nil
}

// flushBlock seals the current block: compress it as an independent
// flate frame, write the block header, payload and CRC, record the
// index entry, and reset the per-block delta state so the next block
// decodes from scratch.
func (w *Writer) flushBlock() error {
	if w.blkRecords == 0 {
		return nil
	}
	// The index needs the block's exact file offset; flushing the
	// buffered writer makes the byte count under it current.
	if err := w.bw.Flush(); err != nil {
		w.v2err = err
		return err
	}
	off := w.cw.n
	w.comp.Reset()
	if w.fw == nil {
		fw, err := flate.NewWriter(&w.comp, flate.DefaultCompression)
		if err != nil {
			w.v2err = err
			return err
		}
		w.fw = fw
	} else {
		w.fw.Reset(&w.comp)
	}
	if _, err := w.fw.Write(w.blkRaw); err != nil {
		w.v2err = err
		return err
	}
	if err := w.fw.Close(); err != nil {
		w.v2err = err
		return err
	}
	crc := crc32.ChecksumIEEE(w.comp.Bytes())
	w.uvarint(w.blkRecords)
	w.uvarint(w.blkInsts)
	w.uvarint(w.blkMemOps)
	w.uvarint(uint64(len(w.blkRaw)))
	w.uvarint(uint64(w.comp.Len()))
	w.bw.Write(w.comp.Bytes())
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc)
	w.bw.Write(crcb[:])
	w.index = append(w.index, blockInfo{
		Off:     off,
		Records: w.blkRecords,
		Insts:   w.blkInsts,
		MemOps:  w.blkMemOps,
		RawLen:  uint64(len(w.blkRaw)),
		CompLen: uint64(w.comp.Len()),
		CRC:     crc,
	})
	w.rawBytes += uint64(len(w.blkRaw))
	w.compBytes += uint64(w.comp.Len())
	w.blkRaw = w.blkRaw[:0]
	w.blkRecords, w.blkInsts, w.blkMemOps = 0, 0, 0
	w.prevPC, w.prevAddr = 0, 0
	return w.err()
}

// finishV2 seals the last block and appends the sentinel, the block
// index, and the trailer.
func (w *Writer) finishV2() error {
	if err := w.flushBlock(); err != nil {
		return err
	}
	w.uvarint(0) // sentinel: a zero record count ends the block section
	if err := w.bw.Flush(); err != nil {
		return err
	}
	indexOff := w.cw.n
	idx := appendIndex(nil, w.index)
	w.indexBytes = len(idx)
	w.bw.Write(idx)
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:8], indexOff)
	binary.LittleEndian.PutUint32(tr[8:12], uint32(len(idx)))
	binary.LittleEndian.PutUint32(tr[12:16], crc32.ChecksumIEEE(idx))
	copy(tr[16:20], TrailerMagic)
	w.bw.Write(tr[:])
	return w.err()
}

// Records returns the number of records written so far.
func (w *Writer) Records() uint64 { return w.records }

// Insts returns the dynamic instruction count written so far (batched
// ops at their batch size, delays excluded).
func (w *Writer) Insts() uint64 { return w.insts }

// MemOps returns the memory-operand instruction count written so far.
func (w *Writer) MemOps() uint64 { return w.memOps }

// Segments returns the number of layout segments in the written header.
func (w *Writer) Segments() int { return w.segments }

// Version returns the format version the Writer emits (Version1 or
// Version2).
func (w *Writer) Version() int { return w.version }

// Blocks returns the number of sealed v2 blocks; the count is complete
// only after Close.
func (w *Writer) Blocks() int { return len(w.index) }

// IndexBytes returns the serialised v2 index size; valid after Close.
func (w *Writer) IndexBytes() int { return w.indexBytes }

// RawBytes returns the total uncompressed block payload written; valid
// after Close.
func (w *Writer) RawBytes() uint64 { return w.rawBytes }

// CompBytes returns the total compressed block payload written; valid
// after Close.
func (w *Writer) CompBytes() uint64 { return w.compBytes }

// Close flushes the stream — sealing the final block and writing the
// index and trailer for v2, finishing the gzip envelope for v1 — and
// closes the file if the Writer came from Create/CreateV1. Close is
// idempotent; only the first call writes anything.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.version == Version2 && w.headerDone {
		err = w.finishV2()
	}
	if e := w.bw.Flush(); err == nil {
		err = e
	}
	if w.gz != nil {
		if e := w.gz.Close(); err == nil {
			err = e
		}
	}
	if w.file != nil {
		if e := w.file.Close(); err == nil {
			err = e
		}
	}
	return err
}

func (w *Writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.bw.Write(w.buf[:n])
}

func (w *Writer) varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.bw.Write(w.buf[:n])
}

// err surfaces the bufio writer's sticky error, so callers see write
// failures at the call that caused them rather than only at Close.
func (w *Writer) err() error {
	_, err := w.bw.Write(nil)
	return err
}

// countWriter counts bytes written through it; the v2 writer keeps it
// beneath the buffered writer so flushing yields exact file offsets
// for the block index.
type countWriter struct {
	w io.Writer
	n uint64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}
