package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/isa"
)

// Writer streams a trace to an underlying writer: a fixed header first
// (WriteHeader), then one record per instruction (WriteInst). It
// buffers a few kilobytes and never holds more; Close flushes and
// closes whatever Create opened.
type Writer struct {
	file *os.File
	gz   *gzip.Writer
	bw   *bufio.Writer

	headerDone bool
	prevPC     uint64
	prevAddr   uint64

	records  uint64
	insts    uint64
	memOps   uint64
	segments int

	buf [binary.MaxVarintLen64]byte
}

// Create opens path for writing and returns a Writer over it. A ".gz"
// extension selects the gzip envelope; any other extension writes the
// raw format. Call WriteHeader before the first WriteInst, and Close
// when done.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	w := NewWriter(f, Compressed(path))
	w.file = f
	return w, nil
}

// Compressed reports whether path selects the gzip envelope (a ".gz"
// extension).
func Compressed(path string) bool { return strings.HasSuffix(path, ".gz") }

// NewWriter returns a Writer over an arbitrary io.Writer, with or
// without the gzip envelope. The caller owns the underlying writer;
// Close flushes the envelope but does not close it.
func NewWriter(out io.Writer, compress bool) *Writer {
	w := &Writer{}
	if compress {
		w.gz = gzip.NewWriter(out)
		w.bw = bufio.NewWriterSize(w.gz, 1<<16)
	} else {
		w.bw = bufio.NewWriterSize(out, 1<<16)
	}
	return w
}

// WriteHeader writes the magic, version, and metadata. It must be
// called exactly once, before any WriteInst.
func (w *Writer) WriteHeader(h Header) error {
	if w.headerDone {
		return fmt.Errorf("trace: header already written")
	}
	if len(h.Workload) > maxNameLen {
		return fmt.Errorf("trace: workload name %d bytes exceeds %d", len(h.Workload), maxNameLen)
	}
	if len(h.Layout) > maxSegments {
		return fmt.Errorf("trace: layout %d segments exceeds %d", len(h.Layout), maxSegments)
	}
	if _, err := w.bw.WriteString(Magic); err != nil {
		return err
	}
	if err := w.bw.WriteByte(Version1); err != nil {
		return err
	}
	if err := w.bw.WriteByte(VersionMinor); err != nil {
		return err
	}
	// Flags: reserved, zero in v1.0.
	if _, err := w.bw.Write([]byte{0, 0}); err != nil {
		return err
	}
	w.uvarint(uint64(len(h.Workload)))
	w.bw.WriteString(h.Workload)
	w.uvarint(uint64(h.Class))
	w.uvarint(h.Footprint)
	w.uvarint(h.Seed)
	w.uvarint(uint64(len(h.Layout)))
	for _, seg := range h.Layout {
		w.uvarint(uint64(seg.Start))
		w.uvarint(seg.Length)
		w.bw.WriteByte(seg.flagBits())
		w.uvarint(seg.FileID)
	}
	w.headerDone = true
	w.segments = len(h.Layout)
	return w.err()
}

// WriteInst appends one instruction record. Records are canonicalised:
// a zero Count is stored as 1 (the two are semantically identical, see
// isa.Inst.N) and the address field is stored only for ops that carry a
// memory operand.
func (w *Writer) WriteInst(in isa.Inst) error {
	if !w.headerDone {
		return fmt.Errorf("trace: WriteInst before WriteHeader")
	}
	ctrl := uint8(in.Op) & ctrlOpMask
	if in.Phys {
		ctrl |= ctrlPhys
	}
	count := in.N()
	if count > 1 {
		ctrl |= ctrlHasCount
	}
	if in.PC != w.prevPC {
		ctrl |= ctrlHasPC
	}
	hasAddr := in.Op.HasMemOperand()
	if hasAddr {
		ctrl |= ctrlHasAddr
	}
	if err := w.bw.WriteByte(ctrl); err != nil {
		return err
	}
	if ctrl&ctrlHasPC != 0 {
		w.varint(int64(in.PC - w.prevPC))
		w.prevPC = in.PC
	}
	if ctrl&ctrlHasCount != 0 {
		w.uvarint(count)
	}
	if hasAddr {
		w.varint(int64(in.Addr - w.prevAddr))
		w.prevAddr = in.Addr
	}
	w.records++
	if in.Op != isa.OpDelay {
		w.insts += count
	}
	if hasAddr {
		w.memOps += count
	}
	return w.err()
}

// Records returns the number of records written so far.
func (w *Writer) Records() uint64 { return w.records }

// Insts returns the dynamic instruction count written so far (batched
// ops at their batch size, delays excluded).
func (w *Writer) Insts() uint64 { return w.insts }

// MemOps returns the memory-operand instruction count written so far.
func (w *Writer) MemOps() uint64 { return w.memOps }

// Segments returns the number of layout segments in the written header.
func (w *Writer) Segments() int { return w.segments }

// Close flushes the stream, finishes the gzip envelope if present, and
// closes the file if the Writer came from Create.
func (w *Writer) Close() error {
	err := w.bw.Flush()
	if w.gz != nil {
		if e := w.gz.Close(); err == nil {
			err = e
		}
	}
	if w.file != nil {
		if e := w.file.Close(); err == nil {
			err = e
		}
	}
	return err
}

func (w *Writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.bw.Write(w.buf[:n])
}

func (w *Writer) varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.bw.Write(w.buf[:n])
}

// err surfaces the bufio writer's sticky error, so callers see write
// failures at the call that caused them rather than only at Close.
func (w *Writer) err() error {
	_, err := w.bw.Write(nil)
	return err
}
