package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/isa"
)

// decodeWorkersMax caps the block-decode worker pool; beyond a few
// workers the consumer (the simulation loop) is the bottleneck, not
// the inflate.
const decodeWorkersMax = 4

// OpenReplaySource opens path as the fastest streaming isa.Source for
// this machine and file:
//
//   - a v2 file on a multi-core machine gets the parallel block
//     decoder: a worker pool inflates blocks out of order into
//     reusable arenas and a sequencer delivers them in order;
//   - a v1 file on a multi-core machine gets the single-goroutine
//     decode-ahead ring (v1 blocks cannot be decoded out of order);
//   - on a single-core machine both versions decode inline — handing
//     the decode to another goroutine would only add channel traffic.
//
// Every variant yields byte-for-byte the stream a plain Open/Read loop
// produces; only the threading differs. The reference engine loop
// (Config.ReferencePath) bypasses this and uses MustOpenSource.
func OpenReplaySource(path string) (isa.Source, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	procs := runtime.GOMAXPROCS(0)
	if procs == 1 {
		return &fileSource{r: r, path: path}, nil
	}
	if r.version != Version2 || r.gz != nil || r.file == nil {
		return newPrefetchSource(path, r), nil
	}
	workers := procs
	if workers > decodeWorkersMax {
		workers = decodeWorkersMax
	}
	s, err := newParallelSource(path, r, workers)
	if err != nil {
		r.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return s, nil
}

// MustOpenReplaySource is OpenReplaySource, panicking on error (the
// engine validates the file header at system construction).
func MustOpenReplaySource(path string) isa.Source {
	s, err := OpenReplaySource(path)
	if err != nil {
		panic(err)
	}
	return s
}

// pdec is one decoded block handed from a worker to the sequencer: the
// block's ordinal, its records in an arena from the free pool, and the
// decode error, if any.
type pdec struct {
	idx   int
	insts []isa.Inst
	err   error
}

// parallelSource is the v2 parallel block decoder behind
// OpenReplaySource. Workers pull block ordinals from a bounded jobs
// channel, decode each block independently (positioned reads on the
// shared file handle, per-worker scratch and flate state, arenas from
// a free pool) and send results out of order; the consumer sequences
// them back into file order, holding early arrivals in a small pending
// map. The jobs window bounds both decode read-ahead and arena memory.
//
// The consumer side (Next/NextBatch/Close) is single-goroutine, like
// every isa.Source, and honours the same contract as fileSource: panic
// on mid-stream corruption, self-close on exhaustion.
type parallelSource struct {
	path     string
	f        *os.File
	blocks   []blockInfo
	indexOff uint64

	jobs    chan int
	results chan pdec
	free    chan []isa.Inst
	quit    chan struct{}
	wg      sync.WaitGroup

	pending map[int]pdec
	next    int // next block ordinal to enqueue for decode
	want    int // next block ordinal to deliver in order
	cur     []isa.Inst
	pos     int
	done    bool
	closed  bool
	once    sync.Once // file close
}

// newParallelSource takes ownership of r's file handle (r's buffered
// state is discarded; only the validated header and the handle are
// kept) and starts the worker pool.
func newParallelSource(path string, r *Reader, workers int) (*parallelSource, error) {
	blocks, indexOff, _, err := readIndexFile(r.file)
	if err != nil {
		return nil, err
	}
	window := workers + 2
	if window > len(blocks) {
		window = len(blocks)
	}
	s := &parallelSource{
		path:     path,
		f:        r.file,
		blocks:   blocks,
		indexOff: indexOff,
		jobs:     make(chan int, window),
		results:  make(chan pdec, window),
		free:     make(chan []isa.Inst, window+1),
		quit:     make(chan struct{}),
		pending:  make(map[int]pdec, window),
	}
	for i := 0; i < window+1; i++ {
		s.free <- make([]isa.Inst, 0, blockRecords)
	}
	for s.next < window {
		s.jobs <- s.next
		s.next++
	}
	if len(blocks) > 0 {
		if workers > len(blocks) {
			workers = len(blocks)
		}
		s.wg.Add(workers)
		for i := 0; i < workers; i++ {
			go s.worker()
		}
	}
	return s, nil
}

// blockEnd returns the file offset one past block i's on-disk bytes:
// the next block's header, or the sentinel byte before the index for
// the last block.
func (s *parallelSource) blockEnd(i int) uint64 {
	if i+1 < len(s.blocks) {
		return s.blocks[i+1].Off
	}
	return s.indexOff - 1
}

// worker decodes blocks until the jobs channel drains or Close fires.
// A decode error is reported through the result — the sequencer raises
// it at the in-order delivery point — and does not stop the worker:
// other blocks may still be wanted by a consumer that stops early.
func (s *parallelSource) worker() {
	defer s.wg.Done()
	var d blockDecoder
	for {
		var idx int
		select {
		case idx = <-s.jobs:
		case <-s.quit:
			return
		}
		var arena []isa.Inst
		select {
		case arena = <-s.free:
		case <-s.quit:
			return
		}
		insts, err := d.decode(s.f, s.blocks[idx], s.blockEnd(idx), arena)
		select {
		case s.results <- pdec{idx: idx, insts: insts, err: err}:
		case <-s.quit:
			return
		}
	}
}

// blockDecoder holds one worker's reusable decode state: the raw
// on-disk span, the inflated payload, and the flate reader.
type blockDecoder struct {
	span  []byte
	raw   []byte
	fr    io.ReadCloser
	frSrc bytes.Reader
}

// maxBlockHeaderBytes bounds the serialised block header: five
// maximum-length varints.
const maxBlockHeaderBytes = 5 * binary.MaxVarintLen64

// decode reads block b (whose on-disk bytes end at end) with one
// positioned read, cross-checks the block header against the index
// entry, verifies the CRC, inflates, and decodes the records into
// arena. The shared *os.File is only used via ReadAt, which is safe
// concurrently.
func (d *blockDecoder) decode(f *os.File, b blockInfo, end uint64, arena []isa.Inst) ([]isa.Inst, error) {
	need := int(b.CompLen) + 4 + maxBlockHeaderBytes
	if span := int(end - b.Off); span < need {
		need = span
	}
	if cap(d.span) < need {
		d.span = make([]byte, need)
	}
	d.span = d.span[:need]
	if n, err := f.ReadAt(d.span, int64(b.Off)); n < need {
		return arena, corruptf("block at %d: %v", b.Off, eofErr(err))
	}
	buf := d.span
	var hdr [5]uint64
	for i := range hdr {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return arena, corruptf("block at %d: truncated header", b.Off)
		}
		hdr[i], buf = v, buf[n:]
	}
	if hdr[0] != b.Records || hdr[1] != b.Insts || hdr[2] != b.MemOps ||
		hdr[3] != b.RawLen || hdr[4] != b.CompLen {
		return arena, corruptf("block at %d: header disagrees with index entry", b.Off)
	}
	if uint64(len(buf)) < b.CompLen+4 {
		return arena, corruptf("block at %d: truncated payload", b.Off)
	}
	comp := buf[:b.CompLen]
	if want := binary.LittleEndian.Uint32(buf[b.CompLen:]); crc32.ChecksumIEEE(comp) != want {
		return arena, corruptf("block at %d: CRC mismatch", b.Off)
	}
	if uint64(cap(d.raw)) < b.RawLen {
		d.raw = make([]byte, b.RawLen)
	}
	d.raw = d.raw[:b.RawLen]
	d.frSrc.Reset(comp)
	if d.fr == nil {
		d.fr = flate.NewReader(&d.frSrc)
	} else if err := d.fr.(flate.Resetter).Reset(&d.frSrc, nil); err != nil {
		return arena, corruptf("block at %d: flate reset: %v", b.Off, err)
	}
	if _, err := io.ReadFull(d.fr, d.raw); err != nil {
		return arena, corruptf("block at %d: inflate: %v", b.Off, eofErr(err))
	}
	var one [1]byte
	if n, _ := d.fr.Read(one[:]); n != 0 {
		return arena, corruptf("block at %d: inflates past its declared raw length", b.Off)
	}
	return decodeBlockRecords(d.raw, b, arena)
}

// decodeBlockRecords decodes a block's inflated payload into arena,
// enforcing the same contract as the sequential reader: exact payload
// consumption, declared counts, canonical count/address rules.
func decodeBlockRecords(raw []byte, b blockInfo, arena []isa.Inst) ([]isa.Inst, error) {
	arena = arena[:0]
	var prevPC, prevAddr uint64
	var sumInsts, sumMem uint64
	pos := 0
	for rec := uint64(0); rec < b.Records; rec++ {
		buf := raw[pos:]
		if len(buf) == 0 {
			return arena, corruptf("block at %d: payload underruns its record count", b.Off)
		}
		ctrl := buf[0]
		if ctrl&ctrlReserved != 0 {
			return arena, corruptf("block at %d, record %d: reserved control bit set (%#02x)", b.Off, rec, ctrl)
		}
		in := isa.Inst{Op: isa.Op(ctrl & ctrlOpMask), Phys: ctrl&ctrlPhys != 0, Count: 1}
		n := 1
		if ctrl&ctrlHasPC != 0 {
			d, k := binary.Varint(buf[n:])
			if k <= 0 {
				return arena, corruptf("block at %d, record %d: truncated pc delta", b.Off, rec)
			}
			n += k
			prevPC += uint64(d)
		}
		in.PC = prevPC
		if ctrl&ctrlHasCount != 0 {
			c, k := binary.Uvarint(buf[n:])
			if k <= 0 {
				return arena, corruptf("block at %d, record %d: truncated count", b.Off, rec)
			}
			if c < 2 || c > 1<<32-1 {
				return arena, corruptf("block at %d, record %d: count %d out of range", b.Off, rec, c)
			}
			n += k
			in.Count = uint32(c)
		}
		if ctrl&ctrlHasAddr != 0 {
			if !in.Op.HasMemOperand() {
				return arena, corruptf("block at %d, record %d: address on %v op", b.Off, rec, in.Op)
			}
			d, k := binary.Varint(buf[n:])
			if k <= 0 {
				return arena, corruptf("block at %d, record %d: truncated addr delta", b.Off, rec)
			}
			n += k
			prevAddr += uint64(d)
			in.Addr = prevAddr
		} else if in.Op.HasMemOperand() {
			return arena, corruptf("block at %d, record %d: %v op without address", b.Off, rec, in.Op)
		}
		pos += n
		cnt := in.N()
		if in.Op != isa.OpDelay {
			sumInsts += cnt
		}
		if in.Op.HasMemOperand() {
			sumMem += cnt
		}
		arena = append(arena, in)
	}
	if pos != len(raw) {
		return arena, corruptf("block at %d: %d trailing payload bytes", b.Off, len(raw)-pos)
	}
	if sumInsts != b.Insts || sumMem != b.MemOps {
		return arena, corruptf("block at %d: decoded counts disagree with index entry", b.Off)
	}
	return arena, nil
}

// advance makes cur hold at least one undelivered instruction, or
// reports the end of the stream. Out-of-order results park in pending
// until their turn; terminal errors surface here, on the consumer
// goroutine, with fileSource's panic contract.
func (s *parallelSource) advance() bool {
	for {
		if s.pos < len(s.cur) {
			return true
		}
		if s.done {
			return false
		}
		if s.cur != nil {
			s.free <- s.cur[:0]
			s.cur = nil
		}
		if s.want >= len(s.blocks) {
			s.shutdown()
			return false
		}
		d, ok := s.pending[s.want]
		if ok {
			delete(s.pending, s.want)
		} else {
			for {
				d = <-s.results
				if d.idx == s.want {
					break
				}
				s.pending[d.idx] = d
			}
		}
		if d.err != nil {
			s.shutdown()
			panic(fmt.Sprintf("trace: %s: %v", s.path, d.err))
		}
		s.cur, s.pos = d.insts, 0
		s.want++
		// Refill the window so a worker always has the next block to
		// chew on; the jobs channel's capacity is the window size, so
		// this send never blocks.
		if s.next < len(s.blocks) {
			s.jobs <- s.next
			s.next++
		}
	}
}

// shutdown stops the workers and closes the file; it is idempotent and
// runs on the consumer goroutine (exhaustion, corruption, or Close).
func (s *parallelSource) shutdown() {
	s.done = true
	s.once.Do(func() {
		close(s.quit)
		s.wg.Wait()
		s.f.Close()
	})
}

// Next implements isa.Source.
func (s *parallelSource) Next(out *isa.Inst) bool {
	if !s.advance() {
		return false
	}
	*out = s.cur[s.pos]
	s.pos++
	return true
}

// NextBatch implements isa.BatchSource by copying from the sequenced
// arenas.
func (s *parallelSource) NextBatch(out []isa.Inst) int {
	n := 0
	for n < len(out) {
		if !s.advance() {
			break
		}
		c := copy(out[n:], s.cur[s.pos:])
		s.pos += c
		n += c
	}
	return n
}

// Close stops the workers and releases the file; safe after exhaustion
// and idempotent.
func (s *parallelSource) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.shutdown()
	return nil
}
