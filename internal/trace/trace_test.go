package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workloads"
)

func testHeader() Header {
	return Header{
		Workload:  "BFS",
		Class:     workloads.LongRunning,
		Footprint: 320 * mem.MB,
		Seed:      42,
		Layout: []Segment{
			{Start: 0x1000_0000_0000, Length: 16 * mem.MB, Anon: true},
			{Start: 0x1000_4000_0000, Length: 4 * mem.KB, File: true, FileID: 7},
			{Start: 0x1000_8000_0000, Length: 2 * mem.MB, HugeTLB: true, Huge1G: true, DAX: true, FileID: 11},
		},
	}
}

// testInsts exercises every op kind, batching, physical addresses, and
// both forward and backward PC/address deltas.
func testInsts() []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpALU, Count: 12, PC: 0x400100},
		{Op: isa.OpLoad, Count: 1, PC: 0x400104, Addr: 0x1000_0000_0040},
		{Op: isa.OpStore, Count: 1, PC: 0x400104, Addr: 0x1000_0000_0080},
		{Op: isa.OpLoad, Count: 1, PC: 0x400090, Addr: 0x1000_0000_0000}, // backward deltas
		{Op: isa.OpFP, Count: 3, PC: 0x400094},
		{Op: isa.OpBranch, Count: 1, PC: 0x400098},
		{Op: isa.OpAtomic, Count: 1, PC: 0xffff_8000_0000_1000, Phys: true, Addr: 0x7f_f000},
		{Op: isa.OpDelay, Count: 5800},
		{Op: isa.OpMagic, Count: 1, PC: 0xffff_8000_0000_1004, Phys: true},
		{Op: isa.OpStore, Count: 1, PC: 0x400098, Addr: 0x1000_0200_0000},
	}
}

func writeTrace(t *testing.T, buf *bytes.Buffer, compress bool, hdr Header, insts []isa.Inst) {
	t.Helper()
	w := NewWriter(buf, compress)
	if err := w.WriteHeader(hdr); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.WriteInst(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, r *Reader) []isa.Inst {
	t.Helper()
	var out []isa.Inst
	var in isa.Inst
	for {
		err := r.Read(&in)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "gzip"
		}
		t.Run(name, func(t *testing.T) {
			hdr, insts := testHeader(), testInsts()
			var buf bytes.Buffer
			writeTrace(t, &buf, compress, hdr, insts)

			r, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			got := r.Header()
			if got.Workload != hdr.Workload || got.Class != hdr.Class ||
				got.Footprint != hdr.Footprint || got.Seed != hdr.Seed {
				t.Errorf("header mismatch: got %+v want %+v", got, hdr)
			}
			if len(got.Layout) != len(hdr.Layout) {
				t.Fatalf("layout: got %d segments, want %d", len(got.Layout), len(hdr.Layout))
			}
			for i := range hdr.Layout {
				if got.Layout[i] != hdr.Layout[i] {
					t.Errorf("segment %d: got %+v want %+v", i, got.Layout[i], hdr.Layout[i])
				}
			}
			back := readAll(t, r)
			if len(back) != len(insts) {
				t.Fatalf("got %d records, want %d", len(back), len(insts))
			}
			for i := range insts {
				if back[i] != insts[i] {
					t.Errorf("record %d: got %+v want %+v", i, back[i], insts[i])
				}
			}
		})
	}
}

func TestRoundTripFiles(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name    string
		create  func(string) (*Writer, error)
		version int
	}{
		// Create writes v2 whatever the extension; CreateV1 keys the
		// gzip envelope off ".gz". Readers sniff, so all four decode.
		{"t.trc", Create, Version2},
		{"t.trc.gz", Create, Version2},
		{"v1.trc", CreateV1, Version1},
		{"v1.trc.gz", CreateV1, Version1},
	} {
		name := tc.name
		path := filepath.Join(dir, name)
		w, err := tc.create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteHeader(testHeader()); err != nil {
			t.Fatal(err)
		}
		for _, in := range testInsts() {
			if err := w.WriteInst(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		info, err := ReadInfo(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Version != tc.version {
			t.Errorf("%s: Version=%d, want %d", name, info.Version, tc.version)
		}
		wantCompressed := tc.version == Version2 || strings.HasSuffix(name, ".gz")
		if info.Compressed != wantCompressed {
			t.Errorf("%s: Compressed=%v, want %v", name, info.Compressed, wantCompressed)
		}
		if tc.version == Version2 && info.Blocks != 1 {
			t.Errorf("%s: Blocks=%d, want 1", name, info.Blocks)
		}
		if info.Records != uint64(len(testInsts())) {
			t.Errorf("%s: %d records, want %d", name, info.Records, len(testInsts()))
		}
		// 12 ALU + 2 loads + 2 stores + 3 FP + 1 branch + 1 atomic +
		// 1 magic; the 5800-cycle delay is excluded.
		if info.Insts != 22 {
			t.Errorf("%s: %d insts, want 22", name, info.Insts)
		}
		if info.MemOps != 5 {
			t.Errorf("%s: %d mem ops, want 5", name, info.MemOps)
		}
	}
}

func TestCountCanonicalisation(t *testing.T) {
	// Count 0 and Count 1 are semantically identical (isa.Inst.N); the
	// format stores the canonical form.
	var buf bytes.Buffer
	writeTrace(t, &buf, false, Header{Workload: "w"}, []isa.Inst{{Op: isa.OpALU, Count: 0, PC: 4}})
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if len(got) != 1 || got[0].Count != 1 {
		t.Fatalf("got %+v, want Count canonicalised to 1", got)
	}
}

func TestWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, false)
	if err := w.WriteInst(isa.Inst{Op: isa.OpALU}); err == nil {
		t.Error("WriteInst before WriteHeader should fail")
	}
	if err := w.WriteHeader(Header{Workload: "w"}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(Header{Workload: "w"}); err == nil {
		t.Error("double WriteHeader should fail")
	}
}

func TestHeaderErrors(t *testing.T) {
	hdr, insts := testHeader(), testInsts()
	var buf bytes.Buffer
	writeTrace(t, &buf, false, hdr, insts)
	good := buf.Bytes()

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			data := mutate(append([]byte(nil), good...))
			_, err := NewReader(bytes.NewReader(data))
			if err == nil {
				t.Fatal("NewReader accepted a corrupt header")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("error %v is not ErrCorrupt", err)
			}
		})
	}

	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("short magic", func(b []byte) []byte { return b[:3] })
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad major version", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("nonzero flags", func(b []byte) []byte { b[6] = 1; return b })
	corrupt("truncated mid header", func(b []byte) []byte { return b[:12] })
	corrupt("oversized name length", func(b []byte) []byte {
		// The name-length uvarint sits right after the 8 fixed bytes.
		return append(b[:8], 0xff, 0xff, 0xff, 0x7f)
	})

	t.Run("gzip garbage", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader([]byte("not gzip at all"))); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
}

func TestTruncatedRecords(t *testing.T) {
	hdr, insts := testHeader(), testInsts()
	var buf bytes.Buffer
	writeTrace(t, &buf, false, hdr, insts)
	good := buf.Bytes()

	// Find where records start: re-encode just the header.
	var hb bytes.Buffer
	writeTrace(t, &hb, false, hdr, nil)
	recStart := hb.Len()

	// Cutting anywhere strictly inside the record section must yield
	// ErrCorrupt (clean EOF is only legal at a record boundary)…
	sawCorrupt := false
	for cut := recStart + 1; cut < len(good); cut++ {
		r, err := NewReader(bytes.NewReader(good[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		var in isa.Inst
		var readErr error
		for {
			if readErr = r.Read(&in); readErr != nil {
				break
			}
		}
		if readErr == io.EOF {
			continue // cut landed on a record boundary: legal truncation
		}
		if !errors.Is(readErr, ErrCorrupt) {
			t.Fatalf("cut %d: got %v, want ErrCorrupt or EOF", cut, readErr)
		}
		sawCorrupt = true
	}
	if !sawCorrupt {
		t.Error("no cut produced ErrCorrupt; record section too small to test truncation")
	}

	// …and a reserved control bit is rejected.
	bad := append([]byte(nil), good[:recStart]...)
	bad = append(bad, 0x80)
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	if err := r.Read(&in); !errors.Is(err, ErrCorrupt) {
		t.Errorf("reserved bit: got %v, want ErrCorrupt", err)
	}
}

func TestSourcesAreIndependent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trc.gz")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(Header{Workload: "w"}); err != nil {
		t.Fatal(err)
	}
	want := make([]isa.Inst, 0, 1000)
	for i := 0; i < 1000; i++ {
		in := isa.Inst{Op: isa.OpLoad, Count: 1, PC: 0x400000 + uint64(i%7)*4, Addr: uint64(0x1000_0000_0000 + i*64)}
		want = append(want, in)
		if err := w.WriteInst(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// N concurrent sources over one file must each see the full stream:
	// per-run readers, no shared cursor.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src, err := OpenSource(path)
			if err != nil {
				errs <- err
				return
			}
			var in isa.Inst
			for i := 0; src.Next(&in); i++ {
				if in != want[i] {
					errs <- errors.New("stream diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestReadHeaderMissingFile(t *testing.T) {
	if _, err := ReadHeader(filepath.Join(t.TempDir(), "nope.trc")); err == nil {
		t.Error("ReadHeader on a missing file should fail")
	}
	if _, err := os.Stat("nope.trc"); err == nil {
		t.Error("stray file created")
	}
}
