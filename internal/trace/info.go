package trace

import (
	"io"

	"repro/internal/isa"
)

// Info summarises a trace file: its header plus whole-file counts
// gathered by streaming every record once.
type Info struct {
	Header
	// Records is the number of instruction records in the file.
	Records uint64
	// Insts is the dynamic instruction count (batched ops at their
	// batch size, delays excluded).
	Insts uint64
	// MemOps is the dynamic count of memory-operand instructions.
	MemOps uint64
	// Compressed reports whether the file uses the gzip envelope.
	Compressed bool
}

// ReadInfo opens path, validates the header, and streams the whole
// record section to count instructions. It holds only a buffer's worth
// of the file at a time.
func ReadInfo(path string) (Info, error) {
	r, err := Open(path)
	if err != nil {
		return Info{}, err
	}
	defer r.Close()
	var in isa.Inst
	for {
		err := r.Read(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Info{}, err
		}
	}
	return Info{
		Header:     r.Header(),
		Records:    r.Records(),
		Insts:      r.Insts(),
		MemOps:     r.MemOps(),
		Compressed: Compressed(path),
	}, nil
}

// ReadHeader opens path just far enough to validate and return its
// header — the cheap existence/format check used before a replay run
// starts.
func ReadHeader(path string) (Header, error) {
	r, err := Open(path)
	if err != nil {
		return Header{}, err
	}
	defer r.Close()
	return r.Header(), nil
}
