package trace

import (
	"io"

	"repro/internal/isa"
)

// Info summarises a trace file: its header plus whole-file counts. A
// v2 file answers from its block index with O(1) positioned reads; a
// v1 file (or a gzip-enveloped stream) is counted by streaming every
// record once.
type Info struct {
	Header
	// Records is the number of instruction records in the file.
	Records uint64
	// Insts is the dynamic instruction count (batched ops at their
	// batch size, delays excluded).
	Insts uint64
	// MemOps is the dynamic count of memory-operand instructions.
	MemOps uint64
	// Compressed reports whether the record section is compressed: a
	// v1 gzip envelope, or the always-block-compressed v2 container.
	Compressed bool
	// Version is the file's major format version.
	Version int
	// Blocks is the number of record blocks (v2 only).
	Blocks int
	// IndexBytes is the serialised block index size (v2 only).
	IndexBytes int
	// RawBytes and CompBytes are the uncompressed and compressed block
	// payload totals (v2 only); their ratio is the file's record
	// compression ratio.
	RawBytes  uint64
	CompBytes uint64
}

// ReadInfo opens path, validates the header, and summarises the file.
// For a plain v2 file the counts come straight from the CRC-checked
// block index — constant work regardless of trace length. Anything
// else (v1, or a gzip-wrapped stream) streams the whole record
// section, holding only a buffer's worth of the file at a time.
func ReadInfo(path string) (Info, error) {
	r, err := Open(path)
	if err != nil {
		return Info{}, err
	}
	defer r.Close()
	if r.version == Version2 && r.gz == nil && r.file != nil {
		blocks, _, indexLen, err := readIndexFile(r.file)
		if err != nil {
			return Info{}, err
		}
		info := Info{
			Header:     r.Header(),
			Compressed: true,
			Version:    Version2,
			Blocks:     len(blocks),
			IndexBytes: indexLen,
		}
		for _, b := range blocks {
			info.Records += b.Records
			info.Insts += b.Insts
			info.MemOps += b.MemOps
			info.RawBytes += b.RawLen
			info.CompBytes += b.CompLen
		}
		return info, nil
	}
	var in isa.Inst
	for {
		err := r.Read(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Info{}, err
		}
	}
	return Info{
		Header:     r.Header(),
		Records:    r.Records(),
		Insts:      r.Insts(),
		MemOps:     r.MemOps(),
		Compressed: r.gz != nil || r.version == Version2,
		Version:    r.version,
		Blocks:     int(r.blocks),
		IndexBytes: 0,
		RawBytes:   r.rawBytes,
		CompBytes:  r.compBytes,
	}, nil
}

// ReadHeader opens path just far enough to validate and return its
// header — the cheap existence/format check used before a replay run
// starts.
func ReadHeader(path string) (Header, error) {
	r, err := Open(path)
	if err != nil {
		return Header{}, err
	}
	defer r.Close()
	return r.Header(), nil
}
