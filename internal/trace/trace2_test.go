package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
)

// genInsts builds a deterministic stream of n varied records: every op
// kind, batching, forward and backward deltas, physical addresses.
func genInsts(n int) []isa.Inst {
	out := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		in := isa.Inst{Count: 1, PC: uint64(0x400000 + 4*(i%977))}
		switch i % 6 {
		case 0:
			in.Op = isa.OpALU
			in.Count = uint32(1 + i%9)
		case 1:
			in.Op = isa.OpLoad
			in.Addr = uint64(0x1000_0000_0000 + 64*(i%4096))
		case 2:
			in.Op = isa.OpStore
			in.Addr = uint64(0x1000_0000_0000 + 64*((i*31)%4096))
		case 3:
			in.Op = isa.OpBranch
		case 4:
			in.Op = isa.OpAtomic
			in.Phys = true
			in.Addr = uint64(0x7f_0000 + 4096*(i%64))
		case 5:
			in.Op = isa.OpDelay
			in.Count = uint32(10 + i%90)
		}
		out = append(out, in)
	}
	return out
}

// writeTraceV2File writes insts to path in the v2 container.
func writeTraceV2File(t *testing.T, path string, insts []isa.Inst) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.WriteInst(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// canonical maps a written record to the form the reader returns
// (Count 0 canonicalised to 1).
func canonical(in isa.Inst) isa.Inst {
	if in.Count == 0 {
		in.Count = 1
	}
	return in
}

// TestV2RoundTripMultiBlock round-trips a stream spanning several
// blocks, through the sequential reader and through every source
// variant, and checks the index-backed Info agrees with a full scan.
func TestV2RoundTripMultiBlock(t *testing.T) {
	const n = 3*blockRecords + 1234
	insts := genInsts(n)
	path := filepath.Join(t.TempDir(), "multi.trc")
	writeTraceV2File(t, path, insts)

	check := func(name string, got []isa.Inst) {
		t.Helper()
		if len(got) != n {
			t.Fatalf("%s: got %d records, want %d", name, len(got), n)
		}
		for i := range got {
			if got[i] != canonical(insts[i]) {
				t.Fatalf("%s: record %d: got %+v want %+v", name, i, got[i], canonical(insts[i]))
			}
		}
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	check("sequential", readAll(t, r))
	r.Close()

	src, err := OpenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	check("fileSource", drainSource(src))

	rp, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := newParallelSource(path, rp, 3)
	if err != nil {
		t.Fatal(err)
	}
	check("parallel", drainSource(ps))

	// Batch reads must agree with single-record reads.
	rb, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := newParallelSource(path, rb, 2)
	if err != nil {
		t.Fatal(err)
	}
	var batched []isa.Inst
	buf := make([]isa.Inst, 777)
	for {
		k := pb.NextBatch(buf)
		if k == 0 {
			break
		}
		batched = append(batched, buf[:k]...)
	}
	check("parallel batch", batched)

	info, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Blocks != 4 {
		t.Errorf("Blocks=%d, want 4", info.Blocks)
	}
	if info.Version != Version2 || !info.Compressed {
		t.Errorf("Version=%d Compressed=%v, want 2/true", info.Version, info.Compressed)
	}
	// The indexed counts must equal a full decode's counts.
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	all := readAll(t, r2)
	if uint64(len(all)) != info.Records || r2.Insts() != info.Insts || r2.MemOps() != info.MemOps {
		t.Errorf("index counts (%d rec, %d insts, %d mem) disagree with scan (%d, %d, %d)",
			info.Records, info.Insts, info.MemOps, len(all), r2.Insts(), r2.MemOps())
	}
	r2.Close()
	if info.RawBytes == 0 || info.CompBytes == 0 || info.CompBytes >= info.RawBytes {
		t.Errorf("implausible block payload totals: raw %d comp %d", info.RawBytes, info.CompBytes)
	}
	if info.IndexBytes == 0 {
		t.Errorf("IndexBytes=0 on an indexed file")
	}
}

func drainSource(src isa.Source) []isa.Inst {
	var out []isa.Inst
	var in isa.Inst
	for src.Next(&in) {
		out = append(out, in)
	}
	return out
}

// TestV2EmptyTrace round-trips a header-only trace.
func TestV2EmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.trc")
	writeTraceV2File(t, path, nil)
	info, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.Blocks != 0 {
		t.Errorf("Records=%d Blocks=%d, want 0/0", info.Records, info.Blocks)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r); len(got) != 0 {
		t.Errorf("empty trace decoded %d records", len(got))
	}
	r.Close()
	rp, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := newParallelSource(path, rp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainSource(ps); len(got) != 0 {
		t.Errorf("empty trace parallel-decoded %d records", len(got))
	}
	ps.Close()
}

// TestV2GzipEnvelope decodes a gzip-wrapped v2 stream sequentially —
// a pipe or re-compressed file still replays, it just is not seekable.
func TestV2GzipEnvelope(t *testing.T) {
	insts := genInsts(blockRecords + 77)
	var raw bytes.Buffer
	w := NewWriterV2(&raw)
	if err := w.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.WriteInst(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var gzBuf bytes.Buffer
	gw := gzip.NewWriter(&gzBuf)
	gw.Write(raw.Bytes())
	gw.Close()

	r, err := NewReader(bytes.NewReader(gzBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if len(got) != len(insts) {
		t.Fatalf("got %d records, want %d", len(got), len(insts))
	}
	for i := range got {
		if got[i] != canonical(insts[i]) {
			t.Fatalf("record %d diverged", i)
		}
	}
}

// TestConvert upgrades a v1 file and re-blocks a v2 file; the decoded
// streams must be identical.
func TestConvert(t *testing.T) {
	dir := t.TempDir()
	insts := genInsts(blockRecords + 4321)

	v1 := filepath.Join(dir, "old.trc.gz")
	w, err := CreateV1(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.WriteInst(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	v2 := filepath.Join(dir, "new.trc")
	info, err := Convert(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != Version2 || info.Records != uint64(len(insts)) {
		t.Errorf("convert info: %+v", info)
	}

	ra, err := Open(v1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Open(v2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := readAll(t, ra), readAll(t, rb)
	ra.Close()
	rb.Close()
	if len(a) != len(b) {
		t.Fatalf("v1 decoded %d records, v2 %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d diverged after convert", i)
		}
	}
	if ha, hb := ra.Header(), rb.Header(); ha.Workload != hb.Workload || ha.Seed != hb.Seed ||
		len(ha.Layout) != len(hb.Layout) {
		t.Errorf("headers diverged: %+v vs %+v", ha, hb)
	}

	// Converting v2 again re-blocks it losslessly.
	v2b := filepath.Join(dir, "again.trc")
	if _, err := Convert(v2, v2b); err != nil {
		t.Fatal(err)
	}
	rc, err := Open(v2b)
	if err != nil {
		t.Fatal(err)
	}
	c := readAll(t, rc)
	rc.Close()
	if len(c) != len(a) {
		t.Fatalf("re-convert decoded %d records, want %d", len(c), len(a))
	}
}

// TestSniffingIgnoresExtension is the misnamed-file satellite: readers
// key on magic bytes, not extensions, and garbage fails with
// ErrCorrupt rather than a confusing mid-stream error.
func TestSniffingIgnoresExtension(t *testing.T) {
	dir := t.TempDir()
	insts := genInsts(100)

	// A gzip-enveloped v1 trace named without ".gz" must still open…
	misnamed := filepath.Join(dir, "actually-gzip.trc")
	w, err := CreateV1(filepath.Join(dir, "tmp.trc.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		w.WriteInst(in)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "tmp.trc.gz"), misnamed); err != nil {
		t.Fatal(err)
	}
	r, err := Open(misnamed)
	if err != nil {
		t.Fatalf("misnamed gzip trace rejected: %v", err)
	}
	if got := readAll(t, r); len(got) != len(insts) {
		t.Fatalf("got %d records, want %d", len(got), len(insts))
	}
	r.Close()

	// …a raw v1 trace named ".gz" must also open…
	misnamed2 := filepath.Join(dir, "actually-raw.trc.gz")
	w2, err := CreateV1(filepath.Join(dir, "tmp2.trc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "tmp2.trc"), misnamed2); err != nil {
		t.Fatal(err)
	}
	if r2, err := Open(misnamed2); err != nil {
		t.Fatalf("misnamed raw trace rejected: %v", err)
	} else {
		r2.Close()
	}

	// …and a non-trace file fails loudly whatever it is called.
	junk := filepath.Join(dir, "junk.trc.gz")
	if err := os.WriteFile(junk, []byte("this is not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); !errors.Is(err, ErrCorrupt) {
		t.Errorf("junk file: got %v, want ErrCorrupt", err)
	}
	if _, err := ReadInfo(junk); !errors.Is(err, ErrCorrupt) {
		t.Errorf("junk ReadInfo: got %v, want ErrCorrupt", err)
	}
}

// TestV2Corruption mutilates a valid v2 file every way the format can
// rot — truncations everywhere, a flipped bit everywhere — and
// requires the ErrCorrupt-or-EOF contract from both the sequential and
// the indexed paths.
func TestV2Corruption(t *testing.T) {
	insts := genInsts(2000)
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	if err := w.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.WriteInst(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	dir := t.TempDir()
	tryFile := func(data []byte) error {
		path := filepath.Join(dir, "t.trc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadInfo(path); err != nil {
			return err
		}
		// Index accepted: the parallel decoder must either replay
		// byte-identically or report corruption; here we only require
		// no panic-free divergence from the contract.
		r, err := Open(path)
		if err != nil {
			return err
		}
		defer r.Close()
		ps, err := newParallelSource(path, r, 2)
		if err != nil {
			return err
		}
		defer ps.Close()
		var in isa.Inst
		var perr error
		func() {
			defer func() {
				if p := recover(); p != nil {
					perr = fmt.Errorf("%w: %v", ErrCorrupt, p)
				}
			}()
			for ps.Next(&in) {
			}
		}()
		return perr
	}
	trySeq := func(data []byte) error {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return err
		}
		var in isa.Inst
		for {
			if err := r.Read(&in); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
	}

	// Truncations: every length from empty to full-1, sampled.
	for cut := 0; cut < len(good); cut += 97 {
		if err := trySeq(good[:cut]); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("seq cut %d: %v", cut, err)
		}
		if err := tryFile(good[:cut]); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("file cut %d: %v", cut, err)
		}
	}
	// Bit flips, sampled across the whole file (header, block header,
	// payload, CRC, sentinel, index, trailer).
	for off := 0; off < len(good); off += 53 {
		c := append([]byte(nil), good...)
		c[off] ^= 0x10
		if err := trySeq(c); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("seq flip %d: %v", off, err)
		}
		if err := tryFile(c); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("file flip %d: %v", off, err)
		}
	}

	// A corrupt block payload must be caught by the CRC, with a loud
	// mention of the block.
	c := append([]byte(nil), good...)
	c[len(good)/2] ^= 0x01
	err := trySeq(c)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload flip: got %v, want ErrCorrupt", err)
	}
	// An index whose entry disagrees with the block header it points
	// at: rebuild the trailer CRC so only the parallel path's
	// cross-check can catch it.
	c = append([]byte(nil), good...)
	indexOff := binary.LittleEndian.Uint64(c[len(c)-trailerSize:])
	idx := c[indexOff : uint64(len(c))-trailerSize]
	// Flip a low bit mid-index (some entry field) and re-CRC.
	idx[len(idx)/2] ^= 0x01
	binary.LittleEndian.PutUint32(c[len(c)-trailerSize+12:], crc32.ChecksumIEEE(idx))
	if err := tryFile(c); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("index mismatch: got %v, want ErrCorrupt", err)
	}
}

// TestParallelSourceCloseMidStream closes the parallel source long
// before exhaustion and requires every decode goroutine to stop — the
// leak-checking satellite.
func TestParallelSourceCloseMidStream(t *testing.T) {
	insts := genInsts(4 * blockRecords)
	path := filepath.Join(t.TempDir(), "leak.trc")
	writeTraceV2File(t, path, insts)

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := newParallelSource(path, r, 3)
		if err != nil {
			t.Fatal(err)
		}
		var in isa.Inst
		for k := 0; k < 100; k++ {
			if !ps.Next(&in) {
				t.Fatal("stream ended early")
			}
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err) // idempotent
		}
	}
	// The same for the v1 prefetch ring.
	v1 := filepath.Join(t.TempDir(), "leak1.trc")
	wv1, err := CreateV1(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wv1.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts[:8192] {
		wv1.WriteInst(in)
	}
	if err := wv1.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		src, err := OpenPrefetchSource(v1)
		if err != nil {
			t.Fatal(err)
		}
		var in isa.Inst
		for k := 0; k < 100; k++ {
			if !src.Next(&in) {
				t.Fatal("stream ended early")
			}
		}
		if err := src.(io.Closer).Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Decoder goroutines park and exit asynchronously after Close
	// returns only in failure modes; give stragglers a moment before
	// declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSharedStore exercises the content-keyed store: single decode per
// content, hits for duplicate paths, refcounted eviction, budget
// fallback, and stream equality.
func TestSharedStore(t *testing.T) {
	dir := t.TempDir()
	insts := genInsts(blockRecords + 99)
	path := filepath.Join(dir, "a.trc")
	writeTraceV2File(t, path, insts)
	// A byte-identical copy under a different name shares the entry.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copyPath := filepath.Join(dir, "b.trc")
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewShared(0)
	src1, err := s.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := drainSource(src1)
	if len(got) != len(insts) {
		t.Fatalf("got %d records, want %d", len(got), len(insts))
	}
	for i := range got {
		if got[i] != canonical(insts[i]) {
			t.Fatalf("record %d diverged through the shared store", i)
		}
	}
	src1.(io.Closer).Close()

	src2, err := s.Open(copyPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainSource(src2); len(got) != len(insts) {
		t.Fatalf("copy: got %d records", len(got))
	}
	src2.(io.Closer).Close()

	st := s.Stats()
	if st.Decodes != 1 || st.Hits != 1 {
		t.Errorf("stats: decodes=%d hits=%d, want 1/1", st.Decodes, st.Hits)
	}
	if st.Entries != 1 || st.UsedBytes == 0 {
		t.Errorf("stats: entries=%d used=%d", st.Entries, st.UsedBytes)
	}

	// Concurrent opens: still exactly one more decode for new content.
	path2 := filepath.Join(dir, "c.trc")
	writeTraceV2File(t, path2, genInsts(2*blockRecords))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src, err := s.Open(path2)
			if err != nil {
				t.Error(err)
				return
			}
			var in isa.Inst
			n := 0
			for src.Next(&in) {
				n++
			}
			if n != 2*blockRecords {
				t.Errorf("concurrent cursor saw %d records", n)
			}
			src.(io.Closer).Close()
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Decodes != 2 {
		t.Errorf("concurrent opens decoded %d times, want 2 total", st.Decodes)
	}

	// Eviction: a tiny budget keeps at most one idle entry.
	tiny := NewShared(int64(blockRecords+100) * 24)
	if _, err := tiny.Open(path); err != nil {
		t.Fatal(err)
	}
	// path fits exactly; path2 (2 blocks) exceeds the whole budget →
	// served uncached.
	src3, err := tiny.Open(path2)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(drainSource(src3)); n != 2*blockRecords {
		t.Fatalf("over-budget trace decoded %d records", n)
	}
	src3.(io.Closer).Close()
	st = tiny.Stats()
	if st.Entries != 1 {
		t.Errorf("over-budget trace retained: %d entries", st.Entries)
	}
	if st.UsedBytes > st.BudgetBytes {
		t.Errorf("store over budget: %d > %d", st.UsedBytes, st.BudgetBytes)
	}

	// A v1 file is keyed by whole-file hash and shares across formats
	// only with byte-identical files.
	v1 := filepath.Join(dir, "old.trc.gz")
	wv1, err := CreateV1(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wv1.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts[:500] {
		wv1.WriteInst(in)
	}
	if err := wv1.Close(); err != nil {
		t.Fatal(err)
	}
	srcV1, err := s.Open(v1)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(drainSource(srcV1)); n != 500 {
		t.Fatalf("v1 through shared store: %d records, want 500", n)
	}
	srcV1.(io.Closer).Close()

	// Corrupt content fails loudly and is not retained.
	junk := filepath.Join(dir, "junk.trc")
	if err := os.WriteFile(junk, []byte("VTRCjunkjunkjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(junk); err == nil {
		t.Error("shared store accepted a corrupt trace")
	}
}

// TestSharedStoreContentKeying proves keying is by content, not path:
// overwriting a file in place yields a fresh entry.
func TestSharedStoreContentKeying(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mut.trc")
	writeTraceV2File(t, path, genInsts(1000))
	s := NewShared(0)
	src, err := s.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(drainSource(src)); n != 1000 {
		t.Fatalf("first content: %d records", n)
	}
	src.(io.Closer).Close()

	writeTraceV2File(t, path, genInsts(2000))
	src2, err := s.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(drainSource(src2)); n != 2000 {
		t.Fatalf("rewritten content served stale entry: %d records", n)
	}
	src2.(io.Closer).Close()
	if st := s.Stats(); st.Decodes != 2 {
		t.Errorf("decodes=%d, want 2 (content changed)", st.Decodes)
	}
}

// TestOpenReplaySourceVariants drives the dispatcher over both formats
// and checks stream equality against the plain reader.
func TestOpenReplaySourceVariants(t *testing.T) {
	dir := t.TempDir()
	insts := genInsts(blockRecords + 500)
	v2 := filepath.Join(dir, "r.trc")
	writeTraceV2File(t, v2, insts)
	v1 := filepath.Join(dir, "r1.trc.gz")
	w, err := CreateV1(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		w.WriteInst(in)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{v2, v1} {
		src, err := OpenReplaySource(path)
		if err != nil {
			t.Fatal(err)
		}
		got := drainSource(src)
		if len(got) != len(insts) {
			t.Fatalf("%s: got %d records, want %d", path, len(got), len(insts))
		}
		for i := range got {
			if got[i] != canonical(insts[i]) {
				t.Fatalf("%s: record %d diverged", path, i)
			}
		}
	}
}
