package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/isa"
)

// Convert rewrites the trace at src into the v2 container at dst,
// preserving the header and every record (the record stream is
// byte-identical under decode; only the framing changes). src may be
// any readable version — converting a v2 file re-blocks it. dst is
// written atomically: a temporary file in dst's directory is renamed
// over dst only after a successful Close, so a failed conversion never
// leaves a truncated trace behind.
func Convert(src, dst string) (Info, error) {
	r, err := Open(src)
	if err != nil {
		return Info{}, err
	}
	defer r.Close()

	tmp, err := os.CreateTemp(filepath.Dir(dst), ".vtrc-convert-*")
	if err != nil {
		return Info{}, fmt.Errorf("trace: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	w := NewWriterV2(tmp)
	if err := w.WriteHeader(r.Header()); err != nil {
		return Info{}, err
	}
	var in isa.Inst
	for {
		err := r.Read(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Info{}, err
		}
		if err := w.WriteInst(in); err != nil {
			return Info{}, err
		}
	}
	if err := w.Close(); err != nil {
		return Info{}, err
	}
	info := Info{
		Header:     r.Header(),
		Records:    w.Records(),
		Insts:      w.Insts(),
		MemOps:     w.MemOps(),
		Compressed: true,
		Version:    Version2,
		Blocks:     w.Blocks(),
		IndexBytes: w.IndexBytes(),
		RawBytes:   w.RawBytes(),
		CompBytes:  w.CompBytes(),
	}
	if err := tmp.Sync(); err != nil {
		return Info{}, fmt.Errorf("trace: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return Info{}, fmt.Errorf("trace: %w", err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		return Info{}, fmt.Errorf("trace: %w", err)
	}
	tmpName = ""
	return info, nil
}
