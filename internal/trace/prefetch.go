package trace

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/isa"
)

// prefetchBatch is the decode granularity of the prefetcher; depth is
// the ring size. depth*prefetchBatch records of read-ahead is enough to
// hide gzip+varint decode behind simulation without holding megabytes
// of decoded instructions per replay point.
const (
	prefetchBatch = 1024
	prefetchDepth = 4
)

// pfItem is one decoded batch handed from the filler goroutine to the
// consumer. err is io.EOF at a clean end of stream, or the decode error
// that stopped the filler; either way it is the stream's final item.
type pfItem struct {
	buf []isa.Inst
	n   int
	err error
}

// prefetchSource is a decode-ahead isa.Source over a trace file: a
// filler goroutine owns the Reader and decodes fixed-size batches into
// a bounded ring of buffers, so replay-heavy sweep points overlap
// gzip/varint decode with simulation instead of paying it inline on the
// hot thread.
//
// The consumer side (Next/NextBatch/Close) is single-goroutine, like
// every isa.Source. Decoded batches arrive in order through ch; drained
// buffers return through free. The stream is byte-for-byte the one a
// plain fileSource would produce — only the thread doing the decode
// differs — and it honours the same contract: panic on mid-stream
// corruption (raised on the consumer, where the engine can report it),
// self-close on exhaustion.
type prefetchSource struct {
	path string
	r    *Reader

	ch   chan pfItem
	free chan []isa.Inst
	quit chan struct{}
	wg   sync.WaitGroup

	cur    pfItem
	pos    int
	done   bool
	closed bool
	once   sync.Once // reader close
}

// OpenPrefetchSource opens path as a decode-ahead streaming source.
func OpenPrefetchSource(path string) (isa.Source, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	return newPrefetchSource(path, r), nil
}

// newPrefetchSource wraps an already-open Reader in the decode-ahead
// ring and starts its filler goroutine; the source takes ownership of
// the Reader.
func newPrefetchSource(path string, r *Reader) *prefetchSource {
	s := &prefetchSource{
		path: path,
		r:    r,
		ch:   make(chan pfItem, prefetchDepth),
		free: make(chan []isa.Inst, prefetchDepth),
		quit: make(chan struct{}),
	}
	for i := 0; i < prefetchDepth; i++ {
		s.free <- make([]isa.Inst, prefetchBatch)
	}
	s.wg.Add(1)
	go s.fill()
	return s
}

// MustOpenPrefetchSource is OpenPrefetchSource, panicking on error (the
// engine validates the file header at system construction).
func MustOpenPrefetchSource(path string) isa.Source {
	s, err := OpenPrefetchSource(path)
	if err != nil {
		panic(err)
	}
	return s
}

// fill runs on the filler goroutine: decode batches until EOF, error,
// or Close. The terminal item (err != nil) is the filler's last send;
// it never closes ch (Close may race a send otherwise) and never
// touches the Reader again after returning.
func (s *prefetchSource) fill() {
	defer s.wg.Done()
	for {
		var buf []isa.Inst
		select {
		case buf = <-s.free:
		case <-s.quit:
			return
		}
		n := 0
		var ferr error
		for n < len(buf) {
			if err := s.r.Read(&buf[n]); err != nil {
				ferr = err
				break
			}
			n++
		}
		select {
		case s.ch <- pfItem{buf: buf, n: n, err: ferr}:
		case <-s.quit:
			return
		}
		if ferr != nil {
			return
		}
	}
}

func (s *prefetchSource) closeReader() error {
	var err error
	s.once.Do(func() { err = s.r.Close() })
	return err
}

// advance makes cur hold at least one undelivered instruction, or
// reports the end of the stream. Terminal errors surface here, on the
// consumer goroutine, with fileSource's panic contract.
func (s *prefetchSource) advance() bool {
	for {
		if s.pos < s.cur.n {
			return true
		}
		if s.done {
			return false
		}
		if s.cur.err != nil {
			// Batch drained and the filler stopped behind it.
			s.done = true
			s.closeReader()
			if s.cur.err != io.EOF {
				panic(fmt.Sprintf("trace: %s: %v", s.path, s.cur.err))
			}
			return false
		}
		if s.cur.buf != nil {
			s.free <- s.cur.buf
			s.cur.buf = nil
		}
		s.cur = <-s.ch
		s.pos = 0
	}
}

// Next implements isa.Source.
func (s *prefetchSource) Next(out *isa.Inst) bool {
	if !s.advance() {
		return false
	}
	*out = s.cur.buf[s.pos]
	s.pos++
	return true
}

// NextBatch implements isa.BatchSource by copying from the pre-decoded
// ring.
func (s *prefetchSource) NextBatch(out []isa.Inst) int {
	n := 0
	for n < len(out) {
		if !s.advance() {
			break
		}
		c := copy(out[n:], s.cur.buf[s.pos:s.cur.n])
		s.pos += c
		n += c
	}
	return n
}

// Close stops the filler and releases the reader; safe after
// exhaustion and idempotent.
func (s *prefetchSource) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.done = true
	// quit unblocks a filler parked on either channel; wait it out
	// before closing the Reader it owns.
	close(s.quit)
	s.wg.Wait()
	return s.closeReader()
}
