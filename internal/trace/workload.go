package trace

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mimicos"
	"repro/internal/workloads"
)

// NewWorkload builds a trace-backed workload from a recorded file: its
// Setup replays the recorded VMA layout at the recorded bases (so the
// absolute virtual addresses in the records resolve to the same VMAs),
// and its Source streams instruction records from the file. The result
// satisfies the same interface as catalog workloads, so traces plug
// directly into Session and Sweep — including parallel sweeps, since
// every run opens its own reader.
//
// The file's header is decoded (and the whole path validated) here;
// errors surface before any simulation starts.
func NewWorkload(path string) (*workloads.Workload, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	hdr := r.Header()
	r.Close()

	setup := func(w *workloads.Workload, k *mimicos.Kernel, pid int) {
		for i, seg := range hdr.Layout {
			base := k.Mmap(pid, seg.Length, seg.MmapFlags())
			if base != seg.Start {
				panic(fmt.Sprintf("trace: %s: segment %d mapped at %#x, recorded %#x", path, i, base, seg.Start))
			}
			w.SetBase(fmt.Sprintf("seg%d", i), base)
		}
	}
	source := func(*workloads.Workload, uint64) isa.Source {
		// The seed is ignored: a trace already fixes the instruction
		// stream. Every run gets a fresh reader with its own cursor.
		return MustOpenSource(path)
	}
	return workloads.CustomSource(hdr.Workload, hdr.Class, hdr.Footprint, setup, source), nil
}
