package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// Reader streams a trace from an underlying reader: the header is
// decoded eagerly by Open/NewReader (so a bad file fails fast, before a
// simulation starts), then Read yields one instruction per call until a
// clean io.EOF. Each Reader carries its own cursor and delta-decode
// state — concurrent replays of one file open one Reader each and never
// share anything.
//
// The Reader handles both format versions transparently: it sniffs the
// gzip envelope by magic bytes (never by file extension) and
// dispatches on the major version in the header. v2 blocks are decoded
// one at a time into a reusable buffer, so sequential reads of a v2
// file still hold only a block's worth of memory.
type Reader struct {
	file *os.File
	gz   *gzip.Reader
	br   *bufio.Reader

	hdr      Header
	version  int
	prevPC   uint64
	prevAddr uint64

	records uint64
	insts   uint64
	memOps  uint64

	// v2 sequential-decode state: the current block's compressed and
	// inflated payloads (reused across blocks), the cursor into the
	// inflated bytes, and the per-block record/count bookkeeping used
	// to cross-check the block header.
	comp      []byte
	raw       []byte
	rawPos    int
	blkLeft   uint64
	blkInsts  uint64
	blkMemOps uint64
	blocks    uint64
	rawBytes  uint64
	compBytes uint64
	v2eof     bool
	fr        io.ReadCloser
	frSrc     bytes.Reader
}

// Open opens path and decodes its header. The gzip envelope and the
// format version are sniffed from the file's leading bytes; the file
// extension is never consulted, so a misnamed file fails loudly with
// ErrCorrupt instead of a confusing mid-stream error.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	r.file = f
	return r, nil
}

// NewReader wraps an arbitrary io.Reader and decodes the header,
// sniffing the gzip envelope and format version from the leading
// bytes. The caller owns the underlying reader; Close releases only
// what the Reader itself allocated.
func NewReader(in io.Reader) (*Reader, error) {
	r := &Reader{}
	br := bufio.NewReaderSize(in, 1<<16)
	lead, err := br.Peek(2)
	if err != nil {
		return nil, corruptf("short header: %v", eofErr(err))
	}
	if lead[0] == 0x1f && lead[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, corruptf("gzip envelope: %v", err)
		}
		r.gz = gz
		r.br = bufio.NewReaderSize(gz, 1<<16)
	} else {
		r.br = br
	}
	if err := r.readHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

// Header returns the decoded file header.
func (r *Reader) Header() Header { return r.hdr }

// Compressed reports whether the stream's record section is
// compressed: a gzip envelope around the whole file, or the
// always-block-compressed v2 container.
func (r *Reader) Compressed() bool { return r.gz != nil || r.version == Version2 }

// Version returns the file's major format version (Version1 or
// Version2).
func (r *Reader) Version() int { return r.version }

func (r *Reader) readHeader() error {
	var fixed [8]byte
	if _, err := io.ReadFull(r.br, fixed[:]); err != nil {
		return corruptf("short header: %v", err)
	}
	if string(fixed[:4]) != Magic {
		return corruptf("bad magic %q (want %q)", fixed[:4], Magic)
	}
	switch fixed[4] {
	case Version1, Version2:
		r.version = int(fixed[4])
	default:
		return corruptf("unsupported major version %d (reader knows %d and %d)",
			fixed[4], Version1, Version2)
	}
	// fixed[5] is the minor version: additive, ignored on read.
	if flags := binary.LittleEndian.Uint16(fixed[6:8]); flags != 0 {
		return corruptf("unknown flags %#x", flags)
	}

	nameLen, err := r.uvarint("name length")
	if err != nil {
		return err
	}
	if nameLen > maxNameLen {
		return corruptf("name length %d exceeds %d", nameLen, maxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.br, name); err != nil {
		return corruptf("truncated name: %v", err)
	}
	r.hdr.Workload = string(name)

	class, err := r.uvarint("class")
	if err != nil {
		return err
	}
	r.hdr.Class = workloads.Class(class)
	if r.hdr.Footprint, err = r.uvarint("footprint"); err != nil {
		return err
	}
	if r.hdr.Seed, err = r.uvarint("seed"); err != nil {
		return err
	}
	nsegs, err := r.uvarint("segment count")
	if err != nil {
		return err
	}
	if nsegs > maxSegments {
		return corruptf("segment count %d exceeds %d", nsegs, maxSegments)
	}
	r.hdr.Layout = make([]Segment, 0, nsegs)
	for i := uint64(0); i < nsegs; i++ {
		start, err := r.uvarint("segment start")
		if err != nil {
			return err
		}
		length, err := r.uvarint("segment length")
		if err != nil {
			return err
		}
		bits, err := r.br.ReadByte()
		if err != nil {
			return corruptf("truncated segment flags: %v", err)
		}
		seg := segmentFromBits(bits)
		seg.Start, seg.Length = mem.VAddr(start), length
		if seg.FileID, err = r.uvarint("segment file id"); err != nil {
			return err
		}
		r.hdr.Layout = append(r.hdr.Layout, seg)
	}
	return nil
}

// maxRecordBytes is the widest possible instruction record: the control
// byte plus three maximum-length varints (pc delta, count, addr delta).
const maxRecordBytes = 1 + 3*binary.MaxVarintLen64

// Read decodes the next instruction record into out. It returns io.EOF
// at a clean end of trace and an ErrCorrupt-wrapped error when the
// stream ends mid-record or a record is malformed.
//
// The v1 fast path peeks a full worst-case record out of the buffer and
// decodes it in place with the slice-based varint routines, consuming
// it with one Discard — no per-byte interface dispatch, no allocation.
// Near end of stream (or on a varint the window cannot resolve) it
// falls back to readSlow, which consumes byte-at-a-time and reports
// truncation precisely. Delta state is committed only after the whole
// record decodes, so the fallback never sees half-applied deltas. The
// v2 path decodes straight out of the current inflated block.
func (r *Reader) Read(out *isa.Inst) error {
	if r.version == Version2 {
		return r.read2(out)
	}
	buf, err := r.br.Peek(maxRecordBytes)
	if err != nil {
		return r.readSlow(out)
	}
	ctrl := buf[0]
	if ctrl&ctrlReserved != 0 {
		return corruptf("record %d: reserved control bit set (%#02x)", r.records, ctrl)
	}
	*out = isa.Inst{Op: isa.Op(ctrl & ctrlOpMask), Phys: ctrl&ctrlPhys != 0, Count: 1}
	n := 1
	pc, addr := r.prevPC, r.prevAddr
	if ctrl&ctrlHasPC != 0 {
		d, k := binary.Varint(buf[n:])
		if k <= 0 {
			return r.readSlow(out)
		}
		n += k
		pc += uint64(d)
	}
	out.PC = pc
	if ctrl&ctrlHasCount != 0 {
		c, k := binary.Uvarint(buf[n:])
		if k <= 0 {
			return r.readSlow(out)
		}
		if c < 2 || c > 1<<32-1 {
			return corruptf("record %d: count %d out of range", r.records, c)
		}
		n += k
		out.Count = uint32(c)
	}
	if ctrl&ctrlHasAddr != 0 {
		if !out.Op.HasMemOperand() {
			return corruptf("record %d: address on %v op", r.records, out.Op)
		}
		d, k := binary.Varint(buf[n:])
		if k <= 0 {
			return r.readSlow(out)
		}
		n += k
		addr += uint64(d)
		out.Addr = addr
	} else if out.Op.HasMemOperand() {
		return corruptf("record %d: %v op without address", r.records, out.Op)
	}
	r.br.Discard(n)
	r.prevPC, r.prevAddr = pc, addr
	r.records++
	if out.Op != isa.OpDelay {
		r.insts += out.N()
	}
	if out.Op.HasMemOperand() {
		r.memOps += out.N()
	}
	return nil
}

// read2 decodes the next record from the current v2 block, loading the
// next block when the current one is drained. Record decoding mirrors
// the v1 fast path but runs over a fully in-memory slice, so there is
// no slow fallback: any short varint means a malformed block.
func (r *Reader) read2(out *isa.Inst) error {
	if r.blkLeft == 0 {
		if err := r.loadBlock(); err != nil {
			return err
		}
	}
	buf := r.raw[r.rawPos:]
	if len(buf) == 0 {
		return corruptf("block %d: payload underruns its record count", r.blocks-1)
	}
	ctrl := buf[0]
	if ctrl&ctrlReserved != 0 {
		return corruptf("record %d: reserved control bit set (%#02x)", r.records, ctrl)
	}
	*out = isa.Inst{Op: isa.Op(ctrl & ctrlOpMask), Phys: ctrl&ctrlPhys != 0, Count: 1}
	n := 1
	pc, addr := r.prevPC, r.prevAddr
	if ctrl&ctrlHasPC != 0 {
		d, k := binary.Varint(buf[n:])
		if k <= 0 {
			return corruptf("record %d: truncated pc delta", r.records)
		}
		n += k
		pc += uint64(d)
	}
	out.PC = pc
	if ctrl&ctrlHasCount != 0 {
		c, k := binary.Uvarint(buf[n:])
		if k <= 0 {
			return corruptf("record %d: truncated count", r.records)
		}
		if c < 2 || c > 1<<32-1 {
			return corruptf("record %d: count %d out of range", r.records, c)
		}
		n += k
		out.Count = uint32(c)
	}
	if ctrl&ctrlHasAddr != 0 {
		if !out.Op.HasMemOperand() {
			return corruptf("record %d: address on %v op", r.records, out.Op)
		}
		d, k := binary.Varint(buf[n:])
		if k <= 0 {
			return corruptf("record %d: truncated addr delta", r.records)
		}
		n += k
		addr += uint64(d)
		out.Addr = addr
	} else if out.Op.HasMemOperand() {
		return corruptf("record %d: %v op without address", r.records, out.Op)
	}
	r.rawPos += n
	r.prevPC, r.prevAddr = pc, addr
	r.records++
	cnt := out.N()
	if out.Op != isa.OpDelay {
		r.insts += cnt
		r.blkInsts += cnt
	}
	if out.Op.HasMemOperand() {
		r.memOps += cnt
		r.blkMemOps += cnt
	}
	r.blkLeft--
	if r.blkLeft == 0 {
		return r.finishBlock()
	}
	return nil
}

// finishBlock cross-checks a fully decoded block against its header:
// the payload must be exactly consumed and the decoded counts must
// match the declared ones, so a block whose header and body disagree
// (an index/offset mixup, a spliced file) is corrupt rather than a
// silently wrong replay.
func (r *Reader) finishBlock() error {
	if r.rawPos != len(r.raw) {
		return corruptf("block %d: %d trailing payload bytes", r.blocks-1, len(r.raw)-r.rawPos)
	}
	if r.blkInsts != 0 || r.blkMemOps != 0 {
		return corruptf("block %d: decoded counts disagree with block header (insts off by %d, mem ops by %d)",
			r.blocks-1, r.blkInsts, r.blkMemOps)
	}
	return nil
}

// loadBlock reads the next block header, verifies the payload CRC, and
// inflates it into the reusable raw buffer. It returns io.EOF at the
// sentinel that ends the block section.
func (r *Reader) loadBlock() error {
	if r.v2eof {
		return io.EOF
	}
	nRec, err := binary.ReadUvarint(r.br)
	if err != nil {
		return corruptf("block %d: header: %v", r.blocks, eofErr(err))
	}
	if nRec == 0 {
		// Sentinel: the record section is over. The index and trailer
		// that follow are for seekable readers; a sequential pass
		// simply stops here.
		r.v2eof = true
		return io.EOF
	}
	if nRec > blockRecords {
		return corruptf("block %d: record count %d exceeds %d", r.blocks, nRec, blockRecords)
	}
	nInsts, err := binary.ReadUvarint(r.br)
	if err != nil {
		return corruptf("block %d: inst count: %v", r.blocks, eofErr(err))
	}
	nMemOps, err := binary.ReadUvarint(r.br)
	if err != nil {
		return corruptf("block %d: mem-op count: %v", r.blocks, eofErr(err))
	}
	rawLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return corruptf("block %d: raw length: %v", r.blocks, eofErr(err))
	}
	if rawLen < nRec || rawLen > maxBlockRaw {
		return corruptf("block %d: raw length %d out of range", r.blocks, rawLen)
	}
	compLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return corruptf("block %d: compressed length: %v", r.blocks, eofErr(err))
	}
	if compLen == 0 || compLen > maxBlockComp {
		return corruptf("block %d: compressed length %d out of range", r.blocks, compLen)
	}
	if uint64(cap(r.comp)) < compLen {
		r.comp = make([]byte, compLen)
	}
	r.comp = r.comp[:compLen]
	if _, err := io.ReadFull(r.br, r.comp); err != nil {
		return corruptf("block %d: truncated payload: %v", r.blocks, eofErr(err))
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r.br, crcb[:]); err != nil {
		return corruptf("block %d: truncated CRC: %v", r.blocks, eofErr(err))
	}
	want := binary.LittleEndian.Uint32(crcb[:])
	if got := crc32.ChecksumIEEE(r.comp); got != want {
		return corruptf("block %d: CRC mismatch (got %#x, want %#x)", r.blocks, got, want)
	}
	if uint64(cap(r.raw)) < rawLen {
		r.raw = make([]byte, rawLen)
	}
	r.raw = r.raw[:rawLen]
	r.frSrc.Reset(r.comp)
	if r.fr == nil {
		r.fr = flate.NewReader(&r.frSrc)
	} else if err := r.fr.(flate.Resetter).Reset(&r.frSrc, nil); err != nil {
		return corruptf("block %d: flate reset: %v", r.blocks, err)
	}
	if _, err := io.ReadFull(r.fr, r.raw); err != nil {
		return corruptf("block %d: inflate: %v", r.blocks, eofErr(err))
	}
	var one [1]byte
	if n, _ := r.fr.Read(one[:]); n != 0 {
		return corruptf("block %d: inflates past its declared raw length %d", r.blocks, rawLen)
	}
	r.rawPos = 0
	r.blkLeft = nRec
	// Per-block delta reset: each block decodes from a zero base, so
	// blocks are independently decodable.
	r.prevPC, r.prevAddr = 0, 0
	// Decoded counts subtract from the declared ones; finishBlock
	// requires both to land on exactly zero.
	r.blkInsts = -nInsts
	r.blkMemOps = -nMemOps
	r.blocks++
	r.rawBytes += rawLen
	r.compBytes += compLen
	return nil
}

// readSlow is the byte-at-a-time v1 record decoder: the reference path
// the Peek fast lane falls back to when fewer than maxRecordBytes
// remain buffered (end of stream) or a varint fails to resolve in the
// window.
func (r *Reader) readSlow(out *isa.Inst) error {
	ctrl, err := r.br.ReadByte()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return corruptf("record %d: %v", r.records, err)
	}
	if ctrl&ctrlReserved != 0 {
		return corruptf("record %d: reserved control bit set (%#02x)", r.records, ctrl)
	}
	*out = isa.Inst{Op: isa.Op(ctrl & ctrlOpMask), Phys: ctrl&ctrlPhys != 0, Count: 1}
	if ctrl&ctrlHasPC != 0 {
		d, err := r.varint("pc delta")
		if err != nil {
			return err
		}
		r.prevPC += uint64(d)
	}
	out.PC = r.prevPC
	if ctrl&ctrlHasCount != 0 {
		c, err := r.uvarint("count")
		if err != nil {
			return err
		}
		if c < 2 || c > 1<<32-1 {
			return corruptf("record %d: count %d out of range", r.records, c)
		}
		out.Count = uint32(c)
	}
	if ctrl&ctrlHasAddr != 0 {
		if !out.Op.HasMemOperand() {
			return corruptf("record %d: address on %v op", r.records, out.Op)
		}
		d, err := r.varint("addr delta")
		if err != nil {
			return err
		}
		r.prevAddr += uint64(d)
		out.Addr = r.prevAddr
	} else if out.Op.HasMemOperand() {
		return corruptf("record %d: %v op without address", r.records, out.Op)
	}
	r.records++
	if out.Op != isa.OpDelay {
		r.insts += out.N()
	}
	if out.Op.HasMemOperand() {
		r.memOps += out.N()
	}
	return nil
}

// Records returns the number of records decoded so far.
func (r *Reader) Records() uint64 { return r.records }

// Insts returns the dynamic instruction count decoded so far.
func (r *Reader) Insts() uint64 { return r.insts }

// MemOps returns the memory-operand instruction count decoded so far.
func (r *Reader) MemOps() uint64 { return r.memOps }

// Close releases the gzip envelope and the file, if Open opened one.
func (r *Reader) Close() error {
	var err error
	if r.gz != nil {
		err = r.gz.Close()
	}
	if r.file != nil {
		if e := r.file.Close(); err == nil {
			err = e
		}
	}
	return err
}

func (r *Reader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, corruptf("%s: %v", what, eofErr(err))
	}
	return v, nil
}

func (r *Reader) varint(what string) (int64, error) {
	v, err := binary.ReadVarint(r.br)
	if err != nil {
		return 0, corruptf("%s: %v", what, eofErr(err))
	}
	return v, nil
}

// eofErr normalises a mid-field EOF so error text says "truncated"
// rather than the misleading bare "EOF".
func eofErr(err error) error {
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("truncated (unexpected EOF)")
	}
	return err
}
