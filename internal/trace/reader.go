package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// Reader streams a trace from an underlying reader: the header is
// decoded eagerly by Open/NewReader (so a bad file fails fast, before a
// simulation starts), then Read yields one instruction per call until a
// clean io.EOF. Each Reader carries its own cursor and delta-decode
// state — concurrent replays of one file open one Reader each and never
// share anything.
type Reader struct {
	file *os.File
	gz   *gzip.Reader
	br   *bufio.Reader

	hdr      Header
	prevPC   uint64
	prevAddr uint64

	records uint64
	insts   uint64
	memOps  uint64
}

// Open opens path and decodes its header. A ".gz" extension selects the
// gzip envelope, mirroring Create.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	r, err := NewReader(f, Compressed(path))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	r.file = f
	return r, nil
}

// NewReader wraps an arbitrary io.Reader and decodes the header. The
// caller owns the underlying reader; Close releases only what the
// Reader itself allocated.
func NewReader(in io.Reader, compressed bool) (*Reader, error) {
	r := &Reader{}
	if compressed {
		gz, err := gzip.NewReader(in)
		if err != nil {
			return nil, corruptf("gzip envelope: %v", err)
		}
		r.gz = gz
		r.br = bufio.NewReaderSize(gz, 1<<16)
	} else {
		r.br = bufio.NewReaderSize(in, 1<<16)
	}
	if err := r.readHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

// Header returns the decoded file header.
func (r *Reader) Header() Header { return r.hdr }

func (r *Reader) readHeader() error {
	var fixed [8]byte
	if _, err := io.ReadFull(r.br, fixed[:]); err != nil {
		return corruptf("short header: %v", err)
	}
	if string(fixed[:4]) != Magic {
		return corruptf("bad magic %q (want %q)", fixed[:4], Magic)
	}
	if fixed[4] != Version1 {
		return corruptf("unsupported major version %d (reader knows %d)", fixed[4], Version1)
	}
	// fixed[5] is the minor version: additive, ignored on read.
	if flags := binary.LittleEndian.Uint16(fixed[6:8]); flags != 0 {
		return corruptf("unknown flags %#x", flags)
	}

	nameLen, err := r.uvarint("name length")
	if err != nil {
		return err
	}
	if nameLen > maxNameLen {
		return corruptf("name length %d exceeds %d", nameLen, maxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.br, name); err != nil {
		return corruptf("truncated name: %v", err)
	}
	r.hdr.Workload = string(name)

	class, err := r.uvarint("class")
	if err != nil {
		return err
	}
	r.hdr.Class = workloads.Class(class)
	if r.hdr.Footprint, err = r.uvarint("footprint"); err != nil {
		return err
	}
	if r.hdr.Seed, err = r.uvarint("seed"); err != nil {
		return err
	}
	nsegs, err := r.uvarint("segment count")
	if err != nil {
		return err
	}
	if nsegs > maxSegments {
		return corruptf("segment count %d exceeds %d", nsegs, maxSegments)
	}
	r.hdr.Layout = make([]Segment, 0, nsegs)
	for i := uint64(0); i < nsegs; i++ {
		start, err := r.uvarint("segment start")
		if err != nil {
			return err
		}
		length, err := r.uvarint("segment length")
		if err != nil {
			return err
		}
		bits, err := r.br.ReadByte()
		if err != nil {
			return corruptf("truncated segment flags: %v", err)
		}
		seg := segmentFromBits(bits)
		seg.Start, seg.Length = mem.VAddr(start), length
		if seg.FileID, err = r.uvarint("segment file id"); err != nil {
			return err
		}
		r.hdr.Layout = append(r.hdr.Layout, seg)
	}
	return nil
}

// maxRecordBytes is the widest possible instruction record: the control
// byte plus three maximum-length varints (pc delta, count, addr delta).
const maxRecordBytes = 1 + 3*binary.MaxVarintLen64

// Read decodes the next instruction record into out. It returns io.EOF
// at a clean end of trace and an ErrCorrupt-wrapped error when the
// stream ends mid-record or a record is malformed.
//
// The fast path peeks a full worst-case record out of the buffer and
// decodes it in place with the slice-based varint routines, consuming
// it with one Discard — no per-byte interface dispatch, no allocation.
// Near end of stream (or on a varint the window cannot resolve) it
// falls back to readSlow, which consumes byte-at-a-time and reports
// truncation precisely. Delta state is committed only after the whole
// record decodes, so the fallback never sees half-applied deltas.
func (r *Reader) Read(out *isa.Inst) error {
	buf, err := r.br.Peek(maxRecordBytes)
	if err != nil {
		return r.readSlow(out)
	}
	ctrl := buf[0]
	if ctrl&ctrlReserved != 0 {
		return corruptf("record %d: reserved control bit set (%#02x)", r.records, ctrl)
	}
	*out = isa.Inst{Op: isa.Op(ctrl & ctrlOpMask), Phys: ctrl&ctrlPhys != 0, Count: 1}
	n := 1
	pc, addr := r.prevPC, r.prevAddr
	if ctrl&ctrlHasPC != 0 {
		d, k := binary.Varint(buf[n:])
		if k <= 0 {
			return r.readSlow(out)
		}
		n += k
		pc += uint64(d)
	}
	out.PC = pc
	if ctrl&ctrlHasCount != 0 {
		c, k := binary.Uvarint(buf[n:])
		if k <= 0 {
			return r.readSlow(out)
		}
		if c < 2 || c > 1<<32-1 {
			return corruptf("record %d: count %d out of range", r.records, c)
		}
		n += k
		out.Count = uint32(c)
	}
	if ctrl&ctrlHasAddr != 0 {
		if !out.Op.HasMemOperand() {
			return corruptf("record %d: address on %v op", r.records, out.Op)
		}
		d, k := binary.Varint(buf[n:])
		if k <= 0 {
			return r.readSlow(out)
		}
		n += k
		addr += uint64(d)
		out.Addr = addr
	} else if out.Op.HasMemOperand() {
		return corruptf("record %d: %v op without address", r.records, out.Op)
	}
	r.br.Discard(n)
	r.prevPC, r.prevAddr = pc, addr
	r.records++
	if out.Op != isa.OpDelay {
		r.insts += out.N()
	}
	if out.Op.HasMemOperand() {
		r.memOps += out.N()
	}
	return nil
}

// readSlow is the byte-at-a-time record decoder: the reference path the
// Peek fast lane falls back to when fewer than maxRecordBytes remain
// buffered (end of stream) or a varint fails to resolve in the window.
func (r *Reader) readSlow(out *isa.Inst) error {
	ctrl, err := r.br.ReadByte()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return corruptf("record %d: %v", r.records, err)
	}
	if ctrl&ctrlReserved != 0 {
		return corruptf("record %d: reserved control bit set (%#02x)", r.records, ctrl)
	}
	*out = isa.Inst{Op: isa.Op(ctrl & ctrlOpMask), Phys: ctrl&ctrlPhys != 0, Count: 1}
	if ctrl&ctrlHasPC != 0 {
		d, err := r.varint("pc delta")
		if err != nil {
			return err
		}
		r.prevPC += uint64(d)
	}
	out.PC = r.prevPC
	if ctrl&ctrlHasCount != 0 {
		c, err := r.uvarint("count")
		if err != nil {
			return err
		}
		if c < 2 || c > 1<<32-1 {
			return corruptf("record %d: count %d out of range", r.records, c)
		}
		out.Count = uint32(c)
	}
	if ctrl&ctrlHasAddr != 0 {
		if !out.Op.HasMemOperand() {
			return corruptf("record %d: address on %v op", r.records, out.Op)
		}
		d, err := r.varint("addr delta")
		if err != nil {
			return err
		}
		r.prevAddr += uint64(d)
		out.Addr = r.prevAddr
	} else if out.Op.HasMemOperand() {
		return corruptf("record %d: %v op without address", r.records, out.Op)
	}
	r.records++
	if out.Op != isa.OpDelay {
		r.insts += out.N()
	}
	if out.Op.HasMemOperand() {
		r.memOps += out.N()
	}
	return nil
}

// Records returns the number of records decoded so far.
func (r *Reader) Records() uint64 { return r.records }

// Insts returns the dynamic instruction count decoded so far.
func (r *Reader) Insts() uint64 { return r.insts }

// MemOps returns the memory-operand instruction count decoded so far.
func (r *Reader) MemOps() uint64 { return r.memOps }

// Close releases the gzip envelope and the file, if Open opened one.
func (r *Reader) Close() error {
	var err error
	if r.gz != nil {
		err = r.gz.Close()
	}
	if r.file != nil {
		if e := r.file.Close(); err == nil {
			err = e
		}
	}
	return err
}

func (r *Reader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, corruptf("%s: %v", what, eofErr(err))
	}
	return v, nil
}

func (r *Reader) varint(what string) (int64, error) {
	v, err := binary.ReadVarint(r.br)
	if err != nil {
		return 0, corruptf("%s: %v", what, eofErr(err))
	}
	return v, nil
}

// eofErr normalises a mid-field EOF so error text says "truncated"
// rather than the misleading bare "EOF".
func eofErr(err error) error {
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("truncated (unexpected EOF)")
	}
	return err
}
