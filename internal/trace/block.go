package trace

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
)

// VTRC v2 container constants. A v2 file shares the v1 header (magic,
// version, flags, metadata) but stores the record section as a sequence
// of independently decodable blocks, each a flate frame with its own
// delta-decode state, followed by a sentinel, a block index, and a
// fixed-size trailer that locates the index (docs/trace-format.md).
const (
	// TrailerMagic closes every v2 file; readers locate the block index
	// by reading the fixed-size trailer from the end of the file.
	TrailerMagic = "VTRX"
	// trailerSize is the byte length of the fixed trailer:
	// uint64 index offset, uint32 index length, uint32 index CRC, magic.
	trailerSize = 8 + 4 + 4 + 4

	// blockRecords is the writer's records-per-block target. 16Ki
	// records keep a decoded block arena under ~400KB (24B/record)
	// while amortising the flate frame overhead to noise.
	blockRecords = 1 << 14

	// maxBlockRaw bounds a block's uncompressed payload: blockRecords
	// worst-case records. A larger claimed rawLen is corrupt, never an
	// attempted allocation.
	maxBlockRaw = blockRecords * maxRecordBytes
	// maxBlockComp bounds a block's compressed payload. Flate can
	// expand incompressible input by a small factor plus framing; a
	// claimed compLen beyond this is corrupt.
	maxBlockComp = maxBlockRaw + maxBlockRaw>>1 + 256

	// maxIndexBytes bounds the index a reader will buffer; a v2 file
	// would need tens of millions of blocks to exceed it.
	maxIndexBytes = 1 << 28
)

// blockInfo is one block-index entry: where a block lives in the file
// and what it holds, enough to decode it in isolation (seek to Off,
// verify CRC, inflate RawLen bytes, decode Records records) and to
// answer whole-file counts without touching the record section.
type blockInfo struct {
	// Off is the absolute file offset of the block header.
	Off uint64
	// Records, Insts, MemOps are the block's record count, dynamic
	// instruction count (batched ops at their batch size, delays
	// excluded), and memory-operand instruction count.
	Records uint64
	Insts   uint64
	MemOps  uint64
	// RawLen and CompLen are the uncompressed and compressed payload
	// sizes in bytes.
	RawLen  uint64
	CompLen uint64
	// CRC is the IEEE CRC-32 of the compressed payload.
	CRC uint32
}

// appendIndex serialises the block index: a block count followed by one
// varint-packed entry per block.
func appendIndex(dst []byte, blocks []blockInfo) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(blocks)))
	for _, b := range blocks {
		dst = binary.AppendUvarint(dst, b.Off)
		dst = binary.AppendUvarint(dst, b.Records)
		dst = binary.AppendUvarint(dst, b.Insts)
		dst = binary.AppendUvarint(dst, b.MemOps)
		dst = binary.AppendUvarint(dst, b.RawLen)
		dst = binary.AppendUvarint(dst, b.CompLen)
		dst = binary.LittleEndian.AppendUint32(dst, b.CRC)
	}
	return dst
}

// minIndexEntryBytes is the smallest possible serialised index entry
// (six one-byte varints plus the CRC), used to sanity-bound the block
// count against the index length before allocating.
const minIndexEntryBytes = 6 + 4

// parseIndex decodes a serialised block index and validates every entry
// against the format limits and monotonic file layout. indexOff is the
// file offset the index itself starts at: every block must live
// strictly before it.
func parseIndex(buf []byte, indexOff uint64) ([]blockInfo, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, corruptf("index: bad block count")
	}
	buf = buf[n:]
	if count > uint64(len(buf)/minIndexEntryBytes)+1 {
		return nil, corruptf("index: block count %d exceeds index size", count)
	}
	blocks := make([]blockInfo, 0, count)
	prevEnd := uint64(0)
	for i := uint64(0); i < count; i++ {
		var b blockInfo
		for _, f := range []*uint64{&b.Off, &b.Records, &b.Insts, &b.MemOps, &b.RawLen, &b.CompLen} {
			v, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, corruptf("index: truncated entry %d", i)
			}
			*f, buf = v, buf[n:]
		}
		if len(buf) < 4 {
			return nil, corruptf("index: truncated entry %d CRC", i)
		}
		b.CRC = binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if b.Records == 0 || b.Records > blockRecords {
			return nil, corruptf("index: entry %d record count %d out of range", i, b.Records)
		}
		if b.RawLen < b.Records || b.RawLen > maxBlockRaw {
			return nil, corruptf("index: entry %d raw length %d out of range", i, b.RawLen)
		}
		if b.CompLen == 0 || b.CompLen > maxBlockComp {
			return nil, corruptf("index: entry %d compressed length %d out of range", i, b.CompLen)
		}
		if b.Off < prevEnd || b.Off >= indexOff {
			return nil, corruptf("index: entry %d offset %d out of order", i, b.Off)
		}
		// The block's on-disk span (header varints + payload + CRC)
		// must also end before the index; header size is bounded by
		// five maximal varints.
		end := b.Off + b.CompLen + 4
		if end >= indexOff {
			return nil, corruptf("index: entry %d overruns the index", i)
		}
		prevEnd = end
		blocks = append(blocks, b)
	}
	if len(buf) != 0 {
		return nil, corruptf("index: %d trailing bytes", len(buf))
	}
	return blocks, nil
}

// readIndexFile reads and validates a v2 file's trailer and block index
// with positioned reads, leaving the file's seek offset untouched. It
// returns the parsed index, the file offset the index starts at, and
// the serialised index length in bytes.
func readIndexFile(f *os.File) (blocks []blockInfo, indexOff uint64, indexLen int, err error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, 0, corruptf("index: %v", err)
	}
	if size < trailerSize+8 {
		return nil, 0, 0, corruptf("file too small for a v2 trailer (%d bytes)", size)
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, 0, 0, corruptf("trailer: %v", err)
	}
	if string(tr[16:20]) != TrailerMagic {
		return nil, 0, 0, corruptf("bad trailer magic %q (want %q)", tr[16:20], TrailerMagic)
	}
	indexOff = binary.LittleEndian.Uint64(tr[0:8])
	indexLen = int(binary.LittleEndian.Uint32(tr[8:12]))
	wantCRC := binary.LittleEndian.Uint32(tr[12:16])
	if indexLen > maxIndexBytes {
		return nil, 0, 0, corruptf("index length %d exceeds %d", indexLen, maxIndexBytes)
	}
	if indexOff+uint64(indexLen)+trailerSize != uint64(size) {
		return nil, 0, 0, corruptf("index span [%d,+%d) does not meet the trailer (file %d bytes)",
			indexOff, indexLen, size)
	}
	raw := make([]byte, indexLen)
	if _, err := f.ReadAt(raw, int64(indexOff)); err != nil {
		return nil, 0, 0, corruptf("index: %v", err)
	}
	if got := crc32.ChecksumIEEE(raw); got != wantCRC {
		return nil, 0, 0, corruptf("index CRC mismatch (got %#x, want %#x)", got, wantCRC)
	}
	blocks, err = parseIndex(raw, indexOff)
	if err != nil {
		return nil, 0, 0, err
	}
	return blocks, indexOff, indexLen, nil
}
