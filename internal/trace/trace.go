// Package trace implements the Virtuoso instruction-trace file format:
// a versioned, compact binary container for the application instruction
// stream of one simulated run, plus the address-space layout needed to
// replay it. It is the storage layer behind the §6.2 trace-driven and
// memory-trace-driven frontends (ChampSim / Ramulator integration
// styles): any synthetic workload can be recorded once and replayed
// through core.FrontendTrace or core.FrontendMemTrace — or shipped to a
// different simulator entirely.
//
// A v2 trace file (the current writer default) is:
//
//	header  — magic "VTRC", version, flags, workload metadata,
//	          and the VMA layout Setup must replay
//	blocks  — fixed-size groups of varint/delta-encoded records,
//	          each an independent flate frame with its own delta
//	          state, ended by a sentinel
//	index   — one entry per block (offset, counts, sizes, CRC)
//	trailer — fixed-size locator for the index, magic "VTRX"
//
// Blocks are independently decodable, so a v2 file is seekable: whole-
// file counts come from the index without touching the record section,
// and a worker pool can inflate blocks out of order. A v1 file is a
// single sequential record stream, optionally inside a whole-file gzip
// envelope; readers accept both versions forever and sniff the leading
// magic bytes rather than trusting the file extension.
//
// Both the Writer and the Reader stream: neither ever materialises the
// whole trace in memory, so multi-gigabyte traces cost at most a
// block's worth of buffer. Readers carry their own cursor and
// delta-decode state, so concurrent replays of one file (parallel
// sweeps) simply open one Reader each. The Shared store is the
// exception by design: it decodes a file once and hands refcounted
// read-only cursors over one in-memory copy to every replay point in a
// sweep.
//
// See docs/trace-format.md for the byte-level specification.
package trace

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/workloads"
)

// Magic is the 4-byte file signature.
const Magic = "VTRC"

// Version1 is the legacy sequential-stream format; Version2 is the
// block-compressed, seekable container the writer emits by default. A
// reader rejects files whose major version it does not know; minor
// versions are additive and readable by any reader of the same major.
const (
	Version1     = 1
	Version2     = 2
	VersionMinor = 0
)

// Limits guarding the reader against corrupt headers: a flipped bit in
// a length field must produce ErrCorrupt, not an attempted multi-GB
// allocation.
const (
	maxNameLen  = 4096
	maxSegments = 1 << 20
)

// Instruction-record control-byte layout (see docs/trace-format.md):
// low three bits hold the op, the upper bits are presence flags.
const (
	ctrlOpMask   = 0x07
	ctrlPhys     = 1 << 3
	ctrlHasCount = 1 << 4
	ctrlHasPC    = 1 << 5
	ctrlHasAddr  = 1 << 6
	ctrlReserved = 1 << 7
)

// ErrCorrupt is wrapped by every decode error caused by malformed or
// truncated trace data (as opposed to I/O failures).
var ErrCorrupt = fmt.Errorf("trace: corrupt trace")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Segment is one recorded VMA of the traced process's address space,
// minus the text segment (the engine maps that itself on every run).
// Replay re-creates each segment with an mmap at its recorded base, so
// the absolute virtual addresses in the instruction records stay valid.
type Segment struct {
	Start   mem.VAddr
	Length  uint64
	Anon    bool
	File    bool
	DAX     bool
	HugeTLB bool
	Huge1G  bool
	FileID  uint64
}

// Segment flag bits as stored in the file.
const (
	segAnon = 1 << iota
	segFile
	segDAX
	segHugeTLB
	segHuge1G
)

// SegmentOf captures a VMA as a layout segment.
func SegmentOf(v *mimicos.VMA) Segment {
	return Segment{
		Start: v.Start, Length: v.Len(),
		Anon: v.Anon, File: v.File, DAX: v.DAX,
		HugeTLB: v.HugeTLB, Huge1G: v.Huge1G,
		FileID: v.FileID,
	}
}

// MmapFlags returns the flags that re-create the segment at its
// recorded base.
func (s Segment) MmapFlags() mimicos.MmapFlags {
	return mimicos.MmapFlags{
		Anon: s.Anon, File: s.File, DAX: s.DAX,
		HugeTLB: s.HugeTLB, Huge1G: s.Huge1G,
		FileID:    s.FileID,
		FixedAddr: s.Start,
	}
}

func (s Segment) flagBits() uint8 {
	var b uint8
	if s.Anon {
		b |= segAnon
	}
	if s.File {
		b |= segFile
	}
	if s.DAX {
		b |= segDAX
	}
	if s.HugeTLB {
		b |= segHugeTLB
	}
	if s.Huge1G {
		b |= segHuge1G
	}
	return b
}

func segmentFromBits(b uint8) Segment {
	return Segment{
		Anon: b&segAnon != 0, File: b&segFile != 0, DAX: b&segDAX != 0,
		HugeTLB: b&segHugeTLB != 0, Huge1G: b&segHuge1G != 0,
	}
}

// Header is the trace file's metadata: enough to rebuild a runnable
// workload (name, class, footprint, layout) and to reproduce the run
// that was recorded (seed).
type Header struct {
	// Workload is the recorded workload's name, echoed into replayed
	// Metrics.
	Workload string
	// Class is the recorded workload's class (long- or short-running).
	Class workloads.Class
	// Footprint is the recorded workload's primary data footprint in
	// bytes.
	Footprint uint64
	// Seed is the simulation seed of the recording run; replaying with
	// the same seed and configuration reproduces the run bit for bit.
	Seed uint64
	// Layout is the address-space layout Setup must replay, in creation
	// order.
	Layout []Segment
}
