package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/isa"
)

// DefaultSharedBudget is the decoded-byte budget a zero-budget
// NewShared resolves to: roughly 1 GiB of decoded records.
const DefaultSharedBudget = int64(1) << 30

// instBytes is the in-memory cost of one decoded record, used for
// budget accounting.
const instBytes = int64(24)

// Shared is a content-keyed store of decoded traces for sweep-scale
// replay: the first replay of a file decodes it once into memory
// (single-flight — concurrent opens of the same content wait, they do
// not decode twice) and every later replay of the same content gets a
// refcounted zero-copy cursor over the same records. The second and
// later points of a trace sweep therefore do zero decompression and
// near-zero allocation.
//
// Entries are keyed by content, not by path: a renamed or copied trace
// shares its entry, and a file overwritten in place gets a fresh one.
// The store holds decoded entries within a byte budget, evicting idle
// (refcount-zero) entries least-recently-used first; a single trace
// too large for the whole budget is handed to its callers but never
// retained. All methods are safe for concurrent use.
type Shared struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	clock   uint64
	entries map[string]*sharedEntry

	decodes uint64
	hits    uint64
}

// sharedEntry is one decoded trace: its header, every record in file
// order, and the refcount/LRU bookkeeping. ready is closed when the
// single-flight decode finishes (err set on failure).
type sharedEntry struct {
	key   string
	hdr   Header
	insts []isa.Inst
	size  int64

	refs   int
	stamp  uint64
	cached bool

	ready chan struct{}
	err   error
}

// NewShared returns a store with the given decoded-byte budget; a
// budget <= 0 selects DefaultSharedBudget.
func NewShared(budget int64) *Shared {
	if budget <= 0 {
		budget = DefaultSharedBudget
	}
	return &Shared{budget: budget, entries: make(map[string]*sharedEntry)}
}

// SharedStats is a point-in-time snapshot of a store's activity.
type SharedStats struct {
	// Decodes is the number of full trace decodes the store performed;
	// Hits is the number of Opens answered from an existing entry.
	Decodes uint64
	Hits    uint64
	// Entries and UsedBytes describe the currently retained traces.
	Entries   int
	UsedBytes int64
	// BudgetBytes is the configured budget.
	BudgetBytes int64
}

// Stats returns a snapshot of the store's counters.
func (s *Shared) Stats() SharedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SharedStats{
		Decodes:     s.decodes,
		Hits:        s.hits,
		Entries:     len(s.entries),
		UsedBytes:   s.used,
		BudgetBytes: s.budget,
	}
}

// Open returns a streaming source over path's decoded records, reusing
// the store's in-memory copy when the same content was decoded before.
// The cursor implements isa.Source and isa.BatchSource; its Close
// releases the entry reference (idempotent), after which the entry is
// eligible for eviction once no other cursor holds it.
func (s *Shared) Open(path string) (isa.Source, error) {
	key, err := contentKey(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.refs++
		s.hits++
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			s.release(e)
			return nil, e.err
		}
		return &sharedCursor{s: s, e: e}, nil
	}
	e := &sharedEntry{key: key, refs: 1, cached: true, ready: make(chan struct{})}
	s.entries[key] = e
	s.decodes++
	s.mu.Unlock()

	hdr, insts, err := decodeAll(path)

	s.mu.Lock()
	if err != nil {
		e.err = err
		delete(s.entries, key)
		e.cached = false
		close(e.ready)
		s.mu.Unlock()
		return nil, err
	}
	e.hdr, e.insts = hdr, insts
	e.size = int64(len(insts)) * instBytes
	if e.size > s.budget {
		// Too large to ever retain: hand it to the waiters, but drop
		// it from the store so it dies with its last cursor.
		delete(s.entries, key)
		e.cached = false
	} else {
		s.used += e.size
		s.evictLocked(e)
	}
	close(e.ready)
	s.mu.Unlock()
	return &sharedCursor{s: s, e: e}, nil
}

// MustOpen is Open, panicking on error (the engine validates the file
// header at system construction).
func (s *Shared) MustOpen(path string) isa.Source {
	src, err := s.Open(path)
	if err != nil {
		panic(err)
	}
	return src
}

// release drops one reference and evicts idle entries if the store is
// over budget.
func (s *Shared) release(e *sharedEntry) {
	s.mu.Lock()
	e.refs--
	s.clock++
	e.stamp = s.clock
	s.evictLocked(nil)
	s.mu.Unlock()
}

// evictLocked drops idle (refcount-zero) entries, least recently
// released first, until the store fits its budget. keep, if non-nil,
// is the entry being inserted and is never evicted — a fresh decode is
// about to be read, whatever its stamp says.
func (s *Shared) evictLocked(keep *sharedEntry) {
	for s.used > s.budget {
		var victim *sharedEntry
		for _, e := range s.entries {
			if e == keep || e.refs > 0 || !e.cached {
				continue
			}
			if victim == nil || e.stamp < victim.stamp {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(s.entries, victim.key)
		victim.cached = false
		s.used -= victim.size
	}
}

// decodeAll streams every record of path into memory. For a v2 file
// the block index sizes the arena exactly up front; v1 grows by
// appending.
func decodeAll(path string) (Header, []isa.Inst, error) {
	r, err := Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer r.Close()
	var insts []isa.Inst
	if r.version == Version2 && r.file != nil && r.gz == nil {
		if blocks, _, _, err := readIndexFile(r.file); err == nil {
			var total uint64
			for _, b := range blocks {
				total += b.Records
			}
			insts = make([]isa.Inst, 0, total)
		}
	}
	var in isa.Inst
	for {
		err := r.Read(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Header{}, nil, err
		}
		insts = append(insts, in)
	}
	return r.Header(), insts, nil
}

// contentKey fingerprints a trace file's contents. A v2 file is keyed
// by its header bytes and block index — every block's size and CRC —
// which O(1)-identifies the record section without reading it; any
// other file (v1, or a gzip envelope) is keyed by hashing the whole
// file. The two spaces are disjoint by construction (distinct
// prefixes).
func contentKey(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var lead [5]byte
	if _, err := io.ReadFull(f, lead[:]); err != nil {
		return "", corruptf("%s: short header: %v", path, eofErr(err))
	}
	h := sha256.New()
	if string(lead[:4]) == Magic && lead[4] == Version2 {
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			return "", fmt.Errorf("trace: %s: %w", path, err)
		}
		_, indexOff, indexLen, err := readIndexFile(f)
		if err != nil {
			return "", fmt.Errorf("trace: %s: %w", path, err)
		}
		// Header bytes run from the file start to the first block (or
		// the sentinel, for an empty trace); hashing them plus the
		// index covers the metadata and every block's fingerprint.
		hdrEnd := indexOff
		idx := make([]byte, indexLen)
		if _, err := f.ReadAt(idx, int64(indexOff)); err != nil {
			return "", corruptf("%s: index: %v", path, err)
		}
		var sz [8]byte
		binary.LittleEndian.PutUint64(sz[:], uint64(size))
		h.Write([]byte("vtrc2\x00"))
		h.Write(sz[:])
		hdrLen := int64(hdrEnd)
		if hdrLen > 1<<16 {
			hdrLen = 1 << 16
		}
		hdrBytes := make([]byte, hdrLen)
		if _, err := f.ReadAt(hdrBytes, 0); err != nil {
			return "", corruptf("%s: header: %v", path, err)
		}
		h.Write(hdrBytes)
		h.Write(idx)
	} else {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return "", fmt.Errorf("trace: %s: %w", path, err)
		}
		h.Write([]byte("vtrc1\x00"))
		if _, err := io.Copy(h, f); err != nil {
			return "", fmt.Errorf("trace: %s: %w", path, err)
		}
	}
	return string(h.Sum(nil)), nil
}

// sharedCursor is a zero-copy cursor over one store entry. It
// implements isa.Source and isa.BatchSource; Close releases the entry
// reference and is idempotent.
type sharedCursor struct {
	s      *Shared
	e      *sharedEntry
	pos    int
	closed bool
}

// Next implements isa.Source.
func (c *sharedCursor) Next(out *isa.Inst) bool {
	if c.pos >= len(c.e.insts) {
		return false
	}
	*out = c.e.insts[c.pos]
	c.pos++
	return true
}

// NextBatch implements isa.BatchSource by copying straight out of the
// shared arena.
func (c *sharedCursor) NextBatch(out []isa.Inst) int {
	n := copy(out, c.e.insts[c.pos:])
	c.pos += n
	return n
}

// Close releases the cursor's entry reference; idempotent.
func (c *sharedCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.s.release(c.e)
	return nil
}
