package trace

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// fileSource adapts a Reader to isa.Source for the engine's frontend.
// The isa.Source contract has no error channel, so a source panics on
// mid-stream corruption — silently truncating a corrupt trace would
// produce plausible-looking but wrong metrics. Callers validate files
// up front (Open decodes the whole header), so a panic here means the
// file changed or rotted after validation.
type fileSource struct {
	r    *Reader
	path string
	done bool
}

// OpenSource opens path as a streaming frontend source. Each call opens
// an independent reader — per-run cursors, nothing shared — so parallel
// sweep points may replay one file concurrently. The source closes the
// file when the stream is exhausted.
func OpenSource(path string) (isa.Source, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	return &fileSource{r: r, path: path}, nil
}

// MustOpenSource is OpenSource, panicking on error. The engine uses it
// after the configuration carrying the path has already been validated.
func MustOpenSource(path string) isa.Source {
	s, err := OpenSource(path)
	if err != nil {
		panic(err)
	}
	return s
}

// Next implements isa.Source.
func (s *fileSource) Next(out *isa.Inst) bool {
	if s.done {
		return false
	}
	err := s.r.Read(out)
	if err == io.EOF {
		s.done = true
		s.r.Close()
		return false
	}
	if err != nil {
		s.r.Close()
		panic(fmt.Sprintf("trace: %s: %v", s.path, err))
	}
	return true
}

// NextBatch implements isa.BatchSource: it decodes up to len(out)
// records with direct (devirtualized) Reader calls, so batched replay
// pays the isa.Source interface dispatch once per batch instead of
// once per record.
func (s *fileSource) NextBatch(out []isa.Inst) int {
	if s.done {
		return 0
	}
	n := 0
	for n < len(out) {
		err := s.r.Read(&out[n])
		if err == io.EOF {
			s.done = true
			s.r.Close()
			break
		}
		if err != nil {
			s.r.Close()
			panic(fmt.Sprintf("trace: %s: %v", s.path, err))
		}
		n++
	}
	return n
}

// Close releases the underlying reader. The engine calls it when a run
// ends before the stream is drained (an instruction-bounded replay);
// closing an exhausted or already-closed source is a no-op.
func (s *fileSource) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	return s.r.Close()
}

// Recorder tees the engine's frontend instruction stream into a Writer;
// it is the record side of the §4.2 instrumentation stand-in (what Pin
// or DynamoRIO do for a real binary, the Recorder does for a simulated
// run). Install OnInst as the engine's frontend tap
// (core.System.SetFrontendTap) and every application instruction the
// core consumes is appended to the trace as it retires.
//
// Write errors are sticky: the first one stops recording and is
// reported by Err, so a full disk surfaces once instead of once per
// instruction.
type Recorder struct {
	w   *Writer
	err error
}

// NewRecorder returns a Recorder appending to w. The Writer's header
// must already be written.
func NewRecorder(w *Writer) *Recorder { return &Recorder{w: w} }

// OnInst records one instruction; it is shaped to be installed directly
// as an engine frontend tap.
func (r *Recorder) OnInst(in isa.Inst) {
	if r.err == nil {
		r.err = r.w.WriteInst(in)
	}
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }
