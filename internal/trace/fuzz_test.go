package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/isa"
)

// FuzzReader feeds arbitrary bytes to the trace decoder. The contract
// under fuzz: corrupt or truncated input must surface as an
// ErrCorrupt-wrapped error (or a clean io.EOF at a record boundary) —
// never a panic, never an unbounded allocation, and never a bare
// undiagnosable error. Both the uncompressed and the gzip envelope are
// exercised on every input.
func FuzzReader(f *testing.F) {
	// Seed corpus: a valid trace, its gzip form, prefixes that truncate
	// the header and the record stream, targeted corruptions (bad magic,
	// bad version, reserved control bit, flag bits), and junk.
	var plain, gz bytes.Buffer
	for _, seed := range []struct {
		buf      *bytes.Buffer
		compress bool
	}{{&plain, false}, {&gz, true}} {
		w := NewWriter(seed.buf, seed.compress)
		if err := w.WriteHeader(testHeader()); err != nil {
			f.Fatal(err)
		}
		for _, in := range testInsts() {
			if err := w.WriteInst(in); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
	}
	valid := plain.Bytes()
	f.Add(valid)
	f.Add(gz.Bytes())
	f.Add([]byte{})
	f.Add([]byte("VTRC"))
	f.Add(valid[:8])
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:len(valid)/2])
	for _, mut := range []struct {
		off int
		bit byte
	}{
		{0, 0x01},              // magic
		{4, 0x01},              // major version
		{6, 0x04},              // flags
		{len(valid) - 4, 0x80}, // inside the record stream
	} {
		c := append([]byte(nil), valid...)
		c[mut.off] ^= mut.bit
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, compressed := range []bool{false, true} {
			r, err := NewReader(bytes.NewReader(data), compressed)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("compressed=%v: NewReader error not ErrCorrupt: %v", compressed, err)
				}
				continue
			}
			var in isa.Inst
			for i := 0; i < 1<<16; i++ {
				err := r.Read(&in)
				if err == nil {
					continue
				}
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("compressed=%v: Read error neither EOF nor ErrCorrupt: %v", compressed, err)
				}
				break
			}
			r.Close()
		}
	})
}
