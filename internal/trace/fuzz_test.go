package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

// fuzzTraceBytes serialises the shared test trace in the given format
// for seeding the fuzz corpus.
func fuzzTraceBytes(f *testing.F, version int, compress bool) []byte {
	f.Helper()
	var buf bytes.Buffer
	var w *Writer
	if version == Version2 {
		w = NewWriterV2(&buf)
	} else {
		w = NewWriter(&buf, compress)
	}
	if err := w.WriteHeader(testHeader()); err != nil {
		f.Fatal(err)
	}
	for _, in := range testInsts() {
		if err := w.WriteInst(in); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader feeds arbitrary bytes to the trace decoder. The contract
// under fuzz: corrupt or truncated input must surface as an
// ErrCorrupt-wrapped error (or a clean io.EOF at a record boundary) —
// never a panic, never an unbounded allocation, and never a bare
// undiagnosable error. Every input is exercised through the sequential
// Reader (which sniffs the envelope and version) and, written to a
// file, through the seekable index path (ReadInfo).
func FuzzReader(f *testing.F) {
	// Seed corpus: valid v1 (plain and gzip) and v2 traces, prefixes
	// that truncate the header, the record stream, the v2 footer and
	// trailer, targeted corruptions (bad magic, bad version, reserved
	// control bit, flag bits, block CRCs, index bytes), and junk.
	valid := fuzzTraceBytes(f, Version1, false)
	v2 := fuzzTraceBytes(f, Version2, false)
	f.Add(valid)
	f.Add(fuzzTraceBytes(f, Version1, true))
	f.Add(v2)
	f.Add([]byte{})
	f.Add([]byte("VTRC"))
	f.Add(valid[:8])
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:len(valid)/2])
	for _, mut := range []struct {
		off int
		bit byte
	}{
		{0, 0x01},              // magic
		{4, 0x01},              // major version
		{6, 0x04},              // flags
		{len(valid) - 4, 0x80}, // inside the record stream
	} {
		c := append([]byte(nil), valid...)
		c[mut.off] ^= mut.bit
		f.Add(c)
	}
	// v2-specific seeds: truncated footer (index/trailer cut off),
	// truncated trailer, corrupt block payload CRC, index/offset
	// mismatch (a flipped byte inside the serialised index), and a
	// trailer pointing past the file.
	f.Add(v2[:len(v2)-trailerSize])
	f.Add(v2[:len(v2)-trailerSize/2])
	f.Add(v2[:len(v2)-trailerSize-3])
	for _, off := range []int{
		len(v2) / 2,               // inside a block payload (CRC breaks)
		len(v2) - trailerSize - 2, // inside the index (index CRC breaks)
		len(v2) - trailerSize + 1, // inside the trailer's index offset
		len(v2) - 2,               // inside the trailer magic
	} {
		c := append([]byte(nil), v2...)
		c[off] ^= 0x40
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("NewReader error not ErrCorrupt: %v", err)
			}
		} else {
			var in isa.Inst
			for i := 0; i < 1<<16; i++ {
				err := r.Read(&in)
				if err == nil {
					continue
				}
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Read error neither EOF nor ErrCorrupt: %v", err)
				}
				break
			}
			r.Close()
		}

		// The seekable side: ReadInfo consults the v2 trailer and index
		// when present, and must uphold the same contract.
		path := filepath.Join(t.TempDir(), "fuzz.trc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadInfo(path); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ReadInfo error not ErrCorrupt: %v", err)
		}
	})
}
