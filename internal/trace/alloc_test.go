package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

// TestReadZeroAllocs locks in the allocation-free decode path: once the
// Reader is constructed, steady-state Read calls (the Peek/Discard fast
// lane over the buffered stream) must not allocate per record. Replay
// throughput depends on it — a trace run decodes hundreds of millions
// of records.
func TestReadZeroAllocs(t *testing.T) {
	// Enough varied records that warm-up plus every measured run decodes
	// well clear of the end of stream (the end-of-stream tail falls back
	// to the byte-at-a-time slow path by design).
	const (
		perRun  = 2000
		runs    = 5
		total   = (runs + 2) * perRun
		basePC  = 0x400000
		baseVA  = 0x1000_0000_0000
		opCycle = 4
	)
	var buf bytes.Buffer
	w := NewWriter(&buf, false)
	if err := w.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		in := isa.Inst{Count: 1, PC: uint64(basePC + 4*i)}
		switch i % opCycle {
		case 0:
			in.Op = isa.OpALU
			in.Count = uint32(2 + i%7)
		case 1:
			in.Op = isa.OpLoad
			in.Addr = uint64(baseVA + 64*i)
		case 2:
			in.Op = isa.OpStore
			in.Addr = uint64(baseVA + 64*(total-i)) // backward delta
		case 3:
			in.Op = isa.OpBranch
		}
		if err := w.WriteInst(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out isa.Inst
	avg := testing.AllocsPerRun(runs, func() {
		for i := 0; i < perRun; i++ {
			if err := r.Read(&out); err != nil {
				t.Fatalf("record %d: %v", r.Records(), err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Read allocates %.1f times per %d records (want 0)", avg, perRun)
	}
}

// TestReadZeroAllocsV2 locks in the same guarantee for the v2 block
// path: once the first block's scratch buffers and flate state exist,
// steady-state Read (block loads included, amortised) must not
// allocate per record.
func TestReadZeroAllocsV2(t *testing.T) {
	const (
		perRun = 2000
		runs   = 5
		total  = (runs + 4) * perRun
		basePC = 0x400000
		baseVA = 0x1000_0000_0000
	)
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	if err := w.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		in := isa.Inst{Count: 1, PC: uint64(basePC + 4*i)}
		switch i % 4 {
		case 0:
			in.Op = isa.OpALU
			in.Count = uint32(2 + i%7)
		case 1:
			in.Op = isa.OpLoad
			in.Addr = uint64(baseVA + 64*i)
		case 2:
			in.Op = isa.OpStore
			in.Addr = uint64(baseVA + 64*(total-i))
		case 3:
			in.Op = isa.OpBranch
		}
		if err := w.WriteInst(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past the first block so the scratch buffers exist.
	var out isa.Inst
	for i := 0; i < perRun; i++ {
		if err := r.Read(&out); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(runs, func() {
		for i := 0; i < perRun; i++ {
			if err := r.Read(&out); err != nil {
				t.Fatalf("record %d: %v", r.Records(), err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state v2 Read allocates %.1f times per %d records (want 0)", avg, perRun)
	}
}
