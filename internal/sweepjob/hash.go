package sweepjob

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash digests a canonical spec encoding into the compact identifier
// stamped on checkpoint headers, Reports, and serve job URLs. The
// prefix names the scheme so a future algorithm change cannot collide
// with old files silently.
func Hash(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return "sj1-" + hex.EncodeToString(sum[:16])
}
