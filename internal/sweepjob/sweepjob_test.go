package sweepjob

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"":    {},
		"0/3": {Index: 0, Count: 3},
		"2/3": {Index: 2, Count: 3},
		"0/1": {Index: 0, Count: 1},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"3/3", "-1/3", "1", "a/b", "1/0", "1/-2"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// TestShardPartitionProperties: every partition of every tested grid is
// disjoint and exhaustive, assignments are a pure function of the point
// index, and the slices are balanced to within one point.
func TestShardPartitionProperties(t *testing.T) {
	for _, total := range []int{1, 2, 7, 16, 100, 1023} {
		for _, count := range []int{1, 2, 3, 5, 16} {
			seen := make(map[int]int)
			min, max := total, 0
			for idx := 0; idx < count; idx++ {
				sh := Shard{Index: idx, Count: count}
				sel := sh.Select(total)
				if len(sel) < min {
					min = len(sel)
				}
				if len(sel) > max {
					max = len(sel)
				}
				for _, pt := range sel {
					if !sh.Assign(pt) {
						t.Fatalf("shard %v: Select and Assign disagree on %d", sh, pt)
					}
					if prev, dup := seen[pt]; dup {
						t.Fatalf("total=%d count=%d: point %d in shards %d and %d", total, count, pt, prev, idx)
					}
					seen[pt] = idx
				}
			}
			if len(seen) != total {
				t.Fatalf("total=%d count=%d: %d points covered", total, count, len(seen))
			}
			if max-min > 1 {
				t.Errorf("total=%d count=%d: unbalanced shards (min %d, max %d)", total, count, min, max)
			}
		}
	}
}

func res(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"index":%d,"ipc":%g}`, i, 1.0/float64(i+1)))
}

func writeShard(t *testing.T, dir, name string, hdr Header, indices ...int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	w, done, err := OpenWriter(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("fresh checkpoint reports %d completed points", len(done))
	}
	for _, i := range indices {
		if err := w.Append(i, res(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hdr := Header{SpecHash: "sj1-abc", Points: 6, Shard: "0/2"}
	path := writeShard(t, dir, "s0.jsonl", hdr, 0, 2)

	// Reopen: completed points come back, new ones append.
	w, done, err := OpenWriter(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || string(done[0]) != string(res(0)) || string(done[2]) != string(res(2)) {
		t.Fatalf("resume loaded %v", done)
	}
	if err := w.Append(4, res(4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 3 || f.Torn {
		t.Fatalf("final file: %d records, torn=%v", len(f.Records), f.Torn)
	}
}

func TestCheckpointHeaderMismatchFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	hdr := Header{SpecHash: "sj1-abc", Points: 6, Shard: "0/2"}
	path := writeShard(t, dir, "s.jsonl", hdr, 0)

	for _, bad := range []Header{
		{SpecHash: "sj1-DIFFERENT", Points: 6, Shard: "0/2"},
		{SpecHash: "sj1-abc", Points: 7, Shard: "0/2"},
		{SpecHash: "sj1-abc", Points: 6, Shard: "1/2"},
	} {
		if _, _, err := OpenWriter(path, bad, 0); err == nil {
			t.Errorf("resume with header %+v accepted", bad)
		}
	}
}

// TestCheckpointTornTailRecovery: a record cut mid-write (crash) is
// dropped on reopen and the file truncated, so the interrupted point
// re-runs instead of poisoning the file.
func TestCheckpointTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	hdr := Header{SpecHash: "sj1-abc", Points: 6}
	path := writeShard(t, dir, "s.jsonl", hdr, 0, 1, 2)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		// Half of the last record written, no newline.
		"cut": func(b []byte) []byte { return b[:len(b)-9] },
		// Garbage appended where the next record would go.
		"garbage": func(b []byte) []byte { return append(b, []byte(`{"index":`)...) },
		// A syntactically valid record with an out-of-range index.
		"bad-index": func(b []byte) []byte { return append(b, []byte("{\"index\":99,\"result\":{}}\n")...) },
	} {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name+".jsonl")
			if err := os.WriteFile(p, mutate(append([]byte{}, data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, recs, _, torn, err := Load(p)
			if err != nil {
				t.Fatal(err)
			}
			wantRecs := 3
			if name == "cut" {
				wantRecs = 2
			}
			if !torn || len(recs) != wantRecs {
				t.Fatalf("torn=%v records=%d, want torn with %d records", torn, len(recs), wantRecs)
			}

			// Reopening truncates the tail and appends cleanly after it.
			w, done, err := OpenWriter(p, hdr, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(done) != wantRecs {
				t.Fatalf("resume after tear: %d completed", len(done))
			}
			if name == "cut" {
				if err := w.Append(2, res(2)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if f.Torn || len(f.Records) != 3 {
				t.Fatalf("after repair: torn=%v records=%d", f.Torn, len(f.Records))
			}
		})
	}
}

func TestMergeHappyPath(t *testing.T) {
	dir := t.TempDir()
	mk := func(name, shard string, idx ...int) *File {
		p := writeShard(t, dir, name, Header{SpecHash: "sj1-abc", Points: 6, Shard: shard}, idx...)
		f, err := ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	files := []*File{
		mk("s0.jsonl", "0/3", 0, 3),
		mk("s1.jsonl", "1/3", 1, 4),
		mk("s2.jsonl", "2/3", 2, 5),
	}
	out, hdr, err := Merge(files)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Shard != "" || hdr.Points != 6 || len(out) != 6 {
		t.Fatalf("merged hdr %+v, %d results", hdr, len(out))
	}
	for i, r := range out {
		if string(r) != string(res(i)) {
			t.Errorf("point %d: got %s", i, r)
		}
	}
}

func TestMergeRejectsOverlapGapAndMismatch(t *testing.T) {
	dir := t.TempDir()
	mk := func(name, hash string, points int, idx ...int) *File {
		p := writeShard(t, dir, name, Header{SpecHash: hash, Points: points}, idx...)
		f, err := ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Overlap: point 1 in two files.
	_, _, err := Merge([]*File{mk("a.jsonl", "sj1-h", 4, 0, 1), mk("b.jsonl", "sj1-h", 4, 1, 2, 3)})
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap: %v", err)
	}

	// Gap: point 3 nowhere.
	_, _, err = Merge([]*File{mk("c.jsonl", "sj1-h", 4, 0, 1), mk("d.jsonl", "sj1-h", 4, 2)})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("gap: %v", err)
	}

	// Spec hash mismatch.
	_, _, err = Merge([]*File{mk("e.jsonl", "sj1-h", 4, 0, 1), mk("f.jsonl", "sj1-OTHER", 4, 2, 3)})
	if err == nil || !strings.Contains(err.Error(), "different sweeps") {
		t.Errorf("hash mismatch: %v", err)
	}

	// Grid size mismatch.
	_, _, err = Merge([]*File{mk("g.jsonl", "sj1-h", 4, 0, 1, 2, 3), mk("h.jsonl", "sj1-h", 5, 4)})
	if err == nil || !strings.Contains(err.Error(), "different sweeps") {
		t.Errorf("points mismatch: %v", err)
	}
}

func TestHashStable(t *testing.T) {
	a, b := Hash([]byte("spec")), Hash([]byte("spec"))
	if a != b {
		t.Fatalf("hash not deterministic: %s vs %s", a, b)
	}
	if !strings.HasPrefix(a, "sj1-") || len(a) != 4+32 {
		t.Fatalf("unexpected hash shape %q", a)
	}
	if Hash([]byte("other")) == a {
		t.Fatal("distinct inputs collide")
	}
}
