package sweepjob

import (
	"encoding/json"
	"fmt"
	"sort"
)

// File is one shard checkpoint loaded for merging.
type File struct {
	Path    string
	Header  Header
	Records map[int]json.RawMessage
	// Torn reports whether a damaged tail was dropped while loading;
	// the points it covered count as missing.
	Torn bool
}

// ReadFile loads one shard checkpoint for merge validation, tolerating
// a torn tail (the interrupted point counts as missing, which the gap
// check then reports).
func ReadFile(path string) (*File, error) {
	hdr, recs, _, torn, err := Load(path)
	if err != nil {
		return nil, err
	}
	return &File{Path: path, Header: hdr, Records: recs, Torn: torn}, nil
}

// Merge validates that the shard files belong to the same sweep (equal
// spec hash and grid size), cover every point exactly once (no
// overlaps, no gaps), and returns the results in point order — the
// exact sequence an unsharded run would have produced. Validation
// failures name the offending points and files.
func Merge(files []*File) ([]json.RawMessage, Header, error) {
	if len(files) == 0 {
		return nil, Header{}, fmt.Errorf("sweepjob: nothing to merge")
	}
	hdr := files[0].Header
	owner := make(map[int]string, hdr.Points)
	for _, f := range files {
		if f.Header.SpecHash != hdr.SpecHash || f.Header.Points != hdr.Points {
			return nil, Header{}, fmt.Errorf("sweepjob: %s (spec %s, %d points) and %s (spec %s, %d points) come from different sweeps",
				files[0].Path, hdr.SpecHash, hdr.Points, f.Path, f.Header.SpecHash, f.Header.Points)
		}
		for idx := range f.Records {
			if prev, dup := owner[idx]; dup {
				return nil, Header{}, fmt.Errorf("sweepjob: point %d appears in both %s and %s (overlapping shards)", idx, prev, f.Path)
			}
			owner[idx] = f.Path
		}
	}
	var missing []int
	for i := 0; i < hdr.Points; i++ {
		if _, ok := owner[i]; !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		show := missing
		if len(show) > 8 {
			show = show[:8]
		}
		return nil, Header{}, fmt.Errorf("sweepjob: %d of %d points missing (e.g. %v) — a shard file is absent or incomplete; resume it before merging",
			len(missing), hdr.Points, show)
	}
	out := make([]json.RawMessage, hdr.Points)
	for _, f := range files {
		for idx, res := range f.Records {
			out[idx] = res
		}
	}
	// The merged header describes the whole grid, not any one slice.
	hdr.Shard = ""
	return out, hdr, nil
}
