// Package sweepjob is the machinery beneath the public sharded,
// resumable sweep surface (virtuoso.Sweep.Shard / .Checkpoint,
// `virtuoso sweep run|serve|merge`): deterministic grid partitioning,
// JSONL per-point checkpoints with torn-tail recovery, and shard-file
// merge validation.
//
// The package is deliberately ignorant of simulation types: points are
// integer grid indices and results are raw JSON, so the checkpoint and
// merge logic is reusable for any deterministic, index-addressed grid.
// The root package layers Result/Report semantics on top.
package sweepjob

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard names one slice of a sweep grid: shard Index of Count. The
// assignment is a pure function of the point index (round-robin modulo
// Count), so it is stable across machines, worker counts, and runs —
// `--shard i/N` computes the same disjoint, exhaustive partition
// everywhere. The zero value means "the whole grid".
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ParseShard parses the "i/N" command-line form (e.g. "0/3"). The
// empty string parses to the zero Shard (whole grid).
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweepjob: shard %q is not of the form i/N", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return Shard{}, fmt.Errorf("sweepjob: bad shard index in %q: %w", s, err)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return Shard{}, fmt.Errorf("sweepjob: bad shard count in %q: %w", s, err)
	}
	sh := Shard{Index: idx, Count: cnt}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate rejects impossible shard coordinates. The zero value is
// valid (unsharded).
func (s Shard) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil
	}
	if s.Count <= 0 {
		return fmt.Errorf("sweepjob: shard count %d must be positive", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("sweepjob: shard index %d out of range [0, %d)", s.Index, s.Count)
	}
	return nil
}

// Enabled reports whether the shard selects a strict subset protocol
// (Count > 0). An enabled 0/1 shard selects the whole grid but still
// stamps checkpoint headers with its coordinates.
func (s Shard) Enabled() bool { return s.Count > 0 }

// String renders the "i/N" form ("" for the whole grid).
func (s Shard) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Assign reports whether point index pt belongs to this shard. Points
// are dealt round-robin, so any prefix of the grid splits near-evenly
// and the assignment never depends on grid size.
func (s Shard) Assign(pt int) bool {
	if !s.Enabled() {
		return true
	}
	return pt%s.Count == s.Index
}

// Select returns the indices of [0, total) assigned to this shard, in
// ascending order.
func (s Shard) Select(total int) []int {
	if !s.Enabled() {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, total/s.Count+1)
	for i := s.Index; i < total; i += s.Count {
		out = append(out, i)
	}
	return out
}
