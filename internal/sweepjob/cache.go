package sweepjob

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a content-addressed store of completed point results: one
// file per point key, in the checkpoint format (header + single record),
// so cached entries are self-describing and readable by the same tools
// as checkpoints. The key is a Hash over everything that determines the
// point's result — the fully resolved Config, the workload or mix, the
// workload params, and the spec version — so repeated, overlapping, and
// resumed sweeps share entries regardless of where the point sits in
// any particular grid.
//
// Writes are atomic (tmp file + rename), so a crash mid-Put leaves at
// worst a stale tmp file, never a torn entry. Reads treat any damaged,
// truncated, or mismatched file as a miss: the cache is an accelerator,
// not a source of truth, and a bad entry just means the point simulates
// again (and is rewritten).
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepjob: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the entry file for key. Keys are Hash outputs
// ("sj1-<hex>"), which are filename-safe by construction.
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, key+".jsonl")
}

// Get returns the cached raw Result for key, or ok=false on any miss —
// absent, torn, corrupt, or keyed differently (a hash-collision guard:
// the entry header echoes the key).
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	hdr, recs, _, torn, err := Load(c.Path(key))
	if err != nil || torn || hdr.SpecHash != key || len(recs) != 1 {
		return nil, false
	}
	raw, ok := recs[0]
	return raw, ok
}

// Put stores raw as the result for key, atomically replacing any
// existing entry.
func (c *Cache) Put(key string, raw json.RawMessage) error {
	hdr, err := json.Marshal(Header{
		Format: FormatName, Version: FormatVersion, SpecHash: key, Points: 1,
	})
	if err != nil {
		return err
	}
	rec, err := json.Marshal(Record{Index: 0, Result: raw})
	if err != nil {
		return err
	}
	data := make([]byte, 0, len(hdr)+len(rec)+2)
	data = append(data, hdr...)
	data = append(data, '\n')
	data = append(data, rec...)
	data = append(data, '\n')

	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("sweepjob: cache put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("sweepjob: cache put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweepjob: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweepjob: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.Path(key)); err != nil {
		return fmt.Errorf("sweepjob: cache put: %w", err)
	}
	return nil
}
