package sweepjob

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Checkpoint file layout (JSONL, documented in docs/sweep-service.md):
//
//	line 1:  Header  — format marker, spec hash, grid size, shard
//	line 2+: Record  — one completed point: {"index":i,"result":{...}}
//
// Records are append-only and self-delimiting (one JSON object per
// line), so a crash can damage at most the final line. Load recovers
// by dropping the torn tail; the writer then truncates the file to the
// last intact record and the interrupted point simply re-runs —
// deterministic simulation makes the re-run byte-identical.

// FormatName marks checkpoint files; a JSON file without it is
// rejected rather than misparsed.
const FormatName = "virtuoso-sweep-checkpoint"

// FormatVersion is bumped when the file layout changes incompatibly.
const FormatVersion = 1

// DefaultSyncEvery is the fsync batch size: the writer flushes and
// syncs after every N appended records (and on Close). Batching keeps
// checkpoint overhead off the per-point critical path; at most the
// last batch is lost on power failure.
const DefaultSyncEvery = 8

// Header is the checkpoint file's first line.
type Header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// SpecHash fingerprints the generating sweep (grid axes + params +
	// base config + spec version). Resuming or merging with a different
	// hash fails loudly instead of silently mixing grids.
	SpecHash string `json:"spec_hash"`
	// Points is the FULL grid size, not the shard's share: merge
	// validates exhaustiveness against it.
	Points int `json:"points"`
	// Shard is the "i/N" slice this file covers ("" = whole grid).
	Shard string `json:"shard,omitempty"`
}

// Record is one completed point.
type Record struct {
	Index int `json:"index"`
	// Result is the point's serialised virtuoso.Result, stored verbatim
	// so the checkpoint layer needs no knowledge of simulation types.
	Result json.RawMessage `json:"result"`
}

// mismatch formats the loud resume/merge error for a header field.
func (h Header) mismatch(path string, other Header) error {
	switch {
	case h.SpecHash != other.SpecHash:
		return fmt.Errorf("sweepjob: %s: spec hash %s does not match %s (the grid, params, or base config changed — delete the checkpoint or fix the spec)", path, other.SpecHash, h.SpecHash)
	case h.Points != other.Points:
		return fmt.Errorf("sweepjob: %s: grid size %d does not match %d", path, other.Points, h.Points)
	case h.Shard != other.Shard:
		return fmt.Errorf("sweepjob: %s: shard %q does not match %q", path, other.Shard, h.Shard)
	}
	return nil
}

// Load parses a checkpoint file, tolerating a torn tail: parsing stops
// at the first damaged line, everything before it is returned, and
// validLen reports the byte offset the file should be truncated to
// before appending. torn is true when anything was dropped. Duplicate
// indices keep the last record (runs are deterministic, so duplicates
// are byte-identical in practice).
func Load(path string) (hdr Header, recs map[int]json.RawMessage, validLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, 0, false, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return Header{}, nil, 0, false, fmt.Errorf("sweepjob: %s: missing checkpoint header", path)
	}
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return Header{}, nil, 0, false, fmt.Errorf("sweepjob: %s: bad checkpoint header: %w", path, err)
	}
	if hdr.Format != FormatName {
		return Header{}, nil, 0, false, fmt.Errorf("sweepjob: %s is not a sweep checkpoint (format %q)", path, hdr.Format)
	}
	if hdr.Version != FormatVersion {
		return Header{}, nil, 0, false, fmt.Errorf("sweepjob: %s: checkpoint version %d, this build reads %d", path, hdr.Version, FormatVersion)
	}
	if hdr.Points <= 0 {
		return Header{}, nil, 0, false, fmt.Errorf("sweepjob: %s: nonsensical grid size %d", path, hdr.Points)
	}

	recs = make(map[int]json.RawMessage)
	validLen = int64(nl + 1)
	rest := data[nl+1:]
	for len(rest) > 0 {
		line := rest
		n := bytes.IndexByte(rest, '\n')
		if n < 0 {
			// No terminator: the write was cut mid-line.
			torn = true
			break
		}
		line, rest = rest[:n], rest[n+1:]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Index < 0 || rec.Index >= hdr.Points || len(rec.Result) == 0 {
			// Damaged record: drop it and everything after (records are
			// append-only, so damage can only be a tail).
			torn = true
			break
		}
		recs[rec.Index] = rec.Result
		validLen += int64(n + 1)
	}
	return hdr, recs, validLen, torn, nil
}

// Writer appends completed-point records to a checkpoint file,
// fsync-batched.
type Writer struct {
	f         *os.File
	bw        *bufio.Writer
	syncEvery int
	pending   int
	hdr       Header
}

// OpenWriter opens path for checkpointing, creating it with hdr when
// absent. When the file exists its header must match hdr exactly
// (loud error otherwise); a torn tail is truncated away, and the
// records already present are returned so the caller can skip those
// points. syncEvery <= 0 means DefaultSyncEvery.
func OpenWriter(path string, hdr Header, syncEvery int) (*Writer, map[int]json.RawMessage, error) {
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}
	hdr.Format = FormatName
	hdr.Version = FormatVersion

	done := map[int]json.RawMessage{}
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		existing, recs, validLen, _, err := Load(path)
		if err != nil {
			return nil, nil, err
		}
		if err := hdr.mismatch(path, existing); err != nil {
			return nil, nil, err
		}
		if err := os.Truncate(path, validLen); err != nil {
			return nil, nil, fmt.Errorf("sweepjob: truncating torn checkpoint tail: %w", err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		return &Writer{f: f, bw: bufio.NewWriter(f), syncEvery: syncEvery, hdr: hdr}, recs, nil
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{f: f, bw: bufio.NewWriter(f), syncEvery: syncEvery, hdr: hdr}
	line, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := w.bw.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := w.sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, done, nil
}

// Header returns the header the writer was opened with.
func (w *Writer) Header() Header { return w.hdr }

// Append persists one completed point. Calls must be serialised by the
// caller (the sweep runner already serialises its progress path).
func (w *Writer) Append(index int, result json.RawMessage) error {
	line, err := json.Marshal(Record{Index: index, Result: result})
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(append(line, '\n')); err != nil {
		return err
	}
	w.pending++
	if w.pending >= w.syncEvery {
		return w.sync()
	}
	return nil
}

// Sync flushes buffered records to stable storage immediately.
func (w *Writer) Sync() error { return w.sync() }

func (w *Writer) sync() error {
	w.pending = 0
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes, syncs, and closes the file. The Writer is unusable
// afterwards.
func (w *Writer) Close() error {
	ferr := w.sync()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
