// Package ssd models a modern multi-queue NVMe SSD in the spirit of MQSim
// (Tavakkol et al., FAST'18), which the paper integrates to simulate the
// storage-device impact on virtual memory (swap traffic and page-cache
// misses; §5.2, Fig. 20).
//
// The model captures the performance characteristics that matter for VM
// research: flash-page read/program latencies, channel/chip parallelism,
// per-chip queueing, and a small controller-side read cache. Latencies are
// reported in CPU cycles so MimicOS can embed them directly in injected
// instruction streams as OpDelay instructions.
package ssd

import "repro/internal/mem"

// Config describes the device geometry and flash timing (in CPU cycles at
// 2.9 GHz; 1 µs ≈ 2900 cycles).
type Config struct {
	Channels      int
	ChipsPerCh    int
	PageBytes     uint64
	ReadLatency   uint64 // flash page read (tR + transfer)
	WriteLatency  uint64 // flash page program
	CtrlLatency   uint64 // host interface + FTL lookup
	CacheLines    int    // controller read-cache entries (flash pages)
	MaxQueueDelay uint64 // cap on modeled per-chip queueing
}

// DefaultConfig models a datacenter NVMe drive: 8 channels × 4 chips,
// 60 µs reads, 350 µs programs, 8 µs controller overhead.
func DefaultConfig() Config {
	return Config{
		Channels:      8,
		ChipsPerCh:    4,
		PageBytes:     16 * mem.KB,
		ReadLatency:   174_000,   // ~60 µs
		WriteLatency:  1_015_000, // ~350 µs
		CtrlLatency:   23_200,    // ~8 µs
		CacheLines:    1024,
		MaxQueueDelay: 8_700_000, // ~3 ms
	}
}

// Stats aggregates device activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	CacheHits   uint64
	QueueCycles uint64
	BusyCycles  uint64
}

type chip struct {
	busyUntil uint64
}

// Device is one simulated SSD.
type Device struct {
	cfg   Config
	chips []chip
	cache map[uint64]uint64 // flash page -> lru stamp
	tick  uint64
	stats Stats
}

// New builds a device; zero config fields take defaults.
func New(cfg Config) *Device {
	def := DefaultConfig()
	if cfg.Channels == 0 {
		cfg.Channels = def.Channels
	}
	if cfg.ChipsPerCh == 0 {
		cfg.ChipsPerCh = def.ChipsPerCh
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = def.PageBytes
	}
	if cfg.ReadLatency == 0 {
		cfg.ReadLatency = def.ReadLatency
	}
	if cfg.WriteLatency == 0 {
		cfg.WriteLatency = def.WriteLatency
	}
	if cfg.CtrlLatency == 0 {
		cfg.CtrlLatency = def.CtrlLatency
	}
	if cfg.CacheLines == 0 {
		cfg.CacheLines = def.CacheLines
	}
	if cfg.MaxQueueDelay == 0 {
		cfg.MaxQueueDelay = def.MaxQueueDelay
	}
	return &Device{
		cfg:   cfg,
		chips: make([]chip, cfg.Channels*cfg.ChipsPerCh),
		cache: make(map[uint64]uint64, cfg.CacheLines),
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns the accumulated device statistics.
func (d *Device) Stats() *Stats { return &d.stats }

func (d *Device) chipOf(page uint64) *chip {
	return &d.chips[page%uint64(len(d.chips))]
}

func (d *Device) cacheTouch(page uint64) {
	d.tick++
	if len(d.cache) >= d.cfg.CacheLines {
		if _, ok := d.cache[page]; !ok {
			// Evict the LRU entry.
			var victim uint64
			oldest := ^uint64(0)
			for p, t := range d.cache {
				if t < oldest {
					oldest = t
					victim = p
				}
			}
			delete(d.cache, victim)
		}
	}
	d.cache[page] = d.tick
}

// Read returns the latency (cycles) to read byteOff..byteOff+n-1 at time
// now, including FTL, queueing and flash time across the spanned pages.
func (d *Device) Read(byteOff, n uint64, now uint64) uint64 {
	return d.transfer(byteOff, n, now, false)
}

// Write returns the latency (cycles) to program the given range at now.
func (d *Device) Write(byteOff, n uint64, now uint64) uint64 {
	return d.transfer(byteOff, n, now, true)
}

func (d *Device) transfer(byteOff, n uint64, now uint64, write bool) uint64 {
	if n == 0 {
		n = 1
	}
	first := byteOff / d.cfg.PageBytes
	last := (byteOff + n - 1) / d.cfg.PageBytes
	lat := d.cfg.CtrlLatency
	// Pages on distinct chips proceed in parallel; the transfer completes
	// when the slowest page completes.
	var worst uint64
	for p := first; p <= last; p++ {
		var this uint64
		if !write {
			if _, ok := d.cache[p]; ok {
				d.stats.CacheHits++
				d.cacheTouch(p)
				continue
			}
		}
		c := d.chipOf(p)
		var queue uint64
		if c.busyUntil > now {
			queue = c.busyUntil - now
			if queue > d.cfg.MaxQueueDelay {
				queue = d.cfg.MaxQueueDelay
			}
			d.stats.QueueCycles += queue
		}
		svc := d.cfg.ReadLatency
		if write {
			svc = d.cfg.WriteLatency
			d.stats.Writes++
		} else {
			d.stats.Reads++
			d.cacheTouch(p)
		}
		c.busyUntil = now + queue + svc
		d.stats.BusyCycles += svc
		this = queue + svc
		if this > worst {
			worst = this
		}
	}
	return lat + worst
}
