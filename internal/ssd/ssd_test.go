package ssd

import "testing"

func TestReadWriteLatencies(t *testing.T) {
	d := New(Config{})
	r := d.Read(0, 4096, 0)
	w := d.Write(1<<30, 4096, 0)
	if r < d.Config().CtrlLatency {
		t.Fatalf("read latency %d below controller overhead", r)
	}
	if w <= r {
		t.Fatalf("program (%d) should be slower than read (%d)", w, r)
	}
	if d.Stats().Reads != 1 || d.Stats().Writes != 1 {
		t.Fatalf("stats: %+v", d.Stats())
	}
}

func TestControllerCacheHit(t *testing.T) {
	d := New(Config{})
	cold := d.Read(0, 4096, 0)
	warm := d.Read(0, 4096, cold)
	if warm >= cold {
		t.Fatalf("cached read (%d) not faster than cold (%d)", warm, cold)
	}
	if d.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d", d.Stats().CacheHits)
	}
}

func TestChipQueueing(t *testing.T) {
	d := New(Config{Channels: 1, ChipsPerCh: 1})
	a := d.Read(0, 4096, 0)
	// Second read to the same (only) chip at time 0 queues. Use a
	// different page to avoid the controller cache.
	b := d.Read(1<<20, 4096, 0)
	if b <= a {
		t.Fatalf("queued read (%d) should exceed unqueued (%d)", b, a)
	}
	if d.Stats().QueueCycles == 0 {
		t.Fatal("no queueing recorded")
	}
}

func TestMultiPageTransferParallelism(t *testing.T) {
	d := New(Config{})
	one := d.Read(0, 4096, 0)
	// 8 flash pages across 8 chips: roughly one page-read of latency.
	eight := d.Read(1<<30, 8*d.Config().PageBytes, 0)
	if eight > one*4 {
		t.Fatalf("parallel multi-page read too slow: %d vs %d", eight, one)
	}
}
