package tier

// Policy decides page migration: how heat evolves on touches and scan
// decays, which pages a tier eviction may take, and how deep a DRAM
// demotion lands. Methods are pure value transforms — the policy holds
// no per-page state — which keeps custom policies trivially
// deterministic and makes the public extension adapter (repro/ext) a
// direct passthrough.
//
// Heat is MimicOS's imitation of access-bit tracking: the kernel
// cannot observe individual loads (they retire inside the core model),
// so Touch fires on the events the kernel does see — the fault that
// maps a page and the fault that promotes it — and Decay fires during
// the periodic resident-set scans driven by the fault clock. Heat is
// therefore a recency-of-fault estimate, the same signal Linux's
// hot-page promotion derives from NUMA hint faults.
type Policy interface {
	// Name is the display name reported in metrics.
	Name() string
	// Touch returns the new heat after the page is touched (mapped or
	// promoted by a fault).
	Touch(heat uint32) uint32
	// Decay returns the new heat after one access-bit scan pass found
	// the page idle.
	Decay(heat uint32) uint32
	// Victim reports whether a page of the given heat may be evicted on
	// this scan pass (pass 0 is selective; pass 1 is the desperate pass
	// and should almost always return true).
	Victim(heat uint32, pass int) bool
	// DemoteTo returns the slow-tier index (0 = fastest) a DRAM page of
	// the given heat demotes into, given slowTiers configured tiers.
	DemoteTo(slowTiers int, heat uint32) int
}

// Built-in migration policy names.
const (
	PolicyHotCold = "hotcold"
	PolicyClock   = "clock"
)

// NewBuiltin constructs a built-in policy by name ("" selects the
// default, hotcold).
func NewBuiltin(name string) (Policy, bool) {
	switch name {
	case PolicyHotCold, "":
		return NewHotCold(), true
	case PolicyClock:
		return NewClock(), true
	}
	return nil, false
}

// BuiltinNames returns the built-in policy names, sorted.
func BuiltinNames() []string { return []string{PolicyClock, PolicyHotCold} }

// HotCold is the default migration policy: a saturating heat counter
// with multi-bit hysteresis. Touches add TouchStep (capped at MaxHeat),
// scans halve; pages at or below ColdAt are cold — eligible victims on
// the selective pass, and demoted straight to the deepest tier, while
// warmer pages demote only one level down (to the fastest slow tier).
type HotCold struct {
	TouchStep uint32
	MaxHeat   uint32
	ColdAt    uint32
}

// NewHotCold returns the default-calibrated hot/cold policy: heat 8 per
// touch, cap 64, cold at ≤2 (three idle scans after a single touch).
func NewHotCold() *HotCold { return &HotCold{TouchStep: 8, MaxHeat: 64, ColdAt: 2} }

// Name implements Policy.
func (h *HotCold) Name() string { return PolicyHotCold }

// Touch implements Policy.
func (h *HotCold) Touch(heat uint32) uint32 {
	if heat >= h.MaxHeat-h.TouchStep {
		return h.MaxHeat
	}
	return heat + h.TouchStep
}

// Decay implements Policy.
func (h *HotCold) Decay(heat uint32) uint32 { return heat / 2 }

// Victim implements Policy.
func (h *HotCold) Victim(heat uint32, pass int) bool {
	if pass > 0 {
		return true
	}
	return heat <= h.ColdAt
}

// DemoteTo implements Policy.
func (h *HotCold) DemoteTo(slowTiers int, heat uint32) int {
	if heat <= h.ColdAt {
		return slowTiers - 1 // cold: skip to the deepest tier
	}
	return 0 // warm: nearest tier, cheap to promote back
}

// Clock is the minimal one-bit policy (CLOCK / second chance): a touch
// sets the referenced bit, a scan clears it, unreferenced pages are
// victims, and demotion always lands in the nearest tier.
type Clock struct{}

// NewClock returns the CLOCK policy.
func NewClock() *Clock { return &Clock{} }

// Name implements Policy.
func (c *Clock) Name() string { return PolicyClock }

// Touch implements Policy.
func (c *Clock) Touch(uint32) uint32 { return 1 }

// Decay implements Policy.
func (c *Clock) Decay(uint32) uint32 { return 0 }

// Victim implements Policy.
func (c *Clock) Victim(heat uint32, pass int) bool { return pass > 0 || heat == 0 }

// DemoteTo implements Policy.
func (c *Clock) DemoteTo(int, uint32) int { return 0 }
