// Package tier models an N-tier physical memory hierarchy between DRAM
// and the swap device: one or more slow tiers (NVM, CXL-attached
// memory, remote pools) with per-tier capacity, read/write latency, and
// bandwidth, plus per-page residency tracking and pluggable migration
// policies. The modeling approach follows the hybrid-memory emulation
// literature (latency/bandwidth-calibrated tiers, hot/cold-driven
// migration): MimicOS demotes cold DRAM pages into slow tiers under
// pressure, cascades evictions down the hierarchy toward swap, and
// promotes slow-tier pages back to DRAM on the fault that touches them
// — the NUMA-hint-fault promotion path of Linux's tiered-memory
// support, imitated on the fault clock.
//
// Pages tracked here are unmapped: a slow-tier page has no PTE, so the
// next access faults and MimicOS consults the Manager before falling
// into the anonymous/file paths. The package is purely functional
// bookkeeping — all simulated time (migration latency, bandwidth,
// kernel work) is charged by the mimicos caller through its tracer.
package tier

import (
	"fmt"

	"repro/internal/mem"
)

// Spec describes one slow memory tier. Tiers are ordered fastest to
// slowest; DRAM (tier 0 of the machine) and the swap device (the
// implicit terminal tier) are not listed — specs cover only the levels
// in between.
type Spec struct {
	// Name identifies the tier in metrics and CLI flags ("cxl", "nvm",
	// ...). "dram" and "swap" are reserved for the implicit end tiers.
	Name string `json:"name"`
	// Bytes is the tier capacity.
	Bytes uint64 `json:"bytes"`
	// ReadLat / WriteLat are the device access latencies in CPU cycles
	// charged per page migration out of / into the tier.
	ReadLat  uint64 `json:"read_lat"`
	WriteLat uint64 `json:"write_lat"`
	// BytesPerCycle models transfer bandwidth: migrating a page adds
	// bytes/BytesPerCycle cycles on top of the access latency. Zero
	// disables the bandwidth term (latency-only model).
	BytesPerCycle uint64 `json:"bytes_per_cycle,omitempty"`
}

// ReadCost returns the cycles to read n bytes out of the tier.
func (s Spec) ReadCost(n uint64) uint64 {
	c := s.ReadLat
	if s.BytesPerCycle > 0 {
		c += n / s.BytesPerCycle
	}
	return c
}

// WriteCost returns the cycles to write n bytes into the tier.
func (s Spec) WriteCost(n uint64) uint64 {
	c := s.WriteLat
	if s.BytesPerCycle > 0 {
		c += n / s.BytesPerCycle
	}
	return c
}

// ValidateSpecs rejects tier configurations that would otherwise fail
// mid-run: zero capacities, zero latencies, duplicate or reserved
// names. It is called at Open/ParseSweepSpec time so a bad -tiers flag
// or sweep spec errors loudly up front.
func ValidateSpecs(specs []Spec) error {
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return fmt.Errorf("tier %d: empty name", i)
		}
		if s.Name == "dram" {
			return fmt.Errorf("tier %d: name %q is reserved (DRAM is the implicit fastest tier)", i, s.Name)
		}
		if s.Name == "swap" {
			return fmt.Errorf("tier %d: name %q is reserved (swap is the implicit terminal tier and always comes last)", i, s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("tier %d: duplicate name %q", i, s.Name)
		}
		seen[s.Name] = true
		if s.Bytes == 0 {
			return fmt.Errorf("tier %q: zero capacity", s.Name)
		}
		if s.Bytes < mem.Page4K.Bytes() {
			return fmt.Errorf("tier %q: capacity %d smaller than one 4KB page", s.Name, s.Bytes)
		}
		if s.ReadLat == 0 {
			return fmt.Errorf("tier %q: zero read latency", s.Name)
		}
		if s.WriteLat == 0 {
			return fmt.Errorf("tier %q: zero write latency", s.Name)
		}
	}
	return nil
}

// Stats aggregates one tier's activity over a run.
type Stats struct {
	Name string `json:"name"`
	// UsedBytes is the tier occupancy when the snapshot was taken.
	UsedBytes uint64 `json:"used_bytes"`
	// PagesIn counts pages migrated into the tier (demotions from DRAM
	// or evictions cascading down from a faster tier); PagesOut counts
	// pages leaving it (promotions to DRAM, evictions downward).
	PagesIn  uint64 `json:"pages_in"`
	PagesOut uint64 `json:"pages_out"`
	// Promotions is the subset of PagesOut promoted straight to DRAM.
	Promotions uint64 `json:"promotions"`
	// ReadCycles / WriteCycles are the device cycles charged for
	// migrations out of / into the tier.
	ReadCycles  uint64 `json:"read_cycles"`
	WriteCycles uint64 `json:"write_cycles"`
}

// Page is one tier-resident page record. Tier pages are unmapped (no
// PTE): VA is the page base the record is keyed by, and Heat carries
// the hot/cold estimate across demotions so a page's history follows
// it down the hierarchy.
type Page struct {
	PID  int
	VA   mem.VAddr
	Size mem.PageSize
	Heat uint32
}

type pageKey struct {
	pid int
	va  mem.VAddr
}

type pageLoc struct {
	tier int
	slot int
}

// tierState is one tier's residency list: a slot slice clock-scanned
// for victims (dead slots are reused LIFO, mirroring the swap-slot free
// list) plus occupancy and counters. The only map is the Manager-wide
// index, used strictly for O(1) point lookups — never iterated — so
// every result-affecting traversal is a deterministic slice scan.
type tierState struct {
	pages []Page
	live  []bool
	free  []int
	hand  int
	used  uint64
	stats Stats
}

// Manager tracks page residency across the configured slow tiers.
type Manager struct {
	specs []Spec
	pol   Policy
	tiers []tierState
	idx   map[pageKey]pageLoc
}

// NewManager builds a manager over specs (assumed validated). pol may
// be nil when the policy comes from the extension registry; the engine
// installs it via SetPolicy before the first fault.
func NewManager(specs []Spec, pol Policy) *Manager {
	m := &Manager{
		specs: specs,
		pol:   pol,
		tiers: make([]tierState, len(specs)),
		idx:   make(map[pageKey]pageLoc),
	}
	for i := range m.tiers {
		m.tiers[i].stats.Name = specs[i].Name
	}
	return m
}

// Enabled reports whether any slow tier is configured.
func (m *Manager) Enabled() bool { return m != nil && len(m.specs) > 0 }

// SlowTiers returns the number of configured slow tiers.
func (m *Manager) SlowTiers() int { return len(m.specs) }

// Spec returns tier t's configuration.
func (m *Manager) Spec(t int) Spec { return m.specs[t] }

// Policy returns the installed migration policy.
func (m *Manager) Policy() Policy { return m.pol }

// SetPolicy installs the migration policy (engine hook for
// registry-registered policies). Must precede the first fault.
func (m *Manager) SetPolicy(p Policy) { m.pol = p }

// HasRoom reports whether tier t can take n more bytes.
func (m *Manager) HasRoom(t int, n uint64) bool {
	return m.tiers[t].used+n <= m.specs[t].Bytes
}

// Insert records a page migrated into tier t. The caller has checked
// capacity (HasRoom / eviction cascade).
func (m *Manager) Insert(t int, pg Page) {
	ts := &m.tiers[t]
	var slot int
	if n := len(ts.free); n > 0 {
		slot = ts.free[n-1]
		ts.free = ts.free[:n-1]
		ts.pages[slot] = pg
		ts.live[slot] = true
	} else {
		slot = len(ts.pages)
		ts.pages = append(ts.pages, pg)
		ts.live = append(ts.live, true)
	}
	ts.used += pg.Size.Bytes()
	ts.stats.PagesIn++
	m.idx[pageKey{pg.PID, pg.VA}] = pageLoc{tier: t, slot: slot}
}

// Lookup finds the tier record covering va (tier pages are 4K today,
// but 2M bases are probed too so a future huge-page demotion path keeps
// working). It returns the record, its tier, and whether it exists.
func (m *Manager) Lookup(pid int, va mem.VAddr) (Page, int, bool) {
	if loc, ok := m.idx[pageKey{pid, mem.Page4K.PageBase(va)}]; ok {
		return m.tiers[loc.tier].pages[loc.slot], loc.tier, true
	}
	if loc, ok := m.idx[pageKey{pid, mem.Page2M.PageBase(va)}]; ok {
		pg := m.tiers[loc.tier].pages[loc.slot]
		if pg.Size == mem.Page2M {
			return pg, loc.tier, true
		}
	}
	return Page{}, 0, false
}

// Contains reports whether a tier record covers va.
func (m *Manager) Contains(pid int, va mem.VAddr) bool {
	_, _, ok := m.Lookup(pid, va)
	return ok
}

// remove deletes the exact record (pid, base) and returns it.
func (m *Manager) remove(pid int, base mem.VAddr) (Page, int, bool) {
	key := pageKey{pid, base}
	loc, ok := m.idx[key]
	if !ok {
		return Page{}, 0, false
	}
	ts := &m.tiers[loc.tier]
	pg := ts.pages[loc.slot]
	ts.live[loc.slot] = false
	ts.free = append(ts.free, loc.slot)
	ts.used -= pg.Size.Bytes()
	delete(m.idx, key)
	return pg, loc.tier, true
}

// Promote removes the record at its exact base for promotion to DRAM,
// counting it against the source tier.
func (m *Manager) Promote(pid int, base mem.VAddr) (Page, bool) {
	pg, t, ok := m.remove(pid, base)
	if !ok {
		return Page{}, false
	}
	m.tiers[t].stats.PagesOut++
	m.tiers[t].stats.Promotions++
	return pg, true
}

// Evict removes the record at its exact base for migration to a deeper
// tier or swap, counting it out of the source tier.
func (m *Manager) Evict(pid int, base mem.VAddr) (Page, bool) {
	pg, t, ok := m.remove(pid, base)
	if !ok {
		return Page{}, false
	}
	m.tiers[t].stats.PagesOut++
	return pg, true
}

// PickVictim clock-scans tier t for an eviction victim: a first pass
// takes the first page the policy calls evictable (decaying the heat of
// pages it spares, CLOCK's second chance), and a desperate second pass
// takes the first live page. The record is not removed — callers Evict
// it once the migration succeeded.
func (m *Manager) PickVictim(t int) (Page, bool) {
	ts := &m.tiers[t]
	n := len(ts.pages)
	if n == 0 {
		return Page{}, false
	}
	for pass := 0; pass < 2; pass++ {
		for scanned := 0; scanned < n; scanned++ {
			if ts.hand >= n {
				ts.hand = 0
			}
			slot := ts.hand
			ts.hand++
			if !ts.live[slot] {
				continue
			}
			pg := &ts.pages[slot]
			if pass == 0 && !m.pol.Victim(pg.Heat, 0) {
				pg.Heat = m.pol.Decay(pg.Heat)
				continue
			}
			return *pg, true
		}
	}
	return Page{}, false
}

// Drop deletes the record covering va without migration accounting
// (munmap / exit teardown). It reports whether a record existed.
func (m *Manager) Drop(pid int, va mem.VAddr) bool {
	pg, _, ok := m.Lookup(pid, va)
	if !ok {
		return false
	}
	_, _, ok = m.remove(pid, pg.VA)
	return ok
}

// RemoveRange drops every record of pid inside [start, end) — the
// munmap teardown path. The scan walks the tier slices (bounded by tier
// capacity), not the index map, so removal order is deterministic.
func (m *Manager) RemoveRange(pid int, start, end mem.VAddr) int {
	removed := 0
	for t := range m.tiers {
		ts := &m.tiers[t]
		for slot := range ts.pages {
			if !ts.live[slot] {
				continue
			}
			pg := ts.pages[slot]
			if pg.PID != pid || pg.VA < start || pg.VA >= end {
				continue
			}
			m.remove(pid, pg.VA)
			removed++
		}
	}
	return removed
}

// RemovePID drops every record of an exiting process.
func (m *Manager) RemovePID(pid int) int {
	removed := 0
	for t := range m.tiers {
		ts := &m.tiers[t]
		for slot := range ts.pages {
			if !ts.live[slot] {
				continue
			}
			pg := ts.pages[slot]
			if pg.PID != pid {
				continue
			}
			m.remove(pid, pg.VA)
			removed++
		}
	}
	return removed
}

// PageCount returns the number of live records across all tiers.
func (m *Manager) PageCount() int { return len(m.idx) }

// UsedBytes returns tier t's occupancy.
func (m *Manager) UsedBytes(t int) uint64 { return m.tiers[t].used }

// AddReadCycles charges migration read time to tier t's counters.
func (m *Manager) AddReadCycles(t int, c uint64) { m.tiers[t].stats.ReadCycles += c }

// AddWriteCycles charges migration write time to tier t's counters.
func (m *Manager) AddWriteCycles(t int, c uint64) { m.tiers[t].stats.WriteCycles += c }

// Stats returns a per-tier counter snapshot, occupancy included.
func (m *Manager) Stats() []Stats {
	out := make([]Stats, len(m.tiers))
	for i := range m.tiers {
		s := m.tiers[i].stats
		s.UsedBytes = m.tiers[i].used
		out[i] = s
	}
	return out
}

// ResetStats zeroes the per-tier counters (occupancy and residency are
// functional state and persist) — the kernel's steady-state-window hook.
func (m *Manager) ResetStats() {
	for i := range m.tiers {
		name := m.tiers[i].stats.Name
		m.tiers[i].stats = Stats{Name: name}
	}
}
