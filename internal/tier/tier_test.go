package tier

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestValidateSpecs(t *testing.T) {
	good := []Spec{
		{Name: "cxl", Bytes: 64 * mem.MB, ReadLat: 600, WriteLat: 900},
		{Name: "nvm", Bytes: 128 * mem.MB, ReadLat: 1200, WriteLat: 3000, BytesPerCycle: 8},
	}
	if err := ValidateSpecs(good); err != nil {
		t.Fatalf("valid specs rejected: %v", err)
	}
	if err := ValidateSpecs(nil); err != nil {
		t.Fatalf("empty specs rejected: %v", err)
	}
	cases := []struct {
		name  string
		specs []Spec
		want  string
	}{
		{"empty name", []Spec{{Bytes: mem.MB, ReadLat: 1, WriteLat: 1}}, "empty name"},
		{"zero capacity", []Spec{{Name: "cxl", ReadLat: 1, WriteLat: 1}}, "zero capacity"},
		{"sub-page capacity", []Spec{{Name: "cxl", Bytes: 100, ReadLat: 1, WriteLat: 1}}, "smaller than one 4KB page"},
		{"zero read latency", []Spec{{Name: "cxl", Bytes: mem.MB, WriteLat: 1}}, "zero read latency"},
		{"zero write latency", []Spec{{Name: "cxl", Bytes: mem.MB, ReadLat: 1}}, "zero write latency"},
		{"duplicate name", []Spec{
			{Name: "cxl", Bytes: mem.MB, ReadLat: 1, WriteLat: 1},
			{Name: "cxl", Bytes: mem.MB, ReadLat: 1, WriteLat: 1},
		}, "duplicate name"},
		{"reserved dram", []Spec{{Name: "dram", Bytes: mem.MB, ReadLat: 1, WriteLat: 1}}, "reserved"},
		{"swap not last", []Spec{
			{Name: "swap", Bytes: mem.MB, ReadLat: 1, WriteLat: 1},
			{Name: "cxl", Bytes: mem.MB, ReadLat: 1, WriteLat: 1},
		}, "always comes last"},
		{"swap anywhere", []Spec{{Name: "swap", Bytes: mem.MB, ReadLat: 1, WriteLat: 1}}, "reserved"},
	}
	for _, tc := range cases {
		err := ValidateSpecs(tc.specs)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecCosts(t *testing.T) {
	s := Spec{Name: "cxl", Bytes: mem.MB, ReadLat: 600, WriteLat: 900, BytesPerCycle: 8}
	if got := s.ReadCost(4096); got != 600+512 {
		t.Errorf("ReadCost = %d, want %d", got, 600+512)
	}
	if got := s.WriteCost(4096); got != 900+512 {
		t.Errorf("WriteCost = %d, want %d", got, 900+512)
	}
	// Zero bandwidth disables the transfer term.
	s.BytesPerCycle = 0
	if got := s.ReadCost(4096); got != 600 {
		t.Errorf("latency-only ReadCost = %d, want 600", got)
	}
}

func TestHotColdPolicy(t *testing.T) {
	p := NewHotCold()
	h := p.Touch(0)
	if h != p.TouchStep {
		t.Fatalf("Touch(0) = %d, want %d", h, p.TouchStep)
	}
	// Saturates at MaxHeat.
	for i := 0; i < 100; i++ {
		h = p.Touch(h)
	}
	if h != p.MaxHeat {
		t.Errorf("saturated heat = %d, want %d", h, p.MaxHeat)
	}
	// A touched page is not a pass-0 victim; after enough decays it is.
	h = p.Touch(0)
	if p.Victim(h, 0) {
		t.Errorf("freshly touched page (heat %d) is a pass-0 victim", h)
	}
	for i := 0; i < 3; i++ {
		h = p.Decay(h)
	}
	if !p.Victim(h, 0) {
		t.Errorf("thrice-decayed page (heat %d) is not a pass-0 victim", h)
	}
	if !p.Victim(p.MaxHeat, 1) {
		t.Error("pass 1 must take any page")
	}
	// Cold pages demote deep, warm pages near.
	if got := p.DemoteTo(3, 0); got != 2 {
		t.Errorf("cold DemoteTo = %d, want 2", got)
	}
	if got := p.DemoteTo(3, p.MaxHeat); got != 0 {
		t.Errorf("warm DemoteTo = %d, want 0", got)
	}
}

func TestClockPolicy(t *testing.T) {
	p := NewClock()
	if p.Touch(0) != 1 || p.Decay(1) != 0 {
		t.Fatal("clock touch/decay must be one referenced bit")
	}
	if p.Victim(1, 0) {
		t.Error("referenced page is a pass-0 victim")
	}
	if !p.Victim(0, 0) || !p.Victim(1, 1) {
		t.Error("unreferenced page / pass-1 page must be victims")
	}
	if p.DemoteTo(3, 0) != 0 {
		t.Error("clock always demotes to the nearest tier")
	}
}

func TestNewBuiltin(t *testing.T) {
	for _, name := range append(BuiltinNames(), "") {
		if _, ok := NewBuiltin(name); !ok {
			t.Errorf("NewBuiltin(%q) unknown", name)
		}
	}
	if _, ok := NewBuiltin("bogus"); ok {
		t.Error("NewBuiltin accepted an unknown name")
	}
}

func TestManagerResidency(t *testing.T) {
	specs := []Spec{
		{Name: "cxl", Bytes: 2 * 4096, ReadLat: 600, WriteLat: 900},
		{Name: "nvm", Bytes: 4 * 4096, ReadLat: 1200, WriteLat: 3000},
	}
	m := NewManager(specs, NewHotCold())
	if !m.Enabled() || m.SlowTiers() != 2 {
		t.Fatal("manager not enabled over 2 specs")
	}
	pg := func(va uint64) Page {
		return Page{PID: 1, VA: mem.VAddr(va), Size: mem.Page4K}
	}
	m.Insert(0, pg(0x1000))
	m.Insert(0, pg(0x2000))
	if m.HasRoom(0, 4096) {
		t.Error("full tier reports room")
	}
	if !m.HasRoom(1, 4096) {
		t.Error("empty tier reports no room")
	}
	// Lookup covers interior addresses of the page.
	if _, tt, ok := m.Lookup(1, 0x1888); !ok || tt != 0 {
		t.Fatalf("Lookup(0x1888) = tier %d ok %v, want tier 0 true", tt, ok)
	}
	if m.Contains(2, 0x1000) {
		t.Error("record leaked across PIDs")
	}
	// Promote removes and counts.
	got, ok := m.Promote(1, 0x1000)
	if !ok || got.VA != 0x1000 {
		t.Fatalf("Promote = %+v ok %v", got, ok)
	}
	if m.Contains(1, 0x1000) {
		t.Error("promoted page still resident")
	}
	st := m.Stats()
	if st[0].PagesIn != 2 || st[0].PagesOut != 1 || st[0].Promotions != 1 {
		t.Errorf("tier 0 stats = %+v", st[0])
	}
	if st[0].UsedBytes != 4096 {
		t.Errorf("tier 0 used = %d, want 4096", st[0].UsedBytes)
	}
	// Freed slot is reused; occupancy stays exact.
	m.Insert(0, pg(0x9000))
	if got := m.UsedBytes(0); got != 2*4096 {
		t.Errorf("used after reuse = %d", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
}

func TestManagerVictimScan(t *testing.T) {
	specs := []Spec{{Name: "cxl", Bytes: 16 * 4096, ReadLat: 600, WriteLat: 900}}
	m := NewManager(specs, NewHotCold())
	hot := Page{PID: 1, VA: 0x1000, Size: mem.Page4K, Heat: 64}
	cold := Page{PID: 1, VA: 0x2000, Size: mem.Page4K, Heat: 0}
	m.Insert(0, hot)
	m.Insert(0, cold)
	v, ok := m.PickVictim(0)
	if !ok || v.VA != cold.VA {
		t.Fatalf("PickVictim = %+v ok %v, want the cold page", v, ok)
	}
	// Spared hot page had its heat decayed (second chance).
	if got, _, _ := m.Lookup(1, 0x1000); got.Heat != 32 {
		t.Errorf("spared page heat = %d, want 32", got.Heat)
	}
	// With only hot pages the desperate pass still yields a victim.
	m2 := NewManager(specs, NewHotCold())
	m2.Insert(0, hot)
	if _, ok := m2.PickVictim(0); !ok {
		t.Error("no victim from an all-hot tier")
	}
	// Empty tier yields none.
	m3 := NewManager(specs, NewHotCold())
	if _, ok := m3.PickVictim(0); ok {
		t.Error("victim from an empty tier")
	}
}

func TestManagerTeardown(t *testing.T) {
	specs := []Spec{
		{Name: "cxl", Bytes: 64 * 4096, ReadLat: 600, WriteLat: 900},
		{Name: "nvm", Bytes: 64 * 4096, ReadLat: 1200, WriteLat: 3000},
	}
	m := NewManager(specs, NewClock())
	for i := uint64(0); i < 8; i++ {
		m.Insert(int(i%2), Page{PID: 1, VA: mem.VAddr(0x10000 + i*4096), Size: mem.Page4K})
		m.Insert(int(i%2), Page{PID: 2, VA: mem.VAddr(0x10000 + i*4096), Size: mem.Page4K})
	}
	if n := m.RemoveRange(1, 0x10000, 0x10000+4*4096); n != 4 {
		t.Errorf("RemoveRange removed %d, want 4", n)
	}
	if m.Contains(1, 0x10000) || !m.Contains(1, 0x10000+4*4096) || !m.Contains(2, 0x10000) {
		t.Error("RemoveRange removed the wrong records")
	}
	if n := m.RemovePID(2); n != 8 {
		t.Errorf("RemovePID removed %d, want 8", n)
	}
	if m.PageCount() != 4 {
		t.Errorf("PageCount = %d, want 4", m.PageCount())
	}
	if m.UsedBytes(0)+m.UsedBytes(1) != 4*4096 {
		t.Error("occupancy out of sync after teardown")
	}
}
