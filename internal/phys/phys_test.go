package phys

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestNewAccounting(t *testing.T) {
	m := New(64 * mem.MB)
	if got := m.TotalPages(); got != 16384 {
		t.Fatalf("total pages = %d, want 16384", got)
	}
	if m.FreePages() != m.TotalPages() {
		t.Fatalf("fresh memory should be all free")
	}
	if m.Free2MBlocks() != 32 {
		t.Fatalf("free 2MB blocks = %d, want 32", m.Free2MBlocks())
	}
	if m.FragmentationLevel() != 1.0 {
		t.Fatalf("fresh fragmentation level = %f, want 1", m.FragmentationLevel())
	}
}

func TestAlloc4KUnique(t *testing.T) {
	m := New(8 * mem.MB)
	seen := map[mem.PAddr]bool{}
	for i := 0; i < 2048; i++ {
		pa, ok := m.Alloc4K()
		if !ok {
			t.Fatalf("alloc %d failed with free=%d", i, m.FreePages())
		}
		if pa%4096 != 0 {
			t.Fatalf("unaligned 4K frame %x", pa)
		}
		if seen[pa] {
			t.Fatalf("duplicate frame %x", pa)
		}
		seen[pa] = true
	}
	if m.FreePages() != 0 {
		t.Fatalf("free pages = %d, want 0", m.FreePages())
	}
	if _, ok := m.Alloc4K(); ok {
		t.Fatal("allocation from empty memory succeeded")
	}
}

func TestAlloc2MAlignment(t *testing.T) {
	m := New(16 * mem.MB)
	for i := 0; i < 8; i++ {
		pa, ok := m.Alloc2M()
		if !ok {
			t.Fatalf("2M alloc %d failed", i)
		}
		if uint64(pa)%(2*mem.MB) != 0 {
			t.Fatalf("unaligned 2M frame %x", pa)
		}
	}
	if _, ok := m.Alloc2M(); ok {
		t.Fatal("2M allocation beyond capacity succeeded")
	}
}

func TestFreeCoalesces(t *testing.T) {
	m := New(8 * mem.MB)
	a, _ := m.Alloc2M()
	b, _ := m.Alloc2M()
	c, _ := m.Alloc2M()
	m.Free(a, 512)
	m.Free(c, 512)
	m.Free(b, 512) // coalesce with both neighbours
	if m.FreePages() != m.TotalPages() {
		t.Fatalf("free pages = %d, want %d", m.FreePages(), m.TotalPages())
	}
	if m.Free2MBlocks() != m.Total2MBlocks() {
		t.Fatalf("free 2M = %d, want %d", m.Free2MBlocks(), m.Total2MBlocks())
	}
	// The whole range must be allocatable as one contiguous chunk again.
	if _, ok := m.AllocContig(m.TotalPages(), 1); !ok {
		t.Fatal("memory did not coalesce back to a single extent")
	}
}

func TestAlloc4KPrefersBrokenBlocks(t *testing.T) {
	m := New(16 * mem.MB)
	before := m.Free2MBlocks()
	// First 4K allocation necessarily breaks a block...
	if _, ok := m.Alloc4K(); !ok {
		t.Fatal("alloc failed")
	}
	if m.Free2MBlocks() != before-1 {
		t.Fatalf("first 4K should break exactly one 2M block")
	}
	// ...but the next 511 must not break another.
	for i := 0; i < 511; i++ {
		if _, ok := m.Alloc4K(); !ok {
			t.Fatal("alloc failed")
		}
	}
	if m.Free2MBlocks() != before-1 {
		t.Fatalf("subsequent 4K allocations broke extra blocks: %d -> %d", before-1, m.Free2MBlocks())
	}
}

func TestFragmentReachesTarget(t *testing.T) {
	for _, target := range []float64{0.0, 0.1, 0.5, 0.9} {
		m := New(128 * mem.MB)
		m.Fragment(target, 42)
		got := m.FragmentationLevel()
		if got > target+0.03 {
			t.Errorf("Fragment(%.2f): level %.3f above target", target, got)
		}
	}
}

func TestFragmentDeterministic(t *testing.T) {
	m1 := New(64 * mem.MB)
	m2 := New(64 * mem.MB)
	m1.Fragment(0.5, 7)
	m2.Fragment(0.5, 7)
	if m1.FreePages() != m2.FreePages() || m1.Free2MBlocks() != m2.Free2MBlocks() {
		t.Fatal("Fragment is not deterministic in seed")
	}
}

func TestAllocContigAlignment(t *testing.T) {
	m := New(32 * mem.MB)
	pa, ok := m.AllocContig(1024, 512)
	if !ok {
		t.Fatal("contig alloc failed")
	}
	if uint64(pa)%(512*4096) != 0 {
		t.Fatalf("contig alloc not aligned: %x", pa)
	}
}

func TestAllocLargestRange(t *testing.T) {
	m := New(32 * mem.MB)
	m.Fragment(0.5, 3)
	base, got, ok := m.AllocLargestRange(1, 1<<20)
	if !ok || got == 0 {
		t.Fatal("largest-range alloc failed")
	}
	if got > m.TotalPages() {
		t.Fatalf("range larger than memory: %d", got)
	}
	m.Free(base, got)
}

// TestQuickAllocFreeInvariant property-tests that any interleaving of
// allocations and frees conserves pages and never double-allocates.
func TestQuickAllocFreeInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(16 * mem.MB)
		type alloc struct {
			pa    mem.PAddr
			pages uint64
		}
		var live []alloc
		owned := map[mem.PAddr]bool{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if pa, ok := m.Alloc4K(); ok {
					if owned[pa] {
						return false
					}
					owned[pa] = true
					live = append(live, alloc{pa, 1})
				}
			case 1:
				if pa, ok := m.Alloc2M(); ok {
					if owned[pa] {
						return false
					}
					owned[pa] = true
					live = append(live, alloc{pa, 512})
				}
			case 2:
				if len(live) > 0 {
					a := live[len(live)-1]
					live = live[:len(live)-1]
					delete(owned, a.pa)
					m.Free(a.pa, a.pages)
				}
			}
		}
		var liveTotal uint64
		for _, a := range live {
			liveTotal += a.pages
		}
		return m.FreePages()+liveTotal == m.TotalPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlabFrames(t *testing.T) {
	m := New(16 * mem.MB)
	s := NewSlab(m)
	f1, ok := s.AllocFrame()
	if !ok {
		t.Fatal("frame alloc failed")
	}
	f2, _ := s.AllocFrame()
	if f1 == f2 {
		t.Fatal("duplicate frames")
	}
	s.FreeFrame(f1)
	f3, _ := s.AllocFrame()
	if f3 != f1 {
		t.Fatalf("recycled frame mismatch: %x != %x", f3, f1)
	}
	if s.FramesRecycled != 1 {
		t.Fatalf("recycle stat = %d", s.FramesRecycled)
	}
}

func TestSlabObjectsAligned(t *testing.T) {
	m := New(16 * mem.MB)
	s := NewSlab(m)
	for _, size := range []uint64{1, 63, 64, 100, 4096} {
		pa, ok := s.AllocObject(size)
		if !ok {
			t.Fatalf("object alloc(%d) failed", size)
		}
		if uint64(pa)%64 != 0 {
			t.Fatalf("object %d not line-aligned: %x", size, pa)
		}
	}
}
