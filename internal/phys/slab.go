package phys

import (
	"fmt"

	"repro/internal/mem"
)

// Slab is the kernel's object allocator (Bonwick-style), backing
// page-table frames and kernel metadata (VMA nodes, page-cache entries,
// swap-cache entries). It carves 2 MB chunks out of physical memory and
// serves fixed-size objects from per-size free lists — mirroring the
// §5.1 flow in which MimicOS "requests new frames from the slab
// allocator" during page-table construction.
//
// Objects have real physical addresses so the instrumentation layer can
// emit kernel loads/stores against them.
type Slab struct {
	mem       *Mem
	chunk     mem.PAddr // current bump chunk base
	chunkOff  uint64
	chunkLen  uint64
	freeFrame []mem.PAddr // recycled 4 KB PT frames
	objFree   map[uint64][]mem.PAddr

	// Stats
	FramesAllocated uint64
	FramesRecycled  uint64
	ChunksGrabbed   uint64
	SlowPathRefills uint64
}

// NewSlab builds a slab allocator over m.
func NewSlab(m *Mem) *Slab {
	return &Slab{mem: m, objFree: make(map[uint64][]mem.PAddr)}
}

func (s *Slab) refill() bool {
	// Prefer a 2MB chunk; fall back to single pages under pressure.
	if pa, ok := s.mem.Alloc2M(); ok {
		s.chunk, s.chunkOff, s.chunkLen = pa, 0, 2*mem.MB
		s.ChunksGrabbed++
		return true
	}
	if pa, ok := s.mem.Alloc4K(); ok {
		s.chunk, s.chunkOff, s.chunkLen = pa, 0, 4*mem.KB
		s.ChunksGrabbed++
		s.SlowPathRefills++
		return true
	}
	return false
}

// AllocFrame returns a zero-filled 4 KB frame for a page-table node.
// ok=false indicates out-of-memory.
func (s *Slab) AllocFrame() (mem.PAddr, bool) {
	if n := len(s.freeFrame); n > 0 {
		pa := s.freeFrame[n-1]
		s.freeFrame = s.freeFrame[:n-1]
		s.FramesRecycled++
		return pa, true
	}
	pa, ok := s.allocBytes(4 * mem.KB)
	if ok {
		s.FramesAllocated++
	}
	return pa, ok
}

// FreeFrame recycles a page-table frame.
func (s *Slab) FreeFrame(pa mem.PAddr) { s.freeFrame = append(s.freeFrame, pa) }

// AllocContig delegates to the underlying physical memory; page-table
// designs use it for large contiguous structures (hash tables, ECH ways).
func (s *Slab) AllocContig(pages, alignPages uint64) (mem.PAddr, bool) {
	return s.mem.AllocContig(pages, alignPages)
}

// AllocObject returns the address of a kernel object of the given size
// (rounded up to 64 B). ok=false indicates out-of-memory.
func (s *Slab) AllocObject(size uint64) (mem.PAddr, bool) {
	size = mem.AlignUp(size, mem.CacheLineBytes)
	if fl := s.objFree[size]; len(fl) > 0 {
		pa := fl[len(fl)-1]
		s.objFree[size] = fl[:len(fl)-1]
		return pa, true
	}
	return s.allocBytes(size)
}

// FreeObject recycles a kernel object of the given size.
func (s *Slab) FreeObject(pa mem.PAddr, size uint64) {
	size = mem.AlignUp(size, mem.CacheLineBytes)
	s.objFree[size] = append(s.objFree[size], pa)
}

func (s *Slab) allocBytes(size uint64) (mem.PAddr, bool) {
	if size > 2*mem.MB {
		panic(fmt.Sprintf("phys: slab object too large: %d", size))
	}
	if s.chunkLen-s.chunkOff < size {
		if !s.refill() {
			return 0, false
		}
	}
	if s.chunkLen-s.chunkOff < size {
		return 0, false
	}
	pa := s.chunk + mem.PAddr(s.chunkOff)
	s.chunkOff += size
	return pa, true
}
