// Package phys models the machine's physical memory and its allocators:
// an extent-based buddy-style allocator over the full physical address
// space (with controllable 2 MB-block fragmentation, the key system-state
// variable in Figs. 13, 16, 21), a slab allocator for page-table frames
// and kernel objects (§5.1 step 2), and contiguity queries used by eager
// paging (RMM) and 1 GB allocations.
//
// Addresses handed out are real simulated physical addresses: page-table
// entries, kernel objects and application frames all land at distinct
// DRAM rows, so allocation policy visibly changes row-buffer behaviour —
// the dynamic effect first-order models miss (§8.1).
package phys

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/recycle"
	"repro/internal/xrand"
)

const pagesPer2M = 512
const pagesPer1G = 512 * 512

// Mem is the physical memory map: a set of free extents (in 4 KB page
// units) with lazily maintained small/large classification so 4 KB
// allocations prefer already-broken blocks (preserving 2 MB contiguity,
// as Linux's buddy does by splitting low orders first).
type Mem struct {
	totalPages uint64
	basePage   uint64 // first allocatable page number

	free  map[uint64]uint64 // extent base page -> length in pages
	byEnd map[uint64]uint64 // extent end page (exclusive) -> base page

	// bitmap mirrors free-page membership (bit p set = page p free) so
	// point queries (pageFree, allocSpecific) cost O(1) instead of
	// scanning the extent maps. Maintained at the allocation and free
	// sites — extent splits and coalescing don't change page state, so
	// insertExtent/removeExtent leave it alone.
	bitmap []uint64

	smallStack []uint64 // candidate bases of extents with no aligned 2MB chunk
	largeStack []uint64 // candidate bases of extents with >= 1 aligned 2MB chunk

	freePages uint64
	free2M    uint64 // aligned free 2MB chunks
	total2M   uint64
}

// New builds a physical memory of totalBytes (must be 2 MB-aligned).
func New(totalBytes uint64) *Mem { return NewWith(totalBytes, nil) }

// extentsKey holds the recycled extent-map/candidate-stack bundle in a
// pool; the maps come back cleared and the stacks truncated, so reuse
// is indistinguishable from fresh construction.
const extentsKey = "phys.extents"

type extentState struct {
	free, byEnd  map[uint64]uint64
	small, large []uint64
}

// NewWith is New drawing the free-page bitmap and extent maps from
// pool (nil pool = plain New).
func NewWith(totalBytes uint64, pool *recycle.Pool) *Mem {
	if totalBytes == 0 || totalBytes%(2*mem.MB) != 0 {
		panic(fmt.Sprintf("phys: total bytes %d not 2MB-aligned", totalBytes))
	}
	pages := totalBytes / (4 * mem.KB)
	m := &Mem{
		totalPages: pages,
		bitmap:     pool.Uint64s(int((pages + 63) / 64)),
		total2M:    pages / pagesPer2M,
	}
	if st, ok := pool.Take(extentsKey); ok {
		e := st.(*extentState)
		m.free, m.byEnd = e.free, e.byEnd
		m.smallStack, m.largeStack = e.small, e.large
	} else {
		m.free = make(map[uint64]uint64)
		m.byEnd = make(map[uint64]uint64)
	}
	m.insertExtent(0, pages)
	m.setRange(0, pages)
	return m
}

// Recycle harvests the memory map's large allocations into pool. The
// Mem must not be used afterwards.
func (m *Mem) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	pool.PutUint64s(m.bitmap)
	clear(m.free)
	clear(m.byEnd)
	pool.Give(extentsKey, &extentState{
		free: m.free, byEnd: m.byEnd,
		small: m.smallStack[:0], large: m.largeStack[:0],
	})
	m.bitmap, m.free, m.byEnd, m.smallStack, m.largeStack = nil, nil, nil, nil, nil
}

// TotalBytes returns the physical memory size.
func (m *Mem) TotalBytes() uint64 { return m.totalPages * 4 * mem.KB }

// TotalPages returns the total number of 4 KB frames.
func (m *Mem) TotalPages() uint64 { return m.totalPages }

// FreePages returns the number of free 4 KB frames.
func (m *Mem) FreePages() uint64 { return m.freePages }

// FreeBytes returns the free capacity in bytes.
func (m *Mem) FreeBytes() uint64 { return m.freePages * 4 * mem.KB }

// UsedFraction returns the fraction of physical memory allocated.
func (m *Mem) UsedFraction() float64 {
	return 1 - float64(m.freePages)/float64(m.totalPages)
}

// Free2MBlocks returns the number of free, naturally aligned 2 MB blocks.
func (m *Mem) Free2MBlocks() uint64 { return m.free2M }

// Total2MBlocks returns the total number of 2 MB blocks in memory.
func (m *Mem) Total2MBlocks() uint64 { return m.total2M }

// FragmentationLevel returns free 2 MB blocks / total 2 MB blocks — the
// paper's §7.4 definition of memory fragmentation level (100% = fully
// unfragmented).
func (m *Mem) FragmentationLevel() float64 {
	return float64(m.free2M) / float64(m.total2M)
}

// setRange marks pages [base, base+n) free in the bitmap.
func (m *Mem) setRange(base, n uint64) {
	for n > 0 {
		w, off := base>>6, base&63
		span := 64 - off
		if span > n {
			span = n
		}
		m.bitmap[w] |= (^uint64(0) >> (64 - span)) << off
		base += span
		n -= span
	}
}

// clearRange marks pages [base, base+n) allocated in the bitmap.
func (m *Mem) clearRange(base, n uint64) {
	for n > 0 {
		w, off := base>>6, base&63
		span := 64 - off
		if span > n {
			span = n
		}
		m.bitmap[w] &^= (^uint64(0) >> (64 - span)) << off
		base += span
		n -= span
	}
}

// extentBase returns the base of the free extent covering page p, which
// must be free. Free extents are maximal (splits leave allocated gaps,
// Free coalesces), so the base is one past the nearest allocated page
// below p — found by scanning bitmap words, not the extent maps.
func (m *Mem) extentBase(p uint64) uint64 {
	w := p >> 6
	word := ^m.bitmap[w] & (^uint64(0) >> (63 - p&63))
	for word == 0 {
		if w == 0 {
			return 0
		}
		w--
		word = ^m.bitmap[w]
	}
	return w<<6 + uint64(bits.Len64(word))
}

func aligned2MCount(base, pages uint64) uint64 {
	head := mem.AlignUp(base, pagesPer2M)
	end := base + pages
	if head+pagesPer2M > end {
		return 0
	}
	return (end - head) / pagesPer2M
}

func (m *Mem) classify(base, pages uint64) {
	if aligned2MCount(base, pages) > 0 {
		m.largeStack = append(m.largeStack, base)
	} else {
		m.smallStack = append(m.smallStack, base)
	}
}

func (m *Mem) insertExtent(base, pages uint64) {
	if pages == 0 {
		return
	}
	m.free[base] = pages
	m.byEnd[base+pages] = base
	m.freePages += pages
	m.free2M += aligned2MCount(base, pages)
	m.classify(base, pages)
}

func (m *Mem) removeExtent(base uint64) uint64 {
	pages := m.free[base]
	delete(m.free, base)
	delete(m.byEnd, base+pages)
	m.freePages -= pages
	m.free2M -= aligned2MCount(base, pages)
	return pages
}

// popSmall returns a valid small-extent base, or false.
func (m *Mem) popSmall() (uint64, bool) {
	for len(m.smallStack) > 0 {
		base := m.smallStack[len(m.smallStack)-1]
		m.smallStack = m.smallStack[:len(m.smallStack)-1]
		pages, ok := m.free[base]
		if ok && aligned2MCount(base, pages) == 0 {
			return base, true
		}
	}
	return 0, false
}

// popLarge returns a valid large-extent base, or false.
func (m *Mem) popLarge() (uint64, bool) {
	for len(m.largeStack) > 0 {
		base := m.largeStack[len(m.largeStack)-1]
		m.largeStack = m.largeStack[:len(m.largeStack)-1]
		pages, ok := m.free[base]
		if ok && aligned2MCount(base, pages) > 0 {
			return base, true
		}
	}
	return 0, false
}

// Alloc4K allocates one 4 KB frame, preferring fragments of already
// broken 2 MB blocks.
func (m *Mem) Alloc4K() (mem.PAddr, bool) {
	if base, ok := m.popSmall(); ok {
		pages := m.removeExtent(base)
		m.insertExtent(base+1, pages-1)
		m.clearRange(base, 1)
		return pageAddr(base), true
	}
	if base, ok := m.popLarge(); ok {
		pages := m.removeExtent(base)
		m.insertExtent(base+1, pages-1) // breaks one 2MB block
		m.clearRange(base, 1)
		return pageAddr(base), true
	}
	return 0, false
}

// Alloc2M allocates one naturally aligned 2 MB block.
func (m *Mem) Alloc2M() (mem.PAddr, bool) {
	base, ok := m.popLarge()
	if !ok {
		return 0, false
	}
	pages := m.removeExtent(base)
	head := mem.AlignUp(base, pagesPer2M)
	m.insertExtent(base, head-base)
	m.insertExtent(head+pagesPer2M, base+pages-(head+pagesPer2M))
	m.clearRange(head, pagesPer2M)
	return pageAddr(head), true
}

// Alloc1G allocates one naturally aligned 1 GB block, if any extent
// contains one.
func (m *Mem) Alloc1G() (mem.PAddr, bool) {
	return m.AllocContig(pagesPer1G, pagesPer1G)
}

// AllocContig allocates pages contiguous frames aligned to alignPages,
// scanning all free extents for the lowest-addressed fit. Used for 1 GB
// pages, RestSeg carve-outs, and hash page-table regions. Address-order
// first fit — not take-whatever-the-map-yields-first — because map
// iteration order is randomized: when several extents fit (an ECH
// resize against a fragmented free map, mid-run), the choice must be a
// pure function of the allocator state or simulations stop being
// reproducible.
func (m *Mem) AllocContig(pages, alignPages uint64) (mem.PAddr, bool) {
	if pages == 0 {
		return 0, false
	}
	if alignPages == 0 {
		alignPages = 1
	}
	var bestBase, bestLen uint64
	found := false
	for base, length := range m.free {
		head := mem.AlignUp(base, alignPages)
		if head+pages <= base+length && (!found || base < bestBase) {
			bestBase, bestLen = base, length
			found = true
		}
	}
	if !found {
		return 0, false
	}
	head := mem.AlignUp(bestBase, alignPages)
	m.removeExtent(bestBase)
	m.insertExtent(bestBase, head-bestBase)
	m.insertExtent(head+pages, bestBase+bestLen-(head+pages))
	m.clearRange(head, pages)
	return pageAddr(head), true
}

// AllocLargestRange allocates the largest contiguous free range of at
// most maxPages frames (at least minPages), returning its base and length.
// This is the eager-paging primitive of RMM (§7.6.3): allocate the biggest
// available contiguous chunk for a growing VMA.
func (m *Mem) AllocLargestRange(minPages, maxPages uint64) (mem.PAddr, uint64, bool) {
	// Ties broken by lowest base: map iteration order is randomized and
	// must never decide which frames an allocation gets.
	var bestBase, bestLen uint64
	for base, length := range m.free {
		if length > bestLen || (length == bestLen && length > 0 && base < bestBase) {
			bestBase, bestLen = base, length
		}
	}
	if bestLen < minPages || bestLen == 0 {
		return 0, 0, false
	}
	take := bestLen
	if take > maxPages {
		take = maxPages
	}
	m.removeExtent(bestBase)
	m.insertExtent(bestBase+take, bestLen-take)
	m.clearRange(bestBase, take)
	return pageAddr(bestBase), take, true
}

// LargestFreeRangePages reports the size of the largest free extent
// without allocating. Used by fragmentation metrics for RMM (§7.6).
func (m *Mem) LargestFreeRangePages() uint64 {
	var best uint64
	for _, length := range m.free {
		if length > best {
			best = length
		}
	}
	return best
}

// Free returns pages frames starting at pa to the free pool, coalescing
// with adjacent extents.
func (m *Mem) Free(pa mem.PAddr, pages uint64) {
	base := uint64(pa) >> 12
	if pages == 0 {
		return
	}
	m.setRange(base, pages)
	// Coalesce with predecessor.
	if pbase, ok := m.byEnd[base]; ok {
		plen := m.removeExtent(pbase)
		base = pbase
		pages += plen
	}
	// Coalesce with successor.
	if slen, ok := m.free[base+pages]; ok {
		m.removeExtent(base + pages)
		pages += slen
	}
	m.insertExtent(base, pages)
}

// Fragment consumes free 2 MB blocks until the fragmentation level
// (free 2 MB blocks / total) drops to targetFree2MFrac, by allocating a
// single 4 KB page in the middle of pseudo-randomly chosen blocks — the
// cheapest realistic way a long-running system loses huge-page
// contiguity. Deterministic in seed.
func (m *Mem) Fragment(targetFree2MFrac float64, seed uint64) {
	if targetFree2MFrac >= 1 {
		return
	}
	target := uint64(float64(m.total2M) * targetFree2MFrac)
	rng := xrand.New(seed)
	guard := m.total2M * 4
	for m.free2M > target && guard > 0 {
		guard--
		// Pick a random 2MB block; break it if it is currently free.
		blk := rng.Uint64n(m.total2M)
		head := blk * pagesPer2M
		mid := head + pagesPer2M/2
		if !m.pageFree(mid) {
			continue
		}
		before := m.free2M
		m.allocSpecific(mid)
		if m.free2M == before {
			// The block was already broken; return the page.
			m.Free(pageAddr(mid), 1)
		}
	}
	// Deterministic sweep for very low targets, where random probing
	// rarely finds the remaining free blocks.
	for blk := uint64(0); blk < m.total2M && m.free2M > target; blk++ {
		mid := blk*pagesPer2M + pagesPer2M/2
		if !m.pageFree(mid) {
			continue
		}
		before := m.free2M
		m.allocSpecific(mid)
		if m.free2M == before {
			m.Free(pageAddr(mid), 1)
		}
	}
}

// pageFree reports whether page number p lies inside a free extent.
func (m *Mem) pageFree(p uint64) bool {
	return m.bitmap[p>>6]>>(p&63)&1 == 1
}

// allocSpecific removes exactly page p from whichever extent covers it.
func (m *Mem) allocSpecific(p uint64) {
	if !m.pageFree(p) {
		return
	}
	cbase := m.extentBase(p)
	clen := m.free[cbase]
	m.removeExtent(cbase)
	m.insertExtent(cbase, p-cbase)
	m.insertExtent(p+1, cbase+clen-(p+1))
	m.clearRange(p, 1)
}

func pageAddr(page uint64) mem.PAddr { return mem.PAddr(page << 12) }
