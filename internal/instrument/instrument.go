// Package instrument is this repository's stand-in for the dynamic binary
// instrumentation tool (Intel Pin / DynamoRIO) of the paper's methodology
// (§4.2): MimicOS routines execute against a Tracer that records, as they
// run, the instruction stream they would have executed — ALU work,
// branches, and loads/stores at the *actual physical addresses* of kernel
// objects, page-table entries and data pages. The Virtuoso engine then
// injects that stream into the simulator's core model through the
// instruction-stream channel, so OS routines are charged their real
// latency and create real cache pollution and DRAM interference.
//
// The stream length is path-dependent by construction: a page fault that
// zeroes a 2 MB page records 32768 cache-line stores, while a fault
// served from the zero-page pool records a handful — reproducing the
// heavy-tailed minor-fault latency distributions of Fig. 2.
package instrument

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/xrand"
)

// RoutineStat aggregates per-routine activity, used to report where
// kernel time goes (and for the §7.3 instruction-count correlation).
type RoutineStat struct {
	Calls  uint64
	Insts  uint64
	MemOps uint64
}

// Tracer records the instruction stream of the currently executing kernel
// event. One Tracer serves one kernel worker; Begin/Take bracket one
// event (e.g., one page fault).
type Tracer struct {
	stream  isa.Stream
	routine []frame
	pc      uint64
	stats   map[string]*RoutineStat
	insts   uint64 // dynamic instructions in the current stream
	total   uint64 // lifetime dynamic instruction count
}

type frame struct {
	name  string
	start uint64
	pc    uint64
	st    *RoutineStat // resolved once at Enter; memStat runs per kernel mem-op
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{stats: make(map[string]*RoutineStat)}
}

// Begin resets the tracer for a new kernel event.
func (t *Tracer) Begin() {
	t.stream = t.stream[:0]
	t.insts = 0
}

// Adopt replaces the tracer's stream storage with buf, truncated. The
// buffer grows to the largest single kernel event (a 2 MB ZeroRange is
// 32 Ki records), so recycling it across kernels avoids regrowing —
// and re-copying — megabytes per simulation. Contents are irrelevant:
// every record below len is overwritten by emit before a reader sees
// it, and isa.Inst holds no pointers.
func (t *Tracer) Adopt(buf isa.Stream) {
	t.stream = buf[:0]
}

// Release surrenders the stream storage for recycling. The tracer must
// not be used afterwards.
func (t *Tracer) Release() isa.Stream {
	buf := t.stream
	t.stream = nil
	return buf
}

// Take returns the recorded stream for the completed event. The returned
// slice is valid until the next Begin; callers that retain it must copy.
func (t *Tracer) Take() isa.Stream { return t.stream }

// StreamInsts returns the dynamic instruction count of the current stream.
func (t *Tracer) StreamInsts() uint64 { return t.insts }

// TotalInsts returns the lifetime kernel instruction count.
func (t *Tracer) TotalInsts() uint64 { return t.total }

// Enter marks entry into a named kernel routine and returns the matching
// exit function. Routine names give each routine a distinct synthetic
// code region so injected kernel code exercises the I-cache realistically.
func (t *Tracer) Enter(name string) func() {
	st := t.stats[name]
	if st == nil {
		st = &RoutineStat{}
		t.stats[name] = st
	}
	st.Calls++
	prevPC := t.pc
	start := t.insts
	// Each routine occupies a 16 KB synthetic code region derived from
	// its name.
	t.pc = 0xffff_8000_0000_0000 | (xrand.Hash64(hashName(name), 0x05) & 0x3fff_ffff << 14)
	t.routine = append(t.routine, frame{name: name, start: start, pc: prevPC, st: st})
	t.emit(isa.Inst{Op: isa.OpBranch, Count: 1, PC: t.pc, Phys: true}) // call
	return func() {
		t.emit(isa.Inst{Op: isa.OpBranch, Count: 1, PC: t.pc, Phys: true}) // ret
		st.Insts += t.insts - start
		t.pc = prevPC
		t.routine = t.routine[:len(t.routine)-1]
	}
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (t *Tracer) emit(in isa.Inst) {
	t.stream = append(t.stream, in)
	if in.Op != isa.OpDelay {
		n := in.N()
		t.insts += n
		t.total += n
	}
}

func (t *Tracer) bumpPC(n uint64) { t.pc += 4 * n }

// ALU records n register-only instructions.
func (t *Tracer) ALU(n uint32) {
	if n == 0 {
		return
	}
	t.emit(isa.Inst{Op: isa.OpALU, Count: n, PC: t.pc, Phys: true})
	t.bumpPC(uint64(n))
}

// Branch records n branches.
func (t *Tracer) Branch(n uint32) {
	if n == 0 {
		return
	}
	t.emit(isa.Inst{Op: isa.OpBranch, Count: n, PC: t.pc, Phys: true})
	t.bumpPC(uint64(n))
}

// Load records a kernel load at physical address pa.
func (t *Tracer) Load(pa mem.PAddr) {
	t.emit(isa.Inst{Op: isa.OpLoad, Count: 1, PC: t.pc, Addr: uint64(pa), Phys: true})
	t.bumpPC(1)
	t.memStat()
}

// Store records a kernel store at physical address pa.
func (t *Tracer) Store(pa mem.PAddr) {
	t.emit(isa.Inst{Op: isa.OpStore, Count: 1, PC: t.pc, Addr: uint64(pa), Phys: true})
	t.bumpPC(1)
	t.memStat()
}

// Atomic records a locked RMW at pa (spinlock acquisition, refcounts);
// these are the §4.3 synchronisation overheads of the multithreaded
// kernel.
func (t *Tracer) Atomic(pa mem.PAddr) {
	t.emit(isa.Inst{Op: isa.OpAtomic, Count: 1, PC: t.pc, Addr: uint64(pa), Phys: true})
	t.bumpPC(1)
	t.memStat()
}

// Delay records a pipeline stall of the given cycles (device time, e.g.,
// an SSD access simulated by MQSim).
func (t *Tracer) Delay(cycles uint64) {
	for cycles > 0 {
		chunk := cycles
		if chunk > 1<<31 {
			chunk = 1 << 31
		}
		t.emit(isa.Inst{Op: isa.OpDelay, Count: uint32(chunk), Phys: true})
		cycles -= chunk
	}
}

// Magic records a magic (doorbell) instruction marking a functional
// channel synchronisation point.
func (t *Tracer) Magic() {
	t.emit(isa.Inst{Op: isa.OpMagic, Count: 1, PC: t.pc, Phys: true})
	t.bumpPC(1)
}

func (t *Tracer) memStat() {
	if n := len(t.routine); n > 0 {
		t.routine[n-1].st.MemOps++
	}
}

// ZeroRange records clearing [pa, pa+bytes): one cache-line store per
// 64 B plus loop overhead — the dominant cost of huge-page allocation.
func (t *Tracer) ZeroRange(pa mem.PAddr, bytes uint64) {
	lines := bytes / mem.CacheLineBytes
	for i := uint64(0); i < lines; i++ {
		t.Store(pa + mem.PAddr(i*mem.CacheLineBytes))
	}
	t.ALU(uint32(lines)) // loop counter + address generation
}

// CopyRange records copying bytes from src to dst, one cache line at a
// time (khugepaged collapse, swap-in fill, CoW).
func (t *Tracer) CopyRange(dst, src mem.PAddr, bytes uint64) {
	lines := bytes / mem.CacheLineBytes
	for i := uint64(0); i < lines; i++ {
		off := mem.PAddr(i * mem.CacheLineBytes)
		t.Load(src + off)
		t.Store(dst + off)
	}
	t.ALU(uint32(lines))
}

// TouchObject records a read-modify access pattern over a kernel object:
// reads of loads cache lines and writes of stores cache lines at pa.
func (t *Tracer) TouchObject(pa mem.PAddr, loads, stores int) {
	for i := 0; i < loads; i++ {
		t.Load(pa + mem.PAddr(i*mem.CacheLineBytes))
	}
	for i := 0; i < stores; i++ {
		t.Store(pa + mem.PAddr(i*mem.CacheLineBytes))
	}
}

// Stats returns per-routine statistics sorted by name.
func (t *Tracer) Stats() []NamedRoutineStat {
	out := make([]NamedRoutineStat, 0, len(t.stats))
	for name, st := range t.stats {
		out = append(out, NamedRoutineStat{Name: name, RoutineStat: *st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedRoutineStat pairs a routine name with its statistics.
type NamedRoutineStat struct {
	Name string
	RoutineStat
}

// Interface checks.
var _ KernelMem = (*Tracer)(nil)

// KernelMem is the narrow interface kernel data structures use to report
// their memory accesses; Tracer implements it.
type KernelMem interface {
	Load(pa mem.PAddr)
	Store(pa mem.PAddr)
	ALU(n uint32)
}

// NopMem discards recorded accesses; used for functional-only operations
// (e.g., engine-internal bookkeeping that must not be charged).
type NopMem struct{}

// Load implements KernelMem.
func (NopMem) Load(mem.PAddr) {}

// Store implements KernelMem.
func (NopMem) Store(mem.PAddr) {}

// ALU implements KernelMem.
func (NopMem) ALU(uint32) {}
