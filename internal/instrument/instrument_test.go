package instrument

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestTracerRecordsRoutine(t *testing.T) {
	tr := NewTracer()
	tr.Begin()
	exit := tr.Enter("do_page_fault")
	tr.ALU(100)
	tr.Load(0x1000)
	tr.Store(0x2000)
	tr.Atomic(0x3000)
	exit()
	s := tr.Take()
	if got := s.Instructions(); got != 105 { // 100 ALU + 3 mem + 2 call/ret branches
		t.Fatalf("instructions = %d", got)
	}
	if got := s.MemOps(); got != 3 {
		t.Fatalf("mem ops = %d", got)
	}
	sts := tr.Stats()
	if len(sts) != 1 || sts[0].Calls != 1 || sts[0].MemOps != 3 {
		t.Fatalf("routine stats: %+v", sts)
	}
}

func TestTracerBeginResets(t *testing.T) {
	tr := NewTracer()
	tr.Begin()
	tr.ALU(10)
	tr.Begin()
	if len(tr.Take()) != 0 {
		t.Fatal("Begin did not reset the stream")
	}
	if tr.TotalInsts() != 10 {
		t.Fatalf("lifetime count = %d", tr.TotalInsts())
	}
}

func TestZeroRangeEmitsLineStores(t *testing.T) {
	tr := NewTracer()
	tr.Begin()
	tr.ZeroRange(0x10000, 2*mem.MB)
	stores := uint64(0)
	for _, in := range tr.Take() {
		if in.Op == isa.OpStore {
			stores += in.N()
		}
	}
	if stores != 2*mem.MB/64 {
		t.Fatalf("zeroing stores = %d, want %d", stores, 2*mem.MB/64)
	}
}

func TestCopyRangePairsLoadsStores(t *testing.T) {
	tr := NewTracer()
	tr.Begin()
	tr.CopyRange(0x2000, 0x1000, 4096)
	var loads, stores uint64
	for _, in := range tr.Take() {
		switch in.Op {
		case isa.OpLoad:
			loads += in.N()
		case isa.OpStore:
			stores += in.N()
		}
	}
	if loads != 64 || stores != 64 {
		t.Fatalf("copy = %d loads / %d stores", loads, stores)
	}
}

func TestDelaySplitsLargeValues(t *testing.T) {
	tr := NewTracer()
	tr.Begin()
	tr.Delay(3 << 31)
	var total uint64
	for _, in := range tr.Take() {
		if in.Op != isa.OpDelay {
			t.Fatalf("unexpected op %v", in.Op)
		}
		total += in.N()
	}
	if total != 3<<31 {
		t.Fatalf("delay total = %d", total)
	}
}

func TestRoutinePCsDistinct(t *testing.T) {
	tr := NewTracer()
	tr.Begin()
	e1 := tr.Enter("alloc_pages")
	tr.ALU(1)
	e1()
	e2 := tr.Enter("swap_out")
	tr.ALU(1)
	e2()
	s := tr.Take()
	if s[0].PC == s[3].PC {
		t.Fatal("distinct routines share a code region")
	}
}
