// Package recycle provides the per-worker object pools behind pooled
// System construction (core.NewSystemPooled): a sweep worker keeps one
// Pool and cycles the big simulator allocations — SoA TLB/cache arrays,
// free-page bitmaps, page-table arena chunks, batch buffers — across
// the points it runs instead of handing each point's ~megabytes of
// setup state to the garbage collector.
//
// Determinism is by construction, not by protocol: a pooled slice is
// scrubbed to zero when it enters the pool and is matched by exact
// length on the way out, so a constructor that swaps `make([]T, n)` for
// `pool.Uint64s(n)` receives memory indistinguishable from a fresh
// allocation. Structural shape changes between points (different cache
// geometry, different phys size) simply miss the length bucket and fall
// back to a fresh make. Keyed objects (Take/Give) carry composite state
// whose owner guarantees the same fresh-equivalence before giving it
// back.
//
// A nil *Pool is valid everywhere and means "no pooling": every take
// allocates fresh and every give is dropped, so the pooled constructors
// double as the unpooled ones. Pools are not safe for concurrent use —
// one worker, one pool.
package recycle

import "repro/internal/mem"

// sliceCap bounds retained slices per (type, length) bucket; objCap
// bounds retained objects per key. Both exist only to cap worker-lifetime
// memory, not for correctness.
const (
	sliceCap = 8
	objCap   = 64
)

// Pool recycles simulator allocations across pooled System lifetimes.
type Pool struct {
	u64   map[int][][]uint64
	u32   map[int][][]uint32
	u8    map[int][][]uint8
	paddr map[int][][]mem.PAddr
	objs  map[string][]any
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		u64:   map[int][][]uint64{},
		u32:   map[int][][]uint32{},
		u8:    map[int][][]uint8{},
		paddr: map[int][][]mem.PAddr{},
		objs:  map[string][]any{},
	}
}

// takeSlice pops a pooled slice of exactly length n. Pooled slices were
// zeroed on entry, so the result is equivalent to make([]T, n).
func takeSlice[T any](m map[int][][]T, n int) ([]T, bool) {
	b := m[n]
	if len(b) == 0 {
		return nil, false
	}
	s := b[len(b)-1]
	b[len(b)-1] = nil
	m[n] = b[:len(b)-1]
	return s, true
}

// giveSlice scrubs s and stores it under its length bucket.
func giveSlice[T any](m map[int][][]T, s []T) {
	n := len(s)
	if n == 0 || len(m[n]) >= sliceCap {
		return
	}
	clear(s)
	m[n] = append(m[n], s)
}

// Uint64s returns a zeroed []uint64 of length n, pooled when possible.
func (p *Pool) Uint64s(n int) []uint64 {
	if p != nil {
		if s, ok := takeSlice(p.u64, n); ok {
			return s
		}
	}
	return make([]uint64, n)
}

// PutUint64s returns a slice to the pool (dropped when p is nil).
func (p *Pool) PutUint64s(s []uint64) {
	if p != nil {
		giveSlice(p.u64, s)
	}
}

// Uint32s returns a zeroed []uint32 of length n, pooled when possible.
func (p *Pool) Uint32s(n int) []uint32 {
	if p != nil {
		if s, ok := takeSlice(p.u32, n); ok {
			return s
		}
	}
	return make([]uint32, n)
}

// PutUint32s returns a slice to the pool (dropped when p is nil).
func (p *Pool) PutUint32s(s []uint32) {
	if p != nil {
		giveSlice(p.u32, s)
	}
}

// Uint8s returns a zeroed []uint8 of length n, pooled when possible.
func (p *Pool) Uint8s(n int) []uint8 {
	if p != nil {
		if s, ok := takeSlice(p.u8, n); ok {
			return s
		}
	}
	return make([]uint8, n)
}

// PutUint8s returns a slice to the pool (dropped when p is nil).
func (p *Pool) PutUint8s(s []uint8) {
	if p != nil {
		giveSlice(p.u8, s)
	}
}

// PAddrs returns a zeroed []mem.PAddr of length n, pooled when possible.
func (p *Pool) PAddrs(n int) []mem.PAddr {
	if p != nil {
		if s, ok := takeSlice(p.paddr, n); ok {
			return s
		}
	}
	return make([]mem.PAddr, n)
}

// PutPAddrs returns a slice to the pool (dropped when p is nil).
func (p *Pool) PutPAddrs(s []mem.PAddr) {
	if p != nil {
		giveSlice(p.paddr, s)
	}
}

// Take pops a keyed object given earlier under the same key. The giver
// owns the reset contract: whatever comes back must behave exactly like
// the freshly constructed equivalent.
func (p *Pool) Take(key string) (any, bool) {
	if p == nil {
		return nil, false
	}
	b := p.objs[key]
	if len(b) == 0 {
		return nil, false
	}
	v := b[len(b)-1]
	b[len(b)-1] = nil
	p.objs[key] = b[:len(b)-1]
	return v, true
}

// Give stores v under key for a later Take (dropped when p is nil or
// the key's bucket is full).
func (p *Pool) Give(key string, v any) {
	if p == nil || len(p.objs[key]) >= objCap {
		return
	}
	p.objs[key] = append(p.objs[key], v)
}

// Recycler is implemented by components that can harvest their large
// allocations into a pool when their owning System retires.
type Recycler interface {
	Recycle(p *Pool)
}
