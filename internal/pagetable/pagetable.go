// Package pagetable implements the page-table designs evaluated in the
// paper's Use Case 1 (§7.4): the x86-64 4-level radix table, Elastic
// Cuckoo Hash page tables (ECH, Skarlatos et al.), the open-addressing
// hashed page table of Yaniv & Tsafrir (HDC, "Hash, Don't Cache"), and a
// PowerPC-style chained hash table (HT).
//
// Every design stores its entries at real simulated physical addresses
// (frames from the slab allocator or contiguous regions from the buddy
// allocator), so hardware walks and kernel updates generate cache and
// DRAM traffic with realistic locality — the property that lets Figs. 13,
// 14 and 15 distinguish the designs.
package pagetable

import (
	"repro/internal/instrument"
	"repro/internal/mem"
)

// Entry is one translation: a virtual page mapped to a physical frame.
type Entry struct {
	Frame    mem.PAddr
	Size     mem.PageSize
	Present  bool
	Writable bool
	Dirty    bool
	Accessed bool
	Swapped  bool   // present=false but backed by a swap slot
	SwapSlot uint64 // valid when Swapped
}

// MaxWalkSteps bounds the memory accesses of a single walk across all
// designs (radix: 4; ECH: up to ways×sizes; HT: bucket+chain).
const MaxWalkSteps = 24

// WalkStep is one memory access a hardware walker must perform.
type WalkStep struct {
	PA    mem.PAddr
	Level int // radix: 4 (PML4) .. 1 (PTE); hash designs: 0
}

// WalkResult is the outcome of a functional walk: the ordered list of
// memory accesses a hardware walker performs plus the terminal entry.
type WalkResult struct {
	Steps  [MaxWalkSteps]WalkStep
	NSteps int
	Entry  Entry
	Found  bool // a present or swapped entry exists
}

func (w *WalkResult) push(pa mem.PAddr, level int) {
	if w.NSteps < MaxWalkSteps {
		w.Steps[w.NSteps] = WalkStep{PA: pa, Level: level}
		w.NSteps++
	}
}

// FrameAllocator supplies 4 KB frames for page-table nodes (the slab
// path of §5.1) and contiguous regions for hash tables.
type FrameAllocator interface {
	AllocFrame() (mem.PAddr, bool)
	FreeFrame(pa mem.PAddr)
	AllocContig(pages, alignPages uint64) (mem.PAddr, bool)
}

// PageTable is the interface all designs implement.
//
// Insert and Remove take an instrument.KernelMem because page-table
// updates are performed by kernel code: their memory accesses belong in
// the injected instruction stream (they dominate the minor-fault latency
// differences of Fig. 15).
type PageTable interface {
	// Kind names the design ("radix", "ech", "hdc", "ht").
	Kind() string
	// Walk performs a functional walk for va, listing the memory
	// accesses a hardware walker performs.
	Walk(va mem.VAddr) WalkResult
	// Lookup is a functional-only query (no walk steps).
	Lookup(va mem.VAddr) (Entry, bool)
	// Insert maps the page containing va.
	Insert(va mem.VAddr, e Entry, k instrument.KernelMem) error
	// Remove unmaps the page containing va, returning the old entry.
	Remove(va mem.VAddr, k instrument.KernelMem) (Entry, bool)
	// Update rewrites an existing mapping in place (e.g., marking a PTE
	// swapped); returns false if absent.
	Update(va mem.VAddr, e Entry, k instrument.KernelMem) bool
	// MappedPages returns the number of live translations.
	MappedPages() uint64
	// MemFootprintBytes returns the physical memory consumed by the
	// structure itself.
	MemFootprintBytes() uint64
}

// ErrOutOfMemory is returned when the frame allocator is exhausted.
type ErrOutOfMemory struct{ What string }

func (e ErrOutOfMemory) Error() string { return "pagetable: out of memory allocating " + e.What }
