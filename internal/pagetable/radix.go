package pagetable

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/recycle"
)

// Radix is the x86-64 4-level radix page table (Table 4's "Radix"
// baseline): PML4 → PDPT → PD → PT, 512 entries of 8 B per 4 KB node,
// with 1 GB leaves at the PDPT level and 2 MB leaves at the PD level.
// Node frames come from the slab allocator on demand, so building deep
// paths during page faults costs kernel memory accesses — the reason
// radix insertion is slower than hash-table insertion in Fig. 15.
type Radix struct {
	alloc  FrameAllocator
	root   *radixNode
	nodes  uint64
	pages  uint64
	ents   entryArena
	narena nodeArena
}

type radixNode struct {
	frame    mem.PAddr
	children [512]*radixNode // interior
	entries  [512]*Entry     // leaves at any level (1GB/2MB/4KB)
}

// entryArena hands out *Entry values from fixed-capacity chunks with a
// freelist, so steady-state fault handling (map page, later unmap)
// recycles entries instead of allocating one per mapped page. Chunks
// are append-only and never grown, so handed-out pointers stay valid.
type entryArena struct {
	chunks [][]Entry
	freel  []*Entry
	pool   *recycle.Pool
}

const entryChunk = 512

// Pool keys for recycled arena chunks. A recycled chunk is truncated to
// length zero with its capacity scrubbed, and get() writes the full
// element value on append, so reuse is equivalent to a fresh make.
const (
	entChunkKey  = "pagetable.radix.entchunk"
	nodeChunkKey = "pagetable.radix.nodechunk"
)

func (a *entryArena) grow() {
	if c, ok := a.pool.Take(entChunkKey); ok {
		a.chunks = append(a.chunks, c.([]Entry))
		return
	}
	a.chunks = append(a.chunks, make([]Entry, 0, entryChunk))
}

func (a *entryArena) get(e Entry) *Entry {
	if n := len(a.freel); n > 0 {
		p := a.freel[n-1]
		a.freel = a.freel[:n-1]
		*p = e
		return p
	}
	if len(a.chunks) == 0 || len(a.chunks[len(a.chunks)-1]) == entryChunk {
		a.grow()
	}
	c := &a.chunks[len(a.chunks)-1]
	*c = append(*c, e)
	return &(*c)[len(*c)-1]
}

func (a *entryArena) put(p *Entry) { a.freel = append(a.freel, p) }

// nodeArena batches radixNode allocations; nodes are never reclaimed
// within a process lifetime (Linux defers PT reclamation too), so no
// freelist is needed.
type nodeArena struct {
	chunks [][]radixNode
	pool   *recycle.Pool
}

const nodeChunk = 32

func (a *nodeArena) grow() {
	if c, ok := a.pool.Take(nodeChunkKey); ok {
		a.chunks = append(a.chunks, c.([]radixNode))
		return
	}
	a.chunks = append(a.chunks, make([]radixNode, 0, nodeChunk))
}

func (a *nodeArena) get(frame mem.PAddr) *radixNode {
	if len(a.chunks) == 0 || len(a.chunks[len(a.chunks)-1]) == nodeChunk {
		a.grow()
	}
	c := &a.chunks[len(a.chunks)-1]
	*c = append(*c, radixNode{frame: frame})
	return &(*c)[len(*c)-1]
}

// NewRadix builds an empty radix table; the root frame is allocated
// immediately (as the kernel does for a new mm_struct).
func NewRadix(alloc FrameAllocator) *Radix { return NewRadixWith(alloc, nil) }

// NewRadixWith is NewRadix drawing arena chunks from pool (nil pool =
// plain NewRadix).
func NewRadixWith(alloc FrameAllocator, pool *recycle.Pool) *Radix {
	r := &Radix{alloc: alloc}
	r.ents.pool = pool
	r.narena.pool = pool
	frame, ok := alloc.AllocFrame()
	if !ok {
		panic("pagetable: cannot allocate radix root")
	}
	r.root = r.narena.get(frame)
	r.nodes = 1
	return r
}

// Recycle hands the table's arena chunks back to pool, scrubbed to
// their empty state. The table must not be used afterwards.
func (r *Radix) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	for _, c := range r.ents.chunks {
		c = c[:cap(c)]
		clear(c)
		pool.Give(entChunkKey, c[:0])
	}
	for _, c := range r.narena.chunks {
		c = c[:cap(c)]
		clear(c)
		pool.Give(nodeChunkKey, c[:0])
	}
	r.ents = entryArena{}
	r.narena = nodeArena{}
	r.root = nil
}

// Kind implements PageTable.
func (r *Radix) Kind() string { return "radix" }

// indices returns the PML4/PDPT/PD/PT indices of va.
func indices(va mem.VAddr) [4]int {
	return [4]int{
		int(uint64(va) >> 39 & 0x1ff), // level 4
		int(uint64(va) >> 30 & 0x1ff), // level 3
		int(uint64(va) >> 21 & 0x1ff), // level 2
		int(uint64(va) >> 12 & 0x1ff), // level 1
	}
}

func pteAddr(node *radixNode, idx int) mem.PAddr {
	return node.frame + mem.PAddr(idx*8)
}

// Walk implements PageTable.
func (r *Radix) Walk(va mem.VAddr) WalkResult {
	var out WalkResult
	idx := indices(va)
	node := r.root
	for level := 0; level < 4; level++ {
		pa := pteAddr(node, idx[level])
		out.push(pa, 4-level)
		if e := node.entries[idx[level]]; e != nil {
			out.Entry = *e
			out.Found = true
			return out
		}
		child := node.children[idx[level]]
		if child == nil {
			return out // not mapped: fault after this access
		}
		node = child
	}
	return out
}

// Lookup implements PageTable.
func (r *Radix) Lookup(va mem.VAddr) (Entry, bool) {
	idx := indices(va)
	node := r.root
	for level := 0; level < 4; level++ {
		if e := node.entries[idx[level]]; e != nil {
			return *e, true
		}
		node = node.children[idx[level]]
		if node == nil {
			return Entry{}, false
		}
	}
	return Entry{}, false
}

func leafDepth(s mem.PageSize) int {
	switch s {
	case mem.Page1G:
		return 1 // entry lives in the PDPT (second access)
	case mem.Page2M:
		return 2
	default:
		return 3
	}
}

// Insert implements PageTable. Intermediate nodes are allocated from the
// slab; each traversed or written PTE is reported to k.
func (r *Radix) Insert(va mem.VAddr, e Entry, k instrument.KernelMem) error {
	idx := indices(va)
	depth := leafDepth(e.Size)
	node := r.root
	for level := 0; level < depth; level++ {
		k.Load(pteAddr(node, idx[level]))
		child := node.children[idx[level]]
		if child == nil {
			frame, ok := r.alloc.AllocFrame()
			if !ok {
				return ErrOutOfMemory{What: "radix node"}
			}
			child = r.narena.get(frame)
			node.children[idx[level]] = child
			r.nodes++
			k.ALU(24) // slab fast path: freelist pop, frame init
			k.Store(pteAddr(node, idx[level]))
		}
		node = child
	}
	if old := node.entries[idx[depth]]; old != nil {
		*old = e
	} else {
		r.pages++
		node.entries[idx[depth]] = r.ents.get(e)
	}
	k.Store(pteAddr(node, idx[depth]))
	return nil
}

// Update implements PageTable.
func (r *Radix) Update(va mem.VAddr, e Entry, k instrument.KernelMem) bool {
	node, idx, ok := r.findLeaf(va)
	if !ok {
		return false
	}
	*node.entries[idx] = e
	k.Store(pteAddr(node, idx))
	return true
}

// Remove implements PageTable. Empty interior nodes are not reclaimed
// eagerly (as in Linux, where PT reclamation is deferred).
func (r *Radix) Remove(va mem.VAddr, k instrument.KernelMem) (Entry, bool) {
	node, idx, ok := r.findLeaf(va)
	if !ok {
		return Entry{}, false
	}
	old := *node.entries[idx]
	r.ents.put(node.entries[idx])
	node.entries[idx] = nil
	r.pages--
	k.Store(pteAddr(node, idx))
	return old, true
}

func (r *Radix) findLeaf(va mem.VAddr) (*radixNode, int, bool) {
	idx := indices(va)
	node := r.root
	for level := 0; level < 4; level++ {
		if node.entries[idx[level]] != nil {
			return node, idx[level], true
		}
		node = node.children[idx[level]]
		if node == nil {
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// MappedPages implements PageTable.
func (r *Radix) MappedPages() uint64 { return r.pages }

// MemFootprintBytes implements PageTable.
func (r *Radix) MemFootprintBytes() uint64 { return r.nodes * 4 * mem.KB }

// Nodes returns the number of allocated page-table frames.
func (r *Radix) Nodes() uint64 { return r.nodes }
