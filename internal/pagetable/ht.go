package pagetable

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/xrand"
)

// HT is a chained hash page table in the PowerPC HTAB tradition (Table 4:
// "4 GB; Chain Table; 8 PTEs/entry"): a global bucket array where each
// bucket holds a PTE group of 8 translations, with overflow groups
// chained through slab-allocated nodes. Walks are one access in the
// common case plus one per chain hop.
type HT struct {
	sub   [2]*htTable
	pages uint64
}

const htGroupPTEs = 8

type htNode struct {
	pa      mem.PAddr
	vpns    [htGroupPTEs]uint64
	entries [htGroupPTEs]Entry
	used    [htGroupPTEs]bool
	n       int
	next    *htNode
}

type htTable struct {
	alloc         FrameAllocator
	pageSize      mem.PageSize
	base          mem.PAddr
	buckets       uint64
	seed          uint64
	heads         map[uint64]*htNode
	ChainHops     uint64
	Lookups       uint64
	OverflowNodes uint64
}

func newHTTable(alloc FrameAllocator, ps mem.PageSize, tableBytes uint64) *htTable {
	pages := tableBytes / (4 * mem.KB)
	base, ok := alloc.AllocContig(pages, 512)
	if !ok {
		panic("pagetable: cannot allocate HT table")
	}
	return &htTable{
		alloc:    alloc,
		pageSize: ps,
		base:     base,
		buckets:  tableBytes / mem.CacheLineBytes,
		seed:     0xC4A12 ^ uint64(ps),
		heads:    make(map[uint64]*htNode),
	}
}

func (t *htTable) bucketOf(vpn uint64) uint64 { return xrand.Hash64(vpn, t.seed) % t.buckets }

func (t *htTable) bucketPA(b uint64) mem.PAddr {
	return t.base + mem.PAddr(b*mem.CacheLineBytes)
}

// find walks the chain for vpn; out (optional) records probed node
// addresses.
func (t *htTable) find(vpn uint64, out *WalkResult) (*htNode, int, bool) {
	t.Lookups++
	b := t.bucketOf(vpn)
	node := t.heads[b]
	if out != nil {
		out.push(t.bucketPA(b), 0)
	}
	first := true
	for node != nil {
		if !first {
			t.ChainHops++
			if out != nil {
				out.push(node.pa, 0)
			}
		}
		for i := 0; i < htGroupPTEs; i++ {
			if node.used[i] && node.vpns[i] == vpn {
				return node, i, true
			}
		}
		node = node.next
		first = false
	}
	return nil, 0, false
}

func (t *htTable) insert(vpn uint64, e Entry, k instrument.KernelMem) bool {
	b := t.bucketOf(vpn)
	k.Load(t.bucketPA(b))
	head := t.heads[b]
	var freeNode *htNode
	freeIdx := -1
	for node := head; node != nil; node = node.next {
		if node != head {
			k.Load(node.pa)
		}
		for i := 0; i < htGroupPTEs; i++ {
			if node.used[i] && node.vpns[i] == vpn {
				node.entries[i] = e
				k.Store(node.pa)
				return false // updated in place
			}
			if !node.used[i] && freeNode == nil {
				freeNode, freeIdx = node, i
			}
		}
	}
	if freeNode == nil {
		// The head group lives in the bucket array itself; overflow
		// groups come from the slab.
		var pa mem.PAddr
		if head == nil {
			pa = t.bucketPA(b)
		} else {
			fp, ok := t.alloc.AllocFrame()
			if !ok {
				panic("pagetable: HT out of memory for overflow node")
			}
			pa = fp
			t.OverflowNodes++
			k.ALU(24) // slab allocation
		}
		freeNode = &htNode{pa: pa, next: head}
		t.heads[b] = freeNode
		freeIdx = 0
	}
	freeNode.vpns[freeIdx] = vpn
	freeNode.entries[freeIdx] = e
	freeNode.used[freeIdx] = true
	freeNode.n++
	k.Store(freeNode.pa)
	return true
}

// NewHT builds the 4 GB chained hash table.
func NewHT(alloc FrameAllocator, tableBytes uint64) *HT {
	if tableBytes == 0 {
		tableBytes = 4 * mem.GB
	}
	return &HT{sub: [2]*htTable{
		newHTTable(alloc, mem.Page4K, tableBytes*7/8),
		newHTTable(alloc, mem.Page2M, tableBytes/8),
	}}
}

// Kind implements PageTable.
func (p *HT) Kind() string { return "ht" }

func (p *HT) tableFor(s mem.PageSize) *htTable {
	if s == mem.Page2M {
		return p.sub[1]
	}
	return p.sub[0]
}

// Walk implements PageTable.
func (p *HT) Walk(va mem.VAddr) WalkResult {
	var out WalkResult
	for _, t := range []*htTable{p.sub[1], p.sub[0]} {
		vpn := t.pageSize.VPN(va)
		if _, _, ok := t.find(vpn, nil); ok {
			node, i, _ := t.find(vpn, &out)
			out.Entry = node.entries[i]
			out.Found = true
			return out
		}
	}
	p.sub[0].find(mem.Page4K.VPN(va), &out)
	return out
}

// Lookup implements PageTable.
func (p *HT) Lookup(va mem.VAddr) (Entry, bool) {
	for _, t := range []*htTable{p.sub[1], p.sub[0]} {
		if node, i, ok := t.find(t.pageSize.VPN(va), nil); ok {
			return node.entries[i], true
		}
	}
	return Entry{}, false
}

// Insert implements PageTable.
func (p *HT) Insert(va mem.VAddr, e Entry, k instrument.KernelMem) error {
	if e.Size == mem.Page1G {
		return ErrOutOfMemory{What: "1GB pages unsupported by HT"}
	}
	t := p.tableFor(e.Size)
	if t.insert(t.pageSize.VPN(va), e, k) {
		p.pages++
	}
	return nil
}

// Update implements PageTable.
func (p *HT) Update(va mem.VAddr, e Entry, k instrument.KernelMem) bool {
	t := p.tableFor(e.Size)
	node, i, ok := t.find(t.pageSize.VPN(va), nil)
	if !ok {
		return false
	}
	node.entries[i] = e
	k.Store(node.pa)
	return true
}

// Remove implements PageTable.
func (p *HT) Remove(va mem.VAddr, k instrument.KernelMem) (Entry, bool) {
	for _, t := range []*htTable{p.sub[1], p.sub[0]} {
		vpn := t.pageSize.VPN(va)
		if node, i, ok := t.find(vpn, nil); ok {
			old := node.entries[i]
			node.used[i] = false
			node.n--
			p.pages--
			k.Store(node.pa)
			return old, true
		}
	}
	return Entry{}, false
}

// MappedPages implements PageTable.
func (p *HT) MappedPages() uint64 { return p.pages }

// MemFootprintBytes implements PageTable.
func (p *HT) MemFootprintBytes() uint64 {
	b := (p.sub[0].buckets + p.sub[1].buckets) * mem.CacheLineBytes
	b += (p.sub[0].OverflowNodes + p.sub[1].OverflowNodes) * 4 * mem.KB
	return b
}
