package pagetable

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/xrand"
)

// HDC is the open-addressing hashed page table of Yaniv & Tsafrir
// ("Hash, Don't Cache (the page table)", SIGMETRICS'16): a single global
// table (4 GB in Table 4) of 64-byte buckets, each holding a cluster of
// 8 PTEs for 8 consecutive virtual pages. A walk hashes the cluster VPN
// and probes linearly — one memory access in the common case, which is
// why HDC both shortens walks (Fig. 13) and reduces DRAM row-buffer
// conflicts (Fig. 14) relative to radix.
type HDC struct {
	sub   [2]*hdcTable // 4K, 2M
	pages uint64
}

const hdcClusterPTEs = 8

type hdcCluster struct {
	cvpn    uint64
	used    [hdcClusterPTEs]bool
	entries [hdcClusterPTEs]Entry
	n       int
}

type hdcTable struct {
	pageSize mem.PageSize
	base     mem.PAddr
	buckets  uint64
	seed     uint64
	// slotTo maps probe-slot index -> cluster stored there.
	slotTo map[uint64]*hdcCluster
	// clusterSlot maps cluster VPN -> probe-slot index.
	clusterSlot map[uint64]uint64
	Probes      uint64
	Lookups     uint64
}

func newHDCTable(alloc FrameAllocator, ps mem.PageSize, tableBytes uint64) *hdcTable {
	pages := tableBytes / (4 * mem.KB)
	base, ok := alloc.AllocContig(pages, 512)
	if !ok {
		panic("pagetable: cannot allocate HDC table")
	}
	return &hdcTable{
		pageSize:    ps,
		base:        base,
		buckets:     tableBytes / mem.CacheLineBytes,
		seed:        0xD0C5EED ^ uint64(ps),
		slotTo:      make(map[uint64]*hdcCluster),
		clusterSlot: make(map[uint64]uint64),
	}
}

func (t *hdcTable) slotPA(slot uint64) mem.PAddr {
	return t.base + mem.PAddr(slot*mem.CacheLineBytes)
}

func (t *hdcTable) home(cvpn uint64) uint64 {
	return xrand.Hash64(cvpn, t.seed) % t.buckets
}

// find returns the cluster and probe count; out (optional) records the
// probed bucket addresses.
func (t *hdcTable) find(cvpn uint64, out *WalkResult) (*hdcCluster, bool) {
	t.Lookups++
	slot := t.home(cvpn)
	for i := uint64(0); i < t.buckets; i++ {
		s := (slot + i) % t.buckets
		t.Probes++
		if out != nil {
			out.push(t.slotPA(s), 0)
		}
		c, occupied := t.slotTo[s]
		if !occupied {
			return nil, false // open slot terminates the probe sequence
		}
		if c.cvpn == cvpn {
			return c, true
		}
	}
	return nil, false
}

func (t *hdcTable) findOrCreate(cvpn uint64, k instrument.KernelMem) *hdcCluster {
	slot := t.home(cvpn)
	for i := uint64(0); ; i++ {
		s := (slot + i) % t.buckets
		k.Load(t.slotPA(s))
		c, occupied := t.slotTo[s]
		if occupied && c.cvpn == cvpn {
			return c
		}
		if !occupied {
			c = &hdcCluster{cvpn: cvpn}
			t.slotTo[s] = c
			t.clusterSlot[cvpn] = s
			return c
		}
	}
}

// NewHDC builds the 4 GB global open-addressing table (split between the
// 4 KB and 2 MB page sizes, probed after perfect page-size resolution).
func NewHDC(alloc FrameAllocator, tableBytes uint64) *HDC {
	if tableBytes == 0 {
		tableBytes = 4 * mem.GB
	}
	return &HDC{sub: [2]*hdcTable{
		newHDCTable(alloc, mem.Page4K, tableBytes*7/8),
		newHDCTable(alloc, mem.Page2M, tableBytes/8),
	}}
}

// Kind implements PageTable.
func (p *HDC) Kind() string { return "hdc" }

func (p *HDC) tableFor(s mem.PageSize) *hdcTable {
	if s == mem.Page2M {
		return p.sub[1]
	}
	return p.sub[0]
}

func clusterKey(t *hdcTable, va mem.VAddr) (cvpn uint64, idx int) {
	vpn := t.pageSize.VPN(va)
	return vpn / hdcClusterPTEs, int(vpn % hdcClusterPTEs)
}

// Walk implements PageTable.
func (p *HDC) Walk(va mem.VAddr) WalkResult {
	var out WalkResult
	for _, t := range []*hdcTable{p.sub[1], p.sub[0]} {
		cvpn, idx := clusterKey(t, va)
		if c, ok := t.find(cvpn, nil); ok && c.used[idx] {
			t.find(cvpn, &out)
			out.Entry = c.entries[idx]
			out.Found = true
			return out
		}
	}
	// Miss: the walker probes the 4K table before faulting.
	cvpn, _ := clusterKey(p.sub[0], va)
	p.sub[0].find(cvpn, &out)
	return out
}

// Lookup implements PageTable.
func (p *HDC) Lookup(va mem.VAddr) (Entry, bool) {
	for _, t := range []*hdcTable{p.sub[1], p.sub[0]} {
		cvpn, idx := clusterKey(t, va)
		if c, ok := t.find(cvpn, nil); ok && c.used[idx] {
			return c.entries[idx], true
		}
	}
	return Entry{}, false
}

// Insert implements PageTable.
func (p *HDC) Insert(va mem.VAddr, e Entry, k instrument.KernelMem) error {
	if e.Size == mem.Page1G {
		return ErrOutOfMemory{What: "1GB pages unsupported by HDC"}
	}
	t := p.tableFor(e.Size)
	cvpn, idx := clusterKey(t, va)
	c := t.findOrCreate(cvpn, k)
	if !c.used[idx] {
		c.n++
		p.pages++
	}
	c.used[idx] = true
	c.entries[idx] = e
	k.Store(t.slotPA(t.clusterSlot[cvpn]))
	return nil
}

// Update implements PageTable.
func (p *HDC) Update(va mem.VAddr, e Entry, k instrument.KernelMem) bool {
	t := p.tableFor(e.Size)
	cvpn, idx := clusterKey(t, va)
	c, ok := t.find(cvpn, nil)
	if !ok || !c.used[idx] {
		return false
	}
	c.entries[idx] = e
	k.Store(t.slotPA(t.clusterSlot[cvpn]))
	return true
}

// Remove implements PageTable.
func (p *HDC) Remove(va mem.VAddr, k instrument.KernelMem) (Entry, bool) {
	for _, t := range []*hdcTable{p.sub[1], p.sub[0]} {
		cvpn, idx := clusterKey(t, va)
		if c, ok := t.find(cvpn, nil); ok && c.used[idx] {
			old := c.entries[idx]
			c.used[idx] = false
			c.n--
			p.pages--
			k.Store(t.slotPA(t.clusterSlot[cvpn]))
			// Clusters are not compacted on emptiness (tombstone-free
			// deletion would break linear probing); matching HDC's design.
			return old, true
		}
	}
	return Entry{}, false
}

// MappedPages implements PageTable.
func (p *HDC) MappedPages() uint64 { return p.pages }

// MemFootprintBytes implements PageTable.
func (p *HDC) MemFootprintBytes() uint64 {
	return (p.sub[0].buckets + p.sub[1].buckets) * mem.CacheLineBytes
}
