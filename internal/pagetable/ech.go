package pagetable

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/xrand"
)

// ECH is an Elastic Cuckoo Hash page table (Skarlatos et al., ASPLOS'20):
// d independent ways (nests), each a physically contiguous array of
// 8-byte entries indexed by a per-way hash of the VPN. A walk probes the
// nests in order until it finds the translation — one memory access per
// probed nest, which is why ECH raises DRAM interference in Fig. 14 —
// while a perfect cuckoo-walk cache (the paper's configuration) resolves
// the page size so only the correct per-size table is probed.
//
// The table is *elastic*: when occupancy passes the threshold it doubles,
// and entries migrate gradually (a few per insert), so lookups during
// migration probe both generations — the hash-collision pathology that
// makes ECH slower on RND in Fig. 15.
type ECH struct {
	alloc  FrameAllocator
	tables [2]*cuckooTable // 4K, 2M
	pages  uint64
}

const (
	echWays         = 4
	echInitSlots    = 8 << 10 // 8K entries/way (Table 4)
	echMaxKicks     = 16
	echLoadFactor   = 0.6
	echMigratePerOp = 8
)

type cuckooSlot struct {
	vpn  uint64
	e    Entry
	used bool
}

type cuckooArray struct {
	slots [][]cuckooSlot // [way][index]
	base  []mem.PAddr    // physical base per way
	size  uint64
	used  uint64
	seeds [echWays]uint64

	// Orphan entry displaced by a failed insert (resolved by resize).
	orphanVPN uint64
	orphanE   Entry
	hasOrphan bool
}

type cuckooTable struct {
	alloc      FrameAllocator
	pageSize   mem.PageSize
	cur        *cuckooArray
	old        *cuckooArray // non-nil during gradual migration
	oldWay     int
	oldPos     uint64
	Resizes    uint64
	Kicks      uint64
	Migrations uint64
}

func newCuckooArray(alloc FrameAllocator, size uint64, gen uint64) *cuckooArray {
	a := &cuckooArray{size: size}
	a.slots = make([][]cuckooSlot, echWays)
	a.base = make([]mem.PAddr, echWays)
	for w := 0; w < echWays; w++ {
		a.slots[w] = make([]cuckooSlot, size)
		pages := mem.AlignUp(size*8, 4*mem.KB) / (4 * mem.KB)
		pa, ok := alloc.AllocContig(pages, 1)
		if !ok {
			panic("pagetable: cannot allocate ECH way")
		}
		a.base[w] = pa
		a.seeds[w] = xrand.Hash64(uint64(w)+gen*16+1, 0xEC4)
	}
	return a
}

func (a *cuckooArray) idx(way int, vpn uint64) uint64 {
	return xrand.Hash64(vpn, a.seeds[way]) % a.size
}

func (a *cuckooArray) slotPA(way int, idx uint64) mem.PAddr {
	return a.base[way] + mem.PAddr(idx*8)
}

func newCuckooTable(alloc FrameAllocator, ps mem.PageSize) *cuckooTable {
	return &cuckooTable{alloc: alloc, pageSize: ps, cur: newCuckooArray(alloc, echInitSlots, 0)}
}

// lookup returns the entry for vpn, recording each probed nest in steps.
func (t *cuckooTable) lookup(vpn uint64, out *WalkResult) (Entry, bool) {
	for w := 0; w < echWays; w++ {
		i := t.cur.idx(w, vpn)
		if out != nil {
			out.push(t.cur.slotPA(w, i), 0)
		}
		s := &t.cur.slots[w][i]
		if s.used && s.vpn == vpn {
			return s.e, true
		}
	}
	if t.old != nil {
		for w := 0; w < echWays; w++ {
			i := t.old.idx(w, vpn)
			if out != nil {
				out.push(t.old.slotPA(w, i), 0)
			}
			s := &t.old.slots[w][i]
			if s.used && s.vpn == vpn {
				return s.e, true
			}
		}
	}
	return Entry{}, false
}

// insert places (vpn,e), cuckoo-kicking as needed; returns false if a
// resize is required.
func (a *cuckooArray) insert(vpn uint64, e Entry, k instrument.KernelMem, kicks *uint64) bool {
	cvpn, ce := vpn, e
	way := int(vpn % echWays)
	for kick := 0; kick <= echMaxKicks; kick++ {
		// Probe all ways for a free slot or an existing mapping first.
		for w := 0; w < echWays; w++ {
			i := a.idx(w, cvpn)
			s := &a.slots[w][i]
			k.Load(a.slotPA(w, i))
			if s.used && s.vpn == cvpn {
				s.e = ce
				k.Store(a.slotPA(w, i))
				return true
			}
			if !s.used {
				*s = cuckooSlot{vpn: cvpn, e: ce, used: true}
				a.used++
				k.Store(a.slotPA(w, i))
				return true
			}
		}
		// All ways occupied: evict from the rotating way and re-place.
		i := a.idx(way, cvpn)
		s := &a.slots[way][i]
		evVPN, evE := s.vpn, s.e
		*s = cuckooSlot{vpn: cvpn, e: ce, used: true}
		k.Store(a.slotPA(way, i))
		cvpn, ce = evVPN, evE
		way = (way + 1) % echWays
		*kicks++
	}
	// Failed after max kicks: put the displaced entry back is impossible
	// without loss, so signal resize; caller re-inserts the orphan.
	a.orphanVPN, a.orphanE, a.hasOrphan = cvpn, ce, true
	return false
}

// remove deletes vpn, returning the old entry.
func (t *cuckooTable) remove(vpn uint64, k instrument.KernelMem) (Entry, bool) {
	for _, a := range []*cuckooArray{t.cur, t.old} {
		if a == nil {
			continue
		}
		for w := 0; w < echWays; w++ {
			i := a.idx(w, vpn)
			s := &a.slots[w][i]
			k.Load(a.slotPA(w, i))
			if s.used && s.vpn == vpn {
				old := s.e
				*s = cuckooSlot{}
				a.used--
				k.Store(a.slotPA(w, i))
				return old, true
			}
		}
	}
	return Entry{}, false
}

// migrateSome moves up to n entries from the old generation into the
// current one (gradual resizing).
func (t *cuckooTable) migrateSome(n int, k instrument.KernelMem) {
	for moved := 0; t.old != nil && moved < n; {
		if t.oldPos >= t.old.size {
			t.oldPos = 0
			t.oldWay++
			if t.oldWay >= echWays {
				t.old = nil // migration complete
				break
			}
			continue
		}
		s := &t.old.slots[t.oldWay][t.oldPos]
		if s.used {
			var kicks uint64
			t.cur.insert(s.vpn, s.e, k, &kicks)
			t.Kicks += kicks
			s.used = false
			t.old.used--
			moved++
			t.Migrations++
		}
		t.oldPos++
	}
}

func (t *cuckooTable) resize(k instrument.KernelMem) {
	// Finish any in-flight migration synchronously first.
	for t.old != nil {
		t.migrateSome(1024, k)
	}
	t.Resizes++
	t.old = t.cur
	t.oldWay, t.oldPos = 0, 0
	t.cur = newCuckooArray(t.alloc, t.old.size*2, t.Resizes)
	k.ALU(256) // table allocation + bookkeeping
}

func (t *cuckooTable) insert(vpn uint64, e Entry, k instrument.KernelMem) {
	t.migrateSome(echMigratePerOp, k)
	if float64(t.cur.used) > echLoadFactor*float64(t.cur.size*echWays) && t.old == nil {
		t.resize(k)
	}
	for {
		var kicks uint64
		ok := t.cur.insert(vpn, e, k, &kicks)
		t.Kicks += kicks
		if ok {
			return
		}
		t.resize(k)
		vpn, e = t.cur.orphanVPN, t.cur.orphanE
		// orphan came from the pre-resize generation, which resize() just
		// made t.old; its counters were already adjusted by insert().
	}
}

// NewECH builds an elastic cuckoo page table supporting 4 KB and 2 MB
// pages (one cuckoo table per size, probed after perfect page-size
// resolution per the Table 4 cuckoo-walk-cache configuration).
func NewECH(alloc FrameAllocator) *ECH {
	return &ECH{
		alloc: alloc,
		tables: [2]*cuckooTable{
			newCuckooTable(alloc, mem.Page4K),
			newCuckooTable(alloc, mem.Page2M),
		},
	}
}

// Kind implements PageTable.
func (p *ECH) Kind() string { return "ech" }

func (p *ECH) tableFor(s mem.PageSize) *cuckooTable {
	if s == mem.Page2M {
		return p.tables[1]
	}
	return p.tables[0]
}

// Walk implements PageTable: the hardware cuckoo walker probes *all*
// nests of the table in parallel (the page size is resolved by the
// perfect CWC), so every walk touches one line per nest — low latency
// (max of the parallel accesses, applied by the HashWalker), high memory
// traffic (the Fig. 14 row-buffer interference).
func (p *ECH) Walk(va mem.VAddr) WalkResult {
	var out WalkResult
	// The CWC resolves the page size: find which table holds it.
	for _, t := range []*cuckooTable{p.tables[1], p.tables[0]} {
		vpn := t.pageSize.VPN(va)
		if e, ok := t.lookup(vpn, nil); ok {
			t.pushAllNests(vpn, &out)
			out.Entry = e
			out.Found = true
			return out
		}
	}
	// Miss: the walker probes the 4K nests before raising the fault.
	p.tables[0].pushAllNests(mem.Page4K.VPN(va), &out)
	return out
}

// pushAllNests records the parallel probe set for vpn: one slot per way
// of the current generation, plus the old generation during migration.
func (t *cuckooTable) pushAllNests(vpn uint64, out *WalkResult) {
	for w := 0; w < echWays; w++ {
		out.push(t.cur.slotPA(w, t.cur.idx(w, vpn)), 0)
	}
	if t.old != nil {
		for w := 0; w < echWays; w++ {
			out.push(t.old.slotPA(w, t.old.idx(w, vpn)), 0)
		}
	}
}

// Lookup implements PageTable.
func (p *ECH) Lookup(va mem.VAddr) (Entry, bool) {
	for _, t := range []*cuckooTable{p.tables[1], p.tables[0]} {
		if e, ok := t.lookup(t.pageSize.VPN(va), nil); ok {
			return e, true
		}
	}
	return Entry{}, false
}

// Insert implements PageTable.
func (p *ECH) Insert(va mem.VAddr, e Entry, k instrument.KernelMem) error {
	if e.Size == mem.Page1G {
		return ErrOutOfMemory{What: "1GB pages unsupported by ECH"}
	}
	t := p.tableFor(e.Size)
	vpn := t.pageSize.VPN(va)
	if _, exists := t.lookup(vpn, nil); !exists {
		p.pages++
	}
	t.insert(vpn, e, k)
	return nil
}

// Update implements PageTable.
func (p *ECH) Update(va mem.VAddr, e Entry, k instrument.KernelMem) bool {
	t := p.tableFor(e.Size)
	vpn := t.pageSize.VPN(va)
	if _, ok := t.lookup(vpn, nil); !ok {
		return false
	}
	t.insert(vpn, e, k)
	return true
}

// Remove implements PageTable.
func (p *ECH) Remove(va mem.VAddr, k instrument.KernelMem) (Entry, bool) {
	for _, t := range []*cuckooTable{p.tables[1], p.tables[0]} {
		if e, ok := t.remove(t.pageSize.VPN(va), k); ok {
			p.pages--
			return e, true
		}
	}
	return Entry{}, false
}

// MappedPages implements PageTable.
func (p *ECH) MappedPages() uint64 { return p.pages }

// MemFootprintBytes implements PageTable.
func (p *ECH) MemFootprintBytes() uint64 {
	var b uint64
	for _, t := range p.tables {
		b += t.cur.size * echWays * 8
		if t.old != nil {
			b += t.old.size * echWays * 8
		}
	}
	return b
}

// Resizes returns the total resize count across sub-tables (test hook).
func (p *ECH) Resizes() uint64 { return p.tables[0].Resizes + p.tables[1].Resizes }
