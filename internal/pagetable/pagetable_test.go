package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/xrand"
)

func newAlloc(t testing.TB) FrameAllocator {
	t.Helper()
	return phys.NewSlab(phys.New(512 * mem.MB))
}

func allDesigns(t testing.TB) map[string]PageTable {
	alloc := newAlloc(t)
	return map[string]PageTable{
		"radix": NewRadix(alloc),
		"ech":   NewECH(alloc),
		"hdc":   NewHDC(alloc, 16*mem.MB),
		"ht":    NewHT(alloc, 16*mem.MB),
	}
}

func TestInsertLookupRemoveAllDesigns(t *testing.T) {
	for name, pt := range allDesigns(t) {
		t.Run(name, func(t *testing.T) {
			k := instrument.NopMem{}
			va := mem.VAddr(0x7f00_1234_5000)
			e := Entry{Frame: 0xABC000, Size: mem.Page4K, Present: true, Writable: true}
			if err := pt.Insert(va, e, k); err != nil {
				t.Fatalf("insert: %v", err)
			}
			got, ok := pt.Lookup(va)
			if !ok || got.Frame != e.Frame {
				t.Fatalf("lookup = %+v, %v", got, ok)
			}
			// Lookup via a different offset in the same page.
			if _, ok := pt.Lookup(va + 0xfff); !ok {
				t.Fatal("same-page lookup failed")
			}
			if pt.MappedPages() != 1 {
				t.Fatalf("mapped pages = %d", pt.MappedPages())
			}
			old, ok := pt.Remove(va, k)
			if !ok || old.Frame != e.Frame {
				t.Fatalf("remove = %+v, %v", old, ok)
			}
			if _, ok := pt.Lookup(va); ok {
				t.Fatal("lookup after remove succeeded")
			}
		})
	}
}

func TestWalkFindsInserted(t *testing.T) {
	for name, pt := range allDesigns(t) {
		t.Run(name, func(t *testing.T) {
			k := instrument.NopMem{}
			va := mem.VAddr(0x5555_0000)
			pt.Insert(va, Entry{Frame: 0x1000_0000, Size: mem.Page4K, Present: true}, k)
			w := pt.Walk(va)
			if !w.Found || !w.Entry.Present {
				t.Fatalf("walk did not find entry: %+v", w)
			}
			if w.NSteps == 0 {
				t.Fatal("walk performed no memory accesses")
			}
			if w.Entry.Frame != 0x1000_0000 {
				t.Fatalf("walk frame = %x", w.Entry.Frame)
			}
		})
	}
}

func TestWalkMissReportsSteps(t *testing.T) {
	for name, pt := range allDesigns(t) {
		t.Run(name, func(t *testing.T) {
			w := pt.Walk(0xdead_beef_000)
			if w.Found {
				t.Fatal("walk of empty table found an entry")
			}
			if w.NSteps == 0 {
				t.Fatal("fault-path walk must still access memory")
			}
		})
	}
}

func TestHugePages(t *testing.T) {
	for name, pt := range allDesigns(t) {
		t.Run(name, func(t *testing.T) {
			k := instrument.NopMem{}
			base := mem.VAddr(0x4000_0000) // 2MB aligned
			pt.Insert(base, Entry{Frame: 0x8000_0000, Size: mem.Page2M, Present: true}, k)
			// Any address inside the 2MB page resolves.
			e, ok := pt.Lookup(base + 0x12345)
			if !ok || e.Size != mem.Page2M {
				t.Fatalf("huge lookup = %+v, %v", e, ok)
			}
		})
	}
}

func TestRadix1G(t *testing.T) {
	pt := NewRadix(newAlloc(t))
	k := instrument.NopMem{}
	base := mem.VAddr(0x40_0000_0000)
	if err := pt.Insert(base, Entry{Frame: 0x1_0000_0000, Size: mem.Page1G, Present: true}, k); err != nil {
		t.Fatal(err)
	}
	e, ok := pt.Lookup(base + 0x3fff_ffff)
	if !ok || e.Size != mem.Page1G {
		t.Fatalf("1G lookup = %+v %v", e, ok)
	}
	w := pt.Walk(base + 4096)
	if !w.Found || w.NSteps != 2 {
		t.Fatalf("1G walk steps = %d (want 2: PML4+PDPT)", w.NSteps)
	}
}

func TestRadixWalkStepsAreLeveled(t *testing.T) {
	pt := NewRadix(newAlloc(t))
	k := instrument.NopMem{}
	pt.Insert(0x1000, Entry{Frame: 0x2000, Size: mem.Page4K, Present: true}, k)
	w := pt.Walk(0x1000)
	if w.NSteps != 4 {
		t.Fatalf("4K walk steps = %d, want 4", w.NSteps)
	}
	for i, lv := range []int{4, 3, 2, 1} {
		if w.Steps[i].Level != lv {
			t.Fatalf("step %d level = %d, want %d", i, w.Steps[i].Level, lv)
		}
	}
}

func TestECHParallelProbeCount(t *testing.T) {
	pt := NewECH(newAlloc(t))
	k := instrument.NopMem{}
	pt.Insert(0x1000, Entry{Frame: 0x2000, Size: mem.Page4K, Present: true}, k)
	w := pt.Walk(0x1000)
	if w.NSteps != 4 {
		t.Fatalf("ECH probe count = %d, want 4 (one per nest)", w.NSteps)
	}
}

func TestECHElasticResize(t *testing.T) {
	pt := NewECH(newAlloc(t))
	k := instrument.NopMem{}
	// Exceed the initial capacity (8K entries/way * 4 ways * 0.6).
	n := uint64(30000)
	for i := uint64(0); i < n; i++ {
		va := mem.VAddr(i * 4096)
		if err := pt.Insert(va, Entry{Frame: mem.PAddr(i * 4096), Size: mem.Page4K, Present: true}, k); err != nil {
			t.Fatal(err)
		}
	}
	if pt.Resizes() == 0 {
		t.Fatal("expected at least one elastic resize")
	}
	// All entries must survive resizing + migration.
	rng := xrand.New(9)
	for j := 0; j < 2000; j++ {
		i := rng.Uint64n(n)
		e, ok := pt.Lookup(mem.VAddr(i * 4096))
		if !ok || e.Frame != mem.PAddr(i*4096) {
			t.Fatalf("entry %d lost after resize: %+v %v", i, e, ok)
		}
	}
	if pt.MappedPages() != n {
		t.Fatalf("mapped pages = %d, want %d", pt.MappedPages(), n)
	}
}

func TestHDCCollisionProbing(t *testing.T) {
	pt := NewHDC(newAlloc(t), 16*mem.MB)
	k := instrument.NopMem{}
	// Many inserts: collisions must still resolve correctly.
	for i := uint64(0); i < 20000; i++ {
		va := mem.VAddr(i * 4096)
		pt.Insert(va, Entry{Frame: mem.PAddr(0x10_0000_0000 + i*4096), Size: mem.Page4K, Present: true}, k)
	}
	for i := uint64(0); i < 20000; i += 997 {
		e, ok := pt.Lookup(mem.VAddr(i * 4096))
		if !ok || e.Frame != mem.PAddr(0x10_0000_0000+i*4096) {
			t.Fatalf("entry %d: %+v %v", i, e, ok)
		}
	}
}

func TestHTChaining(t *testing.T) {
	pt := NewHT(newAlloc(t), 16*mem.MB)
	k := instrument.NopMem{}
	for i := uint64(0); i < 30000; i++ {
		pt.Insert(mem.VAddr(i*4096), Entry{Frame: mem.PAddr(i * 4096), Size: mem.Page4K, Present: true}, k)
	}
	if pt.MappedPages() != 30000 {
		t.Fatalf("mapped = %d", pt.MappedPages())
	}
	for i := uint64(0); i < 30000; i += 1003 {
		if _, ok := pt.Lookup(mem.VAddr(i * 4096)); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
}

// TestQuickMirrorsMap property-tests all designs against a reference map
// over random insert/remove/update sequences.
func TestQuickMirrorsMap(t *testing.T) {
	for name, pt := range allDesigns(t) {
		pt := pt
		t.Run(name, func(t *testing.T) {
			k := instrument.NopMem{}
			ref := map[mem.VAddr]Entry{}
			f := func(ops []uint16) bool {
				for _, op := range ops {
					page := mem.VAddr(op%512) * 4096
					switch (op / 512) % 3 {
					case 0:
						e := Entry{Frame: mem.PAddr(op) * 4096, Size: mem.Page4K, Present: true}
						if pt.Insert(page, e, k) == nil {
							ref[page] = e
						}
					case 1:
						_, gotOK := pt.Remove(page, k)
						_, wantOK := ref[page]
						if gotOK != wantOK {
							return false
						}
						delete(ref, page)
					case 2:
						got, ok := pt.Lookup(page)
						want, wantOK := ref[page]
						if ok != wantOK {
							return false
						}
						if ok && got.Frame != want.Frame {
							return false
						}
					}
				}
				return pt.MappedPages() == uint64(len(ref))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
