package mmu

import (
	"repro/internal/mem"
	"repro/internal/tlb"
	"repro/internal/xrand"
)

// This file implements the remaining VirTool techniques of Table 2 as
// composable Design wrappers: software-managed TLBs, the part-of-memory
// TLB, TLB prefetching, page-size prediction, and Victima-style TLB
// entries in the data caches. Each wraps an inner Design and can stack.

// SWTLBDesign models a software-managed TLB (MIPS/SPARC tradition,
// Table 2's "Software-managed TLBs" [118]): an L2 TLB miss traps to a
// software refill handler whose cost (trap + lookup + TLB write) is
// charged before the inner translation resolves the mapping.
type SWTLBDesign struct {
	Inner     Design
	RefillLat uint64 // trap entry/exit + handler instructions
	Refills   uint64
}

// Name implements Design.
func (d *SWTLBDesign) Name() string { return "swtlb+" + d.Inner.Name() }

// TranslateMiss implements Design.
func (d *SWTLBDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	lat := d.RefillLat
	if lat == 0 {
		lat = 120 // typical software refill cost in cycles
	}
	d.Refills++
	res := d.Inner.TranslateMiss(va, now+lat)
	res.Lat += lat
	return res
}

// Invalidate implements Design.
func (d *SWTLBDesign) Invalidate(va mem.VAddr, size mem.PageSize) { d.Inner.Invalidate(va, size) }

// POMTLBDesign models a part-of-memory TLB (Ryoo et al., ISCA'17 [118]):
// a very large software-visible TLB stored in DRAM, consulted after the
// on-chip hierarchy misses and before a full walk.
type POMTLBDesign struct {
	Inner Design
	Mem   Memory
	Base  mem.PAddr
	// Entries is the number of 16-byte POM-TLB slots.
	Entries uint64

	content map[uint64]Result
	Hits    uint64
	Misses  uint64
}

// NewPOMTLB builds a part-of-memory TLB over inner.
func NewPOMTLB(inner Design, m Memory, base mem.PAddr, entries uint64) *POMTLBDesign {
	return &POMTLBDesign{Inner: inner, Mem: m, Base: base, Entries: entries, content: make(map[uint64]Result)}
}

// Name implements Design.
func (d *POMTLBDesign) Name() string { return "pom+" + d.Inner.Name() }

func (d *POMTLBDesign) slotPA(vpn uint64) mem.PAddr {
	return d.Base + mem.PAddr(xrand.Hash64(vpn, 0x90)%d.Entries*16)
}

// TranslateMiss implements Design.
func (d *POMTLBDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	vpn := mem.Page4K.VPN(va)
	// The POM-TLB lookup is a DRAM access (cacheable).
	lat := d.Mem.AccessMeta(d.slotPA(vpn), false, now)
	if r, ok := d.content[vpn]; ok {
		d.Hits++
		r.Lat = lat
		return r
	}
	d.Misses++
	res := d.Inner.TranslateMiss(va, now+lat)
	res.Lat += lat
	if !res.Fault {
		stored := res
		stored.PA = res.Size.FrameBase(res.PA) | mem.PAddr(mem.Page4K.Offset(va))
		// Store per-4K-page granularity for simplicity.
		d.content[vpn] = Result{PA: res.Size.Translate(res.PA, va), Size: res.Size}
		d.Mem.AccessMeta(d.slotPA(vpn), true, now+res.Lat)
	}
	return res
}

// Invalidate implements Design.
func (d *POMTLBDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	pages := size.Bytes() / (4 * mem.KB)
	base := mem.Page4K.VPN(size.PageBase(va))
	for i := uint64(0); i < pages; i++ {
		delete(d.content, base+i)
	}
	d.Inner.Invalidate(va, size)
}

// PrefetchDesign adds distance-based TLB prefetching (Table 2's "TLB
// prefetching [170]"): on a walk for page N, it walks page N+delta ahead
// of demand, filling a prefetch buffer.
type PrefetchDesign struct {
	Inner  Design
	Degree int

	buffer     *tlb.TLB
	lastVPN    uint64
	stride     int64
	conf       int
	Issued     uint64
	BufferHits uint64
}

// NewPrefetchDesign wraps inner with a TLB prefetcher.
func NewPrefetchDesign(inner Design, degree int) *PrefetchDesign {
	return &PrefetchDesign{
		Inner:  inner,
		Degree: degree,
		buffer: tlb.New("tlb-pf-buffer", 32, 4, 1, mem.Page4K, mem.Page2M),
	}
}

// Name implements Design.
func (d *PrefetchDesign) Name() string { return "tlbpf+" + d.Inner.Name() }

// TranslateMiss implements Design.
func (d *PrefetchDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	if e, ok := d.buffer.Lookup(va, 0); ok {
		d.BufferHits++
		return Result{PA: e.Size.Translate(e.Frame, va), Size: e.Size, Lat: d.buffer.Latency()}
	}
	res := d.Inner.TranslateMiss(va, now)

	// Distance predictor on the demand-miss VPN stream.
	vpn := mem.Page4K.VPN(va)
	delta := int64(vpn) - int64(d.lastVPN)
	if delta == d.stride && delta != 0 {
		if d.conf < 3 {
			d.conf++
		}
	} else {
		d.stride = delta
		d.conf = 0
	}
	d.lastVPN = vpn
	if d.conf >= 2 && !res.Fault {
		for i := 1; i <= d.Degree; i++ {
			nvpn := int64(vpn) + d.stride*int64(i)
			if nvpn <= 0 {
				break
			}
			pva := mem.VAddr(nvpn << 12)
			pres := d.Inner.TranslateMiss(pva, now+res.Lat) // latency off the critical path
			if pres.Fault {
				break
			}
			d.Issued++
			d.buffer.Insert(tlb.Entry{VPN: pres.Size.VPN(pva), Size: pres.Size, Frame: pres.Size.FrameBase(pres.PA)})
		}
	}
	return res
}

// Invalidate implements Design.
func (d *PrefetchDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	d.buffer.InvalidateVA(va, 0)
	d.Inner.Invalidate(va, size)
}

// SizePredictDesign models page-size prediction (Papadopoulou et al.,
// HPCA'15 [127]): a PC-indexed predictor guesses the page size before
// the split-L1 probe; a correct guess saves the second probe's cycle,
// a wrong one costs a re-probe. The MMU models L1 probes internally, so
// here the predictor adjusts the walk-entry latency.
type SizePredictDesign struct {
	Inner Design

	pred    map[uint64]mem.PageSize
	Correct uint64
	Wrong   uint64
}

// NewSizePredictDesign wraps inner with a size predictor.
func NewSizePredictDesign(inner Design) *SizePredictDesign {
	return &SizePredictDesign{Inner: inner, pred: make(map[uint64]mem.PageSize)}
}

// Name implements Design.
func (d *SizePredictDesign) Name() string { return "szpred+" + d.Inner.Name() }

// TranslateMiss implements Design.
func (d *SizePredictDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	key := uint64(va) >> 21 // region-grained prediction state
	res := d.Inner.TranslateMiss(va, now)
	if res.Fault {
		return res
	}
	if guess, ok := d.pred[key]; ok {
		if guess == res.Size {
			d.Correct++
			if res.Lat > 0 {
				res.Lat-- // saved probe
			}
		} else {
			d.Wrong++
			res.Lat += 2 // mispredicted probe replay
		}
	}
	d.pred[key] = res.Size
	return res
}

// Invalidate implements Design.
func (d *SizePredictDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	d.Inner.Invalidate(va, size)
}

// VictimaDesign models Victima-style TLB-entry storage in the data
// caches (Table 2's "TLB entries stored in data caches [175]"): L2 TLB
// victims are written into the cache hierarchy at a reserved region;
// before walking, the design probes that region — converting many walks
// into single cached accesses.
type VictimaDesign struct {
	Inner Design
	Mem   Memory
	Base  mem.PAddr

	content map[uint64]Result
	Hits    uint64
	Misses  uint64
}

// NewVictimaDesign wraps inner with cached-TLB-entry lookup.
func NewVictimaDesign(inner Design, m Memory, base mem.PAddr) *VictimaDesign {
	return &VictimaDesign{Inner: inner, Mem: m, Base: base, content: make(map[uint64]Result)}
}

// Name implements Design.
func (d *VictimaDesign) Name() string { return "victima+" + d.Inner.Name() }

func (d *VictimaDesign) linePA(vpn uint64) mem.PAddr {
	return d.Base + mem.PAddr(xrand.Hash64(vpn, 0x71C)%(1<<20))*64
}

// TranslateMiss implements Design.
func (d *VictimaDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	vpn := mem.Page4K.VPN(va)
	lat := d.Mem.AccessMeta(d.linePA(vpn), false, now)
	if r, ok := d.content[vpn]; ok {
		d.Hits++
		r.Lat = lat
		return r
	}
	d.Misses++
	res := d.Inner.TranslateMiss(va, now+lat)
	res.Lat += lat
	if !res.Fault {
		d.content[vpn] = Result{PA: res.Size.Translate(res.PA, va), Size: res.Size}
		d.Mem.AccessMeta(d.linePA(vpn), true, now+res.Lat)
	}
	return res
}

// Invalidate implements Design.
func (d *VictimaDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	pages := size.Bytes() / (4 * mem.KB)
	base := mem.Page4K.VPN(size.PageBase(va))
	for i := uint64(0); i < pages; i++ {
		delete(d.content, base+i)
	}
	d.Inner.Invalidate(va, size)
}
