package mmu

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/tlb"
)

// This file implements the memory-tagging and rich-abstraction entries of
// Table 2: Mondrian-style protection domains (Witchel et al., ASPLOS'02),
// XMem-style expressive memory attributes (Vijaykumar et al., ISCA'18),
// and the Virtual Block Interface (Hajinazar et al., ISCA'20).

// Perm is a Mondrian access permission.
type Perm uint8

// Permission values.
const (
	PermNone Perm = iota
	PermRead
	PermReadWrite
)

// Mondrian is a word/region-granular protection-domain table with a
// permission lookaside buffer (PLB): checks resolve from the PLB or by
// walking the in-memory permission trie (translation-metadata traffic).
type Mondrian struct {
	Mem  Memory
	Base mem.PAddr // permission-table storage

	regions []mondrianRegion
	plb     *tlb.MetaCache

	Checks  uint64
	PLBHits uint64
	Walks   uint64
	Denials uint64
}

type mondrianRegion struct {
	start, end mem.VAddr
	perm       Perm
}

// NewMondrian builds an empty protection-domain table.
func NewMondrian(m Memory, base mem.PAddr) *Mondrian {
	return &Mondrian{Mem: m, Base: base, plb: tlb.NewMetaCache("PLB", 64, 1)}
}

// Protect sets the permission for [start, end).
func (md *Mondrian) Protect(start, end mem.VAddr, p Perm) {
	md.regions = append(md.regions, mondrianRegion{start, end, p})
	sort.Slice(md.regions, func(i, j int) bool { return md.regions[i].start < md.regions[j].start })
	// Permission changes invalidate cached PLB state (coarse flush, as
	// Mondrian's domain switches do).
	md.plb = tlb.NewMetaCache("PLB", 64, 1)
}

// Check validates an access, returning (allowed, latency).
func (md *Mondrian) Check(va mem.VAddr, write bool, now uint64) (bool, uint64) {
	md.Checks++
	key := uint64(va) >> 12
	lat := md.plb.Latency()
	var perm Perm
	if v, ok := md.plb.Lookup(key); ok {
		md.PLBHits++
		perm = Perm(v)
	} else {
		// Walk the permission trie: two metadata accesses (root + leaf).
		md.Walks++
		lat += md.Mem.AccessMeta(md.Base+mem.PAddr(key>>9*64), false, now+lat)
		lat += md.Mem.AccessMeta(md.Base+mem.PAddr(key*8), false, now+lat)
		perm = md.lookup(va)
		md.plb.Insert(key, uint64(perm))
	}
	ok := perm == PermReadWrite || (perm == PermRead && !write)
	if !ok {
		md.Denials++
	}
	return ok, lat
}

func (md *Mondrian) lookup(va mem.VAddr) Perm {
	i := sort.Search(len(md.regions), func(i int) bool { return md.regions[i].end > va })
	if i < len(md.regions) && va >= md.regions[i].start {
		return md.regions[i].perm
	}
	return PermNone
}

// XMemAttr is one expressive-memory attribute set for a data range.
type XMemAttr struct {
	ReadOnly     bool
	Streaming    bool // bypass-cache hint
	Compressible bool
}

// XMem is the attribute table of Expressive Memory: software tags data
// ranges with semantics; hardware consults an attribute cache keyed by
// region.
type XMem struct {
	Mem  Memory
	Base mem.PAddr

	atoms map[uint64]XMemAttr // 4KB-region granularity
	cache *tlb.MetaCache

	Lookups uint64
	Hits    uint64
}

// NewXMem builds an empty attribute table.
func NewXMem(m Memory, base mem.PAddr) *XMem {
	return &XMem{Mem: m, Base: base, atoms: make(map[uint64]XMemAttr), cache: tlb.NewMetaCache("XMemCache", 128, 1)}
}

// Tag attaches attributes to [start, start+size).
func (x *XMem) Tag(start mem.VAddr, size uint64, a XMemAttr) {
	for off := uint64(0); off < size; off += 4 * mem.KB {
		x.atoms[uint64(start+mem.VAddr(off))>>12] = a
	}
}

// Attr returns the attributes for va plus the lookup latency.
func (x *XMem) Attr(va mem.VAddr, now uint64) (XMemAttr, uint64) {
	x.Lookups++
	key := uint64(va) >> 12
	lat := x.cache.Latency()
	if enc, ok := x.cache.Lookup(key); ok {
		x.Hits++
		return decodeAttr(enc), lat
	}
	lat += x.Mem.AccessMeta(x.Base+mem.PAddr(key*2), false, now)
	a := x.atoms[key]
	x.cache.Insert(key, encodeAttr(a))
	return a, lat
}

func encodeAttr(a XMemAttr) uint64 {
	var v uint64
	if a.ReadOnly {
		v |= 1
	}
	if a.Streaming {
		v |= 2
	}
	if a.Compressible {
		v |= 4
	}
	return v
}

func decodeAttr(v uint64) XMemAttr {
	return XMemAttr{ReadOnly: v&1 != 0, Streaming: v&2 != 0, Compressible: v&4 != 0}
}

// VBIDesign sketches the Virtual Block Interface: programs address
// *virtual blocks*; the memory controller (not the core) translates
// block-relative addresses, so the design resolves a block ID plus
// offset through a flat block table — one metadata access on a block
// -table-cache miss — instead of a page walk.
type VBIDesign struct {
	Inner Design // fallback for non-block addresses
	Mem   Memory
	Base  mem.PAddr

	blocks map[uint64]mem.PAddr // block id -> base PA
	btc    *tlb.MetaCache

	BlockHits uint64
}

// NewVBIDesign builds the design; blocks are registered with AddBlock.
func NewVBIDesign(inner Design, m Memory, base mem.PAddr) *VBIDesign {
	return &VBIDesign{Inner: inner, Mem: m, Base: base, blocks: make(map[uint64]mem.PAddr), btc: tlb.NewMetaCache("BTC", 64, 1)}
}

// AddBlock registers virtual block id covering blockBytes at base pa.
func (d *VBIDesign) AddBlock(id uint64, pa mem.PAddr) { d.blocks[id] = pa }

// blockOf decomposes a VA into (block id, offset); blocks are 16 MB.
func blockOf(va mem.VAddr) (uint64, uint64) { return uint64(va) >> 24, uint64(va) & 0xFFFFFF }

// Name implements Design.
func (d *VBIDesign) Name() string { return "vbi+" + d.Inner.Name() }

// TranslateMiss implements Design.
func (d *VBIDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	id, off := blockOf(va)
	lat := d.btc.Latency()
	if base, ok := d.btc.Lookup(id); ok {
		d.BlockHits++
		return Result{PA: mem.PAddr(base) + mem.PAddr(off), Size: mem.Page2M, Lat: lat}
	}
	if base, ok := d.blocks[id]; ok {
		lat += d.Mem.AccessMeta(d.Base+mem.PAddr(id*8), false, now)
		d.btc.Insert(id, uint64(base))
		return Result{PA: base + mem.PAddr(off), Size: mem.Page2M, Lat: lat}
	}
	res := d.Inner.TranslateMiss(va, now+lat)
	res.Lat += lat
	return res
}

// Invalidate implements Design.
func (d *VBIDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	id, _ := blockOf(va)
	d.btc.Invalidate(id)
	d.Inner.Invalidate(va, size)
}
