package mmu

import (
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/tlb"
)

// NestedDesign implements two-dimensional (nested) address translation
// for virtualised execution (§6.1): guest virtual → guest physical
// through the guest page table, with every guest-physical access —
// including the guest page-table pointers themselves — translated
// through the host (extended) page table. A radix-radix walk costs up to
// 24 memory accesses; a nested TLB caching gVA→hPA translations and a
// host-translation cache (gPA→hPA, the nested-PWC analogue) cut the
// common case down, as in AMD NPT / VirTool's nested support.
type NestedDesign struct {
	Guest pagetable.PageTable // gVA -> gPA
	Host  pagetable.PageTable // gPA -> hPA
	Mem   Memory

	nestedTLB *tlb.TLB       // gVA -> hPA (the paper's nested TLB [172])
	hostCache *tlb.MetaCache // gPA page -> hPA frame (nested walk cache)

	GuestWalks uint64
	HostWalks  uint64
	MaxSteps   uint64
}

// NewNestedDesign builds the 2D walker.
func NewNestedDesign(guest, host pagetable.PageTable, m Memory) *NestedDesign {
	return &NestedDesign{
		Guest:     guest,
		Host:      host,
		Mem:       m,
		nestedTLB: tlb.New("nested-TLB", 64, 8, 2, mem.Page4K, mem.Page2M),
		hostCache: tlb.NewMetaCache("nested-PWC", 64, 2),
	}
}

// Name implements Design.
func (d *NestedDesign) Name() string { return "nested" }

// translateHost resolves one guest-physical address to host-physical,
// charging the host-dimension walk unless cached.
func (d *NestedDesign) translateHost(gpa mem.PAddr, now uint64) (mem.PAddr, uint64, bool) {
	gframe := mem.Page4K.FrameBase(gpa)
	off := mem.PAddr(mem.Page4K.Offset(mem.VAddr(gpa)))
	lat := d.hostCache.Latency()
	if hframe, ok := d.hostCache.Lookup(uint64(gframe)); ok {
		return mem.PAddr(hframe) + off, lat, true
	}
	walk := d.Host.Walk(mem.VAddr(gpa))
	d.HostWalks++
	for i := 0; i < walk.NSteps; i++ {
		lat += d.Mem.AccessPTE(walk.Steps[i].PA, false, now+lat)
	}
	if !walk.Found || !walk.Entry.Present {
		return 0, lat, false
	}
	hframe := walk.Entry.Size.Translate(walk.Entry.Frame, mem.VAddr(gpa))
	hframe = mem.Page4K.FrameBase(hframe)
	d.hostCache.Insert(uint64(gframe), uint64(hframe))
	return hframe + off, lat, true
}

// TranslateMiss implements Design: the full 2D walk.
func (d *NestedDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	var lat uint64
	lat += d.nestedTLB.Latency()
	if e, ok := d.nestedTLB.Lookup(va, 0); ok {
		return Result{PA: e.Size.Translate(e.Frame, va), Size: e.Size, Lat: lat}
	}

	gwalk := d.Guest.Walk(va)
	d.GuestWalks++
	var steps uint64
	// Each guest page-table pointer is a guest-physical address that the
	// hardware must itself translate through the host dimension.
	for i := 0; i < gwalk.NSteps; i++ {
		hpa, hlat, ok := d.translateHost(gwalk.Steps[i].PA, now+lat)
		lat += hlat
		steps++
		if !ok {
			return Result{Lat: lat, Fault: true}
		}
		lat += d.Mem.AccessPTE(hpa, false, now+lat)
		steps++
	}
	if !gwalk.Found || !gwalk.Entry.Present {
		return Result{Lat: lat, Fault: true}
	}
	// Finally translate the guest frame itself.
	gpa := gwalk.Entry.Size.Translate(gwalk.Entry.Frame, va)
	hpa, hlat, ok := d.translateHost(gpa, now+lat)
	lat += hlat
	if !ok {
		return Result{Lat: lat, Fault: true}
	}
	if steps > d.MaxSteps {
		d.MaxSteps = steps
	}
	d.nestedTLB.Insert(tlb.Entry{
		VPN: mem.Page4K.VPN(va), Size: mem.Page4K,
		Frame: mem.Page4K.FrameBase(hpa),
	})
	return Result{PA: hpa, Size: mem.Page4K, Lat: lat}
}

// Invalidate implements Design.
func (d *NestedDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	d.nestedTLB.InvalidateVA(va, 0)
}
