package mmu

import (
	"testing"

	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

func TestMondrianPermissions(t *testing.T) {
	h, _ := testEnv(t)
	md := NewMondrian(h, 0x3000_0000)
	md.Protect(0x1000, 0x3000, PermRead)
	md.Protect(0x3000, 0x5000, PermReadWrite)

	if ok, _ := md.Check(0x1800, false, 0); !ok {
		t.Fatal("read denied in read-only region")
	}
	if ok, _ := md.Check(0x1800, true, 0); ok {
		t.Fatal("write allowed in read-only region")
	}
	if ok, _ := md.Check(0x3800, true, 0); !ok {
		t.Fatal("write denied in rw region")
	}
	if ok, _ := md.Check(0x9000, false, 0); ok {
		t.Fatal("access allowed outside any region")
	}
	if md.Denials != 2 {
		t.Fatalf("denials = %d", md.Denials)
	}
}

func TestMondrianPLBCaches(t *testing.T) {
	h, _ := testEnv(t)
	md := NewMondrian(h, 0x3000_0000)
	md.Protect(0x1000, 0x3000, PermReadWrite)
	_, cold := md.Check(0x1000, true, 0)
	_, warm := md.Check(0x1040, true, 100)
	if warm >= cold {
		t.Fatalf("PLB hit (%d) not cheaper than walk (%d)", warm, cold)
	}
	if md.PLBHits != 1 || md.Walks != 1 {
		t.Fatalf("stats: hits=%d walks=%d", md.PLBHits, md.Walks)
	}
}

func TestXMemAttributes(t *testing.T) {
	h, _ := testEnv(t)
	x := NewXMem(h, 0x4000_0000)
	x.Tag(0x10000, 8*mem.KB, XMemAttr{Streaming: true})
	a, _ := x.Attr(0x11000, 0)
	if !a.Streaming || a.ReadOnly {
		t.Fatalf("attr = %+v", a)
	}
	// Untagged region: zero attributes.
	b, _ := x.Attr(0x50000, 0)
	if b != (XMemAttr{}) {
		t.Fatalf("untagged attr = %+v", b)
	}
	x.Attr(0x11000, 10)
	if x.Hits != 1 {
		t.Fatalf("attribute cache hits = %d", x.Hits)
	}
}

func TestVBIBlockTranslation(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	pt.Insert(0x7000, pagetable.Entry{Frame: 0xAAA000, Size: mem.Page4K, Present: true}, instrument.NopMem{})
	d := NewVBIDesign(NewRadixWalker(pt, h), h, 0x5000_0000)
	d.AddBlock(3, 0x8000_0000) // block 3 covers VA [0x3000000, 0x4000000)

	r := d.TranslateMiss(0x300_1234, 0)
	if r.Fault || r.PA != 0x8000_0000+0x1234 {
		t.Fatalf("block translate: %+v", r)
	}
	// Second access: block-table cache.
	r2 := d.TranslateMiss(0x300_2000, 100)
	if d.BlockHits != 1 {
		t.Fatalf("block hits = %d", d.BlockHits)
	}
	if r2.Lat >= r.Lat {
		t.Fatalf("BTC hit (%d) not cheaper than miss (%d)", r2.Lat, r.Lat)
	}
	// Non-block address falls back to radix.
	r3 := d.TranslateMiss(0x7000, 200)
	if r3.Fault || mem.Page4K.FrameBase(r3.PA) != 0xAAA000 {
		t.Fatalf("fallback: %+v", r3)
	}
}
