// Package mmu models the memory management unit: the TLB hierarchy of
// Table 4 (split L1 DTLBs per page size, unified L2 STLB, page-walk
// caches) in front of a pluggable translation design — radix or hashed
// page-table walkers, Utopia, RMM ranges, Midgard's intermediate address
// space, direct segments, and nested (virtualised) translation.
//
// Walk memory traffic goes through the shared cache hierarchy and DRAM
// with the mem.ATPTE / mem.ATTransMeta attribution the row-buffer
// experiments (Figs. 14, 21) rely on.
package mmu

import (
	"repro/internal/mem"
	"repro/internal/recycle"
	"repro/internal/tlb"
)

// Memory is the walker-facing view of the cache hierarchy.
type Memory interface {
	AccessPTE(pa mem.PAddr, write bool, now uint64) uint64
	AccessMeta(pa mem.PAddr, write bool, now uint64) uint64
}

// Result is the outcome of one translation.
type Result struct {
	PA    mem.PAddr
	Size  mem.PageSize
	Lat   uint64 // cycles spent translating (TLB lookups + walk)
	Fault bool   // no valid mapping: the OS must intervene
	// FrontendLat/BackendLat split translation time for intermediate
	// address space designs (Fig. 17); zero elsewhere.
	FrontendLat uint64
	BackendLat  uint64
}

// Design is a translation mechanism invoked after an L2 STLB miss.
type Design interface {
	Name() string
	// TranslateMiss resolves va after the TLB hierarchy missed.
	TranslateMiss(va mem.VAddr, now uint64) Result
	// Invalidate drops design-internal state for a page (shootdowns).
	Invalidate(va mem.VAddr, size mem.PageSize)
}

// Config sizes the TLB hierarchy (Table 4 defaults via DefaultConfig).
type Config struct {
	ITLBEntries, ITLBWays     int
	ITLBLat                   uint64
	DTLB4KEntries, DTLB4KWays int
	DTLB2MEntries, DTLB2MWays int
	DTLBLat                   uint64
	STLBEntries, STLBWays     int
	STLBLat                   uint64
	// STLB4KOnly restricts the unified L2 TLB to 4 KB entries
	// (Sandy-Bridge-style); large pages then rely on the L1 alone.
	// Scaled-down experiment configurations use this to preserve the
	// paper's footprint-to-TLB-reach ratio for huge pages.
	STLB4KOnly bool
	// PWCEntries/PWCWays size the page-walk caches (0 = Table 4's 32/4).
	PWCEntries, PWCWays int
}

// DefaultConfig returns the Table 4 MMU configuration: 128-entry 8-way
// L1 I-TLB; 64-entry 4-way L1 D-TLB (4K); 32-entry 4-way L1 D-TLB (2M);
// 2048-entry 16-way L2 STLB at 12 cycles.
func DefaultConfig() Config {
	return Config{
		ITLBEntries: 128, ITLBWays: 8, ITLBLat: 1,
		DTLB4KEntries: 64, DTLB4KWays: 4,
		DTLB2MEntries: 32, DTLB2MWays: 4,
		DTLBLat:     1,
		STLBEntries: 2048, STLBWays: 16, STLBLat: 12,
	}
}

// Stats aggregates MMU activity.
type Stats struct {
	DataTranslations  uint64
	InstrTranslations uint64
	L1DTLBMisses      uint64
	L2TLBMisses       uint64 // drives the L2 TLB MPKI of Fig. 10
	Walks             uint64
	WalkCycles        uint64 // total page-table-walk latency
	Faults            uint64
	TransCycles       uint64 // total translation cycles beyond the L1 hit path
	FrontendCycles    uint64 // Midgard frontend share (Fig. 17)
	BackendCycles     uint64
}

// AvgWalkLatency returns average PTW latency in cycles (Figs. 3, 10).
func (s *Stats) AvgWalkLatency() float64 {
	if s.Walks == 0 {
		return 0
	}
	return float64(s.WalkCycles) / float64(s.Walks)
}

// MMU couples the TLB hierarchy with a translation design.
type MMU struct {
	cfg    Config
	itlb   *tlb.TLB
	dtlb4k *tlb.TLB
	dtlb2m *tlb.TLB
	stlb   *tlb.TLB
	design Design
	// radix caches the installed design's concrete type when it is the
	// common radix walker, so the STLB-miss path calls it directly
	// (devirtualized, inlinable) instead of through the Design
	// interface. Nil for every other design, which stays on the
	// interface slow path.
	radix *RadixWalker
	asid  uint16
	stats Stats
}

// New builds an MMU over the given design.
func New(cfg Config, design Design, asid uint16) *MMU {
	return NewWith(cfg, design, asid, nil)
}

// NewWith is New drawing the TLB hierarchy's SoA arrays from pool (nil
// pool = plain New).
func NewWith(cfg Config, design Design, asid uint16, pool *recycle.Pool) *MMU {
	if cfg.ITLBEntries == 0 {
		cfg = DefaultConfig()
	}
	stlbSizes := []mem.PageSize{mem.Page4K, mem.Page2M, mem.Page1G}
	if cfg.STLB4KOnly {
		stlbSizes = []mem.PageSize{mem.Page4K}
	}
	m := &MMU{
		cfg:    cfg,
		itlb:   tlb.NewWith(pool, "L1I-TLB", cfg.ITLBEntries, cfg.ITLBWays, cfg.ITLBLat, mem.Page4K, mem.Page2M),
		dtlb4k: tlb.NewWith(pool, "L1D-TLB-4K", cfg.DTLB4KEntries, cfg.DTLB4KWays, cfg.DTLBLat, mem.Page4K),
		dtlb2m: tlb.NewWith(pool, "L1D-TLB-2M", cfg.DTLB2MEntries, cfg.DTLB2MWays, cfg.DTLBLat, mem.Page2M, mem.Page1G),
		stlb:   tlb.NewWith(pool, "L2-STLB", cfg.STLBEntries, cfg.STLBWays, cfg.STLBLat, stlbSizes...),
		asid:   asid,
	}
	m.setDesign(design)
	return m
}

// Recycle hands the TLB arrays back to pool; the MMU must not be used
// afterwards.
func (m *MMU) Recycle(pool *recycle.Pool) {
	if pool == nil {
		return
	}
	m.itlb.Recycle(pool)
	m.dtlb4k.Recycle(pool)
	m.dtlb2m.Recycle(pool)
	m.stlb.Recycle(pool)
}

// setDesign installs d and refreshes the devirtualized fast-path
// pointer used on STLB misses.
func (m *MMU) setDesign(d Design) {
	m.design = d
	m.radix, _ = d.(*RadixWalker)
}

// translateMiss resolves an STLB miss through the cached concrete
// walker when the design is the radix walker, falling back to the
// Design interface for every other (or externally registered) design.
func (m *MMU) translateMiss(va mem.VAddr, now uint64) Result {
	if m.radix != nil {
		return m.radix.TranslateMiss(va, now)
	}
	return m.design.TranslateMiss(va, now)
}

// Design returns the installed translation design.
func (m *MMU) Design() Design { return m.design }

// ASID returns the address-space identifier lookups are currently
// tagged with.
func (m *MMU) ASID() uint16 { return m.asid }

// SwitchContext installs the address-space context of the process being
// scheduled onto the core: the ASID that tags TLB lookups and the
// process's translation design (its page-table root, walk caches, and
// design-specific state — the CR3 write of a real context switch). With
// flush set the whole TLB hierarchy is invalidated, modelling untagged
// TLBs; without it entries persist across the switch and isolation
// relies on the ASID tags, so a process resuming its quantum can re-hit
// translations it installed earlier.
func (m *MMU) SwitchContext(asid uint16, d Design, flush bool) {
	m.asid = asid
	if d != nil {
		m.setDesign(d)
	}
	if flush {
		m.FlushAll()
	}
}

// FlushASID drops every TLB entry tagged with asid from the whole
// hierarchy — the ASID-wide shootdown of process exit. Without it a
// recycled ASID could hit the dead process's stale translations.
// Design-internal state needs no flushing here: designs are
// per-process and die with their process.
func (m *MMU) FlushASID(asid uint16) {
	m.itlb.InvalidateASID(asid)
	m.dtlb4k.InvalidateASID(asid)
	m.dtlb2m.InvalidateASID(asid)
	m.stlb.InvalidateASID(asid)
}

// InvalidateASIDVA performs a TLB shootdown of one page for an explicit
// ASID — the multiprogrammed form of Invalidate, used when a kernel
// daemon (khugepaged, reclaim) unmaps pages of a process that is not
// the one currently running. Design-level invalidation is the caller's
// responsibility: the page's owner holds its own design.
func (m *MMU) InvalidateASIDVA(asid uint16, va mem.VAddr, size mem.PageSize) {
	m.itlb.InvalidateVA(va, asid)
	m.dtlb4k.InvalidateVA(va, asid)
	m.dtlb2m.InvalidateVA(va, asid)
	m.stlb.InvalidateVA(va, asid)
}

// Stats returns the accumulated statistics.
func (m *MMU) Stats() *Stats { return &m.stats }

// STLB exposes the L2 TLB (hit-rate reporting).
func (m *MMU) STLB() *tlb.TLB { return m.stlb }

// Translate resolves a data access at va. On Result.Fault the caller
// must invoke the OS and retry.
func (m *MMU) Translate(va mem.VAddr, write bool, now uint64) Result {
	m.stats.DataTranslations++
	// L1: both split DTLBs probe in parallel; one cycle.
	if e, ok := m.dtlb4k.Lookup(va, m.asid); ok {
		return Result{PA: e.Size.Translate(e.Frame, va), Size: e.Size, Lat: m.cfg.DTLBLat}
	}
	if e, ok := m.dtlb2m.Lookup(va, m.asid); ok {
		return Result{PA: e.Size.Translate(e.Frame, va), Size: e.Size, Lat: m.cfg.DTLBLat}
	}
	m.stats.L1DTLBMisses++
	lat := m.cfg.DTLBLat + m.cfg.STLBLat
	if e, ok := m.stlb.Lookup(va, m.asid); ok {
		m.fillL1(e)
		m.stats.TransCycles += lat
		return Result{PA: e.Size.Translate(e.Frame, va), Size: e.Size, Lat: lat}
	}
	m.stats.L2TLBMisses++

	res := m.translateMiss(va, now+lat)
	m.stats.Walks++
	m.stats.WalkCycles += res.Lat
	m.stats.FrontendCycles += res.FrontendLat
	m.stats.BackendCycles += res.BackendLat
	lat += res.Lat
	m.stats.TransCycles += lat
	if res.Fault {
		m.stats.Faults++
		return Result{Lat: lat, Fault: true}
	}
	e := tlb.Entry{VPN: res.Size.VPN(va), Size: res.Size, Frame: res.Size.FrameBase(res.PA), ASID: m.asid}
	m.stlb.Insert(e)
	m.fillL1(e)
	return Result{PA: res.Size.Translate(res.PA, va), Size: res.Size, Lat: lat}
}

// TranslateInstr resolves an instruction fetch at va.
func (m *MMU) TranslateInstr(va mem.VAddr, now uint64) Result {
	m.stats.InstrTranslations++
	if e, ok := m.itlb.Lookup(va, m.asid); ok {
		return Result{PA: e.Size.Translate(e.Frame, va), Size: e.Size, Lat: m.cfg.ITLBLat}
	}
	lat := m.cfg.ITLBLat + m.cfg.STLBLat
	if e, ok := m.stlb.Lookup(va, m.asid); ok {
		m.itlb.Insert(e)
		m.stats.TransCycles += lat
		return Result{PA: e.Size.Translate(e.Frame, va), Size: e.Size, Lat: lat}
	}
	m.stats.L2TLBMisses++
	res := m.translateMiss(va, now+lat)
	m.stats.Walks++
	m.stats.WalkCycles += res.Lat
	lat += res.Lat
	m.stats.TransCycles += lat
	if res.Fault {
		m.stats.Faults++
		return Result{Lat: lat, Fault: true}
	}
	e := tlb.Entry{VPN: res.Size.VPN(va), Size: res.Size, Frame: res.Size.FrameBase(res.PA), ASID: m.asid}
	m.stlb.Insert(e)
	m.itlb.Insert(e)
	return Result{PA: res.Size.Translate(res.PA, va), Size: res.Size, Lat: lat}
}

func (m *MMU) fillL1(e tlb.Entry) {
	if e.Size == mem.Page4K {
		m.dtlb4k.Insert(e)
	} else {
		m.dtlb2m.Insert(e)
	}
}

// Invalidate performs a TLB shootdown for one page.
func (m *MMU) Invalidate(va mem.VAddr, size mem.PageSize) {
	m.itlb.InvalidateVA(va, m.asid)
	m.dtlb4k.InvalidateVA(va, m.asid)
	m.dtlb2m.InvalidateVA(va, m.asid)
	m.stlb.InvalidateVA(va, m.asid)
	m.design.Invalidate(va, size)
}

// FlushAll flushes the whole TLB hierarchy (context switch).
func (m *MMU) FlushAll() {
	m.itlb.InvalidateAll()
	m.dtlb4k.InvalidateAll()
	m.dtlb2m.InvalidateAll()
	m.stlb.InvalidateAll()
}

// ResetStats zeroes the accumulated statistics (TLB contents persist).
func (m *MMU) ResetStats() { m.stats = Stats{} }
