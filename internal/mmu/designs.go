package mmu

import (
	"repro/internal/mem"
	"repro/internal/midgard"
	"repro/internal/rmm"
	"repro/internal/tlb"
	"repro/internal/utopia"
)

// UtopiaDesign translates through Utopia's RestSegs before falling back
// to the flexible segment's radix walk (§7.6.1, Figs. 16, 19, 20). Set
// membership is filtered by the SF cache and way tags by the TAR cache
// (Table 4: 8 KB each, 2-cycle); misses read the in-memory virtual tag
// array (RSW), whose locality degrades as the RestSeg grows — the
// Fig. 19 effect.
type UtopiaDesign struct {
	Sys  *utopia.System
	Flex *RadixWalker
	Mem  Memory
	tar  *tlb.MetaCache
	sf   *tlb.MetaCache
}

// NewUtopiaDesign builds the design.
func NewUtopiaDesign(sys *utopia.System, flex *RadixWalker, m Memory) *UtopiaDesign {
	return &UtopiaDesign{
		Sys:  sys,
		Flex: flex,
		Mem:  m,
		tar:  tlb.NewMetaCache("TAR", 1024, 2), // 8KB / 8B entries
		sf:   tlb.NewMetaCache("SF", 1024, 2),
	}
}

// Name implements Design.
func (d *UtopiaDesign) Name() string { return "utopia" }

// TranslateMiss implements Design.
func (d *UtopiaDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	var lat uint64
	for _, seg := range d.Sys.Segs {
		vpn := seg.PageSize.VPN(va)
		set := seg.SetOf(vpn)

		// TAR cache: VPN -> way.
		lat += d.tar.Latency()
		if way, ok := d.tar.Lookup(vpn); ok {
			return Result{PA: seg.FramePA(set, int(way)), Size: seg.PageSize, Lat: lat}
		}
		// SF cache: does this set contain the VPN at all?
		lat += d.sf.Latency()
		if present, ok := d.sf.Lookup(vpn); ok && present == 0 {
			continue // known absent: skip the tag-array read
		}
		// Read the set's virtual tags from memory (RSW access).
		way, found := seg.Lookup(vpn)
		lines := (seg.Ways*8 + mem.CacheLineBytes - 1) / mem.CacheLineBytes
		for l := 0; l < lines; l++ {
			lat += d.Mem.AccessMeta(seg.TagPA(set, l*8), false, now+lat)
		}
		if found {
			d.tar.Insert(vpn, uint64(way))
			d.sf.Insert(vpn, 1)
			return Result{PA: seg.FramePA(set, way), Size: seg.PageSize, Lat: lat}
		}
		d.sf.Insert(vpn, 0)
	}
	// Flexible segment: conventional radix walk.
	res := d.Flex.TranslateMiss(va, now+lat)
	res.Lat += lat
	return res
}

// Invalidate implements Design.
func (d *UtopiaDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	for _, seg := range d.Sys.Segs {
		if seg.PageSize == size {
			vpn := seg.PageSize.VPN(va)
			d.tar.Invalidate(vpn)
			d.sf.Invalidate(vpn)
		}
	}
	d.Flex.Invalidate(va, size)
}

// RMMDesign is Redundant Memory Mappings: a range lookaside buffer
// backed by a hardware range-table walker, redundant with the radix page
// table (§7.6.3, Fig. 21).
type RMMDesign struct {
	RLB   *tlb.RangeTLB
	Table *rmm.Table
	Radix *RadixWalker
	Mem   Memory
	ASID  uint16

	RangeHits  uint64
	RangeWalks uint64
}

// NewRMMDesign builds the design with the Table 4 RLB (64-entry,
// 9-cycle).
func NewRMMDesign(table *rmm.Table, radix *RadixWalker, m Memory, asid uint16) *RMMDesign {
	return &RMMDesign{
		RLB:   tlb.NewRangeTLB("RLB", 64, 9),
		Table: table,
		Radix: radix,
		Mem:   m,
		ASID:  asid,
	}
}

// Name implements Design.
func (d *RMMDesign) Name() string { return "rmm" }

// TranslateMiss implements Design.
func (d *RMMDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	// The RLB is probed in parallel with the L2 TLB (Table 4); only the
	// portion of its latency beyond the STLB lookup shows up here.
	lat := d.RLB.Latency()
	if e, ok := d.RLB.Lookup(va, d.ASID); ok {
		d.RangeHits++
		pa := e.Translate(mem.Page4K.PageBase(va))
		return Result{PA: pa, Size: mem.Page4K, Lat: lat}
	}
	// Range walker: B-tree over ranges (translation metadata traffic).
	var steps []mem.PAddr
	r, ok := d.Table.Find(va, &steps)
	for _, pa := range steps {
		lat += d.Mem.AccessMeta(pa, false, now+lat)
	}
	if ok {
		d.RangeWalks++
		d.RLB.Insert(tlb.RangeEntry{VStart: r.VStart, VEnd: r.VEnd, PBase: r.PBase, ASID: d.ASID})
		pa := r.Translate(mem.Page4K.PageBase(va))
		return Result{PA: pa, Size: mem.Page4K, Lat: lat}
	}
	// Outside any range: conventional radix walk.
	res := d.Radix.TranslateMiss(va, now+lat)
	res.Lat += lat
	return res
}

// Invalidate implements Design.
func (d *RMMDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	d.RLB.InvalidateOverlap(size.PageBase(va), size.PageBase(va)+mem.VAddr(size.Bytes()), d.ASID)
	d.Radix.Invalidate(va, size)
}

// MidgardDesign implements the Midgard intermediate address space
// (§7.6.1, Fig. 17): the frontend maps VA→MA at VMA granularity through
// two levels of VMA lookaside buffers (L1 VLB 64-entry/1-cycle, L2
// 16-entry/4-cycle) with a VMA-tree walk on a miss; the backend maps
// MA→PA through a deep radix table, filtered by a backend TLB standing
// in for the fact that cache-resident data needs no backend translation.
type MidgardDesign struct {
	Space   *midgard.Space
	Backend *RadixWalker // MA-indexed
	Mem     Memory
	ASID    uint16

	l1vlb *tlb.RangeTLB
	l2vlb *tlb.RangeTLB
	btlb  *tlb.TLB
	// ExtraBackendSteps models the 6-level MA→PA radix (two more levels
	// than the 4-level walker underneath).
	ExtraBackendSteps int
}

// NewMidgardDesign builds the design with Table 4 parameters.
func NewMidgardDesign(space *midgard.Space, backend *RadixWalker, m Memory, asid uint16) *MidgardDesign {
	return &MidgardDesign{
		Space:             space,
		Backend:           backend,
		Mem:               m,
		ASID:              asid,
		l1vlb:             tlb.NewRangeTLB("L1-VLB", 64, 1),
		l2vlb:             tlb.NewRangeTLB("L2-VLB", 16, 4),
		btlb:              tlb.New("Backend-TLB", 512, 8, 2, mem.Page4K, mem.Page2M),
		ExtraBackendSteps: 2,
	}
}

// Name implements Design.
func (d *MidgardDesign) Name() string { return "midgard" }

// TranslateMiss implements Design.
func (d *MidgardDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	// Frontend: VA -> MA.
	var front uint64
	var ma mem.VAddr
	front += d.l1vlb.Latency()
	if e, ok := d.l1vlb.Lookup(va, d.ASID); ok {
		ma = mem.VAddr(e.PBase) + (va - e.VStart)
	} else {
		front += d.l2vlb.Latency()
		if e, ok := d.l2vlb.Lookup(va, d.ASID); ok {
			ma = mem.VAddr(e.PBase) + (va - e.VStart)
			d.l1vlb.Insert(e)
		} else {
			// VMA-tree walk in memory.
			var steps []mem.PAddr
			v, ok := d.Space.Find(va, &steps)
			for _, pa := range steps {
				front += d.Mem.AccessMeta(pa, false, now+front)
			}
			if !ok {
				return Result{Lat: front, FrontendLat: front, Fault: true}
			}
			ma = mem.VAddr(v.Translate(va))
			re := tlb.RangeEntry{VStart: v.VStart, VEnd: v.VEnd, PBase: mem.PAddr(v.MBase), ASID: d.ASID}
			d.l1vlb.Insert(re)
			d.l2vlb.Insert(re)
		}
	}

	// Backend: MA -> PA, only when the backend TLB misses (standing in
	// for Midgard's translate-past-the-LLC property).
	var back uint64
	back += d.btlb.Latency()
	if e, ok := d.btlb.Lookup(ma, d.ASID); ok {
		return Result{
			PA: e.Size.Translate(e.Frame, ma), Size: e.Size,
			Lat: front + back, FrontendLat: front, BackendLat: back,
		}
	}
	res := d.Backend.TranslateMiss(ma, now+front+back)
	// Charge the two extra levels of the 6-level MA radix.
	for i := 0; i < d.ExtraBackendSteps; i++ {
		back += d.Mem.AccessPTE(mem.PAddr(0x40_0000_0000)+mem.PAddr(uint64(ma)>>30<<6), false, now+front+back)
	}
	back += res.Lat
	if res.Fault {
		return Result{Lat: front + back, FrontendLat: front, BackendLat: back, Fault: true}
	}
	d.btlb.Insert(tlb.Entry{VPN: res.Size.VPN(ma), Size: res.Size, Frame: res.Size.FrameBase(res.PA), ASID: d.ASID})
	pa := res.Size.Translate(res.PA, ma)
	return Result{PA: pa, Size: res.Size, Lat: front + back, FrontendLat: front, BackendLat: back}
}

// Invalidate implements Design.
func (d *MidgardDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	// The kernel passes virtual addresses; conservative flush of the
	// frontend entry plus backend TLB entry for the mapped MA.
	if v, ok := d.Space.Find(va, nil); ok {
		ma := mem.VAddr(v.Translate(va))
		d.btlb.InvalidateVA(ma, d.ASID)
	}
	d.Backend.Invalidate(va, size)
}

// VLBStats exposes frontend VLB statistics (Fig. 17 analysis).
func (d *MidgardDesign) VLBStats() (l1, l2 *tlb.Stats) { return d.l1vlb.Stats(), d.l2vlb.Stats() }

// DirectSegDesign implements Direct Segments (Basu et al., ISCA'13): one
// [Base, Limit) → Offset segment translates the primary heap without TLB
// or walk; everything else falls back to radix.
type DirectSegDesign struct {
	Base, Limit mem.VAddr
	Offset      mem.PAddr
	Radix       *RadixWalker

	SegmentHits uint64
}

// Name implements Design.
func (d *DirectSegDesign) Name() string { return "directseg" }

// TranslateMiss implements Design.
func (d *DirectSegDesign) TranslateMiss(va mem.VAddr, now uint64) Result {
	if va >= d.Base && va < d.Limit {
		d.SegmentHits++
		// Base/limit/offset registers: effectively free.
		return Result{PA: d.Offset + mem.PAddr(va-d.Base), Size: mem.Page4K, Lat: 1}
	}
	return d.Radix.TranslateMiss(va, now)
}

// Invalidate implements Design.
func (d *DirectSegDesign) Invalidate(va mem.VAddr, size mem.PageSize) {
	d.Radix.Invalidate(va, size)
}
