package mmu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/phys"
)

func testEnv(t testing.TB) (*cache.Hierarchy, pagetable.FrameAllocator) {
	t.Helper()
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig(), dram.NewController(dram.Config{}))
	return h, phys.NewSlab(phys.New(512 * mem.MB))
}

func TestMMUTranslateThroughTLBs(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	k := instrument.NopMem{}
	va := mem.VAddr(0x10_0000)
	pt.Insert(va, pagetable.Entry{Frame: 0x40_0000, Size: mem.Page4K, Present: true}, k)

	m := New(DefaultConfig(), NewRadixWalker(pt, h), 1)
	r1 := m.Translate(va+0x10, false, 0)
	if r1.Fault || r1.PA != 0x40_0010 {
		t.Fatalf("first translate: %+v", r1)
	}
	if r1.Lat <= m.cfg.STLBLat {
		t.Fatalf("cold translation too fast: %d", r1.Lat)
	}
	r2 := m.Translate(va+0x20, false, r1.Lat)
	if r2.Lat != m.cfg.DTLBLat {
		t.Fatalf("warm translation latency = %d, want L1 hit %d", r2.Lat, m.cfg.DTLBLat)
	}
	if m.Stats().Walks != 1 {
		t.Fatalf("walks = %d", m.Stats().Walks)
	}
}

func TestMMUFaultThenRetry(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	m := New(DefaultConfig(), NewRadixWalker(pt, h), 1)
	va := mem.VAddr(0x20_0000)
	r := m.Translate(va, true, 0)
	if !r.Fault {
		t.Fatal("expected fault on unmapped page")
	}
	pt.Insert(va, pagetable.Entry{Frame: 0x99_0000, Size: mem.Page4K, Present: true}, instrument.NopMem{})
	r2 := m.Translate(va, true, 100)
	if r2.Fault || mem.Page4K.FrameBase(r2.PA) != 0x99_0000 {
		t.Fatalf("retry after insert: %+v", r2)
	}
}

func TestMMUShootdown(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	m := New(DefaultConfig(), NewRadixWalker(pt, h), 1)
	va := mem.VAddr(0x30_0000)
	pt.Insert(va, pagetable.Entry{Frame: 0x11_0000, Size: mem.Page4K, Present: true}, instrument.NopMem{})
	m.Translate(va, false, 0)
	pt.Remove(va, instrument.NopMem{})
	m.Invalidate(va, mem.Page4K)
	if r := m.Translate(va, false, 50); !r.Fault {
		t.Fatal("stale TLB entry survived shootdown")
	}
}

func TestPWCSkipsUpperLevels(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	w := NewRadixWalker(pt, h)
	k := instrument.NopMem{}
	// Two pages sharing all upper levels.
	pt.Insert(0x1000, pagetable.Entry{Frame: 0xA000, Size: mem.Page4K, Present: true}, k)
	pt.Insert(0x2000, pagetable.Entry{Frame: 0xB000, Size: mem.Page4K, Present: true}, k)
	r1 := w.TranslateMiss(0x1000, 0)
	r2 := w.TranslateMiss(0x2000, r1.Lat)
	if r2.Lat >= r1.Lat {
		t.Fatalf("PWC should shorten the second walk: %d vs %d", r2.Lat, r1.Lat)
	}
	if w.PWCStats(3).Hits == 0 {
		t.Fatal("deepest PWC never hit")
	}
}

func TestFixedWalkerNoMemoryTraffic(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	pt.Insert(0x5000, pagetable.Entry{Frame: 0xC000, Size: mem.Page4K, Present: true}, instrument.NopMem{})
	w := &FixedWalker{PT: pt, Lat: 60}
	r := w.TranslateMiss(0x5000, 0)
	if r.Fault || r.Lat != 60 {
		t.Fatalf("fixed walk: %+v", r)
	}
	if h.Dram.Stats().Accesses[mem.ATPTE] != 0 {
		t.Fatal("fixed walker touched DRAM")
	}
}

func TestNestedTranslation(t *testing.T) {
	h, alloc := testEnv(t)
	guest := pagetable.NewRadix(alloc)
	host := pagetable.NewRadix(alloc)
	k := instrument.NopMem{}

	// Map the guest page and the host mappings for both the guest data
	// page and every guest PT node touched during the guest walk.
	gva := mem.VAddr(0x40_0000)
	gpa := mem.PAddr(0x90_0000)
	hpa := mem.PAddr(0x300_0000)
	guest.Insert(gva, pagetable.Entry{Frame: gpa, Size: mem.Page4K, Present: true}, k)
	host.Insert(mem.VAddr(gpa), pagetable.Entry{Frame: hpa, Size: mem.Page4K, Present: true}, k)
	gw := guest.Walk(gva)
	for i := 0; i < gw.NSteps; i++ {
		nodeGPA := mem.Page4K.FrameBase(gw.Steps[i].PA)
		host.Insert(mem.VAddr(nodeGPA), pagetable.Entry{
			Frame: mem.PAddr(0x500_0000) + mem.PAddr(i)*4096, Size: mem.Page4K, Present: true,
		}, k)
	}

	d := NewNestedDesign(guest, host, h)
	r := d.TranslateMiss(gva, 0)
	if r.Fault {
		t.Fatalf("nested walk faulted: %+v", r)
	}
	if mem.Page4K.FrameBase(r.PA) != hpa {
		t.Fatalf("nested PA = %x, want frame %x", r.PA, hpa)
	}
	if d.GuestWalks != 1 || d.HostWalks == 0 {
		t.Fatalf("walk counts: guest=%d host=%d", d.GuestWalks, d.HostWalks)
	}
	// Second translation: nested TLB hit, two cycles.
	r2 := d.TranslateMiss(gva, r.Lat)
	if r2.Lat >= r.Lat {
		t.Fatalf("nested TLB did not shortcut: %d vs %d", r2.Lat, r.Lat)
	}
}

func TestPOMTLBCachesWalks(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	pt.Insert(0x7000, pagetable.Entry{Frame: 0xD000, Size: mem.Page4K, Present: true}, instrument.NopMem{})
	d := NewPOMTLB(NewRadixWalker(pt, h), h, 0x1000_0000, 1<<20)
	r1 := d.TranslateMiss(0x7000, 0)
	r2 := d.TranslateMiss(0x7000, r1.Lat)
	if d.Hits != 1 || d.Misses != 1 {
		t.Fatalf("pom stats: hits=%d misses=%d", d.Hits, d.Misses)
	}
	if r2.PA != r1.PA {
		t.Fatalf("pom PA mismatch: %x vs %x", r2.PA, r1.PA)
	}
	d.Invalidate(0x7000, mem.Page4K)
	d.TranslateMiss(0x7000, r2.Lat)
	if d.Misses != 2 {
		t.Fatal("invalidate did not drop the POM entry")
	}
}

func TestTLBPrefetchOnStride(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	k := instrument.NopMem{}
	for i := 0; i < 32; i++ {
		pt.Insert(mem.VAddr(i)<<12, pagetable.Entry{Frame: mem.PAddr(i+1) << 12, Size: mem.Page4K, Present: true}, k)
	}
	d := NewPrefetchDesign(NewRadixWalker(pt, h), 2)
	for i := 0; i < 8; i++ {
		d.TranslateMiss(mem.VAddr(i)<<12, uint64(i*100))
	}
	if d.Issued == 0 {
		t.Fatal("stride-1 VPN stream issued no TLB prefetches")
	}
	if d.BufferHits == 0 {
		t.Fatal("prefetched entries never hit")
	}
}

func TestSizePrediction(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	k := instrument.NopMem{}
	pt.Insert(0x8000, pagetable.Entry{Frame: 0xE000, Size: mem.Page4K, Present: true}, k)
	d := NewSizePredictDesign(NewRadixWalker(pt, h))
	d.TranslateMiss(0x8000, 0) // trains
	d.TranslateMiss(0x8000, 100)
	if d.Correct == 0 {
		t.Fatal("repeat access not predicted")
	}
}

func TestVictimaCachesTranslations(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	pt.Insert(0x9000, pagetable.Entry{Frame: 0xF000, Size: mem.Page4K, Present: true}, instrument.NopMem{})
	d := NewVictimaDesign(NewRadixWalker(pt, h), h, 0x2000_0000)
	d.TranslateMiss(0x9000, 0)
	d.TranslateMiss(0x9000, 500)
	if d.Hits != 1 {
		t.Fatalf("victima hits = %d", d.Hits)
	}
}

func TestSWTLBChargesRefill(t *testing.T) {
	h, alloc := testEnv(t)
	pt := pagetable.NewRadix(alloc)
	pt.Insert(0xA000, pagetable.Entry{Frame: 0x1000, Size: mem.Page4K, Present: true}, instrument.NopMem{})
	sw := &SWTLBDesign{Inner: NewRadixWalker(pt, h)}
	got := sw.TranslateMiss(0xA000, 0)
	if got.Lat < 120 {
		t.Fatalf("software refill not charged: lat=%d", got.Lat)
	}
	if sw.Refills != 1 {
		t.Fatalf("refills = %d", sw.Refills)
	}
}
