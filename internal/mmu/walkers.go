package mmu

import (
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/tlb"
)

// RadixWalker walks a radix page table through three page-walk caches
// (Table 4: 32-entry 4-way, 2-cycle), skipping the upper levels on PWC
// hits (Barr et al. translation caching).
type RadixWalker struct {
	PT   pagetable.PageTable
	Mem  Memory
	rpt  *pagetable.Radix // concrete PT when radix: devirtualized Walk
	pwcs [3]*tlb.PWC      // depth 1 (PDPT ptr), 2 (PD ptr), 3 (PT ptr)
}

// NewRadixWalker builds the walker with the Table 4 PWC configuration
// (32-entry, 4-way, 2-cycle).
func NewRadixWalker(pt pagetable.PageTable, m Memory) *RadixWalker {
	return NewRadixWalkerSized(pt, m, 32, 4)
}

// NewRadixWalkerSized builds the walker with explicit PWC geometry;
// scaled-down experiment configurations shrink the PWCs alongside the
// TLBs to preserve the paper's PWC-reach-to-footprint ratio.
func NewRadixWalkerSized(pt pagetable.PageTable, m Memory, pwcEntries, pwcWays int) *RadixWalker {
	w := &RadixWalker{PT: pt, Mem: m}
	w.rpt, _ = pt.(*pagetable.Radix)
	for i := 0; i < 3; i++ {
		w.pwcs[i] = tlb.NewPWC(i+1, pwcEntries, pwcWays, 2)
	}
	return w
}

// Name implements Design.
func (w *RadixWalker) Name() string { return "radix" }

// TranslateMiss implements Design.
func (w *RadixWalker) TranslateMiss(va mem.VAddr, now uint64) Result {
	var walk pagetable.WalkResult
	if w.rpt != nil {
		walk = w.rpt.Walk(va)
	} else {
		walk = w.PT.Walk(va)
	}
	// Find the deepest PWC hit to skip upper-level accesses. PWC at
	// depth d caches the pointer read at step d (0-based step d gives
	// the node for step d+1), so a hit at depth d skips steps 0..d-1.
	skip := 0
	var lat uint64
	for d := 2; d >= 0; d-- {
		if d+1 >= walk.NSteps {
			continue // walk terminated above this depth
		}
		lat += w.pwcs[d].Latency()
		if _, ok := w.pwcs[d].Lookup(va); ok {
			skip = d + 1
			break
		}
	}
	for i := skip; i < walk.NSteps; i++ {
		lat += w.Mem.AccessPTE(walk.Steps[i].PA, false, now+lat)
	}
	// Fill PWCs with the node pointers discovered on the way down.
	for d := 0; d < 3 && d+1 < walk.NSteps; d++ {
		node := walk.Steps[d+1].PA &^ 4095
		w.pwcs[d].Insert(va, node)
	}
	if !walk.Found || !walk.Entry.Present {
		return Result{Lat: lat, Fault: true}
	}
	return Result{PA: walk.Entry.Frame, Size: walk.Entry.Size, Lat: lat}
}

// Invalidate implements Design (PWCs cache node pointers, which remain
// valid across leaf changes; a full flush happens on node teardown —
// approximated by leaving them, as x86 does until INVLPG semantics
// require otherwise).
func (w *RadixWalker) Invalidate(va mem.VAddr, size mem.PageSize) {}

// PWCStats exposes the page-walk-cache statistics (test hook).
func (w *RadixWalker) PWCStats(depth int) *tlb.Stats { return w.pwcs[depth-1].Stats() }

// HashWalker walks a hash-based page table (ECH, HDC, HT): each probe in
// the functional walk is one memory access; ECH configurations add the
// cuckoo-walk-cache latency.
type HashWalker struct {
	PT     pagetable.PageTable
	Mem    Memory
	CWCLat uint64 // 2 cycles for ECH's perfect cuckoo walk caches
}

// NewHashWalker builds a walker for a hashed page table.
func NewHashWalker(pt pagetable.PageTable, m Memory) *HashWalker {
	w := &HashWalker{PT: pt, Mem: m}
	if pt.Kind() == "ech" {
		w.CWCLat = 2
	}
	return w
}

// Name implements Design.
func (w *HashWalker) Name() string { return w.PT.Kind() }

// TranslateMiss implements Design.
func (w *HashWalker) TranslateMiss(va mem.VAddr, now uint64) Result {
	walk := w.PT.Walk(va)
	lat := w.CWCLat
	if w.CWCLat > 0 {
		// ECH: the walker issues all nest probes in parallel; latency is
		// the slowest probe, but every probe consumes memory bandwidth
		// and may close DRAM rows (the Fig. 14 interference).
		var worst uint64
		for i := 0; i < walk.NSteps; i++ {
			l := w.Mem.AccessPTE(walk.Steps[i].PA, false, now+lat)
			if l > worst {
				worst = l
			}
		}
		lat += worst
	} else {
		// HDC/HT: open-addressing probes and chain hops are dependent
		// accesses and serialise.
		for i := 0; i < walk.NSteps; i++ {
			lat += w.Mem.AccessPTE(walk.Steps[i].PA, false, now+lat)
		}
	}
	if !walk.Found || !walk.Entry.Present {
		return Result{Lat: lat, Fault: true}
	}
	return Result{PA: walk.Entry.Frame, Size: walk.Entry.Size, Lat: lat}
}

// Invalidate implements Design.
func (w *HashWalker) Invalidate(va mem.VAddr, size mem.PageSize) {}

// FixedWalker is the emulation-based baseline (§2.1): it resolves
// translations functionally and charges a fixed latency — exactly what
// baseline Sniper does with its fixed PTW latency. It performs no memory
// accesses, so it creates none of the interference Virtuoso models.
type FixedWalker struct {
	PT  pagetable.PageTable
	Lat uint64
}

// Name implements Design.
func (w *FixedWalker) Name() string { return "fixed" }

// TranslateMiss implements Design.
func (w *FixedWalker) TranslateMiss(va mem.VAddr, now uint64) Result {
	e, ok := w.PT.Lookup(va)
	if !ok || !e.Present {
		return Result{Lat: w.Lat, Fault: true}
	}
	return Result{PA: e.Frame, Size: e.Size, Lat: w.Lat}
}

// Invalidate implements Design.
func (w *FixedWalker) Invalidate(va mem.VAddr, size mem.PageSize) {}
