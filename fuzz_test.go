package virtuoso_test

import (
	"testing"

	virtuoso "repro"
)

// FuzzParseSweepSpec feeds arbitrary bytes to the sweep-spec decoder
// and, when a spec parses, materialises it into a Sweep and hashes it.
// Malformed input must error — never panic — and every spec that
// survives validation must be hashable (SpecHash is what makes
// checkpoints and shard merges safe, so it cannot fail on any spec the
// parser admits).
func FuzzParseSweepSpec(f *testing.F) {
	f.Add([]byte(`{"workloads": ["BFS"]}`))
	f.Add([]byte(`{"workloads": ["BFS", "XS"], "designs": ["radix", "ech"], "policies": ["thp"], "seeds": [1, 2]}`))
	f.Add([]byte(`{"mixes": [["BFS", "RND"]], "quantum_cycles": 100000, "asid_retention": true}`))
	f.Add([]byte(`{"workloads": ["SEQ"], "full_scale": true, "mode": "emulation", "max_app_insts": 1000, "frag": 0.5, "seed": 7}`))
	f.Add([]byte(`{"workloads": ["BFS"], "shard": "1/4", "parallel": 2, "label": "x"}`))
	f.Add([]byte(`{"desings": ["radix"]}`)) // typo: unknown field
	f.Add([]byte(`{"workloads": ["BFS"]} trailing`))
	f.Add([]byte(`{"frag": 2.0, "workloads": ["BFS"]}`))
	f.Add([]byte(`{"shard": "9/4", "workloads": ["BFS"]}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"workloads": [`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := virtuoso.ParseSweepSpec(data)
		if err != nil {
			return
		}
		s, err := sp.Sweep()
		if err != nil {
			return
		}
		if h := s.SpecHash(); h == "" {
			t.Fatal("validated sweep produced an empty spec hash")
		}
	})
}
