package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	virtuoso "repro"
)

const traceUsage = `usage: virtuoso trace <verb> [flags]

verbs:
  record  -workload NAME -o FILE   record a workload's instruction stream
  replay  FILE                     replay a recorded trace through the simulator
  info    FILE                     print a trace file's header and counts

A ".gz" output extension selects gzip compression. Run
"virtuoso trace <verb> -h" for per-verb flags.
`

// traceCmd dispatches the `virtuoso trace` subcommand.
func traceCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprint(os.Stderr, traceUsage)
		os.Exit(2)
	}
	switch args[0] {
	case "record":
		traceRecord(args[1:])
	case "replay":
		traceReplay(args[1:])
	case "info":
		traceInfo(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "virtuoso trace: unknown verb %q\n\n%s", args[0], traceUsage)
		os.Exit(2)
	}
}

// simFlags are the simulation-configuration flags record and replay
// share; they mirror the top-level grid flags (single-valued: a trace
// records exactly one configuration).
type simFlags struct {
	design, policy, mode string
	insts                uint64
	scale, frag          float64
	seed                 uint64
}

func addSimFlags(fs *flag.FlagSet, f *simFlags, seedDefault uint64, seedHelp string) {
	fs.StringVar(&f.design, "design", "radix", "translation design: radix|ech|hdc|ht|utopia|rmm|midgard|directseg")
	fs.StringVar(&f.policy, "policy", "thp", "allocation policy: bd|thp|cr-thp|ar-thp|utopia|eager")
	fs.StringVar(&f.mode, "mode", "imitation", "OS methodology: imitation|emulation")
	fs.Uint64Var(&f.insts, "insts", 2_000_000, "max application instructions (0 = run to completion)")
	fs.Float64Var(&f.scale, "scale", 0.25, "workload footprint scale (record only; a trace fixes the footprint)")
	fs.Float64Var(&f.frag, "frag", 0.80, "fragmentation level (fraction of 2MB blocks unavailable)")
	fs.Uint64Var(&f.seed, "seed", seedDefault, seedHelp)
}

// options converts the shared flags into session options.
func (f *simFlags) options() ([]virtuoso.Option, error) {
	design, err := virtuoso.ParseDesign(f.design)
	if err != nil {
		return nil, err
	}
	policy, err := virtuoso.ParsePolicy(f.policy)
	if err != nil {
		return nil, err
	}
	mode, err := virtuoso.ParseMode(f.mode)
	if err != nil {
		return nil, err
	}
	if f.frag < 0 || f.frag > 1 {
		return nil, fmt.Errorf("virtuoso: -frag %v out of range [0, 1]", f.frag)
	}
	return []virtuoso.Option{
		virtuoso.WithScaledConfig(),
		virtuoso.WithDesign(design),
		virtuoso.WithPolicy(policy),
		virtuoso.WithMode(mode),
		virtuoso.WithMaxInstructions(f.insts),
		virtuoso.WithFragmentation(f.frag),
		virtuoso.WithSeed(f.seed),
	}, nil
}

func traceRecord(args []string) {
	fs := flag.NewFlagSet("virtuoso trace record", flag.ExitOnError)
	var f simFlags
	workload := fs.String("workload", "", "workload to record (required; see virtuoso -list)")
	out := fs.String("o", "", "output trace file (required; .gz compresses)")
	addSimFlags(fs, &f, 1, "simulation seed (stored in the trace header)")
	fs.Parse(args)
	if *workload == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "virtuoso trace record: -workload and -o are required")
		fs.Usage()
		os.Exit(2)
	}

	opts, err := f.options()
	check(err)
	opts = append(opts,
		virtuoso.WithWorkloadScale(f.scale),
		virtuoso.WithWorkload(*workload),
	)
	sess, err := virtuoso.Open(opts...)
	check(err)
	m, info, err := sess.Record(*out)
	check(err)

	st, err := os.Stat(*out)
	check(err)
	fmt.Printf("recorded        %s -> %s\n", info.Workload, *out)
	fmt.Printf("records         %d (%d insts, %d mem ops, %d segments)\n",
		info.Records, info.Instructions, info.MemOps, info.Segments)
	fmt.Printf("size            %d bytes (%.2f bits/inst, gzip=%v)\n",
		st.Size(), float64(st.Size()*8)/float64(max(info.Instructions, 1)), info.Compressed)
	fmt.Printf("recording run   IPC %.3f, %d minor faults, seed %d\n", m.IPC, m.MinorFaults, info.Seed)
}

func traceReplay(args []string) {
	fs := flag.NewFlagSet("virtuoso trace replay", flag.ExitOnError)
	var f simFlags
	memtrace := fs.Bool("memtrace", false, "memory-trace-driven replay (Ramulator-style: only memory ops simulated)")
	jsonOut := fs.Bool("json", false, "emit the result as JSON")
	addSimFlags(fs, &f, 0, "simulation seed (0 = the seed recorded in the trace)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "virtuoso trace replay: exactly one trace file required")
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)

	if f.seed == 0 {
		// Header-only read: no point decoding the whole record section
		// just to learn the recorded seed.
		hdr, err := virtuoso.ReadTraceHeader(path)
		check(err)
		f.seed = hdr.Seed
	}
	opts, err := f.options()
	check(err)
	if *memtrace {
		opts = append(opts, virtuoso.WithFrontend(virtuoso.FrontendMemTrace))
	}
	opts = append(opts, virtuoso.WithTrace(path))
	sess, err := virtuoso.Open(opts...)
	check(err)
	m, err := sess.Run()
	check(err)

	r := sess.Result(m)
	if *jsonOut {
		rep := &virtuoso.Report{Results: []virtuoso.Result{r}, Points: 1}
		data, err := rep.JSON()
		check(err)
		fmt.Println(string(data))
		return
	}
	printSingle(r)
}

func traceInfo(args []string) {
	fs := flag.NewFlagSet("virtuoso trace info", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the summary as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "virtuoso trace info: exactly one trace file required")
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	info, err := virtuoso.ReadTraceInfo(path)
	check(err)
	if *jsonOut {
		data, err := json.MarshalIndent(info, "", "  ")
		check(err)
		fmt.Println(string(data))
		return
	}
	st, err := os.Stat(path)
	check(err)
	fmt.Printf("trace           %s (gzip=%v, %d bytes)\n", path, info.Compressed, st.Size())
	fmt.Printf("workload        %s (%s-running, footprint %d MB)\n", info.Workload, info.Class, info.FootprintBytes>>20)
	fmt.Printf("seed            %d\n", info.Seed)
	fmt.Printf("layout          %d segments\n", info.Segments)
	fmt.Printf("records         %d (%d insts, %d mem ops, %.2f bits/inst)\n",
		info.Records, info.Instructions, info.MemOps,
		float64(st.Size()*8)/float64(max(info.Instructions, 1)))
}
