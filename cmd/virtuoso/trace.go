package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	virtuoso "repro"
)

const traceUsage = `usage: virtuoso trace <verb> [flags]

verbs:
  record   -workload NAME -o FILE   record a workload's instruction stream
  replay   FILE                     replay a recorded trace through the simulator
  convert  SRC DST                  rewrite a trace into the current (v2) format
  info     FILE                     print a trace file's header, counts, and blocks

Traces are written in the seekable block-compressed v2 format by
default ("record -format v1" selects the legacy format, where a ".gz"
extension picks the gzip envelope). Readers detect the format from the
file's bytes, never its name. Run "virtuoso trace <verb> -h" for
per-verb flags.
`

// traceCmd dispatches the `virtuoso trace` subcommand.
func traceCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprint(os.Stderr, traceUsage)
		os.Exit(2)
	}
	switch args[0] {
	case "record":
		traceRecord(args[1:])
	case "replay":
		traceReplay(args[1:])
	case "convert":
		traceConvert(args[1:])
	case "info":
		traceInfo(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "virtuoso trace: unknown verb %q\n\n%s", args[0], traceUsage)
		os.Exit(2)
	}
}

// simFlags are the simulation-configuration flags record and replay
// share; they mirror the top-level grid flags (single-valued: a trace
// records exactly one configuration).
type simFlags struct {
	design, policy, mode string
	insts                uint64
	scale, frag          float64
	seed                 uint64
}

func addSimFlags(fs *flag.FlagSet, f *simFlags, seedDefault uint64, seedHelp string) {
	fs.StringVar(&f.design, "design", "radix", "translation design: radix|ech|hdc|ht|utopia|rmm|midgard|directseg")
	fs.StringVar(&f.policy, "policy", "thp", "allocation policy: bd|thp|cr-thp|ar-thp|utopia|eager")
	fs.StringVar(&f.mode, "mode", "imitation", "OS methodology: imitation|emulation")
	fs.Uint64Var(&f.insts, "insts", 2_000_000, "max application instructions (0 = run to completion)")
	fs.Float64Var(&f.scale, "scale", 0.25, "workload footprint scale (record only; a trace fixes the footprint)")
	fs.Float64Var(&f.frag, "frag", 0.80, "fragmentation level (fraction of 2MB blocks unavailable)")
	fs.Uint64Var(&f.seed, "seed", seedDefault, seedHelp)
}

// options converts the shared flags into session options.
func (f *simFlags) options() ([]virtuoso.Option, error) {
	design, err := virtuoso.ParseDesign(f.design)
	if err != nil {
		return nil, err
	}
	policy, err := virtuoso.ParsePolicy(f.policy)
	if err != nil {
		return nil, err
	}
	mode, err := virtuoso.ParseMode(f.mode)
	if err != nil {
		return nil, err
	}
	if f.frag < 0 || f.frag > 1 {
		return nil, fmt.Errorf("virtuoso: -frag %v out of range [0, 1]", f.frag)
	}
	return []virtuoso.Option{
		virtuoso.WithScaledConfig(),
		virtuoso.WithDesign(design),
		virtuoso.WithPolicy(policy),
		virtuoso.WithMode(mode),
		virtuoso.WithMaxInstructions(f.insts),
		virtuoso.WithFragmentation(f.frag),
		virtuoso.WithSeed(f.seed),
	}, nil
}

func traceRecord(args []string) {
	fs := flag.NewFlagSet("virtuoso trace record", flag.ExitOnError)
	var f simFlags
	workload := fs.String("workload", "", "workload to record (required; see virtuoso -list)")
	out := fs.String("o", "", "output trace file (required)")
	format := fs.String("format", "v2", "trace format: v2 (seekable block-compressed) or v1 (legacy; .gz compresses)")
	addSimFlags(fs, &f, 1, "simulation seed (stored in the trace header)")
	fs.Parse(args)
	if *workload == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "virtuoso trace record: -workload and -o are required")
		fs.Usage()
		os.Exit(2)
	}
	var ropts []virtuoso.RecordOption
	switch *format {
	case "v2":
	case "v1":
		ropts = append(ropts, virtuoso.RecordFormatV1())
	default:
		fmt.Fprintf(os.Stderr, "virtuoso trace record: unknown -format %q (known: v1, v2)\n", *format)
		os.Exit(2)
	}

	opts, err := f.options()
	check(err)
	opts = append(opts,
		virtuoso.WithWorkloadScale(f.scale),
		virtuoso.WithWorkload(*workload),
	)
	sess, err := virtuoso.Open(opts...)
	check(err)
	m, info, err := sess.Record(*out, ropts...)
	check(err)

	st, err := os.Stat(*out)
	check(err)
	fmt.Printf("recorded        %s -> %s\n", info.Workload, *out)
	fmt.Printf("records         %d (%d insts, %d mem ops, %d segments)\n",
		info.Records, info.Instructions, info.MemOps, info.Segments)
	fmt.Printf("format          v%d%s\n", info.Version, blockSummary(info))
	fmt.Printf("size            %d bytes (%.2f bits/inst, compressed=%v)\n",
		st.Size(), float64(st.Size()*8)/float64(max(info.Instructions, 1)), info.Compressed)
	fmt.Printf("recording run   IPC %.3f, %d minor faults, seed %d\n", m.IPC, m.MinorFaults, info.Seed)
}

// blockSummary renders the v2 block/index line fragment ("" for v1).
func blockSummary(info virtuoso.TraceInfo) string {
	if info.Version < 2 {
		return ""
	}
	return fmt.Sprintf(" (%d blocks, index %d bytes, block ratio %.3f)",
		info.Blocks, info.IndexBytes, compRatio(info))
}

// compRatio is the mean per-block compression ratio: compressed block
// payload bytes over raw.
func compRatio(info virtuoso.TraceInfo) float64 {
	if info.RawBytes == 0 {
		return 0
	}
	return float64(info.CompBytes) / float64(info.RawBytes)
}

func traceConvert(args []string) {
	fs := flag.NewFlagSet("virtuoso trace convert", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the written file's summary as JSON")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "virtuoso trace convert: exactly two arguments required: SRC DST")
		fs.Usage()
		os.Exit(2)
	}
	src, dst := fs.Arg(0), fs.Arg(1)
	info, err := virtuoso.ConvertTrace(src, dst)
	check(err)
	if *jsonOut {
		data, err := json.MarshalIndent(info, "", "  ")
		check(err)
		fmt.Println(string(data))
		return
	}
	st, err := os.Stat(dst)
	check(err)
	fmt.Printf("converted       %s -> %s\n", src, dst)
	fmt.Printf("records         %d (%d insts, %d mem ops)\n", info.Records, info.Instructions, info.MemOps)
	fmt.Printf("format          v%d%s\n", info.Version, blockSummary(info))
	fmt.Printf("size            %d bytes (%.2f bits/inst)\n",
		st.Size(), float64(st.Size()*8)/float64(max(info.Instructions, 1)))
}

func traceReplay(args []string) {
	fs := flag.NewFlagSet("virtuoso trace replay", flag.ExitOnError)
	var f simFlags
	memtrace := fs.Bool("memtrace", false, "memory-trace-driven replay (Ramulator-style: only memory ops simulated)")
	jsonOut := fs.Bool("json", false, "emit the result as JSON")
	canonical := fs.Bool("canonical", false, "emit the result as canonical (determinism-comparison) JSON")
	outFile := fs.String("o", "", "write the JSON report to FILE instead of stdout")
	seedsFlag := fs.String("seeds", "", "comma-separated seed list: replay once per seed through a shared decoded-trace store (a 0 entry means the recorded seed)")
	storeMB := fs.Int64("store-mb", 0, "decoded-trace store budget in MiB for -seeds replays (0 = the ~1 GiB default)")
	rounds := fs.Int("rounds", 1, "repeat the -seeds replay set; rounds after the first must decode nothing and reproduce round 1 byte-identically")
	addSimFlags(fs, &f, 0, "simulation seed (0 = the seed recorded in the trace)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "virtuoso trace replay: exactly one trace file required")
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)

	// Header-only read: no point decoding the whole record section just
	// to learn the recorded seed.
	hdr, err := virtuoso.ReadTraceHeader(path)
	check(err)
	if f.seed == 0 {
		f.seed = hdr.Seed
	}

	if *seedsFlag == "" {
		opts, err := f.options()
		check(err)
		if *memtrace {
			opts = append(opts, virtuoso.WithFrontend(virtuoso.FrontendMemTrace))
		}
		opts = append(opts, virtuoso.WithTrace(path))
		sess, err := virtuoso.Open(opts...)
		check(err)
		m, err := sess.Run()
		check(err)

		r := sess.Result(m)
		if *jsonOut || *canonical || *outFile != "" {
			rep := &virtuoso.Report{Results: []virtuoso.Result{r}, Points: 1}
			check(emitReport(rep, *canonical, *outFile))
			return
		}
		printSingle(r)
		return
	}

	seeds, err := parseReplaySeeds(*seedsFlag, hdr.Seed)
	check(err)
	if *rounds < 1 {
		*rounds = 1
	}
	store := virtuoso.NewTraceStore(*storeMB << 20)
	var first []byte
	for round := 1; round <= *rounds; round++ {
		before := store.Stats()
		rep := &virtuoso.Report{Points: len(seeds)}
		for _, seed := range seeds {
			f.seed = seed
			opts, err := f.options()
			check(err)
			if *memtrace {
				opts = append(opts, virtuoso.WithFrontend(virtuoso.FrontendMemTrace))
			}
			opts = append(opts, virtuoso.WithTrace(path), virtuoso.WithTraceStore(store))
			sess, err := virtuoso.Open(opts...)
			check(err)
			m, err := sess.Run()
			check(err)
			rep.Results = append(rep.Results, sess.Result(m))
		}
		after := store.Stats()
		fmt.Fprintf(os.Stderr, "round %d: %d points, %d decoded, %d from store\n",
			round, len(seeds), after.Decodes-before.Decodes, after.Hits-before.Hits)
		canon, err := rep.CanonicalJSON()
		check(err)
		if round == 1 {
			first = canon
			check(emitReport(rep, *canonical, *outFile))
		} else if !bytes.Equal(canon, first) {
			check(fmt.Errorf("virtuoso trace replay: round %d diverged from round 1 (determinism violation)", round))
		}
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "trace store: %d decodes, %d hits, %d bytes retained (budget %d)\n",
		st.Decodes, st.Hits, st.UsedBytes, st.BudgetBytes)
}

// parseReplaySeeds expands a comma-separated seed list; 0 entries
// resolve to the recorded seed.
func parseReplaySeeds(list string, recorded uint64) ([]uint64, error) {
	var out []uint64
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseUint(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("virtuoso trace replay: bad -seeds entry %q: %v", tok, err)
		}
		if v == 0 {
			v = recorded
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("virtuoso trace replay: -seeds is empty")
	}
	return out, nil
}

// emitReport writes rep as (canonical or indented) JSON to path, or to
// stdout when path is empty.
func emitReport(rep *virtuoso.Report, canonical bool, path string) error {
	var data []byte
	var err error
	if canonical {
		data, err = rep.CanonicalJSON()
	} else {
		data, err = rep.JSON()
	}
	if err != nil {
		return err
	}
	if path == "" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func traceInfo(args []string) {
	fs := flag.NewFlagSet("virtuoso trace info", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the summary as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "virtuoso trace info: exactly one trace file required")
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	info, err := virtuoso.ReadTraceInfo(path)
	check(err)
	if *jsonOut {
		data, err := json.MarshalIndent(info, "", "  ")
		check(err)
		fmt.Println(string(data))
		return
	}
	st, err := os.Stat(path)
	check(err)
	fmt.Printf("trace           %s (v%d, compressed=%v, %d bytes)\n", path, info.Version, info.Compressed, st.Size())
	fmt.Printf("workload        %s (%s-running, footprint %d MB)\n", info.Workload, info.Class, info.FootprintBytes>>20)
	fmt.Printf("seed            %d\n", info.Seed)
	fmt.Printf("layout          %d segments\n", info.Segments)
	fmt.Printf("records         %d (%d insts, %d mem ops, %.2f bits/inst)\n",
		info.Records, info.Instructions, info.MemOps,
		float64(st.Size()*8)/float64(max(info.Instructions, 1)))
	if info.Version >= 2 {
		fmt.Printf("blocks          %d (index %d bytes, payload %d -> %d bytes, block ratio %.3f)\n",
			info.Blocks, info.IndexBytes, info.RawBytes, info.CompBytes, compRatio(info))
	}
}
