// Command virtuoso runs one simulation configuration — or a whole
// design-space grid — and prints metrics, the CLI equivalent of the
// Open/Sweep API.
//
// Usage:
//
//	virtuoso -workload BFS -design radix -policy thp -insts 2000000
//	virtuoso -workload Llama-2-7B -design utopia -policy utopia
//	virtuoso -workload BFS,XS -design radix,ech,ht -seeds 1,2 -parallel 8
//	virtuoso -workload BFS -design radix,ech -json > results.json
//	virtuoso -list
//
// Grid-valued flags (-workload, -design, -policy, -seeds) accept
// comma-separated lists; when the grid has more than one point the
// sweep runs on a bounded worker pool and prints one row per point.
//
// With -multi the -workload list becomes one multiprogrammed run
// instead of a grid axis: every named workload is a concurrent process
// in its own address space, interleaved by the MimicOS round-robin
// scheduler. -quantum sets the time slice in simulated cycles and
// -asid-retention keeps TLB entries across context switches (isolated
// by ASID tags) instead of flushing:
//
//	virtuoso -multi -workload rnd,seq
//	virtuoso -multi -workload rnd,seq,bfs -quantum 50000 -asid-retention
//	virtuoso -multi -workload rnd,seq -design radix,ech -json
//
// -tiers configures a tiered physical memory hierarchy: a
// comma-separated list of slow tiers between DRAM and swap, each as
// name:bytes:readLat:writeLat[:bytesPerCycle] with K/M/G capacity
// suffixes, ordered fastest to slowest. -tier-policy selects the page
// migration policy (comma-separated to sweep policies as a grid axis):
//
//	virtuoso -workload RND -tiers cxl:64M:600:900:8
//	virtuoso -workload RND -tiers cxl:64M:600:900:8,nvm:1G:2500:8000:2 -tier-policy hotcold,clock
//
// -progress streams live interval snapshots from inside each running
// point to stderr (the public Observer API): instructions retired, IPC,
// L2 TLB MPKI, and faults so far. Custom components registered through
// the repro/ext extension API are accepted by name in -workload,
// -design, and -policy, and appear in -list.
//
// The trace subcommand records and replays instruction traces (the
// §6.2 trace-driven frontends; see docs/trace-format.md):
//
//	virtuoso trace record -workload graphbig-bfs -o bfs.trc.gz
//	virtuoso trace replay bfs.trc.gz
//	virtuoso trace replay -memtrace -design ech bfs.trc.gz
//	virtuoso trace info bfs.trc.gz
//
// The sweep subcommand runs declarative JSON sweep specs with
// deterministic sharding, durable checkpoint/resume, shard-merge
// validation, and a streaming job server (see docs/sweep-service.md):
//
//	virtuoso sweep run -spec study.json -shard 0/3 -checkpoint s0.jsonl
//	virtuoso sweep merge -o report.json s0.jsonl s1.jsonl s2.jsonl
//	virtuoso sweep serve -addr :8089 -dir jobs/
//
// The top-level grid runner accepts the same -shard and -checkpoint
// flags for ad-hoc sharded or resumable sweeps without a spec file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"

	virtuoso "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		sweepCmd(os.Args[2:])
		return
	}
	var (
		workload   = flag.String("workload", "BFS", "workload name(s), comma-separated (-list to enumerate; registered names accepted)")
		design     = flag.String("design", "radix", "translation design(s), comma-separated: radix|ech|hdc|ht|utopia|rmm|midgard|directseg, or a registered name")
		policy     = flag.String("policy", "thp", "allocation policy(ies), comma-separated: bd|thp|cr-thp|ar-thp|utopia|eager, or a registered name")
		mode       = flag.String("mode", "imitation", "OS methodology: imitation|emulation")
		insts      = flag.Uint64("insts", 2_000_000, "max application instructions (0 = run to completion)")
		scale      = flag.Float64("scale", 0.25, "workload footprint scale")
		frag       = flag.Float64("frag", 0.80, "fragmentation level (fraction of 2MB blocks unavailable)")
		seeds      = flag.String("seeds", "1", "simulation seed(s), comma-separated")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		jsonOut    = flag.Bool("json", false, "emit results as JSON")
		list       = flag.Bool("list", false, "list workloads, designs, and policies, then exit")
		multi      = flag.Bool("multi", false, "run the -workload list as one multiprogrammed mix (concurrent processes)")
		quantum    = flag.Uint64("quantum", 0, "scheduler time slice in simulated cycles (0 = default; -multi only)")
		asidRet    = flag.Bool("asid-retention", false, "retain TLB entries across context switches by ASID tag instead of flushing (-multi only)")
		tiers      = flag.String("tiers", "", "slow memory tiers, comma-separated name:bytes:readLat:writeLat[:bytesPerCycle] (e.g. cxl:64M:600:900:8,nvm:1G:2500:8000:2)")
		tierPolicy = flag.String("tier-policy", "", "tier migration policy(ies), comma-separated: hotcold|clock, or a registered name (requires -tiers)")
		progress   = flag.Bool("progress", false, "stream live per-point progress snapshots to stderr while simulating")
		shard      = flag.String("shard", "", "run only a deterministic slice of the grid, as i/N (shard files merge with `virtuoso sweep merge`)")
		ckpt       = flag.String("checkpoint", "", "JSONL checkpoint file: persist per-point results as they land and resume from it on restart")
	)
	flag.Parse()

	if *list {
		fmt.Println("long-running:")
		for _, w := range virtuoso.LongRunningSuite() {
			fmt.Printf("  %-12s footprint=%dMB\n", w.Name(), w.FootprintBytes()>>20)
		}
		fmt.Println("short-running:")
		for _, w := range virtuoso.ShortRunningSuite() {
			fmt.Printf("  %-12s footprint=%dMB\n", w.Name(), w.FootprintBytes()>>20)
		}
		fmt.Println("mix extras:")
		for _, w := range virtuoso.ExtraWorkloads() {
			fmt.Printf("  %-12s footprint=%dMB\n", w.Name(), w.FootprintBytes()>>20)
		}
		if reg := virtuoso.RegisteredWorkloads(); len(reg) > 0 {
			fmt.Println("registered workloads:")
			for _, name := range reg {
				fmt.Printf("  %s\n", name)
			}
		}
		fmt.Printf("designs:       %v\n", virtuoso.KnownDesigns())
		fmt.Printf("policies:      %v\n", virtuoso.KnownPolicies())
		fmt.Printf("tier policies: %v\n", virtuoso.KnownTierPolicies())
		return
	}

	// Validate every name up front: unknown designs, policies, or modes
	// are hard errors, not silently-accepted defaults.
	designs, err := parseDesigns(*design)
	check(err)
	policies, err := parsePolicies(*policy)
	check(err)
	m, err := virtuoso.ParseMode(*mode)
	check(err)
	seedList, err := parseSeeds(*seeds)
	check(err)
	workloadList := splitList(*workload)
	for _, w := range workloadList {
		// Validate with the run's construction parameters: a registered
		// workload's constructor sees the same params the sweep points
		// will build with, not zero-valued defaults.
		if _, err := virtuoso.NamedWorkloadWith(w, virtuoso.WorkloadParams{Scale: *scale}); err != nil {
			check(fmt.Errorf("%w (try -list)", err))
		}
	}
	if *frag < 0 || *frag > 1 {
		check(fmt.Errorf("virtuoso: -frag %v out of range [0, 1]", *frag))
	}
	tierSpecs, err := parseTierSpecs(*tiers)
	check(err)
	var tierPolicies []string
	for _, name := range splitList(*tierPolicy) {
		p, err := virtuoso.ParseTierPolicy(name)
		check(err)
		tierPolicies = append(tierPolicies, p)
	}
	if len(tierPolicies) > 0 && len(tierSpecs) == 0 {
		check(fmt.Errorf("virtuoso: -tier-policy set without -tiers"))
	}

	base := virtuoso.ScaledConfig()
	base.Mode = m
	base.MaxAppInsts = *insts
	base.FragFree2M = 1 - *frag
	base.QuantumCycles = *quantum
	base.ASIDRetention = *asidRet

	// -policy was left at its default: pair designs with their natural
	// policies (utopia wants its own allocator, RMM eager paging).
	policyFlagSet := false
	flag.Visit(func(f *flag.Flag) { policyFlagSet = policyFlagSet || f.Name == "policy" })

	// -multi turns the workload list into one multiprogrammed mix; the
	// other axes (designs, policies, seeds) still expand the grid.
	gridWorkloads := workloadList
	var mixes [][]string
	if *multi {
		gridWorkloads = nil
		mixes = [][]string{workloadList}
	}

	sweep := &virtuoso.Sweep{
		Base:         base,
		Workloads:    gridWorkloads,
		Mixes:        mixes,
		Designs:      designs,
		Policies:     policies,
		Seeds:        seedList,
		TierPolicies: tierPolicies,
		Params:       virtuoso.WorkloadParams{Scale: *scale},
		Parallel:     *parallel,
		Configure: func(cfg *virtuoso.Config, p virtuoso.Point) error {
			if policyFlagSet {
				return nil
			}
			switch cfg.Design {
			case virtuoso.DesignUtopia:
				cfg.Policy = virtuoso.PolicyUtopia
			case virtuoso.DesignRMM:
				cfg.Policy = virtuoso.PolicyEager
			}
			return nil
		},
		Checkpoint: *ckpt,
	}
	if len(tierSpecs) > 0 {
		sweep.TierSpecs = [][]virtuoso.TierSpec{tierSpecs}
	}
	sweep.Shard, err = virtuoso.ParseShard(*shard)
	check(err)
	// The natural-policy Configure hook changes results in a way the
	// declarative spec fields cannot express, so salt the spec hash with
	// it: a checkpoint written under the pairing cannot be resumed by a
	// run without it, and vice versa.
	if !policyFlagSet {
		sweep.Label = "cli-natural-policies"
	}

	// -progress streams interval snapshots from inside each running
	// point — the Observer API driving a live progress display. Points
	// run concurrently, so one mutex serialises the stderr lines.
	if *progress {
		var mu sync.Mutex
		sweep.Observe = func(p virtuoso.Point) virtuoso.Observer {
			label := fmt.Sprintf("%s/%s/%s seed=%d", p.Workload, p.Design, p.Policy, p.Seed)
			// -insts bounds each process individually, while the
			// snapshot counters aggregate the whole mix: scale the
			// denominator, and clamp since workloads may finish early.
			bound := *insts * uint64(max(1, len(p.Mix)))
			return virtuoso.ObserverFunc(func(s virtuoso.Snapshot) {
				mu.Lock()
				defer mu.Unlock()
				pct := ""
				if bound > 0 {
					pct = fmt.Sprintf(" (%3.0f%%)", min(100, 100*float64(s.AppInsts)/float64(bound)))
				}
				fmt.Fprintf(os.Stderr, "  ... %-40s insts=%d%s IPC=%.3f MPKI=%.2f faults=%d\n",
					label, s.AppInsts, pct, s.IPC(),
					1000*float64(s.L2TLBMisses)/float64(max(s.AppInsts, 1)), s.MinorFaults+s.MajorFaults)
			})
		}
	}

	// Ctrl-C cancels the sweep mid-simulation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	points := sweep.Points()
	if len(points) > 1 && !*jsonOut {
		sweep.Progress = func(ev virtuoso.SweepEvent) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s/%s seed=%d\n",
				ev.Done, ev.Total, ev.Point.Workload, ev.Point.Design, ev.Point.Policy, ev.Point.Seed)
		}
	}

	report, err := sweep.Run(ctx)
	if err != nil {
		if report != nil && len(report.Results) > 0 {
			fmt.Fprintf(os.Stderr, "sweep aborted after %d/%d points\n", len(report.Results), report.Points)
		}
		check(err)
	}

	switch {
	case *jsonOut:
		data, err := report.JSON()
		check(err)
		fmt.Println(string(data))
	case len(report.Results) == 1 && report.Results[0].Multi != nil:
		printMulti(report.Results[0])
	case len(report.Results) == 1:
		printSingle(report.Results[0])
	default:
		printGrid(report)
	}
}

// printMulti renders one multiprogrammed run: the scheduler summary, a
// per-process table, and the aggregate metrics.
func printMulti(r virtuoso.Result) {
	mm := r.Multi
	mode := "flush-on-switch"
	if mm.ASIDRetention {
		mode = "ASID retention"
	}
	fmt.Printf("mix             %s\n", r.Workload)
	fmt.Printf("design/policy   %s / %s (%s, seed %d)\n", r.Design, r.Metrics.Policy, r.Mode, r.Seed)
	fmt.Printf("scheduler       quantum=%d cycles, %s, %d switches (%d cycles), %d TLB flushes\n",
		mm.Quantum, mode, mm.ContextSwitches, r.Metrics.CtxSwitchCycles, mm.TLBFlushes)
	fmt.Printf("\n%-4s %-12s %8s %8s %10s %8s %8s %9s %8s %8s\n",
		"pid", "workload", "slices", "IPC", "insts", "MPKI", "walks", "minflt", "swapout", "collapse")
	for _, pm := range mm.Procs {
		fmt.Printf("%-4d %-12s %8d %8.3f %10d %8.2f %8d %9d %8d %8d\n",
			pm.PID, pm.Workload, pm.Slices, pm.IPC, pm.AppInsts,
			pm.L2TLBMPKI, pm.Walks, pm.OS.MinorFaults, pm.OS.SwapOuts, pm.OS.Collapses)
	}
	m := r.Metrics
	fmt.Printf("\naggregate       app=%d kernel=%d cycles=%d IPC %.3f\n", m.AppInsts, m.KernelInsts, m.Cycles, m.IPC)
	fmt.Printf("translation     %.2f%% of cycles, L2 TLB MPKI %.2f, avg PTW %.1f cycles (%d walks)\n",
		100*m.TranslationFraction(), m.L2TLBMPKI, m.AvgPTWLat, m.Walks)
	fmt.Printf("memory          %d minor / %d major faults, swap in/out %d/%d, reclaim runs %d\n",
		m.MinorFaults, m.MajorFaults, m.OS.SwapIns, m.OS.SwapOuts, m.OS.ReclaimRuns)
	fmt.Printf("wall time       %v\n", m.WallTime)
}

func printSingle(r virtuoso.Result) {
	m := r.Metrics
	fmt.Printf("workload        %s\n", m.Workload)
	fmt.Printf("design/policy   %s / %s (%s, seed %d)\n", m.Design, m.Policy, r.Mode, r.Seed)
	fmt.Printf("instructions    app=%d kernel=%d (%.1f%% kernel)\n", m.AppInsts, m.KernelInsts, 100*m.KernelInstFraction())
	fmt.Printf("cycles          %d  IPC %.3f\n", m.Cycles, m.IPC)
	fmt.Printf("translation     %.2f%% of cycles, L2 TLB MPKI %.2f, avg PTW %.1f cycles (%d walks)\n",
		100*m.TranslationFraction(), m.L2TLBMPKI, m.AvgPTWLat, m.Walks)
	fmt.Printf("allocation      %.2f%% of cycles, %d minor / %d major faults\n",
		100*m.AllocationFraction(), m.MinorFaults, m.MajorFaults)
	if m.PFLatNs != nil && m.PFLatNs.Len() > 0 {
		fmt.Printf("fault latency   median %.0f ns, p99 %.0f ns, max %.0f ns\n",
			m.PFLatNs.Median(), m.PFLatNs.Percentile(99), m.PFLatNs.Max())
	}
	fmt.Printf("dram            row-hit %.1f%%, conflicts %d (translation-induced %d)\n",
		100*m.Dram.RowHitRate(), m.Dram.TotalConflicts(), m.Dram.TranslationConflicts())
	fmt.Printf("os              THP pool/direct/fallback %d/%d/%d, collapses %d, swap in/out %d/%d\n",
		m.OS.THPPoolHits, m.OS.THPDirectZero, m.OS.THPFallback4K, m.OS.Collapses, m.OS.SwapIns, m.OS.SwapOuts)
	if len(m.Tiers) > 0 {
		fmt.Printf("tiering         policy %s, %d demotions / %d promotions, %d migration cycles\n",
			r.TierPolicy, m.OS.Demotions, m.OS.Promotions, m.OS.MigrationCycles)
		for _, ts := range m.Tiers {
			fmt.Printf("  tier %-9s %6.1f MB used, in/out %d/%d pages (%d promoted), rd/wr cycles %d/%d\n",
				ts.Name, float64(ts.UsedBytes)/(1<<20), ts.PagesIn, ts.PagesOut, ts.Promotions,
				ts.ReadCycles, ts.WriteCycles)
		}
	}
	if m.SwapDev.Reads+m.SwapDev.Writes > 0 {
		fmt.Printf("swap device     %d reads / %d writes, cache hits %d, busy %d cycles\n",
			m.SwapDev.Reads, m.SwapDev.Writes, m.SwapDev.CacheHits, m.SwapDev.BusyCycles)
	}
	fmt.Printf("wall time       %v\n", m.WallTime)
}

func printGrid(report *virtuoso.Report) {
	// The tier-policy column only appears when the grid has tiered
	// points, so flat sweeps keep their familiar table.
	tiered := false
	for _, r := range report.Results {
		tiered = tiered || r.TierPolicy != ""
	}
	tp := ""
	if tiered {
		tp = fmt.Sprintf(" %-8s", "tierpol")
	}
	fmt.Printf("%-12s %-10s %-8s%s %-5s %8s %8s %8s %9s %8s\n",
		"workload", "design", "policy", tp, "seed", "IPC", "MPKI", "avgPTW", "minflt", "wall")
	for _, r := range report.Results {
		m := r.Metrics
		if tiered {
			tp = fmt.Sprintf(" %-8s", r.TierPolicy)
		}
		fmt.Printf("%-12s %-10s %-8s%s %-5d %8.3f %8.2f %8.1f %9d %8s\n",
			r.Workload, r.Design, r.Policy, tp, r.Seed,
			m.IPC, m.L2TLBMPKI, m.AvgPTWLat, m.MinorFaults, m.WallTime.Round(1e6).String())
	}
	fmt.Printf("\n%d points in %v\n", len(report.Results), report.Wall.Round(1e6))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseDesigns(s string) ([]virtuoso.DesignName, error) {
	var out []virtuoso.DesignName
	for _, part := range splitList(s) {
		d, err := virtuoso.ParseDesign(part)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parsePolicies(s string) ([]virtuoso.PolicyName, error) {
	var out []virtuoso.PolicyName
	for _, part := range splitList(s) {
		p, err := virtuoso.ParsePolicy(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// parseTierSpecs parses the -tiers flag: a comma-separated list of
// name:bytes:readLat:writeLat[:bytesPerCycle] entries ordered fastest
// to slowest, e.g. "cxl:64M:600:900:8,nvm:1G:2500:8000:2".
func parseTierSpecs(s string) ([]virtuoso.TierSpec, error) {
	var out []virtuoso.TierSpec
	for _, part := range splitList(s) {
		f := strings.Split(part, ":")
		if len(f) != 4 && len(f) != 5 {
			return nil, fmt.Errorf("virtuoso: bad -tiers entry %q, want name:bytes:readLat:writeLat[:bytesPerCycle]", part)
		}
		spec := virtuoso.TierSpec{Name: strings.TrimSpace(f[0])}
		var err error
		if spec.Bytes, err = parseSize(f[1]); err != nil {
			return nil, fmt.Errorf("virtuoso: tier %q: %w", spec.Name, err)
		}
		if spec.ReadLat, err = strconv.ParseUint(f[2], 10, 64); err != nil {
			return nil, fmt.Errorf("virtuoso: tier %q: bad read latency %q", spec.Name, f[2])
		}
		if spec.WriteLat, err = strconv.ParseUint(f[3], 10, 64); err != nil {
			return nil, fmt.Errorf("virtuoso: tier %q: bad write latency %q", spec.Name, f[3])
		}
		if len(f) == 5 {
			if spec.BytesPerCycle, err = strconv.ParseUint(f[4], 10, 64); err != nil {
				return nil, fmt.Errorf("virtuoso: tier %q: bad bandwidth %q", spec.Name, f[4])
			}
		}
		out = append(out, spec)
	}
	if err := virtuoso.ValidateTierSpecs(out); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSize parses a byte count with an optional K/M/G suffix.
func parseSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range splitList(s) {
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("virtuoso: bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
