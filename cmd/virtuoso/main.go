// Command virtuoso runs one simulation configuration and prints its
// metrics — the CLI equivalent of the quickstart example.
//
// Usage:
//
//	virtuoso -workload BFS -design radix -policy thp -insts 2000000
//	virtuoso -workload Llama-2-7B -design utopia -policy utopia
//	virtuoso -list
package main

import (
	"flag"
	"fmt"
	"os"

	virtuoso "repro"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "BFS", "workload name (-list to enumerate)")
		design   = flag.String("design", "radix", "translation design: radix|ech|hdc|ht|utopia|rmm|midgard")
		policy   = flag.String("policy", "thp", "allocation policy: bd|thp|cr-thp|ar-thp|utopia|eager")
		mode     = flag.String("mode", "imitation", "OS methodology: imitation|emulation")
		insts    = flag.Uint64("insts", 2_000_000, "max application instructions (0 = run to completion)")
		scale    = flag.Float64("scale", 0.25, "workload footprint scale")
		frag     = flag.Float64("frag", 0.80, "fragmentation level (fraction of 2MB blocks unavailable)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("long-running:")
		for _, w := range virtuoso.LongRunningSuite() {
			fmt.Printf("  %-12s footprint=%dMB\n", w.Name(), w.FootprintBytes()>>20)
		}
		fmt.Println("short-running:")
		for _, w := range virtuoso.ShortRunningSuite() {
			fmt.Printf("  %-12s footprint=%dMB\n", w.Name(), w.FootprintBytes()>>20)
		}
		return
	}

	workloads.Scale = *scale
	w, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *workload)
		os.Exit(1)
	}

	cfg := virtuoso.ScaledConfig()
	cfg.Design = core.DesignName(*design)
	cfg.Policy = core.PolicyName(*policy)
	cfg.MaxAppInsts = *insts
	cfg.FragFree2M = 1 - *frag
	cfg.Seed = *seed
	if *mode == "emulation" {
		cfg.Mode = core.Emulation
	}
	switch cfg.Design {
	case core.DesignUtopia:
		if cfg.Policy == "" || cfg.Policy == core.PolicyTHP {
			cfg.Policy = core.PolicyUtopia
		}
	case core.DesignRMM:
		cfg.Policy = core.PolicyEager
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "config error:", err)
		os.Exit(1)
	}
	m := sys.Run(w)

	fmt.Printf("workload        %s (%s, footprint %d MB)\n", m.Workload, w.Class(), w.FootprintBytes()>>20)
	fmt.Printf("design/policy   %s / %s\n", m.Design, m.Policy)
	fmt.Printf("instructions    app=%d kernel=%d (%.1f%% kernel)\n", m.AppInsts, m.KernelInsts, 100*m.KernelInstFraction())
	fmt.Printf("cycles          %d  IPC %.3f\n", m.Cycles, m.IPC)
	fmt.Printf("translation     %.2f%% of cycles, L2 TLB MPKI %.2f, avg PTW %.1f cycles (%d walks)\n",
		100*m.TranslationFraction(), m.L2TLBMPKI, m.AvgPTWLat, m.Walks)
	fmt.Printf("allocation      %.2f%% of cycles, %d minor / %d major faults\n",
		100*m.AllocationFraction(), m.MinorFaults, m.MajorFaults)
	if m.PFLatNs != nil && m.PFLatNs.Len() > 0 {
		fmt.Printf("fault latency   median %.0f ns, p99 %.0f ns, max %.0f ns\n",
			m.PFLatNs.Median(), m.PFLatNs.Percentile(99), m.PFLatNs.Max())
	}
	fmt.Printf("dram            row-hit %.1f%%, conflicts %d (translation-induced %d)\n",
		100*m.Dram.RowHitRate(), m.Dram.TotalConflicts(), m.Dram.TranslationConflicts())
	fmt.Printf("os              THP pool/direct/fallback %d/%d/%d, collapses %d, swap in/out %d/%d\n",
		m.OS.THPPoolHits, m.OS.THPDirectZero, m.OS.THPFallback4K, m.OS.Collapses, m.OS.SwapIns, m.OS.SwapOuts)
	fmt.Printf("wall time       %v\n", m.WallTime)
}
