// The sweep subcommand is the cluster-scale face of the Sweep API:
// declarative JSON specs, deterministic shard slices, durable
// checkpoints, a streaming serve mode, and merge tooling that
// reassembles shard files into the exact unsharded Report.
//
//	virtuoso sweep run   -spec study.json -checkpoint study.jsonl
//	virtuoso sweep run   -spec study.json -shard 0/3 -checkpoint s0.jsonl
//	virtuoso sweep merge -o report.json s0.jsonl s1.jsonl s2.jsonl
//	virtuoso sweep hash  -spec study.json
//	virtuoso sweep serve -addr :8089 -dir jobs/
//	virtuoso sweep serve -stdin < study.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	virtuoso "repro"
)

func sweepCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: virtuoso sweep run|merge|hash|serve [flags]")
		os.Exit(2)
	}
	switch args[0] {
	case "run":
		sweepRunCmd(args[1:])
	case "merge":
		sweepMergeCmd(args[1:])
	case "hash":
		sweepHashCmd(args[1:])
	case "serve":
		sweepServeCmd(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "virtuoso sweep: unknown subcommand %q (want run, merge, hash, or serve)\n", args[0])
		os.Exit(2)
	}
}

// loadSpec reads and parses a sweep spec from a file or stdin ("-").
func loadSpec(path string) (*virtuoso.SweepSpec, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return virtuoso.ParseSweepSpec(data)
}

// writeOut writes data to path, or stdout when path is empty.
func writeOut(path string, data []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sweepRunCmd(args []string) {
	fs := flag.NewFlagSet("sweep run", flag.ExitOnError)
	var (
		specPath   = fs.String("spec", "", "sweep spec JSON file (\"-\" = stdin); required")
		shard      = fs.String("shard", "", "run only this slice of the grid, as i/N (overrides the spec)")
		checkpoint = fs.String("checkpoint", "", "JSONL checkpoint file: persist per-point results, resume if it exists (overrides the spec)")
		cacheDir   = fs.String("cache", "", "content-addressed point-result cache directory: warm points skip simulation, fresh points are stored (overrides the spec)")
		parallel   = fs.Int("parallel", 0, "max concurrent simulations (0 = spec value or GOMAXPROCS)")
		canonical  = fs.Bool("canonical", false, "emit the canonical (host-time-stripped) report form for byte comparison")
		progress   = fs.Bool("progress", false, "log per-point completions to stderr")
		out        = fs.String("o", "", "write the report here instead of stdout")
	)
	fs.Parse(args)
	if *specPath == "" {
		check(fmt.Errorf("virtuoso sweep run: -spec is required"))
	}
	spec, err := loadSpec(*specPath)
	check(err)
	sweep, err := spec.Sweep()
	check(err)
	if *shard != "" {
		sweep.Shard, err = virtuoso.ParseShard(*shard)
		check(err)
	}
	if *checkpoint != "" {
		sweep.Checkpoint = *checkpoint
	}
	if *cacheDir != "" {
		sweep.Cache = *cacheDir
	}
	if *parallel != 0 {
		sweep.Parallel = *parallel
	}
	if *progress {
		sweep.Progress = func(ev virtuoso.SweepEvent) {
			src := ""
			if ev.FromCache {
				src = " (cache)"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] point %d %s/%s/%s seed=%d%s\n",
				ev.Done, ev.Total, ev.Point.Index, ev.Point.Workload, ev.Point.Design, ev.Point.Policy, ev.Point.Seed, src)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, runErr := sweep.Run(ctx)
	if report != nil && (sweep.Cache != "" || sweep.Checkpoint != "") {
		fmt.Fprintf(os.Stderr, "sweep: %d points done: %d restored from checkpoint, %d from cache, %d simulated\n",
			len(report.Results), report.FromCheckpoint, report.FromCache, report.Executed)
	}
	if report != nil {
		var data []byte
		if *canonical {
			data, err = report.CanonicalJSON()
		} else {
			data, err = report.JSON()
		}
		check(err)
		check(writeOut(*out, data))
	}
	if runErr != nil {
		if report != nil && sweep.Checkpoint != "" {
			fmt.Fprintf(os.Stderr, "sweep interrupted with %d points complete; rerun the same command to resume from %s\n",
				len(report.Results), sweep.Checkpoint)
		}
		check(runErr)
	}
}

func sweepMergeCmd(args []string) {
	fs := flag.NewFlagSet("sweep merge", flag.ExitOnError)
	var (
		canonical = fs.Bool("canonical", false, "emit the canonical (host-time-stripped) report form for byte comparison")
		out       = fs.String("o", "", "write the merged report here instead of stdout")
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		check(fmt.Errorf("virtuoso sweep merge: no shard checkpoint files given"))
	}
	report, err := virtuoso.MergeCheckpoints(fs.Args()...)
	check(err)
	var data []byte
	if *canonical {
		data, err = report.CanonicalJSON()
	} else {
		data, err = report.JSON()
	}
	check(err)
	check(writeOut(*out, data))
}

func sweepHashCmd(args []string) {
	fs := flag.NewFlagSet("sweep hash", flag.ExitOnError)
	specPath := fs.String("spec", "", "sweep spec JSON file (\"-\" = stdin); required")
	fs.Parse(args)
	if *specPath == "" {
		check(fmt.Errorf("virtuoso sweep hash: -spec is required"))
	}
	spec, err := loadSpec(*specPath)
	check(err)
	sweep, err := spec.Sweep()
	check(err)
	summary := struct {
		SpecHash string `json:"spec_hash"`
		Points   int    `json:"points"`
		Shard    string `json:"shard,omitempty"`
	}{sweep.SpecHash(), len(sweep.Points()), sweep.Shard.String()}
	data, err := json.Marshal(summary)
	check(err)
	fmt.Println(string(data))
}
