// sweep serve: a long-lived service that accepts sweep specs and
// streams per-point results as newline-delimited JSON. Jobs are keyed
// by spec hash and backed by checkpoint files, so a job survives both
// client disconnects (the run keeps going server-side; reconnecting
// replays finished points from memory) and server restarts (the spec
// is persisted next to the checkpoint and the job resumes from disk,
// re-simulating nothing that completed).
//
// Protocol (one JSON object per line, in order):
//
//	{"event":"hello","spec_hash":"sj1-…","points":N,"done":D,"total":T}
//	{"event":"result","done":D,"total":T,"eta_ns":…,"result":{…}}   per point
//	{"event":"snapshot","point":I,"snapshot":{…}}                   live only
//	{"event":"done","done":T,"total":T}  or  {"event":"error","error":"…"}
//
// Endpoints: POST / (spec body → submit or attach, stream), GET
// /sweeps/<hash> (attach, stream), GET /sweeps (list). Snapshot events
// stream only while a client is attached during the run — they are
// observation, not results, and are not replayed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	virtuoso "repro"
)

// serveEvent is one NDJSON line of the serve stream.
type serveEvent struct {
	Event    string             `json:"event"`
	SpecHash string             `json:"spec_hash,omitempty"`
	Points   int                `json:"points,omitempty"`
	Done     int                `json:"done,omitempty"`
	Total    int                `json:"total,omitempty"`
	EtaNs    int64              `json:"eta_ns,omitempty"`
	Result   *virtuoso.Result   `json:"result,omitempty"`
	Point    *int               `json:"point,omitempty"`
	Snapshot *virtuoso.Snapshot `json:"snapshot,omitempty"`
	Err      string             `json:"error,omitempty"`
}

// sweepJob is one submitted sweep: a background run plus its replay
// log and live subscribers.
type sweepJob struct {
	hash  string
	total int // points this job runs (whole grid: serve rejects shards)

	mu   sync.Mutex
	log  []serveEvent // result events in completion order, for replay
	subs map[chan serveEvent]bool
	done bool
	err  error

	started  time.Time
	resumed  int // points restored from the checkpoint at job start
	cached   int // points answered by the result cache, not simulated
	executed int // points actually simulated by this process

	cancel context.CancelFunc
}

// attach subscribes a client: it returns a copy of the replay log and
// a channel carrying every later event, with no gap and no duplicate
// between them (both happen under one lock).
func (j *sweepJob) attach() ([]serveEvent, chan serveEvent, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := append([]serveEvent(nil), j.log...)
	if j.done {
		return replay, nil, true
	}
	ch := make(chan serveEvent, 256)
	j.subs[ch] = true
	return replay, ch, false
}

func (j *sweepJob) detach(ch chan serveEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publish appends a result-bearing event to the replay log (unless it
// is a transient snapshot) and fans it out. A subscriber too slow to
// drain its buffer is dropped for snapshots and unsubscribed for
// results — it can reconnect and replay without loss.
func (j *sweepJob) publish(ev serveEvent, transient bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !transient {
		j.log = append(j.log, ev)
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			if !transient {
				delete(j.subs, ch)
				close(ch)
			}
		}
	}
}

// finish closes the job: the terminal event is logged for replay and
// every live subscriber's channel is closed after receiving it.
func (j *sweepJob) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done = true
	j.err = err
	ev := serveEvent{Event: "done", Done: len(j.log), Total: j.total}
	if err != nil {
		ev = serveEvent{Event: "error", Err: err.Error()}
	}
	j.log = append(j.log, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
		delete(j.subs, ch)
	}
}

// sweepServer owns the job registry and the state directory where
// specs and checkpoints live.
type sweepServer struct {
	dir      string
	parallel int
	// cache, when non-empty, is a content-addressed point-result cache
	// directory shared by every job (Sweep.Cache): warm points are
	// answered without simulating, and every simulated point warms the
	// cache for later sweeps — including sweeps with different grids
	// that merely overlap this one.
	cache string

	ctx    context.Context // parent of every job run; server shutdown cancels it
	cancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*sweepJob
}

func newSweepServer(dir string, parallel int) (*sweepServer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &sweepServer{dir: dir, parallel: parallel, ctx: ctx, cancel: cancel, jobs: make(map[string]*sweepJob)}, nil
}

func (s *sweepServer) specPath(hash string) string { return filepath.Join(s.dir, hash+".spec.json") }
func (s *sweepServer) ckptPath(hash string) string { return filepath.Join(s.dir, hash+".ckpt.jsonl") }

// submit registers (or re-attaches to) the job for spec. The same spec
// hashes to the same job: resubmitting an in-flight or finished sweep
// attaches instead of recomputing.
func (s *sweepServer) submit(spec *virtuoso.SweepSpec, raw []byte) (*sweepJob, error) {
	sweep, err := spec.Sweep()
	if err != nil {
		return nil, err
	}
	if sweep.Shard.Enabled() {
		// Shards of one sweep share its spec hash; admitting them here
		// would collide on the job key and checkpoint file. Sharding is
		// for `sweep run` fan-out; merge the shard files afterwards.
		return nil, fmt.Errorf("sweep serve runs whole grids: shard %s belongs in `virtuoso sweep run -shard`", sweep.Shard)
	}
	hash := sweep.SpecHash()

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[hash]; ok {
		return j, nil
	}
	if err := os.WriteFile(s.specPath(hash), raw, 0o644); err != nil {
		return nil, err
	}
	j := s.startJobLocked(hash, sweep)
	return j, nil
}

// lookup finds a job by spec hash, reviving it from the persisted spec
// after a server restart (the checkpoint makes revival cheap: finished
// points restore from disk).
func (s *sweepServer) lookup(hash string) (*sweepJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[hash]; ok {
		return j, nil
	}
	raw, err := os.ReadFile(s.specPath(hash))
	if err != nil {
		return nil, fmt.Errorf("unknown sweep %s", hash)
	}
	spec, err := virtuoso.ParseSweepSpec(raw)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: persisted spec unreadable: %w", hash, err)
	}
	sweep, err := spec.Sweep()
	if err != nil {
		return nil, err
	}
	return s.startJobLocked(hash, sweep), nil
}

// startJobLocked launches the sweep in the background and wires its
// Progress and Observe hooks into the job's event stream. Caller holds
// s.mu.
func (s *sweepServer) startJobLocked(hash string, sweep *virtuoso.Sweep) *sweepJob {
	total := len(sweep.Points())
	j := &sweepJob{hash: hash, total: total, subs: make(map[chan serveEvent]bool), started: time.Now()}
	jobCtx, cancel := context.WithCancel(s.ctx)
	j.cancel = cancel
	s.jobs[hash] = j

	sweep.Parallel = s.parallel
	sweep.Checkpoint = s.ckptPath(hash)
	sweep.Cache = s.cache
	sweep.Progress = func(ev virtuoso.SweepEvent) {
		if ev.Err != nil {
			return // the terminal error event carries the failure
		}
		j.mu.Lock()
		if ev.FromCache {
			j.cached++
		} else {
			j.executed++
		}
		j.mu.Unlock()
		done, eta := j.doneEta(ev.Done)
		j.publish(serveEvent{Event: "result", Done: done, Total: ev.Total, EtaNs: int64(eta), Result: ev.Result}, false)
	}
	sweep.Observe = func(p virtuoso.Point) virtuoso.Observer {
		idx := p.Index
		return virtuoso.ObserverFunc(func(snap virtuoso.Snapshot) {
			sn := snap
			j.publish(serveEvent{Event: "snapshot", Point: &idx, Snapshot: &sn}, true)
		})
	}

	go func() {
		defer cancel()
		// Replay checkpoint-restored points into the stream first: a
		// client attaching to a revived job sees every completed point,
		// not just the ones this process simulates.
		if restored, err := readCheckpointIfAny(sweep.Checkpoint); err == nil {
			j.mu.Lock()
			j.resumed = len(restored)
			j.mu.Unlock()
			for i := range restored {
				r := restored[i]
				j.publish(serveEvent{Event: "result", Done: i + 1, Total: total, Result: &r}, false)
			}
		}
		_, err := sweep.Run(jobCtx)
		j.finish(err)
	}()
	return j
}

// doneEta folds the sweep's own Done counter (which includes
// checkpoint-restored points) with the job's ETA estimate: host time
// per freshly simulated point times the points still pending (restored
// and cache-answered points are free and excluded from the rate).
func (j *sweepJob) doneEta(done int) (int, time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fresh := done - j.resumed - j.cached
	var eta time.Duration
	if fresh > 0 {
		per := time.Since(j.started) / time.Duration(fresh)
		eta = per * time.Duration(j.total-done)
	}
	return done, eta
}

// readCheckpointIfAny loads a checkpoint that exists; a missing file is
// a fresh job, not an error.
func readCheckpointIfAny(path string) ([]virtuoso.Result, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	_, results, err := virtuoso.ReadCheckpoint(path)
	return results, err
}

// ServeHTTP routes: POST / or /sweeps submits, GET /sweeps lists, GET
// /sweeps/<hash> attaches.
func (s *sweepServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost:
		s.handleSubmit(w, r)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/sweeps/"):
		s.handleAttach(w, r, strings.TrimPrefix(r.URL.Path, "/sweeps/"))
	case r.Method == http.MethodGet && (r.URL.Path == "/sweeps" || r.URL.Path == "/"):
		s.handleList(w)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *sweepServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := virtuoso.ParseSweepSpec(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.submit(spec, raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.stream(w, r, j)
}

func (s *sweepServer) handleAttach(w http.ResponseWriter, r *http.Request, hash string) {
	j, err := s.lookup(hash)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.stream(w, r, j)
}

func (s *sweepServer) handleList(w http.ResponseWriter) {
	type jobInfo struct {
		SpecHash string `json:"spec_hash"`
		Points   int    `json:"points"`
		Done     int    `json:"done"`
		Running  bool   `json:"running"`
		EtaNs    int64  `json:"eta_ns,omitempty"`
		Err      string `json:"error,omitempty"`
	}
	s.mu.Lock()
	jobs := make([]*sweepJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	infos := make([]jobInfo, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		done := 0
		for _, ev := range j.log {
			if ev.Event == "result" {
				done++
			}
		}
		info := jobInfo{SpecHash: j.hash, Points: j.total, Done: done, Running: !j.done}
		if j.err != nil {
			info.Err = j.err.Error()
		}
		if !j.done && done > j.resumed {
			per := time.Since(j.started) / time.Duration(done-j.resumed)
			info.EtaNs = int64(per * time.Duration(j.total-done))
		}
		j.mu.Unlock()
		infos = append(infos, info)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(infos)
}

// stream writes the NDJSON event sequence: hello, the replay log, then
// live events until the job finishes or the client goes away. The job
// keeps running when the client disconnects.
func (s *sweepServer) stream(w http.ResponseWriter, r *http.Request, j *sweepJob) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ev serveEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	replay, live, finished := j.attach()
	if live != nil {
		defer j.detach(live)
	}
	done := 0
	for _, ev := range replay {
		if ev.Event == "result" {
			done++
		}
	}
	if !emit(serveEvent{Event: "hello", SpecHash: j.hash, Points: j.total, Done: done, Total: j.total}) {
		return
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	if finished {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if !emit(ev) {
				return
			}
			if ev.Event == "done" || ev.Event == "error" {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20+1))
	if err != nil {
		return nil, err
	}
	if len(raw) > 1<<20 {
		return nil, fmt.Errorf("spec too large")
	}
	return raw, nil
}

func sweepServeCmd(args []string) {
	fs := newServeFlags()
	fs.fs.Parse(args)
	if *fs.stdin {
		serveStdin(fs)
		return
	}
	srv, err := newSweepServer(*fs.dir, *fs.parallel)
	check(err)
	srv.cache = *fs.cache
	httpSrv := &http.Server{Addr: *fs.addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		srv.cancel() // stop in-flight sweeps; checkpoints keep their completed points
		httpSrv.Close()
	}()
	fmt.Fprintf(os.Stderr, "virtuoso sweep serve: listening on %s, state in %s\n", *fs.addr, *fs.dir)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		check(err)
	}
}

type serveFlags struct {
	fs       *flag.FlagSet
	addr     *string
	dir      *string
	cache    *string
	parallel *int
	stdin    *bool
}

func newServeFlags() serveFlags {
	fs := flag.NewFlagSet("sweep serve", flag.ExitOnError)
	return serveFlags{
		fs:       fs,
		addr:     fs.String("addr", ":8089", "HTTP listen address"),
		dir:      fs.String("dir", "sweep-jobs", "state directory for persisted specs and checkpoints"),
		cache:    fs.String("cache", "", "content-addressed point-result cache directory shared by all jobs (warm points skip simulation)"),
		parallel: fs.Int("parallel", 0, "max concurrent simulations per job (0 = GOMAXPROCS)"),
		stdin:    fs.Bool("stdin", false, "read one spec from stdin and stream its events to stdout instead of serving HTTP"),
	}
}

// serveStdin is the transport-free variant: one spec in on stdin, its
// event stream out on stdout. Checkpointing still applies, so piping
// the same spec twice resumes rather than recomputes.
func serveStdin(fsv serveFlags) {
	srv, err := newSweepServer(*fsv.dir, *fsv.parallel)
	check(err)
	srv.cache = *fsv.cache
	spec, err := loadSpec("-")
	check(err)
	raw, err := json.Marshal(spec)
	check(err)
	j, err := srv.submit(spec, raw)
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		srv.cancel()
	}()

	enc := json.NewEncoder(os.Stdout)
	replay, live, finished := j.attach()
	done := 0
	for _, ev := range replay {
		if ev.Event == "result" {
			done++
		}
	}
	enc.Encode(serveEvent{Event: "hello", SpecHash: j.hash, Points: j.total, Done: done, Total: j.total})
	for _, ev := range replay {
		enc.Encode(ev)
	}
	if finished {
		return
	}
	for ev := range live {
		enc.Encode(ev)
		if ev.Event == "done" || ev.Event == "error" {
			return
		}
	}
}
