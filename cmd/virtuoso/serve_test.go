package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testSpec is a small 4-point grid (2 workloads × 2 seeds) that runs in
// well under a second per point at scale 0.05.
const testSpec = `{"workloads": ["JSON", "2D-Sum"], "seeds": [1, 2], "scale": 0.05, "max_app_insts": 80000}`

// readEvents decodes NDJSON events from r until the terminal done/error
// event, limit events, or EOF.
func readEvents(t *testing.T, r *bufio.Scanner, limit int) []serveEvent {
	t.Helper()
	var evs []serveEvent
	for len(evs) < limit && r.Scan() {
		var ev serveEvent
		if err := json.Unmarshal(r.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", r.Text(), err)
		}
		evs = append(evs, ev)
		if ev.Event == "done" || ev.Event == "error" {
			break
		}
	}
	return evs
}

func (j *sweepJob) executedCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.executed
}

// TestServeDisconnectReconnect is the serve acceptance test: submit a
// spec, read a couple of events, drop the connection mid-run, reconnect
// by spec hash, and verify the stream completes with every point
// delivered exactly once — and, critically, that no completed point was
// re-simulated because of the disconnect.
func TestServeDisconnectReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	srv, err := newSweepServer(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.cancel()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Submit and read just the hello plus the first result, then drop
	// the connection while the sweep is still running.
	resp, err := http.Post(ts.URL+"/", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	first := readEvents(t, sc, 2)
	resp.Body.Close() // disconnect mid-stream
	if len(first) < 1 || first[0].Event != "hello" {
		t.Fatalf("stream did not start with hello: %+v", first)
	}
	hash := first[0].SpecHash
	if hash == "" || first[0].Points != 4 {
		t.Fatalf("bad hello: %+v", first[0])
	}

	// Reconnect by hash and read to completion. The replay log carries
	// everything that finished while no client was attached.
	deadline := time.After(2 * time.Minute)
	seen := map[int]bool{}
	for len(seen) < 4 {
		select {
		case <-deadline:
			t.Fatalf("sweep did not complete; %d/4 results seen", len(seen))
		default:
		}
		resp, err := http.Get(ts.URL + "/sweeps/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reconnect status = %d", resp.StatusCode)
		}
		evs := readEvents(t, bufio.NewScanner(resp.Body), 1000)
		resp.Body.Close()
		if evs[0].Event != "hello" || evs[0].SpecHash != hash {
			t.Fatalf("reconnect stream did not start with matching hello: %+v", evs[0])
		}
		for _, ev := range evs {
			switch ev.Event {
			case "result":
				if ev.Result == nil {
					t.Fatalf("result event without result: %+v", ev)
				}
				if seen[ev.Result.Index] && ev.Event == "result" {
					// Replay repeats earlier points on reconnect — that is
					// the protocol, not recomputation.
					continue
				}
				seen[ev.Result.Index] = true
			case "error":
				t.Fatalf("sweep failed: %s", ev.Err)
			}
		}
		if last := evs[len(evs)-1]; last.Event == "done" {
			break
		}
	}
	if len(seen) != 4 {
		t.Fatalf("got results for %d points, want 4 (seen: %v)", len(seen), seen)
	}

	// The acceptance criterion: the disconnect did not cause any
	// completed point to be re-simulated.
	j, err := srv.lookup(hash)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.executedCount(); got != 4 {
		t.Fatalf("server simulated %d points for a 4-point grid; disconnect must not recompute", got)
	}

	// Resubmitting the identical spec attaches to the finished job and
	// replays it without running anything.
	resp, err = http.Post(ts.URL+"/", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	evs := readEvents(t, bufio.NewScanner(resp.Body), 1000)
	resp.Body.Close()
	if last := evs[len(evs)-1]; last.Event != "done" {
		t.Fatalf("resubmit replay did not end with done: %+v", last)
	}
	if got := j.executedCount(); got != 4 {
		t.Fatalf("resubmit recomputed: executed = %d, want 4", got)
	}
}

// TestServeRestartResumesFromCheckpoint verifies the server-restart
// path: a second server over the same state directory revives the job
// from its persisted spec and checkpoint, replaying all completed
// points without re-simulating them.
func TestServeRestartResumesFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	srv1, err := newSweepServer(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)

	resp, err := http.Post(ts1.URL+"/", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	evs := readEvents(t, bufio.NewScanner(resp.Body), 1000)
	resp.Body.Close()
	if last := evs[len(evs)-1]; last.Event != "done" {
		t.Fatalf("first run did not complete: %+v", last)
	}
	hash := evs[0].SpecHash
	srv1.cancel()
	ts1.Close()

	// "Restart": a fresh server over the same directory. The job is
	// revived from <hash>.spec.json and its checkpoint satisfies every
	// point, so nothing is simulated.
	srv2, err := newSweepServer(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.cancel()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	resp, err = http.Get(ts2.URL + "/sweeps/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	evs = readEvents(t, bufio.NewScanner(resp.Body), 1000)
	resp.Body.Close()
	results := 0
	for _, ev := range evs {
		if ev.Event == "result" {
			results++
		}
	}
	if results != 4 {
		t.Fatalf("revived job replayed %d results, want 4 (events: %+v)", results, evs)
	}
	if last := evs[len(evs)-1]; last.Event != "done" {
		t.Fatalf("revived stream did not end with done: %+v", last)
	}
	j, err := srv2.lookup(hash)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.executedCount(); got != 0 {
		t.Fatalf("revived job re-simulated %d points, want 0", got)
	}
}

// TestServeRejectsShardedSpec: two shards of one sweep share a spec
// hash and would collide on the job key, so serve refuses them.
func TestServeRejectsShardedSpec(t *testing.T) {
	srv, err := newSweepServer(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.cancel()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := `{"workloads": ["JSON"], "shard": "0/2", "max_app_insts": 1000}`
	resp, err := http.Post(ts.URL+"/", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sharded spec accepted with status %d, want 400", resp.StatusCode)
	}
}

// TestServeListsJobs checks the registry endpoint shape.
func TestServeListsJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	srv, err := newSweepServer(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.cancel()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := `{"workloads": ["JSON"], "scale": 0.05, "max_app_insts": 50000}`
	resp, err := http.Post(ts.URL+"/", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	evs := readEvents(t, bufio.NewScanner(resp.Body), 1000)
	resp.Body.Close()
	if last := evs[len(evs)-1]; last.Event != "done" {
		t.Fatalf("run did not complete: %+v", last)
	}

	resp, err = http.Get(ts.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []struct {
		SpecHash string `json:"spec_hash"`
		Points   int    `json:"points"`
		Done     int    `json:"done"`
		Running  bool   `json:"running"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Points != 1 || list[0].Done != 1 || list[0].Running {
		t.Fatalf("unexpected job list: %+v", list)
	}
	if !strings.HasPrefix(list[0].SpecHash, "sj1-") {
		t.Fatalf("job list spec hash %q not in sj1- form", list[0].SpecHash)
	}
}
