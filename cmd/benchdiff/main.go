// Command benchdiff compares `go test -bench` output against a
// committed baseline and fails on performance regressions — the gate
// behind CI's bench-smoke job.
//
//	go test -run '^$' -bench . -benchmem -count 3 -benchtime 2x . > current.txt
//	benchdiff -baseline BENCH_baseline.json current.txt          # gate
//	benchdiff -baseline BENCH_baseline.json -update current.txt  # refresh
//
// The gate covers exactly the benchmarks recorded in the baseline:
// each must be present in the current output and its median ns/op
// across -count repetitions must not exceed the baseline by more than
// -threshold (default 15%). Baselines recorded from -benchmem output
// additionally gate the median allocs/op (same threshold, plus an
// absolute slack of 64 allocations), and a current run without
// -benchmem fails such a baseline rather than silently skipping the
// allocation gate. The median resists both slow outliers (scheduler
// hiccups) and fast ones (a lucky run would set an unreachable bar);
// run with -count >= 3 for a stable gate. Benchmarks in the current
// output but not the baseline are listed as NEW and ignored, so adding
// a benchmark does not break CI until -update records it. The full
// per-benchmark delta table is printed even when every delta is within
// the gate, and -update prints it against the old baseline before
// rewriting.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed BENCH_baseline.json shape.
type Baseline struct {
	// Note documents how the file was generated (free text).
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its recorded performance.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's baseline record.
type Entry struct {
	// NsPerOp is the median ns/op across the repetitions observed when
	// the baseline was recorded — the gated number.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the median allocs/op across the repetitions, taken
	// from -benchmem output; zero when the baseline was recorded without
	// -benchmem. When present it is gated like ns/op, with an absolute
	// slack of 64 allocations so tiny benchmarks don't flake.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the benchmark's custom b.ReportMetric values from
	// the last repetition (informational; not gated).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches one result line of `go test -bench` output:
// name-8, iteration count, then "value unit" pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// stripProcs removes the -GOMAXPROCS suffix go appends to benchmark
// names, so baselines survive runner core-count changes.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench extracts per-benchmark median ns/op and last-seen custom
// metrics from go test -bench output. Repeated lines (-count > 1) fold
// to the median.
func parseBench(r io.Reader) (map[string]Entry, error) {
	samples := make(map[string][]float64)
	allocSamples := make(map[string][]float64)
	lastMetrics := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(stripProcs(m[1]), "Benchmark")
		fields := strings.Fields(m[3])
		var nsPerOp, allocs float64
		var haveAllocs bool
		metrics := make(map[string]float64)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q in line %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				nsPerOp = v
			case "allocs/op":
				allocs, haveAllocs = v, true
			default:
				metrics[fields[i+1]] = v
			}
		}
		if nsPerOp == 0 {
			continue
		}
		samples[name] = append(samples[name], nsPerOp)
		if haveAllocs {
			allocSamples[name] = append(allocSamples[name], allocs)
		}
		lastMetrics[name] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Entry, len(samples))
	for name, vs := range samples {
		e := Entry{NsPerOp: median(vs), Metrics: lastMetrics[name]}
		if as := allocSamples[name]; len(as) > 0 {
			e.AllocsPerOp = median(as)
		}
		out[name] = e
	}
	return out, nil
}

// median of vs; the mean of the middle pair for even counts.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare gates current against base: every baseline benchmark must be
// present, within threshold on ns/op, and — when the baseline records
// allocations — within threshold on allocs/op too. The full per-benchmark
// delta table is returned whether or not anything regressed, with
// informational NEW lines for current-only benchmarks the gate ignores.
func compare(base, current map[string]Entry, threshold float64) ([]string, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var lines []string
	ok := true
	for _, name := range names {
		b := base[name]
		c, found := current[name]
		if !found {
			lines = append(lines, fmt.Sprintf("MISSING  %-40s baseline %.0f ns/op, absent from current run", name, b.NsPerOp))
			ok = false
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok      "
		if ratio > 1+threshold {
			verdict = "REGRESS "
			ok = false
		}
		lines = append(lines, fmt.Sprintf("%s %-40s %12.0f -> %12.0f ns/op  (%+.1f%%)",
			verdict, name, b.NsPerOp, c.NsPerOp, 100*(ratio-1)))
		if b.AllocsPerOp <= 0 {
			continue
		}
		if c.AllocsPerOp <= 0 {
			// The baseline gates allocations but the current run was
			// made without -benchmem: the gate cannot be evaluated, and
			// silently passing would let alloc regressions through.
			lines = append(lines, fmt.Sprintf("NOALLOC  %-40s baseline %.0f allocs/op, current run lacks -benchmem", name, b.AllocsPerOp))
			ok = false
			continue
		}
		// Allocation counts are near-deterministic, so a relative gate
		// alone would trip on one extra allocation in a tiny benchmark;
		// require the absolute growth to clear a small slack as well.
		aratio := c.AllocsPerOp / b.AllocsPerOp
		averdict := "ok      "
		if aratio > 1+threshold && c.AllocsPerOp > b.AllocsPerOp+64 {
			averdict = "ALLOCS  "
			ok = false
		}
		lines = append(lines, fmt.Sprintf("%s %-40s %12.0f -> %12.0f allocs/op  (%+.1f%%)",
			averdict, name, b.AllocsPerOp, c.AllocsPerOp, 100*(aratio-1)))
	}
	extra := make([]string, 0)
	for name := range current {
		if _, found := base[name]; !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		lines = append(lines, fmt.Sprintf("NEW      %-40s %12.0f ns/op  (not in baseline; -update records it)",
			name, current[name].NsPerOp))
	}
	return lines, ok
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON file to gate against (or write with -update)")
		threshold    = flag.Float64("threshold", 0.15, "maximum allowed fractional ns/op regression")
		update       = flag.Bool("update", false, "rewrite the baseline from the current output instead of gating")
		note         = flag.String("note", "", "note to record in the baseline with -update")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline file] [-threshold f] [-update] <bench-output.txt | ->")
		os.Exit(2)
	}

	in := os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark results in input"))
	}

	if *update {
		// Show what the refresh changes: the delta table against the old
		// baseline, informational only — an -update never fails the gate.
		if data, err := os.ReadFile(*baselinePath); err == nil {
			var old Baseline
			if err := json.Unmarshal(data, &old); err == nil {
				lines, _ := compare(old.Benchmarks, current, *threshold)
				for _, l := range lines {
					fmt.Println(l)
				}
			}
		}
		b := Baseline{Note: *note, Benchmarks: current}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("benchdiff: bad baseline %s: %w", *baselinePath, err))
	}
	lines, ok := compare(base.Benchmarks, current, *threshold)
	for _, l := range lines {
		fmt.Println(l)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — regression beyond %.0f%% (or missing benchmark) vs %s\n", *threshold*100, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok — %d benchmarks within %.0f%% of baseline\n", len(base.Benchmarks), *threshold*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
