package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMultiProcess/2proc-8  	       1	 226224965 ns/op	     30450 ctx-switch-cycles	         7.000 ctx-switches	   3962738 sim-inst/s
BenchmarkMultiProcess/2proc-8  	       1	 210000000 ns/op	     30450 ctx-switch-cycles	         7.000 ctx-switches	   4100000 sim-inst/s
BenchmarkSimulatorThroughput-8 	       1	 231073115 ns/op	   4822973 sim-inst/s
BenchmarkTraceReplay-8         	       1	 157099195 ns/op	   4179751 sim-inst/s
BenchmarkSweepThroughput/pooled-8 	      15	  13078961 ns/op	       611.7 points/s	 5759909 B/op	    1561 allocs/op
BenchmarkSweepThroughput/pooled-8 	      15	  13251000 ns/op	       605.0 points/s	 5759912 B/op	    1563 allocs/op
BenchmarkSweepThroughput/pooled-8 	      15	  12990000 ns/op	       618.0 points/s	 5759901 B/op	    1559 allocs/op
PASS
ok  	repro	1.170s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(got), got)
	}
	// Repeated lines fold to the median ns/op (mean of the middle pair
	// for even counts).
	if e, want := got["MultiProcess/2proc"], (226224965.0+210000000.0)/2; e.NsPerOp != want {
		t.Errorf("MultiProcess/2proc median ns/op = %v, want %v", e.NsPerOp, want)
	}
	if e := got["TraceReplay"]; e.NsPerOp != 157099195 {
		t.Errorf("TraceReplay ns/op = %v, want 157099195", e.NsPerOp)
	}
	if e := got["SimulatorThroughput"]; e.Metrics["sim-inst/s"] != 4822973 {
		t.Errorf("SimulatorThroughput sim-inst/s = %v, want 4822973", e.Metrics["sim-inst/s"])
	}
	// -benchmem lines record the median allocs/op; benchmarks run
	// without -benchmem record zero.
	if e := got["SweepThroughput/pooled"]; e.AllocsPerOp != 1561 {
		t.Errorf("SweepThroughput/pooled allocs/op = %v, want median 1561", e.AllocsPerOp)
	}
	if e := got["TraceReplay"]; e.AllocsPerOp != 0 {
		t.Errorf("TraceReplay allocs/op = %v, want 0 (no -benchmem)", e.AllocsPerOp)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkTraceReplay-8":        "BenchmarkTraceReplay",
		"BenchmarkTraceReplay-16":       "BenchmarkTraceReplay",
		"BenchmarkMultiProcess/2proc-8": "BenchmarkMultiProcess/2proc",
		"BenchmarkNoSuffix":             "BenchmarkNoSuffix",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string]Entry{
		"Fast":   {NsPerOp: 100},
		"Slow":   {NsPerOp: 1000},
		"Absent": {NsPerOp: 50},
	}

	// Within threshold: 10% slower passes a 15% gate.
	current := map[string]Entry{
		"Fast":   {NsPerOp: 110},
		"Slow":   {NsPerOp: 1000},
		"Absent": {NsPerOp: 50},
	}
	if _, ok := compare(base, current, 0.15); !ok {
		t.Error("10% regression failed a 15% gate")
	}

	// Beyond threshold fails.
	current["Fast"] = Entry{NsPerOp: 120}
	lines, ok := compare(base, current, 0.15)
	if ok {
		t.Error("20% regression passed a 15% gate")
	}
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "REGRESS") && strings.Contains(l, "Fast") {
			found = true
		}
	}
	if !found {
		t.Errorf("no REGRESS line for Fast in %v", lines)
	}

	// A baseline benchmark missing from the current run fails the gate.
	delete(current, "Absent")
	current["Fast"] = Entry{NsPerOp: 100}
	lines, ok = compare(base, current, 0.15)
	if ok {
		t.Error("missing benchmark passed the gate")
	}
	found = false
	for _, l := range lines {
		if strings.HasPrefix(l, "MISSING") && strings.Contains(l, "Absent") {
			found = true
		}
	}
	if !found {
		t.Errorf("no MISSING line for Absent in %v", lines)
	}

	// Benchmarks only in the current run are ignored (additions don't
	// break the gate before -update records them).
	current["Absent"] = Entry{NsPerOp: 50}
	current["Brand-New"] = Entry{NsPerOp: 1}
	if _, ok := compare(base, current, 0.15); !ok {
		t.Error("extra current-only benchmark failed the gate")
	}

	// Getting faster never fails.
	current["Slow"] = Entry{NsPerOp: 1}
	if _, ok := compare(base, current, 0.15); !ok {
		t.Error("speedup failed the gate")
	}
}

func hasLine(lines []string, prefix, substr string) bool {
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) && strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func TestCompareAlwaysPrintsTable(t *testing.T) {
	base := map[string]Entry{"A": {NsPerOp: 100}, "B": {NsPerOp: 200}}
	current := map[string]Entry{"A": {NsPerOp: 100}, "B": {NsPerOp: 190}, "C": {NsPerOp: 5}}
	lines, ok := compare(base, current, 0.15)
	if !ok {
		t.Fatal("all-within-gate comparison failed")
	}
	// The full delta table appears even with nothing to complain about:
	// one ok line per gated benchmark, plus a NEW line for the
	// current-only benchmark the gate ignores.
	if !hasLine(lines, "ok", "A") || !hasLine(lines, "ok", "B") {
		t.Errorf("missing ok delta lines in %v", lines)
	}
	if !hasLine(lines, "NEW", "C") {
		t.Errorf("no NEW line for current-only benchmark in %v", lines)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := map[string]Entry{"P": {NsPerOp: 100, AllocsPerOp: 1500}}

	// Within threshold passes and still prints the allocs delta line.
	current := map[string]Entry{"P": {NsPerOp: 100, AllocsPerOp: 1600}}
	lines, ok := compare(base, current, 0.15)
	if !ok {
		t.Errorf("7%% alloc growth failed a 15%% gate: %v", lines)
	}
	if !hasLine(lines, "ok", "allocs/op") {
		t.Errorf("no allocs/op delta line in %v", lines)
	}

	// Beyond the relative threshold AND the 64-alloc absolute slack
	// fails.
	current["P"] = Entry{NsPerOp: 100, AllocsPerOp: 3000}
	lines, ok = compare(base, current, 0.15)
	if ok {
		t.Error("2x alloc growth passed the gate")
	}
	if !hasLine(lines, "ALLOCS", "P") {
		t.Errorf("no ALLOCS line in %v", lines)
	}

	// A big relative jump under the absolute slack passes: one extra
	// allocation in a tiny benchmark is not a regression.
	tiny := map[string]Entry{"T": {NsPerOp: 100, AllocsPerOp: 3}}
	if lines, ok := compare(tiny, map[string]Entry{"T": {NsPerOp: 100, AllocsPerOp: 6}}, 0.15); !ok {
		t.Errorf("+3 allocs on a 3-alloc benchmark failed the gate: %v", lines)
	}

	// An alloc-gated baseline compared against a run without -benchmem
	// fails rather than skipping the gate.
	current["P"] = Entry{NsPerOp: 100}
	lines, ok = compare(base, current, 0.15)
	if ok {
		t.Error("missing -benchmem data passed an alloc-gated baseline")
	}
	if !hasLine(lines, "NOALLOC", "P") {
		t.Errorf("no NOALLOC line in %v", lines)
	}
}
