package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMultiProcess/2proc-8  	       1	 226224965 ns/op	     30450 ctx-switch-cycles	         7.000 ctx-switches	   3962738 sim-inst/s
BenchmarkMultiProcess/2proc-8  	       1	 210000000 ns/op	     30450 ctx-switch-cycles	         7.000 ctx-switches	   4100000 sim-inst/s
BenchmarkSimulatorThroughput-8 	       1	 231073115 ns/op	   4822973 sim-inst/s
BenchmarkTraceReplay-8         	       1	 157099195 ns/op	   4179751 sim-inst/s
PASS
ok  	repro	1.170s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	// Repeated lines fold to the median ns/op (mean of the middle pair
	// for even counts).
	if e, want := got["MultiProcess/2proc"], (226224965.0+210000000.0)/2; e.NsPerOp != want {
		t.Errorf("MultiProcess/2proc median ns/op = %v, want %v", e.NsPerOp, want)
	}
	if e := got["TraceReplay"]; e.NsPerOp != 157099195 {
		t.Errorf("TraceReplay ns/op = %v, want 157099195", e.NsPerOp)
	}
	if e := got["SimulatorThroughput"]; e.Metrics["sim-inst/s"] != 4822973 {
		t.Errorf("SimulatorThroughput sim-inst/s = %v, want 4822973", e.Metrics["sim-inst/s"])
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkTraceReplay-8":        "BenchmarkTraceReplay",
		"BenchmarkTraceReplay-16":       "BenchmarkTraceReplay",
		"BenchmarkMultiProcess/2proc-8": "BenchmarkMultiProcess/2proc",
		"BenchmarkNoSuffix":             "BenchmarkNoSuffix",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string]Entry{
		"Fast":   {NsPerOp: 100},
		"Slow":   {NsPerOp: 1000},
		"Absent": {NsPerOp: 50},
	}

	// Within threshold: 10% slower passes a 15% gate.
	current := map[string]Entry{
		"Fast":   {NsPerOp: 110},
		"Slow":   {NsPerOp: 1000},
		"Absent": {NsPerOp: 50},
	}
	if _, ok := compare(base, current, 0.15); !ok {
		t.Error("10% regression failed a 15% gate")
	}

	// Beyond threshold fails.
	current["Fast"] = Entry{NsPerOp: 120}
	lines, ok := compare(base, current, 0.15)
	if ok {
		t.Error("20% regression passed a 15% gate")
	}
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "REGRESS") && strings.Contains(l, "Fast") {
			found = true
		}
	}
	if !found {
		t.Errorf("no REGRESS line for Fast in %v", lines)
	}

	// A baseline benchmark missing from the current run fails the gate.
	delete(current, "Absent")
	current["Fast"] = Entry{NsPerOp: 100}
	lines, ok = compare(base, current, 0.15)
	if ok {
		t.Error("missing benchmark passed the gate")
	}
	found = false
	for _, l := range lines {
		if strings.HasPrefix(l, "MISSING") && strings.Contains(l, "Absent") {
			found = true
		}
	}
	if !found {
		t.Errorf("no MISSING line for Absent in %v", lines)
	}

	// Benchmarks only in the current run are ignored (additions don't
	// break the gate before -update records them).
	current["Absent"] = Entry{NsPerOp: 50}
	current["Brand-New"] = Entry{NsPerOp: 1}
	if _, ok := compare(base, current, 0.15); !ok {
		t.Error("extra current-only benchmark failed the gate")
	}

	// Getting faster never fails.
	current["Slow"] = Entry{NsPerOp: 1}
	if _, ok := compare(base, current, 0.15); !ok {
		t.Error("speedup failed the gate")
	}
}
