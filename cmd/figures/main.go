// Command figures regenerates the paper's evaluation tables and figures
// (§7) and renders them as markdown, the source material of
// EXPERIMENTS.md.
//
// Usage:
//
//	figures                 # every experiment, full size (slow)
//	figures -quick          # every experiment, reduced size
//	figures -only fig13     # one experiment
//	figures -out results.md # write to a file instead of stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced configurations (minutes instead of hours)")
		only     = flag.String("only", "", "comma-separated experiment ids (e.g. fig13,fig21)")
		out      = flag.String("out", "", "output file (default stdout)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 0, "max concurrent simulation points per experiment (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ids := experiments.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}

	var sb strings.Builder
	sb.WriteString("# Virtuoso-in-Go: reproduced evaluation\n\n")
	fmt.Fprintf(&sb, "Generated %s, quick=%v.\n\n", time.Now().Format(time.RFC3339), *quick)

	for _, id := range ids {
		f, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s...", id)
		tb := f(experiments.Opts{Quick: *quick, Seed: *seed, Parallel: *parallel})
		fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))
		sb.WriteString(tb.Markdown())
		sb.WriteString("\n")
	}

	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
}
