package virtuoso_test

import (
	"encoding/json"
	"strings"
	"testing"

	virtuoso "repro"
)

// multiOpts is the shared configuration of the multiprogrammed
// determinism runs.
func multiOpts() []virtuoso.Option {
	return []virtuoso.Option{
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithProcesses("RND", "SEQ"),
		virtuoso.WithMaxInstructions(120_000),
		virtuoso.WithQuantum(30_000),
		virtuoso.WithSeed(9),
	}
}

// multiJSON renders a multiprogrammed Result with host-side fields
// zeroed; everything else must match bit for bit across runs.
func multiJSON(t *testing.T, r virtuoso.Result) string {
	t.Helper()
	r.Index = 0
	r.Metrics.WallTime = 0
	r.Metrics.SimHeapBytes = 0
	if r.Multi != nil {
		mm := *r.Multi
		mm.Aggregate.WallTime = 0
		mm.Aggregate.SimHeapBytes = 0
		r.Multi = &mm
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMultiRunDeterminism is the multiprogramming acceptance criterion:
// a 2-process mix runs both address spaces to completion with
// per-process and aggregate metrics, and running it twice — and inside
// a parallel Sweep — produces byte-identical JSON Results.
func TestMultiRunDeterminism(t *testing.T) {
	run := func() virtuoso.Result {
		sess, err := virtuoso.Open(multiOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := sess.RunMulti()
		if err != nil {
			t.Fatal(err)
		}
		for _, pm := range mm.Procs {
			if !pm.Finished {
				t.Fatalf("process %d (%s) did not run to completion", pm.PID, pm.Workload)
			}
			if pm.AppInsts == 0 || pm.OS.MinorFaults == 0 {
				t.Fatalf("process %d: empty per-process metrics", pm.PID)
			}
		}
		if mm.Aggregate.AppInsts == 0 {
			t.Fatal("empty aggregate metrics")
		}
		return sess.MultiResult(mm)
	}
	a, b := run(), run()
	aj, bj := multiJSON(t, a), multiJSON(t, b)
	if aj != bj {
		t.Errorf("two identical multiprogrammed runs diverged:\n a: %.300s\n b: %.300s", aj, bj)
	}

	// The same mix inside a parallel sweep (alongside sibling points)
	// must reproduce the standalone Result byte for byte.
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 120_000
	base.QuantumCycles = 30_000
	base.Seed = 9
	sweep := &virtuoso.Sweep{
		Base:     base,
		Mixes:    [][]string{{"RND", "SEQ"}, {"SEQ", "RND"}},
		Params:   virtuoso.WorkloadParams{Scale: 0.05},
		Parallel: 4,
	}
	rep, err := sweep.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("sweep returned %d results, want 2", len(rep.Results))
	}
	if rep.Results[0].Workload != "RND+SEQ" || rep.Results[1].Workload != "SEQ+RND" {
		t.Fatalf("mix names: %q, %q", rep.Results[0].Workload, rep.Results[1].Workload)
	}
	if got := multiJSON(t, rep.Results[0]); got != aj {
		t.Errorf("swept mix Result differs from standalone run:\nsweep: %.300s\nsolo:  %.300s", got, aj)
	}
}

func TestMultiSessionAPIMisuse(t *testing.T) {
	sess, err := virtuoso.Open(multiOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err == nil || !strings.Contains(err.Error(), "RunMulti") {
		t.Errorf("Run on a multi session = %v, want RunMulti hint", err)
	}
	if _, _, err := sess.Record(t.TempDir() + "/x.trc"); err == nil {
		t.Error("Record on a multi session should fail")
	}
	if len(sess.Mix()) != 2 || sess.Workload() != nil {
		t.Errorf("mix accessors: mix=%d workload=%v", len(sess.Mix()), sess.Workload())
	}

	single, err := virtuoso.Open(virtuoso.WithScaledConfig(), virtuoso.WithWorkload("JSON"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.RunMulti(); err == nil {
		t.Error("RunMulti on a single-workload session should fail")
	}

	if _, err := virtuoso.Open(virtuoso.WithProcesses()); err == nil {
		t.Error("WithProcesses() with no names should fail")
	}
	if _, err := virtuoso.Open(virtuoso.WithProcesses("nope")); err == nil {
		t.Error("WithProcesses with an unknown name should fail")
	}

	// Selector precedence: the last workload selection wins.
	sess2, err := virtuoso.Open(
		virtuoso.WithProcesses("RND", "SEQ"),
		virtuoso.WithWorkload("JSON"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess2.Mix()) != 0 || sess2.Workload() == nil {
		t.Error("a later WithWorkload should displace WithProcesses")
	}
}
