package virtuoso_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	virtuoso "repro"
)

// shardTestSweep is a 6-point grid (2 workloads × 3 seeds), small
// enough that the whole sharded-resume choreography stays in test-suite
// seconds.
func shardTestSweep(parallel int) *virtuoso.Sweep {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 80_000
	return &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"JSON", "2D-Sum"},
		Designs:   []virtuoso.DesignName{virtuoso.DesignRadix},
		Policies:  []virtuoso.PolicyName{virtuoso.PolicyTHP},
		Seeds:     []uint64{1, 2, 3},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:  parallel,
	}
}

func canonicalJSON(t *testing.T, rep *virtuoso.Report) string {
	t.Helper()
	data, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestShardedResumeDeterminism is the tentpole acceptance criterion: a
// grid run as 3 shards — one of them interrupted mid-run and resumed —
// then merged must produce a Report byte-identical (canonical form) to
// the same grid run unsharded in one process.
func TestShardedResumeDeterminism(t *testing.T) {
	golden, err := shardTestSweep(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON := canonicalJSON(t, golden)

	dir := t.TempDir()
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
	}

	// Shards 0 and 2 run to completion; different worker counts must
	// not matter.
	for _, i := range []int{0, 2} {
		sw := shardTestSweep(1 + i)
		sw.Shard = virtuoso.Shard{Index: i, Count: 3}
		sw.Checkpoint = paths[i]
		if _, err := sw.Run(context.Background()); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}

	// Shard 1 is interrupted after its first point lands (sequential,
	// so the second point has not started), then resumed.
	{
		sw := shardTestSweep(1)
		sw.Shard = virtuoso.Shard{Index: 1, Count: 3}
		sw.Checkpoint = paths[1]
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		sw.Progress = func(ev virtuoso.SweepEvent) { cancel() }
		rep, err := sw.Run(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("interrupted shard: err = %v, want context.Canceled", err)
		}
		if len(rep.Results) == 0 || len(rep.Results) >= 2 {
			t.Fatalf("interrupted shard reported %d results, want exactly the 1 completed point", len(rep.Results))
		}

		info, ckptResults, err := virtuoso.ReadCheckpoint(paths[1])
		if err != nil {
			t.Fatal(err)
		}
		if info.Done != len(rep.Results) {
			t.Fatalf("checkpoint has %d points, report has %d — completed points must be durable", info.Done, len(rep.Results))
		}
		if info.SpecHash != rep.SpecHash || info.Points != 6 || info.Shard != "1/3" {
			t.Fatalf("checkpoint header %+v", info)
		}
		_ = ckptResults

		// Resume: the completed point must come from disk, not re-run.
		sw2 := shardTestSweep(1)
		sw2.Shard = virtuoso.Shard{Index: 1, Count: 3}
		sw2.Checkpoint = paths[1]
		var events []virtuoso.SweepEvent
		sw2.Progress = func(ev virtuoso.SweepEvent) { events = append(events, ev) }
		rep2, err := sw2.Run(context.Background())
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		if len(rep2.Results) != 2 {
			t.Fatalf("resumed shard reported %d results, want 2", len(rep2.Results))
		}
		if want := 2 - info.Done; len(events) != want {
			t.Errorf("resume ran %d points, want %d (completed points must not re-run)", len(events), want)
		}
		if len(events) > 0 && (events[0].Done != info.Done+1 || events[0].Total != 2) {
			t.Errorf("resume progress = %d/%d, want %d/2", events[0].Done, events[0].Total, info.Done+1)
		}
	}

	merged, err := virtuoso.MergeCheckpoints(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.SpecHash != golden.SpecHash {
		t.Errorf("merged spec hash %s, golden %s", merged.SpecHash, golden.SpecHash)
	}
	if got := canonicalJSON(t, merged); got != goldenJSON {
		t.Errorf("merged report differs from unsharded run:\nmerged: %.400s\ngolden: %.400s", got, goldenJSON)
	}
}

// TestCheckpointTornTailRecovery simulates a crash mid-append: the torn
// tail record is dropped, the point re-runs on resume, and the final
// report still matches an uncheckpointed run exactly.
func TestCheckpointTornTailRecoveryEndToEnd(t *testing.T) {
	golden, err := shardTestSweep(2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	sw := shardTestSweep(2)
	sw.Checkpoint = path
	if _, err := sw.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: drop its final 10 bytes (newline included).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	info, _, err := virtuoso.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn || info.Done != 5 {
		t.Fatalf("torn checkpoint: %+v, want Torn with 5 of 6 points", info)
	}

	// Resume re-runs exactly the torn point.
	sw2 := shardTestSweep(2)
	sw2.Checkpoint = path
	var reran int
	sw2.Progress = func(ev virtuoso.SweepEvent) { reran++ }
	rep, err := sw2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reran != 1 {
		t.Errorf("resume after tear re-ran %d points, want 1", reran)
	}
	if got, want := canonicalJSON(t, rep), canonicalJSON(t, golden); got != want {
		t.Errorf("report after torn-tail recovery differs from golden")
	}
	if info, _, err := virtuoso.ReadCheckpoint(path); err != nil || info.Torn || info.Done != 6 {
		t.Errorf("checkpoint not repaired: %+v, %v", info, err)
	}
}

// TestResumeRejectsChangedSpec: a checkpoint written by one grid must
// not silently resume a different one.
func TestResumeRejectsChangedSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	sw := shardTestSweep(2)
	sw.Checkpoint = path
	if _, err := sw.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	changed := shardTestSweep(2)
	changed.Seeds = []uint64{1, 2, 3, 4} // grid grew
	changed.Checkpoint = path
	if _, err := changed.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "spec hash") {
		t.Errorf("resume against a changed grid: err = %v, want spec-hash mismatch", err)
	}
}

// TestMergeRejectsBadShardSets: overlapping and gapped shard-file sets
// must fail loudly, not produce a plausible-looking report.
func TestMergeRejectsBadShardSets(t *testing.T) {
	dir := t.TempDir()
	run := func(name string, shard virtuoso.Shard) string {
		p := filepath.Join(dir, name)
		sw := shardTestSweep(2)
		sw.Shard = shard
		sw.Checkpoint = p
		if _, err := sw.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return p
	}
	s0 := run("s0.jsonl", virtuoso.Shard{Index: 0, Count: 3})
	s1 := run("s1.jsonl", virtuoso.Shard{Index: 1, Count: 3})
	whole := run("whole.jsonl", virtuoso.Shard{})

	// Gap: shard 2 missing.
	if _, err := virtuoso.MergeCheckpoints(s0, s1); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("gapped merge: %v", err)
	}
	// Overlap: the whole grid plus shard 0 double-covers shard 0.
	if _, err := virtuoso.MergeCheckpoints(whole, s0); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlapping merge: %v", err)
	}
	// A complete single file merges fine and matches itself.
	rep, err := virtuoso.MergeCheckpoints(whole)
	if err != nil || len(rep.Results) != 6 {
		t.Fatalf("whole-grid merge: %v (%d results)", err, len(rep.Results))
	}

	// Mismatched spec: same grid shape, different seed axis.
	other := shardTestSweep(2)
	other.Seeds = []uint64{7, 8, 9}
	other.Shard = virtuoso.Shard{Index: 2, Count: 3}
	other.Checkpoint = filepath.Join(dir, "other.jsonl")
	if _, err := other.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := virtuoso.MergeCheckpoints(s0, s1, other.Checkpoint); err == nil || !strings.Contains(err.Error(), "different sweeps") {
		t.Errorf("mismatched merge: %v", err)
	}
}

// TestSweepSpecHash pins what the spec hash does and does not cover.
func TestSweepSpecHash(t *testing.T) {
	a, b := shardTestSweep(1), shardTestSweep(8)
	b.Shard = virtuoso.Shard{Index: 1, Count: 4}
	b.Checkpoint = "somewhere.jsonl"
	if a.SpecHash() != b.SpecHash() {
		t.Error("Parallel/Shard/Checkpoint must not change the spec hash")
	}
	c := shardTestSweep(1)
	c.Seeds = []uint64{1, 2, 4}
	if c.SpecHash() == a.SpecHash() {
		t.Error("a different seed axis must change the spec hash")
	}
	d := shardTestSweep(1)
	d.Label = "custom-configure-v2"
	if d.SpecHash() == a.SpecHash() {
		t.Error("Label must salt the spec hash")
	}
	e := shardTestSweep(1)
	e.Base.MaxAppInsts = 90_000
	if e.SpecHash() == a.SpecHash() {
		t.Error("a base-config change must change the spec hash")
	}
}

// TestSweepSpecRoundTrip: the declarative JSON spec builds the same
// sweep (by hash) as hand-constructed fields, and malformed specs fail
// loudly.
func TestSweepSpecRoundTrip(t *testing.T) {
	insts := uint64(80_000)
	spec := &virtuoso.SweepSpec{
		Workloads:   []string{"JSON", "2D-Sum"},
		Designs:     []string{"radix"},
		Policies:    []string{"thp"},
		Seeds:       []uint64{1, 2, 3},
		Scale:       0.05,
		MaxAppInsts: &insts,
	}
	sw, err := spec.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sw.SpecHash(), shardTestSweep(0).SpecHash(); got != want {
		t.Errorf("spec-built sweep hashes %s, hand-built %s", got, want)
	}
	if pts := sw.Points(); len(pts) != 6 {
		t.Errorf("spec grid has %d points, want 6", len(pts))
	}

	if _, err := virtuoso.ParseSweepSpec([]byte(`{"desings": ["radix"]}`)); err == nil {
		t.Error("unknown spec field accepted")
	}
	if _, err := virtuoso.ParseSweepSpec([]byte(`{"workloads": ["BFS"]} trailing`)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := &virtuoso.SweepSpec{Workloads: []string{"BFS"}, Designs: []string{"not-a-design"}}
	if _, err := bad.Sweep(); err == nil {
		t.Error("unknown design accepted")
	}
	empty := &virtuoso.SweepSpec{Seeds: []uint64{1}}
	if _, err := empty.Sweep(); err == nil {
		t.Error("workload-less spec accepted")
	}
}
