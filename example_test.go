package virtuoso_test

import (
	"context"
	"fmt"
	"log"

	virtuoso "repro"
)

// ExampleOpen runs one small BFS configuration end to end.
func ExampleOpen() {
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkloadScale(0.05), // shrink footprints so the example runs in milliseconds
		virtuoso.WithWorkload("BFS"),
		virtuoso.WithDesign(virtuoso.DesignRadix),
		virtuoso.WithPolicy(virtuoso.PolicyTHP),
		virtuoso.WithMaxInstructions(50_000),
	)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Workload, m.Cycles > 0, m.IPC > 0)
	// Output: BFS true true
}

// ExampleSweep_Run executes a small (designs × seeds) grid on the
// bounded worker pool and reports one Result per point.
func ExampleSweep_Run() {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 50_000
	sweep := &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"BFS"},
		Designs:   []virtuoso.DesignName{virtuoso.DesignRadix, virtuoso.DesignECH},
		Seeds:     []uint64{1, 2},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:  2,
	}
	report, err := sweep.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Points, len(report.Results))
	// Output: 4 4
}

// ExampleWithObserver streams interval snapshots during a run — live
// progress without perturbing the simulation (the observed run's
// Result is byte-identical to an unobserved one).
func ExampleWithObserver() {
	var intervals int
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
		virtuoso.WithMaxInstructions(60_000),
		virtuoso.WithObserver(virtuoso.ObserverFunc(func(s virtuoso.Snapshot) {
			// A real observer would update a progress bar or dashboard
			// from s.AppInsts, s.IPC(), s.L2TLBMisses, ...
			intervals++
		})),
		virtuoso.WithObserveInterval(10_000),
	)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(intervals > 1, m.AppInsts > 0)
	// Output: true true
}

// ExampleReport_GroupBy partitions sweep results by translation design.
func ExampleReport_GroupBy() {
	report := &virtuoso.Report{Results: []virtuoso.Result{
		{Workload: "BFS", Design: virtuoso.DesignRadix, Seed: 1},
		{Workload: "BFS", Design: virtuoso.DesignECH, Seed: 1},
		{Workload: "XS", Design: virtuoso.DesignRadix, Seed: 1},
	}}
	groups := report.GroupBy(virtuoso.ByDesign)
	for _, key := range report.Keys(virtuoso.ByDesign) {
		fmt.Printf("%s: %d results\n", key, len(groups[key]))
	}
	// Output:
	// ech: 1 results
	// radix: 2 results
}
