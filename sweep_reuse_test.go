package virtuoso_test

// Differential determinism harness for the sweep-scale reuse
// machinery: per-worker System pooling (recycled arenas, SoA TLB/cache
// state, free-page bitmaps) and the content-addressed point-result
// cache must both be invisible in the results. The same grid — spanning
// designs, policies, modes, and a multiprogrammed mix, so pooled
// workers rebuild systems of different shapes back to back — runs
// fresh (Sweep.NoReuse), pooled, and cache-answered, and all three
// reports must match byte for byte under Report.CanonicalJSON.

import (
	"bytes"
	"context"
	"testing"

	virtuoso "repro"
)

// reuseSweep is the equivalence grid: (BFS, RND, BFS+RND mix) ×
// (radix, ech) × (thp, bd) = 12 points, with the radix/bd
// single-workload points flipped to emulation mode by the Configure
// hook so mode changes are part of the shapes a pooled worker cycles
// through.
func reuseSweep() *virtuoso.Sweep {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 100_000
	return &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"BFS", "RND"},
		Mixes:     [][]string{{"BFS", "RND"}},
		Designs:   []virtuoso.DesignName{virtuoso.DesignRadix, virtuoso.DesignECH},
		Policies:  []virtuoso.PolicyName{virtuoso.PolicyTHP, virtuoso.PolicyBuddy},
		Seeds:     []uint64{1},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:  4,
		Configure: func(cfg *virtuoso.Config, p virtuoso.Point) error {
			if p.Mix == nil && p.Design == virtuoso.DesignRadix && p.Policy == virtuoso.PolicyBuddy {
				cfg.Mode = virtuoso.Emulation
			}
			return nil
		},
	}
}

func canonicalReport(t *testing.T, rep *virtuoso.Report) []byte {
	t.Helper()
	data, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSweepReuseEquivalence(t *testing.T) {
	const points = 12

	// Reference: every point built from fresh allocations, as the
	// runner always worked before pooling existed.
	fresh := reuseSweep()
	fresh.NoReuse = true
	freshRep, err := fresh.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(freshRep.Results) != points || freshRep.Executed != points {
		t.Fatalf("fresh run: %d results, %d executed, want %d/%d",
			len(freshRep.Results), freshRep.Executed, points, points)
	}

	// Pooled: the default path. Workers recycle each finished system's
	// allocations into the next point, across the grid's mixed shapes.
	// This run also warms the result cache.
	cacheDir := t.TempDir()
	pooled := reuseSweep()
	pooled.Cache = cacheDir
	pooledRep, err := pooled.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pooledRep.Executed != points || pooledRep.FromCache != 0 {
		t.Fatalf("pooled run: executed %d, from cache %d, want %d/0",
			pooledRep.Executed, pooledRep.FromCache, points)
	}

	// Cached: the same grid against the warm cache must simulate
	// nothing and still produce the identical report.
	cached := reuseSweep()
	cached.Cache = cacheDir
	cachedRep, err := cached.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cachedRep.Executed != 0 || cachedRep.FromCache != points {
		t.Fatalf("cached run: executed %d, from cache %d, want 0/%d",
			cachedRep.Executed, cachedRep.FromCache, points)
	}

	freshJSON := canonicalReport(t, freshRep)
	pooledJSON := canonicalReport(t, pooledRep)
	cachedJSON := canonicalReport(t, cachedRep)
	if !bytes.Equal(pooledJSON, freshJSON) {
		diffReports(t, pooledJSON, freshJSON)
	}
	if !bytes.Equal(cachedJSON, freshJSON) {
		diffReports(t, cachedJSON, freshJSON)
	}
}

// TestSweepCacheSharedAcrossGrids pins the content-addressing: a cache
// entry is keyed by what the point computes, not where it sits in a
// grid, so a different grid containing the same point hits the entry —
// with the Result's Index rewritten to the new grid's position.
func TestSweepCacheSharedAcrossGrids(t *testing.T) {
	cacheDir := t.TempDir()
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 100_000

	warm := &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"RND"},
		Seeds:     []uint64{7},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Cache:     cacheDir,
	}
	warmRep, err := warm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warmRep.Executed != 1 {
		t.Fatalf("warm run executed %d points, want 1", warmRep.Executed)
	}

	// A wider grid whose second point is the warmed one.
	wide := &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"BFS", "RND"},
		Seeds:     []uint64{7},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Cache:     cacheDir,
	}
	wideRep, err := wide.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if wideRep.Executed != 1 || wideRep.FromCache != 1 {
		t.Fatalf("wide run: executed %d, from cache %d, want 1/1", wideRep.Executed, wideRep.FromCache)
	}
	if got := wideRep.Results[1]; got.Index != 1 || got.Workload != "RND" {
		t.Fatalf("cached point landed at index %d workload %s, want 1/RND", got.Index, got.Workload)
	}
	if canonical(t, warmRep.Results[0]) != canonical(t, func() virtuoso.Result {
		r := wideRep.Results[1]
		r.Index = 0
		return r
	}()) {
		t.Fatal("cache-restored result differs from the originally simulated one")
	}
}
