package virtuoso

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/sweepjob"
)

// Shard names one deterministic slice of a sweep grid: shard Index of
// Count, assigned round-robin over point indices. The assignment is a
// pure function of the point index — independent of worker count,
// machine, and which other shards exist — so N processes running
// `--shard 0/N` … `--shard N-1/N` compute disjoint, exhaustive slices
// of the same grid. The zero value selects the whole grid.
type Shard = sweepjob.Shard

// ParseShard parses the "i/N" command-line shard form ("" = whole
// grid).
func ParseShard(s string) (Shard, error) { return sweepjob.ParseShard(s) }

// specVersion feeds SpecHash. Bump it whenever point enumeration,
// Result encoding, or simulation semantics change in a way that makes
// old checkpoints unresumable — the hash change makes stale files fail
// loudly instead of merging silently wrong data.
// v2: tiered-memory subsystem — tier axes join the grid, and Result
// encoding gained per-tier and swap-device counters.
const specVersion = 2

// SpecHash fingerprints everything that determines the sweep's points
// and their results: the full base configuration, the grid axes,
// workload construction params, Label, and the module's spec version.
// Two Sweeps with equal hashes enumerate identical grids and produce
// byte-identical per-point Results, so the hash is what makes resume
// and shard-merge safe: checkpoints and shard files carry it, and
// resuming against a changed grid or merging mismatched shards fails
// loudly.
//
// Parallel, Shard, Checkpoint, and the callback hooks (Configure,
// WorkloadFactory, Progress, Observe) are deliberately excluded: they
// change how the grid is executed, not what it computes. Configure and
// WorkloadFactory are function values that CAN change results — when
// using them with checkpoints or shards, set Label to something that
// identifies their behaviour so incompatible runs hash apart.
func (s *Sweep) SpecHash() string {
	payload := struct {
		Module       string         `json:"module"`
		SpecVersion  int            `json:"spec_version"`
		Base         Config         `json:"base"`
		Workloads    []string       `json:"workloads,omitempty"`
		Mixes        [][]string     `json:"mixes,omitempty"`
		Designs      []DesignName   `json:"designs,omitempty"`
		Policies     []PolicyName   `json:"policies,omitempty"`
		TierSpecs    [][]TierSpec   `json:"tier_specs,omitempty"`
		TierPolicies []string       `json:"tier_policies,omitempty"`
		Seeds        []uint64       `json:"seeds,omitempty"`
		Params       WorkloadParams `json:"params"`
		Label        string         `json:"label,omitempty"`
	}{"repro", specVersion, s.Base, s.Workloads, s.Mixes, s.Designs, s.Policies, s.TierSpecs, s.TierPolicies, s.Seeds, s.Params, s.Label}
	b, err := json.Marshal(payload)
	if err != nil {
		// Config is plain data; this is reachable only through
		// non-finite floats in the base config. Fall back to the (still
		// deterministic) Go-syntax rendering rather than failing.
		b = []byte(fmt.Sprintf("%#v", payload))
	}
	return sweepjob.Hash(b)
}

// pointKey fingerprints one fully resolved point for the
// content-addressed result cache (Sweep.Cache): the executed config
// (after grid axes and Configure), the workload or mix, the workload
// params, Label, and the spec version. Deliberately absent: grid
// position, Shard, Parallel, Checkpoint — execution shape, not results
// — so overlapping grids share entries. Like SpecHash, the key cannot
// see into a WorkloadFactory hook; Label is the escape hatch.
func pointKey(cfg Config, p Point, params WorkloadParams, label string) string {
	payload := struct {
		Module      string         `json:"module"`
		SpecVersion int            `json:"spec_version"`
		Config      Config         `json:"config"`
		Workload    string         `json:"workload,omitempty"`
		Mix         []string       `json:"mix,omitempty"`
		Params      WorkloadParams `json:"params"`
		Label       string         `json:"label,omitempty"`
	}{"repro", specVersion, cfg, p.Workload, p.Mix, params, label}
	b, err := json.Marshal(payload)
	if err != nil {
		b = []byte(fmt.Sprintf("%#v", payload))
	}
	return sweepjob.Hash(b)
}

// PointKey returns the cache key Run would use for point p: the
// introspection hook for cache management tooling (pre-warming,
// targeted invalidation). It resolves p's config exactly as Run does,
// including the Configure hook, and so can return that hook's error.
func (s *Sweep) PointKey(p Point) (string, error) {
	cfg := s.Base
	cfg.Design = p.Design
	cfg.Policy = p.Policy
	cfg.Seed = p.Seed
	cfg.OSCfg.Tiers = p.Tiers
	cfg.OSCfg.TierPolicy = p.TierPolicy
	if len(cfg.OSCfg.Tiers) == 0 {
		cfg.OSCfg.TierPolicy = "" // flat cells ignore the policy axis, as Run does
	}
	if s.Configure != nil {
		if err := s.Configure(&cfg, p); err != nil {
			return "", err
		}
	}
	return pointKey(cfg, p, s.Params, s.Label), nil
}

// SweepSpec is the declarative, JSON-serialisable form of a Sweep —
// what `virtuoso sweep run -spec` executes and `virtuoso sweep serve`
// accepts over HTTP or stdin. It covers the grid axes and the base-
// config knobs the CLI exposes; programmatic hooks (Configure,
// WorkloadFactory, Observe) exist only on Sweep itself.
//
// A minimal spec:
//
//	{"workloads": ["BFS", "XS"], "designs": ["radix", "ech"], "seeds": [1, 2]}
type SweepSpec struct {
	// Grid axes (Sweep.Workloads/Mixes/Designs/Policies/Seeds). At
	// least one workload or mix is required; empty Designs/Policies/
	// Seeds default to the base configuration's values.
	Workloads []string   `json:"workloads,omitempty"`
	Mixes     [][]string `json:"mixes,omitempty"`
	Designs   []string   `json:"designs,omitempty"`
	Policies  []string   `json:"policies,omitempty"`
	Seeds     []uint64   `json:"seeds,omitempty"`

	// Tiered-memory axes (Sweep.TierSpecs / Sweep.TierPolicies). Each
	// tier_specs entry is one slow-tier list; an explicit empty list is
	// the flat configuration, so a spec can compare flat vs. tiered in
	// one grid. Specs and policy names are validated here, not mid-run.
	TierSpecs    [][]TierSpec `json:"tier_specs,omitempty"`
	TierPolicies []string     `json:"tier_policies,omitempty"`

	// Workload construction params (Sweep.Params). 0 keeps defaults.
	Scale     float64 `json:"scale,omitempty"`
	LongIters int     `json:"long_iters,omitempty"`

	// Base-config overrides. FullScale starts from DefaultConfig (the
	// paper's Table 4 machine) instead of ScaledConfig; nil pointer
	// fields keep the base default. Frag is the paper-style unavailable
	// fraction of 2MB blocks (Config.FragFree2M = 1 - Frag).
	FullScale     bool     `json:"full_scale,omitempty"`
	Mode          string   `json:"mode,omitempty"`
	MaxAppInsts   *uint64  `json:"max_app_insts,omitempty"`
	Frag          *float64 `json:"frag,omitempty"`
	Seed          *uint64  `json:"seed,omitempty"`
	Quantum       uint64   `json:"quantum_cycles,omitempty"`
	CtxSwitchCost uint64   `json:"ctx_switch_cycles,omitempty"`
	ASIDRetention bool     `json:"asid_retention,omitempty"`

	// Memory sizing overrides, for consolidation/pressure scenarios
	// (undersized DRAM spilling into slow tiers or swap). PhysBytes and
	// SwapBytes are in bytes; SwapThreshold is the reclaim watermark as
	// a used fraction of DRAM. Zero/nil keep the base defaults.
	PhysBytes     uint64   `json:"phys_bytes,omitempty"`
	SwapBytes     uint64   `json:"swap_bytes,omitempty"`
	SwapThreshold *float64 `json:"swap_threshold,omitempty"`

	// Execution knobs. Shard ("i/N"), Parallel, and Cache do not affect
	// results or the spec hash; Label salts the hash (see Sweep.Label).
	// Cache names a content-addressed point-result cache directory
	// (Sweep.Cache): warm points are answered without simulating.
	Parallel int    `json:"parallel,omitempty"`
	Shard    string `json:"shard,omitempty"`
	Cache    string `json:"cache,omitempty"`
	Label    string `json:"label,omitempty"`
}

// ParseSweepSpec decodes a JSON sweep spec strictly: unknown fields are
// errors, so a typo ("desings") fails instead of silently running the
// default grid.
func ParseSweepSpec(data []byte) (*SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp SweepSpec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("virtuoso: bad sweep spec: %w", err)
	}
	// Trailing garbage after the JSON object is a malformed spec too.
	if dec.More() {
		return nil, fmt.Errorf("virtuoso: bad sweep spec: trailing data after JSON object")
	}
	return &sp, nil
}

// Sweep materialises the spec into a runnable Sweep, validating every
// name (designs, policies, mode, shard) up front.
func (sp *SweepSpec) Sweep() (*Sweep, error) {
	base := ScaledConfig()
	if sp.FullScale {
		base = DefaultConfig()
	}
	if sp.Mode != "" {
		m, err := ParseMode(sp.Mode)
		if err != nil {
			return nil, err
		}
		base.Mode = m
	}
	if sp.MaxAppInsts != nil {
		base.MaxAppInsts = *sp.MaxAppInsts
	}
	if sp.Frag != nil {
		if *sp.Frag < 0 || *sp.Frag > 1 {
			return nil, fmt.Errorf("virtuoso: spec frag %v out of range [0, 1]", *sp.Frag)
		}
		base.FragFree2M = 1 - *sp.Frag
	}
	if sp.Seed != nil {
		base.Seed = *sp.Seed
	}
	if sp.Quantum != 0 {
		base.QuantumCycles = sp.Quantum
	}
	if sp.CtxSwitchCost != 0 {
		base.CtxSwitchCycles = sp.CtxSwitchCost
	}
	base.ASIDRetention = sp.ASIDRetention
	if sp.PhysBytes != 0 {
		base.OSCfg.PhysBytes = sp.PhysBytes
	}
	if sp.SwapBytes != 0 {
		base.OSCfg.SwapBytes = sp.SwapBytes
	}
	if sp.SwapThreshold != nil {
		if *sp.SwapThreshold <= 0 || *sp.SwapThreshold > 1 {
			return nil, fmt.Errorf("virtuoso: spec swap_threshold %v out of range (0, 1]", *sp.SwapThreshold)
		}
		base.OSCfg.SwapThreshold = *sp.SwapThreshold
	}

	var designs []DesignName
	for _, d := range sp.Designs {
		dn, err := ParseDesign(d)
		if err != nil {
			return nil, err
		}
		designs = append(designs, dn)
	}
	var policies []PolicyName
	for _, p := range sp.Policies {
		pn, err := ParsePolicy(p)
		if err != nil {
			return nil, err
		}
		policies = append(policies, pn)
	}
	for i, specs := range sp.TierSpecs {
		if err := ValidateTierSpecs(specs); err != nil {
			return nil, fmt.Errorf("virtuoso: spec tier_specs[%d]: %w", i, err)
		}
	}
	var tierPolicies []string
	for _, tp := range sp.TierPolicies {
		name, err := ParseTierPolicy(tp)
		if err != nil {
			return nil, err
		}
		tierPolicies = append(tierPolicies, name)
	}
	if len(tierPolicies) > 0 && len(sp.TierSpecs) == 0 && len(base.OSCfg.Tiers) == 0 {
		return nil, fmt.Errorf("virtuoso: sweep spec sets tier_policies without tier_specs")
	}
	shard, err := ParseShard(sp.Shard)
	if err != nil {
		return nil, err
	}

	s := &Sweep{
		Base:         base,
		Workloads:    sp.Workloads,
		Mixes:        sp.Mixes,
		Designs:      designs,
		Policies:     policies,
		TierSpecs:    sp.TierSpecs,
		TierPolicies: tierPolicies,
		Seeds:        sp.Seeds,
		Params:       WorkloadParams{Scale: sp.Scale, LongIters: sp.LongIters},
		Parallel:     sp.Parallel,
		Shard:        shard,
		Cache:        sp.Cache,
		Label:        sp.Label,
	}
	if len(s.Workloads) == 0 && len(s.Mixes) == 0 {
		return nil, fmt.Errorf("virtuoso: sweep spec selects no workloads or mixes")
	}
	return s, nil
}
