package virtuoso

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
)

// Result is one sweep point's outcome: the configuration echo that
// identifies the point plus the full metrics of its run. It marshals to
// JSON (fault-latency series included) for downstream analysis.
//
// A Result always describes a run that completed: cancelled sweeps
// report the points that finished before the stop and omit interrupted
// ones entirely, because a truncated simulation's metrics are
// meaningless. With Sweep.Checkpoint set, every reported Result is
// also durable in the checkpoint file, so nothing a cancelled sweep
// returned is ever re-simulated on resume.
type Result struct {
	Index    int        `json:"index"`
	Workload string     `json:"workload"`
	Design   DesignName `json:"design"`
	Policy   PolicyName `json:"policy"`
	// TierPolicy echoes the tier migration policy of a tiered-memory
	// point ("" for flat-memory points; the default policy name when
	// tiers were configured without an explicit policy).
	TierPolicy string  `json:"tier_policy,omitempty"`
	Mode       string  `json:"mode"`
	Seed       uint64  `json:"seed"`
	Metrics    Metrics `json:"metrics"`
	// Multi carries the per-process breakdown of a multiprogrammed
	// point (Sweep.Mixes / Session.MultiResult); Metrics then echoes
	// Multi.Aggregate. Nil for single-workload points.
	Multi *MultiMetrics `json:"multi,omitempty"`
}

// Key returns a compact "workload/design/policy/seed" identifier.
func (r Result) Key() string {
	return fmt.Sprintf("%s/%s/%s/%d", r.Workload, r.Design, r.Policy, r.Seed)
}

// Report aggregates a sweep's results.
type Report struct {
	// Results holds one entry per completed point, in point order. A
	// cancelled or failed sweep reports only the points that finished;
	// a sharded sweep reports only its shard's points.
	Results []Result `json:"results"`
	// Points is the FULL grid size the sweep enumerated — also for a
	// shard run, whose Results cover only its slice. Merge tooling
	// validates shard exhaustiveness against it.
	Points int `json:"points"`
	// SpecHash fingerprints the generating sweep (Sweep.SpecHash):
	// grid axes, params, base config, and spec version. Reports and
	// checkpoints with equal hashes are comparable point-for-point.
	SpecHash string `json:"spec_hash,omitempty"`
	// Shard is the "i/N" slice this report covers ("" = whole grid).
	Shard string `json:"shard,omitempty"`
	// Wall is the host time the whole sweep took.
	Wall time.Duration `json:"wall_ns"`

	// Provenance counters for this run: how many of Results were
	// actually simulated (Executed) versus restored from the resume
	// checkpoint (FromCheckpoint) or answered by the content-addressed
	// cache (FromCache). Run-shape metadata, not results — excluded
	// from the JSON encodings so cached and fresh reports stay
	// byte-identical.
	Executed       int `json:"-"`
	FromCache      int `json:"-"`
	FromCheckpoint int `json:"-"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// CanonicalJSON renders the report in its determinism-comparison form:
// the host-dependent fields (Wall, per-result WallTime/SimHeapBytes)
// and the shard coordinates are zeroed, and everything else —
// simulated counters, latencies, per-process breakdowns — is emitted
// exactly as JSON would. Two runs of the same sweep are equivalent iff
// their CanonicalJSON is byte-identical; this is the form the
// sharded-resume determinism tests and `virtuoso sweep merge
// -canonical` compare. The receiver is not modified.
func (r *Report) CanonicalJSON() ([]byte, error) {
	out := *r
	out.Wall = 0
	out.Shard = ""
	out.Results = make([]Result, len(r.Results))
	for i, res := range r.Results {
		res.Metrics.WallTime = 0
		res.Metrics.SimHeapBytes = 0
		if res.Multi != nil {
			mm := *res.Multi
			mm.Aggregate.WallTime = 0
			mm.Aggregate.SimHeapBytes = 0
			res.Multi = &mm
		}
		out.Results[i] = res
	}
	return json.MarshalIndent(&out, "", "  ")
}

// DecodeReport parses a report previously rendered with JSON.
func DecodeReport(data []byte) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Grouping keys for GroupBy / GeomeanBy.
var (
	// ByWorkload groups results by workload name.
	ByWorkload = func(r Result) string { return r.Workload }
	// ByDesign groups results by translation design.
	ByDesign = func(r Result) string { return string(r.Design) }
	// ByPolicy groups results by allocation policy.
	ByPolicy = func(r Result) string { return string(r.Policy) }
)

// GroupBy partitions the results by the given key, preserving point
// order within each group.
func (r *Report) GroupBy(key func(Result) string) map[string][]Result {
	groups := make(map[string][]Result)
	for _, res := range r.Results {
		k := key(res)
		groups[k] = append(groups[k], res)
	}
	return groups
}

// Geomean returns the geometric mean of metric over all results
// (non-positive values are ignored, matching stats.GeoMean).
func (r *Report) Geomean(metric func(Result) float64) float64 {
	vs := make([]float64, 0, len(r.Results))
	for _, res := range r.Results {
		vs = append(vs, metric(res))
	}
	return stats.GeoMean(vs)
}

// GeomeanBy returns the per-group geometric mean of metric, keyed as
// GroupBy does.
func (r *Report) GeomeanBy(key func(Result) string, metric func(Result) float64) map[string]float64 {
	out := make(map[string]float64)
	for k, group := range r.GroupBy(key) {
		vs := make([]float64, 0, len(group))
		for _, res := range group {
			vs = append(vs, metric(res))
		}
		out[k] = stats.GeoMean(vs)
	}
	return out
}

// Filter returns a report containing only the results pred accepts
// (Points and Wall carry over unchanged).
func (r *Report) Filter(pred func(Result) bool) *Report {
	out := &Report{Points: r.Points, Wall: r.Wall}
	for _, res := range r.Results {
		if pred(res) {
			out.Results = append(out.Results, res)
		}
	}
	return out
}

// Keys returns the sorted group keys of GroupBy(key) — convenient for
// stable iteration when printing.
func (r *Report) Keys(key func(Result) string) []string {
	seen := make(map[string]bool)
	var keys []string
	for _, res := range r.Results {
		if k := key(res); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
