package virtuoso_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	virtuoso "repro"
)

// traceTestOpts is the shared configuration of the recording and the
// replaying runs: determinism requires the two systems to agree on
// everything except where the instruction stream comes from.
func traceTestOpts() []virtuoso.Option {
	return []virtuoso.Option{
		virtuoso.WithScaledConfig(),
		virtuoso.WithDesign(virtuoso.DesignRadix),
		virtuoso.WithPolicy(virtuoso.PolicyTHP),
		virtuoso.WithMaxInstructions(250_000),
		virtuoso.WithSeed(9),
	}
}

// normalise zeroes the host-side fields that legitimately differ
// between two executions of the same simulation (wall time, Go heap
// growth); everything else must match bit for bit.
func normalise(r virtuoso.Result) virtuoso.Result {
	r.Metrics.WallTime = 0
	r.Metrics.SimHeapBytes = 0
	return r
}

func resultJSON(t *testing.T, r virtuoso.Result) string {
	t.Helper()
	data, err := json.Marshal(normalise(r))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestReplayDeterminism(t *testing.T) {
	dir := t.TempDir()

	// Live run: the ordinary execution-driven session sets the truth
	// every recording and replay variant must reproduce.
	live, err := virtuoso.Open(append(traceTestOpts(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	mLive, err := live.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, live.Result(mLive))

	// Recording runs: same configuration, teeing the stream to disk in
	// each on-disk format. The recording run's own metrics must match
	// the live run regardless of what is written.
	recordings := []struct {
		name  string
		ropts []virtuoso.RecordOption
	}{
		{"bfs.trc", nil}, // v2 (default)
		{"bfs1.trc", []virtuoso.RecordOption{virtuoso.RecordFormatV1()}},    // v1 plain
		{"bfs1.trc.gz", []virtuoso.RecordOption{virtuoso.RecordFormatV1()}}, // v1 gzip envelope
	}
	for _, rc := range recordings {
		rec, err := virtuoso.Open(append(traceTestOpts(),
			virtuoso.WithWorkloadScale(0.05),
			virtuoso.WithWorkload("BFS"),
		)...)
		if err != nil {
			t.Fatal(err)
		}
		mRec, _, err := rec.Record(filepath.Join(dir, rc.name), rc.ropts...)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultJSON(t, rec.Result(mRec)); got != want {
			t.Errorf("%s: recording run diverged from live run:\n got %s\nwant %s", rc.name, got, want)
		}
	}

	// A v1→v2 conversion preserves the stream, so its replay joins the
	// matrix below.
	if _, err := virtuoso.ConvertTrace(filepath.Join(dir, "bfs1.trc.gz"), filepath.Join(dir, "conv.trc")); err != nil {
		t.Fatal(err)
	}

	// Replay runs: every format and decode strategy must reproduce the
	// live Result bit for bit — v2 (block decoder), v1 plain and
	// gzip-enveloped (streaming), the converted file, the reference
	// (unbatched, inline-decode) loop, and the shared decoded-trace
	// store, cold and warm.
	store := virtuoso.NewTraceStore(0)
	replays := []struct {
		leg  string
		name string
		opts []virtuoso.Option
	}{
		{"v2", "bfs.trc", nil},
		{"v1", "bfs1.trc", nil},
		{"v1-gz", "bfs1.trc.gz", nil},
		{"converted", "conv.trc", nil},
		{"v2-reference", "bfs.trc", []virtuoso.Option{virtuoso.WithReferencePath(true)}},
		{"v2-store-cold", "bfs.trc", []virtuoso.Option{virtuoso.WithTraceStore(store)}},
		{"v2-store-warm", "bfs.trc", []virtuoso.Option{virtuoso.WithTraceStore(store)}},
	}
	for _, rp := range replays {
		opts := append(traceTestOpts(), virtuoso.WithTrace(filepath.Join(dir, rp.name)))
		opts = append(opts, rp.opts...)
		rep, err := virtuoso.Open(opts...)
		if err != nil {
			t.Fatal(err)
		}
		mRep, err := rep.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := resultJSON(t, rep.Result(mRep)); got != want {
			t.Errorf("%s: replayed Result diverged from live Result:\n got %s\nwant %s", rp.leg, got, want)
		}
	}
	if st := store.Stats(); st.Decodes != 1 || st.Hits != 1 {
		t.Errorf("store legs: decodes=%d hits=%d, want 1/1", st.Decodes, st.Hits)
	}
}

// TestSweepSharedTraceStore replays one recorded trace across a seed
// grid twice through Sweep.Traces: every point must match the plain
// per-point replay, and the second sweep must decode nothing.
func TestSweepSharedTraceStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bfs.trc")
	rec, err := virtuoso.Open(append(traceTestOpts(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Record(path); err != nil {
		t.Fatal(err)
	}

	base := rec.Config()
	base.MaxAppInsts = 100_000
	sweep := func(store *virtuoso.TraceStore) []byte {
		sw := &virtuoso.Sweep{
			Base:  base,
			Seeds: []uint64{9, 10, 11},
			// The trace is the workload: the factory re-creates the
			// recorded address space, Configure points the frontend at
			// the file.
			Workloads: []string{"BFS"},
			WorkloadFactory: func(p virtuoso.Point) (*virtuoso.Workload, error) {
				return virtuoso.TraceWorkload(path)
			},
			Configure: func(cfg *virtuoso.Config, p virtuoso.Point) error {
				cfg.TracePath = path
				cfg.Frontend = virtuoso.FrontendTrace
				return nil
			},
			Traces:   store,
			Parallel: 2,
		}
		rep, err := sw.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	plain := sweep(nil)
	store := virtuoso.NewTraceStore(0)
	first := sweep(store)
	afterFirst := store.Stats()
	second := sweep(store)
	afterSecond := store.Stats()

	if string(plain) != string(first) || string(first) != string(second) {
		t.Error("shared-store sweep diverged from per-point replay sweep")
	}
	if afterFirst.Decodes != 1 {
		t.Errorf("first sweep decoded %d times, want 1", afterFirst.Decodes)
	}
	if afterSecond.Decodes != afterFirst.Decodes {
		t.Errorf("second sweep decoded %d more times, want 0", afterSecond.Decodes-afterFirst.Decodes)
	}
	if afterSecond.Hits != 5 {
		t.Errorf("hits=%d, want 5 (6 points, 1 decode)", afterSecond.Hits)
	}
}

func TestTraceInfoAndMemTraceReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xs.trc.gz")
	rec, err := virtuoso.Open(append(traceTestOpts(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("XS"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	_, recInfo, err := rec.Record(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Record(path); err == nil {
		t.Error("second Record on a consumed session should fail")
	}

	// The info returned by Record (from the writer's counters) must
	// agree exactly with a full re-scan of the file.
	info, err := virtuoso.ReadTraceInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info != recInfo {
		t.Errorf("Record info disagrees with ReadTraceInfo:\n got %+v\nwant %+v", recInfo, info)
	}
	if info.Workload != "XS" || info.Class != "long" || !info.Compressed {
		t.Errorf("unexpected info: %+v", info)
	}
	if info.Seed != 9 || info.Records == 0 || info.Instructions == 0 || info.MemOps == 0 {
		t.Errorf("empty counts: %+v", info)
	}
	if info.Segments == 0 {
		t.Error("no layout segments recorded")
	}

	// ReadTraceHeader is the cheap variant: same metadata, zero counts.
	hdr, err := virtuoso.ReadTraceHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Workload != info.Workload || hdr.Seed != info.Seed || hdr.Segments != info.Segments {
		t.Errorf("header mismatch: %+v vs %+v", hdr, info)
	}
	if hdr.Records != 0 || hdr.Instructions != 0 {
		t.Errorf("ReadTraceHeader should not count records: %+v", hdr)
	}

	// Memory-trace-driven replay of the same file: runs, simulates only
	// memory ops, and echoes the recorded workload name.
	mem, err := virtuoso.Open(append(traceTestOpts(),
		virtuoso.WithFrontend(virtuoso.FrontendMemTrace),
		virtuoso.WithTrace(path),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mem.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Workload != "XS" {
		t.Errorf("memtrace replay workload = %q, want XS", m.Workload)
	}
	if m.AppInsts == 0 || m.AppInsts >= info.Instructions {
		t.Errorf("memtrace replay simulated %d insts of %d: expected a strict memory-only subset",
			m.AppInsts, info.Instructions)
	}
}

func TestParallelReplaysShareNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bfs.trc.gz")
	rec, err := virtuoso.Open(append(traceTestOpts(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Record(path); err != nil {
		t.Fatal(err)
	}

	// Four concurrent replays of one file must all produce the same
	// Result: every run opens its own reader (no shared cursor).
	const n = 4
	results := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := virtuoso.Open(append(traceTestOpts(), virtuoso.WithTrace(path))...)
			if err != nil {
				errs[i] = err
				return
			}
			m, err := sess.Run()
			if err != nil {
				errs[i] = err
				return
			}
			data, err := json.Marshal(normalise(sess.Result(m)))
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = string(data)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("replay %d diverged:\n got %s\nwant %s", i, results[i], results[0])
		}
	}
}

func TestWithTraceErrors(t *testing.T) {
	if _, err := virtuoso.Open(virtuoso.WithTrace(filepath.Join(t.TempDir(), "missing.trc"))); err == nil {
		t.Error("Open with a missing trace should fail")
	}
	if _, err := virtuoso.ReadTraceInfo(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Error("ReadTraceInfo on a missing file should fail")
	}
	if _, err := virtuoso.ReadTraceHeader(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Error("ReadTraceHeader on a missing file should fail")
	}
}

// TestWorkloadDisplacesTrace: a WithWorkload after WithTrace must fully
// undo the trace attachment — path and frontend both — so the named
// workload runs execution-driven instead of materialising in memory.
func TestWorkloadDisplacesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bfs.trc")
	rec, err := virtuoso.Open(append(traceTestOpts(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Record(path); err != nil {
		t.Fatal(err)
	}

	sess, err := virtuoso.Open(append(traceTestOpts(),
		virtuoso.WithTrace(path),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("XS"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if cfg := sess.Config(); cfg.TracePath != "" || cfg.Frontend != virtuoso.FrontendExec {
		t.Errorf("displaced trace left TracePath=%q Frontend=%d", cfg.TracePath, cfg.Frontend)
	}
	if sess.Workload().Name() != "XS" {
		t.Errorf("workload = %q, want XS", sess.Workload().Name())
	}
}

// TestBoundedReplayClosesTraceFile: a replay stopped by MaxAppInsts
// (rather than trace EOF) must still release its file descriptor — the
// engine closes the frontend source it built. Regression test for the
// fd leak found in review.
func TestBoundedReplayClosesTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bfs.trc")
	rec, err := virtuoso.Open(append(traceTestOpts(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Record(path); err != nil {
		t.Fatal(err)
	}

	countFDs := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			t.Skip("no /proc/self/fd on this platform")
		}
		return len(ents)
	}
	before := countFDs()
	for i := 0; i < 20; i++ {
		// The bound stops the run at the last record, never reading EOF.
		sess, err := virtuoso.Open(append(traceTestOpts(), virtuoso.WithTrace(path))...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if after := countFDs(); after > before+2 {
		t.Errorf("fd count grew from %d to %d across 20 bounded replays: trace files not closed", before, after)
	}
}

// TestWorkloadNameAliases covers the forgiving lookup the CLI documents.
func TestWorkloadNameAliases(t *testing.T) {
	for _, alias := range []string{"BFS", "bfs", "graphbig-bfs", "GraphBIG-BFS", "llm-llama-2-7b"} {
		want := "BFS"
		if alias == "llm-llama-2-7b" {
			want = "Llama-2-7B"
		}
		w, err := virtuoso.NamedWorkload(alias)
		if err != nil {
			t.Errorf("alias %q: %v", alias, err)
			continue
		}
		if w.Name() != want {
			t.Errorf("alias %q resolved to %q, want %q", alias, w.Name(), want)
		}
	}
	if _, err := virtuoso.NamedWorkload("graphbig-"); err == nil {
		t.Error("bare prefix should not resolve")
	}
	// A wrong-suite spelling must stay an error, not silently resolve
	// to a workload from another suite.
	if _, err := virtuoso.NamedWorkload("faas-bfs"); err == nil {
		t.Error("wrong-suite prefix faas-bfs should not resolve")
	}
	// So must invalid parameters.
	if _, err := virtuoso.NamedWorkloadWith("BFS", virtuoso.WorkloadParams{Scale: -0.5}); err == nil {
		t.Error("negative scale should not build a workload")
	}
	neg := &virtuoso.Sweep{
		Base:      virtuoso.ScaledConfig(),
		Workloads: []string{"BFS"},
		Params:    virtuoso.WorkloadParams{Scale: -0.5},
	}
	if _, err := neg.Run(context.Background()); err == nil {
		t.Error("sweep with negative scale should fail up front")
	}
}

// TestWorkloadParamsAreConcurrencySafe builds differently scaled
// workloads from many goroutines at once — the pattern that raced when
// scale and iteration count were mutable package globals. Run under
// -race this is a regression test for the catalog-globals fix.
func TestWorkloadParamsAreConcurrencySafe(t *testing.T) {
	scales := []float64{0.05, 0.1, 0.2, 0.5}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scale := scales[i%len(scales)]
			w, err := virtuoso.NamedWorkloadWith("BFS", virtuoso.WorkloadParams{Scale: scale, LongIters: 1 + i%3})
			if err != nil {
				t.Error(err)
				return
			}
			want := uint64(float64(320<<20) * scale)
			got := w.FootprintBytes()
			// Footprints are 2MB-aligned with a 2MB floor.
			if got+2<<20 < want || got > want+2<<20 {
				t.Errorf("scale %v: footprint %d, want ~%d", scale, got, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestSweepParamsScaleWorkloads(t *testing.T) {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 50_000
	sweep := &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"BFS"},
		Seeds:     []uint64{1, 2},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:  2,
	}
	report, err := sweep.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(report.Results))
	}
}
